#!/usr/bin/env bash
# Warn-only comparison of a fresh benchmark run against the committed
# baseline. Never fails the build: shared CI runners are too noisy for a
# hard gate, so regressions surface as WARNING lines in the job log.
#
#   scripts/bench_compare.sh BENCH_timing.json /tmp/bench_current.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASE="${1:-BENCH_timing.json}"
CUR="${2:?usage: bench_compare.sh baseline.json current.json}"

# Fail up front with a clear message instead of letting awk/join die with
# a cryptic one: a missing baseline usually means the file was never
# committed (or a new BENCH_*.json section was added to bench.sh without
# regenerating), a missing current file means the benchmark run failed.
for f in "$BASE" "$CUR"; do
  if [ ! -r "$f" ]; then
    echo "ERROR: benchmark file '$f' is missing or unreadable." >&2
    echo "  baseline files are committed as BENCH_*.json (regenerate with scripts/bench.sh);" >&2
    echo "  the current file comes from the CI benchmark step that runs bench.sh." >&2
    exit 1
  fi
done

# The generator emits one benchmark object per line, so field extraction
# needs no JSON tooling. Output: name ns_per_op allocs_per_op frozen.
parse() {
  awk '/"name"/ {
    name = ""; ns = ""; allocs = ""; frozen = "no"
    nf = split($0, parts, /[,{}]/)
    for (i = 1; i <= nf; i++) {
      if (parts[i] ~ /"name"/)          { split(parts[i], kv, /"/); name = kv[4] }
      if (parts[i] ~ /"ns_per_op"/)     { split(parts[i], kv, /:/); gsub(/ /, "", kv[2]); ns = kv[2] }
      if (parts[i] ~ /"allocs_per_op"/) { split(parts[i], kv, /:/); gsub(/ /, "", kv[2]); allocs = kv[2] }
      if (parts[i] ~ /"frozen"/ && parts[i] ~ /true/) { frozen = "yes" }
    }
    if (name != "") print name, ns, allocs, frozen
  }' "$1"
}

# parse_live keeps only entries expected to re-run. Frozen entries are
# historical measurements of deleted code — comparing a fresh run against
# them is meaningless, so they are excluded here and labeled in the
# speedup report below.
parse_live() { parse "$1" | awk '$4 == "no" { print $1, $2, $3 }'; }

# Host comparability: the baseline records the core count it was measured
# on (bench.sh's "cores" field; absent in baselines predating it). When the
# current host's core count differs, wall-clock ratios compare different
# machines — parallel benchmarks especially — so ns/op regressions degrade
# to NOTEs and only the (host-independent) allocation counts stay warnings.
cores=$(nproc 2>/dev/null || echo 1)
base_cores=$(awk -F'[:,]' '/"cores"/ { gsub(/[^0-9]/, "", $2); print $2; exit }' "$BASE")
ns_severity=WARNING
if [ -n "$base_cores" ] && [ "$base_cores" != "$cores" ]; then
  echo "NOTE: baseline was measured on ${base_cores} cores, this host has ${cores}: ns/op ratios are not comparable (reported as NOTEs)"
  ns_severity=NOTE
fi

status=ok
while read -r name bns ballocs cns callocs; do
  printf '%-32s ns/op %10d -> %10d    allocs/op %5d -> %5d\n' \
    "$name" "$bns" "$cns" "$ballocs" "$callocs"
  # 1.6x wall-clock tolerance absorbs runner noise; the allocation slack
  # absorbs first-iteration pool ramp at short -benchtime values.
  if [ "$cns" -gt "$((bns * 8 / 5))" ]; then
    echo "$ns_severity: $name ns/op regressed ${cns} vs baseline ${bns} (>1.6x)"
    [ "$ns_severity" = WARNING ] && status=warn
  fi
  if [ "$callocs" -gt "$((ballocs + 32))" ]; then
    echo "WARNING: $name allocs/op regressed ${callocs} vs baseline ${ballocs}"
    status=warn
  fi
done < <(join <(parse_live "$BASE" | sort) <(parse_live "$CUR" | sort))

# Keys present on one side only never reach the join above; name them so a
# renamed or dropped benchmark is visible instead of silently uncompared.
comm -23 <(parse_live "$BASE" | awk '{print $1}' | sort) \
         <(parse_live "$CUR"  | awk '{print $1}' | sort) |
  while read -r name; do
    echo "NOTE: baseline key $name missing from the current run (not compared)"
  done
comm -13 <(parse_live "$BASE" | awk '{print $1}' | sort) \
         <(parse_live "$CUR"  | awk '{print $1}' | sort) |
  while read -r name; do
    echo "NOTE: current run key $name has no committed baseline (not compared)"
  done

if [ -z "$(parse "$BASE")" ]; then
  echo "ERROR: no benchmark entries found in '$BASE' — wrong or truncated file?" >&2
  exit 1
fi

# Speedup report against frozen generations: a frozen baseline entry
# named <X>PreFork pins the ns/op of the clone-per-run code <X> replaced,
# <X>PreBatch pins the unbatched fork-path code the batched group replay
# replaced, and <X>PreShard pins the single-scheduler timing engine the
# windowed (shardable) replay replaced. PreFork/PreBatch carry a >=3x
# speedup floor; PreShard carries a parity floor instead — the sharded
# engine's serial path must stay within 25% of the engine it replaced
# (the shard win itself is gated separately below, on multi-core hosts).
# The batched-vs-unbatched floor is skipped on single-core hosts: the
# batched path's worker parallelism cannot show there, so the honest
# ratio is lower and a warning would be noise.
while read -r name prens; do
  printf '%-32s (frozen baseline, not re-run)\n' "$name"
  floor=3.0
  case "$name" in
    *PreBatch) base="${name%PreBatch}"; label="pre-batch" ;;
    *PreFork)  base="${name%PreFork}";  label="pre-fork" ;;
    *PreShard) base="${name%PreShard}"; label="pre-shard"; floor=0.75 ;;
    *)         continue ;;
  esac
  cur=$(parse "$CUR" | awk -v n="$base" '$1 == n { print $2 }')
  [ -n "$cur" ] || continue
  speedup=$(awk -v pre="$prens" -v cur="$cur" 'BEGIN { printf "%.2f", pre / cur }')
  printf '%-32s %10d ns/op %s -> %10d ns/op now (%sx)\n' \
    "$base" "$prens" "$label" "$cur" "$speedup"
  if [ "$label" = "pre-batch" ] && [ "$cores" -lt 2 ]; then
    echo "NOTE: $base batched speedup not gated on ${cores}-core host (needs >=2 cores)"
    continue
  fi
  if [ "$ns_severity" = NOTE ] && [ "$label" != "pre-shard" ]; then
    echo "NOTE: $base $label speedup not gated (baseline from a ${base_cores}-core host)"
    continue
  fi
  if awk -v s="$speedup" -v f="$floor" 'BEGIN { exit !(s < f) }'; then
    echo "WARNING: $base $label speedup ${speedup}x below the ${floor}x floor"
    status=warn
  fi
done < <(parse "$BASE" | awk '$4 == "yes" { print $1, $2 }')

# Sharded-replay scaling gate (warn-only): the tentpole promise is >=2x
# single-replay throughput at 4 shards over the serial path — but only
# where the host has the cores; on fewer than 4 cores the shard
# goroutines time-slice one another and the honest ratio is ~1x or worse,
# so the gate degrades to a NOTE.
s1=$(parse "$CUR" | awk '$1 == "BenchmarkRunKernelShards/1" { print $2 }')
s4=$(parse "$CUR" | awk '$1 == "BenchmarkRunKernelShards/4" { print $2 }')
if [ -n "$s1" ] && [ -n "$s4" ]; then
  ratio=$(awk -v a="$s1" -v b="$s4" 'BEGIN { printf "%.2f", a / b }')
  echo "sharded replay: 1 shard ${s1} ns/op, 4 shards ${s4} ns/op (${ratio}x, ${cores} cores)"
  if [ "$cores" -ge 4 ]; then
    if awk -v r="$ratio" 'BEGIN { exit !(r < 2.0) }'; then
      echo "WARNING: 4-shard replay speedup ${ratio}x below the 2x floor"
      status=warn
    fi
  else
    echo "NOTE: shard speedup not gated on ${cores}-core host (needs >=4 cores to show scaling)"
  fi
fi

# Store fast-path gate: when the file carries the daemon serving
# benchmarks, the warm (store-hit) path must stay >=10x faster than a
# cold compute; below that the result store is no longer earning its keep.
cold=$(parse "$CUR" | awk '$1 == "BenchmarkDcrmdHotServe/cold" { print $2 }')
warm=$(parse "$CUR" | awk '$1 == "BenchmarkDcrmdHotServe/warm" { print $2 }')
if [ -n "$cold" ] && [ -n "$warm" ]; then
  ratio=$(awk -v c="$cold" -v w="$warm" 'BEGIN { printf "%.1f", c / w }')
  echo "dcrmd serve: cold ${cold} ns/op, warm ${warm} ns/op (${ratio}x)"
  if awk -v r="$ratio" 'BEGIN { exit !(r < 10.0) }'; then
    echo "WARNING: warm serve speedup ${ratio}x below the 10x floor"
    status=warn
  fi
fi

# Fleet scaling gate (warn-only): with workers pinned to one campaign
# goroutine each, a 3-worker fleet should finish campaigns >=2x faster
# than a 1-worker fleet — but only where the host actually has the cores;
# on fewer than 3 cores the honest ratio is ~1x and warning would be noise.
one=$(parse "$CUR" | awk '$1 == "BenchmarkFleetCampaign/workers=1" { print $2 }')
three=$(parse "$CUR" | awk '$1 == "BenchmarkFleetCampaign/workers=3" { print $2 }')
if [ -n "$one" ] && [ -n "$three" ]; then
  ratio=$(awk -v o="$one" -v t="$three" 'BEGIN { printf "%.2f", o / t }')
  cores=$(nproc 2>/dev/null || echo 1)
  echo "fleet campaign: 1 worker ${one} ns/op, 3 workers ${three} ns/op (${ratio}x, ${cores} cores)"
  if [ "$cores" -ge 3 ]; then
    if awk -v r="$ratio" 'BEGIN { exit !(r < 2.0) }'; then
      echo "WARNING: 3-worker fleet speedup ${ratio}x below the 2x floor"
      status=warn
    fi
  else
    echo "NOTE: fleet speedup not gated on ${cores}-core host (needs >=3 cores to show scaling)"
  fi
fi

# Cold-start prewarm gate (warn-only): prewarming a multi-checkpoint
# artifact set should beat the serial lazy build by >=2x — but only where
# the host has cores for the fan-out; on a single core the honest ratio is
# ~1x (same work, different schedule) and warning would be noise. The
# second-process number is informational here: its zero-recompute claim is
# asserted inside the benchmark itself and by the CI warm-start gate.
cold=$(parse "$CUR" | awk '$1 == "BenchmarkColdStart/cold" { print $2 }')
pre=$(parse "$CUR" | awk '$1 == "BenchmarkColdStart/prewarmed" { print $2 }')
second=$(parse "$CUR" | awk '$1 == "BenchmarkColdStart/secondprocess" { print $2 }')
if [ -n "$cold" ] && [ -n "$pre" ]; then
  ratio=$(awk -v c="$cold" -v p="$pre" 'BEGIN { printf "%.2f", c / p }')
  echo "cold start: cold ${cold} ns/op, prewarmed ${pre} ns/op (${ratio}x, ${cores} cores)"
  [ -n "$second" ] && echo "cold start: second-process warm start ${second} ns/op"
  if [ "$cores" -ge 2 ]; then
    if awk -v r="$ratio" 'BEGIN { exit !(r < 2.0) }'; then
      echo "WARNING: prewarm speedup ${ratio}x below the 2x floor"
      status=warn
    fi
  else
    echo "NOTE: prewarm speedup not gated on ${cores}-core host (needs >=2 cores for the fan-out)"
  fi
fi

[ "$status" = ok ] && echo "benchmarks within tolerance of the committed baseline"
exit 0
