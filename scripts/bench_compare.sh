#!/usr/bin/env bash
# Warn-only comparison of a fresh benchmark run against the committed
# baseline. Never fails the build: shared CI runners are too noisy for a
# hard gate, so regressions surface as WARNING lines in the job log.
#
#   scripts/bench_compare.sh BENCH_timing.json /tmp/bench_current.json
set -euo pipefail
cd "$(dirname "$0")/.."

BASE="${1:-BENCH_timing.json}"
CUR="${2:?usage: bench_compare.sh baseline.json current.json}"

# The generator emits one benchmark object per line, so field extraction
# needs no JSON tooling.
parse() {
  awk '/"name"/ {
    name = ""; ns = ""; allocs = ""
    nf = split($0, parts, /[,{}]/)
    for (i = 1; i <= nf; i++) {
      if (parts[i] ~ /"name"/)          { split(parts[i], kv, /"/); name = kv[4] }
      if (parts[i] ~ /"ns_per_op"/)     { split(parts[i], kv, /:/); gsub(/ /, "", kv[2]); ns = kv[2] }
      if (parts[i] ~ /"allocs_per_op"/) { split(parts[i], kv, /:/); gsub(/ /, "", kv[2]); allocs = kv[2] }
    }
    if (name != "") print name, ns, allocs
  }' "$1"
}

status=ok
while read -r name bns ballocs cns callocs; do
  printf '%-32s ns/op %10d -> %10d    allocs/op %5d -> %5d\n' \
    "$name" "$bns" "$cns" "$ballocs" "$callocs"
  # 1.6x wall-clock tolerance absorbs runner noise; the allocation slack
  # absorbs first-iteration pool ramp at short -benchtime values.
  if [ "$cns" -gt "$((bns * 8 / 5))" ]; then
    echo "WARNING: $name ns/op regressed ${cns} vs baseline ${bns} (>1.6x)"
    status=warn
  fi
  if [ "$callocs" -gt "$((ballocs + 32))" ]; then
    echo "WARNING: $name allocs/op regressed ${callocs} vs baseline ${ballocs}"
    status=warn
  fi
done < <(join <(parse "$BASE" | sort) <(parse "$CUR" | sort))

# Fast-path speedup report: a baseline entry named <X>PreFork freezes the
# ns/op of the code <X> replaced; compare the current <X> against it and
# warn (only) if the promised >=3x advantage has eroded.
while read -r name prens; do
  cur=$(parse "$CUR" | awk -v n="${name%PreFork}" '$1 == n { print $2 }')
  [ -n "$cur" ] || continue
  speedup=$(awk -v pre="$prens" -v cur="$cur" 'BEGIN { printf "%.2f", pre / cur }')
  printf '%-32s %10d ns/op pre-fork -> %10d ns/op now (%sx)\n' \
    "${name%PreFork}" "$prens" "$cur" "$speedup"
  if awk -v s="$speedup" 'BEGIN { exit !(s < 3.0) }'; then
    echo "WARNING: ${name%PreFork} fast-path speedup ${speedup}x below the 3x floor"
    status=warn
  fi
done < <(parse "$BASE" | awk '$1 ~ /PreFork$/ { print $1, $2 }')

[ "$status" = ok ] && echo "benchmarks within tolerance of the committed baseline"
exit 0
