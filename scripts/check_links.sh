#!/bin/sh
# check_links.sh — fail on broken relative links in the repo's Markdown.
#
# Scans every tracked *.md file for inline Markdown links ([text](target))
# whose target is a relative path, resolves each target against the file's
# directory, and exits non-zero listing every target that does not exist.
# External links (scheme://, mailto:) and pure in-page anchors (#section)
# are skipped; a relative target's own #fragment is stripped before the
# existence check.
#
# Usage: scripts/check_links.sh [root]   (default: repo root / cwd)
set -eu

root=${1:-.}
cd "$root"

if command -v git >/dev/null 2>&1 && git rev-parse --is-inside-work-tree >/dev/null 2>&1; then
	files=$(git ls-files '*.md')
else
	files=$(find . -name '*.md' -not -path './.git/*' | sed 's|^\./||')
fi

status=0
for f in $files; do
	dir=$(dirname "$f")
	# Pull out every inline link target. One link per output line even when
	# several share a source line; code spans are not parsed, so keep
	# example links inside fenced blocks absolute or external.
	targets=$(grep -o '](\([^)]*\))' "$f" 2>/dev/null | sed 's/^](//; s/)$//') || continue
	for t in $targets; do
		case $t in
		'' | '#'* | *://* | mailto:*) continue ;;
		esac
		path=${t%%#*}
		[ -n "$path" ] || continue
		case $path in
		/*) resolved=".$path" ;; # treat absolute paths as repo-rooted
		*) resolved="$dir/$path" ;;
		esac
		if [ ! -e "$resolved" ]; then
			echo "BROKEN $f -> $t"
			status=1
		fi
	done
done

if [ $status -ne 0 ]; then
	echo "broken relative links found (targets resolved against each file's directory)" >&2
fi
exit $status
