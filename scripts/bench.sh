#!/usr/bin/env bash
# Regenerate the timing-simulator benchmark baseline.
#
# Runs the steady-state replay benchmarks (BenchmarkRunKernel and its
# Detection/Correction variants) and writes their ns/op, B/op, and
# allocs/op to BENCH_timing.json (or the path given as $1). CI re-runs
# this with a short BENCHTIME and compares against the committed baseline
# (scripts/bench_compare.sh, warn-only).
#
#   scripts/bench.sh                  # refresh BENCH_timing.json (1s rounds)
#   BENCHTIME=100x scripts/bench.sh out.json
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="${1:-BENCH_timing.json}"

raw=$(go test ./internal/timing -run '^$' \
  -bench 'BenchmarkRunKernel(Detection|Correction)?$' \
  -benchmem -benchtime "$BENCHTIME")
echo "$raw" >&2

echo "$raw" | awk -v benchtime="$BENCHTIME" '
  BEGIN { n = 0 }
  $1 ~ /^Benchmark/ {
    name = $1; sub(/-[0-9]+$/, "", name)
    names[n] = name; iters[n] = $2; ns[n] = $3; bytes[n] = $5; allocs[n] = $7
    n++
  }
  /^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
  END {
    printf "{\n"
    printf "  \"benchtime\": \"%s\",\n", benchtime
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"benchmarks\": [\n"
    for (i = 0; i < n; i++)
      printf "    {\"name\": \"%s\", \"iterations\": %d, \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}%s\n", \
        names[i], iters[i], ns[i], bytes[i], allocs[i], (i < n-1 ? "," : "")
    printf "  ]\n}\n"
  }
' > "$OUT"
echo "wrote $OUT" >&2
