#!/usr/bin/env bash
# Regenerate the committed benchmark baselines.
#
# Runs the steady-state timing-replay benchmarks (BenchmarkRunKernel and
# its Detection/Correction variants) into BENCH_timing.json (or $1), the
# campaign fast-path benchmarks (BenchmarkCampaignFig6/9) into
# BENCH_campaign.json (or $2), the daemon serving benchmarks
# (BenchmarkDcrmdHotServe cold/warm/dup) into BENCH_serve.json (or $3),
# and the campaign-fabric scaling benchmarks (BenchmarkFleetCampaign at 1
# and 3 workers) into BENCH_fleet.json (or $4), and the checkpoint
# artifact cold-start benchmarks (BenchmarkColdStart cold/prewarmed/
# secondprocess) into BENCH_coldstart.json (or $5).
# The campaign file also carries frozen historical measurements: the
# pre-fork clone-path numbers under the *PreFork names and the pre-batch
# one-run-per-replay fork-path numbers under the *PreBatch names, so
# scripts/bench_compare.sh can report the fast-path and batched-execution
# speedups against the code each generation replaced. CI re-runs this
# with a short BENCHTIME and compares against the committed baselines
# (warn-only).
#
#   scripts/bench.sh                  # refresh all baselines (1s rounds)
#   BENCHTIME=100x scripts/bench.sh timing.json campaign.json serve.json fleet.json coldstart.json
set -euo pipefail
cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-1s}"
OUT="${1:-BENCH_timing.json}"
CAMPAIGN_OUT="${2:-BENCH_campaign.json}"
SERVE_OUT="${3:-BENCH_serve.json}"
FLEET_OUT="${4:-BENCH_fleet.json}"
COLD_OUT="${5:-BENCH_coldstart.json}"

# Frozen historical baselines, marked "frozen": true — kept as data,
# never re-run, because the code they measured is gone;
# scripts/bench_compare.sh labels and skips them accordingly.
#   *PreFork:  the clone-per-run campaign path, measured at the commit
#              that introduced copy-on-write forking.
#   *PreBatch: the fork + checkpoint path executing one run per
#              functional replay, measured at the commit that introduced
#              batched group replay.
# (Same benchmark configurations, -benchtime 2s, same host class.)
FROZEN_ENTRIES='    {"name": "BenchmarkCampaignFig6PreFork", "frozen": true, "iterations": 0, "ns_per_op": 141245682, "bytes_per_op": 16833190, "allocs_per_op": 2209},
    {"name": "BenchmarkCampaignFig9PreFork", "frozen": true, "iterations": 0, "ns_per_op": 205210604, "bytes_per_op": 18726577, "allocs_per_op": 9303},
    {"name": "BenchmarkCampaignFig6PreBatch", "frozen": true, "iterations": 0, "ns_per_op": 30349036, "bytes_per_op": 727318, "allocs_per_op": 795},
    {"name": "BenchmarkCampaignFig9PreBatch", "frozen": true, "iterations": 0, "ns_per_op": 37191367, "bytes_per_op": 717144, "allocs_per_op": 729},'

#   *PreShard: the single-scheduler (pre-windowed-replay) timing engine,
#              measured at the commit that sharded the event engine.
# (Same benchmark configurations, -benchtime 1s, single-core host.)
TIMING_FROZEN_ENTRIES='    {"name": "BenchmarkRunKernelPreShard", "frozen": true, "iterations": 0, "ns_per_op": 2440147, "bytes_per_op": 0, "allocs_per_op": 0},
    {"name": "BenchmarkRunKernelDetectionPreShard", "frozen": true, "iterations": 0, "ns_per_op": 4255882, "bytes_per_op": 0, "allocs_per_op": 0},
    {"name": "BenchmarkRunKernelCorrectionPreShard", "frozen": true, "iterations": 0, "ns_per_op": 9522676, "bytes_per_op": 0, "allocs_per_op": 0},'

# Host metadata recorded in every baseline: parallel-scaling ratios (fleet
# workers, replay shards) only reproduce on a comparable host, so the
# compare script reads the recorded core count before gating on them.
CORES=$(nproc 2>/dev/null || echo 1)
MAXPROCS="${GOMAXPROCS:-$CORES}"
GO_VERSION=$(go version | { read -r _ _ v _; echo "$v"; })

# render_json RAW BENCHTIME [EXTRA_ENTRY_LINES] -> JSON on stdout
render_json() {
  awk -v benchtime="$2" -v extra="${3:-}" \
      -v cores="$CORES" -v maxprocs="$MAXPROCS" -v gover="$GO_VERSION" '
    BEGIN { n = 0 }
    $1 ~ /^Benchmark/ {
      name = $1; sub(/-[0-9]+$/, "", name)
      names[n] = name; iters[n] = $2; ns[n] = $3; bytes[n] = $5; allocs[n] = $7
      n++
    }
    /^cpu:/ { cpu = $0; sub(/^cpu: */, "", cpu) }
    END {
      printf "{\n"
      printf "  \"benchtime\": \"%s\",\n", benchtime
      printf "  \"cpu\": \"%s\",\n", cpu
      printf "  \"cores\": %d,\n", cores
      printf "  \"gomaxprocs\": %d,\n", maxprocs
      printf "  \"go\": \"%s\",\n", gover
      printf "  \"benchmarks\": [\n"
      if (extra != "") printf "%s\n", extra
      for (i = 0; i < n; i++)
        printf "    {\"name\": \"%s\", \"iterations\": %d, \"ns_per_op\": %d, \"bytes_per_op\": %d, \"allocs_per_op\": %d}%s\n", \
          names[i], iters[i], ns[i], bytes[i], allocs[i], (i < n-1 ? "," : "")
      printf "  ]\n}\n"
    }
  ' <<<"$1"
}

raw=$(go test ./internal/timing -run '^$' \
  -bench 'BenchmarkRunKernel(Detection|Correction|Shards)?$' \
  -benchmem -benchtime "$BENCHTIME")
echo "$raw" >&2
render_json "$raw" "$BENCHTIME" "$TIMING_FROZEN_ENTRIES" > "$OUT"
echo "wrote $OUT" >&2

raw=$(go test ./internal/experiments -run '^$' \
  -bench 'BenchmarkCampaignFig(6|9)$' \
  -benchmem -benchtime "$BENCHTIME")
echo "$raw" >&2
render_json "$raw" "$BENCHTIME" "$FROZEN_ENTRIES" > "$CAMPAIGN_OUT"
echo "wrote $CAMPAIGN_OUT" >&2

raw=$(go test ./cmd/dcrmd -run '^$' \
  -bench 'BenchmarkDcrmdHotServe' \
  -benchmem -benchtime "$BENCHTIME")
echo "$raw" >&2
render_json "$raw" "$BENCHTIME" > "$SERVE_OUT"
echo "wrote $SERVE_OUT" >&2

# Fleet scaling: each worker is pinned to one campaign goroutine, so the
# workers=3/workers=1 wall-clock ratio reflects min(workers, cores) — it
# approaches 3x on a multi-core host and 1x on a single-core one (the
# compare script checks its own core count before warning on the ratio).
raw=$(go test ./cmd/dcrmd -run '^$' \
  -bench 'BenchmarkFleetCampaign' \
  -benchmem -benchtime "$BENCHTIME")
echo "$raw" >&2
render_json "$raw" "$BENCHTIME" > "$FLEET_OUT"
echo "wrote $FLEET_OUT" >&2

# Checkpoint artifact cold start: one op warms a four-checkpoint campaign
# session's full artifact set — serially (cold), fanned over the worker
# pool (prewarmed), and from the disk tier in a fresh process
# (secondprocess). The prewarmed/cold ratio reflects min(units, cores);
# the compare script gates it only on multi-core hosts.
raw=$(go test ./internal/experiments -run '^$' \
  -bench 'BenchmarkColdStart' \
  -benchmem -benchtime "$BENCHTIME")
echo "$raw" >&2
render_json "$raw" "$BENCHTIME" > "$COLD_OUT"
echo "wrote $COLD_OUT" >&2
