// Trade-off sweep (Section V-C): by choosing how many data objects to
// protect — and which scheme — a deployment picks its own point on the
// reliability/performance curve. Protecting the hot objects buys nearly all
// of the SDC reduction for a few percent of execution time; protecting
// everything costs 40–75%.
package main

import (
	"fmt"
	"log"

	"github.com/datacentric-gpu/dcrm"
)

func main() {
	log.SetFlags(0)
	lib, err := dcrm.New()
	if err != nil {
		log.Fatal(err)
	}
	const app = "P-BICG"
	w, err := lib.Workload(app)
	if err != nil {
		log.Fatal(err)
	}
	report, err := w.Profile()
	if err != nil {
		log.Fatal(err)
	}

	const runs = 200
	faults := dcrm.FaultModel{Bits: 3, Blocks: 5}
	fmt.Printf("%s: %d data objects (%d hot), %d-run campaigns, %d-bit/%d-block faults\n\n",
		app, len(report.Objects), w.HotObjectCount(), runs, faults.Bits, faults.Blocks)
	fmt.Printf("%-22s %-8s %12s %12s\n", "scheme", "objects", "SDC", "exec time")

	row := func(scheme dcrm.Scheme, level int) {
		res, err := w.Campaign(dcrm.CampaignConfig{
			Scheme: scheme,
			Level:  level,
			Faults: faults,
			Runs:   runs,
		})
		if err != nil {
			log.Fatal(err)
		}
		perf, err := w.Performance(scheme, level)
		if err != nil {
			log.Fatal(err)
		}
		note := ""
		if level == w.HotObjectCount() && scheme != dcrm.Baseline {
			note = "  ← hot objects (the paper's operating point)"
		}
		fmt.Printf("%-22s %-8d %7d/%-4d %11.2f%%%s\n",
			scheme, level, res.SDC, res.Runs, 100*(perf.NormalizedTime-1), note)
	}

	row(dcrm.Baseline, 0)
	fmt.Println()
	for _, scheme := range []dcrm.Scheme{dcrm.Detection, dcrm.Correction} {
		for level := 1; level <= len(report.Objects); level++ {
			row(scheme, level)
		}
		fmt.Println()
	}
}
