// Auto-protect: the paper identifies hot data objects by manual source-code
// analysis, and notes the flow can be automated with binary-instrumentation
// tools such as NVBit (Section IV-C). This example runs that automated flow
// end to end on an "unknown" application: profile it, identify its hot
// objects from the access pattern alone, protect exactly those, and verify
// the protection works — no source knowledge used anywhere.
package main

import (
	"fmt"
	"log"
	"strings"

	"github.com/datacentric-gpu/dcrm"
)

func main() {
	log.SetFlags(0)
	lib, err := dcrm.New()
	if err != nil {
		log.Fatal(err)
	}

	for _, name := range []string{"P-GESUMMV", "A-SRAD", "C-BlackScholes"} {
		w, err := lib.Workload(name)
		if err != nil {
			log.Fatal(err)
		}
		auto, err := w.AutoHotObjects()
		if err != nil {
			log.Fatal(err)
		}
		if len(auto) == 0 {
			fmt.Printf("%-15s no hot objects identified — flat access profile, data-centric\n", name)
			fmt.Printf("%-15s protection does not apply (the paper's Fig. 3(g)-(h) case)\n\n", "")
			continue
		}
		fmt.Printf("%-15s auto-identified hot objects: %s\n", name, strings.Join(auto, ", "))

		faults := dcrm.FaultModel{Bits: 3, Blocks: 5}
		base, err := w.Campaign(dcrm.CampaignConfig{
			Faults: faults, Runs: 150, Target: dcrm.TargetHot,
		})
		if err != nil {
			log.Fatal(err)
		}
		prot, err := w.Campaign(dcrm.CampaignConfig{
			Scheme:  dcrm.Correction,
			Objects: auto,
			Faults:  faults,
			Runs:    150,
			Target:  dcrm.TargetHot,
		})
		if err != nil {
			log.Fatal(err)
		}
		perf, err := w.PerformanceObjects(dcrm.Correction, auto)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-15s SDC %d/%d → %d/%d with auto-protection (%+.2f%% time, %d B replicas)\n\n",
			"", base.SDC, base.Runs, prot.SDC, prot.Runs,
			100*(perf.NormalizedTime-1), perf.ReplicaBytes)
	}
}
