// Quickstart: profile an application, find its hot data objects, and show
// the paper's core result end-to-end — multi-bit faults in hot memory
// corrupt the output silently at baseline, while the detection scheme
// terminates the run and the correction scheme repairs it, all at a
// performance overhead of a few percent.
package main

import (
	"fmt"
	"log"

	"github.com/datacentric-gpu/dcrm"
)

func main() {
	log.SetFlags(0)
	lib, err := dcrm.New()
	if err != nil {
		log.Fatal(err)
	}
	w, err := lib.Workload("P-BICG")
	if err != nil {
		log.Fatal(err)
	}

	// 1. Offline profiling: which data objects are hot?
	report, err := w.Profile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%s access profile (hot pattern: %v, max/min block reads: %.0f×)\n",
		report.App, report.HotPattern, report.MaxMinRatio)
	for _, o := range report.Objects {
		marker := " "
		if o.Hot {
			marker = "*"
		}
		fmt.Printf("  %s %-4s %8d B  %10d reads\n", marker, o.Name, o.SizeBytes, o.Reads)
	}
	fmt.Printf("hot objects: %.3f%% of memory, %.1f%% of accesses\n\n",
		report.HotSizePercent, report.HotAccessPercent)

	// 2. Fault injection into the hot blocks, with and without protection.
	faults := dcrm.FaultModel{Bits: 3, Blocks: 1}
	const runs = 300
	for _, scheme := range []dcrm.Scheme{dcrm.Baseline, dcrm.Detection, dcrm.Correction} {
		res, err := w.Campaign(dcrm.CampaignConfig{
			Scheme: scheme,
			Faults: faults,
			Runs:   runs,
			Target: dcrm.TargetHot,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-22s SDC %3d/%d   detected %3d   masked %3d\n",
			scheme, res.SDC, res.Runs, res.Detected, res.Masked)
	}

	// 3. What does the protection cost?
	det, err := w.Performance(dcrm.Detection, w.HotObjectCount())
	if err != nil {
		log.Fatal(err)
	}
	cor, err := w.Performance(dcrm.Correction, w.HotObjectCount())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\noverhead: detection %+.2f%%, correction %+.2f%% (paper: +1.2%% / +3.4%% on average)\n",
		100*(det.NormalizedTime-1), 100*(cor.NormalizedTime-1))
}
