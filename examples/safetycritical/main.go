// Safety-critical scenario: the paper's motivating example. A convolutional
// digit classifier (C-NN) runs inference while its network weights — the
// hot data objects Layer1_Weights and Layer2_Weights — sit in fault-prone
// GPU memory. Multi-bit faults there flip classifications silently, which
// in an autonomous-vehicle perception stack means acting on a wrong answer.
// Partial replication of just those weights (2.15% of the application's
// memory in the paper) turns silent misclassifications into either detected
// terminations or corrected, correct answers.
package main

import (
	"fmt"
	"log"

	"github.com/datacentric-gpu/dcrm"
)

func main() {
	log.SetFlags(0)
	lib, err := dcrm.New()
	if err != nil {
		log.Fatal(err)
	}
	w, err := lib.Workload("C-NN")
	if err != nil {
		log.Fatal(err)
	}

	report, err := w.Profile()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("C-NN data objects (a * marks the hot weights the paper replicates):")
	for _, o := range report.Objects {
		marker := " "
		if o.Hot {
			marker = "*"
		}
		fmt.Printf("  %s %-16s %9d B %12d reads\n", marker, o.Name, o.SizeBytes, o.Reads)
	}
	fmt.Printf("hot weights: %.2f%% of application memory (paper: 2.15%%)\n\n", report.HotSizePercent)

	// Inject multi-bit faults into the weight blocks and count runs where
	// the classifier silently mislabels images.
	const runs = 120
	faults := dcrm.FaultModel{Bits: 4, Blocks: 5}
	fmt.Printf("faults: %d-bit stuck-at in %d weight blocks, %d runs each\n\n",
		faults.Bits, faults.Blocks, runs)

	for _, scheme := range []dcrm.Scheme{dcrm.Baseline, dcrm.Detection, dcrm.Correction} {
		res, err := w.Campaign(dcrm.CampaignConfig{
			Scheme: scheme,
			Faults: faults,
			Runs:   runs,
			Target: dcrm.TargetHot,
		})
		if err != nil {
			log.Fatal(err)
		}
		switch scheme {
		case dcrm.Baseline:
			fmt.Printf("unprotected:   %3d/%d runs silently misclassified images\n", res.SDC, res.Runs)
		case dcrm.Detection:
			fmt.Printf("detection:     %3d/%d silent, %3d terminated safely (rerun instead of acting on a wrong label)\n",
				res.SDC, res.Runs, res.Detected)
		case dcrm.Correction:
			fmt.Printf("correction:    %3d/%d silent, %3d repaired in place by majority vote\n",
				res.SDC, res.Runs, res.Masked)
		}
	}

	cor, err := w.Performance(dcrm.Correction, w.HotObjectCount())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncost of correction: %+.2f%% execution time, %d B of replica DRAM\n",
		100*(cor.NormalizedTime-1), cor.ReplicaBytes)
}
