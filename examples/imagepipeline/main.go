// Image pipeline: the AxBench-style filters (Laplacian, Sobel, Meanfilter)
// whose hot data objects are tiny — a 3×3 filter and the width/height
// scalars, well under 0.01% of the application's memory — yet absorb most
// of its read accesses (73% for the edge filters in the paper). A fault in
// one of those few bytes warps the entire output image; protecting just
// them restores output quality at negligible cost.
package main

import (
	"fmt"
	"log"

	"github.com/datacentric-gpu/dcrm"
)

func main() {
	log.SetFlags(0)
	lib, err := dcrm.New()
	if err != nil {
		log.Fatal(err)
	}

	const runs = 150
	faults := dcrm.FaultModel{Bits: 2, Blocks: 1}
	fmt.Printf("per-filter campaigns: %d-bit fault in %d hot block, %d runs, NRMSE threshold 2%%\n\n",
		faults.Bits, faults.Blocks, runs)

	for _, name := range []string{"A-Laplacian", "A-Sobel", "A-Meanfilter"} {
		w, err := lib.Workload(name)
		if err != nil {
			log.Fatal(err)
		}
		report, err := w.Profile()
		if err != nil {
			log.Fatal(err)
		}

		base, err := w.Campaign(dcrm.CampaignConfig{
			Faults: faults, Runs: runs, Target: dcrm.TargetHot,
		})
		if err != nil {
			log.Fatal(err)
		}
		cor, err := w.Campaign(dcrm.CampaignConfig{
			Scheme: dcrm.Correction, Faults: faults, Runs: runs, Target: dcrm.TargetHot,
		})
		if err != nil {
			log.Fatal(err)
		}
		perf, err := w.Performance(dcrm.Correction, w.HotObjectCount())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s hot: %d objects, %.4f%% of memory, %.1f%% of accesses\n",
			name, w.HotObjectCount(), report.HotSizePercent, report.HotAccessPercent)
		fmt.Printf("              corrupted images: %d/%d unprotected → %d/%d with correction (%+.2f%% time)\n\n",
			base.SDC, base.Runs, cor.SDC, cor.Runs, 100*(perf.NormalizedTime-1))
	}
}
