package dcrm

import (
	"testing"
)

// sharedLib caches one library across the package's tests.
var testLib *Library

func lib(t *testing.T) *Library {
	t.Helper()
	if testLib == nil {
		l, err := New(WithFastNN(), WithSeed(1))
		if err != nil {
			t.Fatalf("New: %v", err)
		}
		testLib = l
	}
	return testLib
}

func TestApplicationsListed(t *testing.T) {
	l := lib(t)
	apps := l.Applications()
	if len(apps) != 10 {
		t.Fatalf("Applications() = %d, want 10", len(apps))
	}
	if got := len(l.EvaluatedApplications()); got != 8 {
		t.Fatalf("EvaluatedApplications() = %d, want 8", got)
	}
	if _, err := l.Workload("no-such-app"); err == nil {
		t.Error("unknown workload accepted")
	}
}

func TestWorkloadProfile(t *testing.T) {
	w, err := lib(t).Workload("P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	if w.Name() != "P-BICG" || w.HotObjectCount() != 2 {
		t.Fatalf("workload meta wrong: %s/%d", w.Name(), w.HotObjectCount())
	}
	rep, err := w.Profile()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.HotPattern {
		t.Error("P-BICG should show the hot pattern")
	}
	if len(rep.Objects) != 3 {
		t.Fatalf("objects = %d, want 3", len(rep.Objects))
	}
	hot := 0
	for _, o := range rep.Objects {
		if o.Hot {
			hot++
			if !o.ReadOnly {
				t.Errorf("hot object %s not read-only", o.Name)
			}
		}
	}
	if hot != 2 {
		t.Errorf("hot objects = %d, want 2", hot)
	}
	if rep.HotSizePercent <= 0 || rep.HotSizePercent > 5 {
		t.Errorf("hot size %% = %v", rep.HotSizePercent)
	}
}

func TestCampaignSchemes(t *testing.T) {
	w, err := lib(t).Workload("P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	base, err := w.Campaign(CampaignConfig{
		Runs:   60,
		Faults: FaultModel{Bits: 3, Blocks: 5},
		Target: TargetHot,
	})
	if err != nil {
		t.Fatal(err)
	}
	if base.SDC == 0 {
		t.Fatal("baseline hot-targeted campaign produced no SDCs")
	}
	det, err := w.Campaign(CampaignConfig{
		Scheme: Detection,
		Runs:   60,
		Faults: FaultModel{Bits: 3, Blocks: 5},
		Target: TargetHot,
	})
	if err != nil {
		t.Fatal(err)
	}
	if det.SDC >= base.SDC {
		t.Errorf("detection SDC %d not below baseline %d", det.SDC, base.SDC)
	}
	if det.Detected == 0 {
		t.Error("detection campaign recorded no terminations")
	}
	cor, err := w.Campaign(CampaignConfig{
		Scheme: Correction,
		Runs:   60,
		Faults: FaultModel{Bits: 3, Blocks: 5},
		Target: TargetHot,
	})
	if err != nil {
		t.Fatal(err)
	}
	if cor.SDC >= base.SDC {
		t.Errorf("correction SDC %d not below baseline %d", cor.SDC, base.SDC)
	}
	if cor.Detected != 0 {
		t.Errorf("correction terminated %d runs; it should repair", cor.Detected)
	}
	if got := base.Runs; got != 60 {
		t.Errorf("runs = %d", got)
	}
}

func TestCampaignValidation(t *testing.T) {
	w, err := lib(t).Workload("P-MVT")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Campaign(CampaignConfig{Faults: FaultModel{Bits: 99, Blocks: 1}, Runs: 1}); err == nil {
		t.Error("invalid fault model accepted")
	}
	if _, err := w.Campaign(CampaignConfig{Target: Target(99), Runs: 1}); err == nil {
		t.Error("invalid target accepted")
	}
}

func TestPerformance(t *testing.T) {
	w, err := lib(t).Workload("P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	base, err := w.Performance(Baseline, 0)
	if err != nil {
		t.Fatal(err)
	}
	if base.Cycles == 0 || base.NormalizedTime != 1 {
		t.Fatalf("baseline perf wrong: %+v", base)
	}
	det, err := w.Performance(Detection, w.HotObjectCount())
	if err != nil {
		t.Fatal(err)
	}
	if det.NormalizedTime < 1 || det.NormalizedTime > 1.2 {
		t.Errorf("hot detection overhead = %.4f, want small and ≥1", det.NormalizedTime)
	}
	if det.ReplicaBytes == 0 {
		t.Error("no replica bytes reported")
	}
	cor, err := w.Performance(Correction, 3) // every object
	if err != nil {
		t.Fatal(err)
	}
	if cor.NormalizedTime <= det.NormalizedTime {
		t.Errorf("full correction (%.3f) not above hot detection (%.3f)",
			cor.NormalizedTime, det.NormalizedTime)
	}
}

func TestSchemeStrings(t *testing.T) {
	if Baseline.String() != "baseline" || Detection.String() != "detection" ||
		Correction.String() != "detection+correction" {
		t.Error("scheme strings wrong")
	}
}

func TestAutoHotObjects(t *testing.T) {
	w, err := lib(t).Workload("P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	auto, err := w.AutoHotObjects()
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]bool{"p": true, "r": true}
	if len(auto) != 2 || !want[auto[0]] || !want[auto[1]] {
		t.Fatalf("AutoHotObjects = %v, want p and r", auto)
	}
	// The identified set drives campaigns and performance directly.
	res, err := w.Campaign(CampaignConfig{
		Scheme:  Correction,
		Objects: auto,
		Faults:  FaultModel{Bits: 3, Blocks: 5},
		Runs:    40,
		Target:  TargetHot,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SDC != 0 {
		t.Errorf("auto-protected campaign SDC = %d, want 0", res.SDC)
	}
	perf, err := w.PerformanceObjects(Correction, auto)
	if err != nil {
		t.Fatal(err)
	}
	if perf.NormalizedTime < 1 || perf.NormalizedTime > 1.1 {
		t.Errorf("auto-protection overhead = %.4f", perf.NormalizedTime)
	}
	if perf.ReplicaBytes == 0 {
		t.Error("no replica bytes reported")
	}
}

func TestAutoHotObjectsEmptyForFlatProfile(t *testing.T) {
	w, err := lib(t).Workload("C-BlackScholes")
	if err != nil {
		t.Fatal(err)
	}
	auto, err := w.AutoHotObjects()
	if err != nil {
		t.Fatal(err)
	}
	if len(auto) != 0 {
		t.Errorf("flat-profile app identified hot objects: %v", auto)
	}
}

func TestCampaignUnknownObjectRejected(t *testing.T) {
	w, err := lib(t).Workload("P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	_, err = w.Campaign(CampaignConfig{
		Scheme:  Detection,
		Objects: []string{"no-such-object"},
		Runs:    1,
	})
	if err == nil {
		t.Error("unknown object name accepted")
	}
}
