package experiments

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/timing"
)

// Timeline returns the checkpoint's memoized store-commit timeline: one
// instrumented timing replay with the engine's OnStore injection hook
// attached records the last store-commit cycle of every block plus the
// replay's total span. The transient fault model consults it on every run
// to decide whether a later store overwrites (masks) the injected flip, so
// the per-checkpoint cost is one replay — shared by all of the
// checkpoint's campaigns, like the miss selector's replay — or one store
// fetch when an earlier process already persisted the timeline artifact.
func (cp *Checkpoint) Timeline() (*fault.Timeline, error) {
	cp.timelineOnce.Do(func() {
		cp.timeline, cp.timelineErr = artifactDo(cp, ArtifactTimeline, func() (*fault.Timeline, error) {
			return captureTimeline(cp)
		})
		if cp.timelineErr == nil {
			cp.addLazyBytes(timelineFootprint(cp.timeline))
		}
	})
	return cp.timeline, cp.timelineErr
}

// captureTimeline performs the instrumented replay. It uses the same
// scaled-cache configuration as the Fig. 8 miss histogram (weightConfig):
// the timeline answers a question about the L2/DRAM fault domain, and the
// scaled hierarchy is the one that exposes data to it.
func captureTimeline(cp *Checkpoint) (*fault.Timeline, error) {
	traces, err := cp.App.TraceRun(nil)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s timeline trace: %w", cp.App.Name, err)
	}
	var tplan timing.ProtectionPlan
	if cp.Plan != nil {
		tplan = cp.Plan
	}
	eng, err := timing.New(weightConfig(), tplan)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s timeline engine: %w", cp.App.Name, err)
	}
	last := make(map[arch.BlockAddr]int64)
	eng.OnStore = func(blk arch.BlockAddr, at int64) {
		if at > last[blk] {
			last[blk] = at
		}
	}
	stats, err := eng.RunApp(cp.App.Name, traces)
	if err != nil {
		return nil, fmt.Errorf("experiments: %s timeline replay: %w", cp.App.Name, err)
	}
	total := stats.TotalCycles()
	if total < 1 {
		total = 1
	}
	return &fault.Timeline{TotalCycles: total, LastStore: last}, nil
}
