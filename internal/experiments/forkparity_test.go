package experiments

import (
	"math/rand"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
)

// TestCampaignForkParity is the fast-path equivalence contract: for every
// application and scheme, a campaign over the fork + checkpoint path must
// produce bit-identical Results to the legacy clone-per-run path — at one
// worker and at sixteen, unbatched (Batch 1), partially batched (8), and
// at the full bit-parallel width (64). This also serves as the
// serial-vs-parallel campaign determinism gate (run under -race in CI).
func TestCampaignForkParity(t *testing.T) {
	s := testSuite(t)
	const (
		runs = 6
		seed = int64(99)
	)
	// 3 stuck bits per word: about half the injected words escape the
	// inert-fault prune, so both the pruned path and the executed path are
	// exercised in every campaign.
	model := fault.StuckAt{BitsPerWord: 3, Blocks: 1}

	for _, name := range s.AllNames() {
		for _, scheme := range []core.Scheme{core.None, core.Detection, core.Correction} {
			base, err := s.App(name)
			if err != nil {
				t.Fatal(err)
			}
			level := 0
			if scheme != core.None {
				level = base.HotCount
			}
			cp, err := s.Checkpoint(name, scheme, level)
			if err != nil {
				t.Fatal(err)
			}
			// Whole-image selector: input objects, outputs, padding, and (for
			// protected schemes) replicas are all reachable.
			blocks := make([]arch.BlockAddr, cp.App.Mem.TotalBlocks())
			for i := range blocks {
				blocks[i] = arch.BlockAddr(i)
			}
			sel, err := fault.NewSetSelector(blocks)
			if err != nil {
				t.Fatal(err)
			}

			// Legacy path: deep clone per run, full output extraction and
			// metric evaluation per run.
			golden, err := s.Golden(name)
			if err != nil {
				t.Fatal(err)
			}
			legacy, err := fault.Campaign{Runs: runs, Seed: seed, Workers: 1}.Execute(
				func(_ int, rng *rand.Rand) (fault.Outcome, error) {
					clone := cp.App.Mem.Clone()
					if _, err := fault.Inject(clone, rng, model, sel, nil); err != nil {
						return 0, err
					}
					return ClassifyRun(cp.App, clone, cp.Plan, golden)
				})
			if err != nil {
				t.Fatal(err)
			}

			for _, workers := range []int{1, 16} {
				for _, batch := range []int{1, 8, 64} {
					got, err := cp.Campaign(fault.Campaign{Runs: runs, Seed: seed, Workers: workers, Batch: batch}, model, sel)
					if err != nil {
						t.Fatal(err)
					}
					if got != legacy {
						t.Errorf("%s %v L%d workers=%d batch=%d: fork path %+v != legacy clone path %+v",
							name, scheme, level, workers, batch, got, legacy)
					}
				}
			}
		}
	}
}
