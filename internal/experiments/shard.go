package experiments

import (
	"context"
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/fleet"
	"github.com/datacentric-gpu/dcrm/internal/kernels"
	"github.com/datacentric-gpu/dcrm/internal/store"
)

// ValidateSpec vets a fleet campaign spec without running anything: the
// scheme, space, and fault model must parse and the application must be
// known. The daemon wires this into the coordinator so a typo'd
// submission fails at POST time with a clear message instead of failing
// shards on workers.
func ValidateSpec(spec fleet.CampaignSpec) error {
	if _, err := core.ParseScheme(spec.Scheme); err != nil {
		return err
	}
	switch spec.Space {
	case "hot", "rest", "miss":
	default:
		return fmt.Errorf("experiments: unknown injection space %q (want hot, rest, or miss)", spec.Space)
	}
	if _, err := fault.ParseModel(spec.Model); err != nil {
		return err
	}
	if _, err := kernels.ByName(spec.App); err != nil {
		return err
	}
	if spec.Batch < 0 {
		return fmt.Errorf("experiments: campaign batch must be non-negative (0 = auto, 1 = unbatched), got %d", spec.Batch)
	}
	return nil
}

// shardSelector resolves the spec's injection space against the suite:
// the Fig. 6 hot/rest block sets or the Fig. 9 miss-weighted whole-space
// selector (one timing run, memoized on the checkpoint).
func shardSelector(s *Suite, cp *Checkpoint, spec fleet.CampaignSpec) (fault.Selector, error) {
	if spec.Space == "miss" {
		return cp.MissSelector()
	}
	blocks, err := s.spaceBlocks(spec.App, spec.Space)
	if err != nil {
		return nil, err
	}
	return fault.NewSetSelector(blocks)
}

// RunShard executes one fleet shard — the run-index range [shard.Start,
// shard.End) of the campaign shard.Spec describes — against the suite's
// memoized checkpoint and fork pools, and returns the shard's outcome
// counts plus the content-addressed store key they were published under.
//
// Results are served through the suite's store: a shard key folds the
// full suite identity, the campaign spec, and the run range, so a
// restarted worker (or any peer sharing a disk-backed store) fetches the
// counts instead of recomputing them, and two different campaigns can
// never alias. Because run i's random stream is derived from (Seed, i)
// exactly as the single-process path derives it, merging every shard of a
// split reproduces the serial campaign result byte for byte.
func RunShard(ctx context.Context, s *Suite, shard fleet.Shard) (fleet.Counts, string, error) {
	spec := shard.Spec
	scheme, err := core.ParseScheme(spec.Scheme)
	if err != nil {
		return fleet.Counts{}, "", err
	}
	model, err := fault.ParseModel(spec.Model)
	if err != nil {
		return fleet.Counts{}, "", err
	}
	key := s.key("shard").
		Field("app", spec.App).
		Field("scheme", spec.Scheme).
		Field("level", spec.Level).
		Field("space", spec.Space).
		Field("model", fault.ModelKey(model)).
		Field("runs", spec.Runs).
		Field("campaignSeed", spec.Seed).
		Field("batch", s.batchFor(spec.Batch)).
		Field("range", fmt.Sprintf("%d-%d", shard.Start, shard.End)).
		Key()
	counts, err := store.Do(s.st, key, store.Options[fleet.Counts]{Persist: true},
		func() (fleet.Counts, error) {
			// Prewarm the shard's checkpoint artifacts in parallel (the
			// worker's heartbeat loop runs on its own goroutine, so the lease
			// stays alive while artifacts build or stream in from disk). The
			// campaign below then starts against fully warm state.
			if ps, err := s.ShardPrewarmSpec(spec); err == nil {
				if err := s.Prewarm(ctx, []CheckpointSpec{ps}); err != nil {
					return fleet.Counts{}, err
				}
			}
			cp, err := s.Checkpoint(spec.App, scheme, spec.Level)
			if err != nil {
				return fleet.Counts{}, err
			}
			sel, err := shardSelector(s, cp, spec)
			if err != nil {
				return fleet.Counts{}, err
			}
			c := s.campaign(spec.Runs, spec.Seed, spec.Batch)
			c.Context = ctx
			res, err := cp.CampaignRange(c, shard.Start, shard.End, model, sel)
			if err != nil {
				return fleet.Counts{}, fmt.Errorf("experiments: shard %s [%d, %d): %w",
					spec, shard.Start, shard.End, err)
			}
			return fleet.CountsFromResult(res), nil
		})
	if err != nil {
		return fleet.Counts{}, "", err
	}
	return counts, key.Hash(), nil
}

// ShardRunner adapts the suite to the fleet worker's runner interface.
func ShardRunner(s *Suite) fleet.ShardRunner {
	return func(ctx context.Context, shard fleet.Shard) (fleet.Counts, string, error) {
		return RunShard(ctx, s, shard)
	}
}
