package experiments

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/timing"
)

// figureResult serves one whole-figure result through the content-addressed
// store: a repeat request for the same figure under the same inputs — in
// this process or, with a disk-backed store, any earlier one — skips the
// entire computation. The requests/computed counter pair is the observable
// proof of coalescing: under any number of concurrent identical requests,
// computed rises once per distinct key.
func figureResult[T any](s *Suite, figure string, kb *store.KeyBuilder, compute func() (T, error)) (T, error) {
	if reg := s.cfg.Telemetry; reg != nil {
		reg.CounterVec("dcrm_experiment_results_requests_total",
			"Figure/table result requests (hits + computations).", "figure").With(figure).Inc()
	}
	return store.Do(s.st, kb.Key(), store.Options[T]{Persist: true}, func() (T, error) {
		if reg := s.cfg.Telemetry; reg != nil {
			reg.CounterVec("dcrm_experiment_results_computed_total",
				"Figure/table results actually computed (store misses).", "figure").With(figure).Inc()
		}
		return compute()
	})
}

// Fig3AccessProfiles profiles every application (including the two
// counter-examples) and returns the Fig. 3 series, served through the
// result store. Applications are profiled concurrently on the suite's
// worker pool on a miss.
func Fig3AccessProfiles(s *Suite, points int) ([]Fig3Result, error) {
	if points <= 0 {
		points = 100
	}
	return figureResult(s, "fig3",
		s.key("fig3").Field("points", points),
		func() ([]Fig3Result, error) { return fig3AccessProfiles(s, points) })
}

// Fig4WarpSharing returns the Fig. 4 series, served through the result
// store (profiles already collected for Fig. 3 are reused from the store).
func Fig4WarpSharing(s *Suite, points int) ([]Fig4Result, error) {
	if points <= 0 {
		points = 100
	}
	return figureResult(s, "fig4",
		s.key("fig4").Field("points", points),
		func() ([]Fig4Result, error) { return fig4WarpSharing(s, points) })
}

// Table3DataObjects reproduces Table III for the evaluated applications,
// served through the result store.
func Table3DataObjects(s *Suite) ([]Table3Row, error) {
	return figureResult(s, "table3",
		s.key("table3"),
		func() ([]Table3Row, error) { return table3DataObjects(s) })
}

// Fig6HotVsRest runs the Fig. 6 experiment — inject faults into hot memory
// blocks versus the rest of the accessed blocks (no protection enabled) and
// count SDC outcomes — served through the result store. Every
// result-determining knob of the resolved config is folded into the key, so
// a changed run count, seed, fault model set, or application list computes
// fresh while an identical request is a hit.
func Fig6HotVsRest(s *Suite, cfg Fig6Config) ([]Fig6Cell, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Apps) == 0 {
		cfg.Apps = s.EvaluatedNames()
	}
	return figureResult(s, "fig6",
		s.key("fig6").
			Field("runs", cfg.Runs).
			Field("seed", cfg.Seed).
			Field("models", fault.ModelsKey(cfg.Models)).
			Field("apps", cfg.Apps).
			Field("batch", s.batchFor(cfg.Batch)),
		func() ([]Fig6Cell, error) { return fig6HotVsRest(s, cfg) })
}

// Fig7Overhead runs the Fig. 7 performance sweep, served through the
// result store.
func Fig7Overhead(s *Suite, cfg Fig7Config) ([]Fig7Point, error) {
	if len(cfg.Apps) == 0 {
		cfg.Apps = s.EvaluatedNames()
	}
	if cfg.Policy == 0 {
		cfg.Policy = timing.GTO
	}
	return figureResult(s, "fig7",
		s.key("fig7").
			Field("apps", cfg.Apps).
			Field("policy", cfg.Policy),
		func() ([]Fig7Point, error) { return fig7Overhead(s, cfg) })
}

// Fig9Resilience runs the Fig. 9 resilience evaluation, served through the
// result store.
func Fig9Resilience(s *Suite, cfg Fig9Config) ([]Fig9Cell, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Apps) == 0 {
		cfg.Apps = s.EvaluatedNames()
	}
	return figureResult(s, "fig9",
		s.key("fig9").
			Field("runs", cfg.Runs).
			Field("seed", cfg.Seed).
			Field("models", fault.ModelsKey(cfg.Models)).
			Field("apps", cfg.Apps).
			Field("schemes", cfg.Schemes).
			Field("batch", s.batchFor(cfg.Batch)),
		func() ([]Fig9Cell, error) { return fig9Resilience(s, cfg) })
}

// SimConfig selects one timing-simulator configuration for Simulate.
type SimConfig struct {
	// App names the application.
	App string
	// Scheme and Level select the protection plan (None/0 = baseline).
	Scheme core.Scheme
	Level  int
	// Policy selects the warp scheduler (default timing.GTO).
	Policy timing.SchedulerPolicy
}

// Simulate runs one (application, scheme, level, scheduler) configuration
// on the timing simulator, served through the result store: cmd/gpusim's
// warm-start path. Runs that need a live engine attachment (a Chrome trace
// recorder) must use TraceApp instead — a store hit has no engine to
// record.
func Simulate(s *Suite, cfg SimConfig) (timing.AppStats, error) {
	if cfg.Policy == 0 {
		cfg.Policy = timing.GTO
	}
	return figureResult(s, "sim",
		s.key("sim").
			Field("app", cfg.App).
			Field("scheme", cfg.Scheme).
			Field("level", cfg.Level).
			Field("policy", cfg.Policy),
		func() (timing.AppStats, error) {
			traces, err := s.Traces(cfg.App)
			if err != nil {
				return timing.AppStats{}, err
			}
			var tplan timing.ProtectionPlan
			if cfg.Scheme != core.None && cfg.Level > 0 {
				cp, err := s.Checkpoint(cfg.App, cfg.Scheme, cfg.Level)
				if err != nil {
					return timing.AppStats{}, err
				}
				if cp.Plan != nil {
					tplan = cp.Plan
				}
			}
			eng, err := timing.New(arch.Default(), tplan)
			if err != nil {
				return timing.AppStats{}, fmt.Errorf("experiments: simulate %s %v L%d: %w", cfg.App, cfg.Scheme, cfg.Level, err)
			}
			eng.Shards = s.cfg.SimShards
			eng.Policy = cfg.Policy
			eng.Metrics = s.cfg.Telemetry
			st, err := eng.RunApp(cfg.App, traces)
			if err != nil {
				return timing.AppStats{}, fmt.Errorf("experiments: simulate %s %v L%d: %w", cfg.App, cfg.Scheme, cfg.Level, err)
			}
			return st, nil
		})
}
