package experiments

import (
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
)

// Campaign benchmark shape: the per-(configuration) cost of the two
// fault-injection figures, at a statistically small but non-trivial run
// count so one op is one campaign, not one run. BENCH_campaign.json
// records the committed baseline (plus the pre-fork clone-path numbers
// under the *PreFork names); scripts/bench.sh regenerates it and CI
// compares warn-only via scripts/bench_compare.sh.
const benchCampaignRuns = 100

// benchHotSelector builds the Fig. 6 hot-block selector for an app the
// same way fig6App does.
func benchHotSelector(b *testing.B, s *Suite, name string) *fault.SetSelector {
	b.Helper()
	app, err := s.App(name)
	if err != nil {
		b.Fatal(err)
	}
	p, err := s.Profile(name)
	if err != nil {
		b.Fatal(err)
	}
	hotNames := make(map[string]bool, app.HotCount)
	for _, o := range app.HotObjects() {
		hotNames[o.Name] = true
	}
	var hotBlocks []arch.BlockAddr
	for _, blk := range p.Blocks {
		if hotNames[blk.Object] {
			hotBlocks = append(hotBlocks, blk.Block)
		}
	}
	sel, err := fault.NewSetSelector(hotBlocks)
	if err != nil {
		b.Fatal(err)
	}
	return sel
}

// BenchmarkCampaignFig6 measures one Fig. 6 hot-set campaign for P-BICG
// (2-bit/1-block faults, the figure's first configuration) — the per-cell
// cost of the fig6 grid, on the fork + checkpoint fast path.
func BenchmarkCampaignFig6(b *testing.B) {
	s := testSuite(b)
	sel := benchHotSelector(b, s, "P-BICG")
	model := fault.StuckAt{BitsPerWord: 2, Blocks: 1}
	cp, err := s.Checkpoint("P-BICG", core.None, 0)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := cp.Golden(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := cp.Campaign(fault.Campaign{Runs: benchCampaignRuns, Seed: 7, Workers: 1}, model, sel)
		if err != nil {
			b.Fatal(err)
		}
		if res.Runs != benchCampaignRuns {
			b.Fatalf("runs = %d", res.Runs)
		}
	}
}

// BenchmarkCampaignFig9 measures one Fig. 9 configuration task for P-BICG
// under detection at the hot protection level: checkpoint lookup,
// miss-weighted selector, and a 2-bit/1-block campaign — the per-task cost
// of the fig9 sweep once its (app, scheme, level) checkpoint is memoized,
// as it is for every fault model after a sweep's first.
func BenchmarkCampaignFig9(b *testing.B) {
	s := testSuite(b)
	baseApp, err := s.App("P-BICG")
	if err != nil {
		b.Fatal(err)
	}
	level := baseApp.HotCount
	model := fault.StuckAt{BitsPerWord: 2, Blocks: 1}
	warm, err := s.Checkpoint("P-BICG", core.Detection, level)
	if err != nil {
		b.Fatal(err)
	}
	if _, err := warm.Golden(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cp, err := s.Checkpoint("P-BICG", core.Detection, level)
		if err != nil {
			b.Fatal(err)
		}
		sel, err := cp.MissSelector()
		if err != nil {
			b.Fatal(err)
		}
		res, err := cp.Campaign(fault.Campaign{Runs: benchCampaignRuns, Seed: 11, Workers: 1}, model, sel)
		if err != nil {
			b.Fatal(err)
		}
		if res.Runs != benchCampaignRuns {
			b.Fatalf("runs = %d", res.Runs)
		}
	}
}
