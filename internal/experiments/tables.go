package experiments

import (
	"fmt"
	"strings"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/metrics"
)

// Table1Row is one configuration line of Table I.
type Table1Row struct {
	Parameter string
	Value     string
}

// Table1Config renders the simulated GPU configuration (Table I).
func Table1Config(cfg arch.Config) []Table1Row {
	return []Table1Row{
		{"Core clock", fmt.Sprintf("%d MHz, SIMT width = 32 (16×2)", cfg.CoreClockMHz)},
		{"Resources / core", fmt.Sprintf("%d KB shared memory, %d KB register file, %d SMs",
			cfg.SharedMemPerSM/1024, cfg.RegistersPerSM/1024, cfg.NumSMs)},
		{"L1 cache / core", fmt.Sprintf("%d KB %d-way L1 data cache, %d B lines",
			cfg.L1.SizeBytes/1024, cfg.L1.Ways, cfg.L1.LineBytes)},
		{"L2 cache", fmt.Sprintf("%d-way %d KB/channel (%d KB total), %d B lines",
			cfg.L2.Ways, cfg.L2.SizeBytes/1024, cfg.TotalL2Bytes()/1024, cfg.L2.LineBytes)},
		{"Memory model", fmt.Sprintf("%d GDDR5 controllers, FR-FCFS, %d banks/channel, %d MHz",
			cfg.NumMemChannels, cfg.DRAMBanksPerChannel, cfg.MemClockMHz)},
		{"Interconnect", fmt.Sprintf("%d MHz crossbar, %d-cycle traversal",
			cfg.InterconnectClockMHz, cfg.InterconnectLatency)},
	}
}

// Table2Row describes one application's output and error metric (Table II).
type Table2Row struct {
	App          string
	OutputFormat string
	Metric       metrics.Kind
	Threshold    float64
}

// outputFormats mirrors Table II's descriptions.
var outputFormats = map[string]string{
	"C-NN":         "Vector classifications",
	"P-BICG":       "Result vector",
	"P-GESUMMV":    "Result vector",
	"P-MVT":        "Result vector",
	"A-Laplacian":  "Filtered image",
	"A-Meanfilter": "Filtered image",
	"A-Sobel":      "Edge-detected image",
	"A-SRAD":       "Image",
}

// Table2ErrorMetrics reproduces Table II from the applications' metric
// definitions.
func Table2ErrorMetrics(s *Suite) ([]Table2Row, error) {
	var out []Table2Row
	for _, name := range s.EvaluatedNames() {
		app, err := s.App(name)
		if err != nil {
			return nil, err
		}
		out = append(out, Table2Row{
			App:          name,
			OutputFormat: outputFormats[name],
			Metric:       app.Metric.Kind,
			Threshold:    app.Metric.Threshold,
		})
	}
	return out, nil
}

// RenderTable formats rows as an aligned text table for the CLI tools.
func RenderTable(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// Sparkline renders a data series as a one-line ASCII chart for the CLI
// tools: eight brightness levels, normalized to the series maximum.
func Sparkline(series []float64) string {
	if len(series) == 0 {
		return ""
	}
	levels := []rune("▁▂▃▄▅▆▇█")
	max := series[0]
	for _, v := range series {
		if v > max {
			max = v
		}
	}
	if max <= 0 {
		max = 1
	}
	out := make([]rune, len(series))
	for i, v := range series {
		idx := int(v / max * float64(len(levels)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(levels) {
			idx = len(levels) - 1
		}
		out[i] = levels[idx]
	}
	return string(out)
}
