package experiments

import (
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
)

// maxCampaignAllocsPerRun is the steady-state allocation budget for one
// campaign run on a warm checkpoint. With the injection scratch pooled and
// per-run rngs reseeded in place, a run costs under 4 heap allocations;
// the pre-pooling path cost ~7 (the committed BENCH_campaign baseline was
// 713 allocs per 100-run Fig. 6 campaign). The bound leaves headroom for
// runtime noise while still failing loudly if a hot-path allocation
// regresses back in.
const maxCampaignAllocsPerRun = 5.0

// TestCampaignAllocRegression gates the campaign hot path's per-run heap
// allocations, on both the unbatched and the batched executor.
func TestCampaignAllocRegression(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns in -short mode")
	}
	s := testSuite(t)
	cp, err := s.Checkpoint("P-BICG", core.None, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cp.Golden(); err != nil {
		t.Fatal(err)
	}
	sel, err := cp.MissSelector()
	if err != nil {
		t.Fatal(err)
	}
	model := fault.StuckAt{BitsPerWord: 2, Blocks: 1}
	const runs = 200
	for _, batch := range []int{1, 8} {
		var rerr error
		allocs := testing.AllocsPerRun(5, func() {
			res, err := cp.Campaign(fault.Campaign{Runs: runs, Seed: 7, Workers: 1, Batch: batch}, model, sel)
			if err != nil {
				rerr = err
			}
			if res.Runs != runs {
				rerr = err
			}
		})
		if rerr != nil {
			t.Fatal(rerr)
		}
		if perRun := allocs / runs; perRun > maxCampaignAllocsPerRun {
			t.Errorf("batch=%d campaign allocates %.2f per run, budget %.1f", batch, perRun, maxCampaignAllocsPerRun)
		}
	}
}
