// Checkpoint artifact cache: the lazy pieces of a campaign Checkpoint —
// golden output + post-run image, store-commit timeline, batched-replay
// reference capture, and miss-selector weights — factored into individually
// keyed, serializable artifacts served through the suite's content-addressed
// store. Each artifact is keyed by the suite identity, the checkpoint
// configuration, its kind, and artifactFormatVersion (so encodings never
// alias across format changes), and persists through the store's checksummed
// disk tier: a second process, a restarted fleet worker, or a peer sharing
// the store directory fetches instead of recomputing. Corrupt disk entries
// are detected by the store and recomputed transparently.
//
// Byte-identity contract: both the freshly-computed and the decoded paths
// reconstruct the live checkpoint state from the same pure-data artifact
// value (golden forks are replayed from the dirty-block delta, capture
// kernels are reattached by index, selectors are rebuilt from the weights),
// so a warm start is bit-identical to a cold one by construction — the
// parity tests gate on exactly that.
package experiments

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/simt"
	"github.com/datacentric-gpu/dcrm/internal/store"
)

// artifactFormatVersion is folded into every artifact key. Bump it whenever
// any artifact encoding changes shape or meaning: old disk entries then
// simply stop being addressed, rather than decoding into the wrong state.
const artifactFormatVersion = 1

// Artifact kinds — the nodes of the checkpoint artifact DAG. All four hang
// off the checkpoint's prepared image (app + plan); none depends on another,
// so a prewarm can build them concurrently.
const (
	// ArtifactGolden is the fault-free golden run: the metric output plus
	// the post-run image as a dirty-block delta against the prepared image.
	ArtifactGolden = "golden"
	// ArtifactCapture is the recorded reference execution the batched
	// group-replay path replays against (replica footprints pre-expanded).
	ArtifactCapture = "capture"
	// ArtifactTimeline is the store-commit timeline consulted by
	// timeline-using fault models (fault.NeedsTimeline).
	ArtifactTimeline = "timeline"
	// ArtifactMissWeights is the Fig. 8 miss histogram behind the
	// miss-weighted block selector.
	ArtifactMissWeights = "missweights"
)

// ArtifactKinds lists every artifact kind in canonical order.
func ArtifactKinds() []string {
	return []string{ArtifactGolden, ArtifactCapture, ArtifactTimeline, ArtifactMissWeights}
}

// goldenArtifact is the serialized golden run: the metric output and the
// post-run memory image as a delta (mem.Memory.SnapshotBlocks) against the
// checkpoint's prepared image, which every process reconstructs identically
// from the application constructors.
type goldenArtifact struct {
	Output    []float32
	DirtyIdx  []int32
	DirtyData []byte
}

// captureArtifact is the serialized reference recording. Ok=false caches
// "capture unavailable" (recording failed or exceeded maxCaptureBytes), so
// a warm process skips the doomed recording attempt too and falls back to
// block-granular batching exactly like the process that first tried.
type captureArtifact struct {
	Ok      bool
	Kernels []captureKernelArtifact
}

// captureKernelArtifact is one kernel's recorded warps; the live Kernel
// pointer is reattached by launch index on reconstruction.
type captureKernelArtifact struct {
	Warps []*simt.WarpCapture
}

// missArtifact is the serialized miss histogram in the selector's
// deterministic block order.
type missArtifact struct {
	Blocks  []arch.BlockAddr
	Weights []float64
}

// artifactKey addresses one artifact of this checkpoint: suite identity
// (version, GPU config, seed, scale) + format version + kind + the
// checkpoint configuration key.
func (cp *Checkpoint) artifactKey(kind string) store.Key {
	return cp.suite.key("artifact").
		Field("v", artifactFormatVersion).
		Field("kind", kind).
		Field("cfg", cp.cfgKey).
		Key()
}

// artifactDo serves one artifact through the suite store: memory tier,
// then checksummed disk tier, then compute — computed at most once among
// concurrent callers by the store's singleflight, which is what gives
// Prewarm its artifact-granularity coalescing. Telemetry:
// dcrm_artifact_requests_total counts first-use requests per kind,
// dcrm_artifact_computed_total counts the requests that actually ran the
// computation — a fully warm process shows requests with zero computes.
// (A free function because Go methods cannot be generic.)
func artifactDo[T any](cp *Checkpoint, kind string, compute func() (T, error)) (T, error) {
	if cp.tele.artRequests != nil {
		cp.tele.artRequests.With(kind).Inc()
	}
	counted := func() (T, error) {
		if cp.tele.artComputed != nil {
			cp.tele.artComputed.With(kind).Inc()
		}
		return compute()
	}
	if cp.suite == nil {
		// Checkpoints built outside a suite (tests) fall back to plain
		// computation; the sync.Once wrappers still memoize per checkpoint.
		return counted()
	}
	return store.Do(cp.suite.st, cp.artifactKey(kind), store.Options[T]{Persist: true}, counted)
}

// computeGoldenArtifact runs the fault-free golden execution on a throwaway
// fork and snapshots its effects. Replicas are fault-free here, so the
// golden run skips the scheme overlay exactly like the legacy path.
func computeGoldenArtifact(cp *Checkpoint) (goldenArtifact, error) {
	f := cp.App.Mem.Fork()
	if err := cp.App.RunOn(f, nil); err != nil {
		return goldenArtifact{}, fmt.Errorf("experiments: %s golden run: %w", cp.App.Name, err)
	}
	idx, data := f.SnapshotBlocks()
	return goldenArtifact{Output: cp.App.Output(f), DirtyIdx: idx, DirtyData: data}, nil
}

// reconstructCapture rebuilds the live capture state from its artifact:
// kernels reattach to the checkpoint's kernel list by launch index. Returns
// nil when the artifact records "capture unavailable" or does not match the
// application shape (callers fall back to full per-lane execution).
func (cp *Checkpoint) reconstructCapture(art captureArtifact) *captureData {
	if !art.Ok || len(art.Kernels) != len(cp.App.Kernels) {
		return nil
	}
	log := &simt.CaptureLog{Kernels: make([]*simt.KernelCapture, len(art.Kernels))}
	for i := range art.Kernels {
		log.Kernels[i] = &simt.KernelCapture{Kernel: cp.App.Kernels[i], Warps: art.Kernels[i].Warps}
	}
	return &captureData{log: log, bufs: cp.App.Mem.Buffers()}
}

// Artifact footprint estimates for the checkpoint LRU re-accounting: the
// memory tier admits a checkpoint at its image size, then grows the
// accounted size as lazy artifacts materialize.

func goldenFootprint(art goldenArtifact) int64 {
	// output slice + the restored golden-post fork's private blocks (the
	// artifact value itself is accounted under its own store key)
	return int64(len(art.Output))*4 + int64(len(art.DirtyIdx))*4 + int64(len(art.DirtyData))
}

func timelineFootprint(tl *fault.Timeline) int64 {
	if tl == nil {
		return 0
	}
	// map overhead ≈ key + value + bucket bookkeeping per entry
	return 16 + int64(len(tl.LastStore))*48
}

func missFootprint(art missArtifact) int64 {
	// artifact blocks/weights plus the rebuilt selector's blocks/cumsum
	return 2 * (int64(len(art.Blocks))*4 + int64(len(art.Weights))*8)
}

// addLazyBytes grows the checkpoint's accounted footprint after an artifact
// materializes and re-accounts the entry in the suite store's memory tier,
// so the LRU byte budget tracks warm checkpoints instead of just their
// images.
func (cp *Checkpoint) addLazyBytes(n int64) {
	if n <= 0 {
		return
	}
	total := cp.lazyBytes.Add(n) + int64(cp.App.Mem.Size())
	if cp.suite != nil {
		cp.suite.st.UpdateSize(cp.storeKey, total)
	}
}

// footprint is the checkpoint's current accounted size: prepared image plus
// every lazy artifact materialized so far.
func (cp *Checkpoint) footprint() int64 {
	return int64(cp.App.Mem.Size()) + cp.lazyBytes.Load()
}

// BuildArtifact forces one artifact kind to exist — computing it, or
// fetching it from the store's memory or disk tier. It is the unit of work
// Suite.Prewarm fans out. Capture unavailability is not an error (the
// batched path falls back); every other kind surfaces its build error.
func (cp *Checkpoint) BuildArtifact(kind string) error {
	switch kind {
	case ArtifactGolden:
		return cp.ensureGolden()
	case ArtifactCapture:
		cp.ensureCapture()
		return nil
	case ArtifactTimeline:
		_, err := cp.Timeline()
		return err
	case ArtifactMissWeights:
		_, err := cp.MissSelector()
		return err
	default:
		return fmt.Errorf("experiments: unknown artifact kind %q", kind)
	}
}
