package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fakeClock is a manually-advanced clock: now() reads the current time,
// tests move it forward with advance().
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func TestProgressETA(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{t: time.Unix(0, 0)}
	r := &ProgressReporter{W: &buf, Now: clk.now}

	// First event starts the phase clock; the second is 10s later with
	// 2/4 done, so the completion-rate ETA is 10s/2 * 2 remaining = 10s.
	r.Report(ProgressEvent{Phase: "fig6", Done: 1, Total: 4})
	clk.advance(10 * time.Second)
	r.Report(ProgressEvent{Phase: "fig6", Done: 2, Total: 4})

	out := buf.String()
	if !strings.Contains(out, "[fig6] 2/4") {
		t.Errorf("progress line missing counts: %q", out)
	}
	if !strings.Contains(out, "elapsed 10s") {
		t.Errorf("progress line missing elapsed time: %q", out)
	}
	if !strings.Contains(out, "eta 10s") {
		t.Errorf("progress line missing ETA: %q", out)
	}
}

func TestProgressPhaseChangeResetsClock(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{t: time.Unix(0, 0)}
	r := &ProgressReporter{W: &buf, Now: clk.now}

	r.Report(ProgressEvent{Phase: "fig6", Done: 1, Total: 2})
	clk.advance(30 * time.Second)
	buf.Reset()
	// New phase: elapsed must restart from this event, not carry over.
	r.Report(ProgressEvent{Phase: "fig9", Done: 1, Total: 2})
	if out := buf.String(); !strings.Contains(out, "elapsed 0s") {
		t.Errorf("phase change did not reset the clock: %q", out)
	}
}

func TestProgressCompletionEndsLine(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{t: time.Unix(0, 0)}
	r := &ProgressReporter{W: &buf, Now: clk.now}

	r.Report(ProgressEvent{Phase: "fig6", Done: 2, Total: 2})
	if out := buf.String(); !strings.HasSuffix(out, "\n") {
		t.Errorf("completed phase did not end its line: %q", out)
	}
	if strings.Contains(buf.String(), "eta") {
		t.Errorf("completed phase still shows an ETA: %q", buf.String())
	}
}

func TestProgressZeroTotal(t *testing.T) {
	var buf bytes.Buffer
	clk := &fakeClock{t: time.Unix(0, 0)}
	r := &ProgressReporter{W: &buf, Now: clk.now}

	// A zero-task phase must not divide by zero or print an ETA; Done>=Total
	// means it terminates its line immediately.
	r.Report(ProgressEvent{Phase: "empty", Done: 0, Total: 0})
	out := buf.String()
	if !strings.Contains(out, "[empty] 0/0") {
		t.Errorf("zero-task phase rendered wrong: %q", out)
	}
	if strings.Contains(out, "eta") {
		t.Errorf("zero-task phase shows an ETA: %q", out)
	}
	if !strings.HasSuffix(out, "\n") {
		t.Errorf("zero-task phase did not end its line: %q", out)
	}
}

func TestProgressFuncQuiet(t *testing.T) {
	var buf bytes.Buffer
	if fn := Progress(true, &buf); fn != nil {
		t.Error("quiet must disable the progress hook entirely, got non-nil func")
	}
	if fn := Progress(false, &buf); fn == nil {
		t.Error("progress hook missing when not quiet")
	}
	if buf.Len() != 0 {
		t.Errorf("constructing the hook wrote output: %q", buf.String())
	}
}

// TestProgressWriterIsolated asserts the reporter writes only to its own
// writer — results printed to stdout stay byte-identical whether or not
// progress reporting is on.
func TestProgressWriterIsolated(t *testing.T) {
	var progress bytes.Buffer
	clk := &fakeClock{t: time.Unix(0, 0)}
	r := NewProgressReporter(&progress)
	r.Now = clk.now
	r.Report(ProgressEvent{Phase: "fig6", Done: 1, Total: 2})
	clk.advance(time.Second)
	r.Report(ProgressEvent{Phase: "fig6", Done: 2, Total: 2})
	if progress.Len() == 0 {
		t.Fatal("reporter wrote nothing to its writer")
	}
}
