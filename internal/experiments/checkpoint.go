package experiments

import (
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/kernels"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// Checkpoint is the reusable golden state of one (application, scheme,
// protection-level) campaign configuration: the post-input-load memory
// image with replicas allocated, the replication plan, the fault-free
// golden output and post-run image, and a pool of reusable copy-on-write
// forks. Checkpoints are built once per configuration through the suite
// memo and shared by every campaign run — across fault models, across the
// Fig. 6/7/9 experiments, and across the public Workload API — so repeat
// campaigns skip application construction, plan building, the golden run,
// and the per-run image clone entirely.
type Checkpoint struct {
	// App is the configuration's private application instance (its memory
	// image includes the plan's replicas). Treat as read-only.
	App *kernels.App
	// Plan is the replication plan bound to App.Mem (nil when the
	// configuration is unprotected).
	Plan *core.Plan

	// The golden run is lazy: consumers that only need the prepared image
	// and plan (Fig. 7's overhead tasks, for example) never pay for it.
	goldenOnce sync.Once
	golden     []float32
	goldenErr  error
	classifier fault.Classifier

	forks sync.Pool

	missOnce sync.Once
	missSel  fault.Selector
	missErr  error
	// simShards is the suite's resolved timing-replay shard count, carried
	// here so the lazy miss-selector replay runs at the suite's parallelism.
	simShards int

	// The store-commit timeline (one instrumented timing replay) is lazy
	// like the golden run: only campaigns under timeline-consulting fault
	// models (fault.NeedsTimeline) ever pay for it.
	timelineOnce sync.Once
	timeline     *fault.Timeline
	timelineErr  error

	// The reference recording for batched replay is lazy too: only batched
	// campaigns pay for it (nil capture after the once = fall back to full
	// per-lane execution).
	captureOnce sync.Once
	capture     *captureData

	// Artifact-cache plumbing (see artifact.go): the owning suite (store +
	// identity), this configuration's key, the checkpoint's own memory-tier
	// key (for lazy-footprint re-accounting), and the accounted lazy bytes.
	suite     *Suite
	cfgKey    string
	storeKey  store.Key
	lazyBytes atomic.Int64

	// scratch pools per-worker fault-injection scratch (fault.Scratch) so
	// steady-state campaign runs stop allocating selector permutations.
	scratch sync.Pool

	tele checkpointTelemetry
}

// checkpointTelemetry holds the campaign fast-path counters (all nil when
// the suite is unobserved).
type checkpointTelemetry struct {
	forks  *telemetry.Counter
	copies *telemetry.Counter
	pruned *telemetry.Counter
	pre    *telemetry.Counter
	runs   *telemetry.Counter

	// Batched-path observability: claims executed, lanes per claim, runs
	// classified through the batched path (replayed or fallback), warps
	// actually executed vs. reproduced by store application.
	batches       *telemetry.Counter
	occupancy     *telemetry.Histogram
	batchRuns     *telemetry.Counter
	fallbackRuns  *telemetry.Counter
	replayedWarps *telemetry.Counter
	appliedWarps  *telemetry.Counter

	// Artifact-cache observability: first-use artifact requests per kind vs.
	// the requests that actually ran the computation — a warm process shows
	// requests with zero computes (the CI warm-start gate asserts this).
	artRequests *telemetry.CounterVec
	artComputed *telemetry.CounterVec
}

// Checkpoint returns the memoized campaign checkpoint for the named
// application protected at the given scheme and cumulative level (level 0
// or scheme None is the unprotected baseline).
func (s *Suite) Checkpoint(name string, scheme core.Scheme, level int) (*Checkpoint, error) {
	key := fmt.Sprintf("%s|%v|L%d", name, scheme, level)
	return s.checkpoint(key, func() (*kernels.App, *core.Plan, error) {
		return s.PlanFor(name, scheme, level)
	})
}

// CheckpointForObjects is Checkpoint keyed by an explicit protected-object
// list (the public API's AutoHotObjects flow).
func (s *Suite) CheckpointForObjects(name string, scheme core.Scheme, objectNames []string) (*Checkpoint, error) {
	key := fmt.Sprintf("%s|%v|objs|%s", name, scheme, strings.Join(objectNames, ","))
	return s.checkpoint(key, func() (*kernels.App, *core.Plan, error) {
		return s.PlanForObjects(name, scheme, objectNames)
	})
}

func (s *Suite) checkpoint(key string, build func() (*kernels.App, *core.Plan, error)) (*Checkpoint, error) {
	if reg := s.cfg.Telemetry; reg != nil {
		reg.Counter("dcrm_checkpoint_requests_total",
			"Campaign checkpoint lookups (hits = requests - builds).").Inc()
	}
	// Checkpoints stay live objects (fork pools, reattached kernels) and
	// never persist as a whole; their lazy pieces persist individually as
	// artifacts (see artifact.go). The memory-tier size starts at the image
	// and is re-accounted upward as artifacts materialize (UpdateSize).
	storeKey := s.key("checkpoint").Field("cfg", key).Key()
	return store.Do(s.st, storeKey,
		store.Options[*Checkpoint]{Size: func(cp *Checkpoint) int64 {
			return cp.footprint()
		}},
		func() (*Checkpoint, error) {
			if reg := s.cfg.Telemetry; reg != nil {
				reg.Counter("dcrm_checkpoint_builds_total",
					"Campaign checkpoints built (app + plan; golden run deferred to first use).").Inc()
			}
			app, plan, err := build()
			if err != nil {
				return nil, err
			}
			return s.newCheckpoint(app, plan, key, storeKey), nil
		})
}

func (s *Suite) newCheckpoint(app *kernels.App, plan *core.Plan, cfgKey string, storeKey store.Key) *Checkpoint {
	cp := &Checkpoint{
		App: app, Plan: plan, simShards: s.cfg.SimShards,
		suite: s, cfgKey: cfgKey, storeKey: storeKey,
	}
	if reg := s.cfg.Telemetry; reg != nil {
		cp.tele = checkpointTelemetry{
			forks: reg.Counter("dcrm_campaign_forks_total",
				"Copy-on-write campaign forks created (pool misses)."),
			copies: reg.Counter("dcrm_campaign_fork_block_copies_total",
				"128 B blocks materialized by campaign forks on first write."),
			pruned: reg.Counter("dcrm_campaign_runs_pruned_total",
				"Campaign runs classified Masked without execution (provably inert faults)."),
			pre: reg.Counter("dcrm_campaign_runs_preclassified_total",
				"Campaign runs classified at injection time (store-masked or ECC-preclassified faults), skipping execution."),
			runs: reg.Counter("dcrm_campaign_fork_runs_total",
				"Campaign runs executed on copy-on-write forks."),
			batches: reg.Counter("dcrm_campaign_batches_total",
				"Batched campaign claims executed (each claim replays up to Batch runs)."),
			occupancy: reg.Histogram("dcrm_campaign_batch_occupancy",
				"Lanes per batched claim that survived pruning into group replay.",
				[]float64{0, 1, 2, 4, 8, 16, 32, 48, 64}),
			batchRuns: reg.Counter("dcrm_campaign_batch_runs_total",
				"Campaign runs classified through the batched path (group replay or fallback)."),
			fallbackRuns: reg.Counter("dcrm_campaign_batch_fallback_runs_total",
				"Batched-path runs that executed in full because no reference capture was available."),
			replayedWarps: reg.Counter("dcrm_campaign_replayed_warps_total",
				"Warps executed for real during batched group replay."),
			appliedWarps: reg.Counter("dcrm_campaign_applied_warps_total",
				"Warps reproduced by applying recorded golden stores instead of executing."),
			artRequests: reg.CounterVec("dcrm_artifact_requests_total",
				"Checkpoint artifact first-use requests by kind.", "kind"),
			artComputed: reg.CounterVec("dcrm_artifact_computed_total",
				"Checkpoint artifact requests that ran the computation (misses in both store tiers) by kind.", "kind"),
		}
	}
	return cp
}

// ensureGolden materializes the golden artifact once — running the
// fault-free execution, or fetching its recorded effects from the store —
// and reconstructs the output and post-run state the classifier compares
// against. Both paths rebuild the golden-post fork by replaying the
// artifact's dirty-block delta onto a fresh fork of the prepared image, so
// a warm start is bit-identical to a cold one.
func (cp *Checkpoint) ensureGolden() error {
	cp.goldenOnce.Do(func() {
		art, err := artifactDo(cp, ArtifactGolden, func() (goldenArtifact, error) {
			return computeGoldenArtifact(cp)
		})
		if err != nil {
			cp.goldenErr = err
			return
		}
		goldenPost := cp.App.Mem.Fork()
		if err := goldenPost.RestoreBlocks(art.DirtyIdx, art.DirtyData); err != nil {
			cp.goldenErr = fmt.Errorf("experiments: %s golden restore: %w", cp.App.Name, err)
			return
		}
		cp.golden = art.Output
		cp.classifier = fault.Classifier{
			Golden:     cp.golden,
			GoldenPost: goldenPost,
			Metric:     cp.App.Metric,
			DetectErr:  core.ErrFaultDetected,
		}
		cp.addLazyBytes(goldenFootprint(art))
	})
	return cp.goldenErr
}

// Golden returns the fault-free output under the application's metric,
// running the golden execution on first call.
func (cp *Checkpoint) Golden() ([]float32, error) {
	if err := cp.ensureGolden(); err != nil {
		return nil, err
	}
	return cp.golden, nil
}

// MissSelector returns the memoized Fig. 8 miss-weighted block selector
// for the checkpoint's protected instance: one trace capture plus one
// timing run per checkpoint — or an artifact fetch when an earlier process
// already paid for the replay — shared across fault models and campaigns.
// The selector is rebuilt from the persisted histogram on both paths, and
// the histogram is shard-count-invariant, so the key carries no shard field.
func (cp *Checkpoint) MissSelector() (fault.Selector, error) {
	cp.missOnce.Do(func() {
		art, err := artifactDo(cp, ArtifactMissWeights, func() (missArtifact, error) {
			blocks, weights, err := missWeights(cp.App, cp.Plan, cp.simShards)
			if err != nil {
				return missArtifact{}, err
			}
			return missArtifact{Blocks: blocks, Weights: weights}, nil
		})
		if err != nil {
			cp.missErr = err
			return
		}
		cp.missSel, cp.missErr = fault.NewWeightedSelector(art.Blocks, art.Weights)
		if cp.missErr == nil {
			cp.addLazyBytes(missFootprint(art))
		}
	})
	return cp.missSel, cp.missErr
}

// getScratch takes per-worker fault-injection scratch from the pool or
// creates one; return it with cp.scratch.Put. The scratch only buffers
// draws, so pooling cannot change results.
func (cp *Checkpoint) getScratch() *fault.Scratch {
	if sc, ok := cp.scratch.Get().(*fault.Scratch); ok {
		return sc
	}
	return &fault.Scratch{}
}

// getFork takes a reset fork from the pool or creates one.
func (cp *Checkpoint) getFork() *mem.Memory {
	if f, ok := cp.forks.Get().(*mem.Memory); ok {
		f.Reset()
		return f
	}
	if cp.tele.forks != nil {
		cp.tele.forks.Inc()
	}
	return cp.App.Mem.Fork()
}

// RunOne executes one fault-injected campaign run against the checkpoint:
// fork the golden image copy-on-write, inject under the fault model, honour
// injection-time pre-classification (store-masked or ECC-detected transient
// faults never execute), prune runs whose overlay faults are provably inert
// (bit-identical to the golden run, so Masked without executing), otherwise
// execute functionally and classify by streaming comparison with the golden
// post-run image. Safe for concurrent use; the rng carries all per-run
// randomness, so results are bit-identical to the legacy clone-per-run path
// at any worker count.
func (cp *Checkpoint) RunOne(rng *rand.Rand, model fault.Model, sel fault.Selector) (fault.Outcome, error) {
	if err := cp.ensureGolden(); err != nil {
		return 0, err
	}
	var env fault.Env
	if fault.NeedsTimeline(model) {
		tl, err := cp.Timeline()
		if err != nil {
			return 0, err
		}
		env.Timeline = tl
	}
	env.Scratch = cp.getScratch()
	defer cp.scratch.Put(env.Scratch)
	f := cp.getFork()
	defer cp.forks.Put(f)
	inj, err := fault.Inject(f, rng, model, sel, &env)
	if err != nil {
		return 0, err
	}
	if inj.Pre != 0 {
		if cp.tele.pre != nil {
			cp.tele.pre.Inc()
		}
		return inj.Pre, nil
	}
	// The inert prune only applies to overlay faults; a transient flip is
	// a genuine store (DirtyBlocks > 0) that must execute even though the
	// overlay is empty (FaultsInert is vacuously true then).
	if f.DirtyBlocks() == 0 && f.FaultsInert() {
		if cp.tele.pruned != nil {
			cp.tele.pruned.Inc()
		}
		return fault.Masked, nil
	}
	before := f.CopiedBlocks()
	if cp.Plan != nil {
		err = cp.App.RunOn(f, cp.Plan.ForMemory(f))
	} else {
		err = cp.App.RunOn(f, nil)
	}
	if cp.tele.runs != nil {
		cp.tele.runs.Inc()
		cp.tele.copies.Add(f.CopiedBlocks() - before)
	}
	return cp.classifier.Classify(err, f, cp.App.Output)
}

// Campaign executes c against the checkpoint under the given fault model
// and block selector. A batch size above 1 (the default — see
// fault.Campaign.Batch) routes through the batched group-replay path;
// outcomes are byte-identical either way.
func (cp *Checkpoint) Campaign(c fault.Campaign, model fault.Model, sel fault.Selector) (fault.Result, error) {
	return cp.CampaignRange(c, 0, c.Runs, model, sel)
}

// CampaignRange executes only the run indices in [start, end) of c — one
// fleet shard — against the checkpoint, batching claims internally like
// Campaign. Each run derives its random stream from (c.Seed, index)
// exactly like Campaign, so merging every shard of a partition with
// fault.Result.Add reproduces the full campaign's result byte for byte,
// regardless of each shard's batch size.
func (cp *Checkpoint) CampaignRange(c fault.Campaign, start, end int, model fault.Model, sel fault.Selector) (fault.Result, error) {
	if c.BatchSize() > 1 {
		return c.ExecuteRangeBatched(start, end, func(lo int, rngs []*rand.Rand) ([]fault.Outcome, error) {
			return cp.RunBatch(lo, rngs, model, sel)
		})
	}
	return c.ExecuteRange(start, end, func(_ int, rng *rand.Rand) (fault.Outcome, error) {
		return cp.RunOne(rng, model, sel)
	})
}
