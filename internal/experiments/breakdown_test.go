package experiments

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// goldenResult fills every outcome counter with a distinct value so a
// swapped or dropped column is visible in the golden bytes.
var goldenResult = fault.Result{
	Runs: 15, MaskedRuns: 5, SDCRuns: 4, DetectedRuns: 3, CrashedRuns: 2, DUERuns: 1,
}

// TestExportCSVGoldenBytes pins the campaign exporters' exact output —
// header spelling, column order (the canonical fault.Outcomes() order,
// DUE last), and row layout. A reordered or renamed column breaks every
// downstream plotting script, so any intentional change must edit these
// literals in the same commit.
func TestExportCSVGoldenBytes(t *testing.T) {
	dir := t.TempDir()
	info := fault.Info(fault.StuckAt{BitsPerWord: 3, Blocks: 1})

	if err := ExportFig6CSV(dir, []Fig6Cell{
		{App: "P-X", Space: "hot", Model: info, Result: goldenResult},
	}); err != nil {
		t.Fatal(err)
	}
	wantFig6 := "app,space,model,params,runs,masked,sdc,detected,crashed,due\n" +
		"P-X,hot,stuck-at,\"bits=3,blocks=1\",15,5,4,3,2,1\n"
	assertFileBytes(t, filepath.Join(dir, "fig6_hot_vs_rest.csv"), wantFig6)

	if err := ExportFig9CSV(dir, []Fig9Cell{
		{App: "P-X", Scheme: core.None, Level: 0, Model: info, Result: goldenResult},
		{App: "P-X", Scheme: core.Detection, Level: 2, Model: info, Result: goldenResult},
	}); err != nil {
		t.Fatal(err)
	}
	wantFig9 := "app,scheme,objects,model,params,runs,masked,sdc,detected,crashed,due\n" +
		"P-X,baseline,0,stuck-at,\"bits=3,blocks=1\",15,5,4,3,2,1\n" +
		"P-X,detection,2,stuck-at,\"bits=3,blocks=1\",15,5,4,3,2,1\n"
	assertFileBytes(t, filepath.Join(dir, "fig9_resilience.csv"), wantFig9)

	if err := ExportBreakdownCSV(dir, []BreakdownCell{
		{App: "P-X", Scheme: core.Correction, Level: 2,
			Model: fault.Info(fault.Transient{Flips: 2, Blocks: 1}), Result: goldenResult},
	}); err != nil {
		t.Fatal(err)
	}
	wantBreakdown := "app,scheme,objects,model,params,runs,masked,sdc,detected,crashed,due\n" +
		"P-X,detection+correction,2,transient,\"blocks=1,flips=2\",15,5,4,3,2,1\n"
	assertFileBytes(t, filepath.Join(dir, "fault_model_breakdown.csv"), wantBreakdown)
}

func assertFileBytes(t *testing.T, path, want string) {
	t.Helper()
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != want {
		t.Errorf("%s golden mismatch\ngot:\n%s\nwant:\n%s", filepath.Base(path), got, want)
	}
}

// TestFaultModelBreakdown runs the breakdown experiment over every
// application (counter-examples included) with a permanent and a transient
// model and checks the result's shape and accounting: one cell per
// (application, configuration, model) in sweep order, every cell's outcome
// counts reconciling with its run count, and the SECDED-uncorrectable
// 2-flip transient actually producing DUE outcomes somewhere in the sweep.
func TestFaultModelBreakdown(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweeps in -short mode")
	}
	s := testSuite(t)
	models := []fault.Model{
		fault.StuckAt{BitsPerWord: 3, Blocks: 1},
		fault.Transient{Flips: 2, Blocks: 1},
	}
	cells, err := FaultModelBreakdown(s, BreakdownConfig{Runs: 6, Seed: 31, Models: models})
	if err != nil {
		t.Fatal(err)
	}
	apps := s.AllNames()
	wantCells := len(apps) * 3 * len(models) // baseline + two schemes, per model
	if len(cells) != wantCells {
		t.Fatalf("got %d cells, want %d", len(cells), wantCells)
	}

	due := 0
	i := 0
	for _, app := range apps {
		for cfgIdx := 0; cfgIdx < 3; cfgIdx++ {
			for _, m := range models {
				c := cells[i]
				i++
				if c.App != app || c.Model != fault.Info(m) {
					t.Fatalf("cell %d = (%s, %v), want (%s, %v): sweep order broken",
						i-1, c.App, c.Model, app, fault.Info(m))
				}
				// Baseline cells sit at level 0; scheme cells sit at the
				// application's hot level (which is 0 for the counter-example
				// applications — they have no hot objects to protect).
				if c.Scheme == core.None && c.Level != 0 {
					t.Errorf("cell %d: baseline at level %d", i-1, c.Level)
				}
				var sum int
				for _, o := range fault.Outcomes() {
					sum += c.Result.Count(o)
				}
				if sum != c.Result.Runs || c.Result.Runs != 6 {
					t.Errorf("cell %d (%s %v %v): outcomes sum to %d of %d runs",
						i-1, c.App, c.Scheme, c.Model, sum, c.Result.Runs)
				}
				if c.Model.Name == "transient" {
					due += c.Result.DUERuns
				} else if c.Result.DUERuns != 0 {
					t.Errorf("cell %d: stuck-at campaign reported %d DUE runs", i-1, c.Result.DUERuns)
				}
			}
		}
	}
	if due == 0 {
		t.Error("2-flip transient sweep produced no DUE outcomes across any application")
	}
}

// TestBreakdownStoreKeySeparation: the model set is part of the breakdown
// result's store identity. Different model sets must compute separately,
// and a repeat of an earlier set must be served from the store.
func TestBreakdownStoreKeySeparation(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweeps in -short mode")
	}
	reg := telemetry.NewRegistry()
	s, err := NewSuite(SuiteConfig{NNTrainSamples: 60, Workers: 2, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	cfg := BreakdownConfig{Runs: 4, Seed: 9, Apps: []string{"P-BICG"}}

	cfg.Models = []fault.Model{fault.StuckAt{BitsPerWord: 3, Blocks: 1}}
	first, err := FaultModelBreakdown(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Models = []fault.Model{fault.StuckAt{BitsPerWord: 4, Blocks: 1}}
	if _, err := FaultModelBreakdown(s, cfg); err != nil {
		t.Fatal(err)
	}
	cfg.Models = []fault.Model{fault.StuckAt{BitsPerWord: 3, Blocks: 1}}
	repeat, err := FaultModelBreakdown(s, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i] != repeat[i] {
			t.Fatalf("repeat request returned different cells: %+v vs %+v", first[i], repeat[i])
		}
	}

	snap := reg.Snapshot()
	computed, _ := snap.Get("dcrm_experiment_results_computed_total", telemetry.Label{Name: "figure", Value: "breakdown"})
	if int(computed.Value) != 2 {
		t.Errorf("computed %v breakdown results, want 2 (distinct model sets only)", computed.Value)
	}
	requests, _ := snap.Get("dcrm_experiment_results_requests_total", telemetry.Label{Name: "figure", Value: "breakdown"})
	if int(requests.Value) != 3 {
		t.Errorf("recorded %v breakdown requests, want 3", requests.Value)
	}
}
