package experiments

import (
	"fmt"
	"sort"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/kernels"
	"github.com/datacentric-gpu/dcrm/internal/timing"
)

// Fig9Config sizes the resilience evaluation.
type Fig9Config struct {
	// Runs is the fault-injection count per configuration. Default 1000,
	// the paper's count (95% CI ±3%).
	Runs int
	// Seed makes campaigns reproducible. Default 11. Every run's random
	// stream is derived from (Seed, run index), so results are independent
	// of worker scheduling.
	Seed int64
	// Models overrides the fault models. Default: DefaultFaultModels(),
	// the paper's six {1,5} blocks × {2,3,4} bits configurations.
	Models []fault.Model
	// Apps restricts the application set. Default: the evaluated eight of
	// Table II.
	Apps []string
	// Schemes overrides the schemes swept. Default: detection and
	// detection+correction (the unprotected baseline is always included).
	Schemes []core.Scheme
	// Batch overrides the campaign batch size (0 = the suite default;
	// 1 disables batching). Results are byte-identical at any batch size.
	Batch int
}

func (c Fig9Config) withDefaults() Fig9Config {
	if c.Runs == 0 {
		c.Runs = 1000
	}
	if c.Seed == 0 {
		c.Seed = 11
	}
	if len(c.Models) == 0 {
		c.Models = DefaultFaultModels()
	}
	if len(c.Schemes) == 0 {
		c.Schemes = []core.Scheme{core.Detection, core.Correction}
	}
	return c
}

// Fig9Cell is one bar of Fig. 9.
type Fig9Cell struct {
	App    string
	Scheme core.Scheme
	// Level is the cumulative number of protected objects (0 = baseline;
	// plotted once under scheme None).
	Level int
	// Model identifies the fault configuration (serializable: cells
	// persist through the gob-encoded result store).
	Model  fault.ModelInfo
	Result fault.Result
}

// weightConfig is the GPU configuration used to collect the Fig. 8 miss
// histogram: Table I with the cache capacities scaled down in proportion to
// the scaled workload inputs. At the paper's full problem sizes the 16 KB
// L1 thrashes under the streaming matrix/image traffic and the hot blocks
// miss on most of their re-references, which is what exposes them to the
// L2/DRAM fault domain; the scaled inputs would otherwise fit comfortably
// and hide that behaviour. The performance experiments (Fig. 7) keep the
// unscaled Table I hierarchy.
func weightConfig() arch.Config {
	cfg := arch.Default()
	cfg.L1.SizeBytes = 2 * 1024
	cfg.L2.SizeBytes = 32 * 1024
	return cfg
}

// MissWeightedSelector builds the Fig. 8 block selector for one protected
// application instance: a timing run (with the plan's replica traffic)
// produces the per-block L1-miss histogram, and injection probability is
// proportional to it — misses expose data to the L2/DRAM fault domain.
// shards sets the replay's event-scheduler shard count (0 = serial); the
// histogram is byte-identical at any value.
func MissWeightedSelector(app *kernels.App, plan *core.Plan, shards int) (fault.Selector, error) {
	blocks, weights, err := missWeights(app, plan, shards)
	if err != nil {
		return nil, err
	}
	return fault.NewWeightedSelector(blocks, weights)
}

// missWeights is MissWeightedSelector's replay: it returns the selector's
// raw material — the deterministic block order and the per-block miss
// counts — in the serializable form the miss-weights checkpoint artifact
// persists.
func missWeights(app *kernels.App, plan *core.Plan, shards int) ([]arch.BlockAddr, []float64, error) {
	traces, err := app.TraceRun(nil)
	if err != nil {
		return nil, nil, err
	}
	var tplan timing.ProtectionPlan
	if plan != nil {
		tplan = plan
	}
	eng, err := timing.New(weightConfig(), tplan)
	if err != nil {
		return nil, nil, err
	}
	eng.Shards = shards
	eng.TrackBlockMisses = true
	if _, err := eng.RunApp(app.Name, traces); err != nil {
		return nil, nil, err
	}
	hist := eng.BlockMisses()
	if len(hist) == 0 {
		return nil, nil, fmt.Errorf("experiments: %s produced no L1 misses", app.Name)
	}
	// Deterministic block order: map iteration order would otherwise make
	// seeded campaigns irreproducible.
	blocks := make([]arch.BlockAddr, 0, len(hist))
	for b := range hist {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })
	weights := make([]float64, 0, len(blocks))
	for _, b := range blocks {
		weights = append(weights, float64(hist[b]))
	}
	return blocks, weights, nil
}

// fig9Resilience is Fig9Resilience's compute path (store miss): inject
// faults across the whole application address space (block choice weighted
// by L1-missed accesses, replicas included) and count SDC outcomes as
// protection cumulatively covers more data objects under each scheme. Each
// (application, scheme, level) configuration — plan construction,
// miss-weighted selector timing run, and its fault campaigns — is one task
// unit on the suite's worker pool; cells are assembled in the serial sweep
// order, so output is identical at any worker count. The wrapper has
// already resolved defaults.
func fig9Resilience(s *Suite, cfg Fig9Config) ([]Fig9Cell, error) {
	apps := cfg.Apps

	// Phase 1: build every application's baseline checkpoint (the shared
	// prerequisite of every configuration task: image, golden output, and
	// golden post-run state). Checkpoint goldens are lazy, so force them
	// here to keep the golden runs on the parallel prefetch phase.
	err := s.runTasks("fig9: goldens", len(apps), func(i int) error {
		cp, err := s.Checkpoint(apps[i], core.None, 0)
		if err != nil {
			return err
		}
		_, err = cp.Golden()
		return err
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: enumerate the configuration sweep in serial order.
	type task struct {
		app    string
		scheme core.Scheme
		level  int
	}
	var tasks []task
	for _, name := range apps {
		baseApp, err := s.App(name)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, task{name, core.None, 0})
		for _, scheme := range cfg.Schemes {
			for _, level := range sortedLevels(baseApp)[1:] {
				tasks = append(tasks, task{name, scheme, level})
			}
		}
	}

	perTask := make([][]Fig9Cell, len(tasks))
	err = s.runTasks("fig9: campaigns", len(tasks), func(i int) error {
		t := tasks[i]
		cp, err := s.Checkpoint(t.app, t.scheme, t.level)
		if err != nil {
			return err
		}
		sel, err := cp.MissSelector()
		if err != nil {
			return fmt.Errorf("experiments: fig9 %s %v L%d: %w", t.app, t.scheme, t.level, err)
		}
		cells := make([]Fig9Cell, 0, len(cfg.Models))
		for _, model := range cfg.Models {
			res, err := cp.Campaign(s.campaign(cfg.Runs, cfg.Seed, cfg.Batch), model, sel)
			if err != nil {
				return fmt.Errorf("experiments: fig9 %s %v L%d %v: %w", t.app, t.scheme, t.level, model, err)
			}
			cells = append(cells, Fig9Cell{App: t.app, Scheme: t.scheme, Level: t.level, Model: fault.Info(model), Result: res})
		}
		perTask[i] = cells
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out []Fig9Cell
	for _, cells := range perTask {
		out = append(out, cells...)
	}
	return out, nil
}

// SDCDropPercent computes the paper's headline reliability number: the
// average percentage drop in SDC outcomes when hot objects are protected,
// relative to the unprotected baseline, across every fault configuration
// and both schemes (paper: 98.97%).
func SDCDropPercent(cells []Fig9Cell, hotLevels map[string]int) float64 {
	type key struct {
		app   string
		model fault.ModelInfo
	}
	baseline := make(map[key]int)
	for _, c := range cells {
		if c.Scheme == core.None && c.Level == 0 {
			baseline[key{c.App, c.Model}] = c.Result.SDCRuns
		}
	}
	var drop float64
	n := 0
	for _, c := range cells {
		if c.Scheme == core.None || c.Level != hotLevels[c.App] {
			continue
		}
		base := baseline[key{c.App, c.Model}]
		if base == 0 {
			continue // baseline already SDC-free; no drop to measure
		}
		drop += 100 * float64(base-c.Result.SDCRuns) / float64(base)
		n++
	}
	if n == 0 {
		return 0
	}
	return drop / float64(n)
}
