package experiments

import (
	"context"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// Cold-start benchmark shape: one op is bringing a multi-checkpoint
// campaign session to fully-warm artifacts — two applications, baseline
// plus a protected configuration each, all four artifact kinds (16 units).
// "cold" builds them the way a lazy first campaign serializes them,
// "prewarmed" fans the same units over the worker pool, and
// "secondprocess" warm-starts a fresh process from the disk tier (and
// fails the run if anything recomputes). Suite construction and input
// images are built outside the timer: the measured region is exactly the
// artifact work Prewarm parallelizes. BENCH_coldstart.json records the
// committed baseline; scripts/bench.sh regenerates it and CI compares
// warn-only via scripts/bench_compare.sh.

// benchColdSpecs names the benchmark's artifact workload and forces the
// plan-invariant inputs (application images) so the timed region starts
// from the same warm images on every variant.
func benchColdSpecs(b *testing.B, s *Suite) []CheckpointSpec {
	b.Helper()
	var specs []CheckpointSpec
	for _, name := range []string{"P-BICG", "A-Laplacian"} {
		app, err := s.App(name)
		if err != nil {
			b.Fatal(err)
		}
		specs = append(specs,
			CheckpointSpec{App: name, Artifacts: ArtifactKinds()},
			CheckpointSpec{App: name, Scheme: core.Detection, Level: app.HotCount, Artifacts: ArtifactKinds()})
	}
	return specs
}

// benchColdSuite builds a fresh suite over st, outside the caller's timer.
func benchColdSuite(b *testing.B, st *store.Store, reg *telemetry.Registry) *Suite {
	b.Helper()
	s, err := NewSuite(SuiteConfig{NNTrainSamples: 60, Store: st, Telemetry: reg})
	if err != nil {
		b.Fatal(err)
	}
	return s
}

func BenchmarkColdStart(b *testing.B) {
	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(store.Config{Dir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			s := benchColdSuite(b, st, nil)
			specs := benchColdSpecs(b, s)
			b.StartTimer()
			// The lazy path: each configuration's artifacts built
			// back-to-back on one goroutine, checkpoint by checkpoint.
			for _, sp := range specs {
				cp, err := s.Checkpoint(sp.App, max(sp.Scheme, core.None), sp.Level)
				if err != nil {
					b.Fatal(err)
				}
				for _, kind := range sp.Artifacts {
					if err := cp.BuildArtifact(kind); err != nil {
						b.Fatal(err)
					}
				}
			}
		}
	})

	b.Run("prewarmed", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			st, err := store.Open(store.Config{Dir: b.TempDir()})
			if err != nil {
				b.Fatal(err)
			}
			s := benchColdSuite(b, st, nil)
			specs := benchColdSpecs(b, s)
			b.StartTimer()
			if err := s.Prewarm(context.Background(), specs); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("secondprocess", func(b *testing.B) {
		dir := b.TempDir()
		seedStore, err := store.Open(store.Config{Dir: dir})
		if err != nil {
			b.Fatal(err)
		}
		seed := benchColdSuite(b, seedStore, nil)
		if err := seed.Prewarm(context.Background(), benchColdSpecs(b, seed)); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			reg := telemetry.NewRegistry()
			st, err := store.Open(store.Config{Dir: dir, Telemetry: reg})
			if err != nil {
				b.Fatal(err)
			}
			s := benchColdSuite(b, st, reg)
			specs := benchColdSpecs(b, s)
			b.StartTimer()
			if err := s.Prewarm(context.Background(), specs); err != nil {
				b.Fatal(err)
			}
			b.StopTimer()
			snap := reg.Snapshot()
			for _, kind := range ArtifactKinds() {
				if c, ok := snap.Get("dcrm_artifact_computed_total", telemetry.Label{Name: "kind", Value: kind}); ok && c.Value != 0 {
					b.Fatalf("second process recomputed the %s artifact %v times", kind, c.Value)
				}
			}
			b.StartTimer()
		}
	})
}
