package experiments

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/timing"
)

// Fig7Point is one bar of Fig. 7: the timing-simulator result for one
// (application, scheme, protection level) configuration.
type Fig7Point struct {
	App    string
	Scheme core.Scheme
	// Level is the cumulative number of protected data objects (0 =
	// baseline).
	Level int
	// Cycles is the measured execution time in core cycles.
	Cycles int64
	// L1Misses is the L1-missed access count (including replica accesses).
	L1Misses uint64
	// NormTime and NormMisses are normalized to the unprotected baseline.
	NormTime   float64
	NormMisses float64
	// CompareStalls counts pending-compare-buffer structural stalls.
	CompareStalls uint64
}

// Fig7Config sizes the performance sweep.
type Fig7Config struct {
	// Apps restricts the application set. Default: the evaluated eight of
	// Table II.
	Apps []string
	// Policy selects the warp scheduler. Default: timing.GTO, the paper's
	// greedy-then-oldest baseline scheduler.
	Policy timing.SchedulerPolicy
}

// fig7Overhead is Fig7Overhead's compute path (store miss): for every
// application, sweep the cumulative number of protected data objects for
// both schemes and measure execution time and L1-missed accesses on the
// timing simulator, normalized to the unprotected baseline. Traces are
// captured once per application (concurrently, on the suite's worker pool)
// and then every (application, scheme, level) timing run — baseline
// included — fans out as its own task unit; each task replays the shared
// read-only traces through a private engine, exactly as the hardware
// proposal adds copy transactions at the LD/ST unit. Points are assembled
// and normalized in the serial sweep order, so output is identical at any
// worker count. The wrapper has already resolved defaults.
func fig7Overhead(s *Suite, cfg Fig7Config) ([]Fig7Point, error) {
	apps := cfg.Apps
	policy := cfg.Policy
	gpu := arch.Default()

	// Phase 1: build every application and capture its baseline traces.
	err := s.runTasks("fig7: traces", len(apps), func(i int) error {
		_, err := s.Traces(apps[i])
		return err
	})
	if err != nil {
		return nil, err
	}

	// Phase 2: enumerate the timing runs in serial sweep order. Level 0
	// under scheme None is the normalization baseline.
	type task struct {
		app    string
		scheme core.Scheme
		level  int
	}
	var tasks []task
	for _, name := range apps {
		app, err := s.App(name)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, task{name, core.None, 0})
		for _, scheme := range []core.Scheme{core.Detection, core.Correction} {
			for _, level := range sortedLevels(app)[1:] {
				tasks = append(tasks, task{name, scheme, level})
			}
		}
	}

	out := make([]Fig7Point, len(tasks))
	err = s.runTasks("fig7: timing sweep", len(tasks), func(i int) error {
		t := tasks[i]
		traces, err := s.Traces(t.app)
		if err != nil {
			return err
		}
		var tplan timing.ProtectionPlan
		if t.scheme != core.None {
			// The memoized campaign checkpoint carries the plan for this
			// (app, scheme, level), so Fig. 7 and Fig. 9 share one plan
			// construction per configuration instead of building it twice.
			cp, err := s.Checkpoint(t.app, t.scheme, t.level)
			if err != nil {
				return err
			}
			if cp.Plan != nil {
				tplan = cp.Plan
			}
		}
		eng, err := timing.New(gpu, tplan)
		if err != nil {
			return fmt.Errorf("experiments: fig7 %s %v L%d: %w", t.app, t.scheme, t.level, err)
		}
		eng.Shards = s.cfg.SimShards
		eng.Policy = policy
		// Publish per-unit counters to the suite's registry (if observed).
		// The registry's atomic counters merge concurrent engines safely,
		// and observation does not affect the returned points.
		eng.Metrics = s.cfg.Telemetry
		st, err := eng.RunApp(t.app, traces)
		if err != nil {
			return fmt.Errorf("experiments: fig7 %s %v L%d: %w", t.app, t.scheme, t.level, err)
		}
		var stalls uint64
		for _, k := range st.Kernels {
			stalls += k.CompareStalls
		}
		out[i] = Fig7Point{
			App:           t.app,
			Scheme:        t.scheme,
			Level:         t.level,
			Cycles:        st.TotalCycles(),
			L1Misses:      st.TotalL1Misses(),
			CompareStalls: stalls,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}

	// Phase 3: normalize every point to its application's baseline. The
	// task list is app-major with the baseline first, so a single pass
	// suffices.
	var baseCycles, baseMisses float64
	for i := range out {
		if out[i].Scheme == core.None {
			baseCycles = float64(out[i].Cycles)
			baseMisses = float64(out[i].L1Misses)
			out[i].NormTime, out[i].NormMisses = 1, 1
			out[i].CompareStalls = 0
			continue
		}
		out[i].NormTime = float64(out[i].Cycles) / baseCycles
		out[i].NormMisses = float64(out[i].L1Misses) / baseMisses
	}
	return out, nil
}

// Fig7Summary aggregates the paper's headline averages.
type Fig7Summary struct {
	// DetectionHotOverhead is the average normalized-time overhead when
	// only hot objects are protected with detection (paper: 1.2%).
	DetectionHotOverhead float64
	// CorrectionHotOverhead is the same for detection-and-correction
	// (paper: 3.4%).
	CorrectionHotOverhead float64
	// DetectionAllOverhead / CorrectionAllOverhead protect every object
	// (paper: 40.65% / 74.24%).
	DetectionAllOverhead  float64
	CorrectionAllOverhead float64
}

// SummarizeFig7 computes the Section V-A averages from the sweep points.
// hotLevels maps each app to its hot-object count; allLevels to its total
// object count.
func SummarizeFig7(points []Fig7Point, hotLevels, allLevels map[string]int) Fig7Summary {
	var sum Fig7Summary
	var nDetHot, nCorHot, nDetAll, nCorAll int
	for _, p := range points {
		switch {
		case p.Scheme == core.Detection && p.Level == hotLevels[p.App]:
			sum.DetectionHotOverhead += p.NormTime - 1
			nDetHot++
		case p.Scheme == core.Correction && p.Level == hotLevels[p.App]:
			sum.CorrectionHotOverhead += p.NormTime - 1
			nCorHot++
		}
		switch {
		case p.Scheme == core.Detection && p.Level == allLevels[p.App]:
			sum.DetectionAllOverhead += p.NormTime - 1
			nDetAll++
		case p.Scheme == core.Correction && p.Level == allLevels[p.App]:
			sum.CorrectionAllOverhead += p.NormTime - 1
			nCorAll++
		}
	}
	if nDetHot > 0 {
		sum.DetectionHotOverhead /= float64(nDetHot)
	}
	if nCorHot > 0 {
		sum.CorrectionHotOverhead /= float64(nCorHot)
	}
	if nDetAll > 0 {
		sum.DetectionAllOverhead /= float64(nDetAll)
	}
	if nCorAll > 0 {
		sum.CorrectionAllOverhead /= float64(nCorAll)
	}
	return sum
}

// LevelMaps returns per-app hot-object and total-object counts for
// SummarizeFig7.
func LevelMaps(s *Suite, apps []string) (hot, all map[string]int, err error) {
	hot = make(map[string]int, len(apps))
	all = make(map[string]int, len(apps))
	for _, name := range apps {
		app, err := s.App(name)
		if err != nil {
			return nil, nil, err
		}
		hot[name] = app.HotCount
		all[name] = len(app.Objects)
	}
	return hot, all, nil
}
