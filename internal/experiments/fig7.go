package experiments

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/timing"
)

// Fig7Point is one bar of Fig. 7: the timing-simulator result for one
// (application, scheme, protection level) configuration.
type Fig7Point struct {
	App    string
	Scheme core.Scheme
	// Level is the cumulative number of protected data objects (0 =
	// baseline).
	Level int
	// Cycles is the measured execution time in core cycles.
	Cycles int64
	// L1Misses is the L1-missed access count (including replica accesses).
	L1Misses uint64
	// NormTime and NormMisses are normalized to the unprotected baseline.
	NormTime   float64
	NormMisses float64
	// CompareStalls counts pending-compare-buffer structural stalls.
	CompareStalls uint64
}

// Fig7Config sizes the performance sweep.
type Fig7Config struct {
	// Apps restricts the application set (default: the evaluated eight).
	Apps []string
	// Policy selects the warp scheduler (default GTO).
	Policy timing.SchedulerPolicy
}

// Fig7Overhead runs the Fig. 7 experiment: for every application, sweep the
// cumulative number of protected data objects for both schemes and measure
// execution time and L1-missed accesses on the timing simulator, normalized
// to the unprotected baseline. Traces are captured once per application;
// replication happens at replay time, exactly as the hardware proposal adds
// copy transactions at the LD/ST unit.
func Fig7Overhead(s *Suite, cfg Fig7Config) ([]Fig7Point, error) {
	apps := cfg.Apps
	if len(apps) == 0 {
		apps = s.EvaluatedNames()
	}
	policy := cfg.Policy
	if policy == 0 {
		policy = timing.GTO
	}
	gpu := arch.Default()
	var out []Fig7Point
	for _, name := range apps {
		app, err := s.App(name)
		if err != nil {
			return nil, err
		}
		traces, err := app.TraceRun(nil)
		if err != nil {
			return nil, err
		}
		run := func(plan timing.ProtectionPlan) (timing.AppStats, error) {
			eng, err := timing.New(gpu, plan)
			if err != nil {
				return timing.AppStats{}, err
			}
			eng.Policy = policy
			return eng.RunApp(name, traces)
		}
		base, err := run(nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: fig7 %s baseline: %w", name, err)
		}
		baseCycles := float64(base.TotalCycles())
		baseMisses := float64(base.TotalL1Misses())
		out = append(out, Fig7Point{
			App: name, Scheme: core.None, Level: 0,
			Cycles: base.TotalCycles(), L1Misses: base.TotalL1Misses(),
			NormTime: 1, NormMisses: 1,
		})
		for _, scheme := range []core.Scheme{core.Detection, core.Correction} {
			for _, level := range sortedLevels(app)[1:] {
				_, plan, err := s.PlanFor(name, scheme, level)
				if err != nil {
					return nil, err
				}
				var tplan timing.ProtectionPlan
				if plan != nil {
					tplan = plan
				}
				st, err := run(tplan)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig7 %s %v L%d: %w", name, scheme, level, err)
				}
				var stalls uint64
				for _, k := range st.Kernels {
					stalls += k.CompareStalls
				}
				out = append(out, Fig7Point{
					App:           name,
					Scheme:        scheme,
					Level:         level,
					Cycles:        st.TotalCycles(),
					L1Misses:      st.TotalL1Misses(),
					NormTime:      float64(st.TotalCycles()) / baseCycles,
					NormMisses:    float64(st.TotalL1Misses()) / baseMisses,
					CompareStalls: stalls,
				})
			}
		}
	}
	return out, nil
}

// Fig7Summary aggregates the paper's headline averages.
type Fig7Summary struct {
	// DetectionHotOverhead is the average normalized-time overhead when
	// only hot objects are protected with detection (paper: 1.2%).
	DetectionHotOverhead float64
	// CorrectionHotOverhead is the same for detection-and-correction
	// (paper: 3.4%).
	CorrectionHotOverhead float64
	// DetectionAllOverhead / CorrectionAllOverhead protect every object
	// (paper: 40.65% / 74.24%).
	DetectionAllOverhead  float64
	CorrectionAllOverhead float64
}

// SummarizeFig7 computes the Section V-A averages from the sweep points.
// hotLevels maps each app to its hot-object count; allLevels to its total
// object count.
func SummarizeFig7(points []Fig7Point, hotLevels, allLevels map[string]int) Fig7Summary {
	var sum Fig7Summary
	var nDetHot, nCorHot, nDetAll, nCorAll int
	for _, p := range points {
		switch {
		case p.Scheme == core.Detection && p.Level == hotLevels[p.App]:
			sum.DetectionHotOverhead += p.NormTime - 1
			nDetHot++
		case p.Scheme == core.Correction && p.Level == hotLevels[p.App]:
			sum.CorrectionHotOverhead += p.NormTime - 1
			nCorHot++
		}
		switch {
		case p.Scheme == core.Detection && p.Level == allLevels[p.App]:
			sum.DetectionAllOverhead += p.NormTime - 1
			nDetAll++
		case p.Scheme == core.Correction && p.Level == allLevels[p.App]:
			sum.CorrectionAllOverhead += p.NormTime - 1
			nCorAll++
		}
	}
	if nDetHot > 0 {
		sum.DetectionHotOverhead /= float64(nDetHot)
	}
	if nCorHot > 0 {
		sum.CorrectionHotOverhead /= float64(nCorHot)
	}
	if nDetAll > 0 {
		sum.DetectionAllOverhead /= float64(nDetAll)
	}
	if nCorAll > 0 {
		sum.CorrectionAllOverhead /= float64(nCorAll)
	}
	return sum
}

// LevelMaps returns per-app hot-object and total-object counts for
// SummarizeFig7.
func LevelMaps(s *Suite, apps []string) (hot, all map[string]int, err error) {
	hot = make(map[string]int, len(apps))
	all = make(map[string]int, len(apps))
	for _, name := range apps {
		app, err := s.App(name)
		if err != nil {
			return nil, nil, err
		}
		hot[name] = app.HotCount
		all[name] = len(app.Objects)
	}
	return hot, all, nil
}
