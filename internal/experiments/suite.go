// Package experiments orchestrates the paper's evaluation: one entry point
// per table and figure, returning structured rows that cmd/repro renders
// and bench_test.go regenerates. Each experiment composes the substrate
// packages the way the paper's methodology describes — a profiling run for
// the access-pattern analysis, functional fault-injection campaigns for the
// reliability results, and timing-simulator sweeps for the performance
// results.
package experiments

import (
	"fmt"
	"sort"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/kernels"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/nn"
	"github.com/datacentric-gpu/dcrm/internal/profile"
)

// Scale selects the workload input sizes.
type Scale int

// Workload scales. Access-pattern *shapes* are scale-invariant; larger
// scales sharpen the Fig. 3 knees and bring the Table III percentages
// closer to the paper's full-size numbers, at proportionally higher
// experiment cost.
const (
	// ScaleSmall is the default: the full evaluation runs in minutes on one
	// core.
	ScaleSmall Scale = iota + 1
	// ScaleMedium roughly quadruples the footprints.
	ScaleMedium
	// ScaleLarge approaches the paper's input sizes for the cheaper
	// applications (hours of runtime for full campaigns).
	ScaleLarge
)

// String renders the scale.
func (s Scale) String() string {
	switch s {
	case ScaleMedium:
		return "medium"
	case ScaleLarge:
		return "large"
	default:
		return "small"
	}
}

// SuiteConfig configures the application suite shared by the experiments.
type SuiteConfig struct {
	// NNTrainSamples shrinks the C-NN weight construction for fast tests
	// (0 = the nn package default).
	NNTrainSamples int
	// Seed drives every deterministic component.
	Seed int64
	// Scale selects workload input sizes (default ScaleSmall).
	Scale Scale
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale == 0 {
		c.Scale = ScaleSmall
	}
	return c
}

// scaleSizes returns the per-app size knobs for a scale.
type scaleSpec struct {
	poly    int // Polybench matrix dimension
	stencil int // image side
	images  int // C-NN batch
	gram    int // Gram-Schmidt dimension
	options int // BlackScholes contracts
	sradIt  int // SRAD iterations
}

func (s Scale) spec() scaleSpec {
	switch s {
	case ScaleMedium:
		return scaleSpec{poly: 512, stencil: 192, images: 24, gram: 96, options: 16384, sradIt: 8}
	case ScaleLarge:
		return scaleSpec{poly: 1024, stencil: 384, images: 64, gram: 192, options: 65536, sradIt: 12}
	default:
		return scaleSpec{} // zero values select each app's small defaults
	}
}

// Suite builds and caches the paper's applications, their profiles, and
// their fault-free golden outputs. Building C-NN's network is expensive, so
// one network is shared across every C-NN instance the experiments create.
type Suite struct {
	cfg      SuiteConfig
	net      *nn.Network
	apps     map[string]*kernels.App
	profiles map[string]*profile.Profile
	goldens  map[string][]float32
}

// NewSuite constructs the suite (training the shared C-NN network once).
func NewSuite(cfg SuiteConfig) (*Suite, error) {
	cfg = cfg.withDefaults()
	net, err := nn.Train(nn.TrainConfig{TrainSamples: cfg.NNTrainSamples, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	return &Suite{
		cfg:      cfg,
		net:      net,
		apps:     make(map[string]*kernels.App),
		profiles: make(map[string]*profile.Profile),
		goldens:  make(map[string][]float32),
	}, nil
}

// AllNames returns every application label, evaluated apps first.
func (s *Suite) AllNames() []string {
	out := make([]string, 0, 10)
	for _, b := range kernels.All() {
		out = append(out, b.Name)
	}
	return out
}

// EvaluatedNames returns the eight Table II applications.
func (s *Suite) EvaluatedNames() []string {
	out := make([]string, 0, 8)
	for _, b := range kernels.Evaluated() {
		out = append(out, b.Name)
	}
	return out
}

// Fresh builds a new instance of the named application at the configured
// scale. Every instance has an identical deterministic memory layout, so
// traces and goldens transfer between instances; protection plans, which
// extend the memory image with replicas, get a private instance each.
func (s *Suite) Fresh(name string) (*kernels.App, error) {
	sp := s.cfg.Scale.spec()
	switch name {
	case "C-NN":
		return kernels.NewCNN(kernels.CNNConfig{Seed: s.cfg.Seed, Net: s.net, Images: sp.images})
	case "P-BICG":
		return kernels.NewBICG(kernels.BICGConfig{NX: sp.poly, NY: sp.poly})
	case "P-GESUMMV":
		return kernels.NewGESUMMV(kernels.GESUMMVConfig{N: sp.poly})
	case "P-MVT":
		return kernels.NewMVT(kernels.MVTConfig{N: sp.poly})
	case "P-GRAMSCHM":
		return kernels.NewGramSchmidt(kernels.GramSchmidtConfig{N: sp.gram})
	case "C-BlackScholes":
		return kernels.NewBlackScholes(kernels.BlackScholesConfig{Options: sp.options})
	case "A-Laplacian":
		return kernels.NewLaplacian(kernels.StencilConfig{Width: sp.stencil, Height: sp.stencil})
	case "A-Meanfilter":
		return kernels.NewMeanfilter(kernels.StencilConfig{Width: sp.stencil, Height: sp.stencil})
	case "A-Sobel":
		return kernels.NewSobel(kernels.StencilConfig{Width: sp.stencil, Height: sp.stencil})
	case "A-SRAD":
		return kernels.NewSRAD(kernels.SRADConfig{Width: sp.stencil, Height: sp.stencil, Iterations: sp.sradIt})
	}
	b, err := kernels.ByName(name)
	if err != nil {
		return nil, err
	}
	return b.Build()
}

// App returns the cached base instance of the named application.
func (s *Suite) App(name string) (*kernels.App, error) {
	if a, ok := s.apps[name]; ok {
		return a, nil
	}
	a, err := s.Fresh(name)
	if err != nil {
		return nil, err
	}
	s.apps[name] = a
	return a, nil
}

// Profile returns the cached access profile of the named application.
func (s *Suite) Profile(name string) (*profile.Profile, error) {
	if p, ok := s.profiles[name]; ok {
		return p, nil
	}
	a, err := s.App(name)
	if err != nil {
		return nil, err
	}
	p, err := profile.Collect(a)
	if err != nil {
		return nil, err
	}
	s.profiles[name] = p
	return p, nil
}

// Golden returns the cached fault-free output of the named application.
func (s *Suite) Golden(name string) ([]float32, error) {
	if g, ok := s.goldens[name]; ok {
		return g, nil
	}
	a, err := s.App(name)
	if err != nil {
		return nil, err
	}
	g, err := a.GoldenRun()
	if err != nil {
		return nil, err
	}
	s.goldens[name] = g
	return g, nil
}

// PlanFor builds a protection plan on a fresh instance of the application,
// protecting the first `level` objects in Table III priority order. Level 0
// returns the unprotected instance with a nil plan.
func (s *Suite) PlanFor(name string, scheme core.Scheme, level int) (*kernels.App, *core.Plan, error) {
	app, err := s.Fresh(name)
	if err != nil {
		return nil, nil, err
	}
	if level <= 0 || scheme == core.None {
		return app, nil, nil
	}
	if level > len(app.Objects) {
		level = len(app.Objects)
	}
	objs := app.Objects[:level]
	// Only read-only objects are replicable; writable ones (e.g. the
	// P-GRAMSCHM matrix) are skipped, as the paper's schemes require.
	filtered := objs[:0:0]
	for _, o := range objs {
		if o.ReadOnly {
			filtered = append(filtered, o)
		}
	}
	if len(filtered) == 0 {
		return app, nil, nil
	}
	plan, err := core.NewPlan(app.Mem, core.PlanConfig{
		Scheme:  scheme,
		Objects: filtered,
		Sites:   app.Sites,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s %v level %d: %w", name, scheme, level, err)
	}
	return app, plan, nil
}

// PlanForObjects builds a protection plan on a fresh instance covering the
// named data objects (in the given priority order). Unknown names are an
// error; writable objects are rejected by the plan itself.
func (s *Suite) PlanForObjects(name string, scheme core.Scheme, objectNames []string) (*kernels.App, *core.Plan, error) {
	app, err := s.Fresh(name)
	if err != nil {
		return nil, nil, err
	}
	if len(objectNames) == 0 || scheme == core.None {
		return app, nil, nil
	}
	objs := make([]*mem.Buffer, 0, len(objectNames))
	for _, n := range objectNames {
		b, ok := app.Mem.BufferByName(n)
		if !ok {
			return nil, nil, fmt.Errorf("experiments: %s has no data object %q", name, n)
		}
		objs = append(objs, b)
	}
	plan, err := core.NewPlan(app.Mem, core.PlanConfig{
		Scheme:  scheme,
		Objects: objs,
		Sites:   app.Sites,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s %v objects %v: %w", name, scheme, objectNames, err)
	}
	return app, plan, nil
}

// sortedLevels returns the protection levels to sweep for an app:
// 0 (baseline) through len(Objects), capped so correction stays within its
// address-table budget.
func sortedLevels(app *kernels.App) []int {
	max := len(app.Objects)
	if max > core.MaxObjectsCorrection {
		max = core.MaxObjectsCorrection
	}
	out := make([]int, 0, max+1)
	for l := 0; l <= max; l++ {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
