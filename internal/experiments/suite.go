// Package experiments orchestrates the paper's evaluation: one entry point
// per table and figure, returning structured rows that cmd/repro renders
// and bench_test.go regenerates. Each experiment composes the substrate
// packages the way the paper's methodology describes — a profiling run for
// the access-pattern analysis, functional fault-injection campaigns for the
// reliability results, and timing-simulator sweeps for the performance
// results.
//
// Every experiment fans its independent work units (per application, and
// per scheme × protection level for the timing and resilience sweeps) over
// a bounded worker pool sized by SuiteConfig.Workers. Task results are
// assembled by index, and every per-run random stream is derived from the
// configured seed rather than from scheduling order, so the output of a
// parallel run is bit-identical to a serial one at any worker count. The
// Suite itself is safe for concurrent use: its applications, profiles,
// golden outputs, traces, campaign checkpoints, and whole-figure results
// live in a content-addressed result store (internal/store) whose
// singleflight front guarantees concurrent experiments share one build per
// key instead of racing or repeating it. Pointing SuiteConfig.Store at a
// disk-backed store makes profiles, goldens, and figure results survive
// the process, so repeat invocations warm-start and skip unchanged work
// entirely.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/kernels"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/nn"
	"github.com/datacentric-gpu/dcrm/internal/profile"
	"github.com/datacentric-gpu/dcrm/internal/simt"
	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
	"github.com/datacentric-gpu/dcrm/internal/version"
)

// Scale selects the workload input sizes.
type Scale int

// Workload scales. Access-pattern *shapes* are scale-invariant; larger
// scales sharpen the Fig. 3 knees and bring the Table III percentages
// closer to the paper's full-size numbers, at proportionally higher
// experiment cost.
const (
	// ScaleSmall is the default: the full evaluation runs in minutes on one
	// core.
	ScaleSmall Scale = iota + 1
	// ScaleMedium roughly quadruples the footprints.
	ScaleMedium
	// ScaleLarge approaches the paper's input sizes for the cheaper
	// applications (hours of runtime for full campaigns).
	ScaleLarge
)

// String renders the scale.
func (s Scale) String() string {
	switch s {
	case ScaleMedium:
		return "medium"
	case ScaleLarge:
		return "large"
	default:
		return "small"
	}
}

// SuiteConfig configures the application suite shared by the experiments.
type SuiteConfig struct {
	// NNTrainSamples shrinks the C-NN weight construction for fast tests
	// (0 = the nn package default).
	NNTrainSamples int
	// Seed drives every deterministic component.
	Seed int64
	// Scale selects workload input sizes (default ScaleSmall).
	Scale Scale
	// Workers bounds the suite-level experiment fan-out (independent
	// applications, and scheme × level configurations within the Fig. 7 and
	// Fig. 9 sweeps). 0 means GOMAXPROCS. Results are identical at any
	// worker count; only wall-clock time changes.
	Workers int
	// SimShards sets the timing engine's event-scheduler shard count for
	// every replay the suite runs (timing.Engine.Shards). 0 means
	// GOMAXPROCS; the engine clamps to [1, NumSMs] and forces the serial
	// path for instrumented replays (OnStore, InjectAt). Replay statistics
	// are byte-identical at any shard count — the golden-stats gate pins
	// this — so the value is a pure performance control and is deliberately
	// excluded from store keys.
	SimShards int
	// Batch is the default campaign batch size: how many runs a campaign
	// claim replays per functional pass (0 = auto, fault.DefaultBatch;
	// 1 disables batching). Outcomes are byte-identical at any batch size —
	// this is purely a performance control — but the effective batch is
	// folded into campaign-result and shard store keys so differently
	// batched artifacts never alias. Per-experiment configs (Fig6Config
	// etc.) can override it per call.
	Batch int
	// Progress, when non-nil, receives a serialized stream of task
	// completion events from every experiment fan-out (cmd/repro wires this
	// to a stderr ETA reporter).
	Progress ProgressFunc
	// Telemetry, when non-nil, receives live counters from every experiment
	// fan-out and fault campaign (task counts per phase, task-duration
	// histograms, campaign outcome counts), so a long suite run can be
	// watched over cmd/dcrmd's /metrics endpoint. Observation only: results
	// are bit-identical with or without a registry attached.
	Telemetry *telemetry.Registry
	// Context, when non-nil, cancels in-flight experiment work: task
	// fan-outs stop claiming new units and campaigns stop claiming new
	// runs once it is done, and the aborted call returns the context's
	// error. Control only — it is excluded from store keys and never
	// changes a completed result. Nil means work always runs to
	// completion (the pre-daemon behaviour).
	Context context.Context
	// Store, when non-nil, is the content-addressed result store backing
	// every suite artifact and figure result. A disk-backed store
	// (store.Config.Dir / the CLIs' -store-dir flag) makes results survive
	// across invocations. Nil opens a private in-memory store, which
	// reproduces the old per-suite memo behaviour exactly. Every store key
	// folds in the full suite identity (build version, GPU configuration,
	// seed, scale), so a shared store can never serve a result computed
	// under different inputs — and because every computation is
	// deterministic in those inputs, a store hit is byte-identical to
	// recomputing.
	Store *store.Store
}

func (c SuiteConfig) withDefaults() SuiteConfig {
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Scale == 0 {
		c.Scale = ScaleSmall
	}
	if c.SimShards == 0 {
		c.SimShards = runtime.GOMAXPROCS(0)
	}
	return c
}

// scaleSizes returns the per-app size knobs for a scale.
type scaleSpec struct {
	poly    int // Polybench matrix dimension
	stencil int // image side
	images  int // C-NN batch
	gram    int // Gram-Schmidt dimension
	options int // BlackScholes contracts
	sradIt  int // SRAD iterations
}

func (s Scale) spec() scaleSpec {
	switch s {
	case ScaleMedium:
		return scaleSpec{poly: 512, stencil: 192, images: 24, gram: 96, options: 16384, sradIt: 8}
	case ScaleLarge:
		return scaleSpec{poly: 1024, stencil: 384, images: 64, gram: 192, options: 65536, sradIt: 12}
	default:
		return scaleSpec{} // zero values select each app's small defaults
	}
}

// Suite builds and caches the paper's applications, their profiles, their
// fault-free golden outputs, their baseline traces, and their campaign
// checkpoints, all through the content-addressed result store. Building
// C-NN's network is expensive, so one network is shared across every C-NN
// instance the experiments create. All methods are safe for concurrent
// use; the cached artifacts are built once per key and must be treated as
// read-only by callers.
type Suite struct {
	cfg SuiteConfig
	net *nn.Network
	st  *store.Store
	// ctx cancels in-flight work (never nil; Background when the config
	// leaves it unset).
	ctx context.Context
	// base is the canonical suite identity folded into every store key:
	// everything a cached result depends on. Workers, SimShards, Progress,
	// and Telemetry are deliberately excluded — they are performance or
	// observation controls and never change results.
	base string
}

// NewSuite constructs the suite (training the shared C-NN network once).
func NewSuite(cfg SuiteConfig) (*Suite, error) {
	cfg = cfg.withDefaults()
	net, err := nn.Train(nn.TrainConfig{TrainSamples: cfg.NNTrainSamples, Seed: cfg.Seed})
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	st := cfg.Store
	if st == nil {
		st, err = store.Open(store.Config{Telemetry: cfg.Telemetry})
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
	}
	base := fmt.Sprintf("%s|gpu=%+v|seed=%d|scale=%s|nn=%d",
		version.String(), arch.Default(), cfg.Seed, cfg.Scale, cfg.NNTrainSamples)
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return &Suite{cfg: cfg, net: net, st: st, ctx: ctx, base: base}, nil
}

// key starts a store key in the given namespace with the suite identity
// already folded in.
func (s *Suite) key(ns string) *store.KeyBuilder {
	return store.NewKey(ns).Field("suite", s.base)
}

// Store exposes the suite's result store (for status inspection; never nil
// after NewSuite).
func (s *Suite) Store() *store.Store { return s.st }

// SimShards returns the resolved timing-replay shard count (SimShards
// after defaulting); callers building their own timing engines against
// suite artifacts use it to match the suite's replay parallelism.
func (s *Suite) SimShards() int { return s.cfg.SimShards }

// AllNames returns every application label, evaluated apps first.
func (s *Suite) AllNames() []string {
	out := make([]string, 0, 10)
	for _, b := range kernels.All() {
		out = append(out, b.Name)
	}
	return out
}

// EvaluatedNames returns the eight Table II applications.
func (s *Suite) EvaluatedNames() []string {
	out := make([]string, 0, 8)
	for _, b := range kernels.Evaluated() {
		out = append(out, b.Name)
	}
	return out
}

// Fresh builds a new instance of the named application at the configured
// scale. Every instance has an identical deterministic memory layout, so
// traces and goldens transfer between instances; protection plans, which
// extend the memory image with replicas, get a private instance each.
func (s *Suite) Fresh(name string) (*kernels.App, error) {
	sp := s.cfg.Scale.spec()
	switch name {
	case "C-NN":
		return kernels.NewCNN(kernels.CNNConfig{Seed: s.cfg.Seed, Net: s.net, Images: sp.images})
	case "P-BICG":
		return kernels.NewBICG(kernels.BICGConfig{NX: sp.poly, NY: sp.poly})
	case "P-GESUMMV":
		return kernels.NewGESUMMV(kernels.GESUMMVConfig{N: sp.poly})
	case "P-MVT":
		return kernels.NewMVT(kernels.MVTConfig{N: sp.poly})
	case "P-GRAMSCHM":
		return kernels.NewGramSchmidt(kernels.GramSchmidtConfig{N: sp.gram})
	case "C-BlackScholes":
		return kernels.NewBlackScholes(kernels.BlackScholesConfig{Options: sp.options})
	case "A-Laplacian":
		return kernels.NewLaplacian(kernels.StencilConfig{Width: sp.stencil, Height: sp.stencil})
	case "A-Meanfilter":
		return kernels.NewMeanfilter(kernels.StencilConfig{Width: sp.stencil, Height: sp.stencil})
	case "A-Sobel":
		return kernels.NewSobel(kernels.StencilConfig{Width: sp.stencil, Height: sp.stencil})
	case "A-SRAD":
		return kernels.NewSRAD(kernels.SRADConfig{Width: sp.stencil, Height: sp.stencil, Iterations: sp.sradIt})
	}
	b, err := kernels.ByName(name)
	if err != nil {
		return nil, err
	}
	return b.Build()
}

// App returns the cached base instance of the named application. Live
// objects (memory image, closures) never persist to disk — the store's
// memory tier alone backs them.
func (s *Suite) App(name string) (*kernels.App, error) {
	return store.Do(s.st, s.key("app").Field("name", name).Key(),
		store.Options[*kernels.App]{Size: func(a *kernels.App) int64 {
			return int64(a.Mem.Size())
		}},
		func() (*kernels.App, error) {
			return s.Fresh(name)
		})
}

// Profile returns the cached access profile of the named application.
// Concurrent callers (Fig. 3/4/6 and Table III racing over the same app)
// share a single profiling pass, and with a disk-backed store the pass
// survives the process.
func (s *Suite) Profile(name string) (*profile.Profile, error) {
	return store.Do(s.st, s.key("profile").Field("name", name).Key(),
		store.Options[*profile.Profile]{Persist: true},
		func() (*profile.Profile, error) {
			a, err := s.App(name)
			if err != nil {
				return nil, err
			}
			return profile.Collect(a)
		})
}

// Golden returns the cached fault-free output of the named application.
func (s *Suite) Golden(name string) ([]float32, error) {
	return store.Do(s.st, s.key("golden").Field("name", name).Key(),
		store.Options[[]float32]{Persist: true},
		func() ([]float32, error) {
			a, err := s.App(name)
			if err != nil {
				return nil, err
			}
			return a.GoldenRun()
		})
}

// Traces returns the cached unprotected per-kernel traces of the named
// application's base instance. The timing engine treats traces as
// read-only, so one capture feeds any number of concurrent replays. Traces
// are memory-only: they are cheap to recapture relative to their bulk.
func (s *Suite) Traces(name string) ([]*simt.KernelTrace, error) {
	return store.Do(s.st, s.key("traces").Field("name", name).Key(),
		store.Options[[]*simt.KernelTrace]{Size: traceFootprint},
		func() ([]*simt.KernelTrace, error) {
			a, err := s.App(name)
			if err != nil {
				return nil, err
			}
			return a.TraceRun(nil)
		})
}

// traceFootprint estimates a trace capture's resident bytes for the
// store's LRU accounting.
func traceFootprint(traces []*simt.KernelTrace) int64 {
	const instrBytes = 24 // Instr value plus slice overhead, roughly
	var n int64
	for _, kt := range traces {
		for _, w := range kt.Warps {
			n += int64(len(w)) * instrBytes
		}
	}
	return n
}

// PlanFor builds a protection plan on a fresh instance of the application,
// protecting the first `level` objects in Table III priority order. Level 0
// returns the unprotected instance with a nil plan.
func (s *Suite) PlanFor(name string, scheme core.Scheme, level int) (*kernels.App, *core.Plan, error) {
	app, err := s.Fresh(name)
	if err != nil {
		return nil, nil, err
	}
	if level <= 0 || scheme == core.None {
		return app, nil, nil
	}
	if level > len(app.Objects) {
		level = len(app.Objects)
	}
	objs := app.Objects[:level]
	// Only read-only objects are replicable; writable ones (e.g. the
	// P-GRAMSCHM matrix) are skipped, as the paper's schemes require.
	filtered := objs[:0:0]
	for _, o := range objs {
		if o.ReadOnly {
			filtered = append(filtered, o)
		}
	}
	if len(filtered) == 0 {
		return app, nil, nil
	}
	plan, err := core.NewPlan(app.Mem, core.PlanConfig{
		Scheme:  scheme,
		Objects: filtered,
		Sites:   app.Sites,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s %v level %d: %w", name, scheme, level, err)
	}
	return app, plan, nil
}

// PlanForObjects builds a protection plan on a fresh instance covering the
// named data objects (in the given priority order). Unknown names are an
// error; writable objects are rejected by the plan itself.
func (s *Suite) PlanForObjects(name string, scheme core.Scheme, objectNames []string) (*kernels.App, *core.Plan, error) {
	app, err := s.Fresh(name)
	if err != nil {
		return nil, nil, err
	}
	if len(objectNames) == 0 || scheme == core.None {
		return app, nil, nil
	}
	objs := make([]*mem.Buffer, 0, len(objectNames))
	for _, n := range objectNames {
		b, ok := app.Mem.BufferByName(n)
		if !ok {
			return nil, nil, fmt.Errorf("experiments: %s has no data object %q", name, n)
		}
		objs = append(objs, b)
	}
	plan, err := core.NewPlan(app.Mem, core.PlanConfig{
		Scheme:  scheme,
		Objects: objs,
		Sites:   app.Sites,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("experiments: %s %v objects %v: %w", name, scheme, objectNames, err)
	}
	return app, plan, nil
}

// sortedLevels returns the protection levels to sweep for an app:
// 0 (baseline) through len(Objects), capped so correction stays within its
// address-table budget.
func sortedLevels(app *kernels.App) []int {
	max := len(app.Objects)
	if max > core.MaxObjectsCorrection {
		max = core.MaxObjectsCorrection
	}
	out := make([]int, 0, max+1)
	for l := 0; l <= max; l++ {
		out = append(out, l)
	}
	sort.Ints(out)
	return out
}
