package experiments

import (
	"runtime"
	"sync"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// ProgressEvent is one fan-out progress notification: Done of Total task
// units of the named experiment phase have completed. Total is fixed for
// the lifetime of a phase, so a reporter can derive completion percentage
// and an ETA from the event stream alone.
type ProgressEvent struct {
	// Phase labels the experiment fan-out (e.g. "fig7: timing sweep").
	Phase string
	// Done and Total count completed vs. scheduled task units.
	Done, Total int
}

// ProgressFunc receives fan-out progress events. The suite serializes
// calls, so implementations need no locking of their own.
type ProgressFunc func(ProgressEvent)

// workers resolves the suite's configured worker bound (0 = GOMAXPROCS).
func (s *Suite) workers() int {
	if s.cfg.Workers > 0 {
		return s.cfg.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// campaignWorkers bounds the fault.Campaign parallelism nested inside a
// suite-level task so the two levels multiply out to roughly GOMAXPROCS
// rather than oversubscribing it.
func (s *Suite) campaignWorkers() int {
	w := runtime.GOMAXPROCS(0) / s.workers()
	if w < 1 {
		w = 1
	}
	return w
}

// campaign builds a fault.Campaign with the suite's nested worker bound,
// telemetry registry, and cancellation context, so every experiment's
// campaigns report live outcome counters when the suite is observed and
// stop claiming runs once the suite's context is cancelled. batch is the
// per-experiment override (0 falls back to the suite-wide default, which
// itself defaults to fault.DefaultBatch).
func (s *Suite) campaign(runs int, seed int64, batch int) fault.Campaign {
	if batch == 0 {
		batch = s.cfg.Batch
	}
	return fault.Campaign{Runs: runs, Seed: seed, Workers: s.campaignWorkers(),
		Batch: batch, Metrics: s.cfg.Telemetry, Context: s.ctx}
}

// batchFor resolves the effective campaign batch size for a
// per-experiment override — the value folded into result-store keys.
func (s *Suite) batchFor(override int) int {
	return s.campaign(1, 0, override).BatchSize()
}

// runTasks executes n independent task units on at most s.workers()
// goroutines and reports completion progress to the suite's ProgressFunc.
// Task i writes its result into caller-owned slot i, so the caller
// assembles output in the same order as a serial loop would — parallel
// runs are bit-identical to serial ones as long as each task is itself
// deterministic. The first task error aborts the fan-out (in-flight tasks
// finish; queued ones are skipped) and is returned.
func (s *Suite) runTasks(phase string, n int, task func(i int) error) error {
	if n <= 0 {
		return nil
	}
	workers := s.workers()
	if workers > n {
		workers = n
	}

	// Telemetry (optional): per-phase task counters, a task-duration
	// histogram, and an in-flight gauge. The children are resolved once
	// here, outside the worker loop.
	var (
		tasksDone *telemetry.Counter
		taskSecs  *telemetry.Histogram
		inflight  *telemetry.Gauge
	)
	if reg := s.cfg.Telemetry; reg != nil {
		tasksDone = reg.CounterVec("dcrm_experiment_tasks_total",
			"Experiment fan-out task units completed, per phase.", "phase").With(phase)
		taskSecs = reg.HistogramVec("dcrm_experiment_task_seconds",
			"Experiment task-unit durations in seconds, per phase.", telemetry.DefBuckets, "phase").With(phase)
		inflight = reg.Gauge("dcrm_experiment_tasks_inflight",
			"Experiment task units currently executing.")
	}

	var (
		mu      sync.Mutex
		next    int
		done    int
		firstEr error
		wg      sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		// Cancellation (the daemon's graceful shutdown) aborts between task
		// units: queued units are skipped and the fan-out returns ctx.Err().
		if firstEr == nil {
			if err := s.ctx.Err(); err != nil {
				firstEr = err
			}
		}
		if firstEr != nil || next >= n {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	finish := func(err error) {
		mu.Lock()
		defer mu.Unlock()
		if err != nil && firstEr == nil {
			firstEr = err
		}
		done++
		if s.cfg.Progress != nil {
			s.cfg.Progress(ProgressEvent{Phase: phase, Done: done, Total: n})
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				var started time.Time
				if tasksDone != nil {
					inflight.Add(1)
					started = time.Now()
				}
				err := task(i)
				if tasksDone != nil {
					inflight.Add(-1)
					tasksDone.Inc()
					taskSecs.Observe(time.Since(started).Seconds())
				}
				finish(err)
			}
		}()
	}
	wg.Wait()
	return firstEr
}
