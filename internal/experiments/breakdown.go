package experiments

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
)

// BreakdownConfig sizes the fault-model × scheme outcome-breakdown
// experiment.
type BreakdownConfig struct {
	// Runs is the fault-injection count per configuration. Default 1000,
	// the paper's count (95% CI ±3%).
	Runs int
	// Seed makes campaigns reproducible. Default 13. Every run's random
	// stream is derived from (Seed, run index), so results are independent
	// of worker scheduling.
	Seed int64
	// Models overrides the fault models. Default: DefaultBreakdownModels(),
	// one representative configuration per model family.
	Models []fault.Model
	// Apps restricts the application set. Default: all ten applications,
	// counter-examples included.
	Apps []string
	// Schemes overrides the protection schemes swept at each application's
	// hot level. Default: detection and detection+correction (the
	// unprotected baseline is always included).
	Schemes []core.Scheme
	// Batch overrides the campaign batch size (0 = the suite default;
	// 1 disables batching). Results are byte-identical at any batch size.
	Batch int
}

func (c BreakdownConfig) withDefaults() BreakdownConfig {
	if c.Runs == 0 {
		c.Runs = 1000
	}
	if c.Seed == 0 {
		c.Seed = 13
	}
	if len(c.Models) == 0 {
		c.Models = DefaultBreakdownModels()
	}
	if len(c.Schemes) == 0 {
		c.Schemes = []core.Scheme{core.Detection, core.Correction}
	}
	return c
}

// DefaultBreakdownModels is the breakdown experiment's model sweep: one
// representative configuration per model family, chosen so every outcome
// class appears — the paper's 3-bit stuck-at pattern, a 2-flip transient
// (SECDED-detected uncorrectable: the DUE-dominant case), a 3-flip
// transient (aliases past SECDED: the SDC/masked case with store-overwrite
// masking), and a 2×2 adjacent-bit/adjacent-word burst.
func DefaultBreakdownModels() []fault.Model {
	return []fault.Model{
		fault.StuckAt{BitsPerWord: 3, Blocks: 1},
		fault.Transient{Flips: 2, Blocks: 1},
		fault.Transient{Flips: 3, Blocks: 1},
		fault.Burst{Width: 2, Words: 2, Blocks: 1},
	}
}

// BreakdownCell is one (application, scheme, model) bar of the breakdown
// figure: the full outcome distribution of one campaign.
type BreakdownCell struct {
	App    string
	Scheme core.Scheme
	// Level is the protected-object count (0 = unprotected baseline; the
	// protected configurations use the application's hot-object count).
	Level int
	// Model identifies the fault configuration (serializable: cells
	// persist through the gob-encoded result store).
	Model  fault.ModelInfo
	Result fault.Result
}

// FaultModelBreakdown runs the fault-model × scheme outcome-breakdown
// experiment, served through the result store: for every application,
// inject each configured fault model uniformly across the whole data
// space (replicas included, so protected configurations expose the
// detection/correction paths) under the unprotected baseline and each
// scheme at the application's hot level, and report the full outcome
// distribution — including DUE — per cell. Model identities fold into the
// store key via fault.ModelsKey, so results computed under different
// model sets never alias.
func FaultModelBreakdown(s *Suite, cfg BreakdownConfig) ([]BreakdownCell, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Apps) == 0 {
		cfg.Apps = s.AllNames()
	}
	return figureResult(s, "breakdown",
		s.key("breakdown").
			Field("runs", cfg.Runs).
			Field("seed", cfg.Seed).
			Field("models", fault.ModelsKey(cfg.Models)).
			Field("apps", cfg.Apps).
			Field("schemes", cfg.Schemes).
			Field("batch", s.batchFor(cfg.Batch)),
		func() ([]BreakdownCell, error) { return faultModelBreakdown(s, cfg) })
}

// faultModelBreakdown is FaultModelBreakdown's compute path (store miss):
// each (application, scheme, level) configuration is one task on the
// suite's worker pool and sweeps every model serially, so cells are
// assembled in the serial order and output is identical at any worker
// count. The wrapper has already resolved defaults.
func faultModelBreakdown(s *Suite, cfg BreakdownConfig) ([]BreakdownCell, error) {
	type task struct {
		app    string
		scheme core.Scheme
		level  int
	}
	var tasks []task
	for _, name := range cfg.Apps {
		base, err := s.App(name)
		if err != nil {
			return nil, err
		}
		tasks = append(tasks, task{name, core.None, 0})
		for _, scheme := range cfg.Schemes {
			tasks = append(tasks, task{name, scheme, base.HotCount})
		}
	}

	perTask := make([][]BreakdownCell, len(tasks))
	err := s.runTasks("breakdown: campaigns", len(tasks), func(i int) error {
		t := tasks[i]
		cp, err := s.Checkpoint(t.app, t.scheme, t.level)
		if err != nil {
			return err
		}
		// Uniform whole-space selection: every block of the prepared image,
		// replicas included. Unlike Fig. 9's miss-weighted selector this
		// needs no timing replay per configuration and is well defined for
		// the counter-example applications too.
		blocks := make([]arch.BlockAddr, cp.App.Mem.TotalBlocks())
		for b := range blocks {
			blocks[b] = arch.BlockAddr(b)
		}
		sel, err := fault.NewSetSelector(blocks)
		if err != nil {
			return err
		}
		cells := make([]BreakdownCell, 0, len(cfg.Models))
		for _, model := range cfg.Models {
			res, err := cp.Campaign(s.campaign(cfg.Runs, cfg.Seed, cfg.Batch), model, sel)
			if err != nil {
				return fmt.Errorf("experiments: breakdown %s %v L%d %v: %w",
					t.app, t.scheme, t.level, model, err)
			}
			cells = append(cells, BreakdownCell{
				App: t.app, Scheme: t.scheme, Level: t.level,
				Model: fault.Info(model), Result: res,
			})
		}
		perTask[i] = cells
		return nil
	})
	if err != nil {
		return nil, err
	}

	var out []BreakdownCell
	for _, cells := range perTask {
		out = append(out, cells...)
	}
	return out, nil
}
