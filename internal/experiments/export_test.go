package experiments

import (
	"os"
	"path/filepath"
	"testing"
)

// TestExportCreatesParentDirs pins the output-path contract the CLI flags
// rely on: -csv may point at a directory that does not exist yet (nested
// arbitrarily deep) and the exporter creates it rather than failing. Both
// faultinject and resilience pass their -csv flag straight through here.
func TestExportCreatesParentDirs(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "out", "nested", "csv")
	if err := ExportFig2CSV(dir); err != nil {
		t.Fatalf("export into missing nested dir: %v", err)
	}
	fi, err := os.Stat(filepath.Join(dir, "fig2_l2_trend.csv"))
	if err != nil {
		t.Fatalf("exported file missing: %v", err)
	}
	if fi.Size() == 0 {
		t.Error("exported file is empty")
	}
}
