package experiments

import (
	"encoding/json"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// parityOutputs computes the store-parity workload on a suite and returns
// its JSON rendering: one small campaign figure, one timing sweep, and one
// resilience sweep over a single cheap application. JSON is the comparison
// form because it is exactly what the export paths serialize.
func parityOutputs(t *testing.T, s *Suite) []byte {
	t.Helper()
	apps := []string{"P-BICG"}
	fig6, err := Fig6HotVsRest(s, Fig6Config{Runs: 6, Seed: 5, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	fig7, err := Fig7Overhead(s, Fig7Config{Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	fig9, err := Fig9Resilience(s, Fig9Config{Runs: 6, Seed: 5, Apps: apps})
	if err != nil {
		t.Fatal(err)
	}
	out, err := json.Marshal(struct {
		Fig6 []Fig6Cell
		Fig7 []Fig7Point
		Fig9 []Fig9Cell
	}{fig6, fig7, fig9})
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func paritySuite(t *testing.T, st *store.Store, reg *telemetry.Registry) *Suite {
	t.Helper()
	s, err := NewSuite(SuiteConfig{NNTrainSamples: 60, Workers: 2, Store: st, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestStoreParity is the byte-identical-results gate: suite output with the
// store enabled — cold against an empty disk store, and warm from a fresh
// process over the same directory — must match the storeless in-memory
// path exactly. It runs under -race in CI.
func TestStoreParity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweeps in -short mode")
	}
	dir := t.TempDir()

	// A: no explicit store (private in-memory store, the storeless
	// reference path).
	baseline := parityOutputs(t, paritySuite(t, nil, nil))

	// B: cold run against an empty disk-backed store.
	coldStore, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	cold := parityOutputs(t, paritySuite(t, coldStore, nil))
	if string(cold) != string(baseline) {
		t.Errorf("cold store-enabled output diverges from storeless output\nstoreless: %s\nstore:     %s", baseline, cold)
	}

	// C: a fresh suite and fresh store over the same directory must serve
	// every figure from disk, byte-identically, without computing anything.
	reg := telemetry.NewRegistry()
	warmStore, err := store.Open(store.Config{Dir: dir, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	warm := parityOutputs(t, paritySuite(t, warmStore, reg))
	if string(warm) != string(baseline) {
		t.Errorf("warm store-enabled output diverges from storeless output\nstoreless: %s\nstore:     %s", baseline, warm)
	}
	snap := reg.Snapshot()
	if hits, ok := snap.Get("dcrm_store_disk_hits_total"); !ok || hits.Value == 0 {
		t.Error("warm run served nothing from the disk tier")
	}
	for _, fig := range []string{"fig6", "fig7", "fig9"} {
		if c, ok := snap.Get("dcrm_experiment_results_computed_total", telemetry.Label{Name: "figure", Value: fig}); ok && c.Value != 0 {
			t.Errorf("warm run recomputed %s (%v times) despite a persisted result", fig, c.Value)
		}
		if r, ok := snap.Get("dcrm_experiment_results_requests_total", telemetry.Label{Name: "figure", Value: fig}); !ok || r.Value == 0 {
			t.Errorf("warm run recorded no %s requests", fig)
		}
	}
}
