package experiments

import (
	"fmt"
	"io"
	"time"
)

// ProgressReporter renders suite fan-out progress as a single rewriting
// line per experiment phase: completed/total tasks, elapsed time, and a
// completion-rate ETA. Commands point it at stderr so stdout stays
// byte-identical across worker counts. The suite serializes events, so no
// locking is needed here.
type ProgressReporter struct {
	// W receives the rendered progress lines.
	W io.Writer
	// Now supplies the clock (tests substitute a fake; defaults to
	// time.Now in NewProgressReporter).
	Now func() time.Time

	phase   string
	started time.Time
}

// NewProgressReporter builds a reporter writing to w on the real clock.
func NewProgressReporter(w io.Writer) *ProgressReporter {
	return &ProgressReporter{W: w, Now: time.Now}
}

// Progress returns the suite progress hook commands wire into SuiteConfig:
// nil under quiet (the suite then skips event delivery entirely),
// otherwise a reporter writing to w.
func Progress(quiet bool, w io.Writer) ProgressFunc {
	if quiet {
		return nil
	}
	return NewProgressReporter(w).Report
}

// Report consumes one suite progress event.
func (r *ProgressReporter) Report(ev ProgressEvent) {
	if ev.Phase != r.phase {
		r.phase = ev.Phase
		r.started = r.Now()
	}
	elapsed := r.Now().Sub(r.started).Truncate(time.Second)
	line := fmt.Sprintf("[%s] %d/%d  elapsed %s", ev.Phase, ev.Done, ev.Total, elapsed)
	if ev.Done > 0 && ev.Done < ev.Total {
		eta := time.Duration(float64(elapsed) / float64(ev.Done) * float64(ev.Total-ev.Done)).Truncate(time.Second)
		line += fmt.Sprintf("  eta %s", eta)
	}
	// \r rewrites the line in place; pad to clear a longer previous line.
	fmt.Fprintf(r.W, "\r%-70s", line)
	if ev.Done >= ev.Total {
		fmt.Fprintln(r.W)
	}
}
