package experiments

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
)

// TestCampaignRaceClean exercises the full clone→inject→run→classify path
// with multiple workers under the race detector.
func TestCampaignRaceClean(t *testing.T) {
	s := testSuite(t)
	app, plan, err := s.PlanFor("P-BICG", core.Detection, 2)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := s.Golden("P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := MissWeightedSelector(app, plan, 4)
	if err != nil {
		t.Fatal(err)
	}
	c := fault.Campaign{Runs: 24, Seed: 3, Workers: 8}
	if _, err := c.Execute(func(_ int, rng *rand.Rand) (fault.Outcome, error) {
		clone := app.Mem.Clone()
		if _, err := fault.Inject(clone, rng, fault.StuckAt{BitsPerWord: 3, Blocks: 5}, sel, nil); err != nil {
			return 0, err
		}
		return ClassifyRun(app, clone, plan, golden)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestSuiteMemoRace is the regression test for the formerly unsynchronized
// Suite memo maps: 8 goroutines hammer App/Profile/Golden/Traces/PlanFor
// over the same applications under the race detector. Before the memos
// were once-guarded this was a guaranteed map race for any concurrent
// caller.
func TestSuiteMemoRace(t *testing.T) {
	s, err := NewSuite(SuiteConfig{NNTrainSamples: 60})
	if err != nil {
		t.Fatal(err)
	}
	apps := []string{"P-BICG", "P-MVT", "A-Laplacian"}
	var (
		wg   sync.WaitGroup
		mu   sync.Mutex
		errs []error
	)
	record := func(err error) {
		if err == nil {
			return
		}
		mu.Lock()
		errs = append(errs, err)
		mu.Unlock()
	}
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Rotate the app order per goroutine so different keys race on
			// the memo lock, not just the same entry's once.
			for k := 0; k < len(apps); k++ {
				name := apps[(g+k)%len(apps)]
				_, err := s.App(name)
				record(err)
				_, err = s.Profile(name)
				record(err)
				_, err = s.Golden(name)
				record(err)
				_, err = s.Traces(name)
				record(err)
				_, _, err = s.PlanFor(name, core.Detection, 2)
				record(err)
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		t.Fatal(err)
	}
	// The memos must have converged on one artifact per app.
	p1, _ := s.Profile("P-BICG")
	p2, _ := s.Profile("P-BICG")
	if p1 != p2 {
		t.Fatal("Profile returned two distinct memoized artifacts")
	}
}

// TestExperimentFanOutRace drives the suite-level worker pool through the
// profile-backed experiments with more workers than tasks, under -race.
func TestExperimentFanOutRace(t *testing.T) {
	s, err := NewSuite(SuiteConfig{NNTrainSamples: 60, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for _, fn := range []func() error{
		func() error { _, err := Fig3AccessProfiles(s, 20); return err },
		func() error { _, err := Fig4WarpSharing(s, 20); return err },
		func() error { _, err := Table3DataObjects(s); return err },
	} {
		wg.Add(1)
		go func(fn func() error) {
			defer wg.Done()
			if err := fn(); err != nil {
				t.Error(err)
			}
		}(fn)
	}
	wg.Wait()
}

// TestFig7ParallelRace exercises concurrent timing replays over shared
// traces (the Fig. 7 fan-out) under the race detector.
func TestFig7ParallelRace(t *testing.T) {
	s, err := NewSuite(SuiteConfig{NNTrainSamples: 60, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Fig7Overhead(s, Fig7Config{Apps: []string{"P-BICG", "P-MVT"}}); err != nil {
		t.Fatal(err)
	}
}
