package experiments

import (
	"math/rand"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
)

// TestCampaignRaceClean exercises the full clone→inject→run→classify path
// with multiple workers under the race detector.
func TestCampaignRaceClean(t *testing.T) {
	s := testSuite(t)
	app, plan, err := s.PlanFor("P-BICG", core.Detection, 2)
	if err != nil {
		t.Fatal(err)
	}
	golden, err := s.Golden("P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	sel, err := MissWeightedSelector(app, plan)
	if err != nil {
		t.Fatal(err)
	}
	c := fault.Campaign{Runs: 24, Seed: 3, Workers: 8}
	if _, err := c.Execute(func(_ int, rng *rand.Rand) (fault.Outcome, error) {
		clone := app.Mem.Clone()
		if _, err := fault.Inject(clone, rng, fault.Model{BitsPerWord: 3, Blocks: 5}, sel); err != nil {
			return 0, err
		}
		return ClassifyRun(app, clone, plan, golden)
	}); err != nil {
		t.Fatal(err)
	}
}
