package experiments

import (
	"os"
	"path/filepath"
	"sync"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
)

// sharedSuite caches one suite across tests (the C-NN network is the
// expensive part).
var (
	suiteOnce sync.Once
	suiteVal  *Suite
	suiteErr  error
)

func testSuite(t testing.TB) *Suite {
	t.Helper()
	suiteOnce.Do(func() {
		suiteVal, suiteErr = NewSuite(SuiteConfig{NNTrainSamples: 60})
	})
	if suiteErr != nil {
		t.Fatalf("NewSuite: %v", suiteErr)
	}
	return suiteVal
}

func TestFig2Data(t *testing.T) {
	rows := Fig2L2Trend()
	if len(rows) < 10 {
		t.Fatalf("Fig2 rows = %d, want the full history", len(rows))
	}
	// The trend: latest NVIDIA part has ≥10× the L2 of the 2010 part.
	var first, last int
	for _, r := range rows {
		if r.Vendor != "NVIDIA" {
			continue
		}
		if first == 0 {
			first = r.L2KB
		}
		last = r.L2KB
	}
	if last < 10*first {
		t.Errorf("L2 growth %d → %d KB; Fig. 2 shows ≥10×", first, last)
	}
}

func TestFig3Profiles(t *testing.T) {
	s := testSuite(t)
	results, err := Fig3AccessProfiles(s, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 10 {
		t.Fatalf("Fig3 results = %d, want 10", len(results))
	}
	byName := map[string]Fig3Result{}
	for _, r := range results {
		byName[r.App] = r
	}
	for _, name := range s.EvaluatedNames() {
		if !byName[name].HotPattern {
			t.Errorf("%s: expected the Fig. 3(a)–(f) hot knee", name)
		}
	}
	if byName["C-BlackScholes"].HotPattern {
		t.Error("C-BlackScholes: expected flat profile (Fig. 3(g))")
	}
	if byName["P-GRAMSCHM"].HotPattern {
		t.Error("P-GRAMSCHM: expected staircase profile (Fig. 3(h))")
	}
	// Every hot-knee app shows a clear concentration ratio (the paper
	// cites 4732× for C-NN at full scale; the ratio grows with problem
	// size — P-GESUMMV's is ≈N/32 — so at the scaled defaults the floor is
	// modest).
	for _, name := range s.EvaluatedNames() {
		if byName[name].MaxMinRatio < 5 {
			t.Errorf("%s: max/min ratio %.0f, want a clear knee", name, byName[name].MaxMinRatio)
		}
	}
}

func TestFig4WarpSharing(t *testing.T) {
	s := testSuite(t)
	results, err := Fig4WarpSharing(s, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 4 {
		t.Fatalf("Fig4 results = %d, want 4", len(results))
	}
	for _, r := range results {
		if len(r.Series) == 0 {
			t.Fatalf("%s: empty series", r.App)
		}
		top := r.Series[len(r.Series)-1]
		bottom := r.Series[0]
		// Observation II: hot blocks are far more widely shared.
		if top < 2*bottom && top < 50 {
			t.Errorf("%s: hot block share %.1f%% not ≫ cold %.1f%%", r.App, top, bottom)
		}
	}
}

func TestTable3(t *testing.T) {
	s := testSuite(t)
	rows, err := Table3DataObjects(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("Table3 rows = %d, want 8", len(rows))
	}
	for _, r := range rows {
		if len(r.Objects) == 0 {
			t.Fatalf("%s: no objects", r.App)
		}
		// The top-ranked object must be hot for every evaluated app.
		if !r.Objects[0].Hot {
			t.Errorf("%s: top object %q not hot", r.App, r.Objects[0].Name)
		}
		// Hot footprints are small (Table III: ≤2.15%% at paper scale;
		// allow slack for the scaled inputs).
		if r.HotSizePercent > 10 {
			t.Errorf("%s: hot size %.2f%%, want small", r.App, r.HotSizePercent)
		}
		if r.HotAccessPercent <= 0 || r.HotAccessPercent > 100 {
			t.Errorf("%s: hot access %.2f%% out of range", r.App, r.HotAccessPercent)
		}
	}
}

func TestFig6HotVsRestShape(t *testing.T) {
	s := testSuite(t)
	cells, err := Fig6HotVsRest(s, Fig6Config{
		Runs: 40,
		Apps: []string{"P-BICG", "A-Laplacian"},
		Models: []fault.Model{
			fault.StuckAt{BitsPerWord: 2, Blocks: 1},
			fault.StuckAt{BitsPerWord: 4, Blocks: 5},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 2*2*2 {
		t.Fatalf("cells = %d, want 8", len(cells))
	}
	sdc := map[string]int{}
	for _, c := range cells {
		sdc[c.App+"/"+c.Space+"/"+c.Model.String()] = c.Result.SDCRuns
	}
	for _, app := range []string{"P-BICG", "A-Laplacian"} {
		// Observation III: hot faults produce more SDCs than rest faults at
		// the heaviest configuration.
		heavy := "/4-bit/5-block"
		if sdc[app+"/hot"+heavy] <= sdc[app+"/rest"+heavy] {
			t.Errorf("%s: hot SDC %d not above rest SDC %d (4-bit/5-block)",
				app, sdc[app+"/hot"+heavy], sdc[app+"/rest"+heavy])
		}
		// More faulty blocks/bits → no fewer SDCs in the hot space.
		if sdc[app+"/hot/4-bit/5-block"] < sdc[app+"/hot/2-bit/1-block"] {
			t.Errorf("%s: SDC decreased with heavier faults: %d < %d", app,
				sdc[app+"/hot/4-bit/5-block"], sdc[app+"/hot/2-bit/1-block"])
		}
	}
}

func TestFig7OverheadShape(t *testing.T) {
	s := testSuite(t)
	points, err := Fig7Overhead(s, Fig7Config{Apps: []string{"P-BICG", "P-MVT"}})
	if err != nil {
		t.Fatal(err)
	}
	byKey := map[string]Fig7Point{}
	for _, p := range points {
		byKey[p.App+"/"+p.Scheme.String()+"/"+itoa(p.Level)] = p
	}
	for _, app := range []string{"P-BICG", "P-MVT"} {
		base := byKey[app+"/baseline/0"]
		if base.NormTime != 1 || base.Cycles == 0 {
			t.Fatalf("%s: bad baseline %+v", app, base)
		}
		detHot := byKey[app+"/detection/2"]
		corHot := byKey[app+"/detection+correction/2"]
		detAll := byKey[app+"/detection/3"]
		corAll := byKey[app+"/detection+correction/3"]
		// Protection never speeds the app up.
		for label, p := range map[string]Fig7Point{"detHot": detHot, "corHot": corHot, "detAll": detAll, "corAll": corAll} {
			if p.NormTime < 0.999 {
				t.Errorf("%s %s: normalized time %.4f below baseline", app, label, p.NormTime)
			}
		}
		// Hot-only protection is cheap; full protection is expensive
		// (Section V-A: 1.2%/3.4% vs 40.65%/74.24%).
		if detHot.NormTime > 1.15 {
			t.Errorf("%s: detection-hot overhead %.3f, want small", app, detHot.NormTime)
		}
		if detAll.NormTime < detHot.NormTime {
			t.Errorf("%s: full detection (%.3f) cheaper than hot-only (%.3f)", app, detAll.NormTime, detHot.NormTime)
		}
		if corAll.NormTime < detAll.NormTime {
			t.Errorf("%s: full correction (%.3f) cheaper than full detection (%.3f)", app, corAll.NormTime, detAll.NormTime)
		}
		// L1 missed accesses grow with protection level (Fig. 7's second
		// series).
		if detAll.NormMisses <= detHot.NormMisses {
			t.Errorf("%s: full-detection misses (%.3f) not above hot-only (%.3f)", app, detAll.NormMisses, detHot.NormMisses)
		}
	}
}

func itoa(n int) string {
	return string(rune('0' + n))
}

func TestSummarizeFig7(t *testing.T) {
	points := []Fig7Point{
		{App: "X", Scheme: core.Detection, Level: 1, NormTime: 1.02},
		{App: "X", Scheme: core.Correction, Level: 1, NormTime: 1.05},
		{App: "X", Scheme: core.Detection, Level: 3, NormTime: 1.40},
		{App: "X", Scheme: core.Correction, Level: 3, NormTime: 1.80},
	}
	hot := map[string]int{"X": 1}
	all := map[string]int{"X": 3}
	sum := SummarizeFig7(points, hot, all)
	if !close(sum.DetectionHotOverhead, 0.02) || !close(sum.CorrectionHotOverhead, 0.05) {
		t.Errorf("hot overheads = %+v", sum)
	}
	if !close(sum.DetectionAllOverhead, 0.40) || !close(sum.CorrectionAllOverhead, 0.80) {
		t.Errorf("all overheads = %+v", sum)
	}
}

func close(a, b float64) bool { return a-b < 1e-9 && b-a < 1e-9 }

func TestFig9ResilienceShape(t *testing.T) {
	s := testSuite(t)
	cells, err := Fig9Resilience(s, Fig9Config{
		Runs:   40,
		Apps:   []string{"P-BICG"},
		Models: []fault.Model{fault.StuckAt{BitsPerWord: 3, Blocks: 5}},
	})
	if err != nil {
		t.Fatal(err)
	}
	var baseline, detHot, corHot *Fig9Cell
	for i := range cells {
		c := &cells[i]
		switch {
		case c.Scheme == core.None:
			baseline = c
		case c.Scheme == core.Detection && c.Level == 2:
			detHot = c
		case c.Scheme == core.Correction && c.Level == 2:
			corHot = c
		}
	}
	if baseline == nil || detHot == nil || corHot == nil {
		t.Fatalf("missing cells in %d results", len(cells))
	}
	if baseline.Result.SDCRuns == 0 {
		t.Fatal("baseline produced no SDCs; the experiment shows nothing")
	}
	// Protecting the hot objects must slash SDCs (paper: −98.97% on
	// average) — with L1-miss-weighted whole-space injection most faults
	// land in protected (or replica) space.
	if detHot.Result.SDCRuns >= baseline.Result.SDCRuns {
		t.Errorf("detection SDC %d not below baseline %d", detHot.Result.SDCRuns, baseline.Result.SDCRuns)
	}
	if corHot.Result.SDCRuns >= baseline.Result.SDCRuns {
		t.Errorf("correction SDC %d not below baseline %d", corHot.Result.SDCRuns, baseline.Result.SDCRuns)
	}
	// Detection converts SDCs into detected terminations.
	if detHot.Result.DetectedRuns == 0 {
		t.Error("detection campaign recorded no detected runs")
	}
	// Correction repairs rather than terminates.
	if corHot.Result.DetectedRuns != 0 {
		t.Errorf("correction campaign recorded %d detected runs, want 0", corHot.Result.DetectedRuns)
	}
	drop := SDCDropPercent(cells, map[string]int{"P-BICG": 2})
	if drop <= 0 {
		t.Errorf("SDC drop %.1f%%, want positive", drop)
	}
	t.Logf("P-BICG SDC drop at hot protection: %.1f%%", drop)
}

func TestAblations(t *testing.T) {
	s := testSuite(t)
	lazy, err := AblationLazyCompare(s, "P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	if lazy.Ratio() < 1 {
		t.Errorf("eager comparison (%.4f×) faster than lazy", lazy.Ratio())
	}
	sched, err := AblationScheduler(s, "P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	if sched.BaselineCycles == 0 || sched.VariantCycles == 0 {
		t.Error("scheduler ablation produced zero cycles")
	}
	place, err := AblationPlacement(s, "P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	if place.BaselineCycles == 0 {
		t.Error("placement ablation produced zero cycles")
	}
	buf, err := AblationCompareBuffer(s, "P-BICG", []int{1, 32})
	if err != nil {
		t.Fatal(err)
	}
	if buf[1] < buf[32] {
		t.Errorf("1-entry compare buffer (%d cycles) faster than 32-entry (%d)", buf[1], buf[32])
	}
}

func TestTables(t *testing.T) {
	s := testSuite(t)
	t1 := Table1Config(arch.Default())
	if len(t1) != 6 {
		t.Fatalf("Table1 rows = %d, want 6", len(t1))
	}
	t2, err := Table2ErrorMetrics(s)
	if err != nil {
		t.Fatal(err)
	}
	if len(t2) != 8 {
		t.Fatalf("Table2 rows = %d, want 8", len(t2))
	}
	for _, r := range t2 {
		if r.OutputFormat == "" {
			t.Errorf("%s: empty output format", r.App)
		}
	}
	rendered := RenderTable([]string{"a", "bb"}, [][]string{{"1", "2"}, {"333", "4"}})
	if rendered == "" {
		t.Error("empty rendering")
	}
}

func TestPlanForLevels(t *testing.T) {
	s := testSuite(t)
	app, plan, err := s.PlanFor("P-BICG", core.Detection, 0)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		t.Error("level 0 returned a plan")
	}
	if app == nil {
		t.Fatal("no app")
	}
	_, plan, err = s.PlanFor("P-BICG", core.Correction, 99)
	if err != nil {
		t.Fatal(err)
	}
	if plan.ProtectedObjects() != 3 {
		t.Errorf("overlarge level protected %d objects, want clamped 3", plan.ProtectedObjects())
	}
	// P-GRAMSCHM has only a writable object: no plan at any level.
	_, plan, err = s.PlanFor("P-GRAMSCHM", core.Detection, 1)
	if err != nil {
		t.Fatal(err)
	}
	if plan != nil {
		t.Error("writable-only app produced a plan")
	}
}

func TestScaleSpecs(t *testing.T) {
	for _, s := range []Scale{ScaleSmall, ScaleMedium, ScaleLarge} {
		if s.String() == "" {
			t.Errorf("scale %d has empty name", s)
		}
	}
	// Medium-scale apps build with larger footprints and keep their hot
	// pattern (checked on the cheapest app to keep the test fast).
	sm, err := NewSuite(SuiteConfig{NNTrainSamples: 60})
	if err != nil {
		t.Fatal(err)
	}
	md, err := NewSuite(SuiteConfig{NNTrainSamples: 60, Scale: ScaleMedium})
	if err != nil {
		t.Fatal(err)
	}
	small, err := sm.App("P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	medium, err := md.App("P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	if medium.Mem.Size() <= small.Mem.Size() {
		t.Errorf("medium footprint %d not above small %d", medium.Mem.Size(), small.Mem.Size())
	}
	mp, err := md.Profile("P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	sp, err := sm.Profile("P-BICG")
	if err != nil {
		t.Fatal(err)
	}
	if !mp.HasHotPattern() {
		t.Error("medium-scale P-BICG lost its hot pattern")
	}
	// The knee sharpens with scale (≈N/33 for P-BICG).
	if mp.MaxMinRatio() <= sp.MaxMinRatio() {
		t.Errorf("medium knee %.1f not sharper than small %.1f", mp.MaxMinRatio(), sp.MaxMinRatio())
	}
}

func TestCSVExport(t *testing.T) {
	s := testSuite(t)
	dir := t.TempDir()
	if err := ExportFig2CSV(dir); err != nil {
		t.Fatal(err)
	}
	f3, err := Fig3AccessProfiles(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportFig3CSV(dir, f3); err != nil {
		t.Fatal(err)
	}
	f4, err := Fig4WarpSharing(s, 10)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportFig4CSV(dir, f4); err != nil {
		t.Fatal(err)
	}
	t3, err := Table3DataObjects(s)
	if err != nil {
		t.Fatal(err)
	}
	if err := ExportTable3CSV(dir, t3); err != nil {
		t.Fatal(err)
	}
	if err := ExportFig6CSV(dir, []Fig6Cell{{App: "X", Space: "hot"}}); err != nil {
		t.Fatal(err)
	}
	if err := ExportFig7CSV(dir, []Fig7Point{{App: "X"}}); err != nil {
		t.Fatal(err)
	}
	if err := ExportFig9CSV(dir, []Fig9Cell{{App: "X", Scheme: core.None}}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"fig2_l2_trend.csv", "fig3_access_profiles.csv", "fig4_warp_sharing.csv",
		"table3_data_objects.csv", "fig6_hot_vs_rest.csv", "fig7_overhead.csv",
		"fig9_resilience.csv",
	} {
		fi, err := os.Stat(filepath.Join(dir, name))
		if err != nil {
			t.Fatalf("%s missing: %v", name, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", name)
		}
	}
}

func TestSparkline(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty series rendered %q", got)
	}
	s := Sparkline([]float64{0, 0.5, 1})
	if len([]rune(s)) != 3 {
		t.Fatalf("sparkline %q has wrong length", s)
	}
	if []rune(s)[0] == []rune(s)[2] {
		t.Error("min and max render identically")
	}
	// All-zero series must not divide by zero.
	if z := Sparkline([]float64{0, 0}); len([]rune(z)) != 2 {
		t.Error("zero series broken")
	}
}

func TestRecoveryCost(t *testing.T) {
	res := fault.Result{Runs: 100, DetectedRuns: 20}
	rc, err := NewRecoveryCost(1.01, 1.03, res)
	if err != nil {
		t.Fatal(err)
	}
	if !close(rc.TerminateProbability, 0.2) {
		t.Errorf("p = %v", rc.TerminateProbability)
	}
	// 1.01/0.8 = 1.2625 > 1.03 → correction wins at this fault rate.
	if !close(rc.DetectionExpectedTime, 1.01/0.8) {
		t.Errorf("expected time = %v", rc.DetectionExpectedTime)
	}
	if !rc.CorrectionWins {
		t.Error("correction should win at a 20% terminate rate")
	}
	// At a negligible fault rate detection wins.
	rc, err = NewRecoveryCost(1.01, 1.03, fault.Result{Runs: 1000, DetectedRuns: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rc.CorrectionWins {
		t.Error("detection should win at a 0.1% terminate rate")
	}
	// Everything terminates: detection never completes.
	rc, err = NewRecoveryCost(1.01, 1.03, fault.Result{Runs: 10, DetectedRuns: 10})
	if err != nil {
		t.Fatal(err)
	}
	if !rc.CorrectionWins || rc.DetectionExpectedTime != 0 {
		t.Errorf("all-terminate case mishandled: %+v", rc)
	}
	if _, err := NewRecoveryCost(0, 1, res); err == nil {
		t.Error("zero perf accepted")
	}
	if _, err := NewRecoveryCost(1, 1, fault.Result{}); err == nil {
		t.Error("empty campaign accepted")
	}
}

func TestBreakEvenTerminateProbability(t *testing.T) {
	// detPerf 1.012, corPerf 1.034 → p* = 1 − 1.012/1.034 ≈ 2.1%: the
	// paper's average overheads imply correction pays off once ~2% of runs
	// would otherwise terminate.
	p := BreakEvenTerminateProbability(1.012, 1.034)
	if p < 0.02 || p > 0.025 {
		t.Errorf("break-even p = %v, want ≈0.021", p)
	}
	if BreakEvenTerminateProbability(1.05, 1.01) != 0 {
		t.Error("detection-dominates case should return 0")
	}
}
