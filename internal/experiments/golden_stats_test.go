package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/timing"
)

var updateGolden = flag.Bool("update", false, "rewrite testdata golden files")

// goldenRun is one (application, scheme) replay's full per-kernel stats.
type goldenRun struct {
	App     string
	Scheme  string
	Level   int
	Kernels []timing.KernelStats
}

// goldenSchemes are the protection plans the determinism contract covers:
// unprotected baseline, lazy duplication (detection), and triplication with
// majority vote (correction).
var goldenSchemes = []core.Scheme{core.None, core.Detection, core.Correction}

// goldenLevel picks the protection level for an app: the hot objects when
// the access profile has a knee, every object otherwise (the
// counter-example apps have HotCount 0 but must still exercise the
// protected path where their objects allow it).
func goldenLevel(appName string, s *Suite) (int, error) {
	app, err := s.App(appName)
	if err != nil {
		return 0, err
	}
	if app.HotCount > 0 {
		return app.HotCount, nil
	}
	return len(app.Objects), nil
}

// goldenShardCounts is the parallel replay's determinism gate: every
// (application, scheme) replay must produce byte-identical KernelStats at
// all of these shard counts. The serial run (1) is the golden reference.
var goldenShardCounts = []int{1, 2, 4, 8}

// collectGoldenRuns replays every application of the study under every
// golden scheme on a fresh engine — once per shard count — checks the
// sharded runs against the serial one, and returns the serial KernelStats.
func collectGoldenRuns(t *testing.T, s *Suite) []goldenRun {
	t.Helper()
	var out []goldenRun
	for _, name := range s.AllNames() {
		traces, err := s.Traces(name)
		if err != nil {
			t.Fatalf("traces %s: %v", name, err)
		}
		level, err := goldenLevel(name, s)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range goldenSchemes {
			var tplan timing.ProtectionPlan
			lvl := 0
			if scheme != core.None {
				_, plan, err := s.PlanFor(name, scheme, level)
				if err != nil {
					t.Fatalf("plan %s %v: %v", name, scheme, err)
				}
				if plan != nil {
					tplan = plan
					lvl = level
				}
			}
			var ref []timing.KernelStats
			for _, shards := range goldenShardCounts {
				eng, err := timing.New(arch.Default(), tplan)
				if err != nil {
					t.Fatal(err)
				}
				eng.Shards = shards
				st, err := eng.RunApp(name, traces)
				if err != nil {
					t.Fatalf("run %s %v shards=%d: %v", name, scheme, shards, err)
				}
				if shards == goldenShardCounts[0] {
					ref = st.Kernels
					continue
				}
				if !reflect.DeepEqual(st.Kernels, ref) {
					t.Errorf("%s/%v: shards=%d stats diverge from serial replay", name, scheme, shards)
				}
			}
			out = append(out, goldenRun{
				App:     name,
				Scheme:  scheme.String(),
				Level:   lvl,
				Kernels: ref,
			})
		}
	}
	return out
}

// TestGoldenKernelStats is the timing engine's determinism contract: for
// all ten applications under baseline, duplication-lazy, and triplication
// plans, every KernelStats field (cycles, instructions, L1/L2/DRAM/NoC
// counters, copy transactions, stall counts) must match
// testdata/golden_stats.json bit for bit. The golden file was captured
// from the pre-optimization (container/heap + closure) engine, so any
// event-ordering change in the optimized engine fails here.
//
// Regenerate (only when an intentional semantic change is made):
//
//	go test ./internal/experiments -run TestGoldenKernelStats -update
func TestGoldenKernelStats(t *testing.T) {
	got := collectGoldenRuns(t, testSuite(t))
	path := filepath.Join("testdata", "golden_stats.json")

	if *updateGolden {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d golden runs to %s", len(got), path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden (regenerate with -update): %v", err)
	}
	var want []goldenRun
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("parse golden: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("golden runs = %d, want %d (regenerate with -update?)", len(got), len(want))
	}
	for i := range want {
		if got[i].App != want[i].App || got[i].Scheme != want[i].Scheme || got[i].Level != want[i].Level {
			t.Fatalf("run %d is %s/%s/L%d, want %s/%s/L%d",
				i, got[i].App, got[i].Scheme, got[i].Level, want[i].App, want[i].Scheme, want[i].Level)
		}
		if !reflect.DeepEqual(got[i].Kernels, want[i].Kernels) {
			for k := range want[i].Kernels {
				if k < len(got[i].Kernels) && !reflect.DeepEqual(got[i].Kernels[k], want[i].Kernels[k]) {
					t.Errorf("%s/%s kernel %d stats diverged:\n got %+v\nwant %+v",
						want[i].App, want[i].Scheme, k, got[i].Kernels[k], want[i].Kernels[k])
				}
			}
			t.Fatalf("%s/%s: KernelStats not bit-identical to golden", want[i].App, want[i].Scheme)
		}
	}
}
