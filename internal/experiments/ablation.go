package experiments

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/timing"
)

// EagerPlan wraps a detection plan but stalls for both copies before the
// load completes — the design point the paper's lazy comparison avoids.
// Timing-path only.
type EagerPlan struct {
	*core.Plan
}

// Lazy reports false: loads wait for every copy.
func (EagerPlan) Lazy() bool { return false }

// SameChannelPlan wraps a plan but places every replica block on the same
// memory channel as its primary, removing the channel-level parallelism the
// natural distinct-address placement provides. Timing-path only: the
// remapped addresses land beyond the allocated image, which the timing
// simulator (tags only) is indifferent to.
type SameChannelPlan struct {
	*core.Plan
	// Stride is the replica offset in blocks; it must be a multiple of the
	// channel count so the channel assignment is preserved.
	Stride arch.BlockAddr
}

// NewSameChannelPlan wraps the plan with a channel-preserving stride placed
// beyond the application's address space.
func NewSameChannelPlan(p *core.Plan, memBlocks int, channels int) (*SameChannelPlan, error) {
	if channels <= 0 {
		return nil, fmt.Errorf("experiments: channels must be positive, got %d", channels)
	}
	stride := (memBlocks/channels + 1) * channels
	return &SameChannelPlan{Plan: p, Stride: arch.BlockAddr(stride)}, nil
}

// ReplicaBlock maps copy c of a primary block to primary + c·Stride: the
// same channel, a distant row.
func (p *SameChannelPlan) ReplicaBlock(bufID int16, primary arch.BlockAddr, copy int) arch.BlockAddr {
	if p.Copies(0, bufID) <= 1 {
		return primary
	}
	return primary + p.Stride*arch.BlockAddr(copy)
}

// Interface checks.
var (
	_ timing.ProtectionPlan = EagerPlan{}
	_ timing.ProtectionPlan = (*SameChannelPlan)(nil)
)

// AblationResult compares a design choice on one application.
type AblationResult struct {
	App string
	// Label names the ablation ("lazy-vs-eager", …).
	Label string
	// BaselineCycles is the paper-design cycles; VariantCycles the ablated
	// design's.
	BaselineCycles int64
	VariantCycles  int64
}

// Ratio returns variant/baseline execution time.
func (a AblationResult) Ratio() float64 {
	if a.BaselineCycles == 0 {
		return 0
	}
	return float64(a.VariantCycles) / float64(a.BaselineCycles)
}

// runTiming replays the app's traces under the given plan and options.
func runTiming(s *Suite, name string, plan timing.ProtectionPlan,
	policy timing.SchedulerPolicy, compareBuf int) (int64, error) {
	app, err := s.App(name)
	if err != nil {
		return 0, err
	}
	traces, err := app.TraceRun(nil)
	if err != nil {
		return 0, err
	}
	eng, err := timing.New(arch.Default(), plan)
	if err != nil {
		return 0, err
	}
	eng.Shards = s.cfg.SimShards
	if policy != 0 {
		eng.Policy = policy
	}
	if compareBuf > 0 {
		eng.CompareBufferSize = compareBuf
	}
	st, err := eng.RunApp(name, traces)
	if err != nil {
		return 0, err
	}
	return st.TotalCycles(), nil
}

// AblationLazyCompare measures detection with lazy versus eager comparison.
// All objects are protected so the comparison happens on the miss-dominated
// path where laziness matters (hot objects alone are largely L1-resident).
func AblationLazyCompare(s *Suite, name string) (AblationResult, error) {
	app, err := s.App(name)
	if err != nil {
		return AblationResult{}, err
	}
	_, plan, err := s.PlanFor(name, core.Detection, len(app.Objects))
	if err != nil {
		return AblationResult{}, err
	}
	lazy, err := runTiming(s, name, plan, 0, 0)
	if err != nil {
		return AblationResult{}, err
	}
	eager, err := runTiming(s, name, EagerPlan{plan}, 0, 0)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{App: name, Label: "lazy-vs-eager", BaselineCycles: lazy, VariantCycles: eager}, nil
}

// AblationScheduler measures GTO versus LRR under hot-object correction.
func AblationScheduler(s *Suite, name string) (AblationResult, error) {
	app, err := s.App(name)
	if err != nil {
		return AblationResult{}, err
	}
	_, plan, err := s.PlanFor(name, core.Correction, app.HotCount)
	if err != nil {
		return AblationResult{}, err
	}
	var tplan timing.ProtectionPlan
	if plan != nil {
		tplan = plan
	}
	gto, err := runTiming(s, name, tplan, timing.GTO, 0)
	if err != nil {
		return AblationResult{}, err
	}
	lrr, err := runTiming(s, name, tplan, timing.LRR, 0)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{App: name, Label: "gto-vs-lrr", BaselineCycles: gto, VariantCycles: lrr}, nil
}

// AblationPlacement measures distinct-channel versus same-channel replica
// placement under hot-object correction.
func AblationPlacement(s *Suite, name string) (AblationResult, error) {
	app, err := s.App(name)
	if err != nil {
		return AblationResult{}, err
	}
	planApp, plan, err := s.PlanFor(name, core.Correction, app.HotCount)
	if err != nil {
		return AblationResult{}, err
	}
	if plan == nil {
		return AblationResult{}, fmt.Errorf("experiments: %s has nothing to protect", name)
	}
	natural, err := runTiming(s, name, plan, 0, 0)
	if err != nil {
		return AblationResult{}, err
	}
	same, err := NewSameChannelPlan(plan, planApp.Mem.TotalBlocks(), arch.Default().NumMemChannels)
	if err != nil {
		return AblationResult{}, err
	}
	sameCycles, err := runTiming(s, name, same, 0, 0)
	if err != nil {
		return AblationResult{}, err
	}
	return AblationResult{App: name, Label: "placement", BaselineCycles: natural, VariantCycles: sameCycles}, nil
}

// AblationCompareBuffer sweeps the pending-compare buffer size under
// hot-object detection.
func AblationCompareBuffer(s *Suite, name string, sizes []int) (map[int]int64, error) {
	app, err := s.App(name)
	if err != nil {
		return nil, err
	}
	_, plan, err := s.PlanFor(name, core.Detection, app.HotCount)
	if err != nil {
		return nil, err
	}
	out := make(map[int]int64, len(sizes))
	for _, size := range sizes {
		cycles, err := runTiming(s, name, plan, 0, size)
		if err != nil {
			return nil, err
		}
		out[size] = cycles
	}
	return out, nil
}
