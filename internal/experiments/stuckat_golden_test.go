package experiments

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
)

var updateStuckAtGolden = flag.Bool("update-stuckat-golden", false,
	"regenerate testdata/stuckat_golden.json from the current stuck-at injector")

// stuckAtGoldenRow is one campaign configuration's outcome counts in the
// golden file.
type stuckAtGoldenRow struct {
	App    string       `json:"app"`
	Scheme string       `json:"scheme"`
	Level  int          `json:"level"`
	Result fault.Result `json:"result"`
}

// TestStuckAtGoldenOutcomes pins the stuck-at injector's exact campaign
// outcomes across every application and scheme against a committed golden
// file generated before the fault-model refactor. Any change to the
// injector's RNG consumption order, the inert-fault prune, or the
// classifier changes some count here, so a pass certifies the refactored
// model is byte-identical to the pre-refactor injector (CI runs this gate
// under -race alongside TestCampaignForkParity).
func TestStuckAtGoldenOutcomes(t *testing.T) {
	s := testSuite(t)
	const (
		runs = 16
		seed = int64(4242)
	)
	model := fault.StuckAt{BitsPerWord: 3, Blocks: 1}

	schemes := []core.Scheme{core.None, core.Detection, core.Correction}
	var got []stuckAtGoldenRow
	for _, name := range s.AllNames() {
		base, err := s.App(name)
		if err != nil {
			t.Fatal(err)
		}
		for _, scheme := range schemes {
			level := 0
			if scheme != core.None {
				level = base.HotCount
			}
			cp, err := s.Checkpoint(name, scheme, level)
			if err != nil {
				t.Fatal(err)
			}
			blocks := make([]arch.BlockAddr, cp.App.Mem.TotalBlocks())
			for i := range blocks {
				blocks[i] = arch.BlockAddr(i)
			}
			sel, err := fault.NewSetSelector(blocks)
			if err != nil {
				t.Fatal(err)
			}
			res, err := cp.Campaign(fault.Campaign{Runs: runs, Seed: seed}, model, sel)
			if err != nil {
				t.Fatal(err)
			}
			got = append(got, stuckAtGoldenRow{
				App: name, Scheme: scheme.String(), Level: level, Result: res,
			})
		}
	}

	path := filepath.Join("testdata", "stuckat_golden.json")
	if *updateStuckAtGolden {
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %d rows to %s", len(got), path)
		return
	}

	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden file (regenerate with -update-stuckat-golden): %v", err)
	}
	var want []stuckAtGoldenRow
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("got %d rows, golden has %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("row %d (%s %s L%d): got %+v, golden %+v",
				i, want[i].App, want[i].Scheme, want[i].Level, got[i].Result, want[i].Result)
		}
	}
}
