// Batched campaign execution: classify K fault runs per functional replay.
//
// Runs of one campaign share a Checkpoint — same app, scheme, level, and
// fault model — and differ only in which words are corrupted. The batched
// path exploits that: a claim of K pending runs is injected up front, runs
// that never need execution (injection-time pre-classification, provably
// inert faults) are peeled off exactly as RunOne would, and the survivors
// become lanes of a group replay against one recorded reference execution
// (Checkpoint.ensureCapture):
//
//   - A lane only *executes* the warps whose recorded load-block footprint
//     intersects its divergent blocks; every other warp is reproduced by
//     applying the recorded golden stores to the lane's fork (see
//     internal/simt/replay.go for the soundness argument).
//   - Executed warps still serve loads from the recording while their
//     blocks are clean, falling back to real per-lane reads only where the
//     lane's corruption can show through.
//   - All surviving lanes are then classified in bit-parallel sweeps of up
//     to 64 lanes sharing one golden-image divergence scan
//     (fault.Classifier.ClassifyBatch over mem.BatchDiverges).
//
// When no capture is available — the recording exceeded the memory cap or
// the reference run failed to record — the batch degrades to block-granular
// amortization: each lane executes in full (the exact RunOne semantics),
// but fork setup, checkpoint fetch, and the classification sweep remain
// shared across the group.
package experiments

import (
	"fmt"
	"math/rand"
	"sort"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// maxCaptureBytes bounds the per-checkpoint reference recording. Beyond it
// the batched path falls back to block-granular batching rather than hold
// an oversized capture alive for the checkpoint's lifetime.
const maxCaptureBytes = 64 << 20

// captureData is a checkpoint's memoized reference recording, with replica
// blocks expanded into every load's footprint and the per-warp load-block
// unions precomputed.
type captureData struct {
	log  *simt.CaptureLog
	bufs []*mem.Buffer
}

// ensureCapture materializes the capture artifact once per checkpoint —
// recording the reference execution, or fetching the recorded warps from
// the store — and returns nil when the batched replay cannot be used
// (recording failed or exceeded maxCaptureBytes; the artifact caches that
// verdict too) — callers then fall back to full per-lane execution.
func (cp *Checkpoint) ensureCapture() *captureData {
	cp.captureOnce.Do(func() {
		art, err := artifactDo(cp, ArtifactCapture, func() (captureArtifact, error) {
			return computeCaptureArtifact(cp), nil
		})
		if err != nil {
			return // capture is an optimization; fall back rather than fail
		}
		cp.capture = cp.reconstructCapture(art)
		if cp.capture != nil {
			cp.addLazyBytes(cp.capture.log.ApproxBytes())
		}
	})
	return cp.capture
}

// computeCaptureArtifact records the reference execution and pre-expands
// replica footprints into its load records. A failed or oversized recording
// yields Ok=false — a persisted "don't bother" verdict.
func computeCaptureArtifact(cp *Checkpoint) captureArtifact {
	f := cp.App.Mem.Fork()
	var reader simt.WordReader
	if cp.Plan != nil {
		reader = cp.Plan.ForMemory(f)
	}
	log, err := cp.App.CaptureRun(f, reader)
	if err != nil {
		return captureArtifact{}
	}
	// Replica expansion: a load of a protected object invisibly reads
	// the scheme's copies too. Folding the replica blocks into each
	// record's footprint makes "all recorded blocks clean" prove the
	// full read — copies included — resolves to golden data, so a fault
	// in a replica block routes the warp to real execution where the
	// detection/correction semantics fire exactly. Expansion happens here,
	// before persisting, so decoded artifacts carry it already.
	nblocks := cp.App.Mem.TotalBlocks()
	seen := simt.NewBlockSet(nblocks)
	for _, kc := range log.Kernels {
		for _, wc := range kc.Warps {
			seen.Reset()
			union := wc.LoadBlocks[:0]
			for i := range wc.Loads {
				rec := &wc.Loads[i]
				if cp.Plan != nil {
					if copies := cp.Plan.Copies(0, rec.BufID); copies > 1 {
						primary := rec.Blocks
						for c := 1; c < copies; c++ {
							for _, b := range primary[:len(primary):len(primary)] {
								rec.Blocks = append(rec.Blocks, cp.Plan.ReplicaBlock(rec.BufID, b, c))
							}
						}
					}
				}
				for _, b := range rec.Blocks {
					if !seen.Has(b) {
						seen.Add(b)
						union = append(union, b)
					}
				}
			}
			wc.LoadBlocks = union
		}
	}
	if log.ApproxBytes() > maxCaptureBytes {
		return captureArtifact{}
	}
	kernels := make([]captureKernelArtifact, len(log.Kernels))
	for i, kc := range log.Kernels {
		kernels[i] = captureKernelArtifact{Warps: kc.Warps}
	}
	return captureArtifact{Ok: true, Kernels: kernels}
}

// batchLane is one surviving run of a batched claim: its fork, its
// divergent-block set, and its per-lane execution state.
type batchLane struct {
	idx   int // claim-relative run index
	fork  *mem.Memory
	drv   *simt.Driver
	dirty *simt.BlockSet
	// first is the lane's smallest initially-divergent block — the
	// planner's intra-bucket sort key, grouping lanes whose faults land in
	// the same block neighbourhood.
	first arch.BlockAddr
	err   error
	// taint marks a lane whose executed instruction sequence desynced from
	// the recording: its writes can no longer be bounded, so every
	// remaining warp executes in full.
	taint bool
	// rp is the lane's reusable replay state, rebound per executed warp.
	rp simt.LaneReplay
}

// RunBatch executes the batched claim [start, start+len(rngs)): inject all
// runs, peel off pre-classified and inert ones, group-replay the survivors
// against the reference recording, and classify them in bit-parallel
// sweeps. Outcome i is byte-identical to what RunOne(rngs[i], ...) would
// return: each rng is consumed only by its own run's injection, and the
// replay reproduces the serial execution exactly (gated by the parity
// tests). Safe for concurrent invocation.
func (cp *Checkpoint) RunBatch(start int, rngs []*rand.Rand, model fault.Model, sel fault.Selector) ([]fault.Outcome, error) {
	if err := cp.ensureGolden(); err != nil {
		return nil, err
	}
	var env fault.Env
	if fault.NeedsTimeline(model) {
		tl, err := cp.Timeline()
		if err != nil {
			return nil, err
		}
		env.Timeline = tl
	}
	env.Scratch = cp.getScratch()
	defer cp.scratch.Put(env.Scratch)

	outs := make([]fault.Outcome, len(rngs))
	lanes := make([]*batchLane, 0, len(rngs))
	defer func() {
		for _, ln := range lanes {
			cp.forks.Put(ln.fork)
		}
	}()

	nblocks := cp.App.Mem.TotalBlocks()
	var scratch []arch.BlockAddr
	for i, rng := range rngs {
		f := cp.getFork()
		inj, err := fault.Inject(f, rng, model, sel, &env)
		if err != nil {
			cp.forks.Put(f)
			return nil, err
		}
		if inj.Pre != 0 {
			if cp.tele.pre != nil {
				cp.tele.pre.Inc()
			}
			outs[i] = inj.Pre
			cp.forks.Put(f)
			continue
		}
		// The inert prune only applies to overlay faults; a transient flip
		// is a genuine store (DirtyBlocks > 0) that must execute even
		// though the overlay is empty (FaultsInert is vacuously true then).
		if f.DirtyBlocks() == 0 && f.FaultsInert() {
			if cp.tele.pruned != nil {
				cp.tele.pruned.Inc()
			}
			outs[i] = fault.Masked
			cp.forks.Put(f)
			continue
		}
		ln := &batchLane{idx: i, fork: f, dirty: simt.NewBlockSet(nblocks)}
		scratch = f.DirtyBlockList(scratch[:0])
		scratch = f.FaultBlockList(scratch)
		ln.first = arch.BlockAddr(^uint64(0))
		for _, b := range scratch {
			ln.dirty.Add(b)
			if b < ln.first {
				ln.first = b
			}
		}
		ln.drv = &simt.Driver{Mem: f, PermissiveOOB: true}
		if cp.Plan != nil {
			ln.drv.Reader = cp.Plan.ForMemory(f)
		}
		lanes = append(lanes, ln)
	}
	_ = start

	if cp.tele.batches != nil {
		cp.tele.batches.Inc()
		cp.tele.occupancy.Observe(float64(len(lanes)))
	}
	if len(lanes) == 0 {
		return outs, nil
	}

	// Intra-bucket planning: order lanes by their first divergent block so
	// lanes corrupting the same block neighbourhood replay adjacently
	// (claim order breaks ties to keep the plan deterministic). Outcomes
	// are scattered back through idx, so the sort never affects results.
	sort.Slice(lanes, func(a, b int) bool {
		if lanes[a].first != lanes[b].first {
			return lanes[a].first < lanes[b].first
		}
		return lanes[a].idx < lanes[b].idx
	})

	copiedBefore := make([]uint64, len(lanes))
	for li, ln := range lanes {
		copiedBefore[li] = ln.fork.CopiedBlocks()
	}
	if capd := cp.ensureCapture(); capd != nil {
		cp.replayGroup(capd, lanes)
	} else {
		// Fallback: block-granular batching only — every lane executes in
		// full, sharing fork setup and the classification sweep below.
		if cp.tele.fallbackRuns != nil {
			cp.tele.fallbackRuns.Add(uint64(len(lanes)))
		}
		for _, ln := range lanes {
			if cp.Plan != nil {
				ln.err = cp.App.RunOn(ln.fork, cp.Plan.ForMemory(ln.fork))
			} else {
				ln.err = cp.App.RunOn(ln.fork, nil)
			}
		}
	}
	if cp.tele.runs != nil {
		cp.tele.runs.Add(uint64(len(lanes)))
		cp.tele.batchRuns.Add(uint64(len(lanes)))
		var copies uint64
		for li, ln := range lanes {
			copies += ln.fork.CopiedBlocks() - copiedBefore[li]
		}
		cp.tele.copies.Add(copies)
	}

	// Bit-parallel classification: ≤64 lanes per divergence sweep.
	for g := 0; g < len(lanes); g += mem.BatchLanes {
		grp := lanes[g:]
		if len(grp) > mem.BatchLanes {
			grp = grp[:mem.BatchLanes]
		}
		errs := make([]error, len(grp))
		forks := make([]*mem.Memory, len(grp))
		for j, ln := range grp {
			errs[j] = ln.err
			forks[j] = ln.fork
		}
		verdicts, err := cp.classifier.ClassifyBatch(errs, forks, cp.App.Output)
		if err != nil {
			return nil, err
		}
		for j, ln := range grp {
			outs[ln.idx] = verdicts[j]
		}
	}
	return outs, nil
}

// replayGroup runs every lane of the group through the recorded execution:
// per recorded warp (in launch order, the serial execution order), each
// live lane either executes the warp for real — because its divergent
// blocks intersect the warp's load footprint, or because it is tainted —
// or reproduces it by applying the recorded stores.
func (cp *Checkpoint) replayGroup(capd *captureData, lanes []*batchLane) {
	var replayed, applied uint64
	for _, kc := range capd.log.Kernels {
		for _, wc := range kc.Warps {
			for _, ln := range lanes {
				if ln.err != nil {
					// The serial run aborted here; skip the lane's
					// remaining warps exactly as Driver.Run would.
					continue
				}
				if !ln.taint && !ln.dirty.AnyOf(wc.LoadBlocks) {
					applyWarpStores(ln.fork, capd.bufs, wc)
					applied++
					continue
				}
				var rp *simt.LaneReplay
				if !ln.taint {
					rp = &ln.rp
					rp.Reset(wc)
					rp.Dirty = ln.dirty
				}
				if err := ln.drv.RunWarp(kc.Kernel, wc, rp); err != nil {
					ln.err = fmt.Errorf("kernels: %s: %w", cp.App.Name, err)
					continue
				}
				replayed++
				if rp == nil {
					continue
				}
				if rp.Desync {
					ln.taint = true
					continue
				}
				// The warp stayed in sync, so its write set is exactly the
				// recorded stores it committed; their blocks may now hold
				// divergent values.
				for si := 0; si < rp.ConsumedStores(); si++ {
					ln.dirty.AddAll(wc.Stores[si].Blocks)
				}
			}
		}
	}
	if cp.tele.replayedWarps != nil {
		cp.tele.replayedWarps.Add(replayed)
		cp.tele.appliedWarps.Add(applied)
	}
}

// applyWarpStores reproduces an untouched warp on a lane's fork by
// committing its recorded stores in program order — word-exact, because an
// untouched warp's loads all resolve to golden data, so its real execution
// would compute exactly the recorded values and addresses.
func applyWarpStores(f *mem.Memory, bufs []*mem.Buffer, wc *simt.WarpCapture) {
	for i := range wc.Stores {
		rec := &wc.Stores[i]
		buf := bufs[rec.BufID]
		for lane, idx := range rec.Idx {
			if idx == simt.InactiveLane {
				continue
			}
			f.WriteWord(buf.ElemAddr(int(idx)), rec.Vals[lane])
		}
	}
}
