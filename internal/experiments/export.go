package experiments

import (
	"encoding/csv"
	"fmt"
	"os"
	"path/filepath"
	"strconv"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
)

// writeCSV writes one CSV file under dir.
func writeCSV(dir, name string, header []string, rows [][]string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("experiments: export: %w", err)
	}
	f, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return fmt.Errorf("experiments: export: %w", err)
	}
	defer f.Close()
	w := csv.NewWriter(f)
	if err := w.Write(header); err != nil {
		return err
	}
	if err := w.WriteAll(rows); err != nil {
		return err
	}
	w.Flush()
	return w.Error()
}

func fmtF(v float64) string { return strconv.FormatFloat(v, 'g', 8, 64) }
func fmtI(v int) string     { return strconv.Itoa(v) }

// outcomeHeader returns the campaign-outcome column names in the canonical
// fault.Outcomes() order. Every campaign CSV exporter shares it (and
// outcomeColumns), so column order is deterministic by construction —
// never derived from map iteration — and pinned by the export golden test.
func outcomeHeader() []string {
	outs := fault.Outcomes()
	names := make([]string, len(outs))
	for i, o := range outs {
		names[i] = o.String()
	}
	return names
}

// outcomeColumns renders one campaign result's outcome counts in the same
// canonical order as outcomeHeader.
func outcomeColumns(r fault.Result) []string {
	outs := fault.Outcomes()
	cols := make([]string, len(outs))
	for i, o := range outs {
		cols[i] = fmtI(r.Count(o))
	}
	return cols
}

// ExportFig2CSV writes the Fig. 2 dataset as CSV for plotting.
func ExportFig2CSV(dir string) error {
	var rows [][]string
	for _, r := range Fig2L2Trend() {
		rows = append(rows, []string{r.Vendor, r.GPU, fmtI(r.Year), fmtI(r.L2KB)})
	}
	return writeCSV(dir, "fig2_l2_trend.csv", []string{"vendor", "gpu", "year", "l2_kb"}, rows)
}

// ExportFig3CSV writes each application's normalized read series.
func ExportFig3CSV(dir string, results []Fig3Result) error {
	var rows [][]string
	for _, r := range results {
		for i, v := range r.Series {
			rows = append(rows, []string{r.App, fmtI(i), fmtF(v)})
		}
	}
	return writeCSV(dir, "fig3_access_profiles.csv",
		[]string{"app", "block_rank", "normalized_reads"}, rows)
}

// ExportFig4CSV writes the warp-sharing series.
func ExportFig4CSV(dir string, results []Fig4Result) error {
	var rows [][]string
	for _, r := range results {
		for i, v := range r.Series {
			rows = append(rows, []string{r.App, fmtI(i), fmtF(v)})
		}
	}
	return writeCSV(dir, "fig4_warp_sharing.csv",
		[]string{"app", "block_rank", "warp_share_percent"}, rows)
}

// ExportTable3CSV writes the data-object inventory.
func ExportTable3CSV(dir string, rows3 []Table3Row) error {
	var rows [][]string
	for _, r := range rows3 {
		for rank, o := range r.Objects {
			rows = append(rows, []string{
				r.App, fmtI(rank), o.Name, strconv.FormatBool(o.Hot),
				strconv.FormatUint(o.Reads, 10),
				fmtF(r.HotSizePercent), fmtF(r.HotAccessPercent),
			})
		}
	}
	return writeCSV(dir, "table3_data_objects.csv",
		[]string{"app", "rank", "object", "hot", "reads", "hot_size_percent", "hot_access_percent"}, rows)
}

// ExportFig6CSV writes the hot-vs-rest campaign results. Outcome columns
// follow the canonical fault.Outcomes() order.
func ExportFig6CSV(dir string, cells []Fig6Cell) error {
	var rows [][]string
	for _, c := range cells {
		row := []string{c.App, c.Space, c.Model.Name, c.Model.Params, fmtI(c.Result.Runs)}
		rows = append(rows, append(row, outcomeColumns(c.Result)...))
	}
	header := append([]string{"app", "space", "model", "params", "runs"}, outcomeHeader()...)
	return writeCSV(dir, "fig6_hot_vs_rest.csv", header, rows)
}

// ExportFig7CSV writes the performance sweep.
func ExportFig7CSV(dir string, points []Fig7Point) error {
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			p.App, p.Scheme.String(), fmtI(p.Level),
			strconv.FormatInt(p.Cycles, 10),
			strconv.FormatUint(p.L1Misses, 10),
			fmtF(p.NormTime), fmtF(p.NormMisses),
		})
	}
	return writeCSV(dir, "fig7_overhead.csv",
		[]string{"app", "scheme", "objects", "cycles", "l1_misses", "norm_time", "norm_misses"}, rows)
}

// ExportFig9CSV writes the resilience campaign results. Outcome columns
// follow the canonical fault.Outcomes() order.
func ExportFig9CSV(dir string, cells []Fig9Cell) error {
	var rows [][]string
	for _, c := range cells {
		scheme := c.Scheme.String()
		if c.Scheme == core.None {
			scheme = "baseline"
		}
		row := []string{c.App, scheme, fmtI(c.Level), c.Model.Name, c.Model.Params, fmtI(c.Result.Runs)}
		rows = append(rows, append(row, outcomeColumns(c.Result)...))
	}
	header := append([]string{"app", "scheme", "objects", "model", "params", "runs"}, outcomeHeader()...)
	return writeCSV(dir, "fig9_resilience.csv", header, rows)
}

// ExportBreakdownCSV writes the fault-model × scheme outcome breakdown.
// Outcome columns follow the canonical fault.Outcomes() order.
func ExportBreakdownCSV(dir string, cells []BreakdownCell) error {
	var rows [][]string
	for _, c := range cells {
		scheme := c.Scheme.String()
		if c.Scheme == core.None {
			scheme = "baseline"
		}
		row := []string{c.App, scheme, fmtI(c.Level), c.Model.Name, c.Model.Params, fmtI(c.Result.Runs)}
		rows = append(rows, append(row, outcomeColumns(c.Result)...))
	}
	header := append([]string{"app", "scheme", "objects", "model", "params", "runs"}, outcomeHeader()...)
	return writeCSV(dir, "fault_model_breakdown.csv", header, rows)
}
