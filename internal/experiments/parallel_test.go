package experiments

import (
	"reflect"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// twoSuites builds one serial and one 8-worker suite with otherwise
// identical configuration.
func twoSuites(t *testing.T) (serial, parallel *Suite) {
	t.Helper()
	var err error
	serial, err = NewSuite(SuiteConfig{NNTrainSamples: 60, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err = NewSuite(SuiteConfig{NNTrainSamples: 60, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	return serial, parallel
}

// TestParallelMatchesSerial asserts the tentpole invariant: every
// experiment returns deeply equal results at Workers=1 and Workers=8 —
// per-task seed derivation and index-ordered assembly make worker
// scheduling invisible in the output.
func TestParallelMatchesSerial(t *testing.T) {
	serial, parallel := twoSuites(t)

	f3s, err := Fig3AccessProfiles(serial, 20)
	if err != nil {
		t.Fatal(err)
	}
	f3p, err := Fig3AccessProfiles(parallel, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f3s, f3p) {
		t.Error("Fig3: parallel results differ from serial")
	}

	f4s, err := Fig4WarpSharing(serial, 20)
	if err != nil {
		t.Fatal(err)
	}
	f4p, err := Fig4WarpSharing(parallel, 20)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f4s, f4p) {
		t.Error("Fig4: parallel results differ from serial")
	}

	t3s, err := Table3DataObjects(serial)
	if err != nil {
		t.Fatal(err)
	}
	t3p, err := Table3DataObjects(parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(t3s, t3p) {
		t.Error("Table3: parallel results differ from serial")
	}

	f6cfg := Fig6Config{
		Runs:   24,
		Apps:   []string{"P-BICG", "A-Laplacian"},
		Models: []fault.Model{fault.StuckAt{BitsPerWord: 2, Blocks: 1}, fault.StuckAt{BitsPerWord: 4, Blocks: 5}},
	}
	f6s, err := Fig6HotVsRest(serial, f6cfg)
	if err != nil {
		t.Fatal(err)
	}
	f6p, err := Fig6HotVsRest(parallel, f6cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f6s, f6p) {
		t.Error("Fig6: parallel results differ from serial")
	}

	f7cfg := Fig7Config{Apps: []string{"P-BICG", "P-MVT"}}
	f7s, err := Fig7Overhead(serial, f7cfg)
	if err != nil {
		t.Fatal(err)
	}
	f7p, err := Fig7Overhead(parallel, f7cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f7s, f7p) {
		t.Error("Fig7: parallel results differ from serial")
	}

	f9cfg := Fig9Config{
		Runs:   24,
		Apps:   []string{"P-BICG"},
		Models: []fault.Model{fault.StuckAt{BitsPerWord: 3, Blocks: 5}},
	}
	f9s, err := Fig9Resilience(serial, f9cfg)
	if err != nil {
		t.Fatal(err)
	}
	f9p, err := Fig9Resilience(parallel, f9cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f9s, f9p) {
		t.Error("Fig9: parallel results differ from serial")
	}
}

// TestTelemetryDoesNotPerturbResults asserts the observation invariant at
// the suite level: a telemetry-observed parallel suite produces results
// deeply equal to an unobserved serial one, while the registry fills with
// fan-out and campaign counters.
func TestTelemetryDoesNotPerturbResults(t *testing.T) {
	serial, err := NewSuite(SuiteConfig{NNTrainSamples: 60, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	observed, err := NewSuite(SuiteConfig{NNTrainSamples: 60, Workers: 8, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}

	f6cfg := Fig6Config{
		Runs:   24,
		Apps:   []string{"P-BICG"},
		Models: []fault.Model{fault.StuckAt{BitsPerWord: 2, Blocks: 1}},
	}
	f6s, err := Fig6HotVsRest(serial, f6cfg)
	if err != nil {
		t.Fatal(err)
	}
	f6o, err := Fig6HotVsRest(observed, f6cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f6s, f6o) {
		t.Error("Fig6: telemetry-observed results differ from unobserved serial run")
	}

	f7cfg := Fig7Config{Apps: []string{"P-MVT"}}
	f7s, err := Fig7Overhead(serial, f7cfg)
	if err != nil {
		t.Fatal(err)
	}
	f7o, err := Fig7Overhead(observed, f7cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f7s, f7o) {
		t.Error("Fig7: telemetry-observed results differ from unobserved serial run")
	}

	snap := reg.Snapshot()
	if s, ok := snap.Get("dcrm_fault_runs_total", telemetry.Label{Name: "outcome", Value: "masked"}); !ok || s.Value == 0 {
		t.Errorf("campaign outcome counters not published: %+v", s)
	}
	var tasks float64
	for _, s := range snap {
		if s.Name == "dcrm_experiment_tasks_total" {
			tasks += s.Value
		}
	}
	if tasks == 0 {
		t.Error("fan-out task counters not published")
	}
	if s, ok := snap.Get("dcrm_timing_kernels_total"); !ok || s.Value == 0 {
		t.Errorf("timing engine counters not published: %+v", s)
	}
}

// TestProgressEvents asserts the progress stream is serialized, counts
// monotonically per phase, and reaches Done == Total for every phase.
func TestProgressEvents(t *testing.T) {
	var events []ProgressEvent
	s, err := NewSuite(SuiteConfig{
		NNTrainSamples: 60,
		Workers:        4,
		Progress:       func(ev ProgressEvent) { events = append(events, ev) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Table3DataObjects(s); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events delivered")
	}
	last := make(map[string]ProgressEvent)
	for _, ev := range events {
		if prev, ok := last[ev.Phase]; ok {
			if ev.Done != prev.Done+1 || ev.Total != prev.Total {
				t.Fatalf("non-monotonic progress: %+v after %+v", ev, prev)
			}
		} else if ev.Done != 1 {
			t.Fatalf("phase %q started at Done=%d", ev.Phase, ev.Done)
		}
		last[ev.Phase] = ev
	}
	for phase, ev := range last {
		if ev.Done != ev.Total {
			t.Errorf("phase %q finished at %d/%d", phase, ev.Done, ev.Total)
		}
	}
}

// TestRunTasksError asserts a failing task aborts the fan-out and
// surfaces its error to the caller.
func TestRunTasksError(t *testing.T) {
	s, err := NewSuite(SuiteConfig{NNTrainSamples: 60, Workers: 8})
	if err != nil {
		t.Fatal(err)
	}
	probe := &probeError{"probe"}
	if err := s.runTasks("test: error probe", 16, func(i int) error {
		if i == 3 {
			return probe
		}
		return nil
	}); err != probe {
		t.Fatalf("runTasks error = %v, want the probe error", err)
	}
}

type probeError struct{ msg string }

func (e *probeError) Error() string { return e.msg }
