package experiments

import (
	"errors"
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/kernels"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

// Fig2Row is one GPU generation's L2 capacity — the public data behind the
// paper's motivation figure.
type Fig2Row struct {
	Vendor string
	GPU    string
	Year   int
	L2KB   int
}

// Fig2L2Trend returns the L2-size history of Fig. 2 (public spec sheets).
func Fig2L2Trend() []Fig2Row {
	return []Fig2Row{
		{"NVIDIA", "GTX 480 (Fermi)", 2010, 768},
		{"NVIDIA", "K40 (Kepler)", 2013, 1536},
		{"NVIDIA", "GTX 980 (Maxwell)", 2014, 2048},
		{"NVIDIA", "P100 (Pascal)", 2016, 4096},
		{"NVIDIA", "V100 (Volta)", 2017, 6144},
		{"NVIDIA", "RTX 2080 Ti (Turing)", 2018, 5632},
		{"NVIDIA", "A100 (Ampere)", 2020, 40960},
		{"AMD", "HD 7970 (Tahiti)", 2012, 768},
		{"AMD", "R9 290X (Hawaii)", 2013, 1024},
		{"AMD", "R9 Fury X (Fiji)", 2015, 2048},
		{"AMD", "RX Vega 64", 2017, 4096},
		{"AMD", "MI50 (Vega 20)", 2018, 4096},
		{"AMD", "MI100 (CDNA)", 2020, 8192},
	}
}

// Fig3Result is one application's access-profile series.
type Fig3Result struct {
	App string
	// Series is the normalized per-block read count, sorted ascending.
	Series []float64
	// MaxMinRatio is the hottest/coldest block access ratio.
	MaxMinRatio float64
	// HotPattern reports whether the profile shows the Fig. 3(a)–(f) knee.
	HotPattern bool
}

// fig3AccessProfiles is Fig3AccessProfiles' compute path (store miss).
func fig3AccessProfiles(s *Suite, points int) ([]Fig3Result, error) {
	if points <= 0 {
		points = 100
	}
	names := s.AllNames()
	out := make([]Fig3Result, len(names))
	err := s.runTasks("fig3: profiles", len(names), func(i int) error {
		p, err := s.Profile(names[i])
		if err != nil {
			return err
		}
		out[i] = Fig3Result{
			App:         names[i],
			Series:      p.NormalizedReadSeries(points),
			MaxMinRatio: p.MaxMinRatio(),
			HotPattern:  p.HasHotPattern(),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Fig4Apps are the applications the paper plots in Fig. 4.
var Fig4Apps = []string{"P-BICG", "A-Laplacian", "C-NN", "A-SRAD"}

// Fig4Result is one application's warp-sharing series.
type Fig4Result struct {
	App string
	// Series is the percentage of active warps sharing each block, ordered
	// by read count ascending.
	Series []float64
}

// fig4WarpSharing is Fig4WarpSharing's compute path (store miss).
func fig4WarpSharing(s *Suite, points int) ([]Fig4Result, error) {
	if points <= 0 {
		points = 100
	}
	out := make([]Fig4Result, len(Fig4Apps))
	err := s.runTasks("fig4: warp sharing", len(Fig4Apps), func(i int) error {
		p, err := s.Profile(Fig4Apps[i])
		if err != nil {
			return err
		}
		out[i] = Fig4Result{App: Fig4Apps[i], Series: p.WarpSharePercentSeries(points)}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// Table3Object is one data-object row fragment.
type Table3Object struct {
	Name  string
	Hot   bool
	Reads uint64
}

// Table3Row reproduces one Table III row.
type Table3Row struct {
	App string
	// Objects in measured priority order (highest peak block count first).
	Objects []Table3Object
	// HotSizePercent is the hot objects' share of total app memory.
	HotSizePercent float64
	// HotAccessPercent is the hot objects' share of all read accesses.
	HotAccessPercent float64
}

// table3DataObjects is Table3DataObjects' compute path (store miss).
func table3DataObjects(s *Suite) ([]Table3Row, error) {
	names := s.EvaluatedNames()
	out := make([]Table3Row, len(names))
	err := s.runTasks("table3: data objects", len(names), func(i int) error {
		name := names[i]
		app, err := s.App(name)
		if err != nil {
			return err
		}
		p, err := s.Profile(name)
		if err != nil {
			return err
		}
		hot := make(map[string]bool, app.HotCount)
		for _, o := range app.HotObjects() {
			hot[o.Name] = true
		}
		row := Table3Row{
			App:              name,
			HotSizePercent:   p.HotSizePercent(app.HotObjects()),
			HotAccessPercent: p.HotAccessPercent(app.HotObjects()),
		}
		for _, o := range p.Objects {
			row.Objects = append(row.Objects, Table3Object{Name: o.Name, Hot: hot[o.Name], Reads: o.Reads})
		}
		out[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// DefaultFaultModels are the paper's six injection configurations:
// {1, 5} faulty blocks × {2, 3, 4} stuck-at bits per word.
func DefaultFaultModels() []fault.Model {
	var out []fault.Model
	for _, blocks := range []int{1, 5} {
		for _, bits := range []int{2, 3, 4} {
			out = append(out, fault.StuckAt{BitsPerWord: bits, Blocks: blocks})
		}
	}
	return out
}

// ClassifyRun executes one fault-injected run and classifies its outcome:
// detection terminations are Detected, fault-induced failures Crashed, and
// outputs past the quality threshold SDC.
func ClassifyRun(app *kernels.App, clone *mem.Memory, plan *core.Plan, golden []float32) (fault.Outcome, error) {
	var reader *core.Plan
	if plan != nil {
		reader = plan.ForMemory(clone)
	}
	var err error
	if reader != nil {
		err = app.RunOn(clone, reader)
	} else {
		err = app.RunOn(clone, nil)
	}
	if err != nil {
		if errors.Is(err, core.ErrFaultDetected) {
			return fault.Detected, nil
		}
		// A fault that corrupts an index (e.g. A-SRAD's neighbour arrays)
		// can push an access out of bounds; that run crashed rather than
		// silently corrupting output.
		return fault.Crashed, nil
	}
	sdc, err := app.Metric.IsSDC(app.Output(clone), golden)
	if err != nil {
		return 0, err
	}
	if sdc {
		return fault.SDC, nil
	}
	return fault.Masked, nil
}

// Fig6Config sizes the hot-vs-rest vulnerability campaigns.
type Fig6Config struct {
	// Runs is the fault-injection count per configuration. Default 1000,
	// the paper's count (95% CI ±3%).
	Runs int
	// Seed makes campaigns reproducible. Default 7. Every run's random
	// stream is derived from (Seed, run index), so results are independent
	// of worker scheduling.
	Seed int64
	// Models overrides the fault models. Default: DefaultFaultModels(),
	// the paper's six {1,5} blocks × {2,3,4} bits configurations.
	Models []fault.Model
	// Apps restricts the application set. Default: the evaluated eight of
	// Table II.
	Apps []string
	// Batch overrides the campaign batch size (0 = the suite default;
	// 1 disables batching). Results are byte-identical at any batch size.
	Batch int
}

func (c Fig6Config) withDefaults() Fig6Config {
	if c.Runs == 0 {
		c.Runs = 1000
	}
	if c.Seed == 0 {
		c.Seed = 7
	}
	if len(c.Models) == 0 {
		c.Models = DefaultFaultModels()
	}
	return c
}

// Fig6Cell is one bar of Fig. 6.
type Fig6Cell struct {
	App string
	// Space is "hot" or "rest".
	Space string
	// Model identifies the fault configuration (serializable: cells
	// persist through the gob-encoded result store).
	Model fault.ModelInfo
	// Result holds the campaign outcome counts.
	Result fault.Result
}

// fig6HotVsRest is Fig6HotVsRest's compute path (store miss): applications
// fan out over the suite's worker pool; each application's campaigns run
// its space × model grid in the serial order, so the returned cells match
// a serial run exactly. The wrapper has already resolved defaults.
func fig6HotVsRest(s *Suite, cfg Fig6Config) ([]Fig6Cell, error) {
	apps := cfg.Apps
	perApp := make([][]Fig6Cell, len(apps))
	err := s.runTasks("fig6: campaigns", len(apps), func(i int) error {
		cells, err := fig6App(s, cfg, apps[i])
		if err != nil {
			return err
		}
		perApp[i] = cells
		return nil
	})
	if err != nil {
		return nil, err
	}
	var out []Fig6Cell
	for _, cells := range perApp {
		out = append(out, cells...)
	}
	return out, nil
}

// spaceBlocks returns the named application's injection block space:
// "hot" is the accessed blocks of the hot data objects, "rest" every
// other accessed block (Fig. 5's division of the sorted profile). The
// block order follows the profile, so selectors built from it are
// deterministic.
func (s *Suite) spaceBlocks(name, space string) ([]arch.BlockAddr, error) {
	app, err := s.App(name)
	if err != nil {
		return nil, err
	}
	p, err := s.Profile(name)
	if err != nil {
		return nil, err
	}
	hotNames := make(map[string]bool, app.HotCount)
	for _, o := range app.HotObjects() {
		hotNames[o.Name] = true
	}
	var blocks []arch.BlockAddr
	for _, b := range p.Blocks {
		if hotNames[b.Object] == (space == "hot") {
			blocks = append(blocks, b.Block)
		}
	}
	if len(blocks) == 0 {
		return nil, fmt.Errorf("experiments: %s has no %s blocks", name, space)
	}
	return blocks, nil
}

// fig6App runs one application's hot and rest campaigns across every fault
// model.
func fig6App(s *Suite, cfg Fig6Config, name string) ([]Fig6Cell, error) {
	cp, err := s.Checkpoint(name, core.None, 0)
	if err != nil {
		return nil, err
	}
	hotBlocks, err := s.spaceBlocks(name, "hot")
	if err != nil {
		return nil, err
	}
	restBlocks, err := s.spaceBlocks(name, "rest")
	if err != nil {
		return nil, err
	}
	spaces := []struct {
		label  string
		blocks []arch.BlockAddr
	}{
		{"hot", hotBlocks},
		{"rest", restBlocks},
	}
	var out []Fig6Cell
	for _, sp := range spaces {
		if len(sp.blocks) == 0 {
			return nil, fmt.Errorf("experiments: %s has no %s blocks", name, sp.label)
		}
		sel, err := fault.NewSetSelector(sp.blocks)
		if err != nil {
			return nil, err
		}
		for _, model := range cfg.Models {
			res, err := cp.Campaign(s.campaign(cfg.Runs, cfg.Seed, cfg.Batch), model, sel)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig6 %s/%s/%v: %w", name, sp.label, model, err)
			}
			out = append(out, Fig6Cell{App: name, Space: sp.label, Model: fault.Info(model), Result: res})
		}
	}
	return out, nil
}
