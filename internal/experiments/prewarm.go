// Parallel checkpoint prewarm: build an experiment's upcoming artifact set
// up front, fanned over the suite's bounded worker pool, instead of letting
// the first campaign of each configuration serialize golden + capture +
// timeline back-to-back on one goroutine while the pool idles. The unit of
// fan-out is one (checkpoint, artifact kind) pair — artifact granularity —
// and the store's singleflight front coalesces concurrent builders of the
// same artifact, within this process and (through the disk tier) across
// processes. Prewarming is purely a scheduling change: every artifact is
// built by the same code the lazy path runs, so campaign results are
// bit-identical with or without it.
package experiments

import (
	"context"
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/fleet"
)

// CheckpointSpec names one campaign configuration and the artifact kinds
// its upcoming campaigns will need. The spec helpers (Fig6PrewarmSpecs,
// Fig9PrewarmSpecs, BreakdownPrewarmSpecs, ShardPrewarmSpec) derive these
// from experiment configs; hand-built specs work too.
type CheckpointSpec struct {
	// App is the application name (kernels.ByName).
	App string
	// Scheme and Level select the protection configuration (None/0 = the
	// unprotected baseline).
	Scheme core.Scheme
	Level  int
	// Artifacts lists the artifact kinds to build (see ArtifactKinds).
	// Empty means just the golden — the artifact every campaign needs.
	Artifacts []string
}

// artifactsFor derives the artifact kinds a campaign sweep needs: the
// golden always; the reference capture when the effective batch size routes
// through group replay; the timeline when any swept model consults it; the
// miss-weights when the selector is the Fig. 9 whole-space one.
func artifactsFor(models []fault.Model, batch int, miss bool) []string {
	kinds := []string{ArtifactGolden}
	if batch > 1 {
		kinds = append(kinds, ArtifactCapture)
	}
	for _, m := range models {
		if fault.NeedsTimeline(m) {
			kinds = append(kinds, ArtifactTimeline)
			break
		}
	}
	if miss {
		kinds = append(kinds, ArtifactMissWeights)
	}
	return kinds
}

// Prewarm builds every artifact the specs name, in parallel over the
// suite's worker pool. Plan-invariant work (per-app input images) runs as a
// first phase so configuration tasks start from a warm image; the artifact
// units then fan out with the store's singleflight deduplicating concurrent
// builders of the same artifact. With a disk-backed store the artifacts
// persist, so a second process prewarms by fetching. Duplicate (app,
// scheme, level) specs are merged, their artifact sets unioned. Prewarm
// stops at the first build error (or when ctx is done) — the same error the
// lazy path would have surfaced mid-campaign.
func (s *Suite) Prewarm(ctx context.Context, specs []CheckpointSpec) error {
	if len(specs) == 0 {
		return nil
	}
	if ctx == nil {
		ctx = context.Background()
	}

	// Merge duplicate configurations, preserving first-seen order.
	type cfgKey struct {
		app    string
		scheme core.Scheme
		level  int
	}
	type unit struct {
		spec CheckpointSpec
		kind string
	}
	var apps []string
	appSeen := map[string]bool{}
	merged := map[cfgKey]map[string]bool{}
	var order []cfgKey
	for _, sp := range specs {
		if !appSeen[sp.App] {
			appSeen[sp.App] = true
			apps = append(apps, sp.App)
		}
		scheme := sp.Scheme
		if scheme == 0 {
			// The Scheme zero value is not core.None (schemes start at
			// iota+1); fold it to the unprotected baseline so a zero-valued
			// spec warms the checkpoint the experiments actually use.
			scheme = core.None
		}
		k := cfgKey{sp.App, scheme, sp.Level}
		kinds, ok := merged[k]
		if !ok {
			kinds = map[string]bool{}
			merged[k] = kinds
			order = append(order, k)
		}
		if len(sp.Artifacts) == 0 {
			kinds[ArtifactGolden] = true
		}
		for _, a := range sp.Artifacts {
			kinds[a] = true
		}
	}
	var units []unit
	for _, k := range order {
		for _, kind := range ArtifactKinds() { // canonical order, deterministic fan-out
			if merged[k][kind] {
				units = append(units, unit{
					spec: CheckpointSpec{App: k.app, Scheme: k.scheme, Level: k.level},
					kind: kind,
				})
			}
		}
	}

	// Phase 1: plan-invariant work — each distinct application's input
	// image, shared by all of its configurations via the suite memo.
	err := s.runTasks("prewarm: images", len(apps), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		_, err := s.App(apps[i])
		return err
	})
	if err != nil {
		return err
	}

	// Phase 2: fan the artifact units over the pool. Units of one
	// checkpoint build concurrently (the lazy path would serialize them);
	// units hitting a disk-persisted artifact just decode it.
	return s.runTasks("prewarm: artifacts", len(units), func(i int) error {
		if err := ctx.Err(); err != nil {
			return err
		}
		u := units[i]
		cp, err := s.Checkpoint(u.spec.App, u.spec.Scheme, u.spec.Level)
		if err != nil {
			return err
		}
		if err := cp.BuildArtifact(u.kind); err != nil {
			return fmt.Errorf("experiments: prewarm %s %v L%d %s: %w",
				u.spec.App, u.spec.Scheme, u.spec.Level, u.kind, err)
		}
		return nil
	})
}

// Fig6PrewarmSpecs derives the checkpoint set Fig6HotVsRest(cfg) will use:
// each app's unprotected baseline, with capture/timeline per the model
// sweep. Defaults are resolved like the experiment resolves them.
func (s *Suite) Fig6PrewarmSpecs(cfg Fig6Config) []CheckpointSpec {
	cfg = cfg.withDefaults()
	apps := cfg.Apps
	if len(apps) == 0 {
		apps = s.EvaluatedNames()
	}
	kinds := artifactsFor(cfg.Models, s.batchFor(cfg.Batch), false)
	specs := make([]CheckpointSpec, 0, len(apps))
	for _, app := range apps {
		specs = append(specs, CheckpointSpec{App: app, Artifacts: kinds})
	}
	return specs
}

// Fig9PrewarmSpecs derives the checkpoint set Fig9Resilience(cfg) will use:
// each app's baseline plus every (scheme, level) combination of its
// protection sweep, all with miss-weights (the Fig. 9 selector). Needs the
// application images to enumerate levels, hence the error.
func (s *Suite) Fig9PrewarmSpecs(cfg Fig9Config) ([]CheckpointSpec, error) {
	cfg = cfg.withDefaults()
	apps := cfg.Apps
	if len(apps) == 0 {
		apps = s.EvaluatedNames()
	}
	kinds := artifactsFor(cfg.Models, s.batchFor(cfg.Batch), true)
	var specs []CheckpointSpec
	for _, name := range apps {
		baseApp, err := s.App(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, CheckpointSpec{App: name, Artifacts: kinds})
		for _, scheme := range cfg.Schemes {
			for _, level := range sortedLevels(baseApp)[1:] {
				specs = append(specs, CheckpointSpec{App: name, Scheme: scheme, Level: level, Artifacts: kinds})
			}
		}
	}
	return specs, nil
}

// BreakdownPrewarmSpecs derives the checkpoint set FaultModelBreakdown(cfg)
// will use: each app's baseline plus its hot level under every scheme.
func (s *Suite) BreakdownPrewarmSpecs(cfg BreakdownConfig) ([]CheckpointSpec, error) {
	cfg = cfg.withDefaults()
	apps := cfg.Apps
	if len(apps) == 0 {
		apps = s.AllNames()
	}
	kinds := artifactsFor(cfg.Models, s.batchFor(cfg.Batch), false)
	var specs []CheckpointSpec
	for _, name := range apps {
		baseApp, err := s.App(name)
		if err != nil {
			return nil, err
		}
		specs = append(specs, CheckpointSpec{App: name, Artifacts: kinds})
		for _, scheme := range cfg.Schemes {
			specs = append(specs, CheckpointSpec{App: name, Scheme: scheme, Level: baseApp.HotCount, Artifacts: kinds})
		}
	}
	return specs, nil
}

// ShardPrewarmSpec derives the single checkpoint spec a fleet campaign
// shard needs, so a worker can warm its claimed shard's artifacts (golden,
// capture, timeline, miss-weights as applicable) while heartbeating.
func (s *Suite) ShardPrewarmSpec(spec fleet.CampaignSpec) (CheckpointSpec, error) {
	scheme, err := core.ParseScheme(spec.Scheme)
	if err != nil {
		return CheckpointSpec{}, err
	}
	model, err := fault.ParseModel(spec.Model)
	if err != nil {
		return CheckpointSpec{}, err
	}
	return CheckpointSpec{
		App:       spec.App,
		Scheme:    scheme,
		Level:     spec.Level,
		Artifacts: artifactsFor([]fault.Model{model}, s.batchFor(spec.Batch), spec.Space == "miss"),
	}, nil
}
