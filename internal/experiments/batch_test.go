package experiments

import (
	"math/rand"
	"sync"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// wholeImageSelector targets every block of the checkpoint's image —
// inputs, outputs, padding, and replicas.
func wholeImageSelector(t *testing.T, cp *Checkpoint) fault.Selector {
	t.Helper()
	blocks := make([]arch.BlockAddr, cp.App.Mem.TotalBlocks())
	for i := range blocks {
		blocks[i] = arch.BlockAddr(i)
	}
	sel, err := fault.NewSetSelector(blocks)
	if err != nil {
		t.Fatal(err)
	}
	return sel
}

// perRunOutcomes collects each run's verdict (not just the aggregate
// counts) through the real executor, on the per-run or the batched path.
func perRunOutcomes(t *testing.T, cp *Checkpoint, c fault.Campaign, model fault.Model, sel fault.Selector, batched bool) []fault.Outcome {
	t.Helper()
	outs := make([]fault.Outcome, c.Runs)
	var err error
	if batched {
		var mu sync.Mutex
		_, err = c.ExecuteRangeBatched(0, c.Runs, func(lo int, rngs []*rand.Rand) ([]fault.Outcome, error) {
			os, err := cp.RunBatch(lo, rngs, model, sel)
			if err != nil {
				return nil, err
			}
			mu.Lock()
			copy(outs[lo:], os)
			mu.Unlock()
			return os, nil
		})
	} else {
		_, err = c.ExecuteRange(0, c.Runs, func(i int, rng *rand.Rand) (fault.Outcome, error) {
			o, err := cp.RunOne(rng, model, sel)
			if err != nil {
				return 0, err
			}
			outs[i] = o
			return o, nil
		})
	}
	if err != nil {
		t.Fatal(err)
	}
	return outs
}

// TestBatchedRunOutcomeParity is the batched path's run-granular property
// test: under randomized campaign shapes (seed, batch size, worker count),
// every fault-model family × scheme must produce the exact per-run verdict
// vector the per-run path produces — not merely equal aggregate counts.
// Run under -race in CI via the fork-parity gate's package.
func TestBatchedRunOutcomeParity(t *testing.T) {
	s := testSuite(t)
	prng := rand.New(rand.NewSource(20260808))
	models := []string{
		"stuck-at:bits=3,blocks=2",
		"transient:flips=2",
		"burst",
	}
	apps := []string{"P-BICG", "P-GESUMMV", "A-Sobel"}
	for _, app := range apps {
		for _, scheme := range []core.Scheme{core.None, core.Detection, core.Correction} {
			for _, spec := range models {
				model, err := fault.ParseModel(spec)
				if err != nil {
					t.Fatal(err)
				}
				base, err := s.App(app)
				if err != nil {
					t.Fatal(err)
				}
				level := 0
				if scheme != core.None {
					level = base.HotCount
				}
				cp, err := s.Checkpoint(app, scheme, level)
				if err != nil {
					t.Fatal(err)
				}
				sel := wholeImageSelector(t, cp)

				runs := 8 + prng.Intn(12)
				seed := prng.Int63()
				batch := []int{2, 3, 5, 8, 64}[prng.Intn(5)]
				workers := 1 + prng.Intn(3)
				c := fault.Campaign{Runs: runs, Seed: seed, Workers: workers, Batch: batch}

				want := perRunOutcomes(t, cp, c, model, sel, false)
				got := perRunOutcomes(t, cp, c, model, sel, true)
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s %v L%d %s seed=%d batch=%d workers=%d: run %d = %v, per-run path says %v",
							app, scheme, level, spec, seed, batch, workers, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// counterValue reads one counter sample, treating an unregistered series
// as zero.
func counterValue(snap telemetry.Snapshot, name string, labels ...telemetry.Label) float64 {
	sample, ok := snap.Get(name, labels...)
	if !ok {
		return 0
	}
	return sample.Value
}

// TestBatchTelemetryReconciliation pins the batched path's observability
// contract: claims, lanes-per-claim observations, and run counts must
// reconcile exactly — batches equals the occupancy histogram's observation
// count, the occupancy sum equals the batch-executed runs, every campaign
// run is accounted for either pre-classified, pruned, or batch-executed,
// and the run-granular dcrm_campaign_runs_total matches the per-outcome
// dcrm_fault_runs_total tallies.
func TestBatchTelemetryReconciliation(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := NewSuite(SuiteConfig{NNTrainSamples: 60, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint("P-BICG", core.None, 0)
	if err != nil {
		t.Fatal(err)
	}
	sel := wholeImageSelector(t, cp)
	const runs = 40
	c := s.campaign(runs, 99, 8)
	c.Workers = 2
	res, err := cp.Campaign(c, fault.StuckAt{BitsPerWord: 3, Blocks: 1}, sel)
	if err != nil {
		t.Fatal(err)
	}
	if res.Runs != runs {
		t.Fatalf("result runs = %d, want %d", res.Runs, runs)
	}

	snap := reg.Snapshot()
	occ, ok := snap.Get("dcrm_campaign_batch_occupancy")
	if !ok {
		t.Fatal("no dcrm_campaign_batch_occupancy sample")
	}
	batches := counterValue(snap, "dcrm_campaign_batches_total")
	batchRuns := counterValue(snap, "dcrm_campaign_batch_runs_total")
	pruned := counterValue(snap, "dcrm_campaign_runs_pruned_total")
	pre := counterValue(snap, "dcrm_campaign_runs_preclassified_total")
	totalRuns := counterValue(snap, "dcrm_campaign_runs_total")

	if batches == 0 {
		t.Fatal("batched campaign executed zero claims")
	}
	if float64(occ.Count) != batches {
		t.Errorf("occupancy observations = %d, batches = %v", occ.Count, batches)
	}
	if occ.Value != batchRuns {
		t.Errorf("occupancy lane sum = %v, batch-executed runs = %v", occ.Value, batchRuns)
	}
	if pre+pruned+batchRuns != totalRuns {
		t.Errorf("pre %v + pruned %v + batch-executed %v != campaign runs %v",
			pre, pruned, batchRuns, totalRuns)
	}
	if totalRuns != float64(runs) {
		t.Errorf("dcrm_campaign_runs_total = %v, campaign ran %d", totalRuns, runs)
	}
	var byOutcome float64
	for _, o := range fault.Outcomes() {
		byOutcome += counterValue(snap, "dcrm_fault_runs_total",
			telemetry.Label{Name: "outcome", Value: o.String()})
	}
	if byOutcome != totalRuns {
		t.Errorf("sum of dcrm_fault_runs_total = %v, dcrm_campaign_runs_total = %v", byOutcome, totalRuns)
	}
}
