package experiments

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
	"github.com/datacentric-gpu/dcrm/internal/timing"
)

// TraceApp replays one (application, scheme, level) timing configuration —
// the unit of the Fig. 7 sweep — with a Chrome trace recorder attached,
// returning the timeline (per-SM, per-L2-bank, and per-DRAM-channel lanes)
// and the run's stats. Write the trace with Trace.WriteJSON and open it in
// chrome://tracing or Perfetto.
func TraceApp(s *Suite, name string, scheme core.Scheme, level int) (*telemetry.Trace, timing.AppStats, error) {
	traces, err := s.Traces(name)
	if err != nil {
		return nil, timing.AppStats{}, err
	}
	var tplan timing.ProtectionPlan
	if scheme != core.None && level > 0 {
		_, plan, err := s.PlanFor(name, scheme, level)
		if err != nil {
			return nil, timing.AppStats{}, err
		}
		if plan != nil {
			tplan = plan
		}
	}
	eng, err := timing.New(arch.Default(), tplan)
	if err != nil {
		return nil, timing.AppStats{}, fmt.Errorf("experiments: trace %s %v L%d: %w", name, scheme, level, err)
	}
	eng.Shards = s.cfg.SimShards
	eng.Trace = telemetry.NewTrace()
	eng.Metrics = s.cfg.Telemetry
	st, err := eng.RunApp(name, traces)
	if err != nil {
		return nil, timing.AppStats{}, fmt.Errorf("experiments: trace %s %v L%d: %w", name, scheme, level, err)
	}
	return eng.Trace, st, nil
}
