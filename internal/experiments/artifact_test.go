package experiments

import (
	"bytes"
	"context"
	"encoding/gob"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// artifactCampaign runs a small campaign that touches all four artifact
// kinds: the golden (classification), the reference capture (batch > 1),
// the timeline (transient faults), and the miss weights (the selector).
func artifactCampaign(t *testing.T, s *Suite) fault.Result {
	t.Helper()
	cp, err := s.Checkpoint("P-BICG", core.None, 0)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := cp.MissSelector()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cp.Campaign(fault.Campaign{Runs: 40, Seed: 9, Workers: 2, Batch: 8},
		fault.Transient{Flips: 2, Blocks: 1}, sel)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// buildAllArtifacts forces every artifact kind on the app's baseline
// checkpoint and returns it.
func buildAllArtifacts(t *testing.T, s *Suite) *Checkpoint {
	t.Helper()
	cp, err := s.Checkpoint("P-BICG", core.None, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range ArtifactKinds() {
		if err := cp.BuildArtifact(kind); err != nil {
			t.Fatalf("build %s: %v", kind, err)
		}
	}
	return cp
}

// TestArtifactParity is the artifact-cache byte-identity gate: every
// artifact decoded from the disk tier by a second process must equal a
// fresh computation of the same artifact — gob-byte-identical for the
// slice-shaped kinds, structurally identical for the timeline (gob does
// not order map keys) — and a campaign run entirely from decoded
// artifacts must reproduce the cold campaign bit for bit. It runs under
// -race in CI.
func TestArtifactParity(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns in -short mode")
	}
	dir := t.TempDir()
	st1, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1 := paritySuite(t, st1, nil)
	cp1 := buildAllArtifacts(t, s1)
	baseline := artifactCampaign(t, s1)

	// Fresh computations, bypassing the store entirely.
	freshGolden, err := computeGoldenArtifact(cp1)
	if err != nil {
		t.Fatal(err)
	}
	freshCapture := computeCaptureArtifact(cp1)
	freshTimeline, err := captureTimeline(cp1)
	if err != nil {
		t.Fatal(err)
	}
	blocks, weights, err := missWeights(cp1.App, cp1.Plan, cp1.simShards)
	if err != nil {
		t.Fatal(err)
	}
	freshMiss := missArtifact{Blocks: blocks, Weights: weights}

	// A second process over the same directory: artifactDo must serve every
	// kind from disk; a compute call here is a parity failure in itself.
	st2, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s2 := paritySuite(t, st2, nil)
	cp2, err := s2.Checkpoint("P-BICG", core.None, 0)
	if err != nil {
		t.Fatal(err)
	}
	recomputed := func(kind string) error {
		return fmt.Errorf("%s artifact recomputed on a warm store", kind)
	}
	decodedGolden, err := artifactDo(cp2, ArtifactGolden, func() (goldenArtifact, error) {
		return goldenArtifact{}, recomputed(ArtifactGolden)
	})
	if err != nil {
		t.Fatal(err)
	}
	decodedCapture, err := artifactDo(cp2, ArtifactCapture, func() (captureArtifact, error) {
		return captureArtifact{}, recomputed(ArtifactCapture)
	})
	if err != nil {
		t.Fatal(err)
	}
	decodedTimeline, err := artifactDo(cp2, ArtifactTimeline, func() (*fault.Timeline, error) {
		return nil, recomputed(ArtifactTimeline)
	})
	if err != nil {
		t.Fatal(err)
	}
	decodedMiss, err := artifactDo(cp2, ArtifactMissWeights, func() (missArtifact, error) {
		return missArtifact{}, recomputed(ArtifactMissWeights)
	})
	if err != nil {
		t.Fatal(err)
	}

	for _, p := range []struct {
		kind           string
		fresh, decoded any
	}{
		{ArtifactGolden, freshGolden, decodedGolden},
		{ArtifactCapture, freshCapture, decodedCapture},
		{ArtifactMissWeights, freshMiss, decodedMiss},
	} {
		if !bytes.Equal(gobBytes(t, p.fresh), gobBytes(t, p.decoded)) {
			t.Errorf("%s artifact decoded from disk is not byte-identical to a fresh computation", p.kind)
		}
	}
	if !reflect.DeepEqual(freshTimeline, decodedTimeline) {
		t.Errorf("timeline artifact decoded from disk differs from a fresh capture")
	}

	// The warm process's campaign — classified against the reconstructed
	// golden, replayed against the decoded capture, faults drawn from the
	// decoded weights and timeline — must match the cold result exactly.
	if warm := artifactCampaign(t, s2); warm != baseline {
		t.Errorf("warm-artifact campaign = %+v, want cold result %+v", warm, baseline)
	}
}

// TestArtifactCorruptionRecovery damages each artifact kind's disk file
// both ways a torn write can (payload bit-flip, truncation) and checks
// that a fresh process recovers transparently: exactly that artifact is
// recomputed, every other kind still serves from disk, and the campaign
// result is byte-identical to the undamaged baseline.
func TestArtifactCorruptionRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns in -short mode")
	}
	dir := t.TempDir()
	st1, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1 := paritySuite(t, st1, nil)
	cp1 := buildAllArtifacts(t, s1)
	baseline := artifactCampaign(t, s1)

	mangles := []struct {
		name   string
		mangle func([]byte) []byte
	}{
		{"bitflip", func(raw []byte) []byte { raw[len(raw)-1] ^= 0xff; return raw }},
		{"truncate", func(raw []byte) []byte { return raw[:len(raw)/2] }},
	}
	for _, kind := range ArtifactKinds() {
		for _, m := range mangles {
			t.Run(kind+"/"+m.name, func(t *testing.T) {
				hash := cp1.artifactKey(kind).Hash()
				path := filepath.Join(dir, hash[:2], hash+".bin")
				raw, err := os.ReadFile(path)
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, m.mangle(append([]byte(nil), raw...)), 0o644); err != nil {
					t.Fatal(err)
				}

				reg := telemetry.NewRegistry()
				st, err := store.Open(store.Config{Dir: dir, Telemetry: reg})
				if err != nil {
					t.Fatal(err)
				}
				s := paritySuite(t, st, reg)
				// Force every kind like a restarted worker's prewarm would:
				// the corrupt entry is detected, recomputed, and rewritten;
				// the intact kinds decode from disk.
				buildAllArtifacts(t, s)
				if res := artifactCampaign(t, s); res != baseline {
					t.Errorf("campaign after %s corruption = %+v, want %+v", kind, res, baseline)
				}
				snap := reg.Snapshot()
				if c, ok := snap.Get("dcrm_artifact_computed_total", telemetry.Label{Name: "kind", Value: kind}); !ok || c.Value != 1 {
					t.Errorf("corrupt %s artifact: computed counter = %v, want exactly 1", kind, c)
				}
				for _, other := range ArtifactKinds() {
					if other == kind {
						continue
					}
					if c, ok := snap.Get("dcrm_artifact_computed_total", telemetry.Label{Name: "kind", Value: other}); ok && c.Value != 0 {
						t.Errorf("intact %s artifact recomputed %v times after %s corruption", other, c.Value, kind)
					}
				}
				// The recompute's write-back healed the file: it decodes
				// cleanly for the next subtest's corruption pass.
				if _, err := os.Stat(path); err != nil {
					t.Errorf("corrupt %s artifact not rewritten: %v", kind, err)
				}
			})
		}
	}
}

// TestSecondProcessServesArtifacts is the warm-start telemetry gate: after
// one process prewarms into a disk store, a second process prewarming the
// same specs and running a campaign must request every artifact kind and
// compute none of them.
func TestSecondProcessServesArtifacts(t *testing.T) {
	if testing.Short() {
		t.Skip("campaigns in -short mode")
	}
	dir := t.TempDir()
	specs := []CheckpointSpec{{App: "P-BICG", Artifacts: ArtifactKinds()}}

	st1, err := store.Open(store.Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	s1 := paritySuite(t, st1, nil)
	if err := s1.Prewarm(context.Background(), specs); err != nil {
		t.Fatal(err)
	}

	reg := telemetry.NewRegistry()
	st2, err := store.Open(store.Config{Dir: dir, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	s2 := paritySuite(t, st2, reg)
	if err := s2.Prewarm(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	artifactCampaign(t, s2)

	snap := reg.Snapshot()
	for _, kind := range ArtifactKinds() {
		if r, ok := snap.Get("dcrm_artifact_requests_total", telemetry.Label{Name: "kind", Value: kind}); !ok || r.Value == 0 {
			t.Errorf("warm process recorded no %s artifact requests", kind)
		}
		if c, ok := snap.Get("dcrm_artifact_computed_total", telemetry.Label{Name: "kind", Value: kind}); ok && c.Value != 0 {
			t.Errorf("warm process computed the %s artifact %v times, want 0", kind, c.Value)
		}
	}
	if hits, ok := snap.Get("dcrm_store_disk_hits_total"); !ok || hits.Value == 0 {
		t.Error("warm process served nothing from the disk tier")
	}
}

// TestPrewarmEquivalence checks that Prewarm is purely a scheduling change:
// figure outputs with a prewarmed suite match a lazily-built suite exactly.
func TestPrewarmEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("campaign sweeps in -short mode")
	}
	apps := []string{"P-BICG"}
	fig6cfg := Fig6Config{Runs: 6, Seed: 5, Apps: apps}
	fig9cfg := Fig9Config{Runs: 6, Seed: 5, Apps: apps}

	outputs := func(s *Suite) []byte {
		t.Helper()
		fig6, err := Fig6HotVsRest(s, fig6cfg)
		if err != nil {
			t.Fatal(err)
		}
		fig9, err := Fig9Resilience(s, fig9cfg)
		if err != nil {
			t.Fatal(err)
		}
		out, err := json.Marshal(struct {
			Fig6 []Fig6Cell
			Fig9 []Fig9Cell
		}{fig6, fig9})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}

	lazy := outputs(paritySuite(t, nil, nil))

	warmed := paritySuite(t, nil, nil)
	if err := warmed.Prewarm(context.Background(), warmed.Fig6PrewarmSpecs(fig6cfg)); err != nil {
		t.Fatal(err)
	}
	specs, err := warmed.Fig9PrewarmSpecs(fig9cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := warmed.Prewarm(context.Background(), specs); err != nil {
		t.Fatal(err)
	}
	if got := outputs(warmed); !bytes.Equal(got, lazy) {
		t.Errorf("prewarmed figure output diverges from lazy output\nlazy:     %s\nprewarmed: %s", lazy, got)
	}
}
