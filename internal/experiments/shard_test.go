package experiments

import (
	"context"
	"encoding/json"
	"errors"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/fleet"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// serialResult runs the full single-process campaign a spec describes.
func serialResult(t *testing.T, s *Suite, spec fleet.CampaignSpec) fault.Result {
	t.Helper()
	scheme, err := core.ParseScheme(spec.Scheme)
	if err != nil {
		t.Fatal(err)
	}
	model, err := fault.ParseModel(spec.Model)
	if err != nil {
		t.Fatal(err)
	}
	cp, err := s.Checkpoint(spec.App, scheme, spec.Level)
	if err != nil {
		t.Fatal(err)
	}
	sel, err := shardSelector(s, cp, spec)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cp.Campaign(s.campaign(spec.Runs, spec.Seed, spec.Batch), model, sel)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFleetShardParity is the fabric's byte-identity contract: executing
// a campaign shard by shard (including a deliberately uneven split) and
// merging the counts must reproduce the single-process campaign result
// byte for byte — the CI shard-parity gate.
func TestFleetShardParity(t *testing.T) {
	s := testSuite(t)
	specs := []fleet.CampaignSpec{
		{App: "P-BICG", Scheme: "none", Space: "hot",
			Model: "stuck-at:bits=2,blocks=1", Runs: 40, Seed: 7},
		{App: "P-MVT", Scheme: "none", Space: "rest",
			Model: "transient:flips=2", Runs: 30, Seed: 11},
		{App: "P-BICG", Scheme: "detection", Level: 1, Space: "miss",
			Model: "stuck-at:bits=3,blocks=1", Runs: 20, Seed: 5},
	}
	for _, spec := range specs {
		want := serialResult(t, s, spec)

		// An uneven split (shard size 7 does not divide any of the run
		// counts) exercises the remainder shard.
		var merged fault.Result
		shards := fleet.SplitShards("parity", spec, 7)
		for _, sh := range shards {
			counts, key, err := RunShard(context.Background(), s, sh)
			if err != nil {
				t.Fatalf("%s shard %d: %v", spec, sh.Index, err)
			}
			if key == "" {
				t.Fatalf("%s shard %d returned no store key", spec, sh.Index)
			}
			merged.Add(counts.Result())
		}

		wantJSON, _ := json.Marshal(want)
		gotJSON, _ := json.Marshal(merged)
		if string(wantJSON) != string(gotJSON) {
			t.Errorf("%s: merged shards %s != serial campaign %s (split %d ways)",
				spec, gotJSON, wantJSON, len(shards))
		}
	}
}

// TestRunShardServedFromStore proves the fetch-instead-of-recompute path:
// repeating a shard on the same suite must not re-execute any campaign
// runs (the result is already under its content-addressed key).
func TestRunShardServedFromStore(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := NewSuite(SuiteConfig{NNTrainSamples: 60, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	spec := fleet.CampaignSpec{App: "P-GESUMMV", Scheme: "none", Space: "hot",
		Model: "stuck-at:bits=2,blocks=1", Runs: 16, Seed: 23}
	sh := fleet.SplitShards("store-proof", spec, 16)[0]

	first, key1, err := RunShard(context.Background(), s, sh)
	if err != nil {
		t.Fatal(err)
	}
	computes := sampleValue(t, reg, "dcrm_store_computes_total")
	again, key2, err := RunShard(context.Background(), s, sh)
	if err != nil {
		t.Fatal(err)
	}
	if key1 != key2 {
		t.Fatalf("same shard produced different store keys: %s vs %s", key1, key2)
	}
	if first != again {
		t.Fatalf("store-served shard counts differ: %+v vs %+v", first, again)
	}
	if after := sampleValue(t, reg, "dcrm_store_computes_total"); after != computes {
		t.Fatalf("repeat shard recomputed: computes %v -> %v", computes, after)
	}
}

// sampleValue reads one unlabeled sample from the registry.
func sampleValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	sample, ok := reg.Snapshot().Get(name)
	if !ok {
		t.Fatalf("no sample %q", name)
	}
	return sample.Value
}

// TestValidateSpec rejects malformed specs with actionable errors.
func TestValidateSpec(t *testing.T) {
	good := fleet.CampaignSpec{App: "P-BICG", Scheme: "detection", Level: 1,
		Space: "miss", Model: "burst", Runs: 10, Seed: 1}
	if err := ValidateSpec(good); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	for _, bad := range []fleet.CampaignSpec{
		{App: "P-BICG", Scheme: "quadruplication", Space: "hot", Model: "burst"},
		{App: "P-BICG", Scheme: "none", Space: "lukewarm", Model: "burst"},
		{App: "P-BICG", Scheme: "none", Space: "hot", Model: "no-such-model"},
		{App: "X-Unknown", Scheme: "none", Space: "hot", Model: "burst"},
		{App: "P-BICG", Scheme: "none", Space: "hot", Model: "burst", Batch: -8},
	} {
		if err := ValidateSpec(bad); err == nil {
			t.Errorf("spec %+v accepted", bad)
		}
	}
}

// TestSuiteContextCancelsCampaigns: a cancelled suite context aborts
// in-flight experiment work (the daemon's graceful-shutdown contract).
func TestSuiteContextCancelsCampaigns(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	s, err := NewSuite(SuiteConfig{NNTrainSamples: 60, Context: ctx})
	if err != nil {
		t.Fatal(err)
	}
	cancel()
	_, err = Fig6HotVsRest(s, Fig6Config{Runs: 50, Apps: []string{"P-BICG"}})
	if err == nil {
		t.Fatal("cancelled suite ran a figure to completion")
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error = %v, want context.Canceled", err)
	}
}
