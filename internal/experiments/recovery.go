package experiments

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/fault"
)

// RecoveryCost models the end-to-end cost difference between the two
// schemes under a given fault environment (Section IV-B1: on detection the
// application terminates and "the user is expected to rerun").
//
// Detection pays a small per-run overhead but must rerun whenever a fault
// is caught; correction pays a larger per-run overhead and never reruns.
// With termination probability p per run, the expected number of detection
// attempts is 1/(1-p) (each rerun faces the same permanent-fault
// environment only if the faulty hardware persists; for transient
// environments a single rerun suffices, making this an upper bound).
type RecoveryCost struct {
	// DetectionNormTime and CorrectionNormTime are single-run times
	// normalized to the unprotected baseline.
	DetectionNormTime  float64
	CorrectionNormTime float64
	// TerminateProbability is the detection scheme's per-run terminate rate
	// in the modelled fault environment.
	TerminateProbability float64
	// DetectionExpectedTime is the expected normalized completion time for
	// detection including reruns: DetectionNormTime / (1 − p).
	DetectionExpectedTime float64
	// CorrectionWins reports whether correction completes faster in
	// expectation.
	CorrectionWins bool
}

// NewRecoveryCost combines a detection campaign's terminate rate with the
// two schemes' measured single-run overheads.
func NewRecoveryCost(detPerf, corPerf float64, detCampaign fault.Result) (RecoveryCost, error) {
	if detPerf <= 0 || corPerf <= 0 {
		return RecoveryCost{}, fmt.Errorf("experiments: normalized times must be positive (got %v, %v)", detPerf, corPerf)
	}
	if detCampaign.Runs <= 0 {
		return RecoveryCost{}, fmt.Errorf("experiments: campaign has no runs")
	}
	p := float64(detCampaign.DetectedRuns) / float64(detCampaign.Runs)
	rc := RecoveryCost{
		DetectionNormTime:    detPerf,
		CorrectionNormTime:   corPerf,
		TerminateProbability: p,
	}
	if p >= 1 {
		// Every run terminates: detection can never complete.
		rc.DetectionExpectedTime = 0
		rc.CorrectionWins = true
		return rc, nil
	}
	rc.DetectionExpectedTime = detPerf / (1 - p)
	rc.CorrectionWins = corPerf < rc.DetectionExpectedTime
	return rc, nil
}

// BreakEvenTerminateProbability returns the per-run terminate rate above
// which correction's extra per-run overhead pays for itself:
// p* = 1 − detPerf/corPerf.
func BreakEvenTerminateProbability(detPerf, corPerf float64) float64 {
	if corPerf <= 0 || detPerf >= corPerf {
		return 0
	}
	return 1 - detPerf/corPerf
}
