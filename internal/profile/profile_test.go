package profile

import (
	"sync"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/kernels"
	"github.com/datacentric-gpu/dcrm/internal/nn"
)

var (
	netOnce sync.Once
	netVal  *nn.Network
	netErr  error
)

func smallNet(t *testing.T) *nn.Network {
	t.Helper()
	netOnce.Do(func() { netVal, netErr = nn.Train(nn.TrainConfig{TrainSamples: 60}) })
	if netErr != nil {
		t.Fatal(netErr)
	}
	return netVal
}

func collect(t *testing.T, app *kernels.App) *Profile {
	t.Helper()
	p, err := Collect(app)
	if err != nil {
		t.Fatalf("Collect(%s): %v", app.Name, err)
	}
	return p
}

func TestBICGProfileShape(t *testing.T) {
	// The knee ratio for P-BICG grows as ≈N/33, so use a size where the
	// hot blocks clearly separate.
	app, err := kernels.NewBICG(kernels.BICGConfig{NX: 512, NY: 512})
	if err != nil {
		t.Fatal(err)
	}
	p := collect(t, app)
	if !p.HasHotPattern() {
		t.Error("P-BICG profile lacks the Fig. 3(b) hot knee")
	}
	// Observation I: blocks sorted ascending with a steep tail.
	if p.MaxMinRatio() < 10 {
		t.Errorf("max/min ratio = %.1f, want a pronounced knee", p.MaxMinRatio())
	}
	// The top-ranked objects must be the hot ground truth: p and r.
	if len(p.Objects) < 3 {
		t.Fatalf("objects = %d, want 3", len(p.Objects))
	}
	top2 := map[string]bool{p.Objects[0].Name: true, p.Objects[1].Name: true}
	if !top2["p"] || !top2["r"] {
		t.Errorf("top objects = %q,%q, want p and r", p.Objects[0].Name, p.Objects[1].Name)
	}
	if p.Objects[2].Name != "A" {
		t.Errorf("third object = %q, want A (Table III order)", p.Objects[2].Name)
	}
	// Table III: hot footprint is tiny; hot access share is a small but
	// meaningful fraction (paper: 0.064% and 5.7% at full scale).
	size := p.HotSizePercent(app.HotObjects())
	if size <= 0 || size > 2 {
		t.Errorf("hot size%% = %.3f, want small", size)
	}
	access := p.HotAccessPercent(app.HotObjects())
	if access < 2 || access > 15 {
		t.Errorf("hot access%% = %.1f, want ≈5.7", access)
	}
}

func TestBICGHotBlocksMatchGroundTruth(t *testing.T) {
	app, err := kernels.NewBICG(kernels.BICGConfig{NX: 256, NY: 256})
	if err != nil {
		t.Fatal(err)
	}
	p := collect(t, app)
	truth := map[string]bool{}
	for _, o := range app.HotObjects() {
		truth[o.Name] = true
	}
	for _, b := range p.HotBlocks() {
		// Find the block's object.
		var objName string
		for _, bs := range p.Blocks {
			if bs.Block == b {
				objName = bs.Object
				break
			}
		}
		if !truth[objName] {
			t.Errorf("profiled hot block %d belongs to %q, not a hot object", b, objName)
		}
	}
	if len(p.HotBlocks()) == 0 {
		t.Error("no hot blocks identified")
	}
}

func TestFlatProfileBlackScholes(t *testing.T) {
	app, err := kernels.NewBlackScholes(kernels.BlackScholesConfig{Options: 2048})
	if err != nil {
		t.Fatal(err)
	}
	p := collect(t, app)
	if p.HasHotPattern() {
		t.Error("C-BlackScholes profile shows a hot knee; Fig. 3(g) is flat")
	}
	// Every accessed block has the same count (one coalesced read each).
	if p.MaxMinRatio() != 1 {
		t.Errorf("max/min = %.2f, want 1 (flat)", p.MaxMinRatio())
	}
}

func TestStaircaseProfileGramSchmidt(t *testing.T) {
	app, err := kernels.NewGramSchmidt(kernels.GramSchmidtConfig{N: 32})
	if err != nil {
		t.Fatal(err)
	}
	p := collect(t, app)
	if p.HasHotPattern() {
		t.Error("P-GRAMSCHM profile shows a hot knee; Fig. 3(h) is a staircase")
	}
	// Counts rise gradually: the ratio between adjacent sorted counts stays
	// small compared to hot-knee apps.
	series := p.NormalizedReadSeries(50)
	if len(series) < 10 {
		t.Fatalf("series too short: %d", len(series))
	}
	if series[len(series)-1] != 1 {
		t.Error("series not normalized to 1")
	}
}

func TestWarpSharingBICG(t *testing.T) {
	// Observation II: the hottest blocks are shared by (nearly) all warps.
	app, err := kernels.NewBICG(kernels.BICGConfig{NX: 256, NY: 256})
	if err != nil {
		t.Fatal(err)
	}
	p := collect(t, app)
	series := p.WarpSharePercentSeries(100)
	if len(series) == 0 {
		t.Fatal("empty warp share series")
	}
	if top := series[len(series)-1]; top < 99 {
		t.Errorf("hottest block shared by %.1f%% of warps, want ~100%%", top)
	}
	// Cold blocks (matrix) are touched by few warps.
	if bottom := series[0]; bottom > 20 {
		t.Errorf("coldest block shared by %.1f%% of warps, want few", bottom)
	}
}

func TestCNNProfile(t *testing.T) {
	app, err := kernels.NewCNN(kernels.CNNConfig{Images: 8, Net: smallNet(t)})
	if err != nil {
		t.Fatal(err)
	}
	p := collect(t, app)
	if !p.HasHotPattern() {
		t.Error("C-NN profile lacks the Fig. 3(a) hot knee")
	}
	// Table III: Layer1_Weights ranks first; Layer2_Weights overtakes
	// Images once enough images are batched (its per-block count scales
	// with the batch, the Images per-block count does not).
	if p.Objects[0].Name != "Layer1_Weights" {
		t.Errorf("top object = %q, want Layer1_Weights", p.Objects[0].Name)
	}
	if p.Objects[1].Name != "Layer2_Weights" {
		t.Errorf("second object = %q, want Layer2_Weights", p.Objects[1].Name)
	}
	// C-NN has the paper's largest hot footprint: ~2.15% of app memory.
	size := p.HotSizePercent(app.HotObjects())
	if size < 0.5 || size > 8 {
		t.Errorf("hot size%% = %.2f, want ≈2.15", size)
	}
	// Hot access share ≈35% in the paper.
	access := p.HotAccessPercent(app.HotObjects())
	if access < 10 || access > 60 {
		t.Errorf("hot access%% = %.1f, want ≈35 (scale-dependent)", access)
	}
	// C-NN's concentration ratio is enormous (paper: 4732×).
	if p.MaxMinRatio() < 100 {
		t.Errorf("max/min = %.0f, want ≫100", p.MaxMinRatio())
	}
}

func TestStencilProfiles(t *testing.T) {
	tests := []struct {
		name              string
		build             func() (*kernels.App, error)
		minAcc, maxAcc    float64 // expected hot access%% band (paper values)
		paperHotAccessPct float64
	}{
		{"A-Laplacian", func() (*kernels.App, error) {
			return kernels.NewLaplacian(kernels.StencilConfig{})
		}, 55, 90, 73},
		{"A-Sobel", func() (*kernels.App, error) {
			return kernels.NewSobel(kernels.StencilConfig{})
		}, 55, 95, 73},
		{"A-Meanfilter", func() (*kernels.App, error) {
			return kernels.NewMeanfilter(kernels.StencilConfig{})
		}, 25, 55, 39.89},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			app, err := tt.build()
			if err != nil {
				t.Fatal(err)
			}
			p := collect(t, app)
			if !p.HasHotPattern() {
				t.Error("missing hot knee")
			}
			acc := p.HotAccessPercent(app.HotObjects())
			if acc < tt.minAcc || acc > tt.maxAcc {
				t.Errorf("hot access%% = %.1f, want ≈%.1f (band %.0f–%.0f)",
					acc, tt.paperHotAccessPct, tt.minAcc, tt.maxAcc)
			}
			size := p.HotSizePercent(app.HotObjects())
			if size > 1 {
				t.Errorf("hot size%% = %.3f, want ≪1", size)
			}
		})
	}
}

func TestSRADProfile(t *testing.T) {
	app, err := kernels.NewSRAD(kernels.SRADConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p := collect(t, app)
	if !p.HasHotPattern() {
		t.Error("A-SRAD profile lacks a hot knee")
	}
	// The four index arrays outrank the image.
	truth := map[string]bool{"i_N": true, "i_S": true, "i_E": true, "i_W": true}
	for i := 0; i < 4; i++ {
		if !truth[p.Objects[i].Name] {
			t.Errorf("object rank %d = %q, want an index array", i, p.Objects[i].Name)
		}
	}
}

func TestSeriesSubsampling(t *testing.T) {
	app, err := kernels.NewBICG(kernels.BICGConfig{NX: 256, NY: 256})
	if err != nil {
		t.Fatal(err)
	}
	p := collect(t, app)
	s := p.NormalizedReadSeries(10)
	if len(s) != 10 {
		t.Fatalf("series length %d, want 10", len(s))
	}
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			t.Fatal("series not non-decreasing")
		}
	}
	if s[9] != 1 {
		t.Error("last point not normalized to 1")
	}
	if got := p.NormalizedReadSeries(0); got != nil {
		t.Error("zero maxPoints returned data")
	}
}

func TestRestBlocksDisjointFromHot(t *testing.T) {
	app, err := kernels.NewMVT(kernels.MVTConfig{N: 128})
	if err != nil {
		t.Fatal(err)
	}
	p := collect(t, app)
	hot := map[int64]bool{}
	for _, b := range p.HotBlocks() {
		hot[int64(b)] = true
	}
	for _, b := range p.RestBlocks() {
		if hot[int64(b)] {
			t.Fatalf("block %d in both hot and rest sets", b)
		}
	}
	if len(p.HotBlocks())+len(p.RestBlocks()) != len(p.Blocks) {
		t.Error("hot + rest ≠ all accessed blocks")
	}
}

func TestObjectBlocks(t *testing.T) {
	app, err := kernels.NewBICG(kernels.BICGConfig{NX: 64, NY: 64})
	if err != nil {
		t.Fatal(err)
	}
	blocks := ObjectBlocks(app.HotObjects())
	want := 0
	for _, o := range app.HotObjects() {
		want += o.Blocks()
	}
	if len(blocks) != want {
		t.Fatalf("ObjectBlocks = %d, want %d", len(blocks), want)
	}
}
