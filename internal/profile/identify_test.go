package profile

import (
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/kernels"
)

// TestIdentifyHotObjectsMatchesGroundTruth is the validation of the paper's
// claim that hot objects can be found automatically (Section IV-C): for
// every evaluated application, the profile-only identification must
// recover exactly the source-analysis ground truth (App.HotObjects), and
// for the counter-examples it must find nothing.
func TestIdentifyHotObjectsMatchesGroundTruth(t *testing.T) {
	for _, b := range kernels.All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			var app *kernels.App
			var err error
			if b.Name == "C-NN" {
				app, err = kernels.NewCNN(kernels.CNNConfig{Net: smallNet(t)})
			} else {
				app, err = b.Build()
			}
			if err != nil {
				t.Fatal(err)
			}
			p, err := Collect(app)
			if err != nil {
				t.Fatal(err)
			}
			got := p.IdentifyHotObjects(app.Objects, IdentifyConfig{})
			want := app.HotObjects()
			if !b.HotPattern {
				if len(got) != 0 {
					names := []string{}
					for _, o := range got {
						names = append(names, o.Name)
					}
					t.Fatalf("counter-example identified hot objects: %v", names)
				}
				return
			}
			gotNames := map[string]bool{}
			for _, o := range got {
				gotNames[o.Name] = true
			}
			for _, o := range want {
				if !gotNames[o.Name] {
					t.Errorf("ground-truth hot object %q not identified", o.Name)
				}
			}
			for _, o := range got {
				truth := false
				for _, w := range want {
					if w.Name == o.Name {
						truth = true
					}
				}
				if !truth {
					// C-NN at scaled batch sizes legitimately returns a
					// small superset (see IdentifyHotObjects); superset
					// picks must at least be read-only and small.
					if b.Name == "C-NN" && o.ReadOnly &&
						o.Size < app.Mem.Size()/10 {
						continue
					}
					t.Errorf("false positive: %q identified as hot", o.Name)
				}
			}
		})
	}
}

func TestIdentifyRespectsSizeBound(t *testing.T) {
	app, err := kernels.NewBICG(kernels.BICGConfig{NX: 192, NY: 192})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Collect(app)
	if err != nil {
		t.Fatal(err)
	}
	// An absurdly small size bound excludes everything.
	got := p.IdentifyHotObjects(app.Objects, IdentifyConfig{MaxSizeFraction: 1e-9})
	if len(got) != 0 {
		t.Errorf("size bound ignored: %d objects identified", len(got))
	}
}

func TestIdentifyRespectsWarpShare(t *testing.T) {
	app, err := kernels.NewBICG(kernels.BICGConfig{NX: 192, NY: 192})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Collect(app)
	if err != nil {
		t.Fatal(err)
	}
	// Requiring impossible sharing excludes everything.
	got := p.IdentifyHotObjects(app.Objects, IdentifyConfig{MinWarpSharePercent: 101})
	if len(got) != 0 {
		t.Errorf("warp-share bound ignored: %d objects identified", len(got))
	}
}

func TestIdentifyPriorityOrder(t *testing.T) {
	app, err := kernels.NewSRAD(kernels.SRADConfig{})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Collect(app)
	if err != nil {
		t.Fatal(err)
	}
	got := p.IdentifyHotObjects(app.Objects, IdentifyConfig{})
	if len(got) < 2 {
		t.Fatalf("identified %d objects, want the SRAD index arrays", len(got))
	}
	// The returned order must follow the profile's peak-block ranking.
	rank := map[string]int{}
	for i, o := range p.Objects {
		rank[o.Name] = i
	}
	for i := 1; i < len(got); i++ {
		if rank[got[i].Name] < rank[got[i-1].Name] {
			t.Fatalf("identification order violates profile ranking: %q before %q",
				got[i-1].Name, got[i].Name)
		}
	}
}
