package profile

import (
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

// IdentifyConfig tunes automatic hot-object identification.
type IdentifyConfig struct {
	// MinConcentration is the minimum ratio between an object's peak block
	// read count and the profile's median block read count for the object
	// to qualify as hot (default: the Fig. 3 knee threshold).
	MinConcentration float64
	// MaxSizeFraction rejects objects larger than this fraction of the
	// application's memory: hot objects are small by definition (Table III
	// tops out at 2.15%; default 0.10 leaves scaling headroom).
	MaxSizeFraction float64
	// MinWarpSharePercent requires the object's hottest block to be read by
	// at least this percentage of a kernel's active warps. The paper asks
	// only that hot blocks be "shared across multiple warps" — C-NN's hot
	// weights are read by a few percent of warps per kernel (Fig. 4(c)) —
	// so the default is a permissive 3.
	MinWarpSharePercent float64
}

func (c IdentifyConfig) withDefaults() IdentifyConfig {
	if c.MinConcentration == 0 {
		c.MinConcentration = hotMedianRatio
	}
	if c.MaxSizeFraction == 0 {
		c.MaxSizeFraction = 0.10
	}
	if c.MinWarpSharePercent == 0 {
		c.MinWarpSharePercent = 3
	}
	return c
}

// IdentifyHotObjects performs the paper's hot-data-object identification
// automatically from the profile, the way a binary-instrumentation flow
// (NVBit/CUPTI, Section IV-C) would, with no source-code knowledge:
//
//  1. only read-only input objects are candidates (replication requires
//     immutability),
//  2. the object's peak per-block read count must sit above the Fig. 3
//     knee (MinConcentration × median block reads),
//  3. the object must be small (MaxSizeFraction of app memory), and
//  4. its hottest block must be shared across warps (Observation II).
//
// Results are returned in protection-priority order (peak block reads
// descending), ready to feed core.PlanConfig.Objects. objects must be the
// application's input data objects (the same slice the profile was
// attributed against).
//
// The identification is heuristic, as any instrumentation-based flow is:
// it recovers the paper's source-analysis ground truth exactly for nine of
// the ten bundled applications. For C-NN at scaled batch sizes it returns
// a small superset — Layer4_Weights and the Images batch also clear every
// profile-only criterion (read-only, above the knee, multi-warp shared)
// because their per-block read counts only fall below the weight tables'
// once hundreds of images are batched, as the paper's full-scale inputs
// do. Supersets are safe: they replicate a few extra small read-only
// objects.
func (p *Profile) IdentifyHotObjects(objects []*mem.Buffer, cfg IdentifyConfig) []*mem.Buffer {
	cfg = cfg.withDefaults()
	med := float64(p.medianReads())
	if med <= 0 {
		med = 1
	}
	byName := make(map[string]*mem.Buffer, len(objects))
	for _, o := range objects {
		byName[o.Name] = o
	}
	// Peak warp share per object.
	shareByName := make(map[string]float64, len(objects))
	for _, b := range p.Blocks {
		if b.Object == "" {
			continue
		}
		if b.SharePercent > shareByName[b.Object] {
			shareByName[b.Object] = b.SharePercent
		}
	}

	var hot []*mem.Buffer
	for _, os := range p.Objects { // already sorted by peak block reads desc
		buf, ok := byName[os.Name]
		if !ok || !os.ReadOnly {
			continue
		}
		if float64(os.PeakBlockReads) < cfg.MinConcentration*med {
			continue
		}
		if p.TotalMemBytes > 0 &&
			float64(os.SizeBytes) > cfg.MaxSizeFraction*float64(p.TotalMemBytes) {
			continue
		}
		if shareByName[os.Name] < cfg.MinWarpSharePercent {
			continue
		}
		hot = append(hot, buf)
	}
	return hot
}
