// Package profile implements the paper's offline access-pattern analysis
// (Section III-B): per-block coalesced read counts (Fig. 3), warp-sharing
// percentages (Fig. 4), data-object attribution and ranking (Table III),
// and hot-block identification. Profiling is a single instrumented
// functional run, exactly as the paper collects it once offline.
package profile

import (
	"fmt"
	"sort"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/kernels"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// hotMedianRatio classifies a block as hot when its read count is at least
// this multiple of the median non-zero block read count — the automated
// stand-in for the paper's visual knee identification in Fig. 3. The knee
// ratio grows with problem size (for P-BICG it is ≈ N/33), so the threshold
// is set low enough to find the knee at the scaled default sizes while
// still rejecting the flat/staircase counter-examples.
const hotMedianRatio = 4

// BlockStat is one data memory block's profile.
type BlockStat struct {
	// Block is the 128 B block address.
	Block arch.BlockAddr
	// Reads counts coalesced read transactions to the block.
	Reads uint64
	// Warps counts distinct warps that read the block (across kernels).
	Warps int
	// SharePercent is the block's warp-sharing percentage: the maximum,
	// over the kernels that touch it, of (warps reading the block within
	// the kernel) / (active warps of that kernel) — the Fig. 4 metric.
	// Normalisation is per kernel because a data object is only live during
	// the kernels that use it.
	SharePercent float64
	// Object is the input data object the block belongs to ("" for
	// intermediate/output buffers).
	Object string
}

// ObjectStat aggregates a data object's profile (one Table III row
// fragment).
type ObjectStat struct {
	// Name is the data object name.
	Name string
	// SizeBytes is the allocation size.
	SizeBytes int
	// Blocks is the number of 128 B blocks the object spans.
	Blocks int
	// Reads is the total coalesced read transactions to the object.
	Reads uint64
	// PeakBlockReads is the hottest block's read count — the ranking key
	// (hot objects concentrate accesses on few blocks).
	PeakBlockReads uint64
	// SharedWarpsMax is the largest number of distinct warps sharing one of
	// the object's blocks.
	SharedWarpsMax int
	// ReadOnly marks replication-eligible objects.
	ReadOnly bool
}

// Profile is the result of one instrumented run.
type Profile struct {
	// App is the application name.
	App string
	// TotalWarps is the number of warps launched across all kernels.
	TotalWarps int
	// ActiveWarps is the number of warps that issued at least one read.
	ActiveWarps int
	// TotalReads counts all coalesced read transactions.
	TotalReads uint64
	// TotalMemBytes is the application's allocated device memory.
	TotalMemBytes int
	// Blocks holds every block with at least one read, sorted by read
	// count ascending (the Fig. 3 x-axis order).
	Blocks []BlockStat
	// Objects holds the input data objects sorted by PeakBlockReads
	// descending (the Table III row order).
	Objects []ObjectStat
}

// kernelRange records one kernel's global warp-ID span.
type kernelRange struct {
	base, end int
	active    int
}

// collector implements simt.Observer.
type collector struct {
	warpBase int
	reads    map[arch.BlockAddr]uint64
	warps    map[arch.BlockAddr]map[int]struct{}
	active   map[int]struct{}
	total    uint64
	ranges   []kernelRange
}

func newCollector() *collector {
	return &collector{
		reads:  make(map[arch.BlockAddr]uint64),
		warps:  make(map[arch.BlockAddr]map[int]struct{}),
		active: make(map[int]struct{}),
	}
}

// Observe implements simt.Observer.
func (c *collector) Observe(tx simt.Transaction) {
	if tx.Write {
		return // the analysis follows the paper: RD accesses dominate
	}
	gw := c.warpBase + tx.WarpID
	c.reads[tx.Block]++
	c.total++
	ws, ok := c.warps[tx.Block]
	if !ok {
		ws = make(map[int]struct{}, 4)
		c.warps[tx.Block] = ws
	}
	ws[gw] = struct{}{}
	c.active[gw] = struct{}{}
}

// Collect profiles the application with one instrumented run on a
// copy-on-write fork of its golden memory image.
func Collect(app *kernels.App) (*Profile, error) {
	c := newCollector()
	m := app.Mem.Fork()
	d := &simt.Driver{Mem: m, Observer: c}
	totalWarps := 0
	for _, k := range app.Kernels {
		c.warpBase = totalWarps
		if _, err := d.Run(k); err != nil {
			return nil, fmt.Errorf("profile: %s: %w", app.Name, err)
		}
		totalWarps += k.TotalWarps()
		c.ranges = append(c.ranges, kernelRange{base: c.warpBase, end: totalWarps})
	}
	for gw := range c.active {
		for i := range c.ranges {
			if gw >= c.ranges[i].base && gw < c.ranges[i].end {
				c.ranges[i].active++
				break
			}
		}
	}

	p := &Profile{
		App:           app.Name,
		TotalWarps:    totalWarps,
		ActiveWarps:   len(c.active),
		TotalReads:    c.total,
		TotalMemBytes: app.Mem.Size(),
	}

	// Object attribution: map block → owning input object.
	owner := make(map[arch.BlockAddr]string, len(c.reads))
	objStats := make(map[string]*ObjectStat, len(app.Objects))
	for _, o := range app.Objects {
		objStats[o.Name] = &ObjectStat{
			Name:      o.Name,
			SizeBytes: o.Size,
			Blocks:    o.Blocks(),
			ReadOnly:  o.ReadOnly,
		}
		first := o.FirstBlock()
		for b := 0; b < o.Blocks(); b++ {
			owner[first+arch.BlockAddr(b)] = o.Name
		}
	}

	p.Blocks = make([]BlockStat, 0, len(c.reads))
	for b, n := range c.reads {
		name := owner[b]
		st := BlockStat{
			Block:        b,
			Reads:        n,
			Warps:        len(c.warps[b]),
			SharePercent: c.sharePercent(b),
			Object:       name,
		}
		p.Blocks = append(p.Blocks, st)
		if os, ok := objStats[name]; ok {
			os.Reads += n
			if n > os.PeakBlockReads {
				os.PeakBlockReads = n
			}
			if st.Warps > os.SharedWarpsMax {
				os.SharedWarpsMax = st.Warps
			}
		}
	}
	sort.Slice(p.Blocks, func(i, j int) bool {
		if p.Blocks[i].Reads != p.Blocks[j].Reads {
			return p.Blocks[i].Reads < p.Blocks[j].Reads
		}
		return p.Blocks[i].Block < p.Blocks[j].Block
	})

	p.Objects = make([]ObjectStat, 0, len(objStats))
	for _, os := range objStats {
		p.Objects = append(p.Objects, *os)
	}
	sort.Slice(p.Objects, func(i, j int) bool {
		if p.Objects[i].PeakBlockReads != p.Objects[j].PeakBlockReads {
			return p.Objects[i].PeakBlockReads > p.Objects[j].PeakBlockReads
		}
		if p.Objects[i].Reads != p.Objects[j].Reads {
			return p.Objects[i].Reads > p.Objects[j].Reads
		}
		return p.Objects[i].Name < p.Objects[j].Name
	})
	return p, nil
}

// MaxMinRatio returns the hottest block's read count over the coldest
// accessed block's — the Fig. 3 concentration measure (4732× for C-NN in
// the paper).
func (p *Profile) MaxMinRatio() float64 {
	if len(p.Blocks) == 0 {
		return 0
	}
	lo := p.Blocks[0].Reads
	hi := p.Blocks[len(p.Blocks)-1].Reads
	if lo == 0 {
		return float64(hi)
	}
	return float64(hi) / float64(lo)
}

// medianReads returns the median read count over accessed blocks.
func (p *Profile) medianReads() uint64 {
	if len(p.Blocks) == 0 {
		return 0
	}
	return p.Blocks[len(p.Blocks)/2].Reads
}

// HotBlocks identifies hot memory blocks from the profile alone: blocks
// whose read count is ≥ hotMedianRatio × the median. This is the automated
// knee of Fig. 3.
func (p *Profile) HotBlocks() []arch.BlockAddr {
	med := p.medianReads()
	if med == 0 {
		med = 1
	}
	var out []arch.BlockAddr
	for _, b := range p.Blocks {
		if b.Reads >= hotMedianRatio*med {
			out = append(out, b.Block)
		}
	}
	return out
}

// RestBlocks returns the accessed blocks that are not hot.
func (p *Profile) RestBlocks() []arch.BlockAddr {
	hot := make(map[arch.BlockAddr]bool)
	for _, b := range p.HotBlocks() {
		hot[b] = true
	}
	var out []arch.BlockAddr
	for _, b := range p.Blocks {
		if !hot[b.Block] {
			out = append(out, b.Block)
		}
	}
	return out
}

// HasHotPattern reports whether the profile shows the Fig. 3(a)–(f) knee:
// a minority of blocks is hot. The discriminating signal is the knee
// itself: the flat and staircase counter-examples produce no blocks above
// the knee threshold at all, while the hot-pattern applications put at
// most a modest fraction (re-read intermediates included) above it.
func (p *Profile) HasHotPattern() bool {
	hot := len(p.HotBlocks())
	return hot > 0 && hot*2 <= len(p.Blocks)
}

// ObjectBlocks returns the blocks spanned by the named objects.
func ObjectBlocks(objs []*mem.Buffer) []arch.BlockAddr {
	var out []arch.BlockAddr
	for _, o := range objs {
		first := o.FirstBlock()
		for b := 0; b < o.Blocks(); b++ {
			out = append(out, first+arch.BlockAddr(b))
		}
	}
	return out
}

// HotAccessPercent returns the percentage of all read transactions that
// target blocks of the given (hot) objects — Table III's last column.
func (p *Profile) HotAccessPercent(hotObjects []*mem.Buffer) float64 {
	if p.TotalReads == 0 {
		return 0
	}
	names := make(map[string]bool, len(hotObjects))
	for _, o := range hotObjects {
		names[o.Name] = true
	}
	var hot uint64
	for _, o := range p.Objects {
		if names[o.Name] {
			hot += o.Reads
		}
	}
	return 100 * float64(hot) / float64(p.TotalReads)
}

// HotSizePercent returns the hot objects' footprint as a percentage of the
// application's total device memory — Table III's middle column.
func (p *Profile) HotSizePercent(hotObjects []*mem.Buffer) float64 {
	if p.TotalMemBytes == 0 {
		return 0
	}
	bytes := 0
	for _, o := range hotObjects {
		bytes += o.Size
	}
	return 100 * float64(bytes) / float64(p.TotalMemBytes)
}

// NormalizedReadSeries returns the Fig. 3 y-series: per-block read counts
// sorted ascending, normalized to the maximum. At most maxPoints values are
// returned, uniformly subsampled (the paper's plots are likewise decimated).
func (p *Profile) NormalizedReadSeries(maxPoints int) []float64 {
	if len(p.Blocks) == 0 || maxPoints <= 0 {
		return nil
	}
	max := float64(p.Blocks[len(p.Blocks)-1].Reads)
	if max == 0 {
		max = 1
	}
	n := len(p.Blocks)
	if n <= maxPoints {
		out := make([]float64, n)
		for i, b := range p.Blocks {
			out[i] = float64(b.Reads) / max
		}
		return out
	}
	out := make([]float64, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := i * (n - 1) / (maxPoints - 1)
		out[i] = float64(p.Blocks[idx].Reads) / max
	}
	return out
}

// WarpSharePercentSeries returns the Fig. 4 y-series: per-block warp-
// sharing percentages, ordered by read count ascending.
func (p *Profile) WarpSharePercentSeries(maxPoints int) []float64 {
	if len(p.Blocks) == 0 || maxPoints <= 0 {
		return nil
	}
	n := len(p.Blocks)
	if n <= maxPoints {
		out := make([]float64, n)
		for i, b := range p.Blocks {
			out[i] = b.SharePercent
		}
		return out
	}
	out := make([]float64, maxPoints)
	for i := 0; i < maxPoints; i++ {
		idx := i * (n - 1) / (maxPoints - 1)
		out[i] = p.Blocks[idx].SharePercent
	}
	return out
}

// sharePercent computes a block's per-kernel warp-sharing maximum.
func (c *collector) sharePercent(b arch.BlockAddr) float64 {
	ws := c.warps[b]
	if len(ws) == 0 {
		return 0
	}
	best := 0.0
	for _, r := range c.ranges {
		if r.active == 0 {
			continue
		}
		n := 0
		for gw := range ws {
			if gw >= r.base && gw < r.end {
				n++
			}
		}
		if s := 100 * float64(n) / float64(r.active); s > best {
			best = s
		}
	}
	return best
}
