package fleet

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// CoordinatorConfig tunes the control plane.
type CoordinatorConfig struct {
	// HeartbeatEvery is the cadence workers are told to heartbeat at
	// (default 2s).
	HeartbeatEvery time.Duration
	// DeadAfter is the liveness window: a worker silent for longer is
	// considered dead and its assigned shards become stealable
	// (default 3 × HeartbeatEvery).
	DeadAfter time.Duration
	// LeaseFor bounds how long one shard may stay assigned to a live
	// worker before another idle worker may steal it — the straggler
	// bound (default 2 minutes).
	LeaseFor time.Duration
	// MaxAttempts bounds assignment attempts per shard; a shard failing
	// (or being stolen) this many times fails its job (default 5).
	MaxAttempts int
	// ValidateSpec, when non-nil, vets a submission before it is split
	// into shards (the daemon wires scheme/space/model validation here so
	// a typo'd request fails at POST time, not on a worker).
	ValidateSpec func(CampaignSpec) error
	// Telemetry, when non-nil, receives the fleet counters
	// (dcrm_fleet_*). Observation only.
	Telemetry *telemetry.Registry
	// now is the injectable clock for tests (nil = time.Now).
	now func() time.Time
}

func (c CoordinatorConfig) withDefaults() CoordinatorConfig {
	if c.HeartbeatEvery <= 0 {
		c.HeartbeatEvery = 2 * time.Second
	}
	if c.DeadAfter <= 0 {
		c.DeadAfter = 3 * c.HeartbeatEvery
	}
	if c.LeaseFor <= 0 {
		c.LeaseFor = 2 * time.Minute
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.now == nil {
		c.now = time.Now
	}
	return c
}

// shardState tracks one shard through the scheduler.
type shardState struct {
	shard Shard
	// done shards never leave that state: a duplicate completion (the
	// original owner of a stolen shard finishing late) is ignored, which
	// is sound because shard results are deterministic.
	done     bool
	assigned bool
	worker   string
	deadline time.Time
	attempts int
	counts   Counts
}

// fleetJob is one sharded campaign.
type fleetJob struct {
	id     string
	spec   CampaignSpec
	shards []*shardState
	doneN  int
	merged Counts
	state  JobState
	errMsg string
}

func (j *fleetJob) status() JobStatus {
	st := JobStatus{
		ID:          j.id,
		Spec:        j.spec,
		State:       j.state,
		Error:       j.errMsg,
		ShardsTotal: len(j.shards),
		ShardsDone:  j.doneN,
		Merged:      j.merged,
	}
	for _, s := range j.shards {
		if !s.done && s.assigned {
			st.ShardsAssigned++
		}
		if !s.done && !s.assigned {
			st.ShardsPending++
		}
	}
	res := j.merged.Result()
	st.SDCRate = res.SDCRate()
	st.SDCHalfWidth = res.ConfidenceHalfWidth()
	return st
}

// workerState tracks one registered worker.
type workerState struct {
	id, name, addr string
	lastSeen       time.Time
	shardsDone     int
}

// Coordinator owns the fleet: worker registry, shard queue, and the
// incremental merge of completed shards. All methods are safe for
// concurrent use; the HTTP handlers in Register are thin wrappers over
// them, so in-process tests can drive the scheduler without a listener.
type Coordinator struct {
	cfg CoordinatorConfig

	mu         sync.Mutex
	nextWorker int
	nextJob    int
	workers    map[string]*workerState
	jobs       map[string]*fleetJob
	// pending is the FIFO queue of unassigned shards across all jobs.
	pending []*shardState

	workersJoined   *telemetry.Counter
	workersAlive    *telemetry.Gauge
	shardsAssigned  *telemetry.Counter
	shardsStolen    *telemetry.Counter
	shardsRetried   *telemetry.Counter
	shardsCompleted *telemetry.Counter
}

// NewCoordinator builds the control plane.
func NewCoordinator(cfg CoordinatorConfig) *Coordinator {
	cfg = cfg.withDefaults()
	c := &Coordinator{
		cfg:     cfg,
		workers: make(map[string]*workerState),
		jobs:    make(map[string]*fleetJob),
	}
	if reg := cfg.Telemetry; reg != nil {
		c.workersJoined = reg.Counter("dcrm_fleet_workers_joined_total",
			"Fleet workers that registered with the coordinator.")
		c.workersAlive = reg.Gauge("dcrm_fleet_workers_alive",
			"Fleet workers currently within the heartbeat liveness window.")
		c.shardsAssigned = reg.Counter("dcrm_fleet_shards_assigned_total",
			"Campaign shards handed to workers (steals and retries included).")
		c.shardsStolen = reg.Counter("dcrm_fleet_shards_stolen_total",
			"Campaign shards reassigned away from dead or straggling workers.")
		c.shardsRetried = reg.Counter("dcrm_fleet_shards_retried_total",
			"Campaign shards re-queued after a worker reported failure.")
		c.shardsCompleted = reg.Counter("dcrm_fleet_shards_completed_total",
			"Campaign shards completed and merged.")
	}
	return c
}

// Join registers a worker and returns its identity and heartbeat cadence.
func (c *Coordinator) Join(req JoinRequest) JoinResponse {
	c.mu.Lock()
	c.nextWorker++
	w := &workerState{
		id:       fmt.Sprintf("worker-%d", c.nextWorker),
		name:     req.Name,
		addr:     req.Addr,
		lastSeen: c.cfg.now(),
	}
	c.workers[w.id] = w
	c.mu.Unlock()
	if c.workersJoined != nil {
		c.workersJoined.Inc()
	}
	c.publishAlive()
	return JoinResponse{
		WorkerID:        w.id,
		HeartbeatMillis: int(c.cfg.HeartbeatEvery / time.Millisecond),
	}
}

// Heartbeat marks a worker alive. Known=false means the coordinator does
// not recognize the ID (e.g. it restarted) and the worker must rejoin.
func (c *Coordinator) Heartbeat(req HeartbeatRequest) HeartbeatResponse {
	c.mu.Lock()
	w, ok := c.workers[req.WorkerID]
	if ok {
		w.lastSeen = c.cfg.now()
	}
	c.mu.Unlock()
	c.publishAlive()
	return HeartbeatResponse{Known: ok}
}

// Submit validates and registers a campaign, splits it into shards, and
// queues them for the fleet. The job starts running immediately (workers
// pick shards up on their next poll).
func (c *Coordinator) Submit(spec CampaignSpec) (JobStatus, error) {
	if spec.Runs <= 0 {
		return JobStatus{}, fmt.Errorf("fleet: campaign needs a positive run count, got %d", spec.Runs)
	}
	if spec.App == "" {
		return JobStatus{}, fmt.Errorf("fleet: campaign needs an app")
	}
	if c.cfg.ValidateSpec != nil {
		if err := c.cfg.ValidateSpec(spec); err != nil {
			return JobStatus{}, err
		}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.nextJob++
	j := &fleetJob{
		id:    fmt.Sprintf("fleet-%d", c.nextJob),
		spec:  spec,
		state: JobRunning,
	}
	for _, sh := range SplitShards(j.id, spec, spec.ShardRuns) {
		st := &shardState{shard: sh}
		j.shards = append(j.shards, st)
		c.pending = append(c.pending, st)
	}
	c.jobs[j.id] = j
	return j.status(), nil
}

// Poll hands the calling worker at most one shard: the oldest pending
// shard if any, else a shard stolen from a dead or straggling worker.
func (c *Coordinator) Poll(req PollRequest) (PollResponse, error) {
	now := c.cfg.now()
	c.mu.Lock()
	w, ok := c.workers[req.WorkerID]
	if !ok {
		c.mu.Unlock()
		return PollResponse{}, fmt.Errorf("fleet: unknown worker %q (rejoin required)", req.WorkerID)
	}
	w.lastSeen = now

	st := c.claimLocked(req.WorkerID, now)
	c.mu.Unlock()
	c.publishAlive()
	if st == nil {
		return PollResponse{WaitMillis: int(c.cfg.HeartbeatEvery / time.Millisecond / 2)}, nil
	}
	if c.shardsAssigned != nil {
		c.shardsAssigned.Inc()
	}
	sh := st.shard
	return PollResponse{Shard: &sh}, nil
}

// claimLocked picks the shard to assign to workerID, preferring the
// pending queue and falling back to work stealing. Caller holds mu.
func (c *Coordinator) claimLocked(workerID string, now time.Time) *shardState {
	// Drop already-completed shards (a duplicate completion landed after a
	// re-queue) and shards of jobs that already failed.
	for len(c.pending) > 0 {
		st := c.pending[0]
		c.pending = c.pending[1:]
		if !c.assignableLocked(st) {
			continue
		}
		c.assignLocked(st, workerID, now)
		return st
	}
	// Work stealing: an assigned, unfinished shard whose worker is dead
	// (missed its liveness window) or whose lease expired (straggler) may
	// be re-run by an idle worker. Deterministic shard results make the
	// duplicated execution harmless — first completion wins, the late one
	// is ignored. Scan in (job, shard) order so stealing is deterministic.
	ids := make([]string, 0, len(c.jobs))
	for id := range c.jobs {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		for _, st := range c.jobs[id].shards {
			if st.done || !st.assigned || st.worker == workerID || !c.assignableLocked(st) {
				continue
			}
			owner := c.workers[st.worker]
			ownerDead := owner == nil || now.Sub(owner.lastSeen) > c.cfg.DeadAfter
			if !ownerDead && now.Before(st.deadline) {
				continue
			}
			if c.shardsStolen != nil {
				c.shardsStolen.Inc()
			}
			c.assignLocked(st, workerID, now)
			return st
		}
	}
	return nil
}

// assignableLocked reports whether st may still be handed out, failing
// its job once the attempt budget is exhausted. Caller holds mu.
func (c *Coordinator) assignableLocked(st *shardState) bool {
	if st.done {
		return false
	}
	if j := c.jobs[st.shard.JobID]; j != nil && j.state != JobRunning {
		return false
	}
	if st.attempts >= c.cfg.MaxAttempts {
		c.failJobLocked(st.shard.JobID, fmt.Sprintf(
			"shard %d exhausted its %d assignment attempts", st.shard.Index, c.cfg.MaxAttempts))
		return false
	}
	return true
}

// assignLocked marks st assigned to workerID with a fresh lease. Caller
// holds mu and has checked assignableLocked.
func (c *Coordinator) assignLocked(st *shardState, workerID string, now time.Time) {
	st.attempts++
	st.assigned = true
	st.worker = workerID
	st.deadline = now.Add(c.cfg.LeaseFor)
}

// failJobLocked marks a job failed (its remaining shards stay schedulable
// no further — they are left in place but the job state is terminal).
func (c *Coordinator) failJobLocked(jobID, msg string) {
	if j := c.jobs[jobID]; j != nil && j.state == JobRunning {
		j.state = JobFailed
		j.errMsg = msg
	}
}

// Complete merges one shard result. Duplicate completions (a stolen
// shard's original owner finishing late) are ignored; failed shards are
// re-queued until the attempt budget runs out.
func (c *Coordinator) Complete(req CompleteRequest) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[req.JobID]
	if !ok {
		return fmt.Errorf("fleet: completion for unknown job %q", req.JobID)
	}
	if req.Index < 0 || req.Index >= len(j.shards) {
		return fmt.Errorf("fleet: completion for job %s shard %d (job has %d shards)",
			req.JobID, req.Index, len(j.shards))
	}
	if w := c.workers[req.WorkerID]; w != nil {
		w.lastSeen = c.cfg.now()
	}
	st := j.shards[req.Index]
	if st.done {
		return nil
	}
	if req.Err != "" {
		// The shard failed on this worker: back to the queue (the attempt
		// budget in assignLocked bounds how often).
		st.assigned = false
		st.worker = ""
		c.pending = append(c.pending, st)
		if c.shardsRetried != nil {
			c.shardsRetried.Inc()
		}
		return nil
	}
	if got, want := req.Counts.Runs, st.shard.End-st.shard.Start; got != want {
		return fmt.Errorf("fleet: job %s shard %d reported %d runs, range holds %d",
			req.JobID, req.Index, got, want)
	}
	st.done = true
	st.assigned = false
	st.counts = req.Counts
	j.doneN++
	j.merged.Add(req.Counts)
	if w := c.workers[req.WorkerID]; w != nil {
		w.shardsDone++
	}
	if c.shardsCompleted != nil {
		c.shardsCompleted.Inc()
	}
	if j.doneN == len(j.shards) && j.state == JobRunning {
		j.state = JobDone
	}
	return nil
}

// Job returns one job's status snapshot.
func (c *Coordinator) Job(id string) (JobStatus, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	j, ok := c.jobs[id]
	if !ok {
		return JobStatus{}, false
	}
	return j.status(), true
}

// Jobs returns every job's status, ordered by numeric ID.
func (c *Coordinator) Jobs() []JobStatus {
	c.mu.Lock()
	out := make([]JobStatus, 0, len(c.jobs))
	for _, j := range c.jobs {
		out = append(out, j.status())
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if len(out[i].ID) != len(out[k].ID) {
			return len(out[i].ID) < len(out[k].ID)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// Workers returns the worker registry with liveness, ordered by ID.
func (c *Coordinator) Workers() []WorkerStatus {
	now := c.cfg.now()
	c.mu.Lock()
	out := make([]WorkerStatus, 0, len(c.workers))
	for _, w := range c.workers {
		out = append(out, WorkerStatus{
			ID:                w.id,
			Name:              w.name,
			Addr:              w.addr,
			Alive:             now.Sub(w.lastSeen) <= c.cfg.DeadAfter,
			ShardsDone:        w.shardsDone,
			LastSeenMillisAgo: now.Sub(w.lastSeen).Milliseconds(),
		})
	}
	c.mu.Unlock()
	sort.Slice(out, func(i, k int) bool {
		if len(out[i].ID) != len(out[k].ID) {
			return len(out[i].ID) < len(out[k].ID)
		}
		return out[i].ID < out[k].ID
	})
	return out
}

// AliveWorkers counts workers within the liveness window.
func (c *Coordinator) AliveWorkers() int {
	n := 0
	for _, w := range c.Workers() {
		if w.Alive {
			n++
		}
	}
	return n
}

// publishAlive refreshes the liveness gauge.
func (c *Coordinator) publishAlive() {
	if c.workersAlive == nil {
		return
	}
	c.workersAlive.Set(float64(c.AliveWorkers()))
}

// Register wires the coordinator's HTTP surface onto mux:
//
//	POST /v1/fleet/join            worker registration
//	POST /v1/fleet/heartbeat       worker liveness
//	POST /v1/fleet/poll            pull one shard assignment
//	POST /v1/fleet/complete        report one shard result
//	POST /v1/fleet/campaigns       submit a campaign to shard across the fleet
//	GET  /v1/fleet/campaigns       all fleet jobs
//	GET  /v1/fleet/campaigns/{id}  one job with merged counts + CI
//	GET  /v1/fleet/workers         worker registry with liveness
func (c *Coordinator) Register(mux *http.ServeMux) {
	mux.HandleFunc("POST /v1/fleet/join", func(w http.ResponseWriter, r *http.Request) {
		var req JoinRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeFleetJSON(w, http.StatusOK, c.Join(req))
	})
	mux.HandleFunc("POST /v1/fleet/heartbeat", func(w http.ResponseWriter, r *http.Request) {
		var req HeartbeatRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		writeFleetJSON(w, http.StatusOK, c.Heartbeat(req))
	})
	mux.HandleFunc("POST /v1/fleet/poll", func(w http.ResponseWriter, r *http.Request) {
		var req PollRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		resp, err := c.Poll(req)
		if err != nil {
			writeFleetError(w, http.StatusGone, err)
			return
		}
		writeFleetJSON(w, http.StatusOK, resp)
	})
	mux.HandleFunc("POST /v1/fleet/complete", func(w http.ResponseWriter, r *http.Request) {
		var req CompleteRequest
		if !decodeJSON(w, r, &req) {
			return
		}
		if err := c.Complete(req); err != nil {
			writeFleetError(w, http.StatusBadRequest, err)
			return
		}
		writeFleetJSON(w, http.StatusOK, map[string]bool{"ok": true})
	})
	mux.HandleFunc("POST /v1/fleet/campaigns", func(w http.ResponseWriter, r *http.Request) {
		var spec CampaignSpec
		if !decodeJSON(w, r, &spec) {
			return
		}
		st, err := c.Submit(spec)
		if err != nil {
			writeFleetError(w, http.StatusBadRequest, err)
			return
		}
		writeFleetJSON(w, http.StatusAccepted, st)
	})
	mux.HandleFunc("GET /v1/fleet/campaigns", func(w http.ResponseWriter, r *http.Request) {
		writeFleetJSON(w, http.StatusOK, map[string]any{"campaigns": c.Jobs()})
	})
	mux.HandleFunc("GET /v1/fleet/campaigns/{id}", func(w http.ResponseWriter, r *http.Request) {
		st, ok := c.Job(r.PathValue("id"))
		if !ok {
			writeFleetError(w, http.StatusNotFound,
				fmt.Errorf("no fleet campaign %q", r.PathValue("id")))
			return
		}
		writeFleetJSON(w, http.StatusOK, st)
	})
	mux.HandleFunc("GET /v1/fleet/workers", func(w http.ResponseWriter, r *http.Request) {
		writeFleetJSON(w, http.StatusOK, map[string]any{"workers": c.Workers()})
	})
}

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	if err := json.NewDecoder(r.Body).Decode(v); err != nil {
		writeFleetError(w, http.StatusBadRequest, fmt.Errorf("malformed request body: %w", err))
		return false
	}
	return true
}

func writeFleetJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeFleetError(w http.ResponseWriter, status int, err error) {
	writeFleetJSON(w, status, map[string]string{"error": err.Error()})
}
