package fleet

// DefaultShardRuns is the shard size used when a spec leaves ShardRuns 0:
// small enough that a 1000-run paper campaign spreads across a handful of
// workers with stealable slack, large enough that per-shard overhead
// (checkpoint lookup, HTTP round trip, store publish) stays amortized.
const DefaultShardRuns = 125

// SplitShards cuts the spec's run range [0, Runs) into contiguous shards
// of at most shardRuns runs (the last shard takes the remainder). The
// split is purely a scheduling decision: run i's random stream depends
// only on (Seed, i), so every split of the same spec merges to the same
// result. shardRuns <= 0 selects DefaultShardRuns.
func SplitShards(jobID string, spec CampaignSpec, shardRuns int) []Shard {
	if spec.Runs <= 0 {
		return nil
	}
	if shardRuns <= 0 {
		shardRuns = DefaultShardRuns
	}
	shards := make([]Shard, 0, (spec.Runs+shardRuns-1)/shardRuns)
	for start := 0; start < spec.Runs; start += shardRuns {
		end := start + shardRuns
		if end > spec.Runs {
			end = spec.Runs
		}
		shards = append(shards, Shard{
			JobID: jobID,
			Index: len(shards),
			Spec:  spec,
			Start: start,
			End:   end,
		})
	}
	return shards
}
