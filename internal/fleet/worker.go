package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// ShardRunner executes one shard: the run-index range [shard.Start,
// shard.End) of the campaign shard.Spec describes. Implementations must be
// deterministic in the spec and range (the fabric's byte-identity contract
// rests on it) and should honour ctx so a killed worker stops promptly.
// The returned store key, when non-empty, names where the result was
// published in the content-addressed store.
type ShardRunner func(ctx context.Context, shard Shard) (Counts, string, error)

// WorkerConfig wires a worker to its coordinator.
type WorkerConfig struct {
	// Coordinator is the coordinator's base URL (e.g. "http://host:8080").
	Coordinator string
	// Name labels the worker in the coordinator's registry.
	Name string
	// Addr, when non-empty, is the worker's own HTTP address (health and
	// metrics), recorded by the coordinator for operators.
	Addr string
	// Run executes shards. Required.
	Run ShardRunner
	// Client is the HTTP client used for all coordinator calls
	// (nil = a client with a 30 s timeout).
	Client *http.Client
	// IdleWait bounds how long the worker sleeps when the coordinator has
	// no work, if the coordinator does not say (default 500 ms).
	IdleWait time.Duration
	// Telemetry, when non-nil, receives the worker-side shard counters.
	Telemetry *telemetry.Registry
}

// WorkerHealth is a worker's self-report, served by the daemon's
// worker-mode /healthz.
type WorkerHealth struct {
	// ID is the coordinator-assigned identity ("" before a join).
	ID string `json:"id"`
	// Coordinator is the control plane URL.
	Coordinator string `json:"coordinator"`
	// ShardsDone and ShardsFailed count this worker's completed and failed
	// shard executions.
	ShardsDone   int `json:"shards_done"`
	ShardsFailed int `json:"shards_failed"`
	// Current is the shard being executed right now, nil when idle.
	Current *Shard `json:"current,omitempty"`
	// Draining reports that shutdown started and the worker is finishing
	// its current shard before leaving.
	Draining bool `json:"draining"`
}

// Worker is the fleet's execution side: it joins a coordinator, polls for
// shards, executes them through the configured ShardRunner, and streams
// results back. One Worker runs one shard at a time — process-level
// parallelism comes from running more workers.
type Worker struct {
	cfg    WorkerConfig
	client *http.Client

	// hardCtx aborts in-flight shard execution (Kill); the Run ctx only
	// stops new work (graceful drain).
	hardCtx  context.Context
	hardStop context.CancelFunc

	mu       sync.Mutex
	id       string
	current  *Shard
	done     int
	failed   int
	draining bool

	shardsRun    *telemetry.CounterVec // dcrm_fleet_worker_shards_total{state}
	shardSeconds *telemetry.Histogram
}

// NewWorker builds a worker (no network traffic until Run).
func NewWorker(cfg WorkerConfig) (*Worker, error) {
	if cfg.Coordinator == "" {
		return nil, fmt.Errorf("fleet: worker needs a coordinator URL")
	}
	if cfg.Run == nil {
		return nil, fmt.Errorf("fleet: worker needs a shard runner")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{Timeout: 30 * time.Second}
	}
	if cfg.IdleWait <= 0 {
		cfg.IdleWait = 500 * time.Millisecond
	}
	hardCtx, hardStop := context.WithCancel(context.Background())
	w := &Worker{cfg: cfg, client: cfg.Client, hardCtx: hardCtx, hardStop: hardStop}
	if reg := cfg.Telemetry; reg != nil {
		w.shardsRun = reg.CounterVec("dcrm_fleet_worker_shards_total",
			"Shards this worker executed, by final state.", "state")
		w.shardSeconds = reg.Histogram("dcrm_fleet_worker_shard_seconds",
			"Shard execution durations in seconds.", telemetry.DefBuckets)
	}
	return w, nil
}

// Kill aborts the worker immediately: the in-flight shard's context is
// cancelled and the loop exits without completing it — the test double of
// a crashed host. The coordinator notices through missed heartbeats and
// reassigns the abandoned shard.
func (w *Worker) Kill() { w.hardStop() }

// Health snapshots the worker's self-report.
func (w *Worker) Health() WorkerHealth {
	w.mu.Lock()
	defer w.mu.Unlock()
	h := WorkerHealth{
		ID:           w.id,
		Coordinator:  w.cfg.Coordinator,
		ShardsDone:   w.done,
		ShardsFailed: w.failed,
		Draining:     w.draining,
	}
	if w.current != nil {
		sh := *w.current
		h.Current = &sh
	}
	return h
}

// Run joins the coordinator and processes shards until ctx is cancelled.
// Cancellation is graceful: the worker finishes (drains) its current
// shard, reports the result, and returns nil. Kill aborts instead. A
// coordinator that stops recognizing the worker (restart) triggers a
// rejoin.
func (w *Worker) Run(ctx context.Context) error {
	join, err := w.join()
	if err != nil {
		return err
	}
	heartbeatEvery := time.Duration(join.HeartbeatMillis) * time.Millisecond
	if heartbeatEvery <= 0 {
		heartbeatEvery = 2 * time.Second
	}

	// Heartbeats run on their own goroutine so a long shard never misses
	// the liveness window. They stop when Run returns or Kill fires.
	hbCtx, hbStop := context.WithCancel(w.hardCtx)
	defer hbStop()
	go w.heartbeatLoop(hbCtx, heartbeatEvery)

	// Surface the drain window on Health: graceful cancellation flips the
	// flag while the current shard (if any) runs to completion.
	go func() {
		select {
		case <-ctx.Done():
			w.mu.Lock()
			w.draining = true
			w.mu.Unlock()
		case <-hbCtx.Done():
		}
	}()

	for {
		select {
		case <-w.hardCtx.Done():
			return w.hardCtx.Err()
		default:
		}
		if ctx.Err() != nil {
			// Graceful shutdown: no current shard is in flight at the top of
			// the loop, so there is nothing to drain — just leave.
			return nil
		}
		resp, err := w.poll()
		if err != nil {
			// A coordinator that no longer recognizes this worker (it
			// restarted) rejects the poll; rejoining restores an identity.
			// Transport errors back off before retrying.
			if _, jerr := w.join(); jerr != nil {
				w.sleep(ctx, w.cfg.IdleWait)
			}
			continue
		}
		if resp.Shard == nil {
			wait := time.Duration(resp.WaitMillis) * time.Millisecond
			if wait <= 0 {
				wait = w.cfg.IdleWait
			}
			w.sleep(ctx, wait)
			continue
		}
		// Execute under hardCtx (not ctx): a graceful shutdown arriving
		// mid-shard lets the shard drain to completion before the loop
		// exits above.
		w.runShard(*resp.Shard)
	}
}

// runShard executes one shard and reports its result.
func (w *Worker) runShard(sh Shard) {
	w.mu.Lock()
	w.current = &sh
	w.mu.Unlock()
	start := time.Now()
	counts, storeKey, err := w.cfg.Run(w.hardCtx, sh)
	elapsed := time.Since(start)

	w.mu.Lock()
	w.current = nil
	if err != nil {
		w.failed++
	} else {
		w.done++
	}
	w.mu.Unlock()

	if w.shardSeconds != nil {
		w.shardSeconds.Observe(elapsed.Seconds())
	}
	if w.hardCtx.Err() != nil {
		// Killed mid-shard: report nothing, like a crashed host. The
		// coordinator reassigns the shard after the liveness window.
		return
	}
	req := CompleteRequest{
		WorkerID: w.workerID(),
		JobID:    sh.JobID,
		Index:    sh.Index,
		Counts:   counts,
		StoreKey: storeKey,
	}
	state := "done"
	if err != nil {
		req.Err = err.Error()
		state = "failed"
	}
	if w.shardsRun != nil {
		w.shardsRun.With(state).Inc()
	}
	// Completion is best-effort: a lost report is equivalent to a crash
	// right after execution, and the lease/steal machinery re-runs the
	// shard (deterministically, so no result skew).
	_ = w.post("/v1/fleet/complete", req, &struct{}{})
}

// heartbeatLoop reports liveness until its context stops.
func (w *Worker) heartbeatLoop(ctx context.Context, every time.Duration) {
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-t.C:
			var resp HeartbeatResponse
			if err := w.post("/v1/fleet/heartbeat", HeartbeatRequest{WorkerID: w.workerID()}, &resp); err != nil {
				continue
			}
			if !resp.Known {
				// Coordinator restarted: rejoin under a fresh identity.
				w.join()
			}
		}
	}
}

// join registers (or re-registers) with the coordinator.
func (w *Worker) join() (JoinResponse, error) {
	var resp JoinResponse
	err := w.post("/v1/fleet/join", JoinRequest{Name: w.cfg.Name, Addr: w.cfg.Addr}, &resp)
	if err != nil {
		return JoinResponse{}, fmt.Errorf("fleet: join %s: %w", w.cfg.Coordinator, err)
	}
	w.mu.Lock()
	w.id = resp.WorkerID
	w.mu.Unlock()
	return resp, nil
}

// poll asks the coordinator for one shard.
func (w *Worker) poll() (PollResponse, error) {
	var resp PollResponse
	if err := w.post("/v1/fleet/poll", PollRequest{WorkerID: w.workerID()}, &resp); err != nil {
		return PollResponse{}, err
	}
	return resp, nil
}

// workerID reads the current coordinator-assigned identity.
func (w *Worker) workerID() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.id
}

// sleep waits for d, cut short by either context; it reports false when a
// shutdown (graceful or hard) interrupted the wait.
func (w *Worker) sleep(ctx context.Context, d time.Duration) bool {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	case <-w.hardCtx.Done():
		return false
	}
}

// post is the worker's JSON round trip helper.
func (w *Worker) post(path string, body, out any) error {
	payload, err := json.Marshal(body)
	if err != nil {
		return err
	}
	req, err := http.NewRequestWithContext(w.hardCtx, http.MethodPost,
		w.cfg.Coordinator+path, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		return fmt.Errorf("fleet: %s: HTTP %d: %s", path, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
