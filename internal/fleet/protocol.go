// Package fleet is the distributed campaign fabric: a coordinator that
// shards fault-injection campaigns into run-index ranges and a worker
// loop that executes them, speaking a small JSON-over-HTTP protocol.
//
// The design recreates the methodology of "Hard Data on Soft Errors"
// (which ran its GPGPU error study across ~20,000 Folding@home hosts) at
// library scale: a campaign of N runs is split into shards — contiguous
// run-index ranges — and because every run's random stream is derived
// deterministically from (seed, run index), any shard split merged back
// together is byte-identical to the single-process campaign. The
// coordinator hands shards to workers on a pull basis (workers poll when
// idle), tracks worker liveness through heartbeats, steals shards back
// from stragglers and dead workers, and merges the binomial outcome
// counts workers stream back into incremental confidence intervals.
//
// The package is deliberately independent of the experiment layer: the
// coordinator schedules opaque CampaignSpecs and workers execute them
// through a caller-supplied ShardRunner. internal/experiments provides
// the production runner (RunShard), which reuses campaign checkpoints and
// publishes shard results under content-addressed store keys so a
// restarted worker — or any peer sharing the disk store — fetches instead
// of recomputes.
package fleet

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/fault"
)

// CampaignSpec identifies one campaign cell — everything a worker needs
// to reconstruct the exact single-process campaign it is sharding. All
// fields are part of the result's identity: two specs that differ in any
// field are different campaigns (and different store keys).
type CampaignSpec struct {
	// App is the application name (e.g. "P-BICG").
	App string `json:"app"`
	// Scheme is the protection scheme: "none", "detection", or
	// "correction".
	Scheme string `json:"scheme"`
	// Level is the cumulative protected-object count (0 = unprotected).
	Level int `json:"level"`
	// Space selects the injection block space: "hot" or "rest" (the
	// Fig. 6 hot-object division) or "miss" (the Fig. 9 miss-weighted
	// whole-space selector).
	Space string `json:"space"`
	// Model is a fault-model registry spec, e.g. "stuck-at:bits=2,blocks=1"
	// (see docs/FAULT-MODELS.md).
	Model string `json:"model"`
	// Runs is the total campaign run count being sharded.
	Runs int `json:"runs"`
	// Seed derives every run's random stream from (Seed, run index).
	Seed int64 `json:"seed"`
	// ShardRuns is the target shard size in runs (0 = the coordinator's
	// default). The split never changes results, only scheduling grain.
	ShardRuns int `json:"shard_runs,omitempty"`
	// Batch is the worker-side campaign batch size: how many runs one
	// claim replays per functional pass (0 = the runner's default;
	// 1 disables batching; negative is rejected at submission). Outcomes
	// are byte-identical at any batch size, but the value is part of the
	// spec identity, so differently batched shard results never share a
	// store key.
	Batch int `json:"batch,omitempty"`
}

// String renders the spec compactly for logs and errors.
func (s CampaignSpec) String() string {
	return fmt.Sprintf("%s/%s/L%d/%s/%s runs=%d seed=%d",
		s.App, s.Scheme, s.Level, s.Space, s.Model, s.Runs, s.Seed)
}

// Shard is one schedulable unit: the run-index range [Start, End) of the
// campaign Spec describes.
type Shard struct {
	// JobID names the coordinator job the shard belongs to.
	JobID string `json:"job_id"`
	// Index is the shard's position in the job's deterministic split.
	Index int `json:"index"`
	// Spec is the full campaign the shard is a slice of.
	Spec CampaignSpec `json:"spec"`
	// Start and End bound the shard's run indices: [Start, End).
	Start int `json:"start"`
	End   int `json:"end"`
}

// Counts are the binomial outcome tallies of one shard (or one merged
// campaign) — the payload workers stream back to the coordinator.
type Counts struct {
	Runs     int `json:"runs"`
	Masked   int `json:"masked"`
	SDC      int `json:"sdc"`
	Detected int `json:"detected"`
	Crashed  int `json:"crashed"`
	DUE      int `json:"due"`
}

// CountsFromResult converts a campaign result into wire counts.
func CountsFromResult(r fault.Result) Counts {
	return Counts{
		Runs:     r.Runs,
		Masked:   r.MaskedRuns,
		SDC:      r.SDCRuns,
		Detected: r.DetectedRuns,
		Crashed:  r.CrashedRuns,
		DUE:      r.DUERuns,
	}
}

// Result converts wire counts back into a campaign result, so merged
// fleet output can be compared (byte for byte) with the single-process
// path and fed to the existing confidence-interval helpers.
func (c Counts) Result() fault.Result {
	return fault.Result{
		Runs:         c.Runs,
		MaskedRuns:   c.Masked,
		SDCRuns:      c.SDC,
		DetectedRuns: c.Detected,
		CrashedRuns:  c.Crashed,
		DUERuns:      c.DUE,
	}
}

// Add accumulates other into c (the coordinator's incremental merge).
func (c *Counts) Add(other Counts) {
	c.Runs += other.Runs
	c.Masked += other.Masked
	c.SDC += other.SDC
	c.Detected += other.Detected
	c.Crashed += other.Crashed
	c.DUE += other.DUE
}

// JoinRequest registers a worker with the coordinator.
type JoinRequest struct {
	// Name is a human-readable worker label (host:port or a test name).
	Name string `json:"name"`
	// Addr, when non-empty, is the worker's own HTTP address (its
	// /healthz), recorded for operators; the protocol itself is pull-based
	// and never dials workers.
	Addr string `json:"addr,omitempty"`
}

// JoinResponse assigns the worker its identity and cadence.
type JoinResponse struct {
	WorkerID string `json:"worker_id"`
	// HeartbeatMillis is how often the worker must heartbeat; missing
	// several in a row marks it dead and frees its shards for stealing.
	HeartbeatMillis int `json:"heartbeat_millis"`
}

// HeartbeatRequest reports a worker as alive.
type HeartbeatRequest struct {
	WorkerID string `json:"worker_id"`
}

// HeartbeatResponse acknowledges a heartbeat. Known=false tells a worker
// the coordinator no longer recognizes it (a coordinator restart): the
// worker must rejoin before polling again.
type HeartbeatResponse struct {
	Known bool `json:"known"`
}

// PollRequest asks for work.
type PollRequest struct {
	WorkerID string `json:"worker_id"`
}

// PollResponse carries at most one shard assignment. A nil Shard means no
// work is available; the worker should poll again after WaitMillis.
type PollResponse struct {
	Shard      *Shard `json:"shard,omitempty"`
	WaitMillis int    `json:"wait_millis,omitempty"`
}

// CompleteRequest reports one shard's outcome. Err non-empty means the
// shard failed on this worker; the coordinator re-queues it (bounded by
// its retry budget).
type CompleteRequest struct {
	WorkerID string `json:"worker_id"`
	JobID    string `json:"job_id"`
	Index    int    `json:"index"`
	Counts   Counts `json:"counts"`
	// StoreKey, when non-empty, is the content-addressed store key the
	// worker published the shard result under, so peers sharing a disk
	// store fetch instead of recompute.
	StoreKey string `json:"store_key,omitempty"`
	Err      string `json:"err,omitempty"`
}

// JobState is the lifecycle of a fleet campaign job.
type JobState string

// Job states.
const (
	JobRunning JobState = "running"
	JobDone    JobState = "done"
	JobFailed  JobState = "failed"
)

// JobStatus is the coordinator's view of one sharded campaign, served
// from GET /v1/fleet/campaigns/{id} and updated incrementally as shards
// complete.
type JobStatus struct {
	ID    string       `json:"id"`
	Spec  CampaignSpec `json:"spec"`
	State JobState     `json:"state"`
	Error string       `json:"error,omitempty"`
	// ShardsTotal/Done/Pending/Assigned decompose scheduling progress.
	ShardsTotal    int `json:"shards_total"`
	ShardsDone     int `json:"shards_done"`
	ShardsPending  int `json:"shards_pending"`
	ShardsAssigned int `json:"shards_assigned"`
	// Merged accumulates completed shards' counts. While the job runs it
	// covers only the completed run indices; once done it is byte-identical
	// to the single-process campaign result.
	Merged Counts `json:"merged"`
	// SDCRate and SDCHalfWidth are the running binomial estimate over the
	// merged runs: the 95% normal-approximation confidence interval
	// tightens live as shards stream in.
	SDCRate      float64 `json:"sdc_rate"`
	SDCHalfWidth float64 `json:"sdc_half_width"`
}

// WorkerStatus is one row of GET /v1/fleet/workers.
type WorkerStatus struct {
	ID   string `json:"id"`
	Name string `json:"name"`
	Addr string `json:"addr,omitempty"`
	// Alive reports whether the worker heartbeat within the liveness
	// window.
	Alive bool `json:"alive"`
	// ShardsDone counts shards this worker completed successfully.
	ShardsDone int `json:"shards_done"`
	// LastSeenMillisAgo is the age of the last heartbeat or poll.
	LastSeenMillisAgo int64 `json:"last_seen_millis_ago"`
}
