package fleet

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

func TestSplitShardsCoversRangeExactly(t *testing.T) {
	for _, tc := range []struct {
		runs, shardRuns int
		wantShards      int
	}{
		{1000, 125, 8},
		{1000, 0, 8},   // default shard size
		{1000, 300, 4}, // remainder shard
		{5, 125, 1},
		{7, 3, 3},
		{0, 10, 0},
	} {
		spec := CampaignSpec{App: "P-BICG", Runs: tc.runs}
		shards := SplitShards("job-1", spec, tc.shardRuns)
		if len(shards) != tc.wantShards {
			t.Errorf("SplitShards(runs=%d, shard=%d) = %d shards, want %d",
				tc.runs, tc.shardRuns, len(shards), tc.wantShards)
		}
		next := 0
		for i, sh := range shards {
			if sh.Index != i {
				t.Errorf("shard %d has index %d", i, sh.Index)
			}
			if sh.Start != next {
				t.Errorf("shard %d starts at %d, want %d (gap or overlap)", i, sh.Start, next)
			}
			if sh.End <= sh.Start {
				t.Errorf("shard %d has empty range [%d, %d)", i, sh.Start, sh.End)
			}
			next = sh.End
		}
		if next != tc.runs {
			t.Errorf("split of %d runs covers only [0, %d)", tc.runs, next)
		}
	}
}

func TestCountsRoundTripAndMerge(t *testing.T) {
	r := fault.Result{Runs: 10, MaskedRuns: 4, SDCRuns: 3, DetectedRuns: 1, CrashedRuns: 1, DUERuns: 1}
	if got := CountsFromResult(r).Result(); got != r {
		t.Fatalf("round trip = %+v, want %+v", got, r)
	}
	var merged Counts
	merged.Add(CountsFromResult(r))
	merged.Add(CountsFromResult(r))
	if merged.Runs != 20 || merged.SDC != 6 {
		t.Fatalf("merge = %+v", merged)
	}
}

// fakeClock is a manually advanced time source.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func newTestCoordinator(t *testing.T, reg *telemetry.Registry) (*Coordinator, *fakeClock) {
	t.Helper()
	clk := &fakeClock{t: time.Unix(1000, 0)}
	return NewCoordinator(CoordinatorConfig{
		HeartbeatEvery: time.Second,
		DeadAfter:      3 * time.Second,
		LeaseFor:       10 * time.Second,
		MaxAttempts:    3,
		Telemetry:      reg,
		now:            clk.now,
	}), clk
}

func spec(runs, shardRuns int) CampaignSpec {
	return CampaignSpec{
		App: "P-BICG", Scheme: "none", Space: "hot",
		Model: "stuck-at:bits=2,blocks=1", Runs: runs, Seed: 7, ShardRuns: shardRuns,
	}
}

// complete reports shard sh done with one masked run per index.
func complete(t *testing.T, c *Coordinator, workerID string, sh Shard) {
	t.Helper()
	n := sh.End - sh.Start
	err := c.Complete(CompleteRequest{
		WorkerID: workerID, JobID: sh.JobID, Index: sh.Index,
		Counts: Counts{Runs: n, Masked: n},
	})
	if err != nil {
		t.Fatalf("complete shard %d: %v", sh.Index, err)
	}
}

func TestCoordinatorSchedulesAndMerges(t *testing.T) {
	c, _ := newTestCoordinator(t, nil)
	w := c.Join(JoinRequest{Name: "w1"})
	job, err := c.Submit(spec(10, 4)) // shards: [0,4) [4,8) [8,10)
	if err != nil {
		t.Fatal(err)
	}
	if job.ShardsTotal != 3 || job.State != JobRunning {
		t.Fatalf("submitted job = %+v", job)
	}
	seen := 0
	for {
		resp, err := c.Poll(PollRequest{WorkerID: w.WorkerID})
		if err != nil {
			t.Fatal(err)
		}
		if resp.Shard == nil {
			break
		}
		seen++
		complete(t, c, w.WorkerID, *resp.Shard)
	}
	if seen != 3 {
		t.Fatalf("polled %d shards, want 3", seen)
	}
	st, ok := c.Job(job.ID)
	if !ok || st.State != JobDone {
		t.Fatalf("job after completion = %+v", st)
	}
	if st.Merged.Runs != 10 || st.Merged.Masked != 10 {
		t.Fatalf("merged counts = %+v", st.Merged)
	}
	if st.SDCRate != 0 {
		t.Fatalf("SDC rate = %v, want 0", st.SDCRate)
	}
}

func TestCoordinatorStealsFromDeadWorker(t *testing.T) {
	reg := telemetry.NewRegistry()
	c, clk := newTestCoordinator(t, reg)
	dead := c.Join(JoinRequest{Name: "dead"})
	job, err := c.Submit(spec(8, 4)) // 2 shards
	if err != nil {
		t.Fatal(err)
	}

	// The doomed worker takes the first shard and then goes silent.
	resp, err := c.Poll(PollRequest{WorkerID: dead.WorkerID})
	if err != nil || resp.Shard == nil {
		t.Fatalf("dead worker got no shard: %v %+v", err, resp)
	}
	abandoned := *resp.Shard

	// A healthy worker drains the queue, but cannot steal while the dead
	// worker is still within its liveness window and lease.
	alive := c.Join(JoinRequest{Name: "alive"})
	resp, err = c.Poll(PollRequest{WorkerID: alive.WorkerID})
	if err != nil || resp.Shard == nil {
		t.Fatal("healthy worker should get the second pending shard")
	}
	complete(t, c, alive.WorkerID, *resp.Shard)
	resp, _ = c.Poll(PollRequest{WorkerID: alive.WorkerID})
	if resp.Shard != nil {
		t.Fatalf("stole shard %d before the liveness window expired", resp.Shard.Index)
	}

	// Past the liveness window the abandoned shard becomes stealable.
	clk.advance(4 * time.Second)
	resp, err = c.Poll(PollRequest{WorkerID: alive.WorkerID})
	if err != nil || resp.Shard == nil {
		t.Fatal("expected to steal the dead worker's shard")
	}
	if resp.Shard.Index != abandoned.Index {
		t.Fatalf("stole shard %d, want abandoned shard %d", resp.Shard.Index, abandoned.Index)
	}
	complete(t, c, alive.WorkerID, *resp.Shard)

	st, _ := c.Job(job.ID)
	if st.State != JobDone || st.Merged.Runs != 8 {
		t.Fatalf("job after steal = %+v", st)
	}
	snap := reg.Snapshot()
	if got := counterValue(t, snap, "dcrm_fleet_shards_stolen_total"); got != 1 {
		t.Fatalf("stolen counter = %v, want 1", got)
	}

	// Liveness: one worker alive, one dead.
	workers := c.Workers()
	aliveN := 0
	for _, ws := range workers {
		if ws.Alive {
			aliveN++
		}
	}
	if len(workers) != 2 || aliveN != 1 {
		t.Fatalf("workers = %+v, want 2 with 1 alive", workers)
	}
}

func TestCoordinatorStealsExpiredLease(t *testing.T) {
	c, clk := newTestCoordinator(t, nil)
	slow := c.Join(JoinRequest{Name: "slow"})
	fast := c.Join(JoinRequest{Name: "fast"})
	if _, err := c.Submit(spec(4, 4)); err != nil { // single shard
		t.Fatal(err)
	}
	resp, _ := c.Poll(PollRequest{WorkerID: slow.WorkerID})
	if resp.Shard == nil {
		t.Fatal("straggler should get the shard")
	}
	// The straggler keeps heartbeating (alive) but never finishes; once
	// its lease expires the shard is stealable anyway.
	clk.advance(11 * time.Second)
	c.Heartbeat(HeartbeatRequest{WorkerID: slow.WorkerID})
	resp2, _ := c.Poll(PollRequest{WorkerID: fast.WorkerID})
	if resp2.Shard == nil || resp2.Shard.Index != resp.Shard.Index {
		t.Fatalf("expected lease steal, got %+v", resp2)
	}

	// First completion wins; the straggler's late duplicate is ignored.
	complete(t, c, fast.WorkerID, *resp2.Shard)
	complete(t, c, slow.WorkerID, *resp.Shard)
	st, _ := c.Job(resp.Shard.JobID)
	if st.Merged.Runs != 4 {
		t.Fatalf("duplicate completion double-counted: %+v", st.Merged)
	}
}

func TestCoordinatorRetriesFailedShardAndFailsJobAtBudget(t *testing.T) {
	c, _ := newTestCoordinator(t, nil) // MaxAttempts: 3
	w := c.Join(JoinRequest{Name: "w"})
	job, err := c.Submit(spec(4, 4))
	if err != nil {
		t.Fatal(err)
	}
	for attempt := 0; attempt < 3; attempt++ {
		resp, err := c.Poll(PollRequest{WorkerID: w.WorkerID})
		if err != nil || resp.Shard == nil {
			t.Fatalf("attempt %d: no shard (%v)", attempt, err)
		}
		if err := c.Complete(CompleteRequest{
			WorkerID: w.WorkerID, JobID: resp.Shard.JobID, Index: resp.Shard.Index,
			Err: "synthetic shard failure",
		}); err != nil {
			t.Fatal(err)
		}
	}
	// The budget is exhausted: the next poll must not hand the shard out
	// again, and the job fails.
	resp, err := c.Poll(PollRequest{WorkerID: w.WorkerID})
	if err != nil || resp.Shard != nil {
		t.Fatalf("poll after budget exhaustion = %+v (%v)", resp, err)
	}
	st, _ := c.Job(job.ID)
	if st.State != JobFailed || st.Error == "" {
		t.Fatalf("job after exhausted retries = %+v", st)
	}
}

func TestCoordinatorRejectsBadSubmissionsAndCompletions(t *testing.T) {
	c, _ := newTestCoordinator(t, nil)
	if _, err := c.Submit(CampaignSpec{App: "P-BICG"}); err == nil {
		t.Error("zero-run submission accepted")
	}
	if _, err := c.Submit(CampaignSpec{Runs: 5}); err == nil {
		t.Error("app-less submission accepted")
	}
	c.cfg.ValidateSpec = func(s CampaignSpec) error { return fmt.Errorf("vetoed") }
	if _, err := c.Submit(spec(4, 4)); err == nil {
		t.Error("ValidateSpec veto ignored")
	}
	c.cfg.ValidateSpec = nil

	if _, err := c.Poll(PollRequest{WorkerID: "worker-99"}); err == nil {
		t.Error("unknown worker polled successfully")
	}
	if err := c.Complete(CompleteRequest{JobID: "fleet-99"}); err == nil {
		t.Error("completion for unknown job accepted")
	}
	job, _ := c.Submit(spec(4, 4))
	if err := c.Complete(CompleteRequest{JobID: job.ID, Index: 7}); err == nil {
		t.Error("completion for out-of-range shard accepted")
	}
	w := c.Join(JoinRequest{Name: "w"})
	resp, _ := c.Poll(PollRequest{WorkerID: w.WorkerID})
	if err := c.Complete(CompleteRequest{
		WorkerID: w.WorkerID, JobID: resp.Shard.JobID, Index: resp.Shard.Index,
		Counts: Counts{Runs: 1, Masked: 1}, // range holds 4
	}); err == nil {
		t.Error("run-count mismatch accepted")
	}
}

// counterValue extracts one counter from a snapshot.
func counterValue(t *testing.T, snap []telemetry.Sample, name string) float64 {
	t.Helper()
	for _, s := range snap {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("no sample %q in snapshot", name)
	return 0
}
