package mem

import (
	"sync"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

// forkFixture builds a root image with a read-only input object and a
// writable output object, both initialised.
func forkFixture(t testing.TB) (*Memory, *Buffer, *Buffer) {
	t.Helper()
	m := New()
	in, err := m.Alloc("in", 512, true)
	if err != nil {
		t.Fatal(err)
	}
	out, err := m.Alloc("out", 512, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < in.Len4(); i++ {
		m.WriteF32(in.ElemAddr(i), float32(i)+0.5)
	}
	return m, in, out
}

func TestForkReadsShareRoot(t *testing.T) {
	m, in, _ := forkFixture(t)
	f := m.Fork()
	if !f.IsFork() || m.IsFork() {
		t.Fatal("IsFork misreports")
	}
	if f.Size() != m.Size() || f.TotalBlocks() != m.TotalBlocks() {
		t.Fatalf("fork geometry %d/%d != root %d/%d", f.Size(), f.TotalBlocks(), m.Size(), m.TotalBlocks())
	}
	for i := 0; i < in.Len4(); i++ {
		if got, want := f.ReadF32(in.ElemAddr(i)), m.ReadF32(in.ElemAddr(i)); got != want {
			t.Fatalf("elem %d: fork reads %v, root %v", i, got, want)
		}
	}
	if f.DirtyBlocks() != 0 || f.CopiedBlocks() != 0 {
		t.Fatalf("pure reads materialized %d blocks", f.DirtyBlocks())
	}
}

func TestForkSiblingWriteIsolation(t *testing.T) {
	m, _, out := forkFixture(t)
	a, b := m.Fork(), m.Fork()
	addr := out.ElemAddr(3)
	a.WriteF32(addr, 1.0)
	b.WriteF32(addr, 2.0)
	if got := a.ReadF32(addr); got != 1.0 {
		t.Errorf("fork a reads %v, want its own 1.0", got)
	}
	if got := b.ReadF32(addr); got != 2.0 {
		t.Errorf("fork b reads %v, want its own 2.0", got)
	}
	if got := m.ReadF32(addr); got != 0 {
		t.Errorf("root was modified through a fork: %v", got)
	}
	// The write dirtied exactly one block on each fork.
	if a.DirtyBlocks() != 1 || b.DirtyBlocks() != 1 {
		t.Errorf("dirty blocks = %d/%d, want 1/1", a.DirtyBlocks(), b.DirtyBlocks())
	}
	// Unwritten words of the written block keep the shared value.
	if got, want := a.ReadF32(out.ElemAddr(4)), m.ReadF32(out.ElemAddr(4)); got != want {
		t.Errorf("neighbour word diverged: %v vs %v", got, want)
	}
}

// TestForkGoldenImmutableUnderConcurrentWriters hammers one root from many
// forked writers; run with -race. The root's bytes must stay untouched.
func TestForkGoldenImmutableUnderConcurrentWriters(t *testing.T) {
	m, in, out := forkFixture(t)
	want := m.Clone()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := m.Fork()
			for iter := 0; iter < 50; iter++ {
				for i := 0; i < out.Len4(); i++ {
					f.WriteF32(out.ElemAddr(i), float32(g*1000+i))
				}
				if err := f.InjectStuckAt(in.ElemAddr(2*g), 0x3, true); err != nil {
					t.Error(err)
					return
				}
				_ = f.ReadF32(in.ElemAddr(2 * g))
				f.Reset()
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < m.Size(); i += arch.WordBytes {
		if got, w := m.ReadWord(arch.Addr(i)), want.ReadWord(arch.Addr(i)); got != w {
			t.Fatalf("root word %#x changed: %#x -> %#x", i, w, got)
		}
	}
	if m.FaultCount() != 0 {
		t.Fatalf("fork faults leaked into the root: %d", m.FaultCount())
	}
}

// TestForkSteadyStateZeroAllocs is the fast-path contract: once a pooled
// fork has materialized its working set, a Reset + re-dirty + read cycle
// performs no heap allocations.
func TestForkSteadyStateZeroAllocs(t *testing.T) {
	m, in, out := forkFixture(t)
	f := m.Fork()
	cycle := func() {
		f.Reset()
		if err := f.InjectStuckAt(in.ElemAddr(1), 0x5, true); err != nil {
			t.Fatal(err)
		}
		for i := 0; i < out.Len4(); i++ {
			f.WriteF32(out.ElemAddr(i), float32(i))
		}
		for i := 0; i < in.Len4(); i++ {
			_ = f.ReadF32(in.ElemAddr(i))
		}
		if f.FaultsInert() {
			t.Fatal("two effective flips on a read-only word must not be inert")
		}
	}
	cycle() // warm the arena to its steady-state capacity
	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Errorf("steady-state fork cycle allocates %v times per run, want 0", allocs)
	}
}

func TestForkCloneResolves(t *testing.T) {
	m, _, out := forkFixture(t)
	f := m.Fork()
	f.WriteF32(out.ElemAddr(0), 42)
	c := f.Clone()
	if c.IsFork() {
		t.Fatal("clone of a fork is still a fork")
	}
	if got := c.ReadF32(out.ElemAddr(0)); got != 42 {
		t.Errorf("clone lost the fork-private write: %v", got)
	}
	if got := c.ReadF32(out.ElemAddr(1)); got != 0 {
		t.Errorf("clone corrupted a shared word: %v", got)
	}
}

func TestForkAllocRejected(t *testing.T) {
	m, _, _ := forkFixture(t)
	f := m.Fork()
	if _, err := f.Alloc("x", 128, true); err == nil {
		t.Fatal("Alloc on a fork must fail")
	}
}

func TestDivergesFrom(t *testing.T) {
	m, in, out := forkFixture(t)
	golden := m.Fork()
	for i := 0; i < out.Len4(); i++ {
		golden.WriteF32(out.ElemAddr(i), float32(i)*2)
	}

	// Identical writes: no divergence.
	f := m.Fork()
	for i := 0; i < out.Len4(); i++ {
		f.WriteF32(out.ElemAddr(i), float32(i)*2)
	}
	if f.DivergesFrom(golden) {
		t.Fatal("identical forks reported divergent")
	}

	// One word off: divergent (caught via the dirty-block compare).
	f.WriteF32(out.ElemAddr(7), -1)
	if !f.DivergesFrom(golden) {
		t.Fatal("differing output word not detected")
	}

	// A block the golden run wrote but the faulty run did not: divergent.
	g := m.Fork()
	if g.DivergesFrom(golden) != true {
		t.Fatal("missing golden writes not detected")
	}

	// Fault-overlay divergence on a clean block: raw bytes equal everywhere,
	// but the overlaid word reads differently.
	h := m.Fork()
	for i := 0; i < out.Len4(); i++ {
		h.WriteF32(out.ElemAddr(i), float32(i)*2)
	}
	if err := h.InjectStuckAt(in.ElemAddr(0), 0x3, true); err != nil { // 2 flips escape SECDED
		t.Fatal(err)
	}
	if !h.DivergesFrom(golden) {
		t.Fatal("fault-overlay divergence not detected")
	}
	h.ClearFaults()
	if h.DivergesFrom(golden) {
		t.Fatal("cleared faults still divergent")
	}
}

func TestFaultsInert(t *testing.T) {
	m, in, out := forkFixture(t)
	// in holds values like 1.5, 2.5...; word bits vary. Use fixed patterns.
	m.WriteWord(in.ElemAddr(0), 0x0000_0000)
	m.WriteWord(in.ElemAddr(1), 0xFFFF_FFFF)

	cases := []struct {
		name  string
		ecc   ECCMode
		setup func(f *Memory) error
		inert bool
	}{
		{"no faults", ECCSECDED, func(f *Memory) error { return nil }, true},
		{"read-only, bits already match", ECCSECDED, func(f *Memory) error {
			return f.InjectStuckAt(in.ElemAddr(0), 0x3, false) // stuck-at-0 over zeros
		}, true},
		{"read-only, one effective flip, SECDED", ECCSECDED, func(f *Memory) error {
			return f.InjectStuckAt(in.ElemAddr(0), 0x1, true)
		}, true},
		{"read-only, one effective flip, no ECC", ECCNone, func(f *Memory) error {
			return f.InjectStuckAt(in.ElemAddr(0), 0x1, true)
		}, false},
		{"read-only, two effective flips", ECCSECDED, func(f *Memory) error {
			return f.InjectStuckAt(in.ElemAddr(0), 0x3, true)
		}, false},
		{"mixed polarity, one effective flip", ECCSECDED, func(f *Memory) error {
			// Over 0xFFFFFFFF: stuck-at-1 bits match, one stuck-at-0 flips.
			if err := f.InjectStuckAt(in.ElemAddr(1), 0x6, true); err != nil {
				return err
			}
			return f.InjectStuckAt(in.ElemAddr(1), 0x8, false)
		}, true},
		{"writable object", ECCSECDED, func(f *Memory) error {
			return f.InjectStuckAt(out.ElemAddr(0), 0x1, true) // even 1 bit: a store may re-arm it
		}, false},
		{"allocation padding", ECCSECDED, func(f *Memory) error {
			// in is 512 B = 4 full blocks; out starts at the next block. No
			// padding there, so fault the word just past out's used extent…
			// out is also full-block; instead shrink-case: fault beyond all
			// buffers is impossible (image ends). Use a padded buffer.
			return nil
		}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			f := m.Fork()
			f.SetECC(tc.ecc)
			if err := tc.setup(f); err != nil {
				t.Fatal(err)
			}
			if got := f.FaultsInert(); got != tc.inert {
				t.Errorf("FaultsInert = %v, want %v", got, tc.inert)
			}
		})
	}

	// Padding: a 4-byte object pads its block to 128 B. Padding words are
	// never written (stores are bounds-checked), so a value-matching fault
	// there is inert even though the owning object is writable — but a
	// fault that actually flips padding bits is not (wrapped out-of-bounds
	// loads can read padding).
	p := New()
	tiny, err := p.Alloc("tiny", 4, false)
	if err != nil {
		t.Fatal(err)
	}
	f := p.Fork()
	if err := f.InjectStuckAt(tiny.Base+4, 0xF, false); err != nil { // stuck-at-0 over zeros
		t.Fatal(err)
	}
	if !f.FaultsInert() {
		t.Error("value-matching padding fault should be inert")
	}
	if err := f.InjectStuckAt(tiny.Base+8, 0xF, true); err != nil { // 4 effective flips
		t.Fatal(err)
	}
	if f.FaultsInert() {
		t.Error("bit-flipping padding fault must not be inert (OOB loads can read it)")
	}
	f.ClearFaults()
	if err := f.InjectStuckAt(tiny.Base, 0x1, true); err != nil {
		t.Fatal(err)
	}
	if f.FaultsInert() {
		t.Error("fault in a writable word must not be inert")
	}
}
