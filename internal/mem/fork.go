// Copy-on-write memory forking: the campaign fast path. A fault-injection
// run dirties only a handful of 128 B blocks (its fault words' overlay is a
// read-path effect and the kernel's stores touch just the output objects),
// so sharing the golden image and copying blocks on first write replaces
// the per-run O(image) Clone with O(written state). Forks also expose the
// two primitives the campaign layer builds its pruning and classification
// on: FaultsInert (a run whose faults provably cannot alter any value read
// is bit-identical to the golden run) and DivergesFrom (streaming
// block-level comparison of two sibling forks with early exit).
package mem

import (
	"bytes"
	"errors"
	"fmt"
	"math/bits"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

// Fork returns a copy-on-write view of the root image: reads resolve to
// the shared golden bytes until a block is first written, at which point
// that 128 B block — and only it — is copied into the fork's private
// arena. The root must not be written while forks of it are alive; each
// fork is single-goroutine, but any number of forks of one root may run
// concurrently. Injected faults on the root are copied into the fork;
// faults injected on the fork never reach the root.
func (m *Memory) Fork() *Memory {
	if m.shared != nil {
		panic("mem: Fork of a fork; fork the root image instead")
	}
	f := &Memory{
		buffers:  m.buffers,
		ecc:      m.ecc,
		shared:   m.data,
		blockOff: make([]int32, m.TotalBlocks()),
	}
	for i := range f.blockOff {
		f.blockOff[i] = -1
	}
	if len(m.faults) > 0 {
		f.faults = append([]wordFault(nil), m.faults...)
	}
	return f
}

// IsFork reports whether m is a copy-on-write fork of a root image.
func (m *Memory) IsFork() bool { return m.shared != nil }

// Reset returns a fork to its just-forked state — no private blocks, no
// injected faults — while keeping the arena's capacity, so a pooled fork
// reaches a zero-allocation steady state across campaign runs.
func (m *Memory) Reset() {
	if m.shared == nil {
		panic("mem: Reset of a root memory image")
	}
	for _, b := range m.dirtyIdx {
		m.blockOff[b] = -1
	}
	m.dirtyIdx = m.dirtyIdx[:0]
	m.dirtyBuf = m.dirtyBuf[:0]
	m.faults = m.faults[:0]
}

// CopiedBlocks returns how many 128 B blocks the fork has materialized
// over its lifetime. Monotone across Reset, so pooled reuse can meter
// copy traffic by delta.
func (m *Memory) CopiedBlocks() uint64 { return m.copied }

// DirtyBlocks returns how many blocks are currently materialized.
func (m *Memory) DirtyBlocks() int { return len(m.dirtyIdx) }

// materialize copies one shared block into the private arena and returns
// its arena offset. Appends reuse capacity retained across Reset.
func (m *Memory) materialize(block int) int32 {
	off := int32(len(m.dirtyBuf))
	base := block * arch.BlockBytes
	m.dirtyBuf = append(m.dirtyBuf, m.shared[base:base+arch.BlockBytes]...)
	m.blockOff[block] = off
	m.dirtyIdx = append(m.dirtyIdx, int32(block))
	m.copied++
	return off
}

// SnapshotBlocks exports the fork's private state as a delta against the
// shared root image: the materialized block indices in first-write order
// and their raw 128 B contents, concatenated in the same order. The
// returned slices are copies, safe to retain and serialize after the fork
// is reset or released. Together with RestoreBlocks this round-trips a
// fault-free post-run fork (e.g. the golden post image) through a byte
// encoding: the restored fork resolves every word identically and carries
// the identical dirty-block ordering.
func (m *Memory) SnapshotBlocks() (idx []int32, data []byte) {
	if m.shared == nil {
		panic("mem: SnapshotBlocks of a root memory image")
	}
	if len(m.dirtyIdx) == 0 {
		return nil, nil
	}
	idx = append([]int32(nil), m.dirtyIdx...)
	data = append([]byte(nil), m.dirtyBuf...)
	return idx, data
}

// RestoreBlocks replays a SnapshotBlocks delta onto a clean fork,
// materializing each block in the recorded first-write order and
// overwriting its contents. The fork must be freshly forked (or Reset) from
// the same root image the snapshot was taken against; injected faults are
// not part of the delta.
func (m *Memory) RestoreBlocks(idx []int32, data []byte) error {
	if m.shared == nil {
		return errors.New("mem: RestoreBlocks on a root memory image")
	}
	if len(m.dirtyIdx) != 0 || len(m.faults) != 0 {
		return errors.New("mem: RestoreBlocks on a non-clean fork")
	}
	if len(data) != len(idx)*arch.BlockBytes {
		return fmt.Errorf("mem: RestoreBlocks delta mismatch: %d blocks, %d bytes", len(idx), len(data))
	}
	total := int32(m.TotalBlocks())
	for i, b := range idx {
		if b < 0 || b >= total {
			return fmt.Errorf("mem: RestoreBlocks block %d out of range [0,%d)", b, total)
		}
		if m.blockOff[b] >= 0 {
			return fmt.Errorf("mem: RestoreBlocks duplicate block %d", b)
		}
		off := m.materialize(int(b))
		copy(m.dirtyBuf[off:off+arch.BlockBytes], data[i*arch.BlockBytes:])
	}
	return nil
}

// blockBytes returns the backing bytes of one 128 B block without copying
// and without the fault overlay.
func (m *Memory) blockBytes(block int) []byte {
	if m.shared != nil {
		if off := m.blockOff[block]; off >= 0 {
			return m.dirtyBuf[off : off+arch.BlockBytes]
		}
		return m.shared[block*arch.BlockBytes : (block+1)*arch.BlockBytes]
	}
	return m.data[block*arch.BlockBytes : (block+1)*arch.BlockBytes]
}

// DivergesFrom reports whether any word of m's overlay-resolved contents
// differs from golden's. Both memories must be forks of the same root
// image. The comparison is streaming and block-granular with early exit on
// the first divergence: only blocks written by either fork are compared
// byte-wise, then the few fault-overlaid words are compared through
// ReadWord — every untouched, un-overlaid word trivially resolves to the
// shared root bytes on both sides. A false return therefore proves the two
// resolved images are bit-identical everywhere.
func (m *Memory) DivergesFrom(golden *Memory) bool {
	for _, b := range m.dirtyIdx {
		if !bytes.Equal(m.blockBytes(int(b)), golden.blockBytes(int(b))) {
			return true
		}
	}
	for _, b := range golden.dirtyIdx {
		if m.blockOff[b] >= 0 {
			continue // already compared above
		}
		if !bytes.Equal(m.blockBytes(int(b)), golden.blockBytes(int(b))) {
			return true
		}
	}
	for i := range m.faults {
		a := m.faults[i].wordAddr
		if m.ReadWord(a) != golden.ReadWord(a) {
			return true
		}
	}
	for i := range golden.faults {
		a := golden.faults[i].wordAddr
		if m.ReadWord(a) != golden.ReadWord(a) {
			return true
		}
	}
	return false
}

// FaultsInert reports whether every injected fault provably cannot change
// any value the application will read, making the run bit-identical to the
// fault-free one without executing it. A fault word is inert when both
// hold:
//
//   - The word can never be written: it lies in a read-only data object or
//     in allocation padding. Stores are bounds-checked against writable
//     buffers (only fault-corrupted *loads* wrap permissively), so the
//     word's raw bits keep their golden value for the whole run.
//   - At those golden bits, the overlay resolves to the raw value: either
//     no stuck bit disagrees with the stored bit, or — under the SECDED
//     model — exactly one does and ECC corrects it.
//
// Every read of the word (in-bounds or wrapped out-of-bounds) then returns
// the golden value, so execution, output, and any detection/correction
// comparisons are identical to the golden run. Faults in writable objects
// are never inert: a later store can change the raw bits and re-arm the
// overlay.
func (m *Memory) FaultsInert() bool {
	for i := range m.faults {
		f := &m.faults[i]
		if b, ok := m.BufferAt(f.wordAddr); ok && !b.ReadOnly {
			return false
		}
		raw := m.rawWord(f.wordAddr)
		faulty := (raw | f.setMask) &^ f.clrMask
		if faulty == raw {
			continue
		}
		if m.ecc == ECCSECDED && bits.OnesCount32(faulty^raw) <= 1 {
			continue
		}
		return false
	}
	return true
}
