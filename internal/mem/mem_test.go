package mem

import (
	"math"
	"testing"
	"testing/quick"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

func mustAlloc(t *testing.T, m *Memory, name string, size int, ro bool) *Buffer {
	t.Helper()
	b, err := m.Alloc(name, size, ro)
	if err != nil {
		t.Fatalf("Alloc(%q, %d): %v", name, size, err)
	}
	return b
}

func TestAllocAlignmentAndLayout(t *testing.T) {
	m := New()
	a := mustAlloc(t, m, "A", 100, true) // padded to 128
	b := mustAlloc(t, m, "B", 128, true)
	c := mustAlloc(t, m, "C", 129, false) // padded to 256

	if a.Base%arch.BlockBytes != 0 || b.Base%arch.BlockBytes != 0 || c.Base%arch.BlockBytes != 0 {
		t.Fatal("buffers must be 128 B aligned")
	}
	if b.Base != 128 {
		t.Errorf("B base = %d, want 128", b.Base)
	}
	if c.Base != 256 {
		t.Errorf("C base = %d, want 256", c.Base)
	}
	if got, want := m.Size(), 512; got != want {
		t.Errorf("Size() = %d, want %d", got, want)
	}
	if got, want := m.TotalBlocks(), 4; got != want {
		t.Errorf("TotalBlocks() = %d, want %d", got, want)
	}
	if got, want := c.Blocks(), 2; got != want {
		t.Errorf("C.Blocks() = %d, want %d", got, want)
	}
}

func TestAllocRejects(t *testing.T) {
	m := New()
	mustAlloc(t, m, "A", 64, true)
	if _, err := m.Alloc("A", 64, true); err == nil {
		t.Error("duplicate name accepted")
	}
	if _, err := m.Alloc("Z", 0, true); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := m.Alloc("Z", -4, true); err == nil {
		t.Error("negative size accepted")
	}
}

func TestBufferLookup(t *testing.T) {
	m := New()
	a := mustAlloc(t, m, "weights", 256, true)
	if got, ok := m.BufferByName("weights"); !ok || got != a {
		t.Error("BufferByName failed")
	}
	if _, ok := m.BufferByName("missing"); ok {
		t.Error("BufferByName found missing buffer")
	}
	if got, ok := m.BufferAt(a.Base + 255); !ok || got != a {
		t.Error("BufferAt inside failed")
	}
	if _, ok := m.BufferAt(a.Base + 256); ok {
		t.Error("BufferAt past end succeeded")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	m := New()
	b := mustAlloc(t, m, "v", 1024, false)
	f := func(i uint16, v float32) bool {
		idx := int(i) % b.Len4()
		if math.IsNaN(float64(v)) {
			v = 0
		}
		m.WriteF32(b.ElemAddr(idx), v)
		return m.ReadF32(b.ElemAddr(idx)) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStuckAtFaultIsPermanent(t *testing.T) {
	m := New()
	m.SetECC(ECCNone)
	b := mustAlloc(t, m, "v", 128, false)
	addr := b.ElemAddr(3)
	m.WriteWord(addr, 0)
	if err := m.InjectStuckAt(addr, 0b101, true); err != nil {
		t.Fatalf("InjectStuckAt: %v", err)
	}
	if got := m.ReadWord(addr); got != 0b101 {
		t.Fatalf("read = %#b, want stuck bits 0b101", got)
	}
	// Overwriting does not heal a permanent fault.
	m.WriteWord(addr, 0xFFFF0000)
	if got := m.ReadWord(addr); got != 0xFFFF0000|0b101 {
		t.Fatalf("after rewrite read = %#x, want %#x", got, 0xFFFF0000|0b101)
	}
}

func TestStuckAtZero(t *testing.T) {
	m := New()
	m.SetECC(ECCNone)
	b := mustAlloc(t, m, "v", 128, false)
	addr := b.ElemAddr(0)
	m.WriteWord(addr, 0xFFFFFFFF)
	if err := m.InjectStuckAt(addr, 0xF0, false); err != nil {
		t.Fatalf("InjectStuckAt: %v", err)
	}
	if got := m.ReadWord(addr); got != 0xFFFFFF0F {
		t.Fatalf("read = %#x, want %#x", got, uint32(0xFFFFFF0F))
	}
}

func TestSECDEDCorrectsSingleBitFault(t *testing.T) {
	m := New()
	m.SetECC(ECCSECDED)
	b := mustAlloc(t, m, "v", 128, false)
	addr := b.ElemAddr(1)
	m.WriteWord(addr, 0x12345678)
	// Single stuck-at-1 on a currently-zero bit: one effective flip → corrected.
	if err := m.InjectStuckAt(addr, 1<<31, true); err != nil {
		t.Fatalf("InjectStuckAt: %v", err)
	}
	if got := m.ReadWord(addr); got != 0x12345678 {
		t.Fatalf("SECDED read = %#x, want corrected %#x", got, 0x12345678)
	}
	// The same fault without ECC escapes.
	m.SetECC(ECCNone)
	if got := m.ReadWord(addr); got != 0x92345678 {
		t.Fatalf("no-ECC read = %#x, want faulty %#x", got, uint32(0x92345678))
	}
}

func TestSECDEDMultiBitEscapes(t *testing.T) {
	m := New()
	m.SetECC(ECCSECDED)
	b := mustAlloc(t, m, "v", 128, false)
	addr := b.ElemAddr(2)
	m.WriteWord(addr, 0)
	if err := m.InjectStuckAt(addr, 0b11, true); err != nil { // 2-bit fault
		t.Fatalf("InjectStuckAt: %v", err)
	}
	if got := m.ReadWord(addr); got != 0b11 {
		t.Fatalf("read = %#b, want escaped 0b11", got)
	}
}

func TestStuckAtMatchingStoredValueIsInvisible(t *testing.T) {
	m := New()
	m.SetECC(ECCSECDED)
	b := mustAlloc(t, m, "v", 128, false)
	addr := b.ElemAddr(0)
	m.WriteWord(addr, 0xFF)
	// Bits already 1 stuck at 1: zero effective flips.
	if err := m.InjectStuckAt(addr, 0xFF, true); err != nil {
		t.Fatalf("InjectStuckAt: %v", err)
	}
	if got := m.ReadWord(addr); got != 0xFF {
		t.Fatalf("read = %#x, want unchanged 0xFF", got)
	}
}

func TestInjectValidation(t *testing.T) {
	m := New()
	mustAlloc(t, m, "v", 128, false)
	if err := m.InjectStuckAt(2, 1, true); err == nil {
		t.Error("unaligned inject accepted")
	}
	if err := m.InjectStuckAt(4096, 1, true); err == nil {
		t.Error("out-of-range inject accepted")
	}
}

func TestFaultAccumulationSameWord(t *testing.T) {
	m := New()
	m.SetECC(ECCNone)
	b := mustAlloc(t, m, "v", 128, false)
	addr := b.ElemAddr(5)
	m.WriteWord(addr, 0)
	if err := m.InjectStuckAt(addr, 0b01, true); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectStuckAt(addr, 0b10, true); err != nil {
		t.Fatal(err)
	}
	if got := m.FaultCount(); got != 1 {
		t.Fatalf("FaultCount() = %d, want 1 (merged)", got)
	}
	if got := m.ReadWord(addr); got != 0b11 {
		t.Fatalf("read = %#b, want 0b11", got)
	}
}

func TestFaultsSortedByAddress(t *testing.T) {
	m := New()
	b := mustAlloc(t, m, "v", 1024, false)
	addrs := []int{50, 3, 17, 200, 9}
	for _, i := range addrs {
		if err := m.InjectStuckAt(b.ElemAddr(i), 1, true); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < len(m.faults); i++ {
		if m.faults[i].wordAddr <= m.faults[i-1].wordAddr {
			t.Fatal("faults not sorted by address")
		}
	}
}

func TestCloneIsIndependent(t *testing.T) {
	m := New()
	m.SetECC(ECCNone)
	b := mustAlloc(t, m, "v", 128, false)
	m.WriteF32(b.ElemAddr(0), 1.5)
	c := m.Clone()
	c.WriteF32(b.ElemAddr(0), 2.5)
	if err := c.InjectStuckAt(b.ElemAddr(1), 1, true); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadF32(b.ElemAddr(0)); got != 1.5 {
		t.Errorf("original mutated: %v", got)
	}
	if m.FaultCount() != 0 {
		t.Error("fault leaked into original")
	}
	if got := c.ReadF32(b.ElemAddr(0)); got != 2.5 {
		t.Errorf("clone read = %v, want 2.5", got)
	}
}

func TestCopyBuffer(t *testing.T) {
	m := New()
	src := mustAlloc(t, m, "src", 256, true)
	dst := mustAlloc(t, m, "dst", 256, true)
	for i := 0; i < src.Len4(); i++ {
		m.WriteF32(src.ElemAddr(i), float32(i))
	}
	if err := m.CopyBuffer(dst, src); err != nil {
		t.Fatalf("CopyBuffer: %v", err)
	}
	for i := 0; i < dst.Len4(); i++ {
		if got := m.ReadF32(dst.ElemAddr(i)); got != float32(i) {
			t.Fatalf("dst[%d] = %v, want %v", i, got, float32(i))
		}
	}
	small := mustAlloc(t, m, "small", 128, true)
	if err := m.CopyBuffer(small, src); err == nil {
		t.Error("copy into smaller buffer accepted")
	}
}

func TestSliceHelpers(t *testing.T) {
	m := New()
	b := mustAlloc(t, m, "v", 64, false)
	want := []float32{1, 2, 3, 4}
	if err := m.WriteF32Slice(b, want); err != nil {
		t.Fatal(err)
	}
	got := m.ReadF32Slice(b, 4)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("got[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	if err := m.WriteF32Slice(b, make([]float32, 17)); err == nil {
		t.Error("oversized write accepted")
	}
	ints := []int32{-1, 7}
	if err := m.WriteI32Slice(b, ints); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadI32(b.ElemAddr(0)); got != -1 {
		t.Errorf("ReadI32 = %d, want -1", got)
	}
}

func BenchmarkReadWordNoFaults(b *testing.B) {
	m := New()
	buf, err := m.Alloc("v", 1<<16, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ReadWord(buf.ElemAddr(i & 8191))
	}
}

func BenchmarkReadWordWithFaults(b *testing.B) {
	m := New()
	buf, err := m.Alloc("v", 1<<16, false)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := m.InjectStuckAt(buf.ElemAddr(i*100), 0b11, true); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.ReadWord(buf.ElemAddr(i & 8191))
	}
}

func TestFaultIntrospection(t *testing.T) {
	m := New()
	b := mustAlloc(t, m, "weights", 256, true)
	if len(m.Faults()) != 0 {
		t.Fatal("faults listed before injection")
	}
	if err := m.InjectStuckAt(b.ElemAddr(3), 0b101, true); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectStuckAt(b.ElemAddr(1), 0b10, false); err != nil {
		t.Fatal(err)
	}
	recs := m.Faults()
	if len(recs) != 2 {
		t.Fatalf("faults = %d, want 2", len(recs))
	}
	if recs[0].WordAddr > recs[1].WordAddr {
		t.Error("faults not in address order")
	}
	if recs[1].StuckHigh != 0b101 || recs[1].Object != "weights" {
		t.Errorf("record = %+v", recs[1])
	}
	if recs[0].StuckLow != 0b10 {
		t.Errorf("stuck-low mask = %#b", recs[0].StuckLow)
	}
}
