// Bit-parallel divergence classification: one golden fork settles up to 64
// sibling forks in a single sweep. The amortization over per-lane
// DivergesFrom calls comes from the golden side: blocks only the golden run
// wrote resolve, on every lane that never materialized them, to the same
// shared root bytes — so one root-vs-golden comparison per such block
// answers for all of those lanes at once, instead of once per lane.
package mem

import (
	"bytes"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

// BatchLanes is the lane width of one bit-parallel classification sweep:
// the outcome masks are packed into a uint64.
const BatchLanes = 64

// DirtyBlockList appends the indices of every currently materialized block
// to dst — a fork's write set so far, in materialization order. Batched
// campaign executors seed a lane's divergent-block set from it (a transient
// flip materializes its block at injection time).
func (m *Memory) DirtyBlockList(dst []arch.BlockAddr) []arch.BlockAddr {
	for _, b := range m.dirtyIdx {
		dst = append(dst, arch.BlockAddr(b))
	}
	return dst
}

// FaultBlockList appends the block of every injected fault word to dst —
// the blocks whose read-path overlay may diverge from the golden image.
func (m *Memory) FaultBlockList(dst []arch.BlockAddr) []arch.BlockAddr {
	for i := range m.faults {
		dst = append(dst, m.faults[i].wordAddr.Block())
	}
	return dst
}

// BatchDiverges reports, as a bitmask over lanes, which of the forks
// diverge from the golden fork — lane i diverges iff
// lanes[i].DivergesFrom(golden) would return true. All memories must be
// forks of the same root image; nil lanes are skipped (their bit stays 0);
// at most BatchLanes lanes fit one sweep. Each lane's comparison early-exits
// on its first divergent word, and the golden-only dirty blocks are
// compared against the shared root once for the whole batch.
func BatchDiverges(golden *Memory, lanes []*Memory) uint64 {
	if len(lanes) > BatchLanes {
		panic("mem: BatchDiverges called with more than 64 lanes")
	}

	// Pre-resolve the blocks only the golden run may have written: differs
	// records whether golden's block content departed from the shared root
	// bytes, which is exactly what a lane that never materialized the block
	// still resolves to.
	type goldenBlock struct {
		b       int32
		differs bool
	}
	gblocks := make([]goldenBlock, 0, len(golden.dirtyIdx))
	for _, b := range golden.dirtyIdx {
		root := golden.shared[int(b)*arch.BlockBytes : (int(b)+1)*arch.BlockBytes]
		gblocks = append(gblocks, goldenBlock{b, !bytes.Equal(golden.blockBytes(int(b)), root)})
	}

	var diverged uint64
	for li, m := range lanes {
		if m == nil {
			continue
		}
		diverges := false
		for _, b := range m.dirtyIdx {
			if !bytes.Equal(m.blockBytes(int(b)), golden.blockBytes(int(b))) {
				diverges = true
				break
			}
		}
		if !diverges {
			for _, g := range gblocks {
				// Blocks the lane materialized itself were compared above;
				// otherwise the lane resolves to root bytes, so the
				// precomputed root-vs-golden verdict applies.
				if g.differs && m.blockOff[g.b] < 0 {
					diverges = true
					break
				}
			}
		}
		if !diverges {
			for i := range m.faults {
				a := m.faults[i].wordAddr
				if m.ReadWord(a) != golden.ReadWord(a) {
					diverges = true
					break
				}
			}
		}
		if !diverges {
			for i := range golden.faults {
				a := golden.faults[i].wordAddr
				if m.ReadWord(a) != golden.ReadWord(a) {
					diverges = true
					break
				}
			}
		}
		if diverges {
			diverged |= uint64(1) << uint(li)
		}
	}
	return diverged
}
