// Package mem models GPU device (global) memory: named buffer allocation
// (the paper's "data objects"), a byte-addressable memory image, and a
// permanent stuck-at fault overlay applied on every read — the fault model
// of Section II-C. Replica copies created by the replication schemes live in
// this same address space at distinct addresses, so block-addressed fault
// injection can hit primaries, replicas, or unrelated data alike.
package mem

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/bits"
	"sort"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

// ECCMode selects how the modelled SECDED layer treats stuck-at faults.
type ECCMode int

const (
	// ECCNone disables ECC: every stuck-at bit reaches the application.
	ECCNone ECCMode = iota + 1
	// ECCSECDED models the paper's assumption: single-bit faults are
	// corrected transparently by SECDED; multi-bit faults escape silently
	// (miscorrection/aliasing, or faults in logic outside ECC coverage).
	ECCSECDED
)

// String renders the mode for logs.
func (m ECCMode) String() string {
	switch m {
	case ECCNone:
		return "none"
	case ECCSECDED:
		return "secded"
	default:
		return fmt.Sprintf("eccmode(%d)", int(m))
	}
}

// Buffer describes one named allocation — a "data object" in the paper's
// terminology (e.g. Layer1_Weights, A, r). Buffers are immutable metadata;
// their contents live in the owning Memory.
type Buffer struct {
	// ID is the dense index of the buffer within its Memory.
	ID int
	// Name is the source-level data object name.
	Name string
	// Base is the first byte address; always 128 B aligned.
	Base arch.Addr
	// Size is the allocation length in bytes.
	Size int
	// ReadOnly marks kernel-input objects; only read-only objects are
	// eligible for replication (Section IV).
	ReadOnly bool
}

// Addr returns the address of byte offset off within the buffer.
func (b *Buffer) Addr(off int) arch.Addr { return b.Base + arch.Addr(off) }

// ElemAddr returns the address of 4-byte element i.
func (b *Buffer) ElemAddr(i int) arch.Addr { return b.Base + arch.Addr(i*4) }

// Len4 returns the number of 4-byte elements in the buffer.
func (b *Buffer) Len4() int { return b.Size / 4 }

// Blocks returns the number of 128 B data memory blocks the buffer spans.
func (b *Buffer) Blocks() int {
	return (b.Size + arch.BlockBytes - 1) / arch.BlockBytes
}

// FirstBlock returns the buffer's first data memory block.
func (b *Buffer) FirstBlock() arch.BlockAddr { return b.Base.Block() }

// Contains reports whether the address falls inside the buffer.
func (b *Buffer) Contains(a arch.Addr) bool {
	return a >= b.Base && a < b.Base+arch.Addr(b.Size)
}

// wordFault is one permanent stuck-at fault record for a 32-bit word.
type wordFault struct {
	wordAddr arch.Addr // word-aligned address
	setMask  uint32    // bits stuck at 1
	clrMask  uint32    // bits stuck at 0
}

// Memory is one device memory image. It is not safe for concurrent use;
// fault-injection campaigns run against per-run copy-on-write forks
// (Fork), which share the golden image read-only. Many forks of one root
// may be used concurrently as long as each individual fork stays on one
// goroutine and the root is no longer written.
type Memory struct {
	data    []byte
	buffers []*Buffer
	// faults is a small sorted-by-address slice: campaigns inject at most a
	// handful of faulty words, and a linear scan beats a map at that size.
	faults []wordFault
	ecc    ECCMode

	// Copy-on-write fork state (nil/zero on root images, see fork.go). A
	// fork shares `shared` — the root's data — read-only and materializes a
	// private 128 B block copy in dirtyBuf on first write. blockOff maps a
	// block index to its offset in dirtyBuf (-1 = still shared), dirtyIdx
	// lists materialized blocks in first-write order, and copied counts
	// materializations over the fork's lifetime (Reset does not rewind it,
	// so telemetry can take deltas across pooled reuse).
	shared   []byte
	blockOff []int32
	dirtyBuf []byte
	dirtyIdx []int32
	copied   uint64
}

// New returns an empty device memory with the paper's SECDED assumption
// enabled.
func New() *Memory {
	return &Memory{ecc: ECCSECDED}
}

// SetECC selects the ECC model.
func (m *Memory) SetECC(mode ECCMode) { m.ecc = mode }

// ECC reports the current ECC model.
func (m *Memory) ECC() ECCMode { return m.ecc }

// Alloc reserves a 128 B aligned buffer of the given byte size. Forks
// cannot allocate: buffer layout (including replica allocations made by
// protection plans) is fixed on the root image before forking.
func (m *Memory) Alloc(name string, size int, readOnly bool) (*Buffer, error) {
	if m.shared != nil {
		return nil, fmt.Errorf("mem: alloc %q: cannot allocate on a copy-on-write fork", name)
	}
	if size <= 0 {
		return nil, fmt.Errorf("mem: alloc %q: size must be positive, got %d", name, size)
	}
	for _, b := range m.buffers {
		if b.Name == name {
			return nil, fmt.Errorf("mem: alloc %q: name already in use", name)
		}
	}
	base := arch.Addr(len(m.data))
	padded := (size + arch.BlockBytes - 1) / arch.BlockBytes * arch.BlockBytes
	m.data = append(m.data, make([]byte, padded)...)
	b := &Buffer{
		ID:       len(m.buffers),
		Name:     name,
		Base:     base,
		Size:     size,
		ReadOnly: readOnly,
	}
	m.buffers = append(m.buffers, b)
	return b, nil
}

// Buffers returns the allocated buffers in allocation order. The returned
// slice must not be modified.
func (m *Memory) Buffers() []*Buffer { return m.buffers }

// BufferByName looks a buffer up by data-object name.
func (m *Memory) BufferByName(name string) (*Buffer, bool) {
	for _, b := range m.buffers {
		if b.Name == name {
			return b, true
		}
	}
	return nil, false
}

// BufferAt returns the buffer containing the address, if any.
func (m *Memory) BufferAt(a arch.Addr) (*Buffer, bool) {
	for _, b := range m.buffers {
		if b.Contains(a) {
			return b, true
		}
	}
	return nil, false
}

// Size returns the total allocated bytes (padded to blocks).
func (m *Memory) Size() int {
	if m.shared != nil {
		return len(m.shared)
	}
	return len(m.data)
}

// TotalBlocks returns the number of 128 B blocks allocated.
func (m *Memory) TotalBlocks() int { return m.Size() / arch.BlockBytes }

// Clone returns an independent deep copy sharing no mutable state. Buffer
// metadata is immutable and therefore shared. Cloning a fork materializes
// its resolved contents into a new root image.
func (m *Memory) Clone() *Memory {
	out := &Memory{
		data:    m.resolvedBytes(),
		buffers: append([]*Buffer(nil), m.buffers...),
		faults:  append([]wordFault(nil), m.faults...),
		ecc:     m.ecc,
	}
	return out
}

// resolvedBytes returns a fresh copy of the image with any fork-private
// blocks folded in (the stuck-at fault overlay is a read-path effect and
// is not applied).
func (m *Memory) resolvedBytes() []byte {
	if m.shared == nil {
		return append([]byte(nil), m.data...)
	}
	out := append([]byte(nil), m.shared...)
	for _, b := range m.dirtyIdx {
		off := m.blockOff[b]
		copy(out[int(b)*arch.BlockBytes:], m.dirtyBuf[off:off+arch.BlockBytes])
	}
	return out
}

// InjectStuckAt records a permanent stuck-at fault: `mask` selects the bits
// of the 32-bit word at wordAddr, and stuckAtOne chooses the stuck value.
// Multiple injections to the same word accumulate.
func (m *Memory) InjectStuckAt(wordAddr arch.Addr, mask uint32, stuckAtOne bool) error {
	if wordAddr%arch.WordBytes != 0 {
		return fmt.Errorf("mem: fault address %#x is not word aligned", wordAddr)
	}
	if int(wordAddr)+arch.WordBytes > m.Size() {
		return fmt.Errorf("mem: fault address %#x beyond memory size %d", wordAddr, m.Size())
	}
	i := sort.Search(len(m.faults), func(i int) bool { return m.faults[i].wordAddr >= wordAddr })
	if i < len(m.faults) && m.faults[i].wordAddr == wordAddr {
		if stuckAtOne {
			m.faults[i].setMask |= mask
			m.faults[i].clrMask &^= mask
		} else {
			m.faults[i].clrMask |= mask
			m.faults[i].setMask &^= mask
		}
		return nil
	}
	f := wordFault{wordAddr: wordAddr}
	if stuckAtOne {
		f.setMask = mask
	} else {
		f.clrMask = mask
	}
	m.faults = append(m.faults, wordFault{})
	copy(m.faults[i+1:], m.faults[i:])
	m.faults[i] = f
	return nil
}

// ClearFaults removes every injected fault.
func (m *Memory) ClearFaults() { m.faults = m.faults[:0] }

// FaultCount returns the number of faulty words.
func (m *Memory) FaultCount() int { return len(m.faults) }

// FaultRecord describes one injected stuck-at fault for reports and tests.
type FaultRecord struct {
	// WordAddr is the faulty 32-bit word's address.
	WordAddr arch.Addr
	// StuckHigh and StuckLow are the bit masks stuck at 1 and 0.
	StuckHigh, StuckLow uint32
	// Object names the data object containing the word ("" if none).
	Object string
}

// Faults lists the injected faults in address order.
func (m *Memory) Faults() []FaultRecord {
	out := make([]FaultRecord, 0, len(m.faults))
	for _, f := range m.faults {
		rec := FaultRecord{WordAddr: f.wordAddr, StuckHigh: f.setMask, StuckLow: f.clrMask}
		if b, ok := m.BufferAt(f.wordAddr); ok {
			rec.Object = b.Name
		}
		out = append(out, rec)
	}
	return out
}

// rawWord reads the stored word without the fault overlay, resolving
// fork-private blocks.
func (m *Memory) rawWord(wordAddr arch.Addr) uint32 {
	if m.shared == nil {
		return binary.LittleEndian.Uint32(m.data[wordAddr:])
	}
	if off := m.blockOff[int(wordAddr)/arch.BlockBytes]; off >= 0 {
		return binary.LittleEndian.Uint32(m.dirtyBuf[int(off)+int(wordAddr)%arch.BlockBytes:])
	}
	return binary.LittleEndian.Uint32(m.shared[wordAddr:])
}

// ReadWord reads a 32-bit word through the fault overlay and ECC model.
func (m *Memory) ReadWord(wordAddr arch.Addr) uint32 {
	raw := m.rawWord(wordAddr)
	if len(m.faults) == 0 {
		return raw
	}
	for i := range m.faults {
		f := &m.faults[i]
		if f.wordAddr != wordAddr {
			continue
		}
		faulty := (raw | f.setMask) &^ f.clrMask
		if m.ecc == ECCSECDED {
			// SECDED corrects a single flipped bit; multi-bit escapes.
			if flips := bits.OnesCount32(faulty ^ raw); flips <= 1 {
				return raw
			}
		}
		return faulty
	}
	return raw
}

// WriteWord stores a 32-bit word. Stuck-at faults are permanent: they keep
// overriding the stored bits on subsequent reads. On a fork, the first
// write to a 128 B block copies that block into the fork's private arena;
// the shared root image is never modified.
func (m *Memory) WriteWord(wordAddr arch.Addr, v uint32) {
	if m.shared == nil {
		binary.LittleEndian.PutUint32(m.data[wordAddr:], v)
		return
	}
	off := m.blockOff[int(wordAddr)/arch.BlockBytes]
	if off < 0 {
		off = m.materialize(int(wordAddr) / arch.BlockBytes)
	}
	binary.LittleEndian.PutUint32(m.dirtyBuf[int(off)+int(wordAddr)%arch.BlockBytes:], v)
}

// FlipBits XORs mask into the stored bits of the 32-bit word at wordAddr —
// write-time corruption, as a transient upset leaves behind in DRAM.
// Unlike the stuck-at overlay the flipped value is ordinary stored data: a
// later store overwrites it, and reads return it without reapplying any
// fault. On a fork the write materializes the block copy-on-write like any
// other store.
func (m *Memory) FlipBits(wordAddr arch.Addr, mask uint32) error {
	if wordAddr%arch.WordBytes != 0 {
		return fmt.Errorf("mem: flip address %#x is not word aligned", wordAddr)
	}
	if int(wordAddr)+arch.WordBytes > m.Size() {
		return fmt.Errorf("mem: flip address %#x beyond memory size %d", wordAddr, m.Size())
	}
	m.WriteWord(wordAddr, m.rawWord(wordAddr)^mask)
	return nil
}

// ReadF32 reads a float32 through the fault overlay.
func (m *Memory) ReadF32(addr arch.Addr) float32 {
	return math.Float32frombits(m.ReadWord(addr))
}

// WriteF32 stores a float32.
func (m *Memory) WriteF32(addr arch.Addr, v float32) {
	m.WriteWord(addr, math.Float32bits(v))
}

// ReadI32 reads an int32 through the fault overlay.
func (m *Memory) ReadI32(addr arch.Addr) int32 { return int32(m.ReadWord(addr)) }

// WriteI32 stores an int32.
func (m *Memory) WriteI32(addr arch.Addr, v int32) { m.WriteWord(addr, uint32(v)) }

// WriteF32Slice initialises buffer contents from a host slice.
func (m *Memory) WriteF32Slice(b *Buffer, src []float32) error {
	if len(src)*4 > b.Size {
		return fmt.Errorf("mem: %q: %d floats exceed buffer size %d B", b.Name, len(src), b.Size)
	}
	for i, v := range src {
		m.WriteF32(b.ElemAddr(i), v)
	}
	return nil
}

// WriteI32Slice initialises buffer contents from a host slice.
func (m *Memory) WriteI32Slice(b *Buffer, src []int32) error {
	if len(src)*4 > b.Size {
		return fmt.Errorf("mem: %q: %d ints exceed buffer size %d B", b.Name, len(src), b.Size)
	}
	for i, v := range src {
		m.WriteI32(b.ElemAddr(i), v)
	}
	return nil
}

// ReadF32Slice copies the buffer's contents (through the fault overlay) to a
// host slice of length n.
func (m *Memory) ReadF32Slice(b *Buffer, n int) []float32 {
	if n > b.Len4() {
		n = b.Len4()
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = m.ReadF32(b.ElemAddr(i))
	}
	return out
}

// CopyBuffer copies src's current (fault-free raw) contents into dst. It is
// used to initialise replica copies. Plans normally copy on the root image
// before forking; on a fork the copy goes through the copy-on-write path.
func (m *Memory) CopyBuffer(dst, src *Buffer) error {
	if dst.Size < src.Size {
		return fmt.Errorf("mem: copy %q→%q: destination %d B < source %d B", src.Name, dst.Name, dst.Size, src.Size)
	}
	if m.shared == nil {
		copy(m.data[dst.Base:int(dst.Base)+src.Size], m.data[src.Base:int(src.Base)+src.Size])
		return nil
	}
	for o := 0; o < src.Size; o++ {
		a := int(dst.Base) + o
		off := m.blockOff[a/arch.BlockBytes]
		if off < 0 {
			off = m.materialize(a / arch.BlockBytes)
		}
		m.dirtyBuf[int(off)+a%arch.BlockBytes] = m.byteAt(int(src.Base) + o)
	}
	return nil
}

// byteAt reads one stored byte, resolving fork-private blocks.
func (m *Memory) byteAt(a int) byte {
	if m.shared == nil {
		return m.data[a]
	}
	if off := m.blockOff[a/arch.BlockBytes]; off >= 0 {
		return m.dirtyBuf[int(off)+a%arch.BlockBytes]
	}
	return m.shared[a]
}
