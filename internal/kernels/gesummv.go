package kernels

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/metrics"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// GESUMMVConfig sizes P-GESUMMV (paper: N = 4096).
type GESUMMVConfig struct {
	N int
	// Alpha and Beta are the scalar coefficients (defaults 1.5 / 2.5).
	Alpha, Beta float32
}

func (c GESUMMVConfig) withDefaults() GESUMMVConfig {
	if c.N == 0 {
		c.N = 192
	}
	if c.Alpha == 0 {
		c.Alpha = 1.5
	}
	if c.Beta == 0 {
		c.Beta = 2.5
	}
	return c
}

// NewGESUMMV builds P-GESUMMV: y = α·A·x + β·B·x. One thread per row: both
// matrices are read row-strided (uncoalesced) while x is broadcast — which
// is why x is the hot data object (Table III).
func NewGESUMMV(cfg GESUMMVConfig) (*App, error) {
	cfg = cfg.withDefaults()
	n := cfg.N
	if n <= 0 {
		return nil, fmt.Errorf("kernels: gesummv: size must be positive, got %d", n)
	}
	m := mem.New()
	bufX, err := m.Alloc("x", n*4, true)
	if err != nil {
		return nil, err
	}
	bufA, err := m.Alloc("A", n*n*4, true)
	if err != nil {
		return nil, err
	}
	bufB, err := m.Alloc("B", n*n*4, true)
	if err != nil {
		return nil, err
	}
	bufY, err := m.Alloc("y", n*4, false)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.WriteF32(bufX.ElemAddr(i), float32(i%19+1)/19)
		for j := 0; j < n; j++ {
			m.WriteF32(bufA.ElemAddr(i*n+j), float32((i*j+1)%n)/float32(n))
			m.WriteF32(bufB.ElemAddr(i*n+j), float32((i*(j+3))%n)/float32(n))
		}
	}

	ss := &siteSet{}
	ldA := ss.site("k1.ld.A", bufA)
	ldB := ss.site("k1.ld.B", bufB)
	ldX := ss.site("k1.ld.x", bufX)
	stY := ss.site("k1.st.y", nil)
	alpha, beta := cfg.Alpha, cfg.Beta

	k := &simt.Kernel{
		KernelName: "gesummv_kernel1",
		Grid:       arch.Dim3{X: (n + polyThreadsPerCTA - 1) / polyThreadsPerCTA},
		Block:      arch.Dim3{X: polyThreadsPerCTA},
		Run: func(w *simt.WarpCtx) {
			idx := w.ScratchI32(0)
			va := w.ScratchF32(0)
			vb := w.ScratchF32(1)
			acc := w.ScratchF32(2)
			tmp := w.ScratchF32(3)
			any := false
			for lane := 0; lane < w.NumLanes; lane++ {
				acc[lane], tmp[lane] = 0, 0
				if w.LinearThreadID(lane) < n {
					any = true
				}
			}
			if !any {
				return
			}
			for j := 0; j < n; j++ {
				for lane := 0; lane < w.NumLanes; lane++ {
					if i := w.LinearThreadID(lane); i < n {
						idx[lane] = int32(i*n + j)
					} else {
						idx[lane] = simt.InactiveLane
					}
				}
				w.LoadF32(ldA, bufA, idx, va)
				w.LoadF32(ldB, bufB, idx, vb)
				xv := w.LoadF32Broadcast(ldX, bufX, int32(j))
				for lane := 0; lane < w.NumLanes; lane++ {
					tmp[lane] += va[lane] * xv
					acc[lane] += vb[lane] * xv
				}
				w.Compute(2)
			}
			for lane := 0; lane < w.NumLanes; lane++ {
				acc[lane] = alpha*tmp[lane] + beta*acc[lane]
				if i := w.LinearThreadID(lane); i < n {
					idx[lane] = int32(i)
				} else {
					idx[lane] = simt.InactiveLane
				}
			}
			w.Compute(2)
			w.StoreF32(stY, bufY, idx, acc)
		},
	}

	return &App{
		Name:     "P-GESUMMV",
		Mem:      m,
		Kernels:  []*simt.Kernel{k},
		Objects:  []*mem.Buffer{bufX, bufA, bufB}, // Table III order: x, A, B
		HotCount: 1,
		Sites:    ss.sites,
		Metric:   metrics.Metric{Kind: metrics.VectorDeviation, Threshold: polyVectorThreshold},
		output: func(m *mem.Memory) []float32 {
			return m.ReadF32Slice(bufY, n)
		},
	}, nil
}
