package kernels

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/metrics"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// polyThreadsPerCTA is the CTA size used by the Polybench kernels.
const polyThreadsPerCTA = 128

// polyVectorThreshold is the SDC threshold for the Polybench vector metric:
// a run is an SDC when more than this percentage of output elements deviate
// from the fault-free baseline. Localized corruption — one matrix element
// perturbs one or two output elements, so even the 5-block fault model
// touches ≤10 of the output's hundreds of elements — stays below it, while
// corruption of a hot vector element spreads to the entire output and far
// exceeds it. (At the paper's 3072–4096 problem sizes the same separation
// holds at a 1% threshold; the scaled inputs need proportionally more
// headroom.)
const polyVectorThreshold = 3.0

// BICGConfig sizes P-BICG. The paper uses NX = NY = 3072; the scaled
// default keeps the same access-pattern shape.
type BICGConfig struct {
	NX, NY int
}

func (c BICGConfig) withDefaults() BICGConfig {
	if c.NX == 0 {
		c.NX = 192
	}
	if c.NY == 0 {
		c.NY = 192
	}
	return c
}

// NewBICG builds P-BICG: the BiCG sub-kernel of the biconjugate gradient
// method (Listing 1). Kernel 1 computes s = Aᵀ·r with the matrix read
// column-coalesced and r broadcast; kernel 2 computes q = A·p with the
// matrix read row-strided (uncoalesced) and p broadcast. The hot data
// objects are the vectors p and r (Table III).
func NewBICG(cfg BICGConfig) (*App, error) {
	cfg = cfg.withDefaults()
	nx, ny := cfg.NX, cfg.NY
	if nx <= 0 || ny <= 0 {
		return nil, fmt.Errorf("kernels: bicg: sizes must be positive, got %d×%d", nx, ny)
	}
	m := mem.New()
	bufA, err := m.Alloc("A", nx*ny*4, true)
	if err != nil {
		return nil, err
	}
	bufP, err := m.Alloc("p", ny*4, true)
	if err != nil {
		return nil, err
	}
	bufR, err := m.Alloc("r", nx*4, true)
	if err != nil {
		return nil, err
	}
	bufS, err := m.Alloc("s", ny*4, false)
	if err != nil {
		return nil, err
	}
	bufQ, err := m.Alloc("q", nx*4, false)
	if err != nil {
		return nil, err
	}
	// Polybench-style deterministic initialisation.
	for i := 0; i < nx; i++ {
		for j := 0; j < ny; j++ {
			m.WriteF32(bufA.ElemAddr(i*ny+j), float32((i*(j+1))%nx)/float32(nx))
		}
		m.WriteF32(bufR.ElemAddr(i), float32(i%7+1)/7)
	}
	for j := 0; j < ny; j++ {
		m.WriteF32(bufP.ElemAddr(j), float32(j%13+1)/13)
	}

	ss := &siteSet{}
	ldA1 := ss.site("k1.ld.A", bufA)
	ldR := ss.site("k1.ld.r", bufR)
	stS := ss.site("k1.st.s", nil)
	ldA2 := ss.site("k2.ld.A", bufA)
	ldP := ss.site("k2.ld.p", bufP)
	stQ := ss.site("k2.st.q", nil)

	grid := func(n int) arch.Dim3 {
		return arch.Dim3{X: (n + polyThreadsPerCTA - 1) / polyThreadsPerCTA}
	}

	// Kernel 1: s[j] = Σ_i A[i·NY+j]·r[i]; j across threads.
	k1 := &simt.Kernel{
		KernelName: "bicg_kernel1",
		Grid:       grid(ny),
		Block:      arch.Dim3{X: polyThreadsPerCTA},
		Run: func(w *simt.WarpCtx) {
			idx := w.ScratchI32(0)
			col := w.ScratchI32(1)
			dst := w.ScratchF32(0)
			acc := w.ScratchF32(1)
			// The lane→column map is loop-invariant; build it once.
			any := false
			for lane := 0; lane < w.NumLanes; lane++ {
				acc[lane] = 0
				if j := w.LinearThreadID(lane); j < ny {
					col[lane] = int32(j)
					any = true
				} else {
					col[lane] = simt.InactiveLane
				}
			}
			if !any {
				return
			}
			for i := 0; i < nx; i++ {
				row := int32(i * ny)
				for lane := 0; lane < w.NumLanes; lane++ {
					if c := col[lane]; c != simt.InactiveLane {
						idx[lane] = row + c
					} else {
						idx[lane] = simt.InactiveLane
					}
				}
				w.LoadF32(ldA1, bufA, idx, dst)
				rv := w.LoadF32Broadcast(ldR, bufR, int32(i))
				for lane := 0; lane < w.NumLanes; lane++ {
					acc[lane] += dst[lane] * rv
				}
				w.Compute(1)
			}
			w.StoreF32(stS, bufS, col, acc)
		},
	}

	// Kernel 2: q[i] = Σ_j A[i·NY+j]·p[j]; i across threads → the matrix is
	// read with stride NY (uncoalesced), p is broadcast.
	k2 := &simt.Kernel{
		KernelName: "bicg_kernel2",
		Grid:       grid(nx),
		Block:      arch.Dim3{X: polyThreadsPerCTA},
		Run: func(w *simt.WarpCtx) {
			idx := w.ScratchI32(0)
			rowBase := w.ScratchI32(1)
			dst := w.ScratchF32(0)
			acc := w.ScratchF32(1)
			// The lane→row map is loop-invariant; build the i·NY bases once.
			any := false
			for lane := 0; lane < w.NumLanes; lane++ {
				acc[lane] = 0
				if i := w.LinearThreadID(lane); i < nx {
					rowBase[lane] = int32(i * ny)
					any = true
				} else {
					rowBase[lane] = simt.InactiveLane
				}
			}
			if !any {
				return
			}
			for j := 0; j < ny; j++ {
				jj := int32(j)
				for lane := 0; lane < w.NumLanes; lane++ {
					if r := rowBase[lane]; r != simt.InactiveLane {
						idx[lane] = r + jj
					} else {
						idx[lane] = simt.InactiveLane
					}
				}
				w.LoadF32(ldA2, bufA, idx, dst)
				pv := w.LoadF32Broadcast(ldP, bufP, jj)
				for lane := 0; lane < w.NumLanes; lane++ {
					acc[lane] += dst[lane] * pv
				}
				w.Compute(1)
			}
			for lane := 0; lane < w.NumLanes; lane++ {
				if i := w.LinearThreadID(lane); i < nx {
					idx[lane] = int32(i)
				} else {
					idx[lane] = simt.InactiveLane
				}
			}
			w.StoreF32(stQ, bufQ, idx, acc)
		},
	}

	return &App{
		Name:     "P-BICG",
		Mem:      m,
		Kernels:  []*simt.Kernel{k1, k2},
		Objects:  []*mem.Buffer{bufP, bufR, bufA}, // Table III order: p, r, A
		HotCount: 2,
		Sites:    ss.sites,
		Metric:   metrics.Metric{Kind: metrics.VectorDeviation, Threshold: polyVectorThreshold},
		output: func(m *mem.Memory) []float32 {
			out := m.ReadF32Slice(bufS, ny)
			return append(out, m.ReadF32Slice(bufQ, nx)...)
		},
	}, nil
}
