package kernels

import (
	"fmt"
	"math"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/metrics"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// BlackScholesConfig sizes C-BlackScholes (the CUDA SDK sample evaluates
// millions of options; the scaled default keeps the flat access profile).
type BlackScholesConfig struct {
	// Options is the number of option contracts priced.
	Options int
	// RiskFree and Volatility are the model constants (defaults 0.02/0.30).
	RiskFree, Volatility float64
}

func (c BlackScholesConfig) withDefaults() BlackScholesConfig {
	if c.Options == 0 {
		c.Options = 4096
	}
	if c.RiskFree == 0 {
		c.RiskFree = 0.02
	}
	if c.Volatility == 0 {
		c.Volatility = 0.30
	}
	return c
}

// cnd is the cumulative normal distribution via the Abramowitz–Stegun
// polynomial, as in the CUDA SDK sample.
func cnd(d float64) float64 {
	const (
		a1 = 0.31938153
		a2 = -0.356563782
		a3 = 1.781477937
		a4 = -1.821255978
		a5 = 1.330274429
	)
	l := math.Abs(d)
	k := 1.0 / (1.0 + 0.2316419*l)
	w := 1.0 - 1.0/math.Sqrt(2*math.Pi)*math.Exp(-l*l/2)*
		(a1*k+a2*k*k+a3*k*k*k+a4*k*k*k*k+a5*k*k*k*k*k)
	if d < 0 {
		return 1.0 - w
	}
	return w
}

// NewBlackScholes builds C-BlackScholes, the Fig. 3(g) counter-example:
// every thread reads each of its three inputs exactly once with perfectly
// coalesced accesses, so every data memory block has the same access count
// — a flat profile with no hot knee.
func NewBlackScholes(cfg BlackScholesConfig) (*App, error) {
	cfg = cfg.withDefaults()
	n := cfg.Options
	if n <= 0 {
		return nil, fmt.Errorf("kernels: blackscholes: options must be positive, got %d", n)
	}
	m := mem.New()
	bufS, err := m.Alloc("StockPrice", n*4, true)
	if err != nil {
		return nil, err
	}
	bufX, err := m.Alloc("OptionStrike", n*4, true)
	if err != nil {
		return nil, err
	}
	bufT, err := m.Alloc("OptionYears", n*4, true)
	if err != nil {
		return nil, err
	}
	bufCall, err := m.Alloc("CallResult", n*4, false)
	if err != nil {
		return nil, err
	}
	bufPut, err := m.Alloc("PutResult", n*4, false)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.WriteF32(bufS.ElemAddr(i), 5+float32(i%100))          // 5..104
		m.WriteF32(bufX.ElemAddr(i), 1+float32((i*7)%100))      // 1..100
		m.WriteF32(bufT.ElemAddr(i), 0.25+float32(i%40)*0.0975) // 0.25..4
	}

	ss := &siteSet{}
	ldS := ss.site("k1.ld.S", bufS)
	ldX := ss.site("k1.ld.X", bufX)
	ldT := ss.site("k1.ld.T", bufT)
	stC := ss.site("k1.st.call", nil)
	stP := ss.site("k1.st.put", nil)
	r, v := cfg.RiskFree, cfg.Volatility

	k := &simt.Kernel{
		KernelName: "blackscholes_kernel1",
		Grid:       arch.Dim3{X: (n + polyThreadsPerCTA - 1) / polyThreadsPerCTA},
		Block:      arch.Dim3{X: polyThreadsPerCTA},
		Run: func(w *simt.WarpCtx) {
			idx := w.ScratchI32(0)
			s := w.ScratchF32(0)
			x := w.ScratchF32(1)
			tt := w.ScratchF32(2)
			out := w.ScratchF32(3)
			any := false
			for lane := 0; lane < w.NumLanes; lane++ {
				if i := w.LinearThreadID(lane); i < n {
					idx[lane] = int32(i)
					any = true
				} else {
					idx[lane] = simt.InactiveLane
				}
			}
			if !any {
				return
			}
			w.LoadF32(ldS, bufS, idx, s)
			w.LoadF32(ldX, bufX, idx, x)
			w.LoadF32(ldT, bufT, idx, tt)
			// Call values.
			for lane := 0; lane < w.NumLanes; lane++ {
				if idx[lane] == simt.InactiveLane {
					continue
				}
				sp, xp, tp := float64(s[lane]), float64(x[lane]), float64(tt[lane])
				sqrtT := math.Sqrt(tp)
				d1 := (math.Log(sp/xp) + (r+0.5*v*v)*tp) / (v * sqrtT)
				d2 := d1 - v*sqrtT
				expRT := math.Exp(-r * tp)
				out[lane] = float32(sp*cnd(d1) - xp*expRT*cnd(d2))
			}
			w.Compute(40)
			w.StoreF32(stC, bufCall, idx, out)
			// Put values via put-call parity.
			for lane := 0; lane < w.NumLanes; lane++ {
				if idx[lane] == simt.InactiveLane {
					continue
				}
				sp, xp, tp := float64(s[lane]), float64(x[lane]), float64(tt[lane])
				sqrtT := math.Sqrt(tp)
				d1 := (math.Log(sp/xp) + (r+0.5*v*v)*tp) / (v * sqrtT)
				d2 := d1 - v*sqrtT
				expRT := math.Exp(-r * tp)
				out[lane] = float32(xp*expRT*(1-cnd(d2)) - sp*(1-cnd(d1)))
			}
			w.Compute(40)
			w.StoreF32(stP, bufPut, idx, out)
		},
	}

	return &App{
		Name:     "C-BlackScholes",
		Mem:      m,
		Kernels:  []*simt.Kernel{k},
		Objects:  []*mem.Buffer{bufS, bufX, bufT},
		HotCount: 0, // flat profile: no hot objects
		Sites:    ss.sites,
		Metric:   metrics.Metric{Kind: metrics.VectorDeviation, Threshold: polyVectorThreshold},
		output: func(m *mem.Memory) []float32 {
			out := m.ReadF32Slice(bufCall, n)
			return append(out, m.ReadF32Slice(bufPut, n)...)
		},
	}, nil
}
