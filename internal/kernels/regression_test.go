package kernels

import (
	"hash/fnv"
	"math"
	"testing"
)

// outputDigest hashes an output vector bit-exactly.
func outputDigest(out []float32) uint64 {
	h := fnv.New64a()
	var buf [4]byte
	for _, v := range out {
		bits := math.Float32bits(v)
		buf[0] = byte(bits)
		buf[1] = byte(bits >> 8)
		buf[2] = byte(bits >> 16)
		buf[3] = byte(bits >> 24)
		h.Write(buf[:])
	}
	return h.Sum64()
}

// TestGoldenOutputsStable pins every application's golden output digest:
// the functional semantics of the kernels must not drift silently, since
// the fault-injection campaigns and Table III profiles all derive from
// them. (C-NN is excluded: its weights depend on the network construction
// cost knob; its semantics are pinned against the nn reference instead.)
//
// If a digest changes deliberately (a kernel fix, a default-size change),
// re-pin it and record why in the commit.
func TestGoldenOutputsStable(t *testing.T) {
	pinned := map[string]uint64{
		"P-BICG":         0xddb52f9c177e3e13,
		"P-GESUMMV":      0x9a10a58dbacd3ddd,
		"P-MVT":          0x28e2b556615e5ac6,
		"P-GRAMSCHM":     0xd73d2ade7105f229,
		"C-BlackScholes": 0x83f8a658f45f27b8,
		"A-Laplacian":    0x3750a0efc7cd7aa5, // re-pinned: 8-bit output quantization
		"A-Meanfilter":   0xbd103e5aae3f1a70, // re-pinned: 8-bit output quantization
		"A-Sobel":        0xe05735870ae94d90, // re-pinned: 8-bit output quantization
		"A-SRAD":         0xddd81727bb59964e, // re-pinned: 8-bit output quantization
	}
	for _, b := range All() {
		if b.Name == "C-NN" {
			continue
		}
		b := b
		t.Run(b.Name, func(t *testing.T) {
			app, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			out, err := app.GoldenRun()
			if err != nil {
				t.Fatal(err)
			}
			got := outputDigest(out)
			want := pinned[b.Name]
			if want == 0 {
				t.Logf("pin digest: %q: %#x,", b.Name, got)
				t.Skip("digest not pinned yet")
			}
			if got != want {
				t.Errorf("golden output digest = %#x, pinned %#x — semantics changed", got, want)
			}
		})
	}
}
