package kernels

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/metrics"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// MVTConfig sizes P-MVT (paper: N = 4096).
type MVTConfig struct {
	N int
}

func (c MVTConfig) withDefaults() MVTConfig {
	if c.N == 0 {
		c.N = 192
	}
	return c
}

// NewMVT builds P-MVT: x1 += A·y1 (row-strided matrix reads) and
// x2 += Aᵀ·y2 (column-coalesced matrix reads). The broadcast-read vectors
// y1 and y2 are the hot data objects (Table III).
func NewMVT(cfg MVTConfig) (*App, error) {
	cfg = cfg.withDefaults()
	n := cfg.N
	if n <= 0 {
		return nil, fmt.Errorf("kernels: mvt: size must be positive, got %d", n)
	}
	m := mem.New()
	bufY1, err := m.Alloc("y1", n*4, true)
	if err != nil {
		return nil, err
	}
	bufY2, err := m.Alloc("y2", n*4, true)
	if err != nil {
		return nil, err
	}
	bufA, err := m.Alloc("a", n*n*4, true)
	if err != nil {
		return nil, err
	}
	bufX1, err := m.Alloc("x1", n*4, false)
	if err != nil {
		return nil, err
	}
	bufX2, err := m.Alloc("x2", n*4, false)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		m.WriteF32(bufY1.ElemAddr(i), float32(i%11+1)/11)
		m.WriteF32(bufY2.ElemAddr(i), float32(i%17+1)/17)
		m.WriteF32(bufX1.ElemAddr(i), float32(i%5)/5)
		m.WriteF32(bufX2.ElemAddr(i), float32(i%9)/9)
		for j := 0; j < n; j++ {
			m.WriteF32(bufA.ElemAddr(i*n+j), float32((i+j*2)%n)/float32(n))
		}
	}

	ss := &siteSet{}
	ldX1 := ss.site("k1.ld.x1", bufX1)
	ldA1 := ss.site("k1.ld.a", bufA)
	ldY1 := ss.site("k1.ld.y1", bufY1)
	stX1 := ss.site("k1.st.x1", nil)
	ldX2 := ss.site("k2.ld.x2", bufX2)
	ldA2 := ss.site("k2.ld.a", bufA)
	ldY2 := ss.site("k2.ld.y2", bufY2)
	stX2 := ss.site("k2.st.x2", nil)

	grid := arch.Dim3{X: (n + polyThreadsPerCTA - 1) / polyThreadsPerCTA}

	// mvtKernel builds one of the two kernels; transposed selects Aᵀ.
	mvtKernel := func(name string, transposed bool, bufX, bufY *mem.Buffer, ldX, ldA, ldY, stX simt.Site) *simt.Kernel {
		return &simt.Kernel{
			KernelName: name,
			Grid:       grid,
			Block:      arch.Dim3{X: polyThreadsPerCTA},
			Run: func(w *simt.WarpCtx) {
				idx := w.ScratchI32(0)
				dst := w.ScratchF32(0)
				acc := w.ScratchF32(1)
				any := false
				for lane := 0; lane < w.NumLanes; lane++ {
					if w.LinearThreadID(lane) < n {
						idx[lane] = int32(w.LinearThreadID(lane))
						any = true
					} else {
						idx[lane] = simt.InactiveLane
					}
				}
				if !any {
					return
				}
				// x[i] accumulates on top of its initial value.
				w.LoadF32(ldX, bufX, idx, acc)
				for j := 0; j < n; j++ {
					for lane := 0; lane < w.NumLanes; lane++ {
						i := w.LinearThreadID(lane)
						switch {
						case i >= n:
							idx[lane] = simt.InactiveLane
						case transposed:
							idx[lane] = int32(j*n + i) // coalesced columns
						default:
							idx[lane] = int32(i*n + j) // strided rows
						}
					}
					w.LoadF32(ldA, bufA, idx, dst)
					yv := w.LoadF32Broadcast(ldY, bufY, int32(j))
					for lane := 0; lane < w.NumLanes; lane++ {
						acc[lane] += dst[lane] * yv
					}
					w.Compute(1)
				}
				for lane := 0; lane < w.NumLanes; lane++ {
					if i := w.LinearThreadID(lane); i < n {
						idx[lane] = int32(i)
					} else {
						idx[lane] = simt.InactiveLane
					}
				}
				w.StoreF32(stX, bufX, idx, acc)
			},
		}
	}

	k1 := mvtKernel("mvt_kernel1", false, bufX1, bufY1, ldX1, ldA1, ldY1, stX1)
	k2 := mvtKernel("mvt_kernel2", true, bufX2, bufY2, ldX2, ldA2, ldY2, stX2)

	return &App{
		Name:     "P-MVT",
		Mem:      m,
		Kernels:  []*simt.Kernel{k1, k2},
		Objects:  []*mem.Buffer{bufY1, bufY2, bufA}, // Table III order: y1, y2, a
		HotCount: 2,
		Sites:    ss.sites,
		Metric:   metrics.Metric{Kind: metrics.VectorDeviation, Threshold: polyVectorThreshold},
		output: func(m *mem.Memory) []float32 {
			out := m.ReadF32Slice(bufX1, n)
			return append(out, m.ReadF32Slice(bufX2, n)...)
		},
	}, nil
}
