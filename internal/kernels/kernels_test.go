package kernels

import (
	"errors"
	"math"
	"sync"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/nn"
)

// smallNet caches a cheap network for the C-NN tests.
var (
	netOnce sync.Once
	netVal  *nn.Network
	netErr  error
)

func smallNet(t *testing.T) *nn.Network {
	t.Helper()
	netOnce.Do(func() {
		netVal, netErr = nn.Train(nn.TrainConfig{TrainSamples: 60})
	})
	if netErr != nil {
		t.Fatalf("nn.Train: %v", netErr)
	}
	return netVal
}

func golden(t *testing.T, a *App) []float32 {
	t.Helper()
	out, err := a.GoldenRun()
	if err != nil {
		t.Fatalf("%s golden run: %v", a.Name, err)
	}
	return out
}

func TestBICGMatchesReference(t *testing.T) {
	const n = 96
	app, err := NewBICG(BICGConfig{NX: n, NY: n})
	if err != nil {
		t.Fatal(err)
	}
	out := golden(t, app)
	if len(out) != 2*n {
		t.Fatalf("output length %d, want %d", len(out), 2*n)
	}
	// Reference from the same init formulas.
	a := make([]float32, n*n)
	r := make([]float32, n)
	p := make([]float32, n)
	for i := 0; i < n; i++ {
		r[i] = float32(i%7+1) / 7
		p[i] = float32(i%13+1) / 13
		for j := 0; j < n; j++ {
			a[i*n+j] = float32((i*(j+1))%n) / float32(n)
		}
	}
	for j := 0; j < n; j++ {
		var s float32
		for i := 0; i < n; i++ {
			s += a[i*n+j] * r[i]
		}
		if diff := math.Abs(float64(out[j] - s)); diff > 1e-3 {
			t.Fatalf("s[%d] = %v, want %v", j, out[j], s)
		}
	}
	for i := 0; i < n; i++ {
		var q float32
		for j := 0; j < n; j++ {
			q += a[i*n+j] * p[j]
		}
		if diff := math.Abs(float64(out[n+i] - q)); diff > 1e-3 {
			t.Fatalf("q[%d] = %v, want %v", i, out[n+i], q)
		}
	}
}

func TestGESUMMVMatchesReference(t *testing.T) {
	const n = 64
	app, err := NewGESUMMV(GESUMMVConfig{N: n})
	if err != nil {
		t.Fatal(err)
	}
	out := golden(t, app)
	for i := 0; i < n; i++ {
		var ta, tb float32
		for j := 0; j < n; j++ {
			av := float32((i*j+1)%n) / float32(n)
			bv := float32((i*(j+3))%n) / float32(n)
			xv := float32(j%19+1) / 19
			ta += av * xv
			tb += bv * xv
		}
		want := 1.5*ta + 2.5*tb
		if diff := math.Abs(float64(out[i] - want)); diff > 1e-3 {
			t.Fatalf("y[%d] = %v, want %v", i, out[i], want)
		}
	}
}

func TestMVTMatchesReference(t *testing.T) {
	const n = 64
	app, err := NewMVT(MVTConfig{N: n})
	if err != nil {
		t.Fatal(err)
	}
	out := golden(t, app)
	for i := 0; i < n; i++ {
		x1 := float32(i%5) / 5
		x2 := float32(i%9) / 9
		for j := 0; j < n; j++ {
			x1 += float32((i+j*2)%n) / float32(n) * (float32(j%11+1) / 11)
			x2 += float32((j+i*2)%n) / float32(n) * (float32(j%17+1) / 17)
		}
		if diff := math.Abs(float64(out[i] - x1)); diff > 1e-3 {
			t.Fatalf("x1[%d] = %v, want %v", i, out[i], x1)
		}
		if diff := math.Abs(float64(out[n+i] - x2)); diff > 1e-3 {
			t.Fatalf("x2[%d] = %v, want %v", i, out[n+i], x2)
		}
	}
}

func TestGramSchmidtProducesOrthonormalColumns(t *testing.T) {
	const n = 24
	app, err := NewGramSchmidt(GramSchmidtConfig{N: n})
	if err != nil {
		t.Fatal(err)
	}
	q := golden(t, app)
	// QᵀQ ≈ I.
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ {
			var dot float64
			for i := 0; i < n; i++ {
				dot += float64(q[i*n+a]) * float64(q[i*n+b])
			}
			want := 0.0
			if a == b {
				want = 1.0
			}
			if math.Abs(dot-want) > 1e-3 {
				t.Fatalf("QᵀQ[%d][%d] = %v, want %v", a, b, dot, want)
			}
		}
	}
}

func TestBlackScholesSanity(t *testing.T) {
	app, err := NewBlackScholes(BlackScholesConfig{Options: 256})
	if err != nil {
		t.Fatal(err)
	}
	out := golden(t, app)
	calls, puts := out[:256], out[256:]
	m := app.Mem
	bufS, _ := m.BufferByName("StockPrice")
	bufX, _ := m.BufferByName("OptionStrike")
	bufT, _ := m.BufferByName("OptionYears")
	for i := 0; i < 256; i++ {
		s := float64(m.ReadF32(bufS.ElemAddr(i)))
		x := float64(m.ReadF32(bufX.ElemAddr(i)))
		tt := float64(m.ReadF32(bufT.ElemAddr(i)))
		c, p := float64(calls[i]), float64(puts[i])
		if c < 0 || p < 0 {
			t.Fatalf("option %d: negative price c=%v p=%v", i, c, p)
		}
		// Put-call parity: C − P = S − X·e^{−rT}.
		parity := s - x*math.Exp(-0.02*tt)
		if math.Abs((c-p)-parity) > 1e-2 {
			t.Fatalf("option %d: parity violated: C−P=%v, S−Xe^{-rT}=%v", i, c-p, parity)
		}
		// Intrinsic value bound.
		if c < s-x-1e-3 && tt > 0 {
			t.Fatalf("option %d: call %v below intrinsic %v", i, c, s-x)
		}
	}
}

func TestLaplacianMatchesReference(t *testing.T) {
	const w, h = 40, 32
	app, err := NewLaplacian(StencilConfig{Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	out := golden(t, app)
	img := synthImage(w, h)
	filter := []float32{0, -1, 0, -1, 4, -1, 0, -1, 0}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			var want float32
			for ky := -1; ky <= 1; ky++ {
				for kx := -1; kx <= 1; kx++ {
					nx, ny := x+kx, y+ky
					if nx < 0 || nx >= w || ny < 0 || ny >= h {
						continue
					}
					want += img[ny*w+nx] * filter[(ky+1)*3+kx+1]
				}
			}
			// Outputs are quantized to the 8-bit pixel domain like the
			// real benchmark's image files.
			if got := out[y*w+x]; math.Abs(float64(got-quantize8(want))) > 1e-5 {
				t.Fatalf("laplacian(%d,%d) = %v, want %v", x, y, got, quantize8(want))
			}
		}
	}
}

func TestMeanfilterMatchesReference(t *testing.T) {
	const w, h = 32, 24
	app, err := NewMeanfilter(StencilConfig{Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	out := golden(t, app)
	img := synthImage(w, h)
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			var sum float32
			for ky := -1; ky <= 1; ky++ {
				for kx := -1; kx <= 1; kx++ {
					sum += img[(y+ky)*w+x+kx]
				}
			}
			want := quantize8(sum / 9)
			if got := out[y*w+x]; math.Abs(float64(got-want)) > 1e-5 {
				t.Fatalf("mean(%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestSobelMatchesReference(t *testing.T) {
	const w, h = 32, 24
	app, err := NewSobel(StencilConfig{Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	out := golden(t, app)
	img := synthImage(w, h)
	gxF := []float32{-1, 0, 1, -2, 0, 2, -1, 0, 1}
	for y := 1; y < h-1; y++ {
		for x := 1; x < w-1; x++ {
			var gx, gy float32
			for ky := -1; ky <= 1; ky++ {
				for kx := -1; kx <= 1; kx++ {
					tap := (ky+1)*3 + kx + 1
					trans := (kx+1)*3 + ky + 1
					v := img[(y+ky)*w+x+kx]
					gx += v * gxF[tap]
					gy += v * gxF[trans]
				}
			}
			want := quantize8(float32(math.Abs(float64(gx)) + math.Abs(float64(gy))))
			if got := out[y*w+x]; math.Abs(float64(got-want)) > 1e-4 {
				t.Fatalf("sobel(%d,%d) = %v, want %v", x, y, got, want)
			}
		}
	}
}

func TestSRADOutputReasonable(t *testing.T) {
	const w, h = 32, 32
	app, err := NewSRAD(SRADConfig{Width: w, Height: h})
	if err != nil {
		t.Fatal(err)
	}
	out := golden(t, app)
	img := synthImage(w, h)
	changed := false
	for i, v := range out {
		if math.IsNaN(float64(v)) || math.IsInf(float64(v), 0) {
			t.Fatalf("srad output[%d] = %v", i, v)
		}
		if v != img[i] {
			changed = true
		}
	}
	if !changed {
		t.Fatal("srad did not diffuse the image")
	}
	// Diffusion smooths: total variation must not increase.
	tv := func(p []float32) float64 {
		var s float64
		for y := 0; y < h; y++ {
			for x := 0; x < w-1; x++ {
				s += math.Abs(float64(p[y*w+x+1] - p[y*w+x]))
			}
		}
		return s
	}
	if tv(out) > tv(img)*1.001 {
		t.Errorf("srad increased total variation: %v → %v", tv(img), tv(out))
	}
}

func TestCNNMatchesReferenceInference(t *testing.T) {
	net := smallNet(t)
	const images = 3
	app, err := NewCNN(CNNConfig{Images: images, Net: net})
	if err != nil {
		t.Fatal(err)
	}
	labels := golden(t, app)
	ds := nn.GenerateDataset(images, 101) // seed 1+100 inside NewCNN
	for i := 0; i < images; i++ {
		want := net.Infer(ds.Images[i])
		if int(labels[i]) != want {
			t.Errorf("image %d: kernel classified %d, reference %d", i, int(labels[i]), want)
		}
	}
}

func TestRegistry(t *testing.T) {
	all := All()
	if len(all) != 10 {
		t.Fatalf("All() = %d apps, want 10", len(all))
	}
	if got := len(Evaluated()); got != 8 {
		t.Fatalf("Evaluated() = %d apps, want 8", got)
	}
	if _, err := ByName("P-BICG"); err != nil {
		t.Errorf("ByName(P-BICG): %v", err)
	}
	if _, err := ByName("nope"); err == nil {
		t.Error("unknown name accepted")
	}
}

func TestAllAppsBuildAndRun(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.Name == "C-NN" {
				t.Skip("covered by dedicated C-NN tests (expensive build)")
			}
			app, err := b.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if app.Name != b.Name {
				t.Errorf("app name %q != builder name %q", app.Name, b.Name)
			}
			if app.HotCount > len(app.Objects) {
				t.Errorf("HotCount %d exceeds %d objects", app.HotCount, len(app.Objects))
			}
			if b.HotPattern && app.HotCount == 0 {
				t.Error("hot-pattern app declares no hot objects")
			}
			if !b.HotPattern && app.HotCount != 0 {
				t.Error("counter-example declares hot objects")
			}
			for _, o := range app.HotObjects() {
				if !o.ReadOnly {
					t.Errorf("hot object %q is not read-only", o.Name)
				}
			}
			out := golden(t, app)
			if len(out) == 0 {
				t.Fatal("empty output")
			}
			// Deterministic across runs.
			out2 := golden(t, app)
			for i := range out {
				if out[i] != out2[i] {
					t.Fatalf("output differs between golden runs at %d", i)
				}
			}
		})
	}
}

func TestGoldenRunLeavesImagePristine(t *testing.T) {
	app, err := NewBICG(BICGConfig{NX: 64, NY: 64})
	if err != nil {
		t.Fatal(err)
	}
	bufS, _ := app.Mem.BufferByName("s")
	before := app.Mem.ReadF32(bufS.ElemAddr(0))
	if _, err := app.GoldenRun(); err != nil {
		t.Fatal(err)
	}
	if got := app.Mem.ReadF32(bufS.ElemAddr(0)); got != before {
		t.Error("GoldenRun mutated the golden image")
	}
}

// TestEndToEndFaultProtection is the headline integration test: a multi-bit
// fault in a hot memory block causes an SDC at baseline, a terminate under
// detection, and a clean output under correction.
func TestEndToEndFaultProtection(t *testing.T) {
	app, err := NewBICG(BICGConfig{NX: 64, NY: 64})
	if err != nil {
		t.Fatal(err)
	}
	want := golden(t, app)
	bufR, ok := app.Mem.BufferByName("r")
	if !ok {
		t.Fatal("no r buffer")
	}

	// Baseline: fault escapes to the output (SDC).
	base := app.Mem.Clone()
	// Stuck-at-0 on two exponent bits that are 1 in r[3] ≈ 0.571: a 2-bit
	// flip that escapes SECDED and shrinks the value by many orders of
	// magnitude.
	if err := base.InjectStuckAt(bufR.ElemAddr(3), 0x30000000, false); err != nil {
		t.Fatal(err)
	}
	if err := app.RunOn(base, nil); err != nil {
		t.Fatalf("baseline run: %v", err)
	}
	got := app.Output(base)
	sdc, err := app.Metric.IsSDC(got, want)
	if err != nil {
		t.Fatal(err)
	}
	if !sdc {
		t.Fatal("hot-block fault did not corrupt the baseline output")
	}

	// Detection: the run terminates.
	detApp, err := NewBICG(BICGConfig{NX: 64, NY: 64})
	if err != nil {
		t.Fatal(err)
	}
	detPlan, err := core.NewPlan(detApp.Mem, core.PlanConfig{
		Scheme:  core.Detection,
		Objects: detApp.HotObjects(),
		Sites:   detApp.Sites,
	})
	if err != nil {
		t.Fatal(err)
	}
	detR, _ := detApp.Mem.BufferByName("r")
	detClone := detApp.Mem.Clone()
	if err := detClone.InjectStuckAt(detR.ElemAddr(3), 0x30000000, false); err != nil {
		t.Fatal(err)
	}
	err = detApp.RunOn(detClone, detPlan.ForMemory(detClone))
	if !errors.Is(err, core.ErrFaultDetected) {
		t.Fatalf("detection run err = %v, want ErrFaultDetected", err)
	}

	// Correction: the output matches the fault-free baseline.
	corApp, err := NewBICG(BICGConfig{NX: 64, NY: 64})
	if err != nil {
		t.Fatal(err)
	}
	corPlan, err := core.NewPlan(corApp.Mem, core.PlanConfig{
		Scheme:  core.Correction,
		Objects: corApp.HotObjects(),
		Sites:   corApp.Sites,
	})
	if err != nil {
		t.Fatal(err)
	}
	corWant, err := corApp.GoldenRun()
	if err != nil {
		t.Fatal(err)
	}
	corR, _ := corApp.Mem.BufferByName("r")
	corClone := corApp.Mem.Clone()
	if err := corClone.InjectStuckAt(corR.ElemAddr(3), 0x30000000, false); err != nil {
		t.Fatal(err)
	}
	if err := corApp.RunOn(corClone, corPlan.ForMemory(corClone)); err != nil {
		t.Fatalf("correction run: %v", err)
	}
	corGot := corApp.Output(corClone)
	sdc, err = corApp.Metric.IsSDC(corGot, corWant)
	if err != nil {
		t.Fatal(err)
	}
	if sdc {
		t.Fatal("correction failed to repair the hot-block fault")
	}
}

func TestTraceRunProducesTraces(t *testing.T) {
	app, err := NewBICG(BICGConfig{NX: 64, NY: 64})
	if err != nil {
		t.Fatal(err)
	}
	traces, err := app.TraceRun(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d, want 2 kernels", len(traces))
	}
	for _, tr := range traces {
		if tr.Instructions() == 0 || tr.Transactions() == 0 {
			t.Fatalf("kernel %s: empty trace", tr.Kernel)
		}
	}
}

func TestHotSitesFitLoadTable(t *testing.T) {
	for _, b := range All() {
		b := b
		t.Run(b.Name, func(t *testing.T) {
			if b.Name == "C-NN" {
				t.Skip("covered via smallNet variant below")
			}
			app, err := b.Build()
			if err != nil {
				t.Fatal(err)
			}
			hot := 0
			for _, sb := range app.Sites {
				for _, o := range app.HotObjects() {
					if sb.Buf.ID == o.ID {
						hot++
					}
				}
			}
			if hot > core.MaxLoadSites {
				t.Errorf("%d protected load sites exceed the %d-entry table", hot, core.MaxLoadSites)
			}
			if len(app.Sites) > 22+10 {
				t.Errorf("%d total load sites; the paper's apps stay ≤22", len(app.Sites))
			}
		})
	}
}

func TestCNNHotPlanBudget(t *testing.T) {
	app, err := NewCNN(CNNConfig{Images: 2, Net: smallNet(t)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := core.NewPlan(app.Mem.Clone(), core.PlanConfig{
		Scheme:  core.Correction,
		Objects: app.HotObjects(),
		Sites:   app.Sites,
	}); err != nil {
		// Plans must build against a clone too (shared buffer metadata).
		t.Fatalf("C-NN hot plan: %v", err)
	}
}
