package kernels

import (
	"fmt"
	"math"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/metrics"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// GramSchmidtConfig sizes P-GRAMSCHM (paper: 2048×2048; scaled default).
type GramSchmidtConfig struct {
	// N is the matrix dimension (N rows × N columns).
	N int
}

func (c GramSchmidtConfig) withDefaults() GramSchmidtConfig {
	if c.N == 0 {
		c.N = 48
	}
	return c
}

// NewGramSchmidt builds P-GRAMSCHM, the Fig. 3(h) counter-example: modified
// Gram-Schmidt QR factorisation. Column j of the matrix is touched once per
// elimination step k ≤ j, so per-block access counts rise in small steps —
// the staircase profile with no hot knee. The matrix is read-write, so
// nothing is eligible for replication (HotCount = 0).
func NewGramSchmidt(cfg GramSchmidtConfig) (*App, error) {
	cfg = cfg.withDefaults()
	n := cfg.N
	if n <= 0 {
		return nil, fmt.Errorf("kernels: gramschmidt: size must be positive, got %d", n)
	}
	m := mem.New()
	bufA, err := m.Alloc("A", n*n*4, false)
	if err != nil {
		return nil, err
	}
	bufR, err := m.Alloc("R", n*n*4, false)
	if err != nil {
		return nil, err
	}
	bufQ, err := m.Alloc("Q", n*n*4, false)
	if err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			// Diagonally dominant so the factorisation stays well
			// conditioned.
			v := float32((i*j)%n)/float32(n) + 0.1
			if i == j {
				v += float32(n) / 8
			}
			m.WriteF32(bufA.ElemAddr(i*n+j), v)
		}
	}

	ss := &siteSet{}
	ld1A := ss.site("k1.ld.A", bufA)
	st1R := ss.site("k1.st.R", nil)
	ld2A := ss.site("k2.ld.A", bufA)
	ld2R := ss.site("k2.ld.R", bufR)
	st2Q := ss.site("k2.st.Q", nil)
	ld3Q := ss.site("k3.ld.Q", bufQ)
	ld3A := ss.site("k3.ld.A", bufA)
	st3R := ss.site("k3.st.R", nil)
	st3A := ss.site("k3.st.A", nil)

	var ks []*simt.Kernel
	for k := 0; k < n; k++ {
		k := k
		// Kernel 1: R[k][k] = ‖A[:,k]‖ (one warp, lane-strided reduction).
		ks = append(ks, &simt.Kernel{
			KernelName: fmt.Sprintf("gramschmidt_kernel1_%d", k),
			Grid:       arch.Dim3{X: 1},
			Block:      arch.Dim3{X: arch.WarpSize},
			Run: func(w *simt.WarpCtx) {
				idx := w.ScratchI32(0)
				dst := w.ScratchF32(0)
				sum := float32(0)
				for base := 0; base < n; base += arch.WarpSize {
					for lane := 0; lane < w.NumLanes; lane++ {
						if i := base + lane; i < n {
							idx[lane] = int32(i*n + k)
						} else {
							idx[lane] = simt.InactiveLane
						}
					}
					w.LoadF32(ld1A, bufA, idx, dst)
					for lane := 0; lane < w.NumLanes; lane++ {
						if idx[lane] != simt.InactiveLane {
							sum += dst[lane] * dst[lane]
						}
					}
					w.Compute(2)
				}
				w.Compute(8) // reduction + sqrt
				for lane := 0; lane < w.NumLanes; lane++ {
					idx[lane] = simt.InactiveLane
					dst[lane] = 0
				}
				idx[0] = int32(k*n + k)
				dst[0] = float32(math.Sqrt(float64(sum)))
				w.StoreF32(st1R, bufR, idx, dst)
			},
		})
		// Kernel 2: Q[:,k] = A[:,k] / R[k][k].
		ks = append(ks, &simt.Kernel{
			KernelName: fmt.Sprintf("gramschmidt_kernel2_%d", k),
			Grid:       arch.Dim3{X: (n + polyThreadsPerCTA - 1) / polyThreadsPerCTA},
			Block:      arch.Dim3{X: polyThreadsPerCTA},
			Run: func(w *simt.WarpCtx) {
				idx := w.ScratchI32(0)
				dst := w.ScratchF32(0)
				any := false
				for lane := 0; lane < w.NumLanes; lane++ {
					if i := w.LinearThreadID(lane); i < n {
						idx[lane] = int32(i*n + k)
						any = true
					} else {
						idx[lane] = simt.InactiveLane
					}
				}
				if !any {
					return
				}
				w.LoadF32(ld2A, bufA, idx, dst)
				rkk := w.LoadF32Broadcast(ld2R, bufR, int32(k*n+k))
				if rkk == 0 {
					rkk = 1
				}
				for lane := 0; lane < w.NumLanes; lane++ {
					dst[lane] /= rkk
				}
				w.Compute(1)
				w.StoreF32(st2Q, bufQ, idx, dst)
			},
		})
		// Kernel 3: for each j > k: R[k][j] = Q[:,k]ᵀ·A[:,j];
		// A[:,j] -= Q[:,k]·R[k][j]. One thread per column j.
		if k == n-1 {
			continue
		}
		ks = append(ks, &simt.Kernel{
			KernelName: fmt.Sprintf("gramschmidt_kernel3_%d", k),
			Grid:       arch.Dim3{X: (n + polyThreadsPerCTA - 1) / polyThreadsPerCTA},
			Block:      arch.Dim3{X: polyThreadsPerCTA},
			Run: func(w *simt.WarpCtx) {
				idx := w.ScratchI32(0)
				av := w.ScratchF32(0)
				acc := w.ScratchF32(1)
				upd := w.ScratchF32(2)
				any := false
				for lane := 0; lane < w.NumLanes; lane++ {
					acc[lane] = 0
					j := w.LinearThreadID(lane)
					if j > k && j < n {
						any = true
					}
				}
				if !any {
					return
				}
				for i := 0; i < n; i++ {
					qv := w.LoadF32Broadcast(ld3Q, bufQ, int32(i*n+k))
					for lane := 0; lane < w.NumLanes; lane++ {
						if j := w.LinearThreadID(lane); j > k && j < n {
							idx[lane] = int32(i*n + j)
						} else {
							idx[lane] = simt.InactiveLane
						}
					}
					w.LoadF32(ld3A, bufA, idx, av)
					for lane := 0; lane < w.NumLanes; lane++ {
						acc[lane] += qv * av[lane]
					}
					w.Compute(1)
				}
				for lane := 0; lane < w.NumLanes; lane++ {
					if j := w.LinearThreadID(lane); j > k && j < n {
						idx[lane] = int32(k*n + j)
					} else {
						idx[lane] = simt.InactiveLane
					}
				}
				w.StoreF32(st3R, bufR, idx, acc)
				for i := 0; i < n; i++ {
					qv := w.LoadF32Broadcast(ld3Q, bufQ, int32(i*n+k))
					for lane := 0; lane < w.NumLanes; lane++ {
						if j := w.LinearThreadID(lane); j > k && j < n {
							idx[lane] = int32(i*n + j)
						} else {
							idx[lane] = simt.InactiveLane
						}
					}
					w.LoadF32(ld3A, bufA, idx, av)
					for lane := 0; lane < w.NumLanes; lane++ {
						upd[lane] = av[lane] - qv*acc[lane]
					}
					w.Compute(1)
					w.StoreF32(st3A, bufA, idx, upd)
				}
			},
		})
	}

	return &App{
		Name:     "P-GRAMSCHM",
		Mem:      m,
		Kernels:  ks,
		Objects:  []*mem.Buffer{bufA}, // read-write: nothing protectable
		HotCount: 0,
		Sites:    ss.sites,
		Metric:   metrics.Metric{Kind: metrics.VectorDeviation, Threshold: polyVectorThreshold},
		output: func(m *mem.Memory) []float32 {
			return m.ReadF32Slice(bufQ, n*n)
		},
	}, nil
}
