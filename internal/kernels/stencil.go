package kernels

import (
	"fmt"
	"math"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/metrics"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// StencilConfig sizes the AxBench image-filter applications (the paper
// filters full-size photographs; the scaled default keeps the profile
// shape).
type StencilConfig struct {
	// Width and Height of the input image in pixels.
	Width, Height int
}

func (c StencilConfig) withDefaults() StencilConfig {
	if c.Width == 0 {
		c.Width = 96
	}
	if c.Height == 0 {
		c.Height = 96
	}
	return c
}

// nrmseThreshold is the AxBench SDC cut-off: output images whose NRMSE
// versus the fault-free baseline exceeds 2% are silent data corruptions.
const nrmseThreshold = 0.02

// quantize8 maps a float pixel to the 8-bit output domain the AxBench
// benchmarks write (unsigned char images): clamp to [0,1], round to 1/255
// steps. Quantization bounds the damage a single wild float (a flipped
// exponent bit) can contribute to the NRMSE — exactly as the real
// benchmarks' image files do.
func quantize8(v float32) float32 {
	if v != v || v < 0 { // NaN or negative
		return 0
	}
	if v > 1 {
		return 1
	}
	return float32(int(v*255+0.5)) / 255
}

// synthImage renders a deterministic test image with smooth gradients and
// sharp features, giving the edge filters something to detect.
func synthImage(w, h int) []float32 {
	img := make([]float32, w*h)
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v := 0.5 + 0.3*math.Sin(float64(x)/7)*math.Cos(float64(y)/9)
			if x > w/4 && x < w/2 && y > h/4 && y < h/2 {
				v += 0.35 // sharp box
			}
			if (x+y)%17 < 3 {
				v -= 0.25 // diagonal stripes
			}
			img[y*w+x] = float32(v)
		}
	}
	return img
}

// stencilSpec parameterises the three AxBench filters.
type stencilSpec struct {
	name string
	// filter is the 3×3 kernel stored in the Filter data object; nil for
	// the meanfilter, which has no filter object.
	filter []float32
	// perTapScalars selects the Listing 3 pattern (the bounds check
	// re-reads the width/height device scalars on every tap) versus the
	// meanfilter's once-per-window-row reads — which is what separates
	// their hot-access percentages in Table III.
	perTapScalars bool
	// transposedSecond accumulates a second gradient using the transposed
	// filter (Sobel Gy) read from the same Filter object.
	transposedSecond bool
	// combine folds the accumulated gradients into the output pixel.
	combine func(gx, gy float32) float32
}

// newStencil assembles an App around a per-pixel 3×3 filter kernel.
func newStencil(cfg StencilConfig, spec stencilSpec) (*App, error) {
	cfg = cfg.withDefaults()
	w, h := cfg.Width, cfg.Height
	if w <= 2 || h <= 2 {
		return nil, fmt.Errorf("kernels: %s: image must be larger than 3×3, got %d×%d", spec.name, w, h)
	}
	m := mem.New()
	var bufF *mem.Buffer
	var err error
	if spec.filter != nil {
		if bufF, err = m.Alloc("Filter", len(spec.filter)*4, true); err != nil {
			return nil, err
		}
		if err = m.WriteF32Slice(bufF, spec.filter); err != nil {
			return nil, err
		}
	}
	bufH, err := m.Alloc("Filter_Height", 4, true)
	if err != nil {
		return nil, err
	}
	bufW, err := m.Alloc("Filter_Width", 4, true)
	if err != nil {
		return nil, err
	}
	m.WriteI32(bufH.ElemAddr(0), int32(h))
	m.WriteI32(bufW.ElemAddr(0), int32(w))
	bufI, err := m.Alloc("Image", w*h*4, true)
	if err != nil {
		return nil, err
	}
	if err = m.WriteF32Slice(bufI, synthImage(w, h)); err != nil {
		return nil, err
	}
	bufO, err := m.Alloc("Output", w*h*4, false)
	if err != nil {
		return nil, err
	}

	ss := &siteSet{}
	var ldF simt.Site
	if bufF != nil {
		ldF = ss.site("k1.ld.filter", bufF)
	}
	ldH := ss.site("k1.ld.height", bufH)
	ldW := ss.site("k1.ld.width", bufW)
	ldI := ss.site("k1.ld.image", bufI)
	stO := ss.site("k1.st.out", nil)

	total := w * h
	combine := spec.combine
	k := &simt.Kernel{
		KernelName: spec.name + "_kernel1",
		Grid:       arch.Dim3{X: (total + polyThreadsPerCTA - 1) / polyThreadsPerCTA},
		Block:      arch.Dim3{X: polyThreadsPerCTA},
		Run: func(warp *simt.WarpCtx) {
			idx := warp.ScratchI32(0)
			pix := warp.ScratchF32(0)
			gx := warp.ScratchF32(1)
			gy := warp.ScratchF32(2)
			any := false
			for lane := 0; lane < warp.NumLanes; lane++ {
				gx[lane], gy[lane] = 0, 0
				if warp.LinearThreadID(lane) < total {
					any = true
				}
			}
			if !any {
				return
			}
			for ky := -1; ky <= 1; ky++ {
				var hh, ww int32
				if !spec.perTapScalars {
					hh = warp.LoadI32Broadcast(ldH, bufH, 0)
					ww = warp.LoadI32Broadcast(ldW, bufW, 0)
				}
				for kx := -1; kx <= 1; kx++ {
					tap := (ky+1)*3 + (kx + 1)
					if spec.perTapScalars {
						hh = warp.LoadI32Broadcast(ldH, bufH, 0)
						ww = warp.LoadI32Broadcast(ldW, bufW, 0)
					}
					wx, wy := float32(1), float32(0)
					if bufF != nil {
						wx = warp.LoadF32Broadcast(ldF, bufF, int32(tap))
						if spec.transposedSecond {
							trans := (kx+1)*3 + (ky + 1)
							wy = warp.LoadF32Broadcast(ldF, bufF, int32(trans))
						}
					}
					for lane := 0; lane < warp.NumLanes; lane++ {
						p := warp.LinearThreadID(lane)
						if p >= total {
							idx[lane] = simt.InactiveLane
							continue
						}
						px, py := p%w, p/w
						nx, ny := px+kx, py+ky
						if nx < 0 || nx >= int(ww) || ny < 0 || ny >= int(hh) {
							idx[lane] = simt.InactiveLane
							continue
						}
						idx[lane] = int32(ny*int(ww) + nx)
					}
					warp.LoadF32(ldI, bufI, idx, pix)
					for lane := 0; lane < warp.NumLanes; lane++ {
						if idx[lane] == simt.InactiveLane {
							continue
						}
						gx[lane] += pix[lane] * wx
						gy[lane] += pix[lane] * wy
					}
					warp.Compute(2)
				}
			}
			for lane := 0; lane < warp.NumLanes; lane++ {
				if p := warp.LinearThreadID(lane); p < total {
					idx[lane] = int32(p)
					pix[lane] = combine(gx[lane], gy[lane])
				} else {
					idx[lane] = simt.InactiveLane
				}
			}
			warp.Compute(2)
			warp.StoreF32(stO, bufO, idx, pix)
		},
	}

	var objects []*mem.Buffer
	hot := 2 // Filter_Height, Filter_Width
	if bufF != nil {
		objects = append(objects, bufF)
		hot++
	}
	objects = append(objects, bufH, bufW, bufI)

	return &App{
		Name:     spec.name,
		Mem:      m,
		Kernels:  []*simt.Kernel{k},
		Objects:  objects, // Table III order: Filter, Filter_Height, Filter_Width, Image
		HotCount: hot,
		Sites:    ss.sites,
		Metric:   metrics.Metric{Kind: metrics.ImageNRMSE, Threshold: nrmseThreshold},
		output: func(m *mem.Memory) []float32 {
			out := m.ReadF32Slice(bufO, total)
			for i, v := range out {
				out[i] = quantize8(v)
			}
			return out
		},
	}, nil
}

// NewLaplacian builds A-Laplacian: the 3×3 Laplacian edge filter of
// Listing 3. Hot objects: Filter, Filter_Height, Filter_Width (Table III:
// 73% of accesses).
func NewLaplacian(cfg StencilConfig) (*App, error) {
	return newStencil(cfg, stencilSpec{
		name:          "A-Laplacian",
		filter:        []float32{0, -1, 0, -1, 4, -1, 0, -1, 0},
		perTapScalars: true,
		combine:       func(gx, _ float32) float32 { return gx },
	})
}

// NewSobel builds A-Sobel: the Sobel gradient magnitude. The Filter object
// holds the x-kernel; the y-kernel is its transpose, read from the same
// (hot) memory block.
func NewSobel(cfg StencilConfig) (*App, error) {
	return newStencil(cfg, stencilSpec{
		name:             "A-Sobel",
		filter:           []float32{-1, 0, 1, -2, 0, 2, -1, 0, 1},
		perTapScalars:    true,
		transposedSecond: true,
		combine: func(gx, gy float32) float32 {
			return float32(math.Abs(float64(gx)) + math.Abs(float64(gy)))
		},
	})
}

// NewMeanfilter builds A-Meanfilter: a 3×3 box blur with no filter object;
// the hot objects are the Filter_Height/Filter_Width scalars read by the
// bounds checks (Table III: ~40% of accesses).
func NewMeanfilter(cfg StencilConfig) (*App, error) {
	return newStencil(cfg, stencilSpec{
		name:    "A-Meanfilter",
		combine: func(gx, _ float32) float32 { return gx / 9 },
	})
}
