// Package kernels re-implements the GPGPU applications the paper evaluates
// (Table II): C-NN, P-BICG, P-GESUMMV, P-MVT from Polybench, A-Laplacian,
// A-Meanfilter, A-Sobel, A-SRAD from AxBench/Rodinia — plus the two Fig. 3
// counter-examples, C-BlackScholes and P-GRAMSCHM, whose access profiles
// have no hot knee. Each application declares its input data objects
// (Table III), its static load sites, its kernel launch sequence as warp
// programs over the simt execution model, and its output error metric
// (Table II).
package kernels

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/metrics"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// App is one ready-to-run GPGPU application.
type App struct {
	// Name is the paper's label, e.g. "P-BICG".
	Name string
	// Mem is the golden device memory image: inputs initialised, outputs
	// zero. Runs always execute against copy-on-write forks (or full
	// clones) so the image stays pristine.
	Mem *mem.Memory
	// Kernels is the launch sequence.
	Kernels []*simt.Kernel
	// Objects are the input data objects in Table III priority order
	// (highest access concentration first).
	Objects []*mem.Buffer
	// HotCount says how many leading Objects are the hot data objects.
	HotCount int
	// Sites are the application's static load sites with their target
	// objects.
	Sites []core.SiteBinding
	// Metric judges output quality (Table II).
	Metric metrics.Metric
	// output extracts the output under the metric from a post-run memory.
	output func(m *mem.Memory) []float32
}

// HotObjects returns the hot data objects (the emboldened entries of
// Table III).
func (a *App) HotObjects() []*mem.Buffer {
	return append([]*mem.Buffer(nil), a.Objects[:a.HotCount]...)
}

// Output extracts the application output from a post-run memory image.
func (a *App) Output(m *mem.Memory) []float32 { return a.output(m) }

// RunOn executes every kernel functionally against m (normally a clone of
// a.Mem), reading through reader when non-nil (the protection plan's
// functional path). Out-of-bounds loads caused by fault-corrupted indices
// read wrapped device memory, as GPU hardware would, so such faults
// propagate to the output instead of aborting the run.
func (a *App) RunOn(m *mem.Memory, reader simt.WordReader) error {
	d := &simt.Driver{Mem: m, Reader: reader, PermissiveOOB: true}
	for _, k := range a.Kernels {
		if _, err := d.Run(k); err != nil {
			return fmt.Errorf("kernels: %s: %w", a.Name, err)
		}
	}
	return nil
}

// CaptureRun executes every kernel against m exactly as RunOn would
// (reading through reader when non-nil) while recording each warp's loads
// and stores into the returned log — the reference recording batched
// campaigns replay faulty runs against. m is mutated like any run target;
// callers normally pass a throwaway fork.
func (a *App) CaptureRun(m *mem.Memory, reader simt.WordReader) (*simt.CaptureLog, error) {
	log := &simt.CaptureLog{}
	d := &simt.Driver{Mem: m, Reader: reader, PermissiveOOB: true, Capture: log}
	for _, k := range a.Kernels {
		if _, err := d.Run(k); err != nil {
			return nil, fmt.Errorf("kernels: %s: %w", a.Name, err)
		}
	}
	return log, nil
}

// GoldenRun executes the app on a pristine copy-on-write fork of its image
// and returns the fault-free baseline output.
func (a *App) GoldenRun() ([]float32, error) {
	m := a.Mem.Fork()
	if err := a.RunOn(m, nil); err != nil {
		return nil, err
	}
	return a.Output(m), nil
}

// TraceRun executes the app on a pristine copy-on-write fork with tracing
// enabled, delivering every coalesced transaction to obs (which may be nil)
// and returning the per-kernel traces for the timing simulator.
func (a *App) TraceRun(obs simt.Observer) ([]*simt.KernelTrace, error) {
	m := a.Mem.Fork()
	d := &simt.Driver{Mem: m, Observer: obs, Tracing: true}
	traces := make([]*simt.KernelTrace, 0, len(a.Kernels))
	for _, k := range a.Kernels {
		tr, err := d.Run(k)
		if err != nil {
			return nil, fmt.Errorf("kernels: %s: %w", a.Name, err)
		}
		traces = append(traces, tr)
	}
	return traces, nil
}

// siteSet allocates dense static-instruction PCs and records bindings.
type siteSet struct {
	next  uint16
	sites []core.SiteBinding
}

// site allocates a load/store site reading buf. Pass nil buf for store
// sites (stores are never protected).
func (s *siteSet) site(name string, buf *mem.Buffer) simt.Site {
	s.next++
	st := simt.Site{PC: s.next, Name: name}
	if buf != nil {
		s.sites = append(s.sites, core.SiteBinding{Site: st, Buf: buf})
	}
	return st
}

// Builder names an application and builds it with default (scaled-down)
// parameters.
type Builder struct {
	// Name is the paper's application label.
	Name string
	// HotPattern is true for the eight evaluated applications whose access
	// profile has a hot knee (Fig. 3(a)–(f)); false for the two
	// counter-examples (Fig. 3(g)–(h)).
	HotPattern bool
	// Build constructs the application.
	Build func() (*App, error)
}

// All returns builders for every application in the study, evaluated apps
// first, in the paper's listing order.
func All() []Builder {
	return []Builder{
		{Name: "C-NN", HotPattern: true, Build: func() (*App, error) { return NewCNN(CNNConfig{}) }},
		{Name: "P-BICG", HotPattern: true, Build: func() (*App, error) { return NewBICG(BICGConfig{}) }},
		{Name: "P-GESUMMV", HotPattern: true, Build: func() (*App, error) { return NewGESUMMV(GESUMMVConfig{}) }},
		{Name: "P-MVT", HotPattern: true, Build: func() (*App, error) { return NewMVT(MVTConfig{}) }},
		{Name: "A-Laplacian", HotPattern: true, Build: func() (*App, error) { return NewLaplacian(StencilConfig{}) }},
		{Name: "A-Meanfilter", HotPattern: true, Build: func() (*App, error) { return NewMeanfilter(StencilConfig{}) }},
		{Name: "A-Sobel", HotPattern: true, Build: func() (*App, error) { return NewSobel(StencilConfig{}) }},
		{Name: "A-SRAD", HotPattern: true, Build: func() (*App, error) { return NewSRAD(SRADConfig{}) }},
		{Name: "C-BlackScholes", HotPattern: false, Build: func() (*App, error) { return NewBlackScholes(BlackScholesConfig{}) }},
		{Name: "P-GRAMSCHM", HotPattern: false, Build: func() (*App, error) { return NewGramSchmidt(GramSchmidtConfig{}) }},
	}
}

// Evaluated returns the eight applications of the main evaluation
// (Table II).
func Evaluated() []Builder {
	all := All()
	out := make([]Builder, 0, 8)
	for _, b := range all {
		if b.HotPattern {
			out = append(out, b)
		}
	}
	return out
}

// ByName finds a builder by the paper's label.
func ByName(name string) (Builder, error) {
	for _, b := range All() {
		if b.Name == name {
			return b, nil
		}
	}
	return Builder{}, fmt.Errorf("kernels: unknown application %q", name)
}
