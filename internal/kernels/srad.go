package kernels

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/metrics"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// SRADConfig sizes A-SRAD (Rodinia's speckle-reducing anisotropic
// diffusion; the paper runs ~500×450 ultrasound frames for many
// iterations).
type SRADConfig struct {
	// Width and Height of the image.
	Width, Height int
	// Iterations is the diffusion iteration count (default 6). SRAD is
	// iterative by nature; iteration is what makes faults in the
	// neighbour-index arrays compound across the image while faults in
	// individual pixels diffuse away.
	Iterations int
	// Lambda is the diffusion update rate (default 0.5).
	Lambda float32
	// Q0 is the speckle scale (default 0.5).
	Q0 float32
}

func (c SRADConfig) withDefaults() SRADConfig {
	if c.Width == 0 {
		c.Width = 96
	}
	if c.Height == 0 {
		c.Height = 96
	}
	if c.Iterations == 0 {
		c.Iterations = 6
	}
	if c.Lambda == 0 {
		c.Lambda = 0.5
	}
	if c.Q0 == 0 {
		c.Q0 = 0.5
	}
	return c
}

// NewSRAD builds A-SRAD following Rodinia's srad_v2 structure: kernel 1
// computes the four directional derivatives and the diffusion coefficient
// for every pixel; kernel 2 applies the divergence update in place; the
// pair repeats for the configured iterations. The hot data objects are the
// four read-only neighbour-index arrays i_N, i_S, i_E, i_W (Table III),
// consulted by both kernels for every pixel of every iteration.
func NewSRAD(cfg SRADConfig) (*App, error) {
	cfg = cfg.withDefaults()
	w, h := cfg.Width, cfg.Height
	if w <= 2 || h <= 2 {
		return nil, fmt.Errorf("kernels: srad: image must be larger than 3×3, got %d×%d", w, h)
	}
	if cfg.Iterations < 1 {
		return nil, fmt.Errorf("kernels: srad: iterations must be positive, got %d", cfg.Iterations)
	}
	m := mem.New()
	bufN, err := m.Alloc("i_N", h*4, true)
	if err != nil {
		return nil, err
	}
	bufS, err := m.Alloc("i_S", h*4, true)
	if err != nil {
		return nil, err
	}
	bufE, err := m.Alloc("i_E", w*4, true)
	if err != nil {
		return nil, err
	}
	bufW, err := m.Alloc("i_W", w*4, true)
	if err != nil {
		return nil, err
	}
	bufJ, err := m.Alloc("Image", w*h*4, false) // updated in place per iteration
	if err != nil {
		return nil, err
	}
	bufC, err := m.Alloc("Coeff", w*h*4, false)
	if err != nil {
		return nil, err
	}
	// Directional derivatives stored by kernel 1 for kernel 2 (Rodinia's
	// dN/dS/dW/dE arrays).
	var bufD [4]*mem.Buffer
	for i, name := range []string{"dN", "dS", "dE", "dW"} {
		bufD[i], err = m.Alloc(name, w*h*4, false)
		if err != nil {
			return nil, err
		}
	}
	// Rodinia-style clamped neighbour indices.
	for y := 0; y < h; y++ {
		n, s := y-1, y+1
		if n < 0 {
			n = 0
		}
		if s >= h {
			s = h - 1
		}
		m.WriteI32(bufN.ElemAddr(y), int32(n))
		m.WriteI32(bufS.ElemAddr(y), int32(s))
	}
	for x := 0; x < w; x++ {
		e, ww := x+1, x-1
		if e >= w {
			e = w - 1
		}
		if ww < 0 {
			ww = 0
		}
		m.WriteI32(bufE.ElemAddr(x), int32(e))
		m.WriteI32(bufW.ElemAddr(x), int32(ww))
	}
	// The image is strictly positive (SRAD operates on speckled
	// intensities).
	img := synthImage(w, h)
	for i, v := range img {
		if v < 0.05 {
			v = 0.05
		}
		img[i] = v
	}
	if err := m.WriteF32Slice(bufJ, img); err != nil {
		return nil, err
	}

	ss := &siteSet{}
	ld1N := ss.site("k1.ld.iN", bufN)
	ld1S := ss.site("k1.ld.iS", bufS)
	ld1E := ss.site("k1.ld.iE", bufE)
	ld1W := ss.site("k1.ld.iW", bufW)
	ld1J := ss.site("k1.ld.J", bufJ)
	st1C := ss.site("k1.st.coeff", nil)
	st1D := ss.site("k1.st.deriv", nil)
	ld2S := ss.site("k2.ld.iS", bufS)
	ld2E := ss.site("k2.ld.iE", bufE)
	ld2C := ss.site("k2.ld.coeff", bufC)
	ld2D := ss.site("k2.ld.deriv", bufD[0])
	ld2J := ss.site("k2.ld.J", bufJ)
	st2J := ss.site("k2.st.J", nil)

	total := w * h
	grid := arch.Dim3{X: (total + polyThreadsPerCTA - 1) / polyThreadsPerCTA}
	lambda, q0 := cfg.Lambda, cfg.Q0
	q0sq := q0 * q0

	// dirSites maps direction → (site, index buffer) for kernel 1.
	dir1 := [4]struct {
		site simt.Site
		buf  *mem.Buffer
		row  bool // index array indexed by row (true) or column
	}{
		{ld1N, bufN, true},
		{ld1S, bufS, true},
		{ld1E, bufE, false},
		{ld1W, bufW, false},
	}

	// Kernel 1: derivatives and diffusion coefficient.
	k1 := &simt.Kernel{
		KernelName: "srad_kernel1",
		Grid:       grid,
		Block:      arch.Dim3{X: polyThreadsPerCTA},
		Run: func(warp *simt.WarpCtx) {
			idx := warp.ScratchI32(0)
			nbr := warp.ScratchI32(1)
			c := warp.ScratchF32(0)
			v := warp.ScratchF32(1)
			grad := warp.ScratchF32(2)
			lap := warp.ScratchF32(3)
			any := false
			for lane := 0; lane < warp.NumLanes; lane++ {
				grad[lane], lap[lane] = 0, 0
				if warp.LinearThreadID(lane) < total {
					any = true
				}
			}
			if !any {
				return
			}
			for lane := 0; lane < warp.NumLanes; lane++ {
				if p := warp.LinearThreadID(lane); p < total {
					idx[lane] = int32(p)
				} else {
					idx[lane] = simt.InactiveLane
				}
			}
			warp.LoadF32(ld1J, bufJ, idx, c)
			for dir := 0; dir < 4; dir++ {
				d := dir1[dir]
				for lane := 0; lane < warp.NumLanes; lane++ {
					p := warp.LinearThreadID(lane)
					if p >= total {
						nbr[lane] = simt.InactiveLane
						continue
					}
					if d.row {
						nbr[lane] = int32(p / w)
					} else {
						nbr[lane] = int32(p % w)
					}
				}
				warp.LoadI32(d.site, d.buf, nbr, idx)
				for lane := 0; lane < warp.NumLanes; lane++ {
					p := warp.LinearThreadID(lane)
					if p >= total {
						continue
					}
					if d.row {
						nbr[lane] = idx[lane]*int32(w) + int32(p%w)
					} else {
						nbr[lane] = int32(p/w)*int32(w) + idx[lane]
					}
				}
				warp.LoadF32(ld1J, bufJ, nbr, v)
				for lane := 0; lane < warp.NumLanes; lane++ {
					p := warp.LinearThreadID(lane)
					if p >= total {
						idx[lane] = simt.InactiveLane
						continue
					}
					diff := v[lane] - c[lane]
					grad[lane] += diff * diff
					lap[lane] += diff
					v[lane] = diff
					idx[lane] = int32(p)
				}
				warp.Compute(3)
				warp.StoreF32(st1D, bufD[dir], idx, v)
			}
			// Diffusion coefficient c(q) clamped to [0,1].
			for lane := 0; lane < warp.NumLanes; lane++ {
				p := warp.LinearThreadID(lane)
				if p >= total {
					idx[lane] = simt.InactiveLane
					continue
				}
				idx[lane] = int32(p)
				cc := c[lane]
				if cc == 0 {
					cc = 1e-6
				}
				num := 0.5*grad[lane]/(cc*cc) - (lap[lane]/cc)*(lap[lane]/cc)/16
				den := 1 + lap[lane]/(4*cc)
				qsq := num / (den * den)
				coef := 1 / (1 + (qsq-q0sq)/(q0sq*(1+q0sq)))
				if coef < 0 || coef != coef { // clamp, NaN → 0
					coef = 0
				} else if coef > 1 {
					coef = 1
				}
				v[lane] = coef
			}
			warp.Compute(12)
			warp.StoreF32(st1C, bufC, idx, v)
		},
	}

	// Kernel 2: divergence update, in place (only stored derivatives and
	// coefficients are read, so the update has no intra-kernel hazards).
	k2 := &simt.Kernel{
		KernelName: "srad_kernel2",
		Grid:       grid,
		Block:      arch.Dim3{X: polyThreadsPerCTA},
		Run: func(warp *simt.WarpCtx) {
			idx := warp.ScratchI32(0)
			nbr := warp.ScratchI32(1)
			div := warp.ScratchF32(0)
			v := warp.ScratchF32(1)
			cC := warp.ScratchF32(2)
			j := warp.ScratchF32(3)
			any := false
			for lane := 0; lane < warp.NumLanes; lane++ {
				if warp.LinearThreadID(lane) < total {
					any = true
				}
			}
			if !any {
				return
			}
			for lane := 0; lane < warp.NumLanes; lane++ {
				if p := warp.LinearThreadID(lane); p < total {
					idx[lane] = int32(p)
				} else {
					idx[lane] = simt.InactiveLane
				}
			}
			warp.LoadF32(ld2C, bufC, idx, cC)
			// cN = cW = c[k]; cS and cE come from the neighbour rows/cols
			// through the hot index arrays (Rodinia's update rule).
			// div = cN·dN + cS·dS + cW·dW + cE·dE.
			warp.LoadF32(ld2D, bufD[0], idx, v) // dN
			for lane := 0; lane < warp.NumLanes; lane++ {
				div[lane] = cC[lane] * v[lane]
			}
			warp.LoadF32(ld2D, bufD[3], idx, v) // dW
			for lane := 0; lane < warp.NumLanes; lane++ {
				div[lane] += cC[lane] * v[lane]
			}
			warp.Compute(2)
			// cS via i_S.
			for lane := 0; lane < warp.NumLanes; lane++ {
				p := warp.LinearThreadID(lane)
				if p >= total {
					nbr[lane] = simt.InactiveLane
					continue
				}
				nbr[lane] = int32(p / w)
			}
			warp.LoadI32(ld2S, bufS, nbr, idx)
			for lane := 0; lane < warp.NumLanes; lane++ {
				p := warp.LinearThreadID(lane)
				if p >= total {
					continue
				}
				nbr[lane] = idx[lane]*int32(w) + int32(p%w)
			}
			warp.LoadF32(ld2C, bufC, nbr, v)
			for lane := 0; lane < warp.NumLanes; lane++ {
				j[lane] = v[lane] // stash cS
			}
			warp.LoadF32(ld2D, bufD[1], mustIdx(warp, total), v) // dS
			for lane := 0; lane < warp.NumLanes; lane++ {
				div[lane] += j[lane] * v[lane]
			}
			warp.Compute(2)
			// cE via i_E.
			for lane := 0; lane < warp.NumLanes; lane++ {
				p := warp.LinearThreadID(lane)
				if p >= total {
					nbr[lane] = simt.InactiveLane
					continue
				}
				nbr[lane] = int32(p % w)
			}
			warp.LoadI32(ld2E, bufE, nbr, idx)
			for lane := 0; lane < warp.NumLanes; lane++ {
				p := warp.LinearThreadID(lane)
				if p >= total {
					continue
				}
				nbr[lane] = int32(p/w)*int32(w) + idx[lane]
			}
			warp.LoadF32(ld2C, bufC, nbr, v)
			for lane := 0; lane < warp.NumLanes; lane++ {
				j[lane] = v[lane] // stash cE
			}
			warp.LoadF32(ld2D, bufD[2], mustIdx(warp, total), v) // dE
			for lane := 0; lane < warp.NumLanes; lane++ {
				div[lane] += j[lane] * v[lane]
			}
			warp.Compute(2)
			// J += λ/4 · div.
			warp.LoadF32(ld2J, bufJ, mustIdx(warp, total), j)
			for lane := 0; lane < warp.NumLanes; lane++ {
				if p := warp.LinearThreadID(lane); p < total {
					idx[lane] = int32(p)
					j[lane] += 0.25 * lambda * div[lane]
				} else {
					idx[lane] = simt.InactiveLane
				}
			}
			warp.Compute(2)
			warp.StoreF32(st2J, bufJ, idx, j)
		},
	}

	ks := make([]*simt.Kernel, 0, 2*cfg.Iterations)
	for it := 0; it < cfg.Iterations; it++ {
		ks = append(ks, k1, k2)
	}

	return &App{
		Name:     "A-SRAD",
		Mem:      m,
		Kernels:  ks,
		Objects:  []*mem.Buffer{bufN, bufS, bufE, bufW, bufJ}, // Table III order
		HotCount: 4,
		Sites:    ss.sites,
		Metric:   metrics.Metric{Kind: metrics.ImageNRMSE, Threshold: nrmseThreshold},
		output: func(m *mem.Memory) []float32 {
			out := m.ReadF32Slice(bufJ, total)
			for i, v := range out {
				out[i] = quantize8(v)
			}
			return out
		},
	}, nil
}

// mustIdx fills the warp's scratch slot 0 with each active lane's linear
// pixel index (the common "this pixel" operand of the SRAD kernels).
func mustIdx(warp *simt.WarpCtx, total int) []int32 {
	idx := warp.ScratchI32(0)
	for lane := 0; lane < warp.NumLanes; lane++ {
		if p := warp.LinearThreadID(lane); p < total {
			idx[lane] = int32(p)
		} else {
			idx[lane] = simt.InactiveLane
		}
	}
	return idx
}
