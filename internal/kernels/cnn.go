package kernels

import (
	"fmt"
	"math"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/metrics"
	"github.com/datacentric-gpu/dcrm/internal/nn"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// CNNConfig sizes C-NN.
type CNNConfig struct {
	// Images is the number of digits classified per run (default 8 — large
	// enough that the Layer2_Weights per-block access count, which scales
	// with the batch, overtakes the Images object as in Table III; the
	// paper classifies a full test set).
	Images int
	// Seed drives weight construction and dataset generation.
	Seed int64
	// Net supplies a pre-built network, avoiding the construction cost when
	// many apps share one (tests, experiment sweeps).
	Net *nn.Network
}

func (c CNNConfig) withDefaults() CNNConfig {
	if c.Images == 0 {
		c.Images = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// NewCNN builds C-NN: four kernels, one per network layer, classifying a
// batch of images. The hot data objects are Layer1_Weights and
// Layer2_Weights (Table III): every thread of their layer's launch reads
// them via broadcast accesses, concentrating enormous access counts on a
// handful of memory blocks.
func NewCNN(cfg CNNConfig) (*App, error) {
	cfg = cfg.withDefaults()
	images := cfg.Images
	if images <= 0 {
		return nil, fmt.Errorf("kernels: cnn: images must be positive, got %d", images)
	}
	net := cfg.Net
	if net == nil {
		var err error
		net, err = nn.Train(nn.TrainConfig{Seed: cfg.Seed})
		if err != nil {
			return nil, fmt.Errorf("kernels: cnn: %w", err)
		}
	}
	if err := net.Validate(); err != nil {
		return nil, fmt.Errorf("kernels: cnn: %w", err)
	}
	ds := nn.GenerateDataset(images, cfg.Seed+100)

	m := mem.New()
	alloc := func(name string, vals []float32, ro bool) (*mem.Buffer, error) {
		b, err := m.Alloc(name, len(vals)*4, ro)
		if err != nil {
			return nil, err
		}
		if err := m.WriteF32Slice(b, vals); err != nil {
			return nil, err
		}
		return b, nil
	}
	bufW1, err := alloc("Layer1_Weights", net.Layer1W, true)
	if err != nil {
		return nil, err
	}
	bufW2, err := alloc("Layer2_Weights", net.Layer2W, true)
	if err != nil {
		return nil, err
	}
	bufW3, err := alloc("Layer3_Weights", net.Layer3W, true)
	if err != nil {
		return nil, err
	}
	bufW4, err := alloc("Layer4_Weights", net.Layer4W, true)
	if err != nil {
		return nil, err
	}
	bufImg, err := alloc("Images", ds.Flatten(), true)
	if err != nil {
		return nil, err
	}
	bufN1, err := m.Alloc("L1_Neurons", images*nn.Layer1Neurons*4, false)
	if err != nil {
		return nil, err
	}
	bufN2, err := m.Alloc("L2_Neurons", images*nn.Layer2Neurons*4, false)
	if err != nil {
		return nil, err
	}
	bufN3, err := m.Alloc("L3_Neurons", images*nn.Layer3Units*4, false)
	if err != nil {
		return nil, err
	}
	bufOut, err := m.Alloc("Out_Scores", images*nn.Classes*4, false)
	if err != nil {
		return nil, err
	}

	ss := &siteSet{}
	ld1W := ss.site("k1.ld.L1W", bufW1)
	ld1I := ss.site("k1.ld.images", bufImg)
	st1N := ss.site("k1.st.L1N", nil)
	ld2W := ss.site("k2.ld.L2W", bufW2)
	ld2N := ss.site("k2.ld.L1N", bufN1)
	st2N := ss.site("k2.st.L2N", nil)
	ld3W := ss.site("k3.ld.L3W", bufW3)
	ld3N := ss.site("k3.ld.L2N", bufN2)
	st3N := ss.site("k3.st.L3N", nil)
	ld4W := ss.site("k4.ld.L4W", bufW4)
	ld4N := ss.site("k4.ld.L3N", bufN3)
	st4O := ss.site("k4.st.out", nil)

	activationOps := 6 // tanh approximation cost in ALU ops

	// Kernel 1 (Listing 2): grid (map, image), 13×13 threads; each thread
	// produces one layer-1 neuron. Weight reads are warp-uniform.
	k1 := &simt.Kernel{
		KernelName: "cnn_FirstLayer",
		Grid:       arch.Dim3{X: nn.Layer1Maps, Y: images},
		Block:      arch.Dim3{X: nn.Layer1Side, Y: nn.Layer1Side},
		Run: func(w *simt.WarpCtx) {
			idx := w.ScratchI32(0)
			pix := w.ScratchF32(0)
			acc := w.ScratchF32(1)
			blockID, img := w.CTAIdx.X, w.CTAIdx.Y
			wb := int32(blockID * (1 + nn.KernelTaps))
			bias := w.LoadF32Broadcast(ld1W, bufW1, wb)
			for lane := 0; lane < w.NumLanes; lane++ {
				acc[lane] = bias
			}
			for i := 0; i < nn.KernelTaps; i++ {
				for lane := 0; lane < w.NumLanes; lane++ {
					tid := w.ThreadIdx(lane)
					wy, wx := tid.Y*nn.Layer1Stride+i/nn.KernelSide, tid.X*nn.Layer1Stride+i%nn.KernelSide
					idx[lane] = int32(img*nn.ImagePixels + wy*nn.ImageSide + wx)
				}
				w.LoadF32(ld1I, bufImg, idx, pix)
				wv := w.LoadF32Broadcast(ld1W, bufW1, wb+1+int32(i))
				for lane := 0; lane < w.NumLanes; lane++ {
					acc[lane] += pix[lane] * wv
				}
				w.Compute(1)
			}
			for lane := 0; lane < w.NumLanes; lane++ {
				tid := w.ThreadIdx(lane)
				idx[lane] = int32(img*nn.Layer1Neurons + blockID*nn.Layer1Side*nn.Layer1Side + tid.Y*nn.Layer1Side + tid.X)
				acc[lane] = scaledTanh(acc[lane])
			}
			w.Compute(activationOps)
			w.StoreF32(st1N, bufN1, idx, acc)
		},
	}

	// Kernel 2: grid (map, image), 5×5 threads.
	k2 := &simt.Kernel{
		KernelName: "cnn_SecondLayer",
		Grid:       arch.Dim3{X: nn.Layer2Maps, Y: images},
		Block:      arch.Dim3{X: nn.Layer2Side, Y: nn.Layer2Side},
		Run: func(w *simt.WarpCtx) {
			idx := w.ScratchI32(0)
			pix := w.ScratchF32(0)
			acc := w.ScratchF32(1)
			o, img := w.CTAIdx.X, w.CTAIdx.Y
			for lane := 0; lane < w.NumLanes; lane++ {
				acc[lane] = 0
			}
			for mIn := 0; mIn < nn.Layer1Maps; mIn++ {
				wb := int32((o*nn.Layer1Maps + mIn) * (1 + nn.KernelTaps))
				bias := w.LoadF32Broadcast(ld2W, bufW2, wb)
				for lane := 0; lane < w.NumLanes; lane++ {
					acc[lane] += bias
				}
				base := img*nn.Layer1Neurons + mIn*nn.Layer1Side*nn.Layer1Side
				for i := 0; i < nn.KernelTaps; i++ {
					for lane := 0; lane < w.NumLanes; lane++ {
						tid := w.ThreadIdx(lane)
						wy := tid.Y*nn.Layer1Stride + i/nn.KernelSide
						wx := tid.X*nn.Layer1Stride + i%nn.KernelSide
						idx[lane] = int32(base + wy*nn.Layer1Side + wx)
					}
					w.LoadF32(ld2N, bufN1, idx, pix)
					wv := w.LoadF32Broadcast(ld2W, bufW2, wb+1+int32(i))
					for lane := 0; lane < w.NumLanes; lane++ {
						acc[lane] += pix[lane] * wv
					}
					w.Compute(1)
				}
			}
			for lane := 0; lane < w.NumLanes; lane++ {
				tid := w.ThreadIdx(lane)
				idx[lane] = int32(img*nn.Layer2Neurons + o*nn.Layer2Side*nn.Layer2Side + tid.Y*nn.Layer2Side + tid.X)
				acc[lane] = scaledTanh(acc[lane])
			}
			w.Compute(activationOps)
			w.StoreF32(st2N, bufN2, idx, acc)
		},
	}

	// Kernel 3: grid (unit, image), one warp; lanes stride over the 1250
	// inputs with coalesced weight reads, then a warp reduction.
	k3 := &simt.Kernel{
		KernelName: "cnn_ThirdLayer",
		Grid:       arch.Dim3{X: nn.Layer3Units, Y: images},
		Block:      arch.Dim3{X: arch.WarpSize},
		Run: func(w *simt.WarpCtx) {
			idxW := w.ScratchI32(0)
			idxN := w.ScratchI32(1)
			wv := w.ScratchF32(0)
			xv := w.ScratchF32(1)
			u, img := w.CTAIdx.X, w.CTAIdx.Y
			wb := int32(u * (nn.Layer2Neurons + 1))
			sum := w.LoadF32Broadcast(ld3W, bufW3, wb) // bias
			for base := 0; base < nn.Layer2Neurons; base += arch.WarpSize {
				for lane := 0; lane < w.NumLanes; lane++ {
					if i := base + lane; i < nn.Layer2Neurons {
						idxW[lane] = wb + 1 + int32(i)
						idxN[lane] = int32(img*nn.Layer2Neurons + i)
					} else {
						idxW[lane] = simt.InactiveLane
						idxN[lane] = simt.InactiveLane
					}
				}
				w.LoadF32(ld3W, bufW3, idxW, wv)
				w.LoadF32(ld3N, bufN2, idxN, xv)
				for lane := 0; lane < w.NumLanes; lane++ {
					if idxW[lane] != simt.InactiveLane {
						sum += wv[lane] * xv[lane]
					}
				}
				w.Compute(1)
			}
			w.Compute(8) // warp reduction
			for lane := 0; lane < w.NumLanes; lane++ {
				idxW[lane] = simt.InactiveLane
				wv[lane] = 0
			}
			idxW[0] = int32(img*nn.Layer3Units + u)
			wv[0] = scaledTanh(sum)
			w.Compute(activationOps)
			w.StoreF32(st3N, bufN3, idxW, wv)
		},
	}

	// Kernel 4: grid (image), ten lanes, one per class.
	k4 := &simt.Kernel{
		KernelName: "cnn_FourthLayer",
		Grid:       arch.Dim3{X: images},
		Block:      arch.Dim3{X: arch.WarpSize},
		Run: func(w *simt.WarpCtx) {
			idx := w.ScratchI32(0)
			wv := w.ScratchF32(0)
			acc := w.ScratchF32(1)
			img := w.CTAIdx.X
			for lane := 0; lane < w.NumLanes; lane++ {
				if lane < nn.Classes {
					idx[lane] = int32(lane * (nn.Layer3Units + 1))
				} else {
					idx[lane] = simt.InactiveLane
				}
			}
			w.LoadF32(ld4W, bufW4, idx, acc) // per-class bias
			for i := 0; i < nn.Layer3Units; i++ {
				for lane := 0; lane < w.NumLanes; lane++ {
					if lane < nn.Classes {
						idx[lane] = int32(lane*(nn.Layer3Units+1) + 1 + i)
					} else {
						idx[lane] = simt.InactiveLane
					}
				}
				w.LoadF32(ld4W, bufW4, idx, wv)
				xv := w.LoadF32Broadcast(ld4N, bufN3, int32(img*nn.Layer3Units+i))
				for lane := 0; lane < w.NumLanes; lane++ {
					if lane < nn.Classes {
						acc[lane] += wv[lane] * xv
					}
				}
				w.Compute(1)
			}
			for lane := 0; lane < w.NumLanes; lane++ {
				if lane < nn.Classes {
					idx[lane] = int32(img*nn.Classes + lane)
				} else {
					idx[lane] = simt.InactiveLane
				}
			}
			w.StoreF32(st4O, bufOut, idx, acc)
		},
	}

	return &App{
		Name:    "C-NN",
		Mem:     m,
		Kernels: []*simt.Kernel{k1, k2, k3, k4},
		// Table III order: Layer1..Layer4 weights, then Images.
		Objects:  []*mem.Buffer{bufW1, bufW2, bufW3, bufW4, bufImg},
		HotCount: 2,
		Sites:    ss.sites,
		Metric:   metrics.Metric{Kind: metrics.Misclassification, Threshold: 0},
		output: func(m *mem.Memory) []float32 {
			labels := make([]float32, images)
			for img := 0; img < images; img++ {
				best, bestScore := 0, float32(math.Inf(-1))
				for c := 0; c < nn.Classes; c++ {
					if s := m.ReadF32(bufOut.ElemAddr(img*nn.Classes + c)); s > bestScore {
						best, bestScore = c, s
					}
				}
				labels[img] = float32(best)
			}
			return labels
		},
	}, nil
}

// scaledTanh is the benchmark's 1.7159·tanh(2x/3) activation.
func scaledTanh(x float32) float32 {
	return float32(1.7159 * math.Tanh(0.66666667*float64(x)))
}
