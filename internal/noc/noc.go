// Package noc models the SM↔L2 interconnect as a crossbar: every SM has an
// injection port and every memory channel an ingress/egress port; a packet
// serializes for one cycle on each port it crosses and then experiences the
// configured traversal latency. This captures the two properties the
// evaluation depends on — added latency on every L2 access, and per-channel
// bandwidth that replication traffic must share.
package noc

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

// Link is a serializing port: one packet per cycle, plus a fixed traversal
// latency.
type Link struct {
	latency  int64
	nextFree int64
}

// NewLink builds a link with the given traversal latency in cycles.
func NewLink(latency int64) Link { return Link{latency: latency} }

// Send schedules a packet entering the link at cycle `now` and returns its
// delivery time. Packets queue FIFO when the port is busy.
func (l *Link) Send(now int64) int64 {
	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	l.nextFree = start + 1
	return start + l.latency
}

// Crossbar connects SM ports to memory-channel ports in both directions.
type Crossbar struct {
	smInject  []Link // per SM, request side
	chIngress []Link // per channel, request side
	chEgress  []Link // per channel, response side
	smEject   []Link // per SM, response side

	// Stats count traversals.
	Stats Stats
}

// Stats counts crossbar traffic.
type Stats struct {
	Requests  uint64
	Responses uint64
}

// Add accumulates other into s field by field.
func (s *Stats) Add(other Stats) {
	s.Requests += other.Requests
	s.Responses += other.Responses
}

// New builds a crossbar for the configuration. The configured interconnect
// latency is split evenly across the two hops of each direction.
func New(cfg arch.Config) (*Crossbar, error) {
	if cfg.NumSMs <= 0 || cfg.NumMemChannels <= 0 {
		return nil, fmt.Errorf("noc: need positive SMs (%d) and channels (%d)", cfg.NumSMs, cfg.NumMemChannels)
	}
	if cfg.InterconnectLatency < 0 {
		return nil, fmt.Errorf("noc: negative interconnect latency %d", cfg.InterconnectLatency)
	}
	half := int64(cfg.InterconnectLatency) / 2
	rest := int64(cfg.InterconnectLatency) - half
	mk := func(n int, lat int64) []Link {
		ls := make([]Link, n)
		for i := range ls {
			ls[i] = NewLink(lat)
		}
		return ls
	}
	return &Crossbar{
		smInject:  mk(cfg.NumSMs, half),
		chIngress: mk(cfg.NumMemChannels, rest),
		chEgress:  mk(cfg.NumMemChannels, half),
		smEject:   mk(cfg.NumSMs, rest),
	}, nil
}

// RouteRequest sends a request packet from SM sm to channel ch at cycle
// `now`, returning its arrival time at the L2 bank.
func (x *Crossbar) RouteRequest(sm, ch int, now int64) (int64, error) {
	if sm < 0 || sm >= len(x.smInject) {
		return 0, fmt.Errorf("noc: SM %d out of range [0,%d)", sm, len(x.smInject))
	}
	if ch < 0 || ch >= len(x.chIngress) {
		return 0, fmt.Errorf("noc: channel %d out of range [0,%d)", ch, len(x.chIngress))
	}
	x.Stats.Requests++
	t := x.smInject[sm].Send(now)
	return x.chIngress[ch].Send(t), nil
}

// RouteResponse sends a response packet from channel ch back to SM sm at
// cycle `now`, returning its arrival time at the SM.
func (x *Crossbar) RouteResponse(ch, sm int, now int64) (int64, error) {
	if sm < 0 || sm >= len(x.smEject) {
		return 0, fmt.Errorf("noc: SM %d out of range [0,%d)", sm, len(x.smEject))
	}
	if ch < 0 || ch >= len(x.chEgress) {
		return 0, fmt.Errorf("noc: channel %d out of range [0,%d)", ch, len(x.chEgress))
	}
	x.Stats.Responses++
	t := x.chEgress[ch].Send(now)
	return x.smEject[sm].Send(t), nil
}
