package noc

import (
	"testing"
	"testing/quick"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

func TestLinkLatencyAndSerialization(t *testing.T) {
	l := NewLink(5)
	if got := l.Send(10); got != 15 {
		t.Errorf("first Send = %d, want 15", got)
	}
	// Port busy at cycle 10; second packet starts at 11.
	if got := l.Send(10); got != 16 {
		t.Errorf("second Send = %d, want 16", got)
	}
	// A later packet after the port is free sees only the latency.
	if got := l.Send(100); got != 105 {
		t.Errorf("third Send = %d, want 105", got)
	}
}

func TestLinkMonotonicDelivery(t *testing.T) {
	f := func(deltas []uint8) bool {
		l := NewLink(3)
		now, prev := int64(0), int64(-1)
		for _, d := range deltas {
			now += int64(d % 4)
			got := l.Send(now)
			if got <= prev || got < now+3 {
				return false
			}
			prev = got
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestCrossbarEndToEndLatency(t *testing.T) {
	cfg := arch.Default() // InterconnectLatency: 8 → 4+4
	x, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	got, err := x.RouteRequest(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got != 8 {
		t.Errorf("uncontended request latency = %d, want 8", got)
	}
	resp, err := x.RouteResponse(0, 0, got)
	if err != nil {
		t.Fatal(err)
	}
	if resp != got+8 {
		t.Errorf("uncontended response latency = %d, want %d", resp-got, 8)
	}
	if x.Stats.Requests != 1 || x.Stats.Responses != 1 {
		t.Errorf("stats = %+v, want 1/1", x.Stats)
	}
}

func TestCrossbarChannelContention(t *testing.T) {
	x, err := New(arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	// Many SMs target one channel simultaneously: deliveries must be
	// serialized one per cycle at the channel ingress.
	var times []int64
	for sm := 0; sm < 15; sm++ {
		at, err := x.RouteRequest(sm, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		times = append(times, at)
	}
	seen := map[int64]bool{}
	for _, at := range times {
		if seen[at] {
			t.Fatalf("two packets delivered at cycle %d through one channel port", at)
		}
		seen[at] = true
	}
}

func TestCrossbarIndependentChannelsNoContention(t *testing.T) {
	x, err := New(arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	// Different SMs to different channels: all see the uncontended latency.
	for i := 0; i < 6; i++ {
		at, err := x.RouteRequest(i, i, 0)
		if err != nil {
			t.Fatal(err)
		}
		if at != 8 {
			t.Errorf("SM %d → ch %d latency = %d, want 8", i, i, at)
		}
	}
}

func TestCrossbarBoundsChecks(t *testing.T) {
	x, err := New(arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := x.RouteRequest(-1, 0, 0); err == nil {
		t.Error("negative SM accepted")
	}
	if _, err := x.RouteRequest(0, 99, 0); err == nil {
		t.Error("out-of-range channel accepted")
	}
	if _, err := x.RouteResponse(99, 0, 0); err == nil {
		t.Error("out-of-range channel accepted")
	}
	if _, err := x.RouteResponse(0, 99, 0); err == nil {
		t.Error("out-of-range SM accepted")
	}
}

func TestNewValidation(t *testing.T) {
	bad := arch.Default()
	bad.NumSMs = 0
	if _, err := New(bad); err == nil {
		t.Error("zero SMs accepted")
	}
	bad = arch.Default()
	bad.InterconnectLatency = -1
	if _, err := New(bad); err == nil {
		t.Error("negative latency accepted")
	}
}
