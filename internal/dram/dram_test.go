package dram

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

func newCtl(t *testing.T) *Controller {
	t.Helper()
	c, err := NewController(arch.Default())
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// drain advances time until the controller is idle, returning completions in
// service order.
func drain(c *Controller) []Completion {
	var all []Completion
	now := int64(0)
	for i := 0; i < 1_000_000; i++ {
		done := c.Advance(now)
		all = append(all, done...)
		if c.QueueLen() == 0 {
			return all
		}
		now++
	}
	return all
}

func TestSingleRequestLatency(t *testing.T) {
	c := newCtl(t)
	c.Enqueue(Request{Block: 0, ID: 1}, 0)
	done := c.Advance(0)
	if len(done) != 1 {
		t.Fatalf("completions = %d, want 1", len(done))
	}
	// Closed bank: tRCD + tCL + tBurst, scaled 924→1400 MHz (12→19, 4→7).
	want := int64(19 + 19 + 7)
	if done[0].At != want {
		t.Errorf("completion at %d, want %d (tRCD+tCL+tBurst in core cycles)", done[0].At, want)
	}
	if c.Stats.RowEmpty != 1 {
		t.Errorf("RowEmpty = %d, want 1", c.Stats.RowEmpty)
	}
}

func TestRowHitFasterThanConflict(t *testing.T) {
	cfg := arch.Default()
	// Same bank, same row: blocks 0 and NumMemChannels*? — block b maps to
	// bank (b/ch)%banks, row (b/ch)/banks/16. Blocks 0 and 6 (one channel
	// apart*ch=6) → local 0 and 1 → banks 0 and 1. For same bank use
	// b=0 and b=6*16=96 → local 16 → bank 0, row 0 (16 blocks per row).
	c := newCtl(t)
	sameRow := arch.BlockAddr(uint64(cfg.NumMemChannels) * 15) // local 15, bank 15? no: 15%16=15.
	_ = sameRow
	// local index l maps to bank l%16 and row l/16/16. Row 0 of bank 0
	// holds locals {0, 16·16=256…}? No: row index = l/16/16 → locals 0..255
	// span banks 0..15 with rows 0 (l<256). Same bank 0 row 0: locals 0,16,32…
	b0 := arch.BlockAddr(0)                         // local 0, bank 0, row 0
	b1 := arch.BlockAddr(16 * cfg.NumMemChannels)   // local 16, bank 0, row 0
	bf := arch.BlockAddr(4096 * cfg.NumMemChannels) // local 4096, bank 0, row 16
	c.Enqueue(Request{Block: b0, ID: 1}, 0)
	done := drain(c)
	first := done[0].At

	c.Enqueue(Request{Block: b1, ID: 2}, first)
	done = c.Advance(first)
	if len(done) != 1 {
		t.Fatalf("row-hit not served")
	}
	hitLat := done[0].At - first
	if c.Stats.RowHits != 1 {
		t.Fatalf("RowHits = %d, want 1", c.Stats.RowHits)
	}

	now := done[0].At
	c.Enqueue(Request{Block: bf, ID: 3}, now)
	done = c.Advance(now)
	if len(done) != 1 {
		t.Fatalf("conflict not served")
	}
	confLat := done[0].At - now
	if c.Stats.RowMisses != 1 {
		t.Fatalf("RowMisses = %d, want 1", c.Stats.RowMisses)
	}
	if hitLat >= confLat {
		t.Errorf("row hit latency %d !< conflict latency %d", hitLat, confLat)
	}
}

func TestFRFCFSPrefersRowHit(t *testing.T) {
	cfg := arch.Default()
	c := newCtl(t)
	// Open row 0 of bank 0.
	c.Enqueue(Request{Block: 0, ID: 1}, 0)
	done := drain(c)
	now := done[0].At
	// Older request to a different row of bank 0, younger row-hit.
	conflict := arch.BlockAddr(4096 * cfg.NumMemChannels) // bank 0, row 16
	hit := arch.BlockAddr(16 * cfg.NumMemChannels)        // bank 0, row 0
	c.Enqueue(Request{Block: conflict, ID: 2}, now)
	c.Enqueue(Request{Block: hit, ID: 3}, now)
	all := append(c.Advance(now), drain(c)...)
	if len(all) != 2 {
		t.Fatalf("served %d, want 2", len(all))
	}
	if all[0].Req.ID != 3 {
		t.Errorf("first served ID = %d, want the row-hit (3)", all[0].Req.ID)
	}
}

func TestBankParallelismBeatsSameBank(t *testing.T) {
	cfg := arch.Default()
	// Two requests to different banks should finish sooner than two
	// row-conflicting requests to the same bank.
	par := newCtl(t)
	par.Enqueue(Request{Block: 0, ID: 1}, 0)                                  // bank 0
	par.Enqueue(Request{Block: arch.BlockAddr(cfg.NumMemChannels), ID: 2}, 0) // bank 1
	parDone := drain(par)

	ser := newCtl(t)
	ser.Enqueue(Request{Block: 0, ID: 1}, 0)
	ser.Enqueue(Request{Block: arch.BlockAddr(4096 * cfg.NumMemChannels), ID: 2}, 0) // bank 0, row 16
	serDone := drain(ser)

	if last(parDone) >= last(serDone) {
		t.Errorf("parallel banks finished at %d, same-bank conflicts at %d; want parallel faster",
			last(parDone), last(serDone))
	}
}

func last(cs []Completion) int64 {
	var m int64
	for _, c := range cs {
		if c.At > m {
			m = c.At
		}
	}
	return m
}

func TestBusSerializesBursts(t *testing.T) {
	cfg := arch.Default()
	c := newCtl(t)
	// 4 requests to 4 different banks, all at t=0: bank work overlaps but
	// bursts serialize, so completions must be spaced ≥ tBurst apart.
	for i := 0; i < 4; i++ {
		c.Enqueue(Request{Block: arch.BlockAddr(i * cfg.NumMemChannels), ID: uint64(i)}, 0)
	}
	done := drain(c)
	if len(done) != 4 {
		t.Fatalf("served %d, want 4", len(done))
	}
	tBurst := int64(7) // 4 mem cycles at 1400/924
	for i := 1; i < 4; i++ {
		if done[i].At-done[i-1].At < tBurst {
			t.Errorf("bursts %d and %d overlap: %d then %d", i-1, i, done[i-1].At, done[i].At)
		}
	}
}

func TestNoStarvationUnderRowHitStream(t *testing.T) {
	cfg := arch.Default()
	c := newCtl(t)
	// Open row 0 bank 0, then enqueue one conflicting request followed by a
	// long stream of row hits. The bypass cap must let the conflict through.
	c.Enqueue(Request{Block: 0, ID: 100}, 0)
	start := drain(c)[0].At
	conflict := arch.BlockAddr(4096 * cfg.NumMemChannels)
	c.Enqueue(Request{Block: conflict, ID: 999}, start)
	for i := 0; i < 100; i++ {
		// Locals 16·(i%16) all map to bank 0, row 0: a pure row-hit stream
		// competing with the older row-conflict request on the same bank.
		local := 16 * (i % 16)
		c.Enqueue(Request{Block: arch.BlockAddr(local * cfg.NumMemChannels), ID: uint64(i)}, start)
	}
	done := drain(c)
	pos := -1
	for i, d := range done {
		if d.Req.ID == 999 {
			pos = i
		}
	}
	if pos == -1 {
		t.Fatal("conflicting request starved")
	}
	if pos > 2*maxRowHitBypass {
		t.Errorf("conflicting request served at position %d, cap is %d bypasses", pos, maxRowHitBypass)
	}
}

// TestAllRequestsComplete is the liveness property: any request mix
// eventually completes exactly once.
func TestAllRequestsComplete(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		c, err := NewController(arch.Default())
		if err != nil {
			return false
		}
		n := 50 + rng.Intn(100)
		for i := 0; i < n; i++ {
			c.Enqueue(Request{Block: arch.BlockAddr(rng.Intn(1 << 16)), ID: uint64(i)}, int64(rng.Intn(50)))
		}
		done := drain(c)
		if len(done) != n {
			return false
		}
		seen := make(map[uint64]bool, n)
		for _, d := range done {
			if seen[d.Req.ID] {
				return false
			}
			seen[d.Req.ID] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestRowHitRateStreamVsRandom(t *testing.T) {
	cfg := arch.Default()
	stream, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Sequential blocks on one channel: consecutive locals walk banks; use
	// stride ch*banks so successive requests stay in bank 0 and walk rows
	// slowly (16 per row → 15/16 hits after the first).
	for i := 0; i < 256; i++ {
		stream.Enqueue(Request{Block: arch.BlockAddr(i * cfg.NumMemChannels * cfg.DRAMBanksPerChannel), ID: uint64(i)}, int64(i))
	}
	drain(stream)

	random, err := NewController(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 256; i++ {
		random.Enqueue(Request{Block: arch.BlockAddr(rng.Intn(1 << 20)), ID: uint64(i)}, int64(i))
	}
	drain(random)

	if stream.Stats.RowHitRate() <= random.Stats.RowHitRate() {
		t.Errorf("streaming row-hit rate %.2f !> random %.2f",
			stream.Stats.RowHitRate(), random.Stats.RowHitRate())
	}
}

func TestConfigValidation(t *testing.T) {
	bad := arch.Default()
	bad.DRAMBanksPerChannel = 0
	if _, err := NewController(bad); err == nil {
		t.Error("zero banks accepted")
	}
	bad = arch.Default()
	bad.MemClockMHz = 0
	if _, err := NewController(bad); err == nil {
		t.Error("zero mem clock accepted")
	}
}

func TestStatsAvgLatency(t *testing.T) {
	c := newCtl(t)
	if got := c.Stats.AvgLatency(); got != 0 {
		t.Errorf("empty AvgLatency = %v, want 0", got)
	}
	c.Enqueue(Request{Block: 0, ID: 1}, 0)
	drain(c)
	if got := c.Stats.AvgLatency(); got != 45 {
		t.Errorf("AvgLatency = %v, want 45", got)
	}
}

func BenchmarkControllerThroughput(b *testing.B) {
	c, err := NewController(arch.Default())
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	now := int64(0)
	for i := 0; i < b.N; i++ {
		c.Enqueue(Request{Block: arch.BlockAddr(rng.Intn(1 << 16)), ID: uint64(i)}, now)
		for c.QueueLen() > 32 {
			now++
			c.Advance(now)
		}
	}
}
