// Package dram models one GDDR5 memory controller per L2 channel with
// FR-FCFS (first-ready, first-come-first-served) scheduling: among queued
// requests the controller prefers row-buffer hits, falling back to the
// oldest request, with a bypass cap so row streaks cannot starve older
// row-miss requests. Timing follows the Table I parameters (tRCD/tRP/tCL
// and burst occupancy), converted to core-clock cycles so the whole
// simulator advances on one clock.
package dram

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

// rowBytes is the DRAM row-buffer size; 2 KB rows hold 16 blocks of 128 B.
const rowBytes = 2048

// maxRowHitBypass bounds how many younger row-hit requests may be served
// ahead of the oldest queued request before fairness forces it through.
const maxRowHitBypass = 16

// Request is one 128 B memory transfer.
type Request struct {
	// Block is the target data memory block.
	Block arch.BlockAddr
	// ID is an opaque handle returned with the completion.
	ID uint64
	// Write distinguishes write-backs from fills.
	Write bool
}

// Completion reports a finished request.
type Completion struct {
	// Req is the original request.
	Req Request
	// At is the core-clock cycle the data transfer finished.
	At int64
}

type pending struct {
	req     Request
	arrival int64
	seq     uint64
}

type bank struct {
	openRow   int64 // -1 when closed
	busyUntil int64
}

// Controller is one channel's memory controller. Not safe for concurrent
// use.
type Controller struct {
	banks     []bank
	queue     []pending
	busFree   int64
	seq       uint64
	numCh     int
	bypassRun int

	// Timing in core cycles.
	tRCD, tRP, tCL, tBurst int64

	// Stats accumulate until reset.
	Stats Stats
}

// Stats counts controller events.
type Stats struct {
	// Requests served, split by row-buffer outcome.
	RowHits      uint64
	RowMisses    uint64 // row conflict: precharge + activate
	RowEmpty     uint64 // bank closed: activate only
	TotalLatency uint64 // sum of (completion - arrival) in core cycles
	Served       uint64
}

// Add accumulates other into s field by field, merging per-channel
// controller counters into an aggregate.
func (s *Stats) Add(other Stats) {
	s.RowHits += other.RowHits
	s.RowMisses += other.RowMisses
	s.RowEmpty += other.RowEmpty
	s.TotalLatency += other.TotalLatency
	s.Served += other.Served
}

// AvgLatency returns mean request latency in core cycles.
func (s Stats) AvgLatency() float64 {
	if s.Served == 0 {
		return 0
	}
	return float64(s.TotalLatency) / float64(s.Served)
}

// RowHitRate returns the fraction of served requests that hit the row
// buffer.
func (s Stats) RowHitRate() float64 {
	if s.Served == 0 {
		return 0
	}
	return float64(s.RowHits) / float64(s.Served)
}

// NewController builds the controller for one channel of the configuration.
func NewController(cfg arch.Config) (*Controller, error) {
	if cfg.DRAMBanksPerChannel <= 0 {
		return nil, fmt.Errorf("dram: banks per channel must be positive, got %d", cfg.DRAMBanksPerChannel)
	}
	if cfg.MemClockMHz <= 0 || cfg.CoreClockMHz <= 0 {
		return nil, fmt.Errorf("dram: clocks must be positive (core %d, mem %d)", cfg.CoreClockMHz, cfg.MemClockMHz)
	}
	scale := func(memCycles int) int64 {
		// Convert memory cycles to core cycles, rounding up.
		return int64((memCycles*cfg.CoreClockMHz + cfg.MemClockMHz - 1) / cfg.MemClockMHz)
	}
	banks := make([]bank, cfg.DRAMBanksPerChannel)
	for i := range banks {
		banks[i].openRow = -1
	}
	return &Controller{
		banks: banks,
		// Pre-size the request queue so steady-state Enqueue traffic never
		// grows the backing array; depth only exceeds this under extreme
		// write bursts, and the queue then keeps its high-water capacity.
		queue:  make([]pending, 0, 512),
		numCh:  cfg.NumMemChannels,
		tRCD:   scale(cfg.DRAMTiming.TRCD),
		tRP:    scale(cfg.DRAMTiming.TRP),
		tCL:    scale(cfg.DRAMTiming.TCL),
		tBurst: scale(cfg.DRAMTiming.TBurst),
	}, nil
}

// bankRow maps a block to (bank, row) within this channel. Consecutive
// blocks on a channel stripe across banks; rows group blocksPerRow blocks.
func (c *Controller) bankRow(b arch.BlockAddr) (int, int64) {
	local := uint64(b) / uint64(c.numCh)
	bk := int(local % uint64(len(c.banks)))
	blocksPerRow := uint64(rowBytes / arch.BlockBytes)
	row := int64(local / uint64(len(c.banks)) / blocksPerRow)
	return bk, row
}

// Enqueue adds a request arriving at the given core cycle.
func (c *Controller) Enqueue(r Request, now int64) {
	c.queue = append(c.queue, pending{req: r, arrival: now, seq: c.seq})
	c.seq++
}

// QueueLen returns the number of waiting requests.
func (c *Controller) QueueLen() int { return len(c.queue) }

// Busy reports whether the controller still has queued work or in-flight
// bus activity past the given cycle.
func (c *Controller) Busy(now int64) bool {
	return len(c.queue) > 0 || c.busFree > now
}

// Advance serves requests whose service can start at or before `now`,
// returning their completions (possibly completing after now; the caller
// delivers them when due). FR-FCFS: row-hit first, oldest otherwise.
func (c *Controller) Advance(now int64) []Completion {
	return c.AdvanceAppend(nil, now)
}

// AdvanceAppend is Advance with caller-supplied storage: completions are
// appended to dst and the extended slice returned. The timing engine passes
// a per-engine scratch buffer so the steady-state replay loop never
// allocates here.
func (c *Controller) AdvanceAppend(dst []Completion, now int64) []Completion {
	for len(c.queue) > 0 {
		comp, ok := c.scheduleOne(now)
		if !ok {
			break
		}
		dst = append(dst, comp)
	}
	return dst
}

// scheduleOne picks and serves a single request if service can start by
// `now`.
func (c *Controller) scheduleOne(now int64) (Completion, bool) {
	oldest := -1
	bestHit := -1
	var bestHitStart, oldestStart int64
	var oldestSeq uint64

	for i := range c.queue {
		p := &c.queue[i]
		if p.arrival > now {
			continue
		}
		bk, row := c.bankRow(p.req.Block)
		start := p.arrival
		if c.banks[bk].busyUntil > start {
			start = c.banks[bk].busyUntil
		}
		if start > now {
			continue
		}
		if oldest == -1 || p.seq < oldestSeq {
			oldest, oldestSeq, oldestStart = i, p.seq, start
		}
		if c.banks[bk].openRow == row && bestHit == -1 {
			bestHit, bestHitStart = i, start
		}
	}
	if oldest == -1 {
		return Completion{}, false
	}
	pick := oldest
	start := oldestStart
	if bestHit != -1 && bestHit != oldest && c.bypassRun < maxRowHitBypass {
		pick, start = bestHit, bestHitStart
		c.bypassRun++
	} else {
		c.bypassRun = 0
	}

	p := c.queue[pick]
	c.queue = append(c.queue[:pick], c.queue[pick+1:]...)
	bk, row := c.bankRow(p.req.Block)

	var access int64
	switch {
	case c.banks[bk].openRow == row:
		access = c.tCL
		c.Stats.RowHits++
	case c.banks[bk].openRow == -1:
		access = c.tRCD + c.tCL
		c.Stats.RowEmpty++
	default:
		access = c.tRP + c.tRCD + c.tCL
		c.Stats.RowMisses++
	}
	// The bank access (activate/precharge/CAS) proceeds in parallel with
	// other banks; only the data burst serializes on the channel bus.
	burstStart := start + access
	if c.busFree > burstStart {
		burstStart = c.busFree
	}
	finish := burstStart + c.tBurst
	c.banks[bk].openRow = row
	c.banks[bk].busyUntil = finish
	c.busFree = finish
	c.Stats.Served++
	c.Stats.TotalLatency += uint64(finish - p.arrival)
	return Completion{Req: p.req, At: finish}, true
}

// NextStartTime returns the earliest cycle at which any queued request
// could begin service (considering arrival and bank occupancy), or -1 when
// the queue is empty. The timing engine uses it to schedule its next
// scheduling attempt without polling every cycle.
func (c *Controller) NextStartTime() int64 {
	next := int64(-1)
	for i := range c.queue {
		p := &c.queue[i]
		bk, _ := c.bankRow(p.req.Block)
		start := p.arrival
		if c.banks[bk].busyUntil > start {
			start = c.banks[bk].busyUntil
		}
		if next == -1 || start < next {
			next = start
		}
	}
	return next
}

// ResetStats zeroes statistics.
func (c *Controller) ResetStats() { c.Stats = Stats{} }
