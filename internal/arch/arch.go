// Package arch defines the architectural constants and configuration shared
// by every layer of the simulator: warp geometry, memory-block geometry,
// addresses, and the Table I configuration of the simulated GPU.
package arch

import "fmt"

const (
	// WarpSize is the number of threads executed in lockstep per warp.
	WarpSize = 32

	// BlockBytes is the size of a data memory block (one cache line).
	// Both L1 and L2 use 128 B lines, and the paper's profiling, fault
	// injection, and replication all operate at this granularity.
	BlockBytes = 128

	// WordBytes is the fault-injection word granularity (a 32-bit word).
	WordBytes = 4

	// WordsPerBlock is the number of 32-bit words in a memory block.
	WordsPerBlock = BlockBytes / WordBytes
)

// Addr is a device (global) memory byte address.
type Addr uint64

// BlockAddr is the index of a 128 B data memory block in device memory.
type BlockAddr uint64

// Block returns the data memory block containing the address.
func (a Addr) Block() BlockAddr { return BlockAddr(a / BlockBytes) }

// Base returns the byte address of the first byte of the block.
func (b BlockAddr) Base() Addr { return Addr(b) * BlockBytes }

// Dim3 is a CUDA-style three-dimensional extent or index.
type Dim3 struct {
	X, Y, Z int
}

// Count returns the total number of elements spanned by the extent.
func (d Dim3) Count() int {
	x, y, z := d.X, d.Y, d.Z
	if x == 0 {
		x = 1
	}
	if y == 0 {
		y = 1
	}
	if z == 0 {
		z = 1
	}
	return x * y * z
}

// String renders the extent in the conventional (x,y,z) form.
func (d Dim3) String() string { return fmt.Sprintf("(%d,%d,%d)", d.X, d.Y, d.Z) }

// Flatten returns the linear index of idx within the extent, x-major as in
// CUDA (x fastest).
func (d Dim3) Flatten(idx Dim3) int {
	x, y := d.X, d.Y
	if x == 0 {
		x = 1
	}
	if y == 0 {
		y = 1
	}
	return idx.X + x*(idx.Y+y*idx.Z)
}

// Config holds the key configuration parameters of the simulated GPU,
// mirroring Table I of the paper.
type Config struct {
	// CoreClockMHz is the SM core clock (Table I: 1400 MHz).
	CoreClockMHz int
	// NumSMs is the number of streaming multiprocessors (Table I: 15).
	NumSMs int
	// MaxCTAsPerSM bounds concurrent CTAs per SM.
	MaxCTAsPerSM int
	// MaxWarpsPerSM bounds concurrent warps per SM (48 on Fermi-class parts).
	MaxWarpsPerSM int
	// SharedMemPerSM is the shared memory per SM in bytes (Table I: 32 KB).
	SharedMemPerSM int
	// RegistersPerSM is the register file size per SM in bytes (Table I: 32 KB).
	RegistersPerSM int

	// L1 holds the per-SM L1 data cache geometry
	// (Table I: 16 KB, 4-way, 128 B lines).
	L1 CacheGeometry
	// L2 holds the per-channel L2 bank geometry
	// (Table I: 256 KB, 16-way, 128 B lines; 6 channels → 1536 KB total).
	L2 CacheGeometry

	// NumMemChannels is the number of GDDR5 memory controllers (Table I: 6).
	NumMemChannels int
	// DRAMBanksPerChannel is the number of DRAM banks behind each
	// controller (Table I: 16).
	DRAMBanksPerChannel int
	// MemClockMHz is the DRAM command clock (Table I: 924 MHz).
	MemClockMHz int
	// InterconnectClockMHz is the NoC clock (Table I: 1400 MHz).
	InterconnectClockMHz int

	// InterconnectLatency is the one-way NoC traversal latency in core
	// cycles.
	InterconnectLatency int
	// L1HitLatency, L2HitLatency are access latencies in core cycles.
	L1HitLatency int
	L2HitLatency int
	// L1MSHRs bounds outstanding L1 misses per SM.
	L1MSHRs int
	// DRAM timing in memory-clock cycles.
	DRAMTiming DRAMTiming
}

// CacheGeometry describes one set-associative cache.
type CacheGeometry struct {
	SizeBytes int
	Ways      int
	LineBytes int
}

// Sets returns the number of sets implied by the geometry.
func (g CacheGeometry) Sets() int { return g.SizeBytes / (g.Ways * g.LineBytes) }

// Validate reports whether the geometry is internally consistent.
func (g CacheGeometry) Validate() error {
	if g.SizeBytes <= 0 || g.Ways <= 0 || g.LineBytes <= 0 {
		return fmt.Errorf("cache geometry %+v: all fields must be positive", g)
	}
	if g.SizeBytes%(g.Ways*g.LineBytes) != 0 {
		return fmt.Errorf("cache geometry %+v: size not divisible by way*line", g)
	}
	s := g.Sets()
	if s&(s-1) != 0 {
		return fmt.Errorf("cache geometry %+v: %d sets is not a power of two", g, s)
	}
	return nil
}

// DRAMTiming holds the GDDR5 timing parameters used by the FR-FCFS
// controller, in memory-clock cycles.
type DRAMTiming struct {
	TRCD   int // activate → column command
	TRP    int // precharge
	TCL    int // column access (CAS) latency
	TBurst int // data burst occupancy of the bus per 128 B transfer
}

// Default returns the Table I configuration.
func Default() Config {
	return Config{
		CoreClockMHz:         1400,
		NumSMs:               15,
		MaxCTAsPerSM:         8,
		MaxWarpsPerSM:        48,
		SharedMemPerSM:       32 * 1024,
		RegistersPerSM:       32 * 1024,
		L1:                   CacheGeometry{SizeBytes: 16 * 1024, Ways: 4, LineBytes: BlockBytes},
		L2:                   CacheGeometry{SizeBytes: 256 * 1024, Ways: 16, LineBytes: BlockBytes},
		NumMemChannels:       6,
		DRAMBanksPerChannel:  16,
		MemClockMHz:          924,
		InterconnectClockMHz: 1400,
		InterconnectLatency:  8,
		L1HitLatency:         2,
		L2HitLatency:         12,
		L1MSHRs:              32,
		DRAMTiming:           DRAMTiming{TRCD: 12, TRP: 12, TCL: 12, TBurst: 4},
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.NumSMs <= 0 {
		return fmt.Errorf("config: NumSMs must be positive, got %d", c.NumSMs)
	}
	if c.NumMemChannels <= 0 {
		return fmt.Errorf("config: NumMemChannels must be positive, got %d", c.NumMemChannels)
	}
	if c.MaxWarpsPerSM <= 0 {
		return fmt.Errorf("config: MaxWarpsPerSM must be positive, got %d", c.MaxWarpsPerSM)
	}
	if err := c.L1.Validate(); err != nil {
		return fmt.Errorf("config L1: %w", err)
	}
	if err := c.L2.Validate(); err != nil {
		return fmt.Errorf("config L2: %w", err)
	}
	if c.L1.LineBytes != BlockBytes || c.L2.LineBytes != BlockBytes {
		return fmt.Errorf("config: cache lines must equal the %d B block size", BlockBytes)
	}
	return nil
}

// TotalL2Bytes returns the aggregate L2 capacity across channels.
func (c Config) TotalL2Bytes() int { return c.L2.SizeBytes * c.NumMemChannels }

// ChannelOf maps a block address to its L2 bank / memory channel. Consecutive
// blocks are interleaved across channels, the usual GPU address mapping.
func (c Config) ChannelOf(b BlockAddr) int { return int(uint64(b) % uint64(c.NumMemChannels)) }
