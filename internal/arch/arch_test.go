package arch

import (
	"testing"
	"testing/quick"
)

func TestDefaultMatchesTableI(t *testing.T) {
	c := Default()
	if err := c.Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if got, want := c.CoreClockMHz, 1400; got != want {
		t.Errorf("core clock = %d, want %d", got, want)
	}
	if got, want := c.NumSMs, 15; got != want {
		t.Errorf("SMs = %d, want %d", got, want)
	}
	if got, want := c.L1.SizeBytes, 16*1024; got != want {
		t.Errorf("L1 size = %d, want %d", got, want)
	}
	if got, want := c.L1.Ways, 4; got != want {
		t.Errorf("L1 ways = %d, want %d", got, want)
	}
	if got, want := c.L2.SizeBytes, 256*1024; got != want {
		t.Errorf("L2 bank size = %d, want %d", got, want)
	}
	if got, want := c.L2.Ways, 16; got != want {
		t.Errorf("L2 ways = %d, want %d", got, want)
	}
	if got, want := c.TotalL2Bytes(), 1536*1024; got != want {
		t.Errorf("total L2 = %d, want %d (Table I: 1536 KB)", got, want)
	}
	if got, want := c.NumMemChannels, 6; got != want {
		t.Errorf("channels = %d, want %d", got, want)
	}
	if got, want := c.DRAMBanksPerChannel, 16; got != want {
		t.Errorf("banks = %d, want %d", got, want)
	}
	if got, want := c.MemClockMHz, 924; got != want {
		t.Errorf("mem clock = %d, want %d", got, want)
	}
}

func TestCacheGeometrySets(t *testing.T) {
	tests := []struct {
		name string
		g    CacheGeometry
		want int
	}{
		{"l1", CacheGeometry{SizeBytes: 16 * 1024, Ways: 4, LineBytes: 128}, 32},
		{"l2bank", CacheGeometry{SizeBytes: 256 * 1024, Ways: 16, LineBytes: 128}, 128},
		{"tiny", CacheGeometry{SizeBytes: 1024, Ways: 2, LineBytes: 128}, 4},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.g.Validate(); err != nil {
				t.Fatalf("Validate() = %v", err)
			}
			if got := tt.g.Sets(); got != tt.want {
				t.Errorf("Sets() = %d, want %d", got, tt.want)
			}
		})
	}
}

func TestCacheGeometryValidateRejects(t *testing.T) {
	tests := []struct {
		name string
		g    CacheGeometry
	}{
		{"zero size", CacheGeometry{SizeBytes: 0, Ways: 4, LineBytes: 128}},
		{"negative ways", CacheGeometry{SizeBytes: 1024, Ways: -1, LineBytes: 128}},
		{"non power of two sets", CacheGeometry{SizeBytes: 3 * 128 * 2, Ways: 2, LineBytes: 128}},
		{"indivisible", CacheGeometry{SizeBytes: 1000, Ways: 4, LineBytes: 128}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.g.Validate(); err == nil {
				t.Errorf("Validate(%+v) = nil, want error", tt.g)
			}
		})
	}
}

func TestAddrBlockRoundTrip(t *testing.T) {
	f := func(a uint64) bool {
		addr := Addr(a)
		b := addr.Block()
		base := b.Base()
		return uint64(base) <= a && a-uint64(base) < BlockBytes
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDim3(t *testing.T) {
	tests := []struct {
		name  string
		d     Dim3
		count int
	}{
		{"linear", Dim3{X: 256}, 256},
		{"plane", Dim3{X: 16, Y: 16}, 256},
		{"volume", Dim3{X: 4, Y: 4, Z: 4}, 64},
		{"zero dims default to one", Dim3{}, 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := tt.d.Count(); got != tt.count {
				t.Errorf("Count() = %d, want %d", got, tt.count)
			}
		})
	}
}

func TestDim3Flatten(t *testing.T) {
	d := Dim3{X: 13, Y: 13, Z: 6}
	want := 0
	for z := 0; z < 6; z++ {
		for y := 0; y < 13; y++ {
			for x := 0; x < 13; x++ {
				if got := d.Flatten(Dim3{X: x, Y: y, Z: z}); got != want {
					t.Fatalf("Flatten(%d,%d,%d) = %d, want %d", x, y, z, got, want)
				}
				want++
			}
		}
	}
}

func TestChannelInterleaving(t *testing.T) {
	c := Default()
	// Consecutive blocks must land on consecutive channels (round robin).
	for i := 0; i < 100; i++ {
		got := c.ChannelOf(BlockAddr(i))
		if want := i % c.NumMemChannels; got != want {
			t.Fatalf("ChannelOf(%d) = %d, want %d", i, got, want)
		}
	}
}
