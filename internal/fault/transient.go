package fault

import (
	"fmt"
	"math/rand"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

func init() {
	Register("transient", func(params map[string]int) (Model, error) {
		if err := paramKeys("transient", params, "flips", "blocks"); err != nil {
			return nil, err
		}
		return Transient{
			Flips:  param(params, "flips", 2),
			Blocks: param(params, "blocks", 1),
		}, nil
	})
}

// Transient is the single-event-upset (SEU/MBU) model: a one-off bit flip
// of Flips distinct bits in one random word of each selected block,
// injected at a deterministic instant derived from (seed, run index) —
// the per-run rng draws the instant uniformly over the replay span in
// Env.Timeline. Unlike StuckAt the corruption is ordinary stored data,
// not a read-path overlay, so later stores genuinely overwrite it.
//
// Classification happens in two layers at injection time, in this
// precedence order (both are decided before the functional run):
//
//  1. Store masking. If the timeline shows the block's last store commits
//     at or after the injection instant, the flipped word is rewritten
//     with fresh data (and fresh ECC check bits) before the end of the
//     run, so the run is pre-classified Masked. With no timeline the flip
//     conservatively persists.
//  2. ECC. Under the SECDED memory model a transient flip corrupts data
//     and leaves the stored check bits consistent with the original word,
//     so the syndrome sees exactly Flips flipped bits: one flip is
//     corrected (Masked), two flips are detected but uncorrectable — the
//     run aborts as a DUE — and three or more alias past SECDED and are
//     applied silently. With ECC disabled every flip is applied.
//
// Flips that survive both layers are applied as a raw XOR write
// (mem.FlipBits) and the run executes functionally; a flip in data the
// application never reads still ends up Masked by output comparison.
//
// Registry name "transient", parameters "flips" (default 2) and "blocks"
// (default 1).
type Transient struct {
	// Flips is the upset size: how many distinct bits of the target word
	// flip (1 = classic SEU; ≥2 = word-level MBU).
	Flips int
	// Blocks is the number of upset blocks per run (one word each).
	Blocks int
}

// Name implements Model.
func (t Transient) Name() string { return "transient" }

// Params implements Model: canonical "blocks=N,flips=F".
func (t Transient) Params() string {
	return fmt.Sprintf("blocks=%d,flips=%d", t.Blocks, t.Flips)
}

// Validate reports whether the model is usable.
func (t Transient) Validate() error {
	if t.Flips < 1 || t.Flips > 32 {
		return fmt.Errorf("fault: transient flips must be in [1,32], got %d", t.Flips)
	}
	if t.Blocks < 1 {
		return fmt.Errorf("fault: blocks per run must be positive, got %d", t.Blocks)
	}
	return nil
}

// String renders the model for tables and logs.
func (t Transient) String() string {
	return fmt.Sprintf("%d-flip-seu/%d-block", t.Flips, t.Blocks)
}

// UsesTimeline reports that Inject consults Env.Timeline (see
// NeedsTimeline).
func (t Transient) UsesTimeline() bool { return true }

// Inject implements Model. The rng consumption order is fixed per block —
// word draw, bit permutation, injection-instant draw — so campaigns are
// reproducible from (seed, run index) at any worker count.
func (t Transient) Inject(m *mem.Memory, rng *rand.Rand, sel Selector, env *Env) (Injection, error) {
	var tl *Timeline
	if env != nil {
		tl = env.Timeline
	}
	blocks := selectBlocks(rng, sel, t.Blocks, env)
	applied := false
	due := false
	for _, b := range blocks {
		words := targetWords(m, b)
		word := rng.Intn(words)
		addr := b.Base() + arch.Addr(word*arch.WordBytes)
		var mask uint32
		for _, bit := range perm32(rng, env)[:t.Flips] {
			mask |= 1 << uint(bit)
		}
		var at int64
		if tl != nil && tl.TotalCycles > 0 {
			at = rng.Int63n(tl.TotalCycles)
		}
		// Layer 1: store masking (see the type comment for precedence).
		if tl != nil {
			if last, ok := tl.LastStore[b]; ok && last >= at {
				continue
			}
		}
		// Layer 2: SECDED pre-classification.
		if m.ECC() == mem.ECCSECDED {
			switch {
			case t.Flips == 1:
				continue // corrected on first read or scrub
			case t.Flips == 2:
				due = true
				continue // detected uncorrectable: the run aborts
			}
		}
		if err := m.FlipBits(addr, mask); err != nil {
			return Injection{}, fmt.Errorf("fault: block %d: %w", b, err)
		}
		applied = true
	}
	switch {
	case due:
		// A detected-uncorrectable error aborts the run even if another
		// block's flip would have been applied silently.
		return Injection{Blocks: blocks, Pre: DUE}, nil
	case !applied:
		return Injection{Blocks: blocks, Pre: Masked}, nil
	}
	return Injection{Blocks: blocks}, nil
}
