package fault

import (
	"math/bits"
	"math/rand"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

const transientFill = 0xDEADBEEF

// transientFixture builds a 4-block image filled with a known pattern and a
// selector pinned to its second block.
func transientFixture(t *testing.T, ecc mem.ECCMode) (*mem.Memory, *mem.Buffer, arch.BlockAddr, Selector) {
	t.Helper()
	m := mem.New()
	m.SetECC(ecc)
	b, err := m.Alloc("data", 4*arch.BlockBytes, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Len4(); i++ {
		m.WriteWord(b.ElemAddr(i), transientFill)
	}
	blk := b.FirstBlock() + 1
	sel, err := NewSetSelector([]arch.BlockAddr{blk})
	if err != nil {
		t.Fatal(err)
	}
	return m, b, blk, sel
}

// diffWords counts buffer words that no longer hold the fill pattern and
// the total bit distance from it.
func diffWords(m *mem.Memory, b *mem.Buffer) (words, flipped int) {
	for i := 0; i < b.Len4(); i++ {
		if got := m.ReadWord(b.ElemAddr(i)); got != transientFill {
			words++
			flipped += bits.OnesCount32(got ^ transientFill)
		}
	}
	return
}

// TestTransientStoreMasking: a store committing at or after the injection
// instant overwrites the flip — the run is pre-classified Masked and the
// image stays clean, with or without ECC in the way.
func TestTransientStoreMasking(t *testing.T) {
	m, buf, blk, sel := transientFixture(t, mem.ECCNone)
	env := &Env{Timeline: &Timeline{
		TotalCycles: 1000,
		// Last store at the final cycle: at ∈ [0,1000) always precedes it.
		LastStore: map[arch.BlockAddr]int64{blk: 999},
	}}
	inj, err := Inject(m, rand.New(rand.NewSource(3)), Transient{Flips: 3, Blocks: 1}, sel, env)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Pre != Masked {
		t.Errorf("store-masked injection Pre = %v, want Masked", inj.Pre)
	}
	if w, _ := diffWords(m, buf); w != 0 {
		t.Errorf("store-masked injection left %d corrupted words", w)
	}
}

// TestTransientNoStoreNoMasking: a block the replay never stores to keeps
// no LastStore entry, so the flip persists.
func TestTransientNoStoreNoMasking(t *testing.T) {
	m, buf, _, sel := transientFixture(t, mem.ECCNone)
	env := &Env{Timeline: &Timeline{TotalCycles: 1000, LastStore: map[arch.BlockAddr]int64{}}}
	inj, err := Inject(m, rand.New(rand.NewSource(3)), Transient{Flips: 3, Blocks: 1}, sel, env)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Pre != 0 {
		t.Errorf("unmasked injection Pre = %v, want none", inj.Pre)
	}
	if w, f := diffWords(m, buf); w != 1 || f != 3 {
		t.Errorf("flip landed on %d words / %d bits, want 1 word / 3 bits", w, f)
	}
}

// TestTransientWithoutTimelineApplies: no timeline → the flip
// conservatively persists to the end of the run.
func TestTransientWithoutTimelineApplies(t *testing.T) {
	m, buf, _, sel := transientFixture(t, mem.ECCNone)
	inj, err := Inject(m, rand.New(rand.NewSource(5)), Transient{Flips: 2, Blocks: 1}, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Pre != 0 {
		t.Errorf("Pre = %v, want none", inj.Pre)
	}
	if w, f := diffWords(m, buf); w != 1 || f != 2 {
		t.Errorf("flip landed on %d words / %d bits, want 1 word / 2 bits", w, f)
	}
}

// TestTransientSECDED pins the ECC pre-classification ladder: one flip is
// corrected (Masked), two flips abort as DUE, three or more alias past
// SECDED and are applied raw.
func TestTransientSECDED(t *testing.T) {
	tests := []struct {
		flips    int
		wantPre  Outcome
		wantBits int
	}{
		{1, Masked, 0},
		{2, DUE, 0},
		{3, 0, 3},
	}
	for _, tt := range tests {
		m, buf, _, sel := transientFixture(t, mem.ECCSECDED)
		inj, err := Inject(m, rand.New(rand.NewSource(7)), Transient{Flips: tt.flips, Blocks: 1}, sel, nil)
		if err != nil {
			t.Fatal(err)
		}
		if inj.Pre != tt.wantPre {
			t.Errorf("flips=%d: Pre = %v, want %v", tt.flips, inj.Pre, tt.wantPre)
		}
		if _, f := diffWords(m, buf); f != tt.wantBits {
			t.Errorf("flips=%d: %d bits applied, want %d", tt.flips, f, tt.wantBits)
		}
	}
}

// TestTransientStoreMaskingBeatsDUE: masking precedes ECC — a 2-flip upset
// in a block that is later overwritten is Masked, not DUE.
func TestTransientStoreMaskingBeatsDUE(t *testing.T) {
	m, _, blk, sel := transientFixture(t, mem.ECCSECDED)
	env := &Env{Timeline: &Timeline{
		TotalCycles: 1000,
		LastStore:   map[arch.BlockAddr]int64{blk: 999},
	}}
	inj, err := Inject(m, rand.New(rand.NewSource(11)), Transient{Flips: 2, Blocks: 1}, sel, env)
	if err != nil {
		t.Fatal(err)
	}
	if inj.Pre != Masked {
		t.Errorf("Pre = %v, want Masked (store masking outranks DUE)", inj.Pre)
	}
}

// TestTransientDeterministicPerSeed: same seed, same timeline → identical
// pre-classification and identical applied corruption.
func TestTransientDeterministicPerSeed(t *testing.T) {
	run := func() (Outcome, int, int) {
		m, buf, _, sel := transientFixture(t, mem.ECCNone)
		inj, err := Inject(m, rand.New(rand.NewSource(21)), Transient{Flips: 4, Blocks: 1}, sel,
			&Env{Timeline: &Timeline{TotalCycles: 500, LastStore: map[arch.BlockAddr]int64{}}})
		if err != nil {
			t.Fatal(err)
		}
		w, f := diffWords(m, buf)
		return inj.Pre, w, f
	}
	p1, w1, f1 := run()
	p2, w2, f2 := run()
	if p1 != p2 || w1 != w2 || f1 != f2 {
		t.Errorf("transient injection not deterministic: (%v,%d,%d) vs (%v,%d,%d)", p1, w1, f1, p2, w2, f2)
	}
}

// TestBurstDUEPreclassification: a width-2 burst over all-zero words is
// detected-but-uncorrectable under SECDED in exactly one polarity — the
// stuck-at-one pattern makes two effective flips, the stuck-at-zero
// pattern none — and the opposite holds over all-one words. The same seed
// draws the same polarity in both fixtures, so exactly one must be DUE.
func TestBurstDUEPreclassification(t *testing.T) {
	inject := func(fill uint32) Outcome {
		m := mem.New() // SECDED by default
		b, err := m.Alloc("data", 2*arch.BlockBytes, false)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < b.Len4(); i++ {
			m.WriteWord(b.ElemAddr(i), fill)
		}
		sel, err := NewSetSelector([]arch.BlockAddr{b.FirstBlock()})
		if err != nil {
			t.Fatal(err)
		}
		inj, err := Inject(m, rand.New(rand.NewSource(17)), Burst{Width: 2, Words: 1, Blocks: 1}, sel, nil)
		if err != nil {
			t.Fatal(err)
		}
		return inj.Pre
	}
	zero, one := inject(0x00000000), inject(0xFFFFFFFF)
	if (zero == DUE) == (one == DUE) {
		t.Errorf("burst over zeros → %v, over ones → %v; exactly one must be DUE", zero, one)
	}
}

// TestBurstAppliesOverlay: the burst is a permanent read-path overlay, so
// it registers in FaultCount and corrupts reads across its word span.
func TestBurstAppliesOverlay(t *testing.T) {
	m := mem.New()
	m.SetECC(mem.ECCNone)
	b, err := m.Alloc("data", 2*arch.BlockBytes, false)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < b.Len4(); i++ {
		m.WriteWord(b.ElemAddr(i), 0x55555555)
	}
	sel, err := NewSetSelector([]arch.BlockAddr{b.FirstBlock()})
	if err != nil {
		t.Fatal(err)
	}
	inj, err := Inject(m, rand.New(rand.NewSource(2)), Burst{Width: 3, Words: 2, Blocks: 1}, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Blocks) != 1 {
		t.Fatalf("faulted blocks = %v", inj.Blocks)
	}
	if m.FaultCount() == 0 {
		t.Error("burst recorded no overlay faults")
	}
	// Every corrupted word shows the same contiguous stuck pattern: at most
	// Width bits differ per word, all adjacent.
	words := 0
	for i := 0; i < b.Len4(); i++ {
		got := m.ReadWord(b.ElemAddr(i))
		if got == 0x55555555 {
			continue
		}
		words++
		d := got ^ 0x55555555
		if n := bits.OnesCount32(d); n > 3 {
			t.Errorf("word %d: %d bits differ, want ≤3", i, n)
		}
		span := bits.Len32(d) - bits.TrailingZeros32(d) - 1
		if span >= 3 {
			t.Errorf("word %d: differing bits span %d positions, want <3 (adjacent)", i, span+1)
		}
	}
	if words == 0 || words > 2 {
		t.Errorf("%d corrupted words, want 1..2", words)
	}
}
