package fault

import (
	"strings"
	"testing"
)

func TestRegistryNames(t *testing.T) {
	names := ModelNames()
	for _, want := range []string{"burst", "stuck-at", "transient"} {
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("ModelNames() = %v, missing %q", names, want)
		}
	}
	// Sorted: ParseModel error messages and CLI help rely on stable order.
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("ModelNames() not sorted: %v", names)
		}
	}
}

func TestParseModel(t *testing.T) {
	tests := []struct {
		spec string
		want Model
	}{
		// Bare names take each model's documented defaults.
		{"stuck-at", StuckAt{BitsPerWord: 3, Blocks: 1}},
		{"transient", Transient{Flips: 2, Blocks: 1}},
		{"burst", Burst{Width: 2, Words: 2, Blocks: 1}},
		// Explicit parameters, partial override, and whitespace tolerance.
		{"stuck-at:bits=4,blocks=5", StuckAt{BitsPerWord: 4, Blocks: 5}},
		{"transient:flips=3", Transient{Flips: 3, Blocks: 1}},
		{" burst : width=3 , words=1 ", Burst{Width: 3, Words: 1, Blocks: 1}},
	}
	for _, tt := range tests {
		got, err := ParseModel(tt.spec)
		if err != nil {
			t.Errorf("ParseModel(%q): %v", tt.spec, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseModel(%q) = %#v, want %#v", tt.spec, got, tt.want)
		}
	}
}

func TestParseModelErrors(t *testing.T) {
	for _, spec := range []string{
		"",                      // empty name
		"flaky",                 // unknown model
		"stuck-at:volts=3",      // unknown parameter
		"transient:flips",       // malformed pair, no '='
		"transient:flips=two",   // non-integer value
		"burst:width=2,width=3", // duplicate key
		"stuck-at:bits=0",       // fails Validate
		"burst:words=999",       // fails Validate (beyond block span)
	} {
		if _, err := ParseModel(spec); err == nil {
			t.Errorf("ParseModel(%q) accepted", spec)
		}
	}
	// The unknown-model error lists the registered alternatives.
	_, err := ParseModel("flaky")
	if err == nil || !strings.Contains(err.Error(), "stuck-at") {
		t.Errorf("unknown-model error %v does not list registered names", err)
	}
}

func TestParseModels(t *testing.T) {
	models, err := ParseModels("stuck-at:bits=2; transient ;burst:width=3")
	if err != nil {
		t.Fatal(err)
	}
	if len(models) != 3 {
		t.Fatalf("parsed %d models, want 3", len(models))
	}
	if models[0] != (StuckAt{BitsPerWord: 2, Blocks: 1}) ||
		models[1] != (Transient{Flips: 2, Blocks: 1}) ||
		models[2] != (Burst{Width: 3, Words: 2, Blocks: 1}) {
		t.Errorf("ParseModels = %#v", models)
	}
	if _, err := ParseModels(""); err == nil {
		t.Error("empty spec list accepted")
	}
	if _, err := ParseModels("stuck-at;flaky"); err == nil {
		t.Error("list with unknown model accepted")
	}
}

// TestModelKeySeparation pins the store-key identity contract: results
// computed under different models — or the same model at different
// parameters — must never alias in the content-addressed store.
func TestModelKeySeparation(t *testing.T) {
	models := []Model{
		StuckAt{BitsPerWord: 3, Blocks: 1},
		StuckAt{BitsPerWord: 3, Blocks: 5},
		StuckAt{BitsPerWord: 2, Blocks: 1},
		Transient{Flips: 2, Blocks: 1},
		Transient{Flips: 3, Blocks: 1},
		Burst{Width: 2, Words: 2, Blocks: 1},
		Burst{Width: 2, Words: 3, Blocks: 1},
	}
	seen := map[string]Model{}
	for _, m := range models {
		k := ModelKey(m)
		if prev, dup := seen[k]; dup {
			t.Errorf("ModelKey collision: %v and %v both render %q", prev, m, k)
		}
		seen[k] = m
	}
	// The documented canonical form.
	if got := ModelKey(StuckAt{BitsPerWord: 3, Blocks: 1}); got != "stuck-at{bits=3,blocks=1}" {
		t.Errorf("ModelKey = %q", got)
	}
	// List identity: contents and order both matter.
	a := ModelsKey([]Model{StuckAt{BitsPerWord: 3, Blocks: 1}, Transient{Flips: 2, Blocks: 1}})
	b := ModelsKey([]Model{Transient{Flips: 2, Blocks: 1}, StuckAt{BitsPerWord: 3, Blocks: 1}})
	if a == b {
		t.Error("ModelsKey ignores order")
	}
	if c := ModelsKey([]Model{StuckAt{BitsPerWord: 3, Blocks: 1}}); c == a {
		t.Error("ModelsKey ignores length")
	}
}

// TestInfoRoundTrip: the serializable identity carries the same key and
// label as the live model, so persisted cells stay attributable.
func TestInfoRoundTrip(t *testing.T) {
	m := Transient{Flips: 3, Blocks: 2}
	info := Info(m)
	if info.Key() != ModelKey(m) {
		t.Errorf("Info key %q != ModelKey %q", info.Key(), ModelKey(m))
	}
	if info.String() != m.String() {
		t.Errorf("Info label %q != model label %q", info.String(), m.String())
	}
}

func TestNeedsTimeline(t *testing.T) {
	if NeedsTimeline(StuckAt{BitsPerWord: 3, Blocks: 1}) {
		t.Error("stuck-at claims a timeline")
	}
	if NeedsTimeline(Burst{Width: 2, Words: 2, Blocks: 1}) {
		t.Error("burst claims a timeline")
	}
	if !NeedsTimeline(Transient{Flips: 2, Blocks: 1}) {
		t.Error("transient does not claim a timeline")
	}
}

func TestOutcomesCanonicalOrder(t *testing.T) {
	want := []Outcome{Masked, SDC, Detected, Crashed, DUE}
	got := Outcomes()
	if len(got) != len(want) {
		t.Fatalf("Outcomes() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Outcomes()[%d] = %v, want %v", i, got[i], want[i])
		}
	}
	// Count must agree with the per-field counters for every outcome.
	r := Result{Runs: 15, MaskedRuns: 1, SDCRuns: 2, DetectedRuns: 3, CrashedRuns: 4, DUERuns: 5}
	for o, want := range map[Outcome]int{Masked: 1, SDC: 2, Detected: 3, Crashed: 4, DUE: 5} {
		if got := r.Count(o); got != want {
			t.Errorf("Count(%v) = %d, want %d", o, got, want)
		}
	}
}
