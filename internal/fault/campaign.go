package fault

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// Outcome classifies one fault-injected application run.
type Outcome int

// Run outcomes.
const (
	// Masked: the output matched the fault-free baseline within the
	// application's error threshold (includes runs repaired by correction).
	Masked Outcome = iota + 1
	// SDC: silent data corruption — the output deviated past the threshold
	// with no error signalled.
	SDC
	// Detected: the detection scheme terminated the run (a DUE, not an SDC).
	Detected
	// Crashed: the run failed for another reason (e.g. a fault-induced
	// out-of-bounds access).
	Crashed
	// DUE: detected uncorrectable error — ECC or a duplication scheme saw
	// the corruption but could not repair it, so the run aborted rather
	// than producing (possibly wrong) output. Distinct from Detected,
	// where the protection scheme terminates cleanly by design, and from
	// SDC, where nothing signalled at all.
	DUE
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case SDC:
		return "sdc"
	case Detected:
		return "detected"
	case Crashed:
		return "crashed"
	case DUE:
		return "due"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Outcomes lists every outcome in canonical presentation order — the
// order telemetry labels, CSV columns, and report tables share. Exporters
// iterate this slice (never a map), which is what keeps column order
// deterministic across runs.
func Outcomes() []Outcome {
	return []Outcome{Masked, SDC, Detected, Crashed, DUE}
}

// RunFunc executes one fault-injected run. Implementations clone the golden
// memory image, inject faults with the provided rng, execute the
// application functionally, and classify the output. It must be safe for
// concurrent invocation.
type RunFunc func(runIdx int, rng *rand.Rand) (Outcome, error)

// BatchRunFunc executes a contiguous claim of runs [start, start+len(rngs))
// in one call, returning exactly one Outcome per run in index order.
// rngs[i] is the same (Seed, start+i)-derived stream RunFunc would receive
// for the run, so a batched executor that consumes each rng only for its
// own run's injection reproduces the per-run path bit-for-bit. It must be
// safe for concurrent invocation.
type BatchRunFunc func(start int, rngs []*rand.Rand) ([]Outcome, error)

// DefaultBatch is the auto batch size: one bit-parallel classification
// sweep resolves up to 64 lanes (mem.BatchLanes), so claims default to
// that width.
const DefaultBatch = 64

// Campaign executes many independent fault-injection runs.
type Campaign struct {
	// Runs is the experiment count (the paper uses 1000 for 95% confidence
	// with ±3% error margins).
	Runs int
	// Seed makes the campaign reproducible: run i uses an rng derived from
	// (Seed, i), so results are independent of worker scheduling.
	Seed int64
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// Batch sets how many runs a batched executor claims and replays per
	// functional pass: 0 picks DefaultBatch, 1 disables batching, larger
	// values bound the claim size. Outcomes are independent of Batch (the
	// per-run rng derivation never changes); it is purely a performance
	// control, but it is folded into result-store keys so differently
	// batched artifacts never alias.
	Batch int
	// Metrics, when non-nil, receives live outcome counters
	// (dcrm_fault_runs_total{outcome=...}) and the run-granular
	// dcrm_campaign_runs_total as runs complete, so a long campaign can be
	// watched over a /metrics endpoint. Both count runs, never batches.
	// Observation only: attaching a registry does not change campaign
	// results.
	Metrics *telemetry.Registry
	// Progress, when non-nil, is called as runs complete with the
	// cumulative completed count and the executed range's total. It fires
	// once per run — a batched claim of K runs reports K increments, not
	// one — so ETA math stays accurate on the batched path. Calls are
	// serialized under the campaign's lock.
	Progress func(done, total int)
	// Context, when non-nil, cancels the campaign between runs: once it is
	// done no further runs start (in-flight runs finish) and Execute returns
	// the context's error. Nil means the campaign always runs to completion.
	Context context.Context
}

// BatchSize resolves the configured Batch (0 = DefaultBatch, minimum 1).
func (c Campaign) BatchSize() int {
	if c.Batch == 0 {
		return DefaultBatch
	}
	if c.Batch < 1 {
		return 1
	}
	return c.Batch
}

// Result aggregates campaign outcomes.
type Result struct {
	// Runs is the number executed.
	Runs int
	// Counts per outcome.
	MaskedRuns   int
	SDCRuns      int
	DetectedRuns int
	CrashedRuns  int
	DUERuns      int
}

// Count returns the tally for one outcome (0 for invalid outcomes).
func (r Result) Count(o Outcome) int {
	switch o {
	case Masked:
		return r.MaskedRuns
	case SDC:
		return r.SDCRuns
	case Detected:
		return r.DetectedRuns
	case Crashed:
		return r.CrashedRuns
	case DUE:
		return r.DUERuns
	}
	return 0
}

// Add accumulates another result into r — the coordinator-side merge of
// shard-local outcome counts. Because every run's outcome is a pure
// function of (seed, run index), merging the results of any disjoint
// run-index ranges covering [0, Runs) reproduces the single-process
// campaign result exactly.
func (r *Result) Add(o Result) {
	r.Runs += o.Runs
	r.MaskedRuns += o.MaskedRuns
	r.SDCRuns += o.SDCRuns
	r.DetectedRuns += o.DetectedRuns
	r.CrashedRuns += o.CrashedRuns
	r.DUERuns += o.DUERuns
}

// SDCRate returns the fraction of runs that produced silent data
// corruption.
func (r Result) SDCRate() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.SDCRuns) / float64(r.Runs)
}

// ConfidenceHalfWidth returns the 95% normal-approximation half-width of
// the SDC rate estimate — the ±3% the paper cites at 1000 runs.
func (r Result) ConfidenceHalfWidth() float64 {
	if r.Runs == 0 {
		return 0
	}
	p := r.SDCRate()
	return 1.96 * math.Sqrt(p*(1-p)/float64(r.Runs))
}

// Execute runs the campaign, fanning runs across workers. The first run
// error aborts the campaign.
func (c Campaign) Execute(run RunFunc) (Result, error) {
	return c.ExecuteRange(0, c.Runs, run)
}

// runSeed derives run i's rng seed deterministically from (Seed, i).
func (c Campaign) runSeed(i int) int64 {
	const mix = int64(-0x61C8864680B583EB) // golden-ratio multiplier
	return c.Seed ^ (int64(i)+1)*mix
}

// runRNG derives run i's random stream deterministically from (Seed, i).
func (c Campaign) runRNG(i int) *rand.Rand {
	return rand.New(rand.NewSource(c.runSeed(i)))
}

// ExecuteRange runs only the run indices in [start, end) — one shard of
// the campaign. Each run's random stream is derived from (Seed, run index)
// exactly as a full Execute derives it, so executing any partition of
// [0, Runs) shard by shard and merging the results with Result.Add is
// byte-identical to the single-process campaign. The returned Result
// counts only the shard's runs.
func (c Campaign) ExecuteRange(start, end int, run RunFunc) (Result, error) {
	if run == nil {
		return Result{}, fmt.Errorf("fault: nil run function")
	}
	return c.executeRange(start, end, 1, func(lo int, rngs []*rand.Rand) ([]Outcome, error) {
		o, err := run(lo, rngs[0])
		if err != nil {
			return nil, err
		}
		return []Outcome{o}, nil
	})
}

// ExecuteBatched runs the whole campaign through a batched executor.
func (c Campaign) ExecuteBatched(run BatchRunFunc) (Result, error) {
	return c.ExecuteRangeBatched(0, c.Runs, run)
}

// ExecuteRangeBatched is ExecuteRange for a batched executor: workers claim
// contiguous chunks of up to BatchSize() runs and hand each chunk to run in
// one call. Chunk boundaries depend only on (start, end, BatchSize), never
// on worker scheduling, and every run keeps its (Seed, index)-derived rng,
// so results remain byte-identical across batch sizes and worker counts —
// and mergeable with differently executed shards via Result.Add.
func (c Campaign) ExecuteRangeBatched(start, end int, run BatchRunFunc) (Result, error) {
	if run == nil {
		return Result{}, fmt.Errorf("fault: nil batch run function")
	}
	return c.executeRange(start, end, c.BatchSize(), run)
}

// executeRange is the shared chunk-claiming executor behind ExecuteRange
// (batch 1) and ExecuteRangeBatched.
func (c Campaign) executeRange(start, end, batch int, run BatchRunFunc) (Result, error) {
	if c.Runs <= 0 {
		return Result{}, fmt.Errorf("fault: campaign needs a positive run count, got %d", c.Runs)
	}
	if start < 0 || end > c.Runs || start >= end {
		return Result{}, fmt.Errorf("fault: shard range [%d, %d) outside campaign of %d runs", start, end, c.Runs)
	}
	n := end - start
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if maxClaims := (n + batch - 1) / batch; workers > maxClaims {
		workers = maxClaims
	}

	var (
		mu      sync.Mutex
		res     = Result{Runs: n}
		firstEr error
		next    = start
		done    int
		wg      sync.WaitGroup
	)
	claim := func() (int, int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstEr == nil && c.Context != nil {
			if err := c.Context.Err(); err != nil {
				firstEr = err
			}
		}
		if firstEr != nil || next >= end {
			return 0, 0, false
		}
		lo := next
		hi := lo + batch
		if hi > end {
			hi = end
		}
		next = hi
		return lo, hi, true
	}
	var outcomes *telemetry.CounterVec
	var runsTotal *telemetry.Counter
	if c.Metrics != nil {
		outcomes = c.Metrics.CounterVec("dcrm_fault_runs_total",
			"Fault-injection runs completed, by outcome.", "outcome")
		runsTotal = c.Metrics.Counter("dcrm_campaign_runs_total",
			"Campaign runs completed — counted per run on both the batched and unbatched paths.")
	}
	// record tallies one completed run (or the error that aborted a claim).
	// Progress and the run counters advance run-by-run even when the claim
	// executed as one batch.
	record := func(o Outcome, err error) {
		if err == nil && o >= Masked && o <= DUE {
			if outcomes != nil {
				outcomes.With(o.String()).Inc()
			}
			if runsTotal != nil {
				runsTotal.Inc()
			}
		}
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstEr == nil {
				firstEr = err
			}
			return
		}
		switch o {
		case Masked:
			res.MaskedRuns++
		case SDC:
			res.SDCRuns++
		case Detected:
			res.DetectedRuns++
		case Crashed:
			res.CrashedRuns++
		case DUE:
			res.DUERuns++
		default:
			if firstEr == nil {
				firstEr = fmt.Errorf("fault: run returned invalid outcome %d", int(o))
			}
			return
		}
		done++
		if c.Progress != nil {
			c.Progress(done, n)
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			// Each worker owns a pool of batch rngs, reseeded per claim:
			// (*rand.Rand).Seed resets the source to the exact state a fresh
			// rand.New(rand.NewSource(seed)) starts in, so reuse changes
			// nothing about any run's stream while dropping the two
			// allocations per run the fresh construction paid.
			rngs := make([]*rand.Rand, 0, batch)
			for {
				lo, hi, ok := claim()
				if !ok {
					wg.Done()
					return
				}
				n := hi - lo
				for len(rngs) < n {
					rngs = append(rngs, rand.New(rand.NewSource(0)))
				}
				for i := 0; i < n; i++ {
					rngs[i].Seed(c.runSeed(lo + i))
				}
				os, err := run(lo, rngs[:n])
				if err == nil && len(os) != hi-lo {
					err = fmt.Errorf("fault: batch run [%d, %d) returned %d outcomes, want %d",
						lo, hi, len(os), hi-lo)
				}
				if err != nil {
					record(0, err)
					continue
				}
				for _, o := range os {
					record(o, nil)
				}
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return Result{}, firstEr
	}
	return res, nil
}
