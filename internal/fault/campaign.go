package fault

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"runtime"
	"sync"

	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// Outcome classifies one fault-injected application run.
type Outcome int

// Run outcomes.
const (
	// Masked: the output matched the fault-free baseline within the
	// application's error threshold (includes runs repaired by correction).
	Masked Outcome = iota + 1
	// SDC: silent data corruption — the output deviated past the threshold
	// with no error signalled.
	SDC
	// Detected: the detection scheme terminated the run (a DUE, not an SDC).
	Detected
	// Crashed: the run failed for another reason (e.g. a fault-induced
	// out-of-bounds access).
	Crashed
	// DUE: detected uncorrectable error — ECC or a duplication scheme saw
	// the corruption but could not repair it, so the run aborted rather
	// than producing (possibly wrong) output. Distinct from Detected,
	// where the protection scheme terminates cleanly by design, and from
	// SDC, where nothing signalled at all.
	DUE
)

// String renders the outcome.
func (o Outcome) String() string {
	switch o {
	case Masked:
		return "masked"
	case SDC:
		return "sdc"
	case Detected:
		return "detected"
	case Crashed:
		return "crashed"
	case DUE:
		return "due"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// Outcomes lists every outcome in canonical presentation order — the
// order telemetry labels, CSV columns, and report tables share. Exporters
// iterate this slice (never a map), which is what keeps column order
// deterministic across runs.
func Outcomes() []Outcome {
	return []Outcome{Masked, SDC, Detected, Crashed, DUE}
}

// RunFunc executes one fault-injected run. Implementations clone the golden
// memory image, inject faults with the provided rng, execute the
// application functionally, and classify the output. It must be safe for
// concurrent invocation.
type RunFunc func(runIdx int, rng *rand.Rand) (Outcome, error)

// Campaign executes many independent fault-injection runs.
type Campaign struct {
	// Runs is the experiment count (the paper uses 1000 for 95% confidence
	// with ±3% error margins).
	Runs int
	// Seed makes the campaign reproducible: run i uses an rng derived from
	// (Seed, i), so results are independent of worker scheduling.
	Seed int64
	// Workers bounds parallelism; 0 means GOMAXPROCS.
	Workers int
	// Metrics, when non-nil, receives live outcome counters
	// (dcrm_fault_runs_total{outcome=...}) as runs complete, so a long
	// campaign can be watched over a /metrics endpoint. Observation only:
	// attaching a registry does not change campaign results.
	Metrics *telemetry.Registry
	// Context, when non-nil, cancels the campaign between runs: once it is
	// done no further runs start (in-flight runs finish) and Execute returns
	// the context's error. Nil means the campaign always runs to completion.
	Context context.Context
}

// Result aggregates campaign outcomes.
type Result struct {
	// Runs is the number executed.
	Runs int
	// Counts per outcome.
	MaskedRuns   int
	SDCRuns      int
	DetectedRuns int
	CrashedRuns  int
	DUERuns      int
}

// Count returns the tally for one outcome (0 for invalid outcomes).
func (r Result) Count(o Outcome) int {
	switch o {
	case Masked:
		return r.MaskedRuns
	case SDC:
		return r.SDCRuns
	case Detected:
		return r.DetectedRuns
	case Crashed:
		return r.CrashedRuns
	case DUE:
		return r.DUERuns
	}
	return 0
}

// Add accumulates another result into r — the coordinator-side merge of
// shard-local outcome counts. Because every run's outcome is a pure
// function of (seed, run index), merging the results of any disjoint
// run-index ranges covering [0, Runs) reproduces the single-process
// campaign result exactly.
func (r *Result) Add(o Result) {
	r.Runs += o.Runs
	r.MaskedRuns += o.MaskedRuns
	r.SDCRuns += o.SDCRuns
	r.DetectedRuns += o.DetectedRuns
	r.CrashedRuns += o.CrashedRuns
	r.DUERuns += o.DUERuns
}

// SDCRate returns the fraction of runs that produced silent data
// corruption.
func (r Result) SDCRate() float64 {
	if r.Runs == 0 {
		return 0
	}
	return float64(r.SDCRuns) / float64(r.Runs)
}

// ConfidenceHalfWidth returns the 95% normal-approximation half-width of
// the SDC rate estimate — the ±3% the paper cites at 1000 runs.
func (r Result) ConfidenceHalfWidth() float64 {
	if r.Runs == 0 {
		return 0
	}
	p := r.SDCRate()
	return 1.96 * math.Sqrt(p*(1-p)/float64(r.Runs))
}

// Execute runs the campaign, fanning runs across workers. The first run
// error aborts the campaign.
func (c Campaign) Execute(run RunFunc) (Result, error) {
	return c.ExecuteRange(0, c.Runs, run)
}

// ExecuteRange runs only the run indices in [start, end) — one shard of
// the campaign. Each run's random stream is derived from (Seed, run index)
// exactly as a full Execute derives it, so executing any partition of
// [0, Runs) shard by shard and merging the results with Result.Add is
// byte-identical to the single-process campaign. The returned Result
// counts only the shard's runs.
func (c Campaign) ExecuteRange(start, end int, run RunFunc) (Result, error) {
	if c.Runs <= 0 {
		return Result{}, fmt.Errorf("fault: campaign needs a positive run count, got %d", c.Runs)
	}
	if start < 0 || end > c.Runs || start >= end {
		return Result{}, fmt.Errorf("fault: shard range [%d, %d) outside campaign of %d runs", start, end, c.Runs)
	}
	if run == nil {
		return Result{}, fmt.Errorf("fault: nil run function")
	}
	n := end - start
	workers := c.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}

	var (
		mu      sync.Mutex
		res     = Result{Runs: n}
		firstEr error
		next    = start
		wg      sync.WaitGroup
	)
	claim := func() (int, bool) {
		mu.Lock()
		defer mu.Unlock()
		if firstEr == nil && c.Context != nil {
			if err := c.Context.Err(); err != nil {
				firstEr = err
			}
		}
		if firstEr != nil || next >= end {
			return 0, false
		}
		i := next
		next++
		return i, true
	}
	var outcomes *telemetry.CounterVec
	if c.Metrics != nil {
		outcomes = c.Metrics.CounterVec("dcrm_fault_runs_total",
			"Fault-injection runs completed, by outcome.", "outcome")
	}
	record := func(o Outcome, err error) {
		if outcomes != nil && err == nil && o >= Masked && o <= DUE {
			outcomes.With(o.String()).Inc()
		}
		mu.Lock()
		defer mu.Unlock()
		if err != nil {
			if firstEr == nil {
				firstEr = err
			}
			return
		}
		switch o {
		case Masked:
			res.MaskedRuns++
		case SDC:
			res.SDCRuns++
		case Detected:
			res.DetectedRuns++
		case Crashed:
			res.CrashedRuns++
		case DUE:
			res.DUERuns++
		default:
			if firstEr == nil {
				firstEr = fmt.Errorf("fault: run returned invalid outcome %d", int(o))
			}
		}
	}

	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i, ok := claim()
				if !ok {
					return
				}
				// Derive the per-run rng deterministically from (seed, i).
				const mix = int64(-0x61C8864680B583EB) // golden-ratio multiplier
				rng := rand.New(rand.NewSource(c.Seed ^ (int64(i)+1)*mix))
				o, err := run(i, rng)
				record(o, err)
			}
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return Result{}, firstEr
	}
	return res, nil
}
