package fault

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

// Model is one fault-injection configuration: a named, parameterized
// corruption pattern a campaign applies to each run's forked memory image.
// Implementations must be comparable value types (campaign code uses them
// as map keys) and must draw all per-run randomness from the rng passed to
// Inject, in a fixed consumption order, so that a campaign's results are
// reproducible from (Campaign.Seed, run index) alone.
type Model interface {
	// Name is the model's registry name ("stuck-at", "transient", "burst").
	Name() string
	// Params renders the model's parameters canonically: key=value pairs in
	// alphabetical key order, comma-separated. Together with Name it forms
	// the model's store-key identity (see ModelKey), so two configurations
	// with different behaviour must never render identically.
	Params() string
	// Validate reports whether the configuration is usable.
	Validate() error
	// Inject arms one run's faults on the forked memory image. sel chooses
	// the target blocks; env carries optional checkpoint context (a nil env
	// or empty Env is valid — models degrade as documented). Prefer the
	// package-level Inject wrapper, which validates first.
	Inject(m *mem.Memory, rng *rand.Rand, sel Selector, env *Env) (Injection, error)
	// String renders the model for tables and logs (e.g. "3-bit/1-block").
	String() string
}

// Env carries per-checkpoint context some models consult at injection
// time. A nil *Env behaves like a zero Env.
type Env struct {
	// Timeline is the store-commit horizon of one timing replay of the
	// target application (captured via timing.Engine.OnStore). The
	// transient model uses it to decide whether a store committed after
	// the injection instant overwrites — and therefore masks — the flip.
	// When absent, the transient model conservatively treats every flip as
	// persisting to the end of the run.
	Timeline *Timeline
	// Scratch, when non-nil, lets injection paths reuse per-worker buffers
	// (selector permutations, block lists, bit permutations) instead of
	// allocating per run. Purely an optimization: results are bit-identical
	// with or without it.
	Scratch *Scratch
}

// Timeline is the per-block store-commit horizon of one timing replay:
// LastStore[b] holds the cycle of the last store transaction committed to
// block b at the L2/DRAM side, and TotalCycles spans the whole replay. The
// transient model draws its injection instant uniformly from
// [0, TotalCycles) and consults LastStore for overwrite masking.
type Timeline struct {
	// TotalCycles is the replay's total cycle count across all kernels.
	TotalCycles int64
	// LastStore maps each stored-to block to its final store-commit cycle.
	// Blocks never stored keep no entry. Lookup-only: iteration order never
	// influences results.
	LastStore map[arch.BlockAddr]int64
}

// Injection reports what one run's injection did.
type Injection struct {
	// Blocks are the targeted 128 B blocks.
	Blocks []arch.BlockAddr
	// Pre, when non-zero, classifies the run at injection time, without
	// executing it: a transient flip provably overwritten by a later store
	// or corrected by ECC (Masked), or a corruption ECC detects but cannot
	// correct (DUE). Callers must honour it and skip the functional run.
	Pre Outcome
}

// Inject validates the model and selector, then arms one run's faults on
// the memory image. env may be nil. This is the single entry point the
// campaign layer uses for every model.
func Inject(m *mem.Memory, rng *rand.Rand, model Model, sel Selector, env *Env) (Injection, error) {
	if model == nil {
		return Injection{}, fmt.Errorf("fault: nil model")
	}
	if err := model.Validate(); err != nil {
		return Injection{}, err
	}
	if sel == nil {
		return Injection{}, fmt.Errorf("fault: nil selector")
	}
	return model.Inject(m, rng, sel, env)
}

// NeedsTimeline reports whether the model consults Env.Timeline, letting
// callers skip the timing replay that captures it for models that never
// look. Models outside this package opt in by implementing
// interface{ UsesTimeline() bool }.
func NeedsTimeline(m Model) bool {
	if u, ok := m.(interface{ UsesTimeline() bool }); ok {
		return u.UsesTimeline()
	}
	switch m.(type) {
	case Transient, *Transient:
		return true
	}
	return false
}

// ModelInfo is a model's serializable identity: what figure cells carry
// and disk-persisted results round-trip through gob (interface values
// would not encode). It is comparable, so it also serves as a map key.
type ModelInfo struct {
	// Name is the registry name; Params the canonical parameter rendering.
	Name, Params string
	// Label is the human-readable rendering (Model.String()).
	Label string
}

// Info captures a model's serializable identity.
func Info(m Model) ModelInfo {
	return ModelInfo{Name: m.Name(), Params: m.Params(), Label: m.String()}
}

// Key renders the identity in canonical store-key form: name{params}.
func (i ModelInfo) Key() string { return i.Name + "{" + i.Params + "}" }

// String returns the human-readable label.
func (i ModelInfo) String() string { return i.Label }

// ModelKey renders a model's canonical store-key identity: name{params}.
// Every result cache keyed on a model folds this in, so results computed
// under different models (or the same model at different parameters) can
// never alias.
func ModelKey(m Model) string { return Info(m).Key() }

// ModelsKey renders a model list for store keys: the models' keys joined
// with ";" in list order (order is part of the identity — a reordered
// model sweep produces reordered cells).
func ModelsKey(models []Model) string {
	keys := make([]string, len(models))
	for i, m := range models {
		keys[i] = ModelKey(m)
	}
	return strings.Join(keys, ";")
}

// Factory builds a model from its parsed parameter map. Missing keys take
// the model's documented defaults; unknown keys must be rejected.
type Factory func(params map[string]int) (Model, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a model factory under name, making it reachable from
// ParseModel (and therefore from the CLIs' -model flags and the daemon's
// job parameters). The built-in models register themselves; external
// packages may add more. Registering an empty or duplicate name panics —
// both are programmer errors.
func Register(name string, f Factory) {
	if name == "" || f == nil {
		panic("fault: Register with empty name or nil factory")
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic("fault: duplicate model registration: " + name)
	}
	registry[name] = f
}

// ModelNames lists the registered model names, sorted.
func ModelNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseModel parses a model spec of the form "name" or "name:k=v,k=v"
// (e.g. "stuck-at:bits=3,blocks=1", "transient:flips=2", "burst") into a
// validated Model. Omitted parameters take the model's defaults; unknown
// names and keys are errors listing the registered alternatives.
func ParseModel(spec string) (Model, error) {
	name := spec
	var paramStr string
	if i := strings.IndexByte(spec, ':'); i >= 0 {
		name, paramStr = spec[:i], spec[i+1:]
	}
	name = strings.TrimSpace(name)
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("fault: unknown model %q (registered: %s)",
			name, strings.Join(ModelNames(), ", "))
	}
	params := map[string]int{}
	if paramStr != "" {
		for _, kv := range strings.Split(paramStr, ",") {
			k, v, found := strings.Cut(kv, "=")
			k = strings.TrimSpace(k)
			if !found || k == "" {
				return nil, fmt.Errorf("fault: model %q: malformed parameter %q (want key=value)", name, kv)
			}
			n, err := strconv.Atoi(strings.TrimSpace(v))
			if err != nil {
				return nil, fmt.Errorf("fault: model %q: parameter %s: %v", name, k, err)
			}
			if _, dup := params[k]; dup {
				return nil, fmt.Errorf("fault: model %q: duplicate parameter %s", name, k)
			}
			params[k] = n
		}
	}
	m, err := f(params)
	if err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// ParseModels parses a semicolon-separated list of model specs (the CLI
// -model flag format), e.g. "stuck-at:bits=3;transient:flips=2".
func ParseModels(specs string) ([]Model, error) {
	var out []Model
	for _, spec := range strings.Split(specs, ";") {
		spec = strings.TrimSpace(spec)
		if spec == "" {
			continue
		}
		m, err := ParseModel(spec)
		if err != nil {
			return nil, err
		}
		out = append(out, m)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("fault: empty model list")
	}
	return out, nil
}

// paramKeys validates that params contains no keys outside allowed.
func paramKeys(name string, params map[string]int, allowed ...string) error {
	for k := range params {
		ok := false
		for _, a := range allowed {
			if k == a {
				ok = true
				break
			}
		}
		if !ok {
			return fmt.Errorf("fault: model %q: unknown parameter %q (accepts: %s)",
				name, k, strings.Join(allowed, ", "))
		}
	}
	return nil
}

// param returns params[key] or def when absent.
func param(params map[string]int, key string, def int) int {
	if v, ok := params[key]; ok {
		return v
	}
	return def
}

// targetWords returns how many leading 32-bit words of block b are covered
// by the owning data object — the word population every model draws its
// target word from. Small objects (a 3×3 filter, a scalar) occupy only the
// head of their 128 B block, and a fault in allocation padding would be
// trivially masked.
func targetWords(m *mem.Memory, b arch.BlockAddr) int {
	words := arch.WordsPerBlock
	if buf, ok := m.BufferAt(b.Base()); ok {
		used := (int(buf.Base) + buf.Size - int(b.Base()) + arch.WordBytes - 1) / arch.WordBytes
		if used < words {
			words = used
		}
		if words < 1 {
			words = 1
		}
	}
	return words
}
