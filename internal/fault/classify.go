package fault

import (
	"errors"
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/metrics"
)

// ErrUncorrectable is the sentinel for detected-uncorrectable
// terminations: ECC or a duplication scheme saw the corruption but could
// not repair it, so the run was aborted. Run functions wrap it (matched
// with errors.Is) and the Classifier maps it to DUE. Models that can
// prove uncorrectable detection at injection time short-circuit through
// Injection.Pre instead and never execute the run.
var ErrUncorrectable = errors.New("fault: detected uncorrectable error")

// Classifier maps fault-injected runs to Outcomes against a golden
// checkpoint. The fast path is data-centric: instead of always extracting
// the output vector and evaluating the quality metric, the post-run forked
// memory is compared against the golden post-run image block by block
// (mem.DivergesFrom — only blocks either run wrote, plus the overlaid
// fault words, with early exit on the first divergence). A run whose
// resolved post-run state is bit-identical to the golden one has exactly
// the golden output, so its metric value is 0 and it is Masked under every
// threshold; only divergent runs pay for output extraction and the metric.
type Classifier struct {
	// Golden is the fault-free output under the metric.
	Golden []float32
	// GoldenPost is the golden post-run memory image, as a fork of the same
	// root the campaign forks run on.
	GoldenPost *mem.Memory
	// Metric judges divergent outputs (Table II).
	Metric metrics.Metric
	// DetectErr, when non-nil, identifies detection-scheme terminations
	// (matched with errors.Is): such runs are Detected, every other run
	// error is a fault-induced Crash. The sentinel is injected by the
	// caller so this package stays below the protection-plan layer.
	DetectErr error
}

// Classify maps one run to its Outcome. m is the post-run fork; output
// extracts the metric input from it and is only invoked when the streaming
// comparison finds a divergence from the golden image.
func (c *Classifier) Classify(runErr error, m *mem.Memory, output func(*mem.Memory) []float32) (Outcome, error) {
	if runErr != nil {
		if errors.Is(runErr, ErrUncorrectable) {
			return DUE, nil
		}
		if c.DetectErr != nil && errors.Is(runErr, c.DetectErr) {
			return Detected, nil
		}
		// A fault that corrupts an index (e.g. A-SRAD's neighbour arrays)
		// can push an access out of bounds; that run crashed rather than
		// silently corrupting output.
		return Crashed, nil
	}
	if c.GoldenPost == nil {
		return 0, fmt.Errorf("fault: classifier has no golden post-run image")
	}
	if !m.DivergesFrom(c.GoldenPost) {
		return Masked, nil
	}
	sdc, err := c.Metric.IsSDC(output(m), c.Golden)
	if err != nil {
		return 0, err
	}
	if sdc {
		return SDC, nil
	}
	return Masked, nil
}

// ClassifyBatch resolves up to mem.BatchLanes runs in one sweep: lane i is
// classified exactly as Classify(runErrs[i], forks[i], output) would, but
// the error-free lanes share a single bit-parallel divergence scan against
// the golden image (mem.BatchDiverges) instead of one streaming comparison
// each. Only lanes the scan marks divergent pay for output extraction and
// the quality metric.
func (c *Classifier) ClassifyBatch(runErrs []error, forks []*mem.Memory, output func(*mem.Memory) []float32) ([]Outcome, error) {
	if len(runErrs) != len(forks) {
		return nil, fmt.Errorf("fault: batch classify got %d errors for %d forks", len(runErrs), len(forks))
	}
	outs := make([]Outcome, len(forks))
	clean := make([]*mem.Memory, len(forks))
	anyClean := false
	for i, runErr := range runErrs {
		if runErr != nil {
			switch {
			case errors.Is(runErr, ErrUncorrectable):
				outs[i] = DUE
			case c.DetectErr != nil && errors.Is(runErr, c.DetectErr):
				outs[i] = Detected
			default:
				outs[i] = Crashed
			}
			continue
		}
		clean[i] = forks[i]
		anyClean = true
	}
	if !anyClean {
		return outs, nil
	}
	if c.GoldenPost == nil {
		return nil, fmt.Errorf("fault: classifier has no golden post-run image")
	}
	diverged := mem.BatchDiverges(c.GoldenPost, clean)
	for i, m := range clean {
		if m == nil {
			continue
		}
		if diverged&(1<<uint(i)) == 0 {
			outs[i] = Masked
			continue
		}
		sdc, err := c.Metric.IsSDC(output(m), c.Golden)
		if err != nil {
			return nil, err
		}
		if sdc {
			outs[i] = SDC
		} else {
			outs[i] = Masked
		}
	}
	return outs, nil
}
