package fault

import (
	"fmt"
	"math/rand"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

func init() {
	Register("stuck-at", func(params map[string]int) (Model, error) {
		if err := paramKeys("stuck-at", params, "bits", "blocks"); err != nil {
			return nil, err
		}
		return StuckAt{
			BitsPerWord: param(params, "bits", 3),
			Blocks:      param(params, "blocks", 1),
		}, nil
	})
}

// StuckAt is the paper's permanent stuck-at fault model (Section II-C):
// for each selected block, one random word receives BitsPerWord stuck-at
// faults at distinct random bit positions, each stuck at 0 or 1 with equal
// probability. The faults live in the memory's read-path overlay, so they
// persist for the whole run — stores refresh the raw bits but the stuck
// positions re-corrupt every subsequent read. Under the SECDED memory
// model a word whose effective corruption is a single bit is corrected on
// read; wider corruption escapes silently (the stuck pattern defeats
// per-read correction), which is exactly the legacy semantics the parity
// and golden gates pin.
//
// Registry name "stuck-at", parameters "bits" (default 3) and "blocks"
// (default 1). The RNG consumption order is frozen: selector draw, then
// per block a word draw, a 32-element permutation, and one polarity draw
// per stuck bit. Changing it would break the byte-identical contract with
// pre-refactor campaign results.
type StuckAt struct {
	// BitsPerWord is the multi-bit fault size (the paper uses 2, 3, 4).
	BitsPerWord int
	// Blocks is the number of faulty data memory blocks per run (1 or 5).
	Blocks int
}

// Name implements Model.
func (s StuckAt) Name() string { return "stuck-at" }

// Params implements Model: canonical "bits=B,blocks=N".
func (s StuckAt) Params() string {
	return fmt.Sprintf("bits=%d,blocks=%d", s.BitsPerWord, s.Blocks)
}

// Validate reports whether the model is usable.
func (s StuckAt) Validate() error {
	if s.BitsPerWord < 1 || s.BitsPerWord > 32 {
		return fmt.Errorf("fault: bits per word must be in [1,32], got %d", s.BitsPerWord)
	}
	if s.Blocks < 1 {
		return fmt.Errorf("fault: blocks per run must be positive, got %d", s.Blocks)
	}
	return nil
}

// String renders the model the way the paper labels its configurations.
func (s StuckAt) String() string {
	return fmt.Sprintf("%d-bit/%d-block", s.BitsPerWord, s.Blocks)
}

// Inject implements Model. The loop body reproduces the pre-refactor
// injector exactly — same selector call, same word-population clamp, same
// rng draws in the same order, same set-then-clear overlay writes — so a
// stuck-at campaign's outcomes are byte-identical to the pre-refactor
// path (gated by TestCampaignForkParity and TestStuckAtGoldenOutcomes).
// With env scratch the draws route through the pooled equivalents
// (selectBlocks, perm32), which consume the rng identically.
func (s StuckAt) Inject(m *mem.Memory, rng *rand.Rand, sel Selector, env *Env) (Injection, error) {
	blocks := selectBlocks(rng, sel, s.Blocks, env)
	for _, b := range blocks {
		words := targetWords(m, b)
		word := rng.Intn(words)
		addr := b.Base() + arch.Addr(word*arch.WordBytes)
		var setMask, clrMask uint32
		for _, bit := range perm32(rng, env)[:s.BitsPerWord] {
			if rng.Intn(2) == 0 {
				setMask |= 1 << uint(bit)
			} else {
				clrMask |= 1 << uint(bit)
			}
		}
		if setMask != 0 {
			if err := m.InjectStuckAt(addr, setMask, true); err != nil {
				return Injection{}, fmt.Errorf("fault: block %d: %w", b, err)
			}
		}
		if clrMask != 0 {
			if err := m.InjectStuckAt(addr, clrMask, false); err != nil {
				return Injection{}, fmt.Errorf("fault: block %d: %w", b, err)
			}
		}
	}
	return Injection{Blocks: blocks}, nil
}
