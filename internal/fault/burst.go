package fault

import (
	"fmt"
	"math/bits"
	"math/rand"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

func init() {
	Register("burst", func(params map[string]int) (Model, error) {
		if err := paramKeys("burst", params, "width", "words", "blocks"); err != nil {
			return nil, err
		}
		return Burst{
			Width:  param(params, "width", 2),
			Words:  param(params, "words", 2),
			Blocks: param(params, "blocks", 1),
		}, nil
	})
}

// Burst is the multi-bit spatial fault model: a physically clustered
// permanent defect that sticks Width adjacent bit lines across Words
// adjacent 32-bit words inside each selected 128 B block — the
// adjacent-bit × adjacent-word patterns that dominate real multi-bit DRAM
// and SRAM faults. All stuck bits of one burst share a random anchor bit
// position and one polarity (a shorted line drives every crossing cell
// the same way); the word span is clamped to the words the owning data
// object actually covers.
//
// Like StuckAt the burst is a read-path overlay (permanent), but its
// ECC interaction is pre-classified per word at injection time against
// the block's current contents: a word whose effective corruption —
// stuck pattern XOR raw bits — is exactly two bits is detected but
// uncorrectable under SECDED, so the run aborts as a DUE; zero or one
// effective bits are corrected (and may leave the whole run Masked);
// three or more escape silently and the run executes to classification,
// exactly as StuckAt's wide faults do.
//
// Registry name "burst", parameters "width" (adjacent bits, default 2),
// "words" (adjacent words, default 2), and "blocks" (default 1).
type Burst struct {
	// Width is the number of adjacent stuck bits within each word (1–32).
	Width int
	// Words is the number of adjacent corrupted words within the block.
	Words int
	// Blocks is the number of burst-corrupted blocks per run.
	Blocks int
}

// Name implements Model.
func (b Burst) Name() string { return "burst" }

// Params implements Model: canonical "blocks=N,width=W,words=K".
func (b Burst) Params() string {
	return fmt.Sprintf("blocks=%d,width=%d,words=%d", b.Blocks, b.Width, b.Words)
}

// Validate reports whether the model is usable.
func (b Burst) Validate() error {
	if b.Width < 1 || b.Width > 32 {
		return fmt.Errorf("fault: burst width must be in [1,32], got %d", b.Width)
	}
	if b.Words < 1 || b.Words > arch.WordsPerBlock {
		return fmt.Errorf("fault: burst words must be in [1,%d], got %d", arch.WordsPerBlock, b.Words)
	}
	if b.Blocks < 1 {
		return fmt.Errorf("fault: blocks per run must be positive, got %d", b.Blocks)
	}
	return nil
}

// String renders the model for tables and logs.
func (b Burst) String() string {
	return fmt.Sprintf("%dx%d-burst/%d-block", b.Width, b.Words, b.Blocks)
}

// Inject implements Model. The rng consumption order is fixed per block —
// anchor word, anchor bit, polarity — so campaigns are reproducible from
// (seed, run index) at any worker count.
func (b Burst) Inject(m *mem.Memory, rng *rand.Rand, sel Selector, env *Env) (Injection, error) {
	blocks := selectBlocks(rng, sel, b.Blocks, env)
	due := false
	for _, blk := range blocks {
		words := targetWords(m, blk)
		w0 := rng.Intn(words)
		bit0 := rng.Intn(33 - b.Width)
		stuckOne := rng.Intn(2) == 0
		mask := uint32((uint64(1)<<uint(b.Width))-1) << uint(bit0)
		end := w0 + b.Words
		if end > words {
			end = words
		}
		for w := w0; w < end; w++ {
			addr := blk.Base() + arch.Addr(w*arch.WordBytes)
			raw := m.ReadWord(addr) // no overlay on this word yet: raw contents
			var faulty uint32
			if stuckOne {
				faulty = raw | mask
			} else {
				faulty = raw &^ mask
			}
			if m.ECC() == mem.ECCSECDED && bits.OnesCount32(faulty^raw) == 2 {
				due = true
			}
			if err := m.InjectStuckAt(addr, mask, stuckOne); err != nil {
				return Injection{}, fmt.Errorf("fault: block %d: %w", blk, err)
			}
		}
	}
	if due {
		return Injection{Blocks: blocks, Pre: DUE}, nil
	}
	return Injection{Blocks: blocks}, nil
}
