// Parity tests for the injection-scratch paths: every pooled variant must
// consume the rng identically to its allocating counterpart, or campaign
// results would silently change between pooled and unpooled call sites.
package fault

import (
	"math/rand"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

func TestRNGReuseParity(t *testing.T) {
	fresh := rand.New(rand.NewSource(12345))
	reused := rand.New(rand.NewSource(0))
	reused.Seed(12345)
	for i := 0; i < 1000; i++ {
		if a, b := fresh.Int63(), reused.Int63(); a != b {
			t.Fatalf("draw %d: %d != %d", i, a, b)
		}
	}
}

func TestPermIntoParity(t *testing.T) {
	a := rand.New(rand.NewSource(7))
	b := rand.New(rand.NewSource(7))
	var buf []int
	for n := 0; n < 40; n++ {
		pa := a.Perm(n)
		pb := permInto(b, n, &buf)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("n=%d i=%d: %d != %d", n, i, pa[i], pb[i])
			}
		}
	}
}

func TestSelectIntoParity(t *testing.T) {
	blocks := make([]arch.BlockAddr, 100)
	for i := range blocks {
		blocks[i] = arch.BlockAddr(i * 3)
	}
	ss, _ := NewSetSelector(blocks)
	ws, _ := NewWeightedSelector(blocks, func() []float64 {
		w := make([]float64, 100)
		for i := range w {
			w[i] = float64(i%7) + 0.5
		}
		return w
	}())
	var sc Scratch
	for n := 1; n < 120; n += 7 {
		a := rand.New(rand.NewSource(int64(n)))
		b := rand.New(rand.NewSource(int64(n)))
		pa := ss.Select(a, n)
		pb := ss.SelectInto(b, n, &sc)
		if len(pa) != len(pb) {
			t.Fatalf("set n=%d len %d != %d", n, len(pa), len(pb))
		}
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("set n=%d i=%d", n, i)
			}
		}
		if a.Int63() != b.Int63() {
			t.Fatalf("set n=%d rng divergence", n)
		}
		pa = ws.Select(a, n)
		pb = ws.SelectInto(b, n, &sc)
		for i := range pa {
			if pa[i] != pb[i] {
				t.Fatalf("weighted n=%d i=%d", n, i)
			}
		}
		if a.Int63() != b.Int63() {
			t.Fatalf("weighted n=%d rng divergence", n)
		}
	}
}
