package fault

import (
	"errors"
	"fmt"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/metrics"
)

var errDetected = errors.New("detected sentinel")

// classifyFixture builds a root image with a read-only input and a
// writable output, plus a golden post-run fork whose output is 1,2,3,...
func classifyFixture(t *testing.T) (*mem.Memory, *mem.Buffer, *mem.Memory, *Classifier) {
	t.Helper()
	root := mem.New()
	if _, err := root.Alloc("in", 256, true); err != nil {
		t.Fatal(err)
	}
	out, err := root.Alloc("out", 256, false)
	if err != nil {
		t.Fatal(err)
	}
	goldenRun := func(m *mem.Memory) {
		for i := 0; i < out.Len4(); i++ {
			m.WriteF32(out.ElemAddr(i), float32(i+1))
		}
	}
	goldenPost := root.Fork()
	goldenRun(goldenPost)
	output := func(m *mem.Memory) []float32 { return m.ReadF32Slice(out, out.Len4()) }
	c := &Classifier{
		Golden:     output(goldenPost),
		GoldenPost: goldenPost,
		Metric:     metrics.Metric{Kind: metrics.VectorDeviation, Threshold: 3},
		DetectErr:  errDetected,
	}
	return root, out, goldenPost, c
}

func TestClassifyErrors(t *testing.T) {
	root, _, _, c := classifyFixture(t)
	f := root.Fork()
	if o, err := c.Classify(fmt.Errorf("wrapped: %w", errDetected), f, nil); err != nil || o != Detected {
		t.Errorf("detection termination → %v, %v; want Detected", o, err)
	}
	if o, err := c.Classify(errors.New("out of bounds"), f, nil); err != nil || o != Crashed {
		t.Errorf("other run error → %v, %v; want Crashed", o, err)
	}
}

// TestClassifyDUE: a run aborted by a detected-uncorrectable error
// classifies as DUE, and the check outranks the scheme's own detection
// sentinel — ECC sees the corruption before the software check would.
func TestClassifyDUE(t *testing.T) {
	root, _, _, c := classifyFixture(t)
	f := root.Fork()
	if o, err := c.Classify(fmt.Errorf("ecc: %w", ErrUncorrectable), f, nil); err != nil || o != DUE {
		t.Errorf("uncorrectable termination → %v, %v; want DUE", o, err)
	}
	both := fmt.Errorf("%w (during check: %w)", ErrUncorrectable, errDetected)
	if o, err := c.Classify(both, f, nil); err != nil || o != DUE {
		t.Errorf("uncorrectable+detected termination → %v, %v; want DUE", o, err)
	}
}

func TestClassifyIdenticalRunIsMaskedWithoutOutputExtraction(t *testing.T) {
	root, out, _, c := classifyFixture(t)
	f := root.Fork()
	for i := 0; i < out.Len4(); i++ {
		f.WriteF32(out.ElemAddr(i), float32(i+1))
	}
	o, err := c.Classify(nil, f, func(*mem.Memory) []float32 {
		t.Fatal("output extracted for a bit-identical run")
		return nil
	})
	if err != nil || o != Masked {
		t.Errorf("identical run → %v, %v; want Masked", o, err)
	}
}

func TestClassifyDivergentRun(t *testing.T) {
	root, out, _, c := classifyFixture(t)

	// Every output word far off: past the 3% deviation threshold → SDC.
	f := root.Fork()
	for i := 0; i < out.Len4(); i++ {
		f.WriteF32(out.ElemAddr(i), float32(i+1)*100)
	}
	extracted := false
	o, err := c.Classify(nil, f, func(m *mem.Memory) []float32 {
		extracted = true
		return m.ReadF32Slice(out, out.Len4())
	})
	if err != nil || o != SDC {
		t.Errorf("corrupted run → %v, %v; want SDC", o, err)
	}
	if !extracted {
		t.Error("divergent run must fall back to output extraction")
	}

	// One word slightly off: divergent but within threshold → Masked via
	// the metric path.
	g := root.Fork()
	for i := 0; i < out.Len4(); i++ {
		g.WriteF32(out.ElemAddr(i), float32(i+1))
	}
	g.WriteF32(out.ElemAddr(0), 1.0000002)
	o, err = c.Classify(nil, g, func(m *mem.Memory) []float32 {
		return m.ReadF32Slice(out, out.Len4())
	})
	if err != nil || o != Masked {
		t.Errorf("within-threshold divergence → %v, %v; want Masked", o, err)
	}
}
