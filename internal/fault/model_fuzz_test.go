package fault

import (
	"slices"
	"strings"
	"testing"
)

// FuzzParseModel throws arbitrary spec strings at the registry parser —
// the surface the CLIs' -model flag and the fleet's job payloads expose to
// user input. Invariants: the parser never panics, never returns a nil
// model without an error, only returns validated models under registered
// names, and a returned model's canonical rendering re-parses to the same
// identity (the store-key round-trip campaigns rely on).
func FuzzParseModel(f *testing.F) {
	for _, seed := range []string{
		"stuck-at",
		"stuck-at:bits=3,blocks=1",
		"transient:flips=2",
		"burst:span=4",
		"stuck-at:bits=3,bits=4",
		"stuck-at:bits",
		"stuck-at:bits=",
		"stuck-at:=3",
		"stuck-at:bits=-1",
		"stuck-at:bits=99999999999999999999",
		" stuck-at : bits = 3 ",
		"no-such-model",
		":",
		"",
		"stuck-at:bits=3;transient",
		"burst:span=4,\x00=1",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		m, err := ParseModel(spec)
		if err != nil {
			if m != nil {
				t.Fatalf("ParseModel(%q) returned both a model and an error", spec)
			}
			return
		}
		if m == nil {
			t.Fatalf("ParseModel(%q) returned nil model without error", spec)
		}
		if err := m.Validate(); err != nil {
			t.Fatalf("ParseModel(%q) returned invalid model: %v", spec, err)
		}
		if !slices.Contains(ModelNames(), m.Name()) {
			t.Fatalf("ParseModel(%q) returned unregistered model name %q", spec, m.Name())
		}
		// Canonical round-trip: Name:Params must re-parse to the same
		// identity, or the content-addressed store would alias results.
		canon := m.Name()
		if p := m.Params(); p != "" {
			canon += ":" + p
		}
		rt, err := ParseModel(canon)
		if err != nil {
			t.Fatalf("round-trip ParseModel(%q) from spec %q: %v", canon, spec, err)
		}
		if rt.Name() != m.Name() || rt.Params() != m.Params() {
			t.Fatalf("round-trip of %q changed identity: %s:%s -> %s:%s",
				spec, m.Name(), m.Params(), rt.Name(), rt.Params())
		}
		if strings.ContainsAny(m.Name(), ";") {
			t.Fatalf("model name %q contains the list separator", m.Name())
		}
	})
}
