package fault

import (
	"errors"
	"math/bits"
	"math/rand"
	"sync/atomic"
	"testing"
	"testing/quick"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

func TestModelValidate(t *testing.T) {
	tests := []struct {
		m  Model
		ok bool
	}{
		{StuckAt{BitsPerWord: 2, Blocks: 1}, true},
		{StuckAt{BitsPerWord: 4, Blocks: 5}, true},
		{StuckAt{BitsPerWord: 0, Blocks: 1}, false},
		{StuckAt{BitsPerWord: 33, Blocks: 1}, false},
		{StuckAt{BitsPerWord: 2, Blocks: 0}, false},
	}
	for _, tt := range tests {
		if err := tt.m.Validate(); (err == nil) != tt.ok {
			t.Errorf("%v.Validate() = %v, want ok=%v", tt.m, err, tt.ok)
		}
	}
	if got := (StuckAt{BitsPerWord: 3, Blocks: 5}).String(); got != "3-bit/5-block" {
		t.Errorf("String() = %q", got)
	}
}

func TestSetSelectorDistinct(t *testing.T) {
	blocks := []arch.BlockAddr{1, 2, 3, 4, 5, 6, 7, 8}
	s, err := NewSetSelector(blocks)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	got := s.Select(rng, 5)
	if len(got) != 5 {
		t.Fatalf("selected %d, want 5", len(got))
	}
	seen := map[arch.BlockAddr]bool{}
	for _, b := range got {
		if seen[b] {
			t.Fatalf("duplicate block %d", b)
		}
		seen[b] = true
	}
	// Requesting more than the population returns the whole population.
	if got := s.Select(rng, 100); len(got) != 8 {
		t.Errorf("oversized select = %d blocks, want 8", len(got))
	}
	if _, err := NewSetSelector(nil); err == nil {
		t.Error("empty population accepted")
	}
}

func TestWeightedSelectorBias(t *testing.T) {
	blocks := []arch.BlockAddr{10, 20}
	s, err := NewWeightedSelector(blocks, []float64{9, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	hits := map[arch.BlockAddr]int{}
	const trials = 5000
	for i := 0; i < trials; i++ {
		for _, b := range s.Select(rng, 1) {
			hits[b]++
		}
	}
	frac := float64(hits[10]) / trials
	if frac < 0.85 || frac > 0.95 {
		t.Errorf("9:1 weighted selection picked heavy block %.3f of the time, want ≈0.9", frac)
	}
}

func TestWeightedSelectorWithoutReplacement(t *testing.T) {
	blocks := []arch.BlockAddr{1, 2, 3}
	s, err := NewWeightedSelector(blocks, []float64{100, 1, 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(3))
	got := s.Select(rng, 3)
	seen := map[arch.BlockAddr]bool{}
	for _, b := range got {
		if seen[b] {
			t.Fatalf("duplicate %d", b)
		}
		seen[b] = true
	}
	if len(got) != 3 {
		t.Fatalf("selected %d, want 3", len(got))
	}
}

func TestWeightedSelectorValidation(t *testing.T) {
	if _, err := NewWeightedSelector([]arch.BlockAddr{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := NewWeightedSelector([]arch.BlockAddr{1}, []float64{-1}); err == nil {
		t.Error("negative weight accepted")
	}
	if _, err := NewWeightedSelector([]arch.BlockAddr{1, 2}, []float64{0, 0}); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestInjectPlacesExactBitCount(t *testing.T) {
	m := mem.New()
	m.SetECC(mem.ECCNone)
	b, err := m.Alloc("data", 10*arch.BlockBytes, false)
	if err != nil {
		t.Fatal(err)
	}
	// Fill with a known pattern so stuck bits are observable in both
	// directions.
	for i := 0; i < b.Len4(); i++ {
		m.WriteWord(b.ElemAddr(i), 0x55555555)
	}
	sel, err := NewSetSelector([]arch.BlockAddr{b.FirstBlock() + 2})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(9))
	inj, err := Inject(m, rng, StuckAt{BitsPerWord: 4, Blocks: 1}, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	blocks := inj.Blocks
	if len(blocks) != 1 || blocks[0] != b.FirstBlock()+2 {
		t.Fatalf("faulted blocks = %v", blocks)
	}
	// Exactly one word in the block differs, by at most 4 bits.
	diffWords, diffBits := 0, 0
	base := blocks[0].Base()
	for w := 0; w < arch.WordsPerBlock; w++ {
		got := m.ReadWord(base + arch.Addr(w*4))
		if got != 0x55555555 {
			diffWords++
			diffBits = bits.OnesCount32(got ^ 0x55555555)
		}
	}
	if diffWords != 1 {
		t.Fatalf("faulty words = %d, want 1", diffWords)
	}
	// Half the stuck values coincide with the stored pattern on average, so
	// observed flips are ≤4 (and ≥1 with this seed).
	if diffBits < 1 || diffBits > 4 {
		t.Errorf("flipped bits = %d, want 1..4", diffBits)
	}
}

func TestInjectFiveBlocks(t *testing.T) {
	m := mem.New()
	m.SetECC(mem.ECCNone)
	b, err := m.Alloc("data", 64*arch.BlockBytes, false)
	if err != nil {
		t.Fatal(err)
	}
	var pop []arch.BlockAddr
	for i := 0; i < 64; i++ {
		pop = append(pop, b.FirstBlock()+arch.BlockAddr(i))
	}
	sel, err := NewSetSelector(pop)
	if err != nil {
		t.Fatal(err)
	}
	inj, err := Inject(m, rand.New(rand.NewSource(2)), StuckAt{BitsPerWord: 2, Blocks: 5}, sel, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(inj.Blocks) != 5 {
		t.Fatalf("faulted %d blocks, want 5", len(inj.Blocks))
	}
	if m.FaultCount() == 0 {
		t.Error("no faults recorded")
	}
}

func TestInjectValidation(t *testing.T) {
	m := mem.New()
	if _, err := Inject(m, rand.New(rand.NewSource(1)), nil, nil, nil); err == nil {
		t.Error("nil model accepted")
	}
	if _, err := Inject(m, rand.New(rand.NewSource(1)), StuckAt{}, nil, nil); err == nil {
		t.Error("invalid model accepted")
	}
	if _, err := Inject(m, rand.New(rand.NewSource(1)), StuckAt{BitsPerWord: 2, Blocks: 1}, nil, nil); err == nil {
		t.Error("nil selector accepted")
	}
}

// TestInjectDeterministicPerSeed: same seed → same faults.
func TestInjectDeterministicPerSeed(t *testing.T) {
	f := func(seed int64) bool {
		mk := func() uint32 {
			m := mem.New()
			m.SetECC(mem.ECCNone)
			b, err := m.Alloc("d", 8*arch.BlockBytes, false)
			if err != nil {
				return 0
			}
			sel, err := NewSetSelector([]arch.BlockAddr{b.FirstBlock(), b.FirstBlock() + 3})
			if err != nil {
				return 0
			}
			if _, err := Inject(m, rand.New(rand.NewSource(seed)), StuckAt{BitsPerWord: 3, Blocks: 2}, sel, nil); err != nil {
				return 0
			}
			var sig uint32
			for i := 0; i < b.Len4(); i++ {
				sig ^= m.ReadWord(b.ElemAddr(i)) * uint32(i+1)
			}
			return sig
		}
		return mk() == mk()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestCampaignCountsAndDeterminism(t *testing.T) {
	c := Campaign{Runs: 200, Seed: 42, Workers: 8}
	run := func(_ int, rng *rand.Rand) (Outcome, error) {
		switch rng.Intn(4) {
		case 0:
			return Masked, nil
		case 1:
			return SDC, nil
		case 2:
			return Detected, nil
		default:
			return Crashed, nil
		}
	}
	r1, err := c.Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := c.Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != r2 {
		t.Errorf("campaign not deterministic: %+v vs %+v", r1, r2)
	}
	if got := r1.MaskedRuns + r1.SDCRuns + r1.DetectedRuns + r1.CrashedRuns; got != 200 {
		t.Errorf("outcome counts sum to %d, want 200", got)
	}
}

func TestCampaignParallelismInvariance(t *testing.T) {
	run := func(_ int, rng *rand.Rand) (Outcome, error) {
		if rng.Float64() < 0.3 {
			return SDC, nil
		}
		return Masked, nil
	}
	serial, err := Campaign{Runs: 300, Seed: 7, Workers: 1}.Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Campaign{Runs: 300, Seed: 7, Workers: 16}.Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	if serial != parallel {
		t.Errorf("results differ by worker count: %+v vs %+v", serial, parallel)
	}
}

func TestCampaignErrorAborts(t *testing.T) {
	wantErr := errors.New("boom")
	var calls atomic.Int64
	_, err := Campaign{Runs: 1000, Seed: 1, Workers: 4}.Execute(func(i int, _ *rand.Rand) (Outcome, error) {
		calls.Add(1)
		if i == 10 {
			return 0, wantErr
		}
		return Masked, nil
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("err = %v, want %v", err, wantErr)
	}
	if calls.Load() == 1000 {
		t.Error("campaign did not abort early")
	}
}

func TestCampaignValidation(t *testing.T) {
	if _, err := (Campaign{Runs: 0}).Execute(func(int, *rand.Rand) (Outcome, error) { return Masked, nil }); err == nil {
		t.Error("zero runs accepted")
	}
	if _, err := (Campaign{Runs: 10}).Execute(nil); err == nil {
		t.Error("nil run func accepted")
	}
	if _, err := (Campaign{Runs: 10, Seed: 1}).Execute(func(int, *rand.Rand) (Outcome, error) { return Outcome(99), nil }); err == nil {
		t.Error("invalid outcome accepted")
	}
}

func TestResultStatistics(t *testing.T) {
	r := Result{Runs: 1000, SDCRuns: 500, MaskedRuns: 500}
	if got := r.SDCRate(); got != 0.5 {
		t.Errorf("SDCRate = %v, want 0.5", got)
	}
	// 1.96·sqrt(0.25/1000) ≈ 0.031 — the paper's ±3% at 1000 runs.
	hw := r.ConfidenceHalfWidth()
	if hw < 0.030 || hw > 0.032 {
		t.Errorf("half width = %v, want ≈0.031", hw)
	}
	var empty Result
	if empty.SDCRate() != 0 || empty.ConfidenceHalfWidth() != 0 {
		t.Error("empty result stats not zero")
	}
}

func TestOutcomeString(t *testing.T) {
	for o, want := range map[Outcome]string{
		Masked: "masked", SDC: "sdc", Detected: "detected", Crashed: "crashed",
		DUE: "due", Outcome(9): "outcome(9)",
	} {
		if got := o.String(); got != want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(o), got, want)
		}
	}
}

// TestCampaignRecordsDUE: DUE outcomes are a first-class campaign count —
// recorded in the result, reconciled in the run total, and surfaced on the
// live outcome counter under the "due" label.
func TestCampaignRecordsDUE(t *testing.T) {
	reg := telemetry.NewRegistry()
	res, err := Campaign{Runs: 20, Seed: 3, Workers: 4, Metrics: reg}.Execute(
		func(i int, _ *rand.Rand) (Outcome, error) {
			if i%4 == 0 {
				return DUE, nil
			}
			return Masked, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res.DUERuns != 5 || res.MaskedRuns != 15 {
		t.Errorf("result = %+v, want 5 DUE / 15 masked", res)
	}
	var total int
	for _, o := range Outcomes() {
		total += res.Count(o)
	}
	if total != res.Runs {
		t.Errorf("outcome counts sum to %d, want %d", total, res.Runs)
	}
	s, ok := reg.Snapshot().Get("dcrm_fault_runs_total", telemetry.Label{Name: "outcome", Value: "due"})
	if !ok || int(s.Value) != 5 {
		t.Errorf("counter outcome=due = %+v, want 5", s)
	}
}

func BenchmarkCampaignOverhead(b *testing.B) {
	c := Campaign{Runs: 100, Seed: 1}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Execute(func(int, *rand.Rand) (Outcome, error) { return Masked, nil }); err != nil {
			b.Fatal(err)
		}
	}
}

// TestCampaignMetrics asserts the live outcome counters reconcile with the
// campaign result and that attaching a registry does not change outcomes.
func TestCampaignMetrics(t *testing.T) {
	run := func(i int, _ *rand.Rand) (Outcome, error) {
		switch i % 3 {
		case 0:
			return Masked, nil
		case 1:
			return SDC, nil
		default:
			return Detected, nil
		}
	}
	bare, err := Campaign{Runs: 30, Seed: 5, Workers: 4}.Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	reg := telemetry.NewRegistry()
	inst, err := Campaign{Runs: 30, Seed: 5, Workers: 4, Metrics: reg}.Execute(run)
	if err != nil {
		t.Fatal(err)
	}
	if inst != bare {
		t.Errorf("instrumented result %+v differs from bare %+v", inst, bare)
	}
	snap := reg.Snapshot()
	for outcome, want := range map[string]int{"masked": inst.MaskedRuns, "sdc": inst.SDCRuns, "detected": inst.DetectedRuns} {
		s, ok := snap.Get("dcrm_fault_runs_total", telemetry.Label{Name: "outcome", Value: outcome})
		if !ok || int(s.Value) != want {
			t.Errorf("counter outcome=%s = %+v, want %d", outcome, s, want)
		}
	}
}
