// Package fault implements the paper's fault-injection methodology
// (Section II-C): permanent stuck-at faults of 2–4 bits injected into one
// random 32-bit word of each selected 128 B data memory block, with block
// selection strategies for the hot/rest split of Fig. 6 and the
// L1-miss-weighted whole-space injection of Fig. 9, and campaigns of many
// independent runs executed in parallel with binomial confidence intervals.
//
// Campaigns are reproducible by construction: run i draws from an rng
// derived from (Campaign.Seed, i), never from goroutine scheduling, so a
// campaign's Result is identical at any Workers count. The experiments
// package builds on this to keep whole-suite parallel runs bit-identical
// to serial ones.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

// Model describes one injection configuration: how many blocks are made
// faulty per run and how many bits are stuck within the targeted word.
type Model struct {
	// BitsPerWord is the multi-bit fault size (the paper uses 2, 3, 4).
	BitsPerWord int
	// Blocks is the number of faulty data memory blocks per run (1 or 5).
	Blocks int
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	if m.BitsPerWord < 1 || m.BitsPerWord > 32 {
		return fmt.Errorf("fault: bits per word must be in [1,32], got %d", m.BitsPerWord)
	}
	if m.Blocks < 1 {
		return fmt.Errorf("fault: blocks per run must be positive, got %d", m.Blocks)
	}
	return nil
}

// String renders the model the way the paper labels its configurations.
func (m Model) String() string {
	return fmt.Sprintf("%d-bit/%d-block", m.BitsPerWord, m.Blocks)
}

// Selector chooses the target blocks for one run.
type Selector interface {
	// Select returns n target blocks (repeats allowed only if the
	// underlying population is smaller than n).
	Select(rng *rand.Rand, n int) []arch.BlockAddr
}

// SetSelector selects uniformly from a fixed block population — the hot
// set or the rest-of-memory set of Fig. 6.
type SetSelector struct {
	blocks []arch.BlockAddr
}

// NewSetSelector builds a selector over the population. The slice is copied.
func NewSetSelector(blocks []arch.BlockAddr) (*SetSelector, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("fault: empty block population")
	}
	return &SetSelector{blocks: append([]arch.BlockAddr(nil), blocks...)}, nil
}

// Size returns the population size.
func (s *SetSelector) Size() int { return len(s.blocks) }

// Select implements Selector: n distinct blocks when possible.
func (s *SetSelector) Select(rng *rand.Rand, n int) []arch.BlockAddr {
	if n >= len(s.blocks) {
		return append([]arch.BlockAddr(nil), s.blocks...)
	}
	idx := rng.Perm(len(s.blocks))[:n]
	out := make([]arch.BlockAddr, n)
	for i, j := range idx {
		out[i] = s.blocks[j]
	}
	return out
}

// WeightedSelector selects blocks with probability proportional to a weight
// (the paper's Fig. 8 methodology: L1-missed access counts, since misses
// expose data to the L2/DRAM fault domain).
type WeightedSelector struct {
	blocks []arch.BlockAddr
	cum    []float64 // cumulative weights
}

// NewWeightedSelector builds a selector; weights must be non-negative with
// a positive sum, one per block.
func NewWeightedSelector(blocks []arch.BlockAddr, weights []float64) (*WeightedSelector, error) {
	if len(blocks) == 0 || len(blocks) != len(weights) {
		return nil, fmt.Errorf("fault: need matching non-empty blocks (%d) and weights (%d)",
			len(blocks), len(weights))
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("fault: weight %d is %v; must be non-negative", i, w)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("fault: weights sum to %v; must be positive", total)
	}
	return &WeightedSelector{blocks: append([]arch.BlockAddr(nil), blocks...), cum: cum}, nil
}

// Select implements Selector: n draws without replacement (by rejection).
func (s *WeightedSelector) Select(rng *rand.Rand, n int) []arch.BlockAddr {
	if n > len(s.blocks) {
		n = len(s.blocks)
	}
	total := s.cum[len(s.cum)-1]
	seen := make(map[arch.BlockAddr]bool, n)
	out := make([]arch.BlockAddr, 0, n)
	for len(out) < n {
		x := rng.Float64() * total
		i := searchCum(s.cum, x)
		b := s.blocks[i]
		if seen[b] {
			continue
		}
		seen[b] = true
		out = append(out, b)
	}
	return out
}

// searchCum returns the first index whose cumulative weight exceeds x.
func searchCum(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// Inject applies the model to the memory: for each selected block, one
// random word receives BitsPerWord stuck-at faults at distinct random bit
// positions, each stuck at 0 or 1 with equal probability (Section II-C).
// The word is drawn from the portion of the block actually covered by the
// owning data object — small objects (a 3×3 filter, a scalar) occupy only
// the head of their 128 B block, and a fault in the allocation padding
// would be trivially masked. It returns the faulted blocks.
func Inject(m *mem.Memory, rng *rand.Rand, model Model, sel Selector) ([]arch.BlockAddr, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if sel == nil {
		return nil, fmt.Errorf("fault: nil selector")
	}
	blocks := sel.Select(rng, model.Blocks)
	for _, b := range blocks {
		words := arch.WordsPerBlock
		if buf, ok := m.BufferAt(b.Base()); ok {
			used := (int(buf.Base) + buf.Size - int(b.Base()) + arch.WordBytes - 1) / arch.WordBytes
			if used < words {
				words = used
			}
			if words < 1 {
				words = 1
			}
		}
		word := rng.Intn(words)
		addr := b.Base() + arch.Addr(word*arch.WordBytes)
		var setMask, clrMask uint32
		for _, bit := range rng.Perm(32)[:model.BitsPerWord] {
			if rng.Intn(2) == 0 {
				setMask |= 1 << uint(bit)
			} else {
				clrMask |= 1 << uint(bit)
			}
		}
		if setMask != 0 {
			if err := m.InjectStuckAt(addr, setMask, true); err != nil {
				return nil, fmt.Errorf("fault: block %d: %w", b, err)
			}
		}
		if clrMask != 0 {
			if err := m.InjectStuckAt(addr, clrMask, false); err != nil {
				return nil, fmt.Errorf("fault: block %d: %w", b, err)
			}
		}
	}
	return blocks, nil
}
