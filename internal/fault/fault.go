// Package fault implements the paper's fault-injection methodology
// (Section II-C), generalized into a registry of pluggable fault models.
//
// A Model is one named, parameterized corruption pattern; the registry
// maps spec strings ("stuck-at:bits=3,blocks=1", "transient:flips=2",
// "burst:width=2,words=2") to validated Model values via ParseModel, so
// CLIs and the daemon accept models by name. Three models are built in:
//
//   - StuckAt — the paper's permanent stuck-at faults: 2–4 bits stuck in
//     one random word of each selected 128 B block, living in the memory
//     read-path overlay for the whole run.
//   - Transient — a single-event upset: a bit flip at a deterministic
//     instant of the replay timeline, overwritten (masked) by later
//     stores and corrected or detected-uncorrectable by SECDED ECC.
//   - Burst — multi-bit spatial faults: adjacent-bit × adjacent-word
//     stuck patterns within one block, with per-word ECC pre-
//     classification against the block's contents.
//
// Block targeting is factored out of the models into Selectors (the
// hot/rest split of Fig. 6, the L1-miss-weighted whole-space selection of
// Fig. 9), and campaigns of many independent runs execute in parallel
// with binomial confidence intervals. Runs classify into the Outcomes
// taxonomy — Masked, SDC, Detected, Crashed, and DUE (detected but
// uncorrectable; the run aborts) — in the canonical Outcomes() order that
// telemetry labels and CSV columns share.
//
// Campaigns are reproducible by construction: run i draws from an rng
// derived from (Campaign.Seed, i), never from goroutine scheduling, and
// every model consumes that rng in a frozen order, so a campaign's Result
// is identical at any Workers count. Model identity (ModelKey: name plus
// canonical parameters) folds into every result-store key, so cached
// results never alias across models. The experiments package builds on
// both properties to keep whole-suite parallel runs bit-identical to
// serial ones across arbitrarily large fault matrices.
package fault

import (
	"fmt"
	"math"
	"math/rand"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

// Selector chooses the target blocks for one run.
type Selector interface {
	// Select returns n target blocks (repeats allowed only if the
	// underlying population is smaller than n).
	Select(rng *rand.Rand, n int) []arch.BlockAddr
}

// SetSelector selects uniformly from a fixed block population — the hot
// set or the rest-of-memory set of Fig. 6.
type SetSelector struct {
	blocks []arch.BlockAddr
}

// NewSetSelector builds a selector over the population. The slice is copied.
func NewSetSelector(blocks []arch.BlockAddr) (*SetSelector, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("fault: empty block population")
	}
	return &SetSelector{blocks: append([]arch.BlockAddr(nil), blocks...)}, nil
}

// Size returns the population size.
func (s *SetSelector) Size() int { return len(s.blocks) }

// Select implements Selector: n distinct blocks when possible.
func (s *SetSelector) Select(rng *rand.Rand, n int) []arch.BlockAddr {
	if n >= len(s.blocks) {
		return append([]arch.BlockAddr(nil), s.blocks...)
	}
	idx := rng.Perm(len(s.blocks))[:n]
	out := make([]arch.BlockAddr, n)
	for i, j := range idx {
		out[i] = s.blocks[j]
	}
	return out
}

// SelectInto is Select drawing into reusable scratch: identical rng
// consumption and identical chosen blocks, but the permutation and output
// buffers come from sc. The returned slice (which may alias the selector's
// own population when n covers it — callers must not mutate it) is valid
// only until the next SelectInto with the same scratch.
func (s *SetSelector) SelectInto(rng *rand.Rand, n int, sc *Scratch) []arch.BlockAddr {
	if n >= len(s.blocks) {
		// Full population: Select copies here purely for ownership; the
		// scratch contract makes the copy unnecessary. No rng draws either way.
		return s.blocks
	}
	idx := permInto(rng, len(s.blocks), &sc.perm)[:n]
	out := sc.blocks[:0]
	for _, j := range idx {
		out = append(out, s.blocks[j])
	}
	sc.blocks = out
	return out
}

// WeightedSelector selects blocks with probability proportional to a weight
// (the paper's Fig. 8 methodology: L1-missed access counts, since misses
// expose data to the L2/DRAM fault domain).
type WeightedSelector struct {
	blocks []arch.BlockAddr
	cum    []float64 // cumulative weights
}

// NewWeightedSelector builds a selector; weights must be non-negative with
// a positive sum, one per block.
func NewWeightedSelector(blocks []arch.BlockAddr, weights []float64) (*WeightedSelector, error) {
	if len(blocks) == 0 || len(blocks) != len(weights) {
		return nil, fmt.Errorf("fault: need matching non-empty blocks (%d) and weights (%d)",
			len(blocks), len(weights))
	}
	cum := make([]float64, len(weights))
	total := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			return nil, fmt.Errorf("fault: weight %d is %v; must be non-negative", i, w)
		}
		total += w
		cum[i] = total
	}
	if total <= 0 {
		return nil, fmt.Errorf("fault: weights sum to %v; must be positive", total)
	}
	return &WeightedSelector{blocks: append([]arch.BlockAddr(nil), blocks...), cum: cum}, nil
}

// Select implements Selector: n draws without replacement (by rejection).
func (s *WeightedSelector) Select(rng *rand.Rand, n int) []arch.BlockAddr {
	if n > len(s.blocks) {
		n = len(s.blocks)
	}
	total := s.cum[len(s.cum)-1]
	seen := make(map[arch.BlockAddr]bool, n)
	out := make([]arch.BlockAddr, 0, n)
	for len(out) < n {
		x := rng.Float64() * total
		i := searchCum(s.cum, x)
		b := s.blocks[i]
		if seen[b] {
			continue
		}
		seen[b] = true
		out = append(out, b)
	}
	return out
}

// SelectInto is Select drawing into reusable scratch: identical rng
// consumption (the rejection loop's duplicate verdicts match the map-based
// path exactly) and identical chosen blocks, with the output buffer reused
// and the duplicate check done by linear scan — n is a handful of blocks.
// The returned slice is valid only until the next SelectInto with the same
// scratch.
func (s *WeightedSelector) SelectInto(rng *rand.Rand, n int, sc *Scratch) []arch.BlockAddr {
	if n > len(s.blocks) {
		n = len(s.blocks)
	}
	total := s.cum[len(s.cum)-1]
	out := sc.blocks[:0]
	for len(out) < n {
		x := rng.Float64() * total
		i := searchCum(s.cum, x)
		b := s.blocks[i]
		dup := false
		for _, p := range out {
			if p == b {
				dup = true
				break
			}
		}
		if dup {
			continue
		}
		out = append(out, b)
	}
	sc.blocks = out
	return out
}

// searchCum returns the first index whose cumulative weight exceeds x.
func searchCum(cum []float64, x float64) int {
	lo, hi := 0, len(cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cum[mid] > x {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}
