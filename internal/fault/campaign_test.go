package fault

import (
	"math/rand"
	"testing"
)

// TestProgressCountsRunsNotBatches: the Progress callback must advance
// run by run even when the executor claims whole batches, so ETA math
// built on it stays accurate on the batched path.
func TestProgressCountsRunsNotBatches(t *testing.T) {
	const runs = 20
	var calls []int
	c := Campaign{
		Runs:    runs,
		Seed:    7,
		Workers: 1,
		Batch:   8,
		Progress: func(done, total int) {
			if total != runs {
				t.Errorf("Progress total = %d, want %d", total, runs)
			}
			calls = append(calls, done)
		},
	}
	res, err := c.ExecuteBatched(func(start int, rngs []*rand.Rand) ([]Outcome, error) {
		outs := make([]Outcome, len(rngs))
		for i := range outs {
			outs[i] = Masked
		}
		return outs, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.MaskedRuns != runs {
		t.Fatalf("masked = %d, want %d", res.MaskedRuns, runs)
	}
	if len(calls) != runs {
		t.Fatalf("Progress fired %d times, want once per run (%d)", len(calls), runs)
	}
	for i, done := range calls {
		if done != i+1 {
			t.Fatalf("Progress call %d reported done=%d, want %d", i, done, i+1)
		}
	}
}

// TestBatchSizeResolution pins the Batch knob's resolution: 0 is the
// bit-parallel default, negatives clamp to unbatched.
func TestBatchSizeResolution(t *testing.T) {
	for _, tc := range []struct{ batch, want int }{
		{0, DefaultBatch},
		{1, 1},
		{-3, 1},
		{8, 8},
		{200, 200},
	} {
		if got := (Campaign{Batch: tc.batch}).BatchSize(); got != tc.want {
			t.Errorf("BatchSize(%d) = %d, want %d", tc.batch, got, tc.want)
		}
	}
}

// TestBatchedChunkBoundaries: claims are contiguous [lo, hi) chunks of at
// most BatchSize runs whose boundaries depend only on the range, never on
// scheduling — the property that keeps batched shards mergeable.
func TestBatchedChunkBoundaries(t *testing.T) {
	const runs = 23
	seen := make(map[int]int) // run index -> claims covering it
	var starts []int
	c := Campaign{Runs: runs, Seed: 1, Workers: 1, Batch: 5}
	if _, err := c.ExecuteBatched(func(start int, rngs []*rand.Rand) ([]Outcome, error) {
		if len(rngs) > 5 {
			t.Errorf("claim [%d, %d) exceeds batch size 5", start, start+len(rngs))
		}
		starts = append(starts, start)
		outs := make([]Outcome, len(rngs))
		for i := range outs {
			seen[start+i]++
			outs[i] = Masked
		}
		return outs, nil
	}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < runs; i++ {
		if seen[i] != 1 {
			t.Errorf("run %d covered by %d claims, want exactly 1", i, seen[i])
		}
	}
	want := []int{0, 5, 10, 15, 20}
	if len(starts) != len(want) {
		t.Fatalf("claim starts = %v, want %v", starts, want)
	}
	for i := range want {
		if starts[i] != want[i] {
			t.Fatalf("claim starts = %v, want %v", starts, want)
		}
	}
}
