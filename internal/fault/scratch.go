// Injection scratch: reusable per-worker buffers that take the steady-state
// campaign hot path to (near) zero allocations per run. Every run of a
// campaign draws a block permutation (selector), an output block list, and —
// for the bit-pattern models — a 32-element bit permutation per block;
// without reuse those are three heap allocations per run, visible as the
// bulk of the campaign allocs/op baseline. Scratch carries those buffers
// across runs. Correctness is unchanged by construction: every *Into path
// consumes the rng in exactly the same order as its allocating counterpart
// and produces the same values, so campaign results stay bit-identical —
// the fork-parity tests gate on that.
package fault

import (
	"math/rand"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

// Scratch is one worker's reusable injection scratch. The zero value is
// ready to use. Not safe for concurrent use; campaigns keep one per worker
// (the experiments checkpoint pools them alongside its fork pool). Slices
// returned by injection paths using a Scratch are valid only until the next
// run on the same Scratch.
type Scratch struct {
	perm   []int            // selector block-permutation scratch
	perm32 []int            // per-word bit-permutation scratch
	blocks []arch.BlockAddr // selected-block output scratch
}

// permInto writes a pseudo-random permutation of [0,n) into *buf, growing
// it as needed, consuming rng exactly like rand.Perm(n) (same algorithm,
// same draws) so pooled and allocating paths stay bit-identical.
func permInto(rng *rand.Rand, n int, buf *[]int) []int {
	m := *buf
	if cap(m) < n {
		m = make([]int, n)
	} else {
		m = m[:n]
	}
	// The i=0 iteration swaps m[0] with itself but still consumes one
	// Intn(1) draw — rand.Perm keeps it for stream compatibility, and so
	// must we.
	for i := 0; i < n; i++ {
		j := rng.Intn(i + 1)
		m[i] = m[j]
		m[j] = i
	}
	*buf = m
	return m
}

// selectBlocks draws n target blocks from sel, routing through the
// scratch-reusing SelectInto when the env carries a Scratch and the
// selector supports it; otherwise it falls back to the allocating Select.
// Both paths consume the rng identically.
func selectBlocks(rng *rand.Rand, sel Selector, n int, env *Env) []arch.BlockAddr {
	if env != nil && env.Scratch != nil {
		if si, ok := sel.(interface {
			SelectInto(*rand.Rand, int, *Scratch) []arch.BlockAddr
		}); ok {
			return si.SelectInto(rng, n, env.Scratch)
		}
	}
	return sel.Select(rng, n)
}

// perm32 returns a permutation of [0,32) — the per-word bit order the
// bit-pattern models slice their stuck/flipped bits from — reusing env
// scratch when available. Identical draws to rng.Perm(32).
func perm32(rng *rand.Rand, env *Env) []int {
	if env != nil && env.Scratch != nil {
		return permInto(rng, 32, &env.Scratch.perm32)
	}
	return rng.Perm(32)
}
