// Package simt provides the warp-lockstep execution model that GPGPU
// kernels in this repository are written against. A kernel is executed one
// warp at a time; each warp-level load/store is coalesced into 128 B block
// transactions exactly as the LD/ST unit would issue them. A single
// execution pass performs the real computation (reading device memory
// through the fault overlay and, when enabled, the replication schemes) and
// optionally captures a per-warp instruction trace for the timing simulator.
package simt

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

// InstrKind discriminates trace instructions.
type InstrKind uint8

// Trace instruction kinds.
const (
	// InstrCompute is a block of back-to-back ALU operations.
	InstrCompute InstrKind = iota + 1
	// InstrLoad is a global memory read (one or more coalesced transactions).
	InstrLoad
	// InstrStore is a global memory write.
	InstrStore
)

// String renders the kind.
func (k InstrKind) String() string {
	switch k {
	case InstrCompute:
		return "compute"
	case InstrLoad:
		return "load"
	case InstrStore:
		return "store"
	default:
		return fmt.Sprintf("instrkind(%d)", int(k))
	}
}

// Instr is one warp-level instruction in a captured trace.
type Instr struct {
	// Kind discriminates the variant.
	Kind InstrKind
	// PC is the static load/store site ID (unique per app).
	PC uint16
	// BufID identifies the data object accessed (loads/stores).
	BufID int16
	// Ops is the number of collapsed ALU operations (compute only).
	Ops int32
	// Blocks are the coalesced 128 B transactions (loads/stores).
	Blocks []arch.BlockAddr
}

// Site is a static memory instruction — the "load instruction address" the
// paper's LD/ST-unit tables track. Allocate one per source-level access with
// App.NewSite; PCs are dense and unique within an application.
type Site struct {
	// PC is the static instruction address (dense ID).
	PC uint16
	// Name labels the access for reports, e.g. "k1.ld.A".
	Name string
}

// Transaction is one coalesced block access, as observed by profilers.
type Transaction struct {
	// Block is the 128 B data memory block accessed.
	Block arch.BlockAddr
	// PC is the static site that issued the access.
	PC uint16
	// BufID is the data object accessed.
	BufID int16
	// WarpID is the global warp index within the kernel launch.
	WarpID int
	// Write distinguishes stores from loads.
	Write bool
}

// Observer receives every coalesced transaction during an instrumented run.
// Implementations must be fast; they are invoked on the hot path.
type Observer interface {
	Observe(tx Transaction)
}

// WordReader resolves one lane's 32-bit read. The zero configuration reads
// device memory directly (through the fault overlay); the replication
// manager in internal/core wraps this to implement duplication comparison
// and triplication voting.
type WordReader interface {
	// ReadLaneWord returns the word at addr within buf. A non-nil error
	// terminates the kernel (the paper's detection-scheme terminate signal).
	ReadLaneWord(buf *mem.Buffer, addr arch.Addr) (uint32, error)
}

// directReader reads device memory with no protection interposed.
type directReader struct{ m *mem.Memory }

func (r directReader) ReadLaneWord(_ *mem.Buffer, addr arch.Addr) (uint32, error) {
	return r.m.ReadWord(addr), nil
}

// Kernel is one GPU kernel: a launch geometry plus a warp program.
type Kernel struct {
	// KernelName labels the kernel ("bicg_kernel1").
	KernelName string
	// Grid is the CTA grid extent.
	Grid arch.Dim3
	// Block is the per-CTA thread extent.
	Block arch.Dim3
	// Run executes one warp of the kernel.
	Run func(w *WarpCtx)
}

// WarpsPerCTA returns the number of warps each CTA launches.
func (k *Kernel) WarpsPerCTA() int {
	return (k.Block.Count() + arch.WarpSize - 1) / arch.WarpSize
}

// TotalWarps returns the number of warps in the whole launch.
func (k *Kernel) TotalWarps() int { return k.Grid.Count() * k.WarpsPerCTA() }

// KernelTrace is the captured trace of one kernel launch.
type KernelTrace struct {
	// Kernel names the traced launch.
	Kernel string
	// WarpsPerCTA and NumCTAs describe the launch geometry.
	WarpsPerCTA int
	NumCTAs     int
	// Warps holds each warp's instruction sequence, indexed by global warp
	// ID (ctaLinear*WarpsPerCTA + warpInCTA).
	Warps [][]Instr
}

// Instructions returns the total instruction count across warps.
func (t *KernelTrace) Instructions() int {
	n := 0
	for _, w := range t.Warps {
		n += len(w)
	}
	return n
}

// Transactions returns the total coalesced memory transactions in the trace.
func (t *KernelTrace) Transactions() int {
	n := 0
	for _, w := range t.Warps {
		for i := range w {
			n += len(w[i].Blocks)
		}
	}
	return n
}
