package simt

import (
	"reflect"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

func TestStoreTransactionsObserved(t *testing.T) {
	m := mem.New()
	b, err := m.Alloc("out", 256, false)
	if err != nil {
		t.Fatal(err)
	}
	obs := &recordingObserver{}
	idx := make([]int32, arch.WarpSize)
	src := make([]float32, arch.WarpSize)
	runOneWarp(t, m, obs, false, func(w *WarpCtx) {
		for lane := 0; lane < w.NumLanes; lane++ {
			idx[lane] = int32(lane)
		}
		w.StoreF32(Site{PC: 9}, b, idx, src)
	})
	if len(obs.txs) != 1 {
		t.Fatalf("store transactions = %d, want 1 coalesced", len(obs.txs))
	}
	if !obs.txs[0].Write {
		t.Error("store transaction not marked as write")
	}
	if obs.txs[0].PC != 9 {
		t.Errorf("store PC = %d, want 9", obs.txs[0].PC)
	}
}

// TestTraceDeterminism: identical kernels trace identically — the timing
// experiments replay one captured trace for many protection plans.
func TestTraceDeterminism(t *testing.T) {
	build := func() *KernelTrace {
		m, b := newTestMem(t, "A", 1024)
		d := &Driver{Mem: m, Tracing: true}
		idx := make([]int32, arch.WarpSize)
		dst := make([]float32, arch.WarpSize)
		tr, err := d.Run(&Kernel{
			KernelName: "det",
			Grid:       arch.Dim3{X: 4},
			Block:      arch.Dim3{X: 64},
			Run: func(w *WarpCtx) {
				for i := 0; i < 8; i++ {
					for lane := 0; lane < w.NumLanes; lane++ {
						idx[lane] = int32((w.LinearThreadID(lane)*7 + i*13) % 1024)
					}
					w.LoadF32(Site{PC: 1}, b, idx, dst)
					w.Compute(2)
				}
			},
		})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	a, b := build(), build()
	if !reflect.DeepEqual(a.Warps, b.Warps) {
		t.Fatal("identical kernels produced different traces")
	}
}

func TestPermissiveOOBLoads(t *testing.T) {
	m := mem.New()
	b, err := m.Alloc("small", 128, true)
	if err != nil {
		t.Fatal(err)
	}
	other, err := m.Alloc("other", 128, false)
	if err != nil {
		t.Fatal(err)
	}
	m.WriteF32(other.ElemAddr(0), 42)

	d := &Driver{Mem: m, PermissiveOOB: true}
	idx := make([]int32, arch.WarpSize)
	dst := make([]float32, arch.WarpSize)
	var broadcast float32
	_, err = d.Run(&Kernel{
		KernelName: "oob",
		Grid:       arch.Dim3{X: 1},
		Block:      arch.Dim3{X: 32},
		Run: func(w *WarpCtx) {
			for lane := range idx {
				idx[lane] = InactiveLane
			}
			idx[0] = 32 // "small" has 32 floats; index 32 lands in "other"[0]
			idx[1] = -1000
			w.LoadF32(Site{PC: 1}, b, idx, dst)
			broadcast = w.LoadF32Broadcast(Site{PC: 2}, b, 1<<20)
		},
	})
	if err != nil {
		t.Fatalf("permissive OOB run failed: %v", err)
	}
	if dst[0] != 42 {
		t.Errorf("wrapped OOB read = %v, want the neighbouring buffer's 42", dst[0])
	}
	_ = broadcast // deterministic wrapped value; the run completing is the contract

	// Negative and far-out indices wrap deterministically: re-running gives
	// identical values.
	first := dst[1]
	d2 := &Driver{Mem: m.Clone(), PermissiveOOB: true}
	_, err = d2.Run(&Kernel{
		KernelName: "oob2",
		Grid:       arch.Dim3{X: 1},
		Block:      arch.Dim3{X: 32},
		Run: func(w *WarpCtx) {
			for lane := range idx {
				idx[lane] = InactiveLane
			}
			idx[1] = -1000
			w.LoadF32(Site{PC: 1}, b, idx, dst)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if dst[1] != first {
		t.Error("wrapped OOB reads not deterministic")
	}
}

func TestStrictOOBStillFails(t *testing.T) {
	m, b := newTestMem(t, "A", 16)
	d := &Driver{Mem: m} // strict
	idx := make([]int32, arch.WarpSize)
	dst := make([]float32, arch.WarpSize)
	_, err := d.Run(&Kernel{
		KernelName: "strict",
		Grid:       arch.Dim3{X: 1},
		Block:      arch.Dim3{X: 32},
		Run: func(w *WarpCtx) {
			idx[0] = 9999
			for l := 1; l < len(idx); l++ {
				idx[l] = InactiveLane
			}
			w.LoadF32(Site{PC: 1}, b, idx, dst)
		},
	})
	if err == nil {
		t.Fatal("strict mode accepted an out-of-bounds load")
	}
}

func TestScratchSlotsAreDistinct(t *testing.T) {
	m, _ := newTestMem(t, "A", 16)
	d := &Driver{Mem: m}
	_, err := d.Run(&Kernel{
		KernelName: "scratch",
		Grid:       arch.Dim3{X: 1},
		Block:      arch.Dim3{X: 32},
		Run: func(w *WarpCtx) {
			a := w.ScratchF32(0)
			b := w.ScratchF32(1)
			a[0], b[0] = 1, 2
			if a[0] != 1 || b[0] != 2 {
				t.Error("scratch slots alias")
			}
			ia := w.ScratchI32(2)
			ib := w.ScratchI32(3)
			ia[5], ib[5] = 7, 9
			if ia[5] != 7 || ib[5] != 9 {
				t.Error("int scratch slots alias")
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}
