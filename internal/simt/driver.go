package simt

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

// Driver executes kernels warp-by-warp against one device memory image.
// Configure Reader to interpose a protection scheme and Observer to profile
// accesses; enable Tracing to capture per-warp instruction traces for the
// timing simulator. The zero Reader reads memory directly.
type Driver struct {
	// Mem is the device memory the kernels run against.
	Mem *mem.Memory
	// Reader interposes on every lane read; nil reads Mem directly.
	Reader WordReader
	// Observer receives every coalesced transaction; nil disables.
	Observer Observer
	// Tracing captures per-warp instruction traces when true.
	Tracing bool
	// PermissiveOOB makes out-of-bounds lane loads read (wrapped) device
	// memory instead of aborting the launch — the behaviour of real GPU
	// global loads whose address was corrupted by a fault: they fetch
	// whatever the address resolves to. Fault-injection campaigns enable
	// this so corrupted-index faults propagate to the output (and are
	// judged by the SDC metric) rather than crashing the run. Clean runs
	// never go out of bounds, so the mode does not change fault-free
	// results. Stores remain strict.
	PermissiveOOB bool

	reader WordReader
	grid   arch.Dim3
}

// Run executes the kernel to completion, returning the captured trace when
// tracing is enabled. A protection-scheme termination (or a kernel bug such
// as an out-of-bounds access) aborts the launch and is returned as an error.
func (d *Driver) Run(k *Kernel) (*KernelTrace, error) {
	if k.Run == nil {
		return nil, fmt.Errorf("simt: kernel %q has no warp program", k.KernelName)
	}
	if k.Grid.X <= 0 || k.Block.X <= 0 {
		return nil, fmt.Errorf("simt: kernel %q: launch geometry must set grid.X and block.X, got grid=%v block=%v",
			k.KernelName, k.Grid, k.Block)
	}
	d.reader = d.Reader
	if d.reader == nil {
		d.reader = directReader{d.Mem}
	}
	d.grid = k.Grid

	warpsPerCTA := k.WarpsPerCTA()
	threadsPerCTA := k.Block.Count()
	var trace *KernelTrace
	if d.Tracing {
		trace = &KernelTrace{
			Kernel:      k.KernelName,
			WarpsPerCTA: warpsPerCTA,
			NumCTAs:     k.Grid.Count(),
			Warps:       make([][]Instr, k.Grid.Count()*warpsPerCTA),
		}
	}

	ctx := &WarpCtx{blockDim: k.Block, drv: d, tracing: d.Tracing}
	for cz := 0; cz < max(1, k.Grid.Z); cz++ {
		for cy := 0; cy < max(1, k.Grid.Y); cy++ {
			for cx := 0; cx < max(1, k.Grid.X); cx++ {
				ctaIdx := arch.Dim3{X: cx, Y: cy, Z: cz}
				ctaLinear := k.Grid.Flatten(ctaIdx)
				for wi := 0; wi < warpsPerCTA; wi++ {
					lanes := arch.WarpSize
					if rem := threadsPerCTA - wi*arch.WarpSize; rem < lanes {
						lanes = rem
					}
					ctx.CTAIdx = ctaIdx
					ctx.WarpInCTA = wi
					ctx.GlobalWarpID = ctaLinear*warpsPerCTA + wi
					ctx.NumLanes = lanes
					ctx.trace = nil
					k.Run(ctx)
					if ctx.err != nil {
						return nil, fmt.Errorf("simt: kernel %q warp %d: %w",
							k.KernelName, ctx.GlobalWarpID, ctx.err)
					}
					if trace != nil {
						trace.Warps[ctx.GlobalWarpID] = ctx.trace
					}
				}
			}
		}
	}
	return trace, nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
