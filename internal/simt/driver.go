package simt

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

// Driver executes kernels warp-by-warp against one device memory image.
// Configure Reader to interpose a protection scheme and Observer to profile
// accesses; enable Tracing to capture per-warp instruction traces for the
// timing simulator. The zero Reader reads memory directly.
type Driver struct {
	// Mem is the device memory the kernels run against.
	Mem *mem.Memory
	// Reader interposes on every lane read; nil reads Mem directly.
	Reader WordReader
	// Observer receives every coalesced transaction; nil disables.
	Observer Observer
	// Tracing captures per-warp instruction traces when true.
	Tracing bool
	// PermissiveOOB makes out-of-bounds lane loads read (wrapped) device
	// memory instead of aborting the launch — the behaviour of real GPU
	// global loads whose address was corrupted by a fault: they fetch
	// whatever the address resolves to. Fault-injection campaigns enable
	// this so corrupted-index faults propagate to the output (and are
	// judged by the SDC metric) rather than crashing the run. Clean runs
	// never go out of bounds, so the mode does not change fault-free
	// results. Stores remain strict.
	PermissiveOOB bool
	// Capture, when non-nil, records every warp's loads and stores into the
	// log (one KernelCapture appended per Run) for batched campaign replay.
	Capture *CaptureLog

	reader  WordReader
	grid    arch.Dim3
	warpCtx *WarpCtx
}

// Run executes the kernel to completion, returning the captured trace when
// tracing is enabled. A protection-scheme termination (or a kernel bug such
// as an out-of-bounds access) aborts the launch and is returned as an error.
func (d *Driver) Run(k *Kernel) (*KernelTrace, error) {
	if k.Run == nil {
		return nil, fmt.Errorf("simt: kernel %q has no warp program", k.KernelName)
	}
	if k.Grid.X <= 0 || k.Block.X <= 0 {
		return nil, fmt.Errorf("simt: kernel %q: launch geometry must set grid.X and block.X, got grid=%v block=%v",
			k.KernelName, k.Grid, k.Block)
	}
	d.reader = d.Reader
	if d.reader == nil {
		d.reader = directReader{d.Mem}
	}
	d.grid = k.Grid

	warpsPerCTA := k.WarpsPerCTA()
	threadsPerCTA := k.Block.Count()
	var trace *KernelTrace
	if d.Tracing {
		trace = &KernelTrace{
			Kernel:      k.KernelName,
			WarpsPerCTA: warpsPerCTA,
			NumCTAs:     k.Grid.Count(),
			Warps:       make([][]Instr, k.Grid.Count()*warpsPerCTA),
		}
	}
	var kcap *KernelCapture
	if d.Capture != nil {
		kcap = &KernelCapture{
			Kernel: k,
			Warps:  make([]*WarpCapture, k.Grid.Count()*warpsPerCTA),
		}
		d.Capture.Kernels = append(d.Capture.Kernels, kcap)
	}

	ctx := &WarpCtx{blockDim: k.Block, drv: d, tracing: d.Tracing}
	ctx.emitActive = d.Observer != nil || d.Tracing
	for cz := 0; cz < max(1, k.Grid.Z); cz++ {
		for cy := 0; cy < max(1, k.Grid.Y); cy++ {
			for cx := 0; cx < max(1, k.Grid.X); cx++ {
				ctaIdx := arch.Dim3{X: cx, Y: cy, Z: cz}
				ctaLinear := k.Grid.Flatten(ctaIdx)
				for wi := 0; wi < warpsPerCTA; wi++ {
					lanes := arch.WarpSize
					if rem := threadsPerCTA - wi*arch.WarpSize; rem < lanes {
						lanes = rem
					}
					ctx.CTAIdx = ctaIdx
					ctx.WarpInCTA = wi
					ctx.GlobalWarpID = ctaLinear*warpsPerCTA + wi
					ctx.NumLanes = lanes
					ctx.linearBase = ctaLinear*threadsPerCTA + wi*arch.WarpSize
					ctx.trace = nil
					if kcap != nil {
						ctx.capture = &WarpCapture{
							CTAIdx:       ctaIdx,
							WarpInCTA:    wi,
							GlobalWarpID: ctx.GlobalWarpID,
							NumLanes:     lanes,
						}
					}
					k.Run(ctx)
					if ctx.err != nil {
						return nil, fmt.Errorf("simt: kernel %q warp %d: %w",
							k.KernelName, ctx.GlobalWarpID, ctx.err)
					}
					if trace != nil {
						trace.Warps[ctx.GlobalWarpID] = ctx.trace
					}
					if kcap != nil {
						kcap.Warps[ctx.GlobalWarpID] = ctx.capture
						ctx.capture = nil
					}
				}
			}
		}
	}
	return trace, nil
}

// RunWarp executes one recorded warp of k against the driver's memory. rp,
// when non-nil, serves loads from the recording while the lane's divergent
// blocks stay clear of them (the batched-campaign fast path); nil executes
// the warp plainly. Errors carry the same wrapping Run would give the same
// warp. The driver's warp context is reused across calls, mirroring how Run
// reuses one context for a whole launch.
func (d *Driver) RunWarp(k *Kernel, wc *WarpCapture, rp *LaneReplay) error {
	d.reader = d.Reader
	if d.reader == nil {
		d.reader = directReader{d.Mem}
	}
	d.grid = k.Grid
	ctx := d.warpCtx
	if ctx == nil {
		ctx = &WarpCtx{}
		d.warpCtx = ctx
	}
	ctx.blockDim = k.Block
	ctx.drv = d
	ctx.tracing = false
	ctx.trace = nil
	ctx.err = nil
	ctx.capture = nil
	ctx.emitActive = d.Observer != nil
	ctx.CTAIdx = wc.CTAIdx
	ctx.WarpInCTA = wc.WarpInCTA
	ctx.GlobalWarpID = wc.GlobalWarpID
	ctx.NumLanes = wc.NumLanes
	ctx.linearBase = k.Grid.Flatten(wc.CTAIdx)*k.Block.Count() + wc.WarpInCTA*arch.WarpSize
	ctx.replay = rp
	k.Run(ctx)
	ctx.replay = nil
	if ctx.err != nil {
		return fmt.Errorf("simt: kernel %q warp %d: %w", k.KernelName, wc.GlobalWarpID, ctx.err)
	}
	return nil
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
