// Capture and replay of a reference (fault-free) execution. A CaptureLog
// records, warp by warp, every load the application issues (site, indices,
// loaded values, coalesced blocks) and every store it commits. Campaign
// batching builds on two properties of the lockstep execution model:
//
//   - Warps run strictly in launch order, so the recorded per-warp load
//     and store sequences fully determine a fault-free run.
//   - A warp whose loads touch no block that differs from the golden image
//     behaves bit-identically to the recording — its loads return the
//     recorded values and its stores commit the recorded values — so a
//     faulty run only needs to *execute* the warps whose load-block set
//     intersects its divergent blocks; every other warp is reproduced by
//     applying the recorded stores.
//
// LaneReplay carries that argument into the executed warps themselves:
// while the warp's load/store sequence still matches the recording
// position-for-position (same sites, same indices), loads whose blocks are
// all clean are served straight from the recorded values, skipping the
// per-lane address/bounds/overlay work. The first mismatch in the sequence
// (a fault-corrupted index changed the control flow or an address) desyncs
// the lane permanently: the rest of the warp runs on the real memory path,
// and the caller must fall back to full execution for the lane's remaining
// warps, because the recording can no longer bound what the lane writes.
package simt

import (
	"math"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

// CaptureLog is the recorded reference execution of one application: one
// KernelCapture per kernel launch, in launch order.
type CaptureLog struct {
	// Kernels holds one capture per launch, in App.Kernels order.
	Kernels []*KernelCapture
}

// KernelCapture records one kernel launch.
type KernelCapture struct {
	// Kernel is the launched kernel (re-run warp-by-warp during replay).
	Kernel *Kernel
	// Warps holds each warp's record, dense by global warp ID.
	Warps []*WarpCapture
}

// WarpCapture is the full memory behaviour of one warp in the reference
// run: its identity, its loads in issue order, and its stores in commit
// order.
type WarpCapture struct {
	// CTAIdx, WarpInCTA, GlobalWarpID, NumLanes identify the warp exactly
	// as Driver.Run would construct it.
	CTAIdx       arch.Dim3
	WarpInCTA    int
	GlobalWarpID int
	NumLanes     int
	// Loads and Stores are the warp's memory instructions in program order.
	Loads  []LoadRec
	Stores []StoreRec
	// LoadBlocks is the deduplicated union of every load's Blocks — the
	// warp's read footprint. A run whose divergent blocks miss this set
	// entirely cannot observe the divergence in this warp.
	LoadBlocks []arch.BlockAddr
}

// LoadRec is one recorded warp-level load.
type LoadRec struct {
	// PC is the static site that issued the load.
	PC uint16
	// BufID is the accessed data object.
	BufID int16
	// Broadcast marks a warp-uniform load (LoadF32Broadcast/LoadI32Broadcast).
	Broadcast bool
	// BIdx is the broadcast element index (broadcast loads only).
	BIdx int32
	// Idx is the per-lane index vector (vector loads only; length NumLanes,
	// InactiveLane for predicated-off lanes).
	Idx []int32
	// Vals are the loaded 32-bit values per lane (vector loads: length
	// NumLanes, undefined at inactive lanes; broadcast loads: length 1).
	Vals []uint32
	// Blocks are the coalesced blocks the load touches. For loads of
	// protected objects the capture owner appends the replica blocks the
	// protection scheme reads invisibly, so a clean Blocks set proves the
	// full read (copies included) resolves to golden data.
	Blocks []arch.BlockAddr
}

// StoreRec is one recorded warp-level store.
type StoreRec struct {
	// PC is the static site that issued the store.
	PC uint16
	// BufID is the written data object.
	BufID int16
	// Idx is the per-lane index vector (length NumLanes).
	Idx []int32
	// Vals are the stored 32-bit values per lane (length NumLanes).
	Vals []uint32
	// Blocks are the coalesced blocks the store writes.
	Blocks []arch.BlockAddr
}

// ApproxBytes estimates the log's memory footprint, so callers can bound
// how much capture state they keep per checkpoint.
func (c *CaptureLog) ApproxBytes() int64 {
	var n int64
	for _, kc := range c.Kernels {
		n += 64
		for _, wc := range kc.Warps {
			if wc == nil {
				continue
			}
			n += 96 + int64(len(wc.LoadBlocks))*8
			for i := range wc.Loads {
				r := &wc.Loads[i]
				n += 64 + int64(len(r.Idx))*4 + int64(len(r.Vals))*4 + int64(len(r.Blocks))*8
			}
			for i := range wc.Stores {
				r := &wc.Stores[i]
				n += 64 + int64(len(r.Idx))*4 + int64(len(r.Vals))*4 + int64(len(r.Blocks))*8
			}
		}
	}
	return n
}

// BlockSet is a dense bitset over block indices — the replay executor's
// representation of a lane's divergent ("dirty") blocks.
type BlockSet struct {
	bits []uint64
}

// NewBlockSet returns a set sized for a memory of nblocks blocks.
func NewBlockSet(nblocks int) *BlockSet {
	return &BlockSet{bits: make([]uint64, (nblocks+63)/64)}
}

// Reset clears the set.
func (s *BlockSet) Reset() {
	for i := range s.bits {
		s.bits[i] = 0
	}
}

// Add inserts one block.
func (s *BlockSet) Add(b arch.BlockAddr) {
	s.bits[uint(b)/64] |= 1 << (uint(b) % 64)
}

// AddAll inserts every block of the slice.
func (s *BlockSet) AddAll(blocks []arch.BlockAddr) {
	for _, b := range blocks {
		s.Add(b)
	}
}

// Has reports membership.
func (s *BlockSet) Has(b arch.BlockAddr) bool {
	return s.bits[uint(b)/64]&(1<<(uint(b)%64)) != 0
}

// AnyOf reports whether any block of the slice is in the set.
func (s *BlockSet) AnyOf(blocks []arch.BlockAddr) bool {
	for _, b := range blocks {
		if s.Has(b) {
			return true
		}
	}
	return false
}

// LaneReplay is the per-warp replay state of one campaign lane executing a
// recorded warp for real. It walks the warp's recorded load/store sequence
// in lockstep with the execution: as long as every issued instruction
// matches the recording (same site, object, and indices), loads whose
// blocks are all outside Dirty are served from the recorded values. The
// first sequence mismatch sets Desync and stops all serving — the caller
// must treat the lane as fully divergent from then on.
type LaneReplay struct {
	// WC is the warp being replayed.
	WC *WarpCapture
	// Dirty is the lane's divergent-block set (shared across the lane's
	// warps, maintained by the batch executor).
	Dirty *BlockSet

	loadCur  int
	storeCur int
	// Desync records that the executed instruction sequence diverged from
	// the recording (a fault corrupted an index or branch). The lane's
	// writes can no longer be bounded by the recording: the executor must
	// run every remaining warp of the lane in full.
	Desync bool
}

// serveVectorHead matches the header of the next recorded load (position,
// site, object, vector-ness) against an issued vector load. A nil return
// desyncs the lane; the caller still owns the per-lane index check and the
// cursor advance.
func (rp *LaneReplay) serveVectorHead(pc uint16, bufID int16) *LoadRec {
	if rp.Desync || rp.loadCur >= len(rp.WC.Loads) {
		rp.Desync = true
		return nil
	}
	rec := &rp.WC.Loads[rp.loadCur]
	if rec.PC != pc || rec.BufID != bufID || rec.Broadcast {
		rp.Desync = true
		return nil
	}
	return rec
}

// serveVectorF32 matches the next recorded load against an issued vector
// load and, when every touched block — replicas included — is clean,
// serves the recorded values into dst in the same pass that verifies the
// index vector, returning true. A false return sends the caller to the
// real-memory path: either the lane desynced (Desync is set, no values
// written beyond lanes the slow path rewrites anyway) or the load touches
// a dirty block (sequence verified, cursor advanced).
func (rp *LaneReplay) serveVectorF32(pc uint16, bufID int16, idx []int32, n int, dst []float32) bool {
	rec := rp.serveVectorHead(pc, bufID)
	if rec == nil {
		return false
	}
	// Reslicing to n lets the compiler drop the per-lane bounds checks in
	// the loops below (the recorded warp has the executing warp's lane
	// count, so these never shrink a live record).
	recIdx, issued := rec.Idx[:n], idx[:n]
	if rp.Dirty.AnyOf(rec.Blocks) {
		// In sync so far, but the values must come from real memory; the
		// index vector still needs verifying to keep the sequence sound.
		for i, v := range issued {
			if recIdx[i] != v {
				rp.Desync = true
				return false
			}
		}
		rp.loadCur++
		return false
	}
	vals, out := rec.Vals[:n], dst[:n]
	for i, v := range issued {
		if recIdx[i] != v {
			rp.Desync = true
			return false
		}
		if v != InactiveLane {
			out[i] = math.Float32frombits(vals[i])
		}
	}
	rp.loadCur++
	return true
}

// serveVectorI32 is serveVectorF32 for int32 destinations.
func (rp *LaneReplay) serveVectorI32(pc uint16, bufID int16, idx []int32, n int, dst []int32) bool {
	rec := rp.serveVectorHead(pc, bufID)
	if rec == nil {
		return false
	}
	recIdx, issued := rec.Idx[:n], idx[:n]
	if rp.Dirty.AnyOf(rec.Blocks) {
		for i, v := range issued {
			if recIdx[i] != v {
				rp.Desync = true
				return false
			}
		}
		rp.loadCur++
		return false
	}
	vals, out := rec.Vals[:n], dst[:n]
	for i, v := range issued {
		if recIdx[i] != v {
			rp.Desync = true
			return false
		}
		if v != InactiveLane {
			out[i] = int32(vals[i])
		}
	}
	rp.loadCur++
	return true
}

// Reset rebinds the replay state to a new warp, letting the batch executor
// reuse one LaneReplay per lane instead of allocating one per executed warp.
func (rp *LaneReplay) Reset(wc *WarpCapture) {
	rp.WC = wc
	rp.loadCur = 0
	rp.storeCur = 0
	rp.Desync = false
}

// serveBroadcast is serveVector for warp-uniform loads.
func (rp *LaneReplay) serveBroadcast(pc uint16, bufID int16, bidx int32) *LoadRec {
	if rp.Desync || rp.loadCur >= len(rp.WC.Loads) {
		rp.Desync = true
		return nil
	}
	rec := &rp.WC.Loads[rp.loadCur]
	if rec.PC != pc || rec.BufID != bufID || !rec.Broadcast || rec.BIdx != bidx {
		rp.Desync = true
		return nil
	}
	rp.loadCur++
	if rp.Dirty.AnyOf(rec.Blocks) {
		return nil
	}
	return rec
}

// noteStore matches the next recorded store against an issued store. The
// store itself always executes on real memory; matching only maintains
// sequence sync so the executor can bound the warp's write set by the
// recording afterwards.
func (rp *LaneReplay) noteStore(pc uint16, bufID int16, idx []int32, n int) {
	if rp.Desync || rp.storeCur >= len(rp.WC.Stores) {
		rp.Desync = true
		return
	}
	rec := &rp.WC.Stores[rp.storeCur]
	if rec.PC != pc || rec.BufID != bufID {
		rp.Desync = true
		return
	}
	for i := 0; i < n; i++ {
		if rec.Idx[i] != idx[i] {
			rp.Desync = true
			return
		}
	}
	rp.storeCur++
}

// ConsumedStores returns how many recorded stores the executed warp
// committed (valid when the lane did not desync: the warp's write set is
// exactly the blocks of those records).
func (rp *LaneReplay) ConsumedStores() int { return rp.storeCur }
