package simt

import (
	"fmt"
	"math"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

// InactiveLane marks a predicated-off lane in an index slice passed to the
// warp load/store methods.
const InactiveLane int32 = -1

// WarpCtx is the execution context of one warp. Kernel warp programs use
// its load/store/compute methods; all lanes proceed in lockstep. The context
// carries a sticky error: after a protection scheme signals termination,
// subsequent operations become no-ops and the driver aborts the launch.
type WarpCtx struct {
	// CTAIdx is the CTA (thread block) index within the grid.
	CTAIdx arch.Dim3
	// WarpInCTA is the warp's index within its CTA.
	WarpInCTA int
	// GlobalWarpID is the warp's dense index within the launch.
	GlobalWarpID int
	// NumLanes is the number of active threads (≤32; the tail warp of a CTA
	// may be partial).
	NumLanes int

	blockDim arch.Dim3
	drv      *Driver
	trace    []Instr
	tracing  bool
	err      error

	// scratch reused by the coalescer across instructions.
	laneBlocks [arch.WarpSize]arch.BlockAddr
	uniq       []arch.BlockAddr

	// scratch arenas handed to kernel programs.
	scratchI32 [4][arch.WarpSize]int32
	scratchF32 [4][arch.WarpSize]float32
}

// ScratchI32 returns one of four per-warp index slices (length 32) for
// kernel programs to fill. Contents persist only within the current warp's
// execution; using the same slot for two concurrently-needed operands is a
// kernel bug.
func (w *WarpCtx) ScratchI32(slot int) []int32 { return w.scratchI32[slot][:] }

// ScratchF32 returns one of four per-warp value slices (length 32).
func (w *WarpCtx) ScratchF32(slot int) []float32 { return w.scratchF32[slot][:] }

// ThreadIdx returns the CUDA threadIdx for the given lane.
func (w *WarpCtx) ThreadIdx(lane int) arch.Dim3 {
	linear := w.WarpInCTA*arch.WarpSize + lane
	x := w.blockDim.X
	if x == 0 {
		x = 1
	}
	y := w.blockDim.Y
	if y == 0 {
		y = 1
	}
	return arch.Dim3{X: linear % x, Y: (linear / x) % y, Z: linear / (x * y)}
}

// LinearThreadID returns the global linear thread ID of the lane, with CTAs
// laid out grid-x-major as CUDA does for 1-D launches.
func (w *WarpCtx) LinearThreadID(lane int) int {
	ctaLinear := w.drv.grid.Flatten(w.CTAIdx)
	return ctaLinear*w.blockDim.Count() + w.WarpInCTA*arch.WarpSize + lane
}

// Err returns the warp's sticky error, if any.
func (w *WarpCtx) Err() error { return w.err }

func (w *WarpCtx) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Compute accounts n back-to-back ALU operations executed by the warp.
func (w *WarpCtx) Compute(n int) {
	if w.err != nil || n <= 0 {
		return
	}
	if w.tracing {
		// Merge with a preceding compute to keep traces compact.
		if k := len(w.trace); k > 0 && w.trace[k-1].Kind == InstrCompute {
			w.trace[k-1].Ops += int32(n)
			return
		}
		w.trace = append(w.trace, Instr{Kind: InstrCompute, Ops: int32(n)})
	}
}

// coalesce computes the unique 128 B blocks touched by nAddr lane addresses
// in laneBlocks[:nAddr], preserving first-touch order. The result aliases
// w.uniq and is valid until the next call.
func (w *WarpCtx) coalesce(n int) []arch.BlockAddr {
	w.uniq = w.uniq[:0]
	for i := 0; i < n; i++ {
		b := w.laneBlocks[i]
		seen := false
		for _, u := range w.uniq {
			if u == b {
				seen = true
				break
			}
		}
		if !seen {
			w.uniq = append(w.uniq, b)
		}
	}
	return w.uniq
}

// emitMem records the coalesced transactions of one memory instruction to
// the observer and (when tracing) the warp trace.
func (w *WarpCtx) emitMem(kind InstrKind, site Site, buf *mem.Buffer, blocks []arch.BlockAddr) {
	if obs := w.drv.Observer; obs != nil {
		for _, b := range blocks {
			obs.Observe(Transaction{
				Block:  b,
				PC:     site.PC,
				BufID:  int16(buf.ID),
				WarpID: w.GlobalWarpID,
				Write:  kind == InstrStore,
			})
		}
	}
	if w.tracing {
		w.trace = append(w.trace, Instr{
			Kind:   kind,
			PC:     site.PC,
			BufID:  int16(buf.ID),
			Blocks: append([]arch.BlockAddr(nil), blocks...),
		})
	}
}

// oobWord resolves an out-of-bounds lane load in permissive mode: the
// faulty address wraps into the device address space and the raw word there
// is returned, as hardware would fetch whatever line the corrupted address
// names.
func (w *WarpCtx) oobWord(buf *mem.Buffer, idx int32) (uint32, arch.BlockAddr) {
	size := int64(w.drv.Mem.Size())
	off := (int64(buf.Base) + int64(idx)*4) % size
	if off < 0 {
		off += size
	}
	off &^= 3
	addr := arch.Addr(off)
	return w.drv.Mem.ReadWord(addr), addr.Block()
}

// LoadF32 performs a per-lane gather from buf: dst[lane] = buf[idx[lane]]
// for each active lane. idx and dst must have length ≥ NumLanes; lanes with
// idx[lane] == InactiveLane are predicated off. The load is coalesced into
// block transactions exactly once regardless of observers.
func (w *WarpCtx) LoadF32(site Site, buf *mem.Buffer, idx []int32, dst []float32) {
	if w.err != nil {
		return
	}
	n := 0
	for lane := 0; lane < w.NumLanes; lane++ {
		i := idx[lane]
		if i == InactiveLane {
			continue
		}
		addr := buf.ElemAddr(int(i))
		if i < 0 || !buf.Contains(addr) {
			if !w.drv.PermissiveOOB {
				w.fail(fmt.Errorf("simt: warp %d %s: lane %d index %d out of bounds for %q (%d B)",
					w.GlobalWarpID, site.Name, lane, i, buf.Name, buf.Size))
				return
			}
			word, blk := w.oobWord(buf, i)
			dst[lane] = math.Float32frombits(word)
			w.laneBlocks[n] = blk
			n++
			continue
		}
		word, err := w.drv.reader.ReadLaneWord(buf, addr)
		if err != nil {
			w.fail(err)
			return
		}
		dst[lane] = math.Float32frombits(word)
		w.laneBlocks[n] = addr.Block()
		n++
	}
	if n == 0 {
		return
	}
	w.emitMem(InstrLoad, site, buf, w.coalesce(n))
}

// LoadI32 is LoadF32 for int32 data.
func (w *WarpCtx) LoadI32(site Site, buf *mem.Buffer, idx []int32, dst []int32) {
	if w.err != nil {
		return
	}
	n := 0
	for lane := 0; lane < w.NumLanes; lane++ {
		i := idx[lane]
		if i == InactiveLane {
			continue
		}
		addr := buf.ElemAddr(int(i))
		if i < 0 || !buf.Contains(addr) {
			if !w.drv.PermissiveOOB {
				w.fail(fmt.Errorf("simt: warp %d %s: lane %d index %d out of bounds for %q (%d B)",
					w.GlobalWarpID, site.Name, lane, i, buf.Name, buf.Size))
				return
			}
			word, blk := w.oobWord(buf, i)
			dst[lane] = int32(word)
			w.laneBlocks[n] = blk
			n++
			continue
		}
		word, err := w.drv.reader.ReadLaneWord(buf, addr)
		if err != nil {
			w.fail(err)
			return
		}
		dst[lane] = int32(word)
		w.laneBlocks[n] = addr.Block()
		n++
	}
	if n == 0 {
		return
	}
	w.emitMem(InstrLoad, site, buf, w.coalesce(n))
}

// LoadF32Broadcast reads one element on behalf of the whole warp — the
// uniform-access pattern (e.g. r[i] inside the P-BICG loop, or the filter
// scalars in the AxBench kernels). It coalesces to a single transaction.
func (w *WarpCtx) LoadF32Broadcast(site Site, buf *mem.Buffer, idx int32) float32 {
	if w.err != nil {
		return 0
	}
	addr := buf.ElemAddr(int(idx))
	if idx < 0 || !buf.Contains(addr) {
		if !w.drv.PermissiveOOB {
			w.fail(fmt.Errorf("simt: warp %d %s: broadcast index %d out of bounds for %q (%d B)",
				w.GlobalWarpID, site.Name, idx, buf.Name, buf.Size))
			return 0
		}
		word, blk := w.oobWord(buf, idx)
		w.laneBlocks[0] = blk
		w.emitMem(InstrLoad, site, buf, w.coalesce(1))
		return math.Float32frombits(word)
	}
	word, err := w.drv.reader.ReadLaneWord(buf, addr)
	if err != nil {
		w.fail(err)
		return 0
	}
	w.laneBlocks[0] = addr.Block()
	w.emitMem(InstrLoad, site, buf, w.coalesce(1))
	return math.Float32frombits(word)
}

// LoadI32Broadcast is LoadF32Broadcast for int32 data.
func (w *WarpCtx) LoadI32Broadcast(site Site, buf *mem.Buffer, idx int32) int32 {
	if w.err != nil {
		return 0
	}
	addr := buf.ElemAddr(int(idx))
	if idx < 0 || !buf.Contains(addr) {
		if !w.drv.PermissiveOOB {
			w.fail(fmt.Errorf("simt: warp %d %s: broadcast index %d out of bounds for %q (%d B)",
				w.GlobalWarpID, site.Name, idx, buf.Name, buf.Size))
			return 0
		}
		word, blk := w.oobWord(buf, idx)
		w.laneBlocks[0] = blk
		w.emitMem(InstrLoad, site, buf, w.coalesce(1))
		return int32(word)
	}
	word, err := w.drv.reader.ReadLaneWord(buf, addr)
	if err != nil {
		w.fail(err)
		return 0
	}
	w.laneBlocks[0] = addr.Block()
	w.emitMem(InstrLoad, site, buf, w.coalesce(1))
	return int32(word)
}

// StoreF32 performs a per-lane scatter: buf[idx[lane]] = src[lane]. Stores
// bypass protection (hot data objects are read-only) and write device
// memory directly.
func (w *WarpCtx) StoreF32(site Site, buf *mem.Buffer, idx []int32, src []float32) {
	if w.err != nil {
		return
	}
	if buf.ReadOnly {
		w.fail(fmt.Errorf("simt: warp %d %s: store to read-only object %q", w.GlobalWarpID, site.Name, buf.Name))
		return
	}
	n := 0
	for lane := 0; lane < w.NumLanes; lane++ {
		i := idx[lane]
		if i == InactiveLane {
			continue
		}
		addr := buf.ElemAddr(int(i))
		if !buf.Contains(addr) {
			w.fail(fmt.Errorf("simt: warp %d %s: lane %d index %d out of bounds for %q (%d B)",
				w.GlobalWarpID, site.Name, lane, i, buf.Name, buf.Size))
			return
		}
		w.drv.Mem.WriteF32(addr, src[lane])
		w.laneBlocks[n] = addr.Block()
		n++
	}
	if n == 0 {
		return
	}
	w.emitMem(InstrStore, site, buf, w.coalesce(n))
}
