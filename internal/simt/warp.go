package simt

import (
	"fmt"
	"math"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

// InactiveLane marks a predicated-off lane in an index slice passed to the
// warp load/store methods.
const InactiveLane int32 = -1

// WarpCtx is the execution context of one warp. Kernel warp programs use
// its load/store/compute methods; all lanes proceed in lockstep. The context
// carries a sticky error: after a protection scheme signals termination,
// subsequent operations become no-ops and the driver aborts the launch.
type WarpCtx struct {
	// CTAIdx is the CTA (thread block) index within the grid.
	CTAIdx arch.Dim3
	// WarpInCTA is the warp's index within its CTA.
	WarpInCTA int
	// GlobalWarpID is the warp's dense index within the launch.
	GlobalWarpID int
	// NumLanes is the number of active threads (≤32; the tail warp of a CTA
	// may be partial).
	NumLanes int

	blockDim arch.Dim3
	drv      *Driver
	trace    []Instr
	tracing  bool
	err      error

	// linearBase is the global linear thread ID of lane 0, precomputed by
	// the driver per warp so LinearThreadID is one add per call.
	linearBase int
	// emitActive gates the coalescer and transaction emission: campaigns
	// run unobserved and untraced, where per-lane block bookkeeping is
	// pure overhead.
	emitActive bool
	// capture, when set, records the warp's loads and stores for replay.
	capture *WarpCapture
	// replay, when set, serves loads from a recorded reference execution
	// while the instruction sequence stays in sync with it.
	replay *LaneReplay

	// scratch reused by the coalescer across instructions.
	laneBlocks [arch.WarpSize]arch.BlockAddr
	uniq       []arch.BlockAddr

	// scratch arenas handed to kernel programs.
	scratchI32 [4][arch.WarpSize]int32
	scratchF32 [4][arch.WarpSize]float32
}

// ScratchI32 returns one of four per-warp index slices (length 32) for
// kernel programs to fill. Contents persist only within the current warp's
// execution; using the same slot for two concurrently-needed operands is a
// kernel bug.
func (w *WarpCtx) ScratchI32(slot int) []int32 { return w.scratchI32[slot][:] }

// ScratchF32 returns one of four per-warp value slices (length 32).
func (w *WarpCtx) ScratchF32(slot int) []float32 { return w.scratchF32[slot][:] }

// ThreadIdx returns the CUDA threadIdx for the given lane.
func (w *WarpCtx) ThreadIdx(lane int) arch.Dim3 {
	linear := w.WarpInCTA*arch.WarpSize + lane
	x := w.blockDim.X
	if x == 0 {
		x = 1
	}
	y := w.blockDim.Y
	if y == 0 {
		y = 1
	}
	return arch.Dim3{X: linear % x, Y: (linear / x) % y, Z: linear / (x * y)}
}

// LinearThreadID returns the global linear thread ID of the lane, with CTAs
// laid out grid-x-major as CUDA does for 1-D launches.
func (w *WarpCtx) LinearThreadID(lane int) int {
	return w.linearBase + lane
}

// Err returns the warp's sticky error, if any.
func (w *WarpCtx) Err() error { return w.err }

func (w *WarpCtx) fail(err error) {
	if w.err == nil {
		w.err = err
	}
}

// Compute accounts n back-to-back ALU operations executed by the warp.
func (w *WarpCtx) Compute(n int) {
	if w.err != nil || n <= 0 {
		return
	}
	if w.tracing {
		// Merge with a preceding compute to keep traces compact.
		if k := len(w.trace); k > 0 && w.trace[k-1].Kind == InstrCompute {
			w.trace[k-1].Ops += int32(n)
			return
		}
		w.trace = append(w.trace, Instr{Kind: InstrCompute, Ops: int32(n)})
	}
}

// coalesce computes the unique 128 B blocks touched by nAddr lane addresses
// in laneBlocks[:nAddr], preserving first-touch order. The result aliases
// w.uniq and is valid until the next call. Lane addresses are usually
// block-ascending (unit-stride accesses), so the common case is a
// compare-against-last append; the quadratic scan only runs after the first
// out-of-order address.
func (w *WarpCtx) coalesce(n int) []arch.BlockAddr {
	w.uniq = w.uniq[:0]
	asc := true
	for i := 0; i < n; i++ {
		b := w.laneBlocks[i]
		if k := len(w.uniq); k == 0 {
			w.uniq = append(w.uniq, b)
			continue
		} else if asc {
			last := w.uniq[k-1]
			if b == last {
				continue
			}
			if b > last {
				w.uniq = append(w.uniq, b)
				continue
			}
			asc = false
		}
		seen := false
		for _, u := range w.uniq {
			if u == b {
				seen = true
				break
			}
		}
		if !seen {
			w.uniq = append(w.uniq, b)
		}
	}
	return w.uniq
}

// emitMem records the coalesced transactions of one memory instruction to
// the observer and (when tracing) the warp trace.
func (w *WarpCtx) emitMem(kind InstrKind, site Site, buf *mem.Buffer, blocks []arch.BlockAddr) {
	if obs := w.drv.Observer; obs != nil {
		for _, b := range blocks {
			obs.Observe(Transaction{
				Block:  b,
				PC:     site.PC,
				BufID:  int16(buf.ID),
				WarpID: w.GlobalWarpID,
				Write:  kind == InstrStore,
			})
		}
	}
	if w.tracing {
		w.trace = append(w.trace, Instr{
			Kind:   kind,
			PC:     site.PC,
			BufID:  int16(buf.ID),
			Blocks: append([]arch.BlockAddr(nil), blocks...),
		})
	}
}

// oobWord resolves an out-of-bounds lane load in permissive mode: the
// faulty address wraps into the device address space and the raw word there
// is returned, as hardware would fetch whatever line the corrupted address
// names.
func (w *WarpCtx) oobWord(buf *mem.Buffer, idx int32) (uint32, arch.BlockAddr) {
	size := int64(w.drv.Mem.Size())
	off := (int64(buf.Base) + int64(idx)*4) % size
	if off < 0 {
		off += size
	}
	off &^= 3
	addr := arch.Addr(off)
	return w.drv.Mem.ReadWord(addr), addr.Block()
}

// recordLoad appends a vector-load record to the warp capture. vals holds
// the loaded bits per lane (undefined at inactive lanes); n is the active
// lane count whose blocks sit in laneBlocks.
func (w *WarpCtx) recordLoad(site Site, buf *mem.Buffer, idx []int32, vals []uint32, n int) {
	rec := LoadRec{
		PC:    site.PC,
		BufID: int16(buf.ID),
		Idx:   append([]int32(nil), idx[:w.NumLanes]...),
		Vals:  vals,
	}
	if n > 0 {
		rec.Blocks = append([]arch.BlockAddr(nil), w.coalesce(n)...)
	}
	w.capture.Loads = append(w.capture.Loads, rec)
}

// LoadF32 performs a per-lane gather from buf: dst[lane] = buf[idx[lane]]
// for each active lane. idx and dst must have length ≥ NumLanes; lanes with
// idx[lane] == InactiveLane are predicated off. The load is coalesced into
// block transactions exactly once regardless of observers.
func (w *WarpCtx) LoadF32(site Site, buf *mem.Buffer, idx []int32, dst []float32) {
	if w.err != nil {
		return
	}
	if rp := w.replay; rp != nil {
		if rp.serveVectorF32(site.PC, int16(buf.ID), idx, w.NumLanes, dst) {
			return
		}
	}
	track := w.emitActive || w.capture != nil
	n := 0
	for lane := 0; lane < w.NumLanes; lane++ {
		i := idx[lane]
		if i == InactiveLane {
			continue
		}
		addr := buf.ElemAddr(int(i))
		if i < 0 || !buf.Contains(addr) {
			if !w.drv.PermissiveOOB {
				w.fail(fmt.Errorf("simt: warp %d %s: lane %d index %d out of bounds for %q (%d B)",
					w.GlobalWarpID, site.Name, lane, i, buf.Name, buf.Size))
				return
			}
			word, blk := w.oobWord(buf, i)
			dst[lane] = math.Float32frombits(word)
			if track {
				w.laneBlocks[n] = blk
			}
			n++
			continue
		}
		word, err := w.drv.reader.ReadLaneWord(buf, addr)
		if err != nil {
			w.fail(err)
			return
		}
		dst[lane] = math.Float32frombits(word)
		if track {
			w.laneBlocks[n] = addr.Block()
		}
		n++
	}
	if w.capture != nil {
		vals := make([]uint32, w.NumLanes)
		for lane := 0; lane < w.NumLanes; lane++ {
			if idx[lane] != InactiveLane {
				vals[lane] = math.Float32bits(dst[lane])
			}
		}
		w.recordLoad(site, buf, idx, vals, n)
	}
	if n == 0 || !w.emitActive {
		return
	}
	w.emitMem(InstrLoad, site, buf, w.coalesce(n))
}

// LoadI32 is LoadF32 for int32 data.
func (w *WarpCtx) LoadI32(site Site, buf *mem.Buffer, idx []int32, dst []int32) {
	if w.err != nil {
		return
	}
	if rp := w.replay; rp != nil {
		if rp.serveVectorI32(site.PC, int16(buf.ID), idx, w.NumLanes, dst) {
			return
		}
	}
	track := w.emitActive || w.capture != nil
	n := 0
	for lane := 0; lane < w.NumLanes; lane++ {
		i := idx[lane]
		if i == InactiveLane {
			continue
		}
		addr := buf.ElemAddr(int(i))
		if i < 0 || !buf.Contains(addr) {
			if !w.drv.PermissiveOOB {
				w.fail(fmt.Errorf("simt: warp %d %s: lane %d index %d out of bounds for %q (%d B)",
					w.GlobalWarpID, site.Name, lane, i, buf.Name, buf.Size))
				return
			}
			word, blk := w.oobWord(buf, i)
			dst[lane] = int32(word)
			if track {
				w.laneBlocks[n] = blk
			}
			n++
			continue
		}
		word, err := w.drv.reader.ReadLaneWord(buf, addr)
		if err != nil {
			w.fail(err)
			return
		}
		dst[lane] = int32(word)
		if track {
			w.laneBlocks[n] = addr.Block()
		}
		n++
	}
	if w.capture != nil {
		vals := make([]uint32, w.NumLanes)
		for lane := 0; lane < w.NumLanes; lane++ {
			if idx[lane] != InactiveLane {
				vals[lane] = uint32(dst[lane])
			}
		}
		w.recordLoad(site, buf, idx, vals, n)
	}
	if n == 0 || !w.emitActive {
		return
	}
	w.emitMem(InstrLoad, site, buf, w.coalesce(n))
}

// finishBroadcast records and emits the single transaction of a broadcast
// load.
func (w *WarpCtx) finishBroadcast(site Site, buf *mem.Buffer, bidx int32, word uint32, blk arch.BlockAddr) {
	if w.capture != nil {
		w.capture.Loads = append(w.capture.Loads, LoadRec{
			PC:        site.PC,
			BufID:     int16(buf.ID),
			Broadcast: true,
			BIdx:      bidx,
			Vals:      []uint32{word},
			Blocks:    []arch.BlockAddr{blk},
		})
	}
	if w.emitActive {
		w.laneBlocks[0] = blk
		w.emitMem(InstrLoad, site, buf, w.coalesce(1))
	}
}

// LoadF32Broadcast reads one element on behalf of the whole warp — the
// uniform-access pattern (e.g. r[i] inside the P-BICG loop, or the filter
// scalars in the AxBench kernels). It coalesces to a single transaction.
func (w *WarpCtx) LoadF32Broadcast(site Site, buf *mem.Buffer, idx int32) float32 {
	if w.err != nil {
		return 0
	}
	if rp := w.replay; rp != nil {
		if rec := rp.serveBroadcast(site.PC, int16(buf.ID), idx); rec != nil {
			return math.Float32frombits(rec.Vals[0])
		}
	}
	addr := buf.ElemAddr(int(idx))
	if idx < 0 || !buf.Contains(addr) {
		if !w.drv.PermissiveOOB {
			w.fail(fmt.Errorf("simt: warp %d %s: broadcast index %d out of bounds for %q (%d B)",
				w.GlobalWarpID, site.Name, idx, buf.Name, buf.Size))
			return 0
		}
		word, blk := w.oobWord(buf, idx)
		w.finishBroadcast(site, buf, idx, word, blk)
		return math.Float32frombits(word)
	}
	word, err := w.drv.reader.ReadLaneWord(buf, addr)
	if err != nil {
		w.fail(err)
		return 0
	}
	w.finishBroadcast(site, buf, idx, word, addr.Block())
	return math.Float32frombits(word)
}

// LoadI32Broadcast is LoadF32Broadcast for int32 data.
func (w *WarpCtx) LoadI32Broadcast(site Site, buf *mem.Buffer, idx int32) int32 {
	if w.err != nil {
		return 0
	}
	if rp := w.replay; rp != nil {
		if rec := rp.serveBroadcast(site.PC, int16(buf.ID), idx); rec != nil {
			return int32(rec.Vals[0])
		}
	}
	addr := buf.ElemAddr(int(idx))
	if idx < 0 || !buf.Contains(addr) {
		if !w.drv.PermissiveOOB {
			w.fail(fmt.Errorf("simt: warp %d %s: broadcast index %d out of bounds for %q (%d B)",
				w.GlobalWarpID, site.Name, idx, buf.Name, buf.Size))
			return 0
		}
		word, blk := w.oobWord(buf, idx)
		w.finishBroadcast(site, buf, idx, word, blk)
		return int32(word)
	}
	word, err := w.drv.reader.ReadLaneWord(buf, addr)
	if err != nil {
		w.fail(err)
		return 0
	}
	w.finishBroadcast(site, buf, idx, word, addr.Block())
	return int32(word)
}

// StoreF32 performs a per-lane scatter: buf[idx[lane]] = src[lane]. Stores
// bypass protection (hot data objects are read-only) and write device
// memory directly.
func (w *WarpCtx) StoreF32(site Site, buf *mem.Buffer, idx []int32, src []float32) {
	if w.err != nil {
		return
	}
	if buf.ReadOnly {
		w.fail(fmt.Errorf("simt: warp %d %s: store to read-only object %q", w.GlobalWarpID, site.Name, buf.Name))
		return
	}
	if rp := w.replay; rp != nil {
		// The store still executes on real memory below; matching only keeps
		// the replay sequence in sync.
		rp.noteStore(site.PC, int16(buf.ID), idx, w.NumLanes)
	}
	track := w.emitActive || w.capture != nil
	n := 0
	for lane := 0; lane < w.NumLanes; lane++ {
		i := idx[lane]
		if i == InactiveLane {
			continue
		}
		addr := buf.ElemAddr(int(i))
		if !buf.Contains(addr) {
			w.fail(fmt.Errorf("simt: warp %d %s: lane %d index %d out of bounds for %q (%d B)",
				w.GlobalWarpID, site.Name, lane, i, buf.Name, buf.Size))
			return
		}
		w.drv.Mem.WriteF32(addr, src[lane])
		if track {
			w.laneBlocks[n] = addr.Block()
		}
		n++
	}
	if w.capture != nil {
		rec := StoreRec{
			PC:    site.PC,
			BufID: int16(buf.ID),
			Idx:   append([]int32(nil), idx[:w.NumLanes]...),
			Vals:  make([]uint32, w.NumLanes),
		}
		for lane := 0; lane < w.NumLanes; lane++ {
			if idx[lane] != InactiveLane {
				rec.Vals[lane] = math.Float32bits(src[lane])
			}
		}
		if n > 0 {
			rec.Blocks = append([]arch.BlockAddr(nil), w.coalesce(n)...)
		}
		w.capture.Stores = append(w.capture.Stores, rec)
	}
	if n == 0 || !w.emitActive {
		return
	}
	w.emitMem(InstrStore, site, buf, w.coalesce(n))
}
