package simt

import (
	"errors"
	"testing"
	"testing/quick"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
)

type recordingObserver struct {
	txs []Transaction
}

func (o *recordingObserver) Observe(tx Transaction) { o.txs = append(o.txs, tx) }

func newTestMem(t *testing.T, name string, floats int) (*mem.Memory, *mem.Buffer) {
	t.Helper()
	m := mem.New()
	b, err := m.Alloc(name, floats*4, true)
	if err != nil {
		t.Fatal(err)
	}
	vals := make([]float32, floats)
	for i := range vals {
		vals[i] = float32(i)
	}
	if err := m.WriteF32Slice(b, vals); err != nil {
		t.Fatal(err)
	}
	return m, b
}

// runOneWarp executes a single full warp with the given program.
func runOneWarp(t *testing.T, m *mem.Memory, obs Observer, tracing bool, run func(w *WarpCtx)) *KernelTrace {
	t.Helper()
	d := &Driver{Mem: m, Observer: obs, Tracing: tracing}
	tr, err := d.Run(&Kernel{
		KernelName: "test",
		Grid:       arch.Dim3{X: 1},
		Block:      arch.Dim3{X: arch.WarpSize},
		Run:        run,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	return tr
}

func TestCoalescingConsecutiveLanes(t *testing.T) {
	m, b := newTestMem(t, "A", 256)
	obs := &recordingObserver{}
	idx := make([]int32, arch.WarpSize)
	dst := make([]float32, arch.WarpSize)
	ld := Site{PC: 1, Name: "ld.A"}
	runOneWarp(t, m, obs, false, func(w *WarpCtx) {
		// Lanes read consecutive floats 0..31 → one aligned 128 B block.
		for lane := 0; lane < w.NumLanes; lane++ {
			idx[lane] = int32(lane)
		}
		w.LoadF32(ld, b, idx, dst)
	})
	if len(obs.txs) != 1 {
		t.Fatalf("coalesced consecutive access produced %d transactions, want 1", len(obs.txs))
	}
	for lane := 0; lane < arch.WarpSize; lane++ {
		if dst[lane] != float32(lane) {
			t.Fatalf("dst[%d] = %v, want %v", lane, dst[lane], float32(lane))
		}
	}
}

func TestCoalescingStraddlingBlocks(t *testing.T) {
	m, b := newTestMem(t, "A", 256)
	obs := &recordingObserver{}
	idx := make([]int32, arch.WarpSize)
	dst := make([]float32, arch.WarpSize)
	runOneWarp(t, m, obs, false, func(w *WarpCtx) {
		// Offset by 16 floats: lanes straddle two 128 B blocks.
		for lane := 0; lane < w.NumLanes; lane++ {
			idx[lane] = int32(lane + 16)
		}
		w.LoadF32(Site{PC: 1}, b, idx, dst)
	})
	if len(obs.txs) != 2 {
		t.Fatalf("straddling access produced %d transactions, want 2", len(obs.txs))
	}
}

func TestCoalescingStridedUncoalesced(t *testing.T) {
	m, b := newTestMem(t, "A", 32*64)
	obs := &recordingObserver{}
	idx := make([]int32, arch.WarpSize)
	dst := make([]float32, arch.WarpSize)
	runOneWarp(t, m, obs, false, func(w *WarpCtx) {
		// Row-major stride 64 floats: every lane hits a distinct block —
		// the P-GESUMMV / P-BICG kernel2 pattern.
		for lane := 0; lane < w.NumLanes; lane++ {
			idx[lane] = int32(lane * 64)
		}
		w.LoadF32(Site{PC: 1}, b, idx, dst)
	})
	if len(obs.txs) != arch.WarpSize {
		t.Fatalf("strided access produced %d transactions, want %d", len(obs.txs), arch.WarpSize)
	}
}

func TestBroadcastSingleTransaction(t *testing.T) {
	m, b := newTestMem(t, "r", 64)
	obs := &recordingObserver{}
	runOneWarp(t, m, obs, false, func(w *WarpCtx) {
		if got := w.LoadF32Broadcast(Site{PC: 2}, b, 7); got != 7 {
			t.Errorf("broadcast = %v, want 7", got)
		}
	})
	if len(obs.txs) != 1 {
		t.Fatalf("broadcast produced %d transactions, want 1", len(obs.txs))
	}
	if obs.txs[0].Block != b.ElemAddr(7).Block() {
		t.Error("broadcast transaction targets wrong block")
	}
}

func TestInactiveLanesPredicatedOff(t *testing.T) {
	m, b := newTestMem(t, "A", 64)
	obs := &recordingObserver{}
	idx := make([]int32, arch.WarpSize)
	dst := make([]float32, arch.WarpSize)
	runOneWarp(t, m, obs, false, func(w *WarpCtx) {
		for lane := 0; lane < w.NumLanes; lane++ {
			idx[lane] = InactiveLane
		}
		idx[3] = 5
		w.LoadF32(Site{PC: 1}, b, idx, dst)
	})
	if len(obs.txs) != 1 {
		t.Fatalf("single active lane produced %d transactions, want 1", len(obs.txs))
	}
	if dst[3] != 5 {
		t.Errorf("dst[3] = %v, want 5", dst[3])
	}
}

func TestAllLanesInactiveNoTransaction(t *testing.T) {
	m, b := newTestMem(t, "A", 64)
	obs := &recordingObserver{}
	idx := make([]int32, arch.WarpSize)
	dst := make([]float32, arch.WarpSize)
	runOneWarp(t, m, obs, false, func(w *WarpCtx) {
		for lane := range idx {
			idx[lane] = InactiveLane
		}
		w.LoadF32(Site{PC: 1}, b, idx, dst)
	})
	if len(obs.txs) != 0 {
		t.Fatalf("fully predicated load produced %d transactions, want 0", len(obs.txs))
	}
}

func TestStoreAndReadBack(t *testing.T) {
	m := mem.New()
	b, err := m.Alloc("out", 32*4, false)
	if err != nil {
		t.Fatal(err)
	}
	idx := make([]int32, arch.WarpSize)
	src := make([]float32, arch.WarpSize)
	runOneWarp(t, m, nil, false, func(w *WarpCtx) {
		for lane := 0; lane < w.NumLanes; lane++ {
			idx[lane] = int32(lane)
			src[lane] = float32(lane) * 2
		}
		w.StoreF32(Site{PC: 3}, b, idx, src)
	})
	for i := 0; i < 32; i++ {
		if got := m.ReadF32(b.ElemAddr(i)); got != float32(i)*2 {
			t.Fatalf("out[%d] = %v, want %v", i, got, float32(i)*2)
		}
	}
}

func TestStoreToReadOnlyFails(t *testing.T) {
	m, b := newTestMem(t, "ro", 64) // read-only
	d := &Driver{Mem: m}
	idx := make([]int32, arch.WarpSize)
	src := make([]float32, arch.WarpSize)
	_, err := d.Run(&Kernel{
		KernelName: "bad",
		Grid:       arch.Dim3{X: 1},
		Block:      arch.Dim3{X: 32},
		Run: func(w *WarpCtx) {
			w.StoreF32(Site{PC: 1}, b, idx, src)
		},
	})
	if err == nil {
		t.Fatal("store to read-only buffer succeeded")
	}
}

func TestOutOfBoundsLoadFails(t *testing.T) {
	m, b := newTestMem(t, "A", 16)
	d := &Driver{Mem: m}
	idx := make([]int32, arch.WarpSize)
	dst := make([]float32, arch.WarpSize)
	_, err := d.Run(&Kernel{
		KernelName: "oob",
		Grid:       arch.Dim3{X: 1},
		Block:      arch.Dim3{X: 32},
		Run: func(w *WarpCtx) {
			idx[0] = 16 // one past the end
			w.LoadF32(Site{PC: 1}, b, idx, dst)
		},
	})
	if err == nil {
		t.Fatal("out-of-bounds load succeeded")
	}
}

type failingReader struct{ err error }

func (r failingReader) ReadLaneWord(*mem.Buffer, arch.Addr) (uint32, error) { return 0, r.err }

func TestReaderErrorTerminatesLaunch(t *testing.T) {
	m, b := newTestMem(t, "A", 64)
	want := errors.New("fault detected")
	d := &Driver{Mem: m, Reader: failingReader{want}}
	idx := make([]int32, arch.WarpSize)
	dst := make([]float32, arch.WarpSize)
	_, err := d.Run(&Kernel{
		KernelName: "term",
		Grid:       arch.Dim3{X: 4},
		Block:      arch.Dim3{X: 32},
		Run: func(w *WarpCtx) {
			idx[0] = 0
			for l := 1; l < len(idx); l++ {
				idx[l] = InactiveLane
			}
			w.LoadF32(Site{PC: 1}, b, idx, dst)
		},
	})
	if !errors.Is(err, want) {
		t.Fatalf("Run error = %v, want wrapped %v", err, want)
	}
}

func TestTraceCapture(t *testing.T) {
	m, b := newTestMem(t, "A", 256)
	idx := make([]int32, arch.WarpSize)
	dst := make([]float32, arch.WarpSize)
	tr := runOneWarp(t, m, nil, true, func(w *WarpCtx) {
		for lane := 0; lane < w.NumLanes; lane++ {
			idx[lane] = int32(lane)
		}
		w.LoadF32(Site{PC: 1}, b, idx, dst)
		w.Compute(2)
		w.Compute(3) // must merge with the previous compute
		w.LoadF32Broadcast(Site{PC: 2}, b, 0)
	})
	if tr == nil {
		t.Fatal("no trace captured")
	}
	w0 := tr.Warps[0]
	if len(w0) != 3 {
		t.Fatalf("trace has %d instrs, want 3 (load, merged compute, load): %+v", len(w0), w0)
	}
	if w0[0].Kind != InstrLoad || len(w0[0].Blocks) != 1 {
		t.Errorf("instr 0 = %+v, want 1-block load", w0[0])
	}
	if w0[1].Kind != InstrCompute || w0[1].Ops != 5 {
		t.Errorf("instr 1 = %+v, want merged compute of 5 ops", w0[1])
	}
	if got, want := tr.Instructions(), 3; got != want {
		t.Errorf("Instructions() = %d, want %d", got, want)
	}
	if got, want := tr.Transactions(), 2; got != want {
		t.Errorf("Transactions() = %d, want %d", got, want)
	}
}

func TestDriverGeometry(t *testing.T) {
	m, _ := newTestMem(t, "A", 64)
	d := &Driver{Mem: m}
	type seen struct {
		cta   arch.Dim3
		warp  int
		lanes int
	}
	var warps []seen
	_, err := d.Run(&Kernel{
		KernelName: "geom",
		Grid:       arch.Dim3{X: 2, Y: 2},
		Block:      arch.Dim3{X: 48}, // 1.5 warps → warp 1 has 16 lanes
		Run: func(w *WarpCtx) {
			warps = append(warps, seen{w.CTAIdx, w.GlobalWarpID, w.NumLanes})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(warps) != 8 {
		t.Fatalf("executed %d warps, want 8", len(warps))
	}
	for i, s := range warps {
		if s.warp != i {
			t.Errorf("warp %d has GlobalWarpID %d", i, s.warp)
		}
		wantLanes := 32
		if i%2 == 1 {
			wantLanes = 16
		}
		if s.lanes != wantLanes {
			t.Errorf("warp %d lanes = %d, want %d", i, s.lanes, wantLanes)
		}
	}
}

func TestThreadIdxMapping(t *testing.T) {
	m, _ := newTestMem(t, "A", 64)
	d := &Driver{Mem: m}
	_, err := d.Run(&Kernel{
		KernelName: "tidx",
		Grid:       arch.Dim3{X: 1},
		Block:      arch.Dim3{X: 13, Y: 13}, // C-NN FirstLayer geometry
		Run: func(w *WarpCtx) {
			for lane := 0; lane < w.NumLanes; lane++ {
				tid := w.ThreadIdx(lane)
				linear := w.WarpInCTA*arch.WarpSize + lane
				if tid.X != linear%13 || tid.Y != (linear/13)%13 {
					t.Fatalf("warp %d lane %d: ThreadIdx = %v", w.WarpInCTA, lane, tid)
				}
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestLinearThreadID(t *testing.T) {
	m, _ := newTestMem(t, "A", 64)
	d := &Driver{Mem: m}
	seen := map[int]bool{}
	_, err := d.Run(&Kernel{
		KernelName: "lin",
		Grid:       arch.Dim3{X: 3},
		Block:      arch.Dim3{X: 64},
		Run: func(w *WarpCtx) {
			for lane := 0; lane < w.NumLanes; lane++ {
				id := w.LinearThreadID(lane)
				if seen[id] {
					t.Fatalf("duplicate linear thread id %d", id)
				}
				seen[id] = true
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != 192 {
		t.Fatalf("saw %d thread ids, want 192", len(seen))
	}
	for i := 0; i < 192; i++ {
		if !seen[i] {
			t.Fatalf("thread id %d missing", i)
		}
	}
}

func TestEmptyLaunchRejected(t *testing.T) {
	m, _ := newTestMem(t, "A", 64)
	d := &Driver{Mem: m}
	if _, err := d.Run(&Kernel{KernelName: "k"}); err == nil {
		t.Fatal("kernel with no warp program accepted")
	}
	if _, err := d.Run(&Kernel{KernelName: "k", Run: func(*WarpCtx) {}}); err == nil {
		t.Fatal("kernel with empty geometry accepted")
	}
}

// TestCoalescePropertyCoversAllBlocks checks the coalescer invariants: no
// more transactions than active lanes, every accessed block covered, no
// duplicates.
func TestCoalescePropertyCoversAllBlocks(t *testing.T) {
	m, b := newTestMem(t, "A", 4096)
	f := func(raw [arch.WarpSize]uint16) bool {
		obs := &recordingObserver{}
		idx := make([]int32, arch.WarpSize)
		dst := make([]float32, arch.WarpSize)
		want := map[arch.BlockAddr]bool{}
		for lane := range raw {
			idx[lane] = int32(raw[lane]) % 4096
			want[b.ElemAddr(int(idx[lane])).Block()] = true
		}
		d := &Driver{Mem: m, Observer: obs}
		_, err := d.Run(&Kernel{
			KernelName: "prop",
			Grid:       arch.Dim3{X: 1},
			Block:      arch.Dim3{X: 32},
			Run: func(w *WarpCtx) {
				w.LoadF32(Site{PC: 1}, b, idx, dst)
			},
		})
		if err != nil {
			return false
		}
		if len(obs.txs) > arch.WarpSize || len(obs.txs) != len(want) {
			return false
		}
		got := map[arch.BlockAddr]bool{}
		for _, tx := range obs.txs {
			if got[tx.Block] {
				return false // duplicate transaction
			}
			got[tx.Block] = true
			if !want[tx.Block] {
				return false // spurious block
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestKernelWarpCounts(t *testing.T) {
	tests := []struct {
		name        string
		grid, block arch.Dim3
		perCTA      int
		total       int
	}{
		{"one warp", arch.Dim3{X: 1}, arch.Dim3{X: 32}, 1, 1},
		{"partial", arch.Dim3{X: 2}, arch.Dim3{X: 33}, 2, 4},
		{"nn first layer", arch.Dim3{X: 6, Y: 4}, arch.Dim3{X: 13, Y: 13}, 6, 144},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			k := &Kernel{Grid: tt.grid, Block: tt.block}
			if got := k.WarpsPerCTA(); got != tt.perCTA {
				t.Errorf("WarpsPerCTA() = %d, want %d", got, tt.perCTA)
			}
			if got := k.TotalWarps(); got != tt.total {
				t.Errorf("TotalWarps() = %d, want %d", got, tt.total)
			}
		})
	}
}
