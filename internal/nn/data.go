package nn

import (
	"math/rand"
)

// Dataset is a labelled set of 29×29 images.
type Dataset struct {
	// Images hold ImagePixels floats each, in [0,1]-ish range plus noise.
	Images [][]float32
	// Labels hold the class of each image.
	Labels []int
}

// segment identifies one stroke of the seven-segment digit renderer.
type segment int

const (
	segTop segment = iota
	segTopRight
	segBottomRight
	segBottom
	segBottomLeft
	segTopLeft
	segMiddle
)

// digitSegments maps each digit to its lit segments (classic seven-segment
// encoding).
var digitSegments = [Classes][]segment{
	0: {segTop, segTopRight, segBottomRight, segBottom, segBottomLeft, segTopLeft},
	1: {segTopRight, segBottomRight},
	2: {segTop, segTopRight, segMiddle, segBottomLeft, segBottom},
	3: {segTop, segTopRight, segMiddle, segBottomRight, segBottom},
	4: {segTopLeft, segMiddle, segTopRight, segBottomRight},
	5: {segTop, segTopLeft, segMiddle, segBottomRight, segBottom},
	6: {segTop, segTopLeft, segBottomLeft, segBottom, segBottomRight, segMiddle},
	7: {segTop, segTopRight, segBottomRight},
	8: {segTop, segTopRight, segBottomRight, segBottom, segBottomLeft, segTopLeft, segMiddle},
	9: {segTop, segTopRight, segBottomRight, segBottom, segTopLeft, segMiddle},
}

// drawSegment lights a stroke (3 px thick) into a 29×29 canvas with the
// given integer offset. The glyph body spans rows 4..24, columns 8..20.
func drawSegment(img []float32, s segment, dx, dy int) {
	const (
		left, right = 8, 20
		top, bottom = 4, 24
		mid         = (top + bottom) / 2
		thick       = 3
	)
	fill := func(x0, y0, x1, y1 int) {
		for y := y0; y <= y1; y++ {
			for x := x0; x <= x1; x++ {
				xx, yy := x+dx, y+dy
				if xx >= 0 && xx < ImageSide && yy >= 0 && yy < ImageSide {
					img[yy*ImageSide+xx] = 1
				}
			}
		}
	}
	switch s {
	case segTop:
		fill(left, top, right, top+thick-1)
	case segBottom:
		fill(left, bottom-thick+1, right, bottom)
	case segMiddle:
		fill(left, mid-1, right, mid+1)
	case segTopLeft:
		fill(left, top, left+thick-1, mid)
	case segBottomLeft:
		fill(left, mid, left+thick-1, bottom)
	case segTopRight:
		fill(right-thick+1, top, right, mid)
	case segBottomRight:
		fill(right-thick+1, mid, right, bottom)
	}
}

// RenderDigit draws a clean digit glyph with the given translation.
func RenderDigit(class, dx, dy int) []float32 {
	img := make([]float32, ImagePixels)
	for _, s := range digitSegments[class%Classes] {
		drawSegment(img, s, dx, dy)
	}
	return img
}

// GenerateDataset produces n images cycling through the ten classes, with
// per-image random translation (±2 px) and additive Gaussian noise
// (σ=0.15). The same seed yields the same dataset.
func GenerateDataset(n int, seed int64) Dataset {
	rng := rand.New(rand.NewSource(seed))
	ds := Dataset{
		Images: make([][]float32, 0, n),
		Labels: make([]int, 0, n),
	}
	for i := 0; i < n; i++ {
		class := i % Classes
		dx := rng.Intn(5) - 2
		dy := rng.Intn(5) - 2
		img := RenderDigit(class, dx, dy)
		for p := range img {
			img[p] += float32(rng.NormFloat64() * 0.15)
		}
		ds.Images = append(ds.Images, img)
		ds.Labels = append(ds.Labels, class)
	}
	return ds
}

// Flatten packs the dataset's images into one contiguous slice — the layout
// of the Images data object in device memory.
func (d Dataset) Flatten() []float32 {
	out := make([]float32, 0, len(d.Images)*ImagePixels)
	for _, img := range d.Images {
		out = append(out, img...)
	}
	return out
}
