package nn

import (
	"math/rand"
	"sync"
	"testing"
)

// trained caches one network across tests (construction costs ~a second).
var (
	trainedOnce sync.Once
	trainedNet  *Network
	trainedErr  error
)

func trained(t *testing.T) *Network {
	t.Helper()
	trainedOnce.Do(func() {
		trainedNet, trainedErr = Train(TrainConfig{})
	})
	if trainedErr != nil {
		t.Fatalf("Train: %v", trainedErr)
	}
	return trainedNet
}

func TestWeightObjectSizesMatchTableIII(t *testing.T) {
	n := trained(t)
	if err := n.Validate(); err != nil {
		t.Fatal(err)
	}
	// The hot objects (Layer1+Layer2 weights) must be a small fraction of
	// the total weight footprint, as in Table III.
	hot := Layer1Weights + Layer2Weights
	total := hot + Layer3Weights + Layer4Weights
	if frac := float64(hot) / float64(total); frac > 0.07 {
		t.Errorf("hot weight fraction = %.3f of weights, want small", frac)
	}
	if Layer1Weights != 156 || Layer2Weights != 7800 {
		t.Errorf("weights = %d/%d, want 156/7800", Layer1Weights, Layer2Weights)
	}
}

func TestDatasetDeterministic(t *testing.T) {
	a := GenerateDataset(50, 7)
	b := GenerateDataset(50, 7)
	for i := range a.Images {
		if a.Labels[i] != b.Labels[i] {
			t.Fatal("labels differ across same-seed generations")
		}
		for p := range a.Images[i] {
			if a.Images[i][p] != b.Images[i][p] {
				t.Fatal("pixels differ across same-seed generations")
			}
		}
	}
	c := GenerateDataset(50, 8)
	same := true
	for p := range a.Images[0] {
		if a.Images[0][p] != c.Images[0][p] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical noise")
	}
}

func TestDatasetShapes(t *testing.T) {
	ds := GenerateDataset(25, 1)
	if len(ds.Images) != 25 || len(ds.Labels) != 25 {
		t.Fatalf("dataset size %d/%d, want 25", len(ds.Images), len(ds.Labels))
	}
	for i, img := range ds.Images {
		if len(img) != ImagePixels {
			t.Fatalf("image %d has %d pixels", i, len(img))
		}
		if ds.Labels[i] != i%Classes {
			t.Fatalf("label %d = %d, want %d", i, ds.Labels[i], i%Classes)
		}
	}
	flat := ds.Flatten()
	if len(flat) != 25*ImagePixels {
		t.Fatalf("flatten length %d", len(flat))
	}
	if flat[ImagePixels] != ds.Images[1][0] {
		t.Error("flatten layout wrong")
	}
}

func TestRenderDigitsDistinct(t *testing.T) {
	seen := map[string]int{}
	for c := 0; c < Classes; c++ {
		img := RenderDigit(c, 0, 0)
		key := ""
		for _, v := range img {
			if v > 0.5 {
				key += "1"
			} else {
				key += "0"
			}
		}
		if prev, dup := seen[key]; dup {
			t.Errorf("digits %d and %d render identically", prev, c)
		}
		seen[key] = c
	}
}

func TestTrainedAccuracy(t *testing.T) {
	n := trained(t)
	test := GenerateDataset(200, 99) // unseen seed
	acc := n.Accuracy(test)
	if acc < 0.9 {
		t.Errorf("clean accuracy = %.3f, want ≥0.90", acc)
	}
	t.Logf("clean test accuracy: %.3f", acc)
}

func TestWeightCorruptionCausesMisclassification(t *testing.T) {
	n := trained(t)
	test := GenerateDataset(100, 55)
	clean := n.Accuracy(test)

	// Corrupt a handful of layer-1 weights the way a multi-bit stuck-at
	// fault in a hot memory block would (large exponent-bit flips).
	corrupted := &Network{
		Layer1W: append([]float32(nil), n.Layer1W...),
		Layer2W: n.Layer2W,
		Layer3W: n.Layer3W,
		Layer4W: n.Layer4W,
	}
	rng := rand.New(rand.NewSource(3))
	for k := 0; k < 8; k++ {
		corrupted.Layer1W[rng.Intn(Layer1Weights)] *= 1e8
	}
	bad := corrupted.Accuracy(test)
	if bad >= clean {
		t.Errorf("corrupted accuracy %.3f not below clean %.3f", bad, clean)
	}
	t.Logf("accuracy clean %.3f → corrupted %.3f", clean, bad)
}

func TestTrainValidation(t *testing.T) {
	if _, err := Train(TrainConfig{TrainSamples: 5}); err == nil {
		t.Error("too-small training set accepted")
	}
}

func TestTrainDeterministic(t *testing.T) {
	a, err := Train(TrainConfig{TrainSamples: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Train(TrainConfig{TrainSamples: 50, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Layer4W {
		if a.Layer4W[i] != b.Layer4W[i] {
			t.Fatal("same-seed training produced different weights")
		}
	}
}

func TestSolveMulti(t *testing.T) {
	// 2x2 system with two right-hand sides: A = [[2,1],[1,3]],
	// B columns (5,10) and (1,0).
	a := []float64{2, 1, 1, 3}
	b := []float64{5, 1, 10, 0}
	w, err := solveMulti(a, b, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Solutions: x = A⁻¹b. det = 5. For b1=(5,10): x = (1, 3). For b2=(1,0):
	// x = (0.6, -0.2).
	want := []float64{1, 0.6, 3, -0.2}
	for i := range want {
		if diff := w[i] - want[i]; diff > 1e-9 || diff < -1e-9 {
			t.Fatalf("w[%d] = %v, want %v", i, w[i], want[i])
		}
	}
}

func TestSolveMultiSingular(t *testing.T) {
	a := []float64{1, 1, 1, 1}
	b := []float64{1, 1}
	if _, err := solveMulti(a, b, 2, 1); err == nil {
		t.Error("singular system accepted")
	}
}

func TestLayerForwardShapesAndRange(t *testing.T) {
	n := trained(t)
	img := RenderDigit(3, 0, 0)
	l1 := make([]float32, Layer1Neurons)
	n.Layer1Forward(img, l1)
	for i, v := range l1 {
		if v < -1.72 || v > 1.72 {
			t.Fatalf("l1[%d] = %v outside tanh range", i, v)
		}
	}
	l2 := make([]float32, Layer2Neurons)
	n.Layer2Forward(l1, l2)
	l3 := make([]float32, Layer3Units)
	n.Layer3Forward(l2, l3)
	out := make([]float32, Classes)
	n.Layer4Forward(l3, out)
	// Class 3 should win on its own clean glyph.
	best := 0
	for c := range out {
		if out[c] > out[best] {
			best = c
		}
	}
	if best != 3 {
		t.Errorf("clean glyph 3 classified as %d", best)
	}
}

func BenchmarkInference(b *testing.B) {
	n, err := Train(TrainConfig{TrainSamples: 50})
	if err != nil {
		b.Fatal(err)
	}
	img := RenderDigit(5, 0, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n.Infer(img)
	}
}
