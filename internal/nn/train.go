package nn

import (
	"fmt"
	"math"
	"math/rand"
)

// TrainConfig configures the deterministic network construction.
type TrainConfig struct {
	// TrainSamples is the synthetic training-set size for the output-layer
	// fit (default 600).
	TrainSamples int
	// Seed drives every random component (default 1).
	Seed int64
	// Ridge is the regularisation strength of the output-layer fit
	// (default 1.0).
	Ridge float64
}

func (c TrainConfig) withDefaults() TrainConfig {
	if c.TrainSamples == 0 {
		c.TrainSamples = 600
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.Ridge == 0 {
		c.Ridge = 1.0
	}
	return c
}

// layer1Filters are six fixed 5×5 feature detectors: horizontal and
// vertical edges, the two diagonals, a centre-surround blob, and a blur.
func layer1Filters() []float32 {
	w := make([]float32, Layer1Weights)
	set := func(m, tap int, v float32) { w[m*(1+KernelTaps)+1+tap] = v }
	for i := 0; i < KernelTaps; i++ {
		y, x := i/KernelSide, i%KernelSide
		// Map 0: horizontal edge (top minus bottom).
		switch {
		case y < 2:
			set(0, i, 0.2)
		case y > 2:
			set(0, i, -0.2)
		}
		// Map 1: vertical edge.
		switch {
		case x < 2:
			set(1, i, 0.2)
		case x > 2:
			set(1, i, -0.2)
		}
		// Map 2: main diagonal.
		switch {
		case x == y:
			set(2, i, 0.3)
		case x == y+1 || y == x+1:
			set(2, i, 0.1)
		default:
			set(2, i, -0.1)
		}
		// Map 3: anti-diagonal.
		switch {
		case x+y == KernelSide-1:
			set(3, i, 0.3)
		case x+y == KernelSide || x+y == KernelSide-2:
			set(3, i, 0.1)
		default:
			set(3, i, -0.1)
		}
		// Map 4: centre-surround.
		if x >= 1 && x <= 3 && y >= 1 && y <= 3 {
			set(4, i, 0.3)
		} else {
			set(4, i, -0.15)
		}
		// Map 5: blur.
		set(5, i, 0.08)
	}
	return w
}

// randomProjection fills weights with ±1/√fanIn values from the rng,
// zeroing the bias positions (strideed layout: one bias then fanIn taps).
func randomProjection(rng *rand.Rand, units, fanIn int) []float32 {
	w := make([]float32, units*(fanIn+1))
	scale := float32(1.0 / math.Sqrt(float64(fanIn)))
	for u := 0; u < units; u++ {
		base := u * (fanIn + 1)
		for i := 1; i <= fanIn; i++ {
			if rng.Intn(2) == 0 {
				w[base+i] = scale
			} else {
				w[base+i] = -scale
			}
		}
	}
	return w
}

// layer2Projection fills the (out, in, 26) conv weights with seeded ±scale
// values, bias zero.
func layer2Projection(rng *rand.Rand) []float32 {
	w := make([]float32, Layer2Weights)
	scale := float32(1.0 / math.Sqrt(float64(Layer1Maps*KernelTaps)))
	for o := 0; o < Layer2Maps; o++ {
		for m := 0; m < Layer1Maps; m++ {
			base := (o*Layer1Maps + m) * (1 + KernelTaps)
			for i := 1; i <= KernelTaps; i++ {
				if rng.Intn(2) == 0 {
					w[base+i] = scale
				} else {
					w[base+i] = -scale
				}
			}
		}
	}
	return w
}

// Train constructs the network: fixed layer-1 filters, seeded projections
// for layers 2–3, and a ridge-regression fit of the 10-way output layer on
// a synthetic training set.
func Train(cfg TrainConfig) (*Network, error) {
	cfg = cfg.withDefaults()
	if cfg.TrainSamples < Classes {
		return nil, fmt.Errorf("nn: need at least %d training samples, got %d", Classes, cfg.TrainSamples)
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := &Network{
		Layer1W: layer1Filters(),
		Layer2W: layer2Projection(rng),
		Layer3W: randomProjection(rng, Layer3Units, Layer2Neurons),
		Layer4W: make([]float32, Layer4Weights),
	}

	train := GenerateDataset(cfg.TrainSamples, cfg.Seed+1)
	dim := Layer3Units + 1 // bias feature
	// Normal equations: A = XᵀX + λI (dim×dim), B = XᵀY (dim×Classes).
	a := make([]float64, dim*dim)
	b := make([]float64, dim*Classes)
	x := make([]float64, dim)
	for s, img := range train.Images {
		feats := n.Features(img)
		x[0] = 1
		for i, f := range feats {
			x[i+1] = float64(f)
		}
		label := train.Labels[s]
		for i := 0; i < dim; i++ {
			for j := 0; j < dim; j++ {
				a[i*dim+j] += x[i] * x[j]
			}
			for cls := 0; cls < Classes; cls++ {
				y := -1.0
				if cls == label {
					y = 1.0
				}
				b[i*Classes+cls] += x[i] * y
			}
		}
	}
	for i := 0; i < dim; i++ {
		a[i*dim+i] += cfg.Ridge
	}
	w, err := solveMulti(a, b, dim, Classes)
	if err != nil {
		return nil, fmt.Errorf("nn: output-layer fit: %w", err)
	}
	// Repack: class c weights = [bias, w1..w100].
	for c := 0; c < Classes; c++ {
		for i := 0; i < dim; i++ {
			n.Layer4W[c*dim+i] = float32(w[i*Classes+c])
		}
	}
	return n, nil
}

// solveMulti solves A·W = B for W (dim×cols) via Gaussian elimination with
// partial pivoting; A is dim×dim and consumed.
func solveMulti(a, b []float64, dim, cols int) ([]float64, error) {
	for p := 0; p < dim; p++ {
		// Pivot.
		best := p
		for r := p + 1; r < dim; r++ {
			if math.Abs(a[r*dim+p]) > math.Abs(a[best*dim+p]) {
				best = r
			}
		}
		if math.Abs(a[best*dim+p]) < 1e-12 {
			return nil, fmt.Errorf("nn: singular system at pivot %d", p)
		}
		if best != p {
			for j := 0; j < dim; j++ {
				a[p*dim+j], a[best*dim+j] = a[best*dim+j], a[p*dim+j]
			}
			for j := 0; j < cols; j++ {
				b[p*cols+j], b[best*cols+j] = b[best*cols+j], b[p*cols+j]
			}
		}
		inv := 1 / a[p*dim+p]
		for r := 0; r < dim; r++ {
			if r == p {
				continue
			}
			f := a[r*dim+p] * inv
			if f == 0 {
				continue
			}
			for j := p; j < dim; j++ {
				a[r*dim+j] -= f * a[p*dim+j]
			}
			for j := 0; j < cols; j++ {
				b[r*cols+j] -= f * b[p*cols+j]
			}
		}
	}
	w := make([]float64, dim*cols)
	for i := 0; i < dim; i++ {
		inv := 1 / a[i*dim+i]
		for j := 0; j < cols; j++ {
			w[i*cols+j] = b[i*cols+j] * inv
		}
	}
	return w, nil
}
