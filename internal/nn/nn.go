// Package nn implements the C-NN application's network: the LeNet-style
// convolutional digit classifier of the CUDA-SDK-era "CNN" benchmark the
// paper evaluates (29×29 input → 6 conv maps 13×13 → 50 conv maps 5×5 →
// 100 FC → 10 FC).
//
// The paper uses pre-trained MNIST weights, which are not available here;
// instead the weights are constructed deterministically — fixed edge/blob
// filters for layer 1, seeded pseudo-random projections for layers 2–3, and
// a ridge-regression-fitted output layer over a synthetic digit dataset
// (see data.go). The resulting classifier reaches high accuracy on the
// synthetic set and, critically for the paper's experiments, degrades into
// misclassifications when its weight objects are corrupted.
package nn

import (
	"fmt"
	"math"
)

// Network geometry (matches the benchmark's data-object sizes in Table III).
const (
	// ImageSide and ImagePixels describe the 29×29 input.
	ImageSide   = 29
	ImagePixels = ImageSide * ImageSide
	// Layer1Maps×Layer1Side² neurons come from 5×5 stride-2 convolutions.
	Layer1Maps   = 6
	Layer1Side   = 13
	KernelSide   = 5
	KernelTaps   = KernelSide * KernelSide
	Layer1Stride = 2
	// Layer1Weights = maps × (bias + 25 taps).
	Layer1Weights = Layer1Maps * (1 + KernelTaps) // 156
	Layer1Neurons = Layer1Maps * Layer1Side * Layer1Side

	// Layer 2: 50 maps of 5×5 from stride-2 5×5 convolutions over the 6
	// layer-1 maps; 26 weights (bias + 25 taps) per (out, in) map pair.
	Layer2Maps    = 50
	Layer2Side    = 5
	Layer2Weights = Layer2Maps * Layer1Maps * (1 + KernelTaps) // 7800
	Layer2Neurons = Layer2Maps * Layer2Side * Layer2Side       // 1250

	// Layer 3: fully connected, 100 neurons.
	Layer3Units   = 100
	Layer3Weights = Layer3Units * (Layer2Neurons + 1) // 125100

	// Layer 4: fully connected, 10 class outputs.
	Classes       = 10
	Layer4Weights = Classes * (Layer3Units + 1) // 1010
)

// Network holds the four weight objects — the application's input data
// objects in Table III. Layer1W and Layer2W are the hot objects.
type Network struct {
	Layer1W []float32
	Layer2W []float32
	Layer3W []float32
	Layer4W []float32
}

// activation is the benchmark's scaled tanh.
func activation(x float32) float32 {
	return float32(1.7159 * math.Tanh(0.66666667*float64(x)))
}

// Validate reports whether the weight slices have the expected sizes.
func (n *Network) Validate() error {
	if len(n.Layer1W) != Layer1Weights {
		return fmt.Errorf("nn: layer1 weights = %d, want %d", len(n.Layer1W), Layer1Weights)
	}
	if len(n.Layer2W) != Layer2Weights {
		return fmt.Errorf("nn: layer2 weights = %d, want %d", len(n.Layer2W), Layer2Weights)
	}
	if len(n.Layer3W) != Layer3Weights {
		return fmt.Errorf("nn: layer3 weights = %d, want %d", len(n.Layer3W), Layer3Weights)
	}
	if len(n.Layer4W) != Layer4Weights {
		return fmt.Errorf("nn: layer4 weights = %d, want %d", len(n.Layer4W), Layer4Weights)
	}
	return nil
}

// Layer1Forward computes the first conv layer into out (Layer1Neurons).
func (n *Network) Layer1Forward(img []float32, out []float32) {
	for m := 0; m < Layer1Maps; m++ {
		wb := m * (1 + KernelTaps)
		bias := n.Layer1W[wb]
		for py := 0; py < Layer1Side; py++ {
			for px := 0; px < Layer1Side; px++ {
				sum := bias
				wy, wx := py*Layer1Stride, px*Layer1Stride
				for i := 0; i < KernelTaps; i++ {
					iy, ix := wy+i/KernelSide, wx+i%KernelSide
					sum += img[iy*ImageSide+ix] * n.Layer1W[wb+1+i]
				}
				out[m*Layer1Side*Layer1Side+py*Layer1Side+px] = activation(sum)
			}
		}
	}
}

// Layer2Forward computes the second conv layer: in is Layer1Neurons, out is
// Layer2Neurons.
func (n *Network) Layer2Forward(in []float32, out []float32) {
	for o := 0; o < Layer2Maps; o++ {
		for py := 0; py < Layer2Side; py++ {
			for px := 0; px < Layer2Side; px++ {
				var sum float32
				wy, wx := py*Layer1Stride, px*Layer1Stride
				for m := 0; m < Layer1Maps; m++ {
					wb := (o*Layer1Maps + m) * (1 + KernelTaps)
					sum += n.Layer2W[wb] // per-(out,in) bias contribution
					base := m * Layer1Side * Layer1Side
					for i := 0; i < KernelTaps; i++ {
						iy, ix := wy+i/KernelSide, wx+i%KernelSide
						sum += in[base+iy*Layer1Side+ix] * n.Layer2W[wb+1+i]
					}
				}
				out[o*Layer2Side*Layer2Side+py*Layer2Side+px] = activation(sum)
			}
		}
	}
}

// Layer3Forward computes the first FC layer: in is Layer2Neurons, out is
// Layer3Units.
func (n *Network) Layer3Forward(in []float32, out []float32) {
	for u := 0; u < Layer3Units; u++ {
		wb := u * (Layer2Neurons + 1)
		sum := n.Layer3W[wb]
		for i := 0; i < Layer2Neurons; i++ {
			sum += in[i] * n.Layer3W[wb+1+i]
		}
		out[u] = activation(sum)
	}
}

// Layer4Forward computes the output layer: in is Layer3Units, out is
// Classes (linear scores).
func (n *Network) Layer4Forward(in []float32, out []float32) {
	for c := 0; c < Classes; c++ {
		wb := c * (Layer3Units + 1)
		sum := n.Layer4W[wb]
		for i := 0; i < Layer3Units; i++ {
			sum += in[i] * n.Layer4W[wb+1+i]
		}
		out[c] = sum
	}
}

// Features runs layers 1–3, returning the 100-dimensional feature vector.
func (n *Network) Features(img []float32) []float32 {
	l1 := make([]float32, Layer1Neurons)
	l2 := make([]float32, Layer2Neurons)
	l3 := make([]float32, Layer3Units)
	n.Layer1Forward(img, l1)
	n.Layer2Forward(l1, l2)
	n.Layer3Forward(l2, l3)
	return l3
}

// Infer classifies one image, returning the argmax class.
func (n *Network) Infer(img []float32) int {
	l3 := n.Features(img)
	scores := make([]float32, Classes)
	n.Layer4Forward(l3, scores)
	best := 0
	for c := 1; c < Classes; c++ {
		if scores[c] > scores[best] {
			best = c
		}
	}
	return best
}

// Accuracy returns the fraction of dataset images classified correctly.
func (n *Network) Accuracy(ds Dataset) float64 {
	if len(ds.Images) == 0 {
		return 0
	}
	ok := 0
	for i, img := range ds.Images {
		if n.Infer(img) == ds.Labels[i] {
			ok++
		}
	}
	return float64(ok) / float64(len(ds.Images))
}
