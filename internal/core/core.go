// Package core implements the paper's contribution: data-centric partial
// replication of hot data objects for multi-bit fault detection and
// correction in GPU memory (Section IV).
//
// A Plan replicates selected read-only data objects in device memory —
// twice for the detection scheme, three times for detection-and-correction —
// and interposes on every lane read of a protected object:
//
//   - Detection: the two copies are compared bit-wise; a mismatch raises a
//     terminate signal (ErrFaultDetected) so the application exits early
//     instead of silently corrupting its output. In the timing model the
//     comparison is lazy: execution proceeds on the first copy's arrival.
//   - Correction: a bit-wise majority vote across the three copies repairs
//     any fault confined to one copy; execution waits for all three copies.
//
// The same Plan drives both the functional path (simt.WordReader, used by
// fault-injection campaigns) and the timing path (timing.ProtectionPlan,
// used by the performance experiments).
package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/simt"
	"github.com/datacentric-gpu/dcrm/internal/timing"
)

// ErrFaultDetected is the terminate signal of the detection scheme: a
// bit-wise mismatch between the copies of a protected data object. The user
// is expected to rerun the application (Section IV-B1).
var ErrFaultDetected = errors.New("core: multi-bit fault detected in protected data object")

// Scheme selects the resilience scheme.
type Scheme int

// Resilience schemes.
const (
	// None is the unprotected baseline.
	None Scheme = iota + 1
	// Detection duplicates protected objects and compares copies (lazy).
	Detection
	// Correction triplicates protected objects and majority-votes.
	Correction
)

// String renders the scheme.
func (s Scheme) String() string {
	switch s {
	case None:
		return "baseline"
	case Detection:
		return "detection"
	case Correction:
		return "detection+correction"
	default:
		return fmt.Sprintf("scheme(%d)", int(s))
	}
}

// ParseScheme parses a scheme name as accepted by the fleet protocol and
// CLI flags: "none"/"baseline", "detection", or "correction" (the String
// rendering "detection+correction" is accepted too).
func ParseScheme(s string) (Scheme, error) {
	switch s {
	case "none", "baseline", "":
		return None, nil
	case "detection":
		return Detection, nil
	case "correction", "detection+correction":
		return Correction, nil
	}
	return 0, fmt.Errorf("core: unknown scheme %q (want none, detection, or correction)", s)
}

// Copies returns the number of data copies the scheme keeps.
func (s Scheme) Copies() int {
	switch s {
	case Detection:
		return 2
	case Correction:
		return 3
	default:
		return 1
	}
}

// Hardware budget constants from Section IV-C.
const (
	// AddrTableBytes is the storage allocated for replica start addresses.
	AddrTableBytes = 128
	// MaxObjectsDetection and MaxObjectsCorrection are how many protected
	// objects the 128 B address table accommodates (32-bit start addresses;
	// one per copy beyond the primary).
	MaxObjectsDetection  = 32
	MaxObjectsCorrection = 16
	// LoadTableBytes is the storage for protected load-instruction
	// addresses, accommodating MaxLoadSites 32-bit PCs.
	LoadTableBytes = 128
	MaxLoadSites   = 32
	// ComparatorBits is the width of the bit-wise comparator (32 B
	// granularity).
	ComparatorBits = 256
	// AdderBits is the index adder used to form replica addresses.
	AdderBits = 32
)

// SiteBinding associates a static load site with the data object it reads.
// Applications export their bindings so a Plan can validate the hardware
// load-table budget and the timing model can key protection off load PCs.
type SiteBinding struct {
	// Site is the static load instruction.
	Site simt.Site
	// Buf is the data object the site reads.
	Buf *mem.Buffer
}

// PlanConfig configures NewPlan.
type PlanConfig struct {
	// Scheme selects detection or correction (None builds a pass-through
	// plan).
	Scheme Scheme
	// Objects are the data objects to protect, in priority order (the
	// paper's hot data objects first).
	Objects []*mem.Buffer
	// Sites are the application's static load sites. Optional: when
	// provided, the plan validates that the protected sites fit the 128 B
	// load-instruction table.
	Sites []SiteBinding
}

// object is one protected data object with its replica copies.
type object struct {
	primary  *mem.Buffer
	replicas []*mem.Buffer
}

// Plan is a built protection plan bound to one device memory image.
type Plan struct {
	scheme  Scheme
	m       *mem.Memory
	objects map[int]*object // primary buffer ID → object
	// protectedPCs is the load-instruction table content (for reporting).
	protectedPCs []uint16

	// Stats accumulate on the functional read path.
	Stats Stats
}

// Stats counts functional protection events.
type Stats struct {
	// ProtectedReads counts lane reads that went through the scheme.
	ProtectedReads uint64
	// Mismatches counts detection comparisons that failed (terminate).
	Mismatches uint64
	// CorrectedReads counts majority votes that repaired a faulty copy.
	CorrectedReads uint64
}

// NewPlan replicates the configured objects inside m and returns the plan.
// Replicas are fresh allocations at distinct addresses; their contents are
// copied from the primaries at build time (kernel launch time in the
// paper's flow).
func NewPlan(m *mem.Memory, cfg PlanConfig) (*Plan, error) {
	switch cfg.Scheme {
	case None, Detection, Correction:
	default:
		return nil, fmt.Errorf("core: unknown scheme %d", int(cfg.Scheme))
	}
	p := &Plan{scheme: cfg.Scheme, m: m, objects: make(map[int]*object, len(cfg.Objects))}
	if cfg.Scheme == None || len(cfg.Objects) == 0 {
		return p, nil
	}
	maxObjects := MaxObjectsDetection
	if cfg.Scheme == Correction {
		maxObjects = MaxObjectsCorrection
	}
	if len(cfg.Objects) > maxObjects {
		return nil, fmt.Errorf("core: %d objects exceed the %d-entry address table for %v",
			len(cfg.Objects), maxObjects, cfg.Scheme)
	}
	// Validate everything before allocating replicas, so a rejected config
	// leaves the memory image untouched.
	ids := make(map[int]bool, len(cfg.Objects))
	for _, b := range cfg.Objects {
		if b == nil {
			return nil, errors.New("core: nil object in plan")
		}
		if !b.ReadOnly {
			return nil, fmt.Errorf("core: object %q is writable; only read-only objects can be replicated", b.Name)
		}
		if ids[b.ID] {
			return nil, fmt.Errorf("core: object %q listed twice", b.Name)
		}
		ids[b.ID] = true
	}
	for _, sb := range cfg.Sites {
		if sb.Buf != nil && ids[sb.Buf.ID] {
			p.protectedPCs = append(p.protectedPCs, sb.Site.PC)
		}
	}
	if len(p.protectedPCs) > MaxLoadSites {
		return nil, fmt.Errorf("core: %d protected load sites exceed the %d-entry load table",
			len(p.protectedPCs), MaxLoadSites)
	}
	for _, b := range cfg.Objects {
		obj := &object{primary: b}
		for c := 1; c < cfg.Scheme.Copies(); c++ {
			rep, err := m.Alloc(fmt.Sprintf("%s#copy%d", b.Name, c), b.Size, true)
			if err != nil {
				return nil, fmt.Errorf("core: replicating %q: %w", b.Name, err)
			}
			if err := m.CopyBuffer(rep, b); err != nil {
				return nil, fmt.Errorf("core: replicating %q: %w", b.Name, err)
			}
			obj.replicas = append(obj.replicas, rep)
		}
		p.objects[b.ID] = obj
	}
	return p, nil
}

// Scheme returns the plan's scheme.
func (p *Plan) Scheme() Scheme { return p.scheme }

// ProtectedObjects returns how many objects the plan protects.
func (p *Plan) ProtectedObjects() int { return len(p.objects) }

// ProtectedPCs returns the load-instruction table contents (empty when the
// plan was built without site bindings).
func (p *Plan) ProtectedPCs() []uint16 { return append([]uint16(nil), p.protectedPCs...) }

// IsProtected reports whether the buffer is covered by the plan.
func (p *Plan) IsProtected(b *mem.Buffer) bool {
	_, ok := p.objects[b.ID]
	return ok
}

// Replicas returns the replica buffers of a protected object (nil if
// unprotected).
func (p *Plan) Replicas(b *mem.Buffer) []*mem.Buffer {
	obj, ok := p.objects[b.ID]
	if !ok {
		return nil
	}
	return append([]*mem.Buffer(nil), obj.replicas...)
}

// ForMemory rebinds the plan to a cloned or copy-on-write forked memory
// image. Buffer metadata (IDs, addresses) is shared between a memory and
// its clones and forks, so the same object table applies; statistics are
// fresh. Use this to run fault injection campaigns against per-run forks
// of a prepared image.
func (p *Plan) ForMemory(clone *mem.Memory) *Plan {
	return &Plan{scheme: p.scheme, m: clone, objects: p.objects, protectedPCs: p.protectedPCs}
}

// ReadLaneWord implements simt.WordReader: the functional semantics of the
// protection schemes.
func (p *Plan) ReadLaneWord(buf *mem.Buffer, addr arch.Addr) (uint32, error) {
	obj, ok := p.objects[buf.ID]
	if !ok || p.scheme == None {
		return p.m.ReadWord(addr), nil
	}
	p.Stats.ProtectedReads++
	off := addr - buf.Base
	primary := p.m.ReadWord(addr)
	switch p.scheme {
	case Detection:
		replica := p.m.ReadWord(obj.replicas[0].Base + off)
		if primary != replica {
			p.Stats.Mismatches++
			return 0, fmt.Errorf("core: object %q offset %d: copies differ (%#x vs %#x): %w",
				buf.Name, off, primary, replica, ErrFaultDetected)
		}
		return primary, nil
	case Correction:
		c1 := p.m.ReadWord(obj.replicas[0].Base + off)
		c2 := p.m.ReadWord(obj.replicas[1].Base + off)
		voted := (primary & c1) | (primary & c2) | (c1 & c2)
		if voted != primary || voted != c1 || voted != c2 {
			p.Stats.CorrectedReads++
		}
		return voted, nil
	default:
		return primary, nil
	}
}

// Copies implements timing.ProtectionPlan.
func (p *Plan) Copies(_ uint16, bufID int16) int {
	if _, ok := p.objects[int(bufID)]; !ok {
		return 1
	}
	return p.scheme.Copies()
}

// ReplicaBlock implements timing.ProtectionPlan.
func (p *Plan) ReplicaBlock(bufID int16, primary arch.BlockAddr, copy int) arch.BlockAddr {
	obj, ok := p.objects[int(bufID)]
	if !ok || copy < 1 || copy > len(obj.replicas) {
		return primary
	}
	return obj.replicas[copy-1].FirstBlock() + (primary - obj.primary.FirstBlock())
}

// Lazy implements timing.ProtectionPlan: only the detection scheme
// completes loads on first copy arrival.
func (p *Plan) Lazy() bool { return p.scheme == Detection }

// Compile-time interface checks.
var (
	_ simt.WordReader       = (*Plan)(nil)
	_ timing.ProtectionPlan = (*Plan)(nil)
)

// Cost is the hardware overhead model of Section IV-C.
type Cost struct {
	// AddrTableBytes, LoadTableBytes, CompareBufferBytes are the fixed
	// LD/ST-unit storage additions.
	AddrTableBytes     int
	LoadTableBytes     int
	CompareBufferBytes int
	// ComparatorBits and AdderBits are the added datapath widths.
	ComparatorBits int
	AdderBits      int
	// ReplicaBytes is the DRAM consumed by the replica copies.
	ReplicaBytes int
}

// Describe renders a human-readable summary of the plan for CLI reports.
func (p *Plan) Describe() string {
	if p.scheme == None || len(p.objects) == 0 {
		return "baseline (no protection)"
	}
	names := make([]string, 0, len(p.objects))
	for _, obj := range p.objects {
		names = append(names, obj.primary.Name)
	}
	sort.Strings(names)
	c := p.Cost()
	return fmt.Sprintf("%v over %s (%d replica B in DRAM, %d protected load PCs)",
		p.scheme, strings.Join(names, ", "), c.ReplicaBytes, len(p.protectedPCs))
}

// Cost reports the plan's hardware overhead.
func (p *Plan) Cost() Cost {
	replica := 0
	for _, obj := range p.objects {
		for _, r := range obj.replicas {
			replica += r.Size
		}
	}
	return Cost{
		AddrTableBytes:     AddrTableBytes,
		LoadTableBytes:     LoadTableBytes,
		CompareBufferBytes: 128,
		ComparatorBits:     ComparatorBits,
		AdderBits:          AdderBits,
		ReplicaBytes:       replica,
	}
}
