package core

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"github.com/datacentric-gpu/dcrm/internal/mem"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// prep builds a memory with one read-only object of n floats initialised to
// f(i), plus a plan protecting it.
func prep(t *testing.T, scheme Scheme, n int) (*mem.Memory, *mem.Buffer, *Plan) {
	t.Helper()
	m := mem.New()
	b, err := m.Alloc("hot", n*4, true)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		m.WriteF32(b.ElemAddr(i), float32(i)+0.5)
	}
	p, err := NewPlan(m, PlanConfig{Scheme: scheme, Objects: []*mem.Buffer{b}})
	if err != nil {
		t.Fatal(err)
	}
	return m, b, p
}

func TestSchemeCopies(t *testing.T) {
	tests := []struct {
		s    Scheme
		want int
		str  string
	}{
		{None, 1, "baseline"},
		{Detection, 2, "detection"},
		{Correction, 3, "detection+correction"},
	}
	for _, tt := range tests {
		if got := tt.s.Copies(); got != tt.want {
			t.Errorf("%v.Copies() = %d, want %d", tt.s, got, tt.want)
		}
		if got := tt.s.String(); got != tt.str {
			t.Errorf("String() = %q, want %q", got, tt.str)
		}
	}
}

func TestPlanAllocatesReplicas(t *testing.T) {
	m, b, p := prep(t, Correction, 64)
	reps := p.Replicas(b)
	if len(reps) != 2 {
		t.Fatalf("replicas = %d, want 2", len(reps))
	}
	for i, r := range reps {
		if !r.ReadOnly {
			t.Errorf("replica %d not read-only", i)
		}
		if r.Base == b.Base {
			t.Errorf("replica %d shares the primary's address", i)
		}
		for j := 0; j < 64; j++ {
			if got := m.ReadF32(r.ElemAddr(j)); got != float32(j)+0.5 {
				t.Fatalf("replica %d element %d = %v, want %v", i, j, got, float32(j)+0.5)
			}
		}
	}
	if !p.IsProtected(b) {
		t.Error("primary not reported protected")
	}
}

func TestCleanReadsPassThrough(t *testing.T) {
	for _, scheme := range []Scheme{None, Detection, Correction} {
		t.Run(scheme.String(), func(t *testing.T) {
			_, b, p := prep(t, scheme, 32)
			for i := 0; i < 32; i++ {
				w, err := p.ReadLaneWord(b, b.ElemAddr(i))
				if err != nil {
					t.Fatalf("clean read %d: %v", i, err)
				}
				if got := f32(w); got != float32(i)+0.5 {
					t.Fatalf("read %d = %v, want %v", i, got, float32(i)+0.5)
				}
			}
		})
	}
}

func f32(w uint32) float32 { return math.Float32frombits(w) }

func TestDetectionCatchesFaultInPrimary(t *testing.T) {
	m, b, p := prep(t, Detection, 32)
	m.SetECC(mem.ECCNone)
	if err := m.InjectStuckAt(b.ElemAddr(5), 0b110, true); err != nil {
		t.Fatal(err)
	}
	_, err := p.ReadLaneWord(b, b.ElemAddr(5))
	if !errors.Is(err, ErrFaultDetected) {
		t.Fatalf("err = %v, want ErrFaultDetected", err)
	}
	if p.Stats.Mismatches != 1 {
		t.Errorf("mismatches = %d, want 1", p.Stats.Mismatches)
	}
}

func TestDetectionCatchesFaultInReplica(t *testing.T) {
	m, b, p := prep(t, Detection, 32)
	m.SetECC(mem.ECCNone)
	rep := p.Replicas(b)[0]
	// Element 7 holds 7.5 = 0x40F00000: the low mantissa bits are zero, so
	// a 2-bit stuck-at-1 fault flips the replica (and escapes SECDED).
	if err := m.InjectStuckAt(rep.ElemAddr(7), 0b11, true); err != nil {
		t.Fatal(err)
	}
	_, err := p.ReadLaneWord(b, b.ElemAddr(7))
	if !errors.Is(err, ErrFaultDetected) {
		t.Fatalf("err = %v, want ErrFaultDetected", err)
	}
}

func TestCorrectionRepairsSingleCopyFault(t *testing.T) {
	tests := []struct {
		name string
		copy int // 0 = primary, 1/2 = replicas
	}{
		{"primary faulty", 0},
		{"replica 1 faulty", 1},
		{"replica 2 faulty", 2},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			m, b, p := prep(t, Correction, 32)
			m.SetECC(mem.ECCNone)
			target := b
			if tt.copy > 0 {
				target = p.Replicas(b)[tt.copy-1]
			}
			if err := m.InjectStuckAt(target.ElemAddr(3), 0xF0F0, true); err != nil {
				t.Fatal(err)
			}
			w, err := p.ReadLaneWord(b, b.ElemAddr(3))
			if err != nil {
				t.Fatalf("ReadLaneWord: %v", err)
			}
			if got := f32(w); got != 3.5 {
				t.Fatalf("voted read = %v, want 3.5", got)
			}
			if p.Stats.CorrectedReads != 1 {
				t.Errorf("corrected = %d, want 1", p.Stats.CorrectedReads)
			}
		})
	}
}

// TestCorrectionMajorityVoteProperty: for any word and any fault mask
// applied to exactly one copy, the vote returns the original word.
func TestCorrectionMajorityVoteProperty(t *testing.T) {
	f := func(val uint32, mask uint32, which uint8) bool {
		m := mem.New()
		m.SetECC(mem.ECCNone)
		b, err := m.Alloc("o", 128, true)
		if err != nil {
			return false
		}
		m.WriteWord(b.ElemAddr(0), val)
		p, err := NewPlan(m, PlanConfig{Scheme: Correction, Objects: []*mem.Buffer{b}})
		if err != nil {
			return false
		}
		target := b
		if which%3 > 0 {
			target = p.Replicas(b)[which%3-1]
		}
		if err := m.InjectStuckAt(target.ElemAddr(0), mask, which%2 == 0); err != nil {
			return false
		}
		w, err := p.ReadLaneWord(b, b.ElemAddr(0))
		return err == nil && w == val
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestCorrectionFailsWhenTwoCopiesAgreeOnWrongValue(t *testing.T) {
	m, b, p := prep(t, Correction, 8)
	m.SetECC(mem.ECCNone)
	reps := p.Replicas(b)
	// The same stuck-at fault in two copies out-votes the clean one — the
	// residual risk the paper calls "minimal" because copies live at
	// distinct physical locations.
	if err := m.InjectStuckAt(reps[0].ElemAddr(0), 0xFF, true); err != nil {
		t.Fatal(err)
	}
	if err := m.InjectStuckAt(reps[1].ElemAddr(0), 0xFF, true); err != nil {
		t.Fatal(err)
	}
	clean := m.ReadWord(b.ElemAddr(0))
	w, err := p.ReadLaneWord(b, b.ElemAddr(0))
	if err != nil {
		t.Fatal(err)
	}
	if w == clean {
		t.Error("vote repaired a two-copy fault; expected wrong value")
	}
}

func TestUnprotectedObjectBypassesScheme(t *testing.T) {
	m, _, p := prep(t, Detection, 8)
	m.SetECC(mem.ECCNone)
	other, err := m.Alloc("cold", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	m.WriteWord(other.ElemAddr(0), 42)
	if err := m.InjectStuckAt(other.ElemAddr(0), 1, true); err != nil {
		t.Fatal(err)
	}
	w, err := p.ReadLaneWord(other, other.ElemAddr(0))
	if err != nil {
		t.Fatalf("unprotected read errored: %v", err)
	}
	if w != 43 {
		t.Errorf("unprotected faulty read = %d, want 43 (fault visible)", w)
	}
	if p.Stats.ProtectedReads != 0 {
		t.Error("unprotected read counted as protected")
	}
}

func TestPlanValidation(t *testing.T) {
	m := mem.New()
	rw, err := m.Alloc("rw", 64, false)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(m, PlanConfig{Scheme: Detection, Objects: []*mem.Buffer{rw}}); err == nil {
		t.Error("writable object accepted for replication")
	}
	if _, err := NewPlan(m, PlanConfig{Scheme: Scheme(9)}); err == nil {
		t.Error("unknown scheme accepted")
	}
	ro, err := m.Alloc("ro", 64, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewPlan(m, PlanConfig{Scheme: Detection, Objects: []*mem.Buffer{ro, ro}}); err == nil {
		t.Error("duplicate object accepted")
	}
	if _, err := NewPlan(m, PlanConfig{Scheme: Detection, Objects: []*mem.Buffer{nil}}); err == nil {
		t.Error("nil object accepted")
	}
}

func TestPlanObjectBudget(t *testing.T) {
	m := mem.New()
	var objs []*mem.Buffer
	for i := 0; i < MaxObjectsCorrection+1; i++ {
		b, err := m.Alloc(fmt.Sprintf("o%d", i), 128, true)
		if err != nil {
			t.Fatal(err)
		}
		objs = append(objs, b)
	}
	if _, err := NewPlan(m, PlanConfig{Scheme: Correction, Objects: objs}); err == nil {
		t.Errorf("correction accepted %d objects, budget is %d", len(objs), MaxObjectsCorrection)
	}
	if _, err := NewPlan(m, PlanConfig{Scheme: Detection, Objects: objs}); err != nil {
		t.Errorf("detection rejected %d objects, budget is %d: %v", len(objs), MaxObjectsDetection, err)
	}
}

func TestLoadSiteBudget(t *testing.T) {
	m := mem.New()
	hot, err := m.Alloc("hot", 128, true)
	if err != nil {
		t.Fatal(err)
	}
	var sites []SiteBinding
	for i := 0; i < MaxLoadSites+1; i++ {
		sites = append(sites, SiteBinding{Site: simt.Site{PC: uint16(i)}, Buf: hot})
	}
	if _, err := NewPlan(m, PlanConfig{Scheme: Detection, Objects: []*mem.Buffer{hot}, Sites: sites}); err == nil {
		t.Error("load-site overflow accepted")
	}
	ok, err := NewPlan(m, PlanConfig{Scheme: Detection, Objects: []*mem.Buffer{hot}, Sites: sites[:5]})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(ok.ProtectedPCs()); got != 5 {
		t.Errorf("protected PCs = %d, want 5", got)
	}
}

func TestTimingPlanInterface(t *testing.T) {
	_, b, p := prep(t, Detection, 64) // 64 floats = 2 blocks
	if got := p.Copies(0, int16(b.ID)); got != 2 {
		t.Errorf("Copies = %d, want 2", got)
	}
	if got := p.Copies(0, int16(b.ID+99)); got != 1 {
		t.Errorf("Copies(unprotected) = %d, want 1", got)
	}
	if !p.Lazy() {
		t.Error("detection plan not lazy")
	}
	rep := p.Replicas(b)[0]
	// Second block of the primary maps to the second block of the replica.
	got := p.ReplicaBlock(int16(b.ID), b.FirstBlock()+1, 1)
	if want := rep.FirstBlock() + 1; got != want {
		t.Errorf("ReplicaBlock = %d, want %d", got, want)
	}
	// Unknown copy index falls back to the primary block.
	if got := p.ReplicaBlock(int16(b.ID), b.FirstBlock(), 5); got != b.FirstBlock() {
		t.Error("out-of-range copy index did not fall back")
	}
}

func TestCorrectionNotLazy(t *testing.T) {
	_, _, p := prep(t, Correction, 8)
	if p.Lazy() {
		t.Error("correction plan reported lazy")
	}
}

func TestForMemoryRebind(t *testing.T) {
	m, b, p := prep(t, Detection, 16)
	m.SetECC(mem.ECCNone)
	clone := m.Clone()
	if err := clone.InjectStuckAt(b.ElemAddr(2), 0b11, true); err != nil {
		t.Fatal(err)
	}
	cp := p.ForMemory(clone)
	// The clone's plan detects the clone's fault…
	if _, err := cp.ReadLaneWord(b, b.ElemAddr(2)); !errors.Is(err, ErrFaultDetected) {
		t.Fatalf("clone plan err = %v, want detection", err)
	}
	// …while the original memory stays clean.
	if _, err := p.ReadLaneWord(b, b.ElemAddr(2)); err != nil {
		t.Fatalf("original plan errored: %v", err)
	}
	if p.Stats.Mismatches != 0 || cp.Stats.Mismatches != 1 {
		t.Error("stats not independent across rebind")
	}
}

func TestCost(t *testing.T) {
	_, b, p := prep(t, Correction, 256)
	c := p.Cost()
	if c.ReplicaBytes != 2*b.Size {
		t.Errorf("ReplicaBytes = %d, want %d", c.ReplicaBytes, 2*b.Size)
	}
	if c.AddrTableBytes != 128 || c.LoadTableBytes != 128 || c.CompareBufferBytes != 128 {
		t.Errorf("fixed tables = %+v, want 128 B each", c)
	}
	if c.ComparatorBits != 256 || c.AdderBits != 32 {
		t.Errorf("datapath = %+v, want 256-bit comparator, 32-bit adder", c)
	}
}

func TestSECDEDSingleBitInvisibleToDetection(t *testing.T) {
	// With the SECDED model on, a 1-bit fault is corrected before the
	// comparison: no terminate, clean value.
	m, b, p := prep(t, Detection, 8)
	if err := m.InjectStuckAt(b.ElemAddr(1), 1<<9, true); err != nil {
		t.Fatal(err)
	}
	w, err := p.ReadLaneWord(b, b.ElemAddr(1))
	if err != nil {
		t.Fatalf("single-bit fault triggered detection despite SECDED: %v", err)
	}
	if got := f32(w); got != 1.5 {
		t.Errorf("read = %v, want 1.5", got)
	}
}

func BenchmarkDetectionRead(b *testing.B) {
	m := mem.New()
	buf, err := m.Alloc("hot", 4096, true)
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPlan(m, PlanConfig{Scheme: Detection, Objects: []*mem.Buffer{buf}})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ReadLaneWord(buf, buf.ElemAddr(rng.Intn(1024))); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCorrectionRead(b *testing.B) {
	m := mem.New()
	buf, err := m.Alloc("hot", 4096, true)
	if err != nil {
		b.Fatal(err)
	}
	p, err := NewPlan(m, PlanConfig{Scheme: Correction, Objects: []*mem.Buffer{buf}})
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.ReadLaneWord(buf, buf.ElemAddr(rng.Intn(1024))); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPlanDescribe(t *testing.T) {
	m := mem.New()
	a, err := m.Alloc("r", 64, true)
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Alloc("p", 64, true)
	if err != nil {
		t.Fatal(err)
	}
	base, err := NewPlan(m, PlanConfig{Scheme: None})
	if err != nil {
		t.Fatal(err)
	}
	if got := base.Describe(); got != "baseline (no protection)" {
		t.Errorf("baseline Describe = %q", got)
	}
	p, err := NewPlan(m, PlanConfig{Scheme: Detection, Objects: []*mem.Buffer{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	d := p.Describe()
	for _, want := range []string{"detection", "p, r", "replica"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() = %q, missing %q", d, want)
		}
	}
}
