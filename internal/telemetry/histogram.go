package telemetry

import (
	"fmt"
	"math"
	"sync/atomic"
)

// Histogram is a fixed-bucket distribution. Observe is lock-free: a binary
// search over the (immutable) bounds plus two atomic adds.
type Histogram struct {
	bounds []float64       // ascending upper bounds, excluding +Inf
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-updated
}

func validateBuckets(name string, buckets []float64) []float64 {
	if len(buckets) == 0 {
		panic(fmt.Sprintf("telemetry: histogram %q needs at least one bucket bound", name))
	}
	for i := 1; i < len(buckets); i++ {
		if buckets[i] <= buckets[i-1] {
			panic(fmt.Sprintf("telemetry: histogram %q bucket bounds not ascending: %v", name, buckets))
		}
	}
	out := make([]float64, len(buckets))
	copy(out, buckets)
	return out
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{bounds: bounds, counts: make([]atomic.Uint64, len(bounds)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nv := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// sample renders the histogram with cumulative bucket counts.
func (h *Histogram) sample(name string, labels []Label) Sample {
	s := Sample{Name: name, Labels: labels, Kind: KindHistogram, Value: h.Sum(), Count: h.Count()}
	var cum uint64
	for i, b := range h.bounds {
		cum += h.counts[i].Load()
		s.Buckets = append(s.Buckets, Bucket{UpperBound: b, Count: cum})
	}
	cum += h.counts[len(h.bounds)].Load()
	s.Buckets = append(s.Buckets, Bucket{UpperBound: math.Inf(1), Count: cum})
	return s
}

// DefBuckets is a general-purpose set of duration buckets in seconds,
// spanning 1 ms to ~100 s geometrically.
var DefBuckets = []float64{0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100}
