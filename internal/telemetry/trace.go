package telemetry

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
)

// TraceEvent is one Chrome trace_event record. The JSON field names follow
// the Trace Event Format specification consumed by chrome://tracing and
// Perfetto; only the event phases the simulator emits are modelled.
type TraceEvent struct {
	// Name labels the event in the timeline.
	Name string `json:"name"`
	// Phase is the event type: "X" complete, "i" instant, "C" counter,
	// "M" metadata.
	Phase string `json:"ph"`
	// Ts is the event timestamp. The viewer interprets it as microseconds;
	// the simulator emits core-clock cycles, so one timeline microsecond
	// reads as one simulated cycle.
	Ts int64 `json:"ts"`
	// Dur is the duration of a complete ("X") event, in the same unit.
	Dur int64 `json:"dur,omitempty"`
	// Pid and Tid place the event on a (process, thread) lane; the
	// simulator maps hardware units onto lanes (e.g. one process per
	// component class, one thread per SM).
	Pid int `json:"pid"`
	Tid int `json:"tid"`
	// Args carries event payload (counter series, metadata names, stats).
	Args map[string]any `json:"args,omitempty"`
}

// Trace accumulates Chrome trace_event records. Safe for concurrent use;
// events are kept in emission order, and WriteJSON output is deterministic
// for a deterministic emission sequence (map-valued args marshal with
// sorted keys).
type Trace struct {
	mu     sync.Mutex
	events []TraceEvent
}

// NewTrace builds an empty trace.
func NewTrace() *Trace { return &Trace{} }

func (t *Trace) emit(ev TraceEvent) {
	t.mu.Lock()
	t.events = append(t.events, ev)
	t.mu.Unlock()
}

// NameProcess labels the process lane pid (a metadata event; Chrome shows
// the name as the lane-group header).
func (t *Trace) NameProcess(pid int, name string) {
	t.emit(TraceEvent{Name: "process_name", Phase: "M", Pid: pid, Args: map[string]any{"name": name}})
}

// NameThread labels the thread lane (pid, tid).
func (t *Trace) NameThread(pid, tid int, name string) {
	t.emit(TraceEvent{Name: "thread_name", Phase: "M", Pid: pid, Tid: tid, Args: map[string]any{"name": name}})
}

// Span records a complete ("X") event: name occupied lane (pid, tid) from
// ts for dur time units. args may be nil.
func (t *Trace) Span(pid, tid int, name string, ts, dur int64, args map[string]any) {
	t.emit(TraceEvent{Name: name, Phase: "X", Ts: ts, Dur: dur, Pid: pid, Tid: tid, Args: args})
}

// Instant records an instant ("i") event at ts on lane (pid, tid).
func (t *Trace) Instant(pid, tid int, name string, ts int64) {
	t.emit(TraceEvent{Name: name, Phase: "i", Ts: ts, Pid: pid, Tid: tid, Args: map[string]any{"s": "t"}})
}

// CounterEvent records a counter ("C") event: the named series values at
// ts, which Chrome renders as a stacked area track on the pid lane.
func (t *Trace) CounterEvent(pid int, name string, ts int64, series map[string]float64) {
	args := make(map[string]any, len(series))
	for k, v := range series {
		args[k] = v
	}
	t.emit(TraceEvent{Name: name, Phase: "C", Ts: ts, Pid: pid, Args: args})
}

// Len returns the number of recorded events.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// Events returns a copy of the recorded events in emission order.
func (t *Trace) Events() []TraceEvent {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]TraceEvent, len(t.events))
	copy(out, t.events)
	return out
}

// WriteJSON renders the trace in the JSON-array trace_event form (one
// event object per line), directly loadable by chrome://tracing and
// Perfetto.
func (t *Trace) WriteJSON(w io.Writer) error {
	events := t.Events()
	if _, err := io.WriteString(w, "[\n"); err != nil {
		return err
	}
	for i, ev := range events {
		b, err := json.Marshal(ev)
		if err != nil {
			return fmt.Errorf("telemetry: trace event %d: %w", i, err)
		}
		sep := ",\n"
		if i == len(events)-1 {
			sep = "\n"
		}
		if _, err := w.Write(append(b, sep...)); err != nil {
			return err
		}
	}
	_, err := io.WriteString(w, "]\n")
	return err
}
