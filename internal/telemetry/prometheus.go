package telemetry

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every metric in the Prometheus text exposition
// format (version 0.0.4): a # HELP / # TYPE header per family followed by
// one line per child, families and children in sorted order so the output
// is deterministic for a given metric state.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	type family struct {
		name, help string
		kind       Kind
		samples    Snapshot
	}
	families := make([]family, 0, len(names))
	for _, name := range names {
		e := r.metrics[name]
		f := family{name: name, help: e.help, kind: e.kind}
		switch {
		case e.counter != nil:
			f.samples = Snapshot{{Name: name, Kind: KindCounter, Value: float64(e.counter.Value())}}
		case e.gauge != nil:
			f.samples = Snapshot{{Name: name, Kind: KindGauge, Value: e.gauge.Value()}}
		case e.hist != nil:
			f.samples = Snapshot{e.hist.sample(name, nil)}
		case e.cvec != nil:
			f.samples = e.cvec.appendSamples(nil, name)
		case e.gvec != nil:
			f.samples = e.gvec.appendSamples(nil, name)
		case e.hvec != nil:
			f.samples = e.hvec.appendSamples(nil, name)
		}
		sort.Slice(f.samples, func(i, j int) bool { return f.samples[i].less(f.samples[j]) })
		families = append(families, f)
	}
	r.mu.Unlock()

	for _, f := range families {
		if f.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.name, escapeHelp(f.help)); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind); err != nil {
			return err
		}
		for _, s := range f.samples {
			if err := writeSample(w, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSample(w io.Writer, s Sample) error {
	switch s.Kind {
	case KindCounter, KindGauge:
		_, err := fmt.Fprintf(w, "%s%s %s\n", s.Name, labelString(s.Labels, nil), formatValue(s.Value))
		return err
	case KindHistogram:
		for _, b := range s.Buckets {
			le := Label{Name: "le", Value: formatUpperBound(b.UpperBound)}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", s.Name, labelString(s.Labels, &le), b.Count); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", s.Name, labelString(s.Labels, nil), formatValue(s.Value)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", s.Name, labelString(s.Labels, nil), s.Count)
		return err
	}
	return fmt.Errorf("telemetry: cannot export sample of kind %v", s.Kind)
}

// labelString renders {a="x",b="y"}, appending the optional extra label
// (the histogram le), or "" when there are no labels at all.
func labelString(labels []Label, extra *Label) string {
	if len(labels) == 0 && extra == nil {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", l.Name, escapeLabelValue(l.Value))
	}
	if extra != nil {
		if len(labels) > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=\"%s\"", extra.Name, escapeLabelValue(extra.Value))
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return strings.ReplaceAll(v, "\n", `\n`)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func formatUpperBound(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
