package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update-golden", false, "rewrite the trace golden file")

// goldenTrace builds the fixed trace the golden file captures: two SM
// lanes, an L2 bank lane, a DRAM counter track, and an instant marker.
func goldenTrace() *Trace {
	tr := NewTrace()
	tr.NameProcess(1, "SMs")
	tr.NameThread(1, 0, "SM 0")
	tr.NameThread(1, 1, "SM 1")
	tr.NameProcess(2, "L2 banks")
	tr.NameThread(2, 0, "L2 bank 0")
	tr.Span(1, 0, "kernel_a", 0, 120, map[string]any{"instructions": 64, "l1_reads": 32})
	tr.Span(1, 1, "kernel_a", 0, 118, nil)
	tr.Span(2, 0, "kernel_a", 5, 110, map[string]any{"reads": 40, "read_misses": 8})
	tr.CounterEvent(3, "dram_ch0", 120, map[string]float64{"served": 12, "row_hits": 9})
	tr.Instant(1, 0, "stall", 60)
	return tr
}

func TestTraceGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join("testdata", "trace_golden.json")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Errorf("trace output differs from golden file %s (re-run with -update-golden after intentional changes)\ngot:\n%s\nwant:\n%s",
			path, buf.Bytes(), want)
	}
}

// TestTraceLoadsAsEventArray asserts the exported JSON is the
// array-of-events trace_event form chrome://tracing accepts: a JSON array
// whose elements carry ph/pid/tid and the phase-appropriate fields.
func TestTraceLoadsAsEventArray(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("trace JSON is not an event array: %v", err)
	}
	if len(events) != goldenTrace().Len() {
		t.Fatalf("decoded %d events, want %d", len(events), goldenTrace().Len())
	}
	phases := map[string]int{}
	for i, ev := range events {
		ph, ok := ev["ph"].(string)
		if !ok {
			t.Fatalf("event %d has no ph field: %v", i, ev)
		}
		phases[ph]++
		if _, ok := ev["pid"].(float64); !ok {
			t.Errorf("event %d has no numeric pid: %v", i, ev)
		}
		if ph == "X" {
			if _, ok := ev["dur"].(float64); !ok {
				t.Errorf("complete event %d has no dur: %v", i, ev)
			}
		}
	}
	for _, ph := range []string{"M", "X", "C", "i"} {
		if phases[ph] == 0 {
			t.Errorf("no %q-phase events in trace", ph)
		}
	}
}

func TestTraceEmptyWritesValidArray(t *testing.T) {
	var buf bytes.Buffer
	if err := NewTrace().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("empty trace JSON invalid: %v", err)
	}
	if len(events) != 0 {
		t.Errorf("empty trace decoded %d events", len(events))
	}
}
