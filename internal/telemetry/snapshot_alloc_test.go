package telemetry

import (
	"fmt"
	"testing"
)

// populateRegistry fills a registry with a representative mix: plain
// counters and gauges, a histogram, and labeled families with several
// children each.
func populateRegistry() *Registry {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		r.Counter(fmt.Sprintf("plain_counter_%d", i), "t").Add(uint64(i))
		r.Gauge(fmt.Sprintf("plain_gauge_%d", i), "t").Set(float64(i))
	}
	r.Histogram("plain_hist", "t", []float64{1, 10, 100}).Observe(5)
	cv := r.CounterVec("family_counter", "t", "phase")
	gv := r.GaugeVec("family_gauge", "t", "phase")
	hv := r.HistogramVec("family_hist", "t", []float64{1, 10}, "phase")
	for i := 0; i < 6; i++ {
		phase := fmt.Sprintf("phase-%d", i)
		cv.With(phase).Inc()
		gv.With(phase).Set(1)
		hv.With(phase).Observe(float64(i))
	}
	return r
}

// TestSnapshotAllocsBounded pins the allocation behaviour of Snapshot and
// Delta: the result slices are pre-sized from the registry's series count,
// so the cost is a small constant per series (label and bucket copies),
// never repeated slice growth.
func TestSnapshotAllocsBounded(t *testing.T) {
	r := populateRegistry()
	prev := r.Snapshot()
	series := len(prev)
	if series == 0 {
		t.Fatal("empty snapshot")
	}

	snapAllocs := testing.AllocsPerRun(20, func() { r.Snapshot() })
	// Result and sort-key slices, plus a small constant per series: only
	// family children pay label/sort-key allocations and only histograms
	// pay a bucket copy. Before the pre-sizing and key-caching work this
	// was ~7 allocations per series from repeated slice growth and
	// comparator-time key rendering.
	if max := float64(3*series + 8); snapAllocs > max {
		t.Errorf("Snapshot over %d series = %.0f allocs, want <= %.0f", series, snapAllocs, max)
	}

	deltaAllocs := testing.AllocsPerRun(20, func() { r.Snapshot().Delta(prev) })
	if max := float64(4*series + 8); deltaAllocs > max {
		t.Errorf("Snapshot+Delta over %d series = %.0f allocs, want <= %.0f", series, deltaAllocs, max)
	}
}

// BenchmarkRegistrySnapshot measures a scrape of a settled registry — the
// /metrics and monitor-loop hot path.
func BenchmarkRegistrySnapshot(b *testing.B) {
	r := populateRegistry()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Snapshot()
	}
}
