package telemetry

import (
	"fmt"
	"strings"
	"sync"
)

// vec is the shared child table of a labeled metric family. With resolves a
// label-value tuple to its child under a read-lock fast path; hot-path
// callers resolve once and keep the child pointer, so the table is touched
// only at setup time.
type vec[T any] struct {
	labels []string
	mu     sync.RWMutex
	kids   map[string]*T
	mk     func() *T
}

func newVec[T any](labels []string, mk func() *T) *vec[T] {
	return &vec[T]{labels: labels, kids: make(map[string]*T), mk: mk}
}

func (v *vec[T]) with(family string, values []string) *T {
	if len(values) != len(v.labels) {
		panic(fmt.Sprintf("telemetry: %q wants %d label values %v, got %v", family, len(v.labels), v.labels, values))
	}
	key := strings.Join(values, "\x00")
	v.mu.RLock()
	k, ok := v.kids[key]
	v.mu.RUnlock()
	if ok {
		return k
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if k, ok = v.kids[key]; ok {
		return k
	}
	k = v.mk()
	v.kids[key] = k
	return k
}

// len returns the current child count (the family's series count).
func (v *vec[T]) len() int {
	v.mu.RLock()
	defer v.mu.RUnlock()
	return len(v.kids)
}

// each visits every child with its reconstructed label set.
func (v *vec[T]) each(fn func(labels []Label, child *T)) {
	v.mu.RLock()
	defer v.mu.RUnlock()
	for key, k := range v.kids {
		var values []string
		if key != "" || len(v.labels) > 0 {
			values = strings.Split(key, "\x00")
		}
		labels := make([]Label, len(v.labels))
		for i, name := range v.labels {
			labels[i] = Label{Name: name, Value: values[i]}
		}
		fn(labels, k)
	}
}

// CounterVec is a family of counters distinguished by label values.
type CounterVec struct {
	name string
	v    *vec[Counter]
}

// CounterVec returns the named counter family, creating it on first use.
// Label names are fixed at creation.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	e := r.lookup(name, help, KindCounter, labels, func(e *metricEntry) {
		e.cvec = &CounterVec{name: name, v: newVec(e.labels, func() *Counter { return &Counter{} })}
	})
	if e.cvec == nil {
		panic(fmt.Sprintf("telemetry: %q is a plain counter, not a labeled family", name))
	}
	return e.cvec
}

// With returns the child counter for the label values (creating it on first
// use). Resolve once outside hot loops; the returned pointer stays valid.
func (c *CounterVec) With(values ...string) *Counter { return c.v.with(c.name, values) }

// appendSamples appends one sample per child to out (which the registry
// pre-sizes from the series count, keeping snapshots allocation-lean).
func (c *CounterVec) appendSamples(out Snapshot, name string) Snapshot {
	c.v.each(func(labels []Label, k *Counter) {
		out = append(out, Sample{Name: name, Labels: labels, Kind: KindCounter, Value: float64(k.Value())})
	})
	return out
}

// GaugeVec is a family of gauges distinguished by label values.
type GaugeVec struct {
	name string
	v    *vec[Gauge]
}

// GaugeVec returns the named gauge family, creating it on first use.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	e := r.lookup(name, help, KindGauge, labels, func(e *metricEntry) {
		e.gvec = &GaugeVec{name: name, v: newVec(e.labels, func() *Gauge { return &Gauge{} })}
	})
	if e.gvec == nil {
		panic(fmt.Sprintf("telemetry: %q is a plain gauge, not a labeled family", name))
	}
	return e.gvec
}

// With returns the child gauge for the label values.
func (g *GaugeVec) With(values ...string) *Gauge { return g.v.with(g.name, values) }

func (g *GaugeVec) appendSamples(out Snapshot, name string) Snapshot {
	g.v.each(func(labels []Label, k *Gauge) {
		out = append(out, Sample{Name: name, Labels: labels, Kind: KindGauge, Value: k.Value()})
	})
	return out
}

// HistogramVec is a family of histograms distinguished by label values.
type HistogramVec struct {
	name string
	v    *vec[Histogram]
}

// HistogramVec returns the named histogram family, creating it on first
// use. Every child shares the same bucket bounds.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	e := r.lookup(name, help, KindHistogram, labels, func(e *metricEntry) {
		e.buckets = validateBuckets(name, buckets)
		e.hvec = &HistogramVec{name: name, v: newVec(e.labels, func() *Histogram { return newHistogram(e.buckets) })}
	})
	if e.hvec == nil {
		panic(fmt.Sprintf("telemetry: %q is a plain histogram, not a labeled family", name))
	}
	return e.hvec
}

// With returns the child histogram for the label values.
func (h *HistogramVec) With(values ...string) *Histogram { return h.v.with(h.name, values) }

func (h *HistogramVec) appendSamples(out Snapshot, name string) Snapshot {
	h.v.each(func(labels []Label, k *Histogram) {
		out = append(out, k.sample(name, labels))
	})
	return out
}
