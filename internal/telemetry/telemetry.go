// Package telemetry is the simulator's zero-dependency observability
// substrate: a metrics registry (counters, gauges, histograms, and labeled
// families thereof) with lock-free hot-path updates, deterministic
// snapshot/delta semantics, a Prometheus text-format exporter, and a Chrome
// trace_event JSON exporter for timeline visualisation.
//
// Design constraints, in order:
//
//  1. Hot-path cost. A Counter.Add is a single atomic add on a cached
//     pointer; no map lookup, no allocation, no lock. Callers that update
//     metrics inside a simulation loop resolve the child metric once (at
//     construction or kernel boundary) and keep the pointer.
//  2. Determinism. Metrics only observe; nothing in this package feeds back
//     into simulation state, and Snapshot output is fully sorted, so
//     attaching a registry cannot perturb byte-identical serial-vs-parallel
//     experiment outputs.
//  3. Zero dependencies. Only the standard library is used, so every layer
//     of the simulator may import telemetry without cycles.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Kind discriminates metric types in snapshots and exports.
type Kind int

// Metric kinds.
const (
	// KindCounter is a monotonically increasing count.
	KindCounter Kind = iota + 1
	// KindGauge is a point-in-time value that may go up or down.
	KindGauge
	// KindHistogram is a bucketed distribution with sum and count.
	KindHistogram
)

// String renders the kind as Prometheus TYPE labels it.
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Counter is a monotonically increasing metric. All methods are safe for
// concurrent use; Add is one atomic add.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a point-in-time float64 value. All methods are safe for
// concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (atomically, via compare-and-swap).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		nv := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, nv) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// metricEntry is one registered name: exactly one of the pointers is set.
type metricEntry struct {
	kind    Kind
	help    string
	labels  []string // nil for unlabeled metrics
	buckets []float64
	counter *Counter
	gauge   *Gauge
	hist    *Histogram
	cvec    *CounterVec
	gvec    *GaugeVec
	hvec    *HistogramVec
}

// Registry holds named metrics. Registration methods are get-or-create:
// calling Counter twice with the same name returns the same *Counter, so
// independent components may register shared families without coordination.
// Registering a name twice with a different metric type or label set
// panics — that is a programming error, not a runtime condition.
type Registry struct {
	mu      sync.Mutex
	metrics map[string]*metricEntry
}

// NewRegistry builds an empty registry.
func NewRegistry() *Registry {
	return &Registry{metrics: make(map[string]*metricEntry)}
}

// lookup finds or inserts the entry for name, enforcing kind/label
// consistency.
func (r *Registry) lookup(name, help string, kind Kind, labels []string, mk func(e *metricEntry)) *metricEntry {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := r.metrics[name]
	if !ok {
		e = &metricEntry{kind: kind, help: help, labels: labels}
		mk(e)
		r.metrics[name] = e
		return e
	}
	if e.kind != kind {
		panic(fmt.Sprintf("telemetry: %q re-registered as %v, was %v", name, kind, e.kind))
	}
	if len(e.labels) != len(labels) {
		panic(fmt.Sprintf("telemetry: %q re-registered with labels %v, was %v", name, labels, e.labels))
	}
	for i := range labels {
		if e.labels[i] != labels[i] {
			panic(fmt.Sprintf("telemetry: %q re-registered with labels %v, was %v", name, labels, e.labels))
		}
	}
	return e
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name, help string) *Counter {
	e := r.lookup(name, help, KindCounter, nil, func(e *metricEntry) { e.counter = &Counter{} })
	if e.counter == nil {
		panic(fmt.Sprintf("telemetry: %q is a labeled counter family, not a plain counter", name))
	}
	return e.counter
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	e := r.lookup(name, help, KindGauge, nil, func(e *metricEntry) { e.gauge = &Gauge{} })
	if e.gauge == nil {
		panic(fmt.Sprintf("telemetry: %q is a labeled gauge family, not a plain gauge", name))
	}
	return e.gauge
}

// Histogram returns the named histogram, creating it on first use with the
// given bucket upper bounds (ascending; an implicit +Inf bucket is added).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	e := r.lookup(name, help, KindHistogram, nil, func(e *metricEntry) {
		e.buckets = validateBuckets(name, buckets)
		e.hist = newHistogram(e.buckets)
	})
	if e.hist == nil {
		panic(fmt.Sprintf("telemetry: %q is a labeled histogram family, not a plain histogram", name))
	}
	return e.hist
}

// seriesLocked counts the registry's current series (one per plain metric,
// one per labeled-family child); the caller holds mu.
func (r *Registry) seriesLocked() int {
	n := 0
	for _, e := range r.metrics {
		switch {
		case e.cvec != nil:
			n += e.cvec.v.len()
		case e.gvec != nil:
			n += e.gvec.v.len()
		case e.hvec != nil:
			n += e.hvec.v.len()
		default:
			n++
		}
	}
	return n
}

// snapshotLocked renders the registry's current state; the caller holds mu.
// The result slice is sized to the series count up front, so a snapshot of
// a settled registry costs one slice allocation plus the per-sample label
// and bucket copies.
func (r *Registry) snapshotLocked() Snapshot {
	out := make(Snapshot, 0, r.seriesLocked())
	for name, e := range r.metrics {
		switch {
		case e.counter != nil:
			out = append(out, Sample{Name: name, Kind: KindCounter, Value: float64(e.counter.Value())})
		case e.gauge != nil:
			out = append(out, Sample{Name: name, Kind: KindGauge, Value: e.gauge.Value()})
		case e.hist != nil:
			out = append(out, e.hist.sample(name, nil))
		case e.cvec != nil:
			out = e.cvec.appendSamples(out, name)
		case e.gvec != nil:
			out = e.gvec.appendSamples(out, name)
		case e.hvec != nil:
			out = e.hvec.appendSamples(out, name)
		}
	}
	// Sort by precomputed keys: deriving the key inside the comparator
	// would allocate on every comparison (O(n log n) garbage per scrape).
	keys := make([]string, len(out))
	for i := range out {
		keys[i] = out[i].key()
	}
	sort.Sort(&snapshotSorter{samples: out, keys: keys})
	return out
}

// snapshotSorter orders samples and their cached keys together.
type snapshotSorter struct {
	samples Snapshot
	keys    []string
}

func (s *snapshotSorter) Len() int           { return len(s.samples) }
func (s *snapshotSorter) Less(i, j int) bool { return s.keys[i] < s.keys[j] }
func (s *snapshotSorter) Swap(i, j int) {
	s.samples[i], s.samples[j] = s.samples[j], s.samples[i]
	s.keys[i], s.keys[j] = s.keys[j], s.keys[i]
}

// Snapshot returns a sorted point-in-time copy of every metric. The result
// is detached: later metric updates do not modify it.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.snapshotLocked()
}

// Label is one name/value pair of a labeled metric child.
type Label struct {
	Name  string
	Value string
}

// Bucket is one histogram bucket in a snapshot.
type Bucket struct {
	// UpperBound is the bucket's inclusive upper bound; +Inf for the last.
	UpperBound float64
	// Count is the cumulative observation count at or below UpperBound.
	Count uint64
}

// Sample is one metric child in a snapshot.
type Sample struct {
	// Name is the metric family name.
	Name string
	// Labels identify the child within a labeled family (nil otherwise).
	Labels []Label
	// Kind discriminates the remaining fields.
	Kind Kind
	// Value holds the counter count or gauge value; for histograms it is the
	// sum of observations.
	Value float64
	// Count is the histogram observation count (histograms only).
	Count uint64
	// Buckets are the histogram's cumulative bucket counts (histograms only).
	Buckets []Bucket
}

// key renders the sample's identity (name plus label values) for sorting
// and delta matching.
func (s Sample) key() string {
	k := s.Name
	for _, l := range s.Labels {
		k += "\x00" + l.Name + "\x01" + l.Value
	}
	return k
}

func (s Sample) less(o Sample) bool { return s.key() < o.key() }

// Snapshot is a sorted set of samples; the result of Registry.Snapshot.
type Snapshot []Sample

// Get returns the sample with the given name and labels (in registration
// order), or false.
func (s Snapshot) Get(name string, labels ...Label) (Sample, bool) {
	want := Sample{Name: name, Labels: labels}.key()
	for _, sm := range s {
		if sm.key() == want {
			return sm, true
		}
	}
	return Sample{}, false
}

// Delta returns s minus prev: counter values and histogram counts subtract
// (children absent from prev pass through whole), gauges keep their current
// value. Use it to report per-interval rates from cumulative counters.
func (s Snapshot) Delta(prev Snapshot) Snapshot {
	prevByKey := make(map[string]Sample, len(prev))
	for _, p := range prev {
		prevByKey[p.key()] = p
	}
	out := make(Snapshot, 0, len(s))
	for _, cur := range s {
		p, ok := prevByKey[cur.key()]
		if !ok || cur.Kind == KindGauge {
			out = append(out, cur)
			continue
		}
		d := cur
		switch cur.Kind {
		case KindCounter:
			d.Value = cur.Value - p.Value
		case KindHistogram:
			d.Value = cur.Value - p.Value
			d.Count = cur.Count - p.Count
			d.Buckets = make([]Bucket, len(cur.Buckets))
			copy(d.Buckets, cur.Buckets)
			for i := range d.Buckets {
				if i < len(p.Buckets) {
					d.Buckets[i].Count -= p.Buckets[i].Count
				}
			}
		}
		out = append(out, d)
	}
	return out
}
