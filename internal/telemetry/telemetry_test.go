package telemetry

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterAndGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if again := r.Counter("c_total", "a counter"); again != c {
		t.Error("Counter is not get-or-create: second lookup returned a new instance")
	}

	g := r.Gauge("g", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Errorf("gauge = %g, want 1.5", got)
	}
}

func TestVecChildrenIndependent(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("fam_total", "family", "sm")
	v.With("0").Add(3)
	v.With("1").Inc()
	if a, b := v.With("0").Value(), v.With("1").Value(); a != 3 || b != 1 {
		t.Errorf("children = %d, %d; want 3, 1", a, b)
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "")
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter as a gauge did not panic")
		}
	}()
	r.Gauge("x", "")
}

func TestHistogramBuckets(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat", "latency", []float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Errorf("sum = %g, want 556.5", h.Sum())
	}
	s, ok := r.Snapshot().Get("lat")
	if !ok {
		t.Fatal("histogram missing from snapshot")
	}
	wantCum := []uint64{2, 3, 4, 5} // le=1, le=10, le=100, le=+Inf
	for i, b := range s.Buckets {
		if b.Count != wantCum[i] {
			t.Errorf("bucket %d (le=%g) = %d, want %d", i, b.UpperBound, b.Count, wantCum[i])
		}
	}
	if !math.IsInf(s.Buckets[len(s.Buckets)-1].UpperBound, 1) {
		t.Error("last bucket is not +Inf")
	}
}

func TestSnapshotSortedAndDelta(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("b_total", "", "ch")
	v.With("1").Add(10)
	v.With("0").Add(7)
	r.Gauge("a_gauge", "").Set(3)

	s1 := r.Snapshot()
	for i := 1; i < len(s1); i++ {
		if !s1[i-1].less(s1[i]) {
			t.Fatalf("snapshot not sorted: %q before %q", s1[i-1].key(), s1[i].key())
		}
	}

	v.With("0").Add(5)
	r.Gauge("a_gauge", "").Set(9)
	d := r.Snapshot().Delta(s1)
	if sm, _ := d.Get("b_total", Label{"ch", "0"}); sm.Value != 5 {
		t.Errorf("counter delta = %g, want 5", sm.Value)
	}
	if sm, _ := d.Get("b_total", Label{"ch", "1"}); sm.Value != 0 {
		t.Errorf("unchanged counter delta = %g, want 0", sm.Value)
	}
	if sm, _ := d.Get("a_gauge"); sm.Value != 9 {
		t.Errorf("gauge in delta = %g, want current value 9", sm.Value)
	}
}

func TestConcurrentUpdates(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("conc_total", "", "w")
	h := r.Histogram("conc_hist", "", []float64{10, 100})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := v.With("shared")
			for i := 0; i < 1000; i++ {
				c.Inc()
				h.Observe(float64(i % 200))
			}
		}(w)
	}
	wg.Wait()
	if got := v.With("shared").Value(); got != 8000 {
		t.Errorf("concurrent counter = %d, want 8000", got)
	}
	if got := h.Count(); got != 8000 {
		t.Errorf("concurrent histogram count = %d, want 8000", got)
	}
}

func TestWritePrometheus(t *testing.T) {
	r := NewRegistry()
	r.Counter("dcrm_runs_total", "total runs").Add(42)
	r.CounterVec("dcrm_outcomes_total", "outcomes", "outcome").With(`s"d\c`).Add(3)
	r.Gauge("dcrm_inflight", "in flight").Set(1.5)
	r.Histogram("dcrm_seconds", "durations", []float64{1, 5}).Observe(2)

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP dcrm_runs_total total runs\n# TYPE dcrm_runs_total counter\ndcrm_runs_total 42\n",
		`dcrm_outcomes_total{outcome="s\"d\\c"} 3`,
		"# TYPE dcrm_inflight gauge\ndcrm_inflight 1.5\n",
		`dcrm_seconds_bucket{le="1"} 0`,
		`dcrm_seconds_bucket{le="5"} 1`,
		`dcrm_seconds_bucket{le="+Inf"} 1`,
		"dcrm_seconds_sum 2\n",
		"dcrm_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}
	// Deterministic: a second render is byte-identical.
	var b2 strings.Builder
	if err := r.WritePrometheus(&b2); err != nil {
		t.Fatal(err)
	}
	if b2.String() != out {
		t.Error("WritePrometheus output is not deterministic")
	}
}

func BenchmarkCounterAdd(b *testing.B) {
	r := NewRegistry()
	c := r.CounterVec("bench_total", "", "sm").With("0")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Add(1)
	}
}
