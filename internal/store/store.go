// Package store is the simulator's content-addressed result store: the
// serving fast path that lets repeated work be paid for once. Results are
// addressed by a canonical hash of everything that determines them (see
// Key), served from a byte-budgeted in-memory LRU tier, optionally
// persisted in a corruption-tolerant disk tier so separate invocations
// warm-start from each other, and computed at most once per key among
// concurrent callers by a singleflight coalescer.
//
// Determinism contract: the store only ever returns a value that the keyed
// computation produced (this process or an earlier one). Because every
// computation in this repository is deterministic in its key fields,
// serving from the store is byte-identical to recomputing — the test suite
// gates on exactly that.
package store

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"sync"

	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// DefaultMemBytes is the in-memory tier budget when Config.MemBytes is 0:
// large enough that a full small-scale paper reproduction never evicts,
// small enough to stay a fraction of the workloads it caches.
const DefaultMemBytes = 512 << 20

// defaultEntrySize is the LRU accounting size for entries whose real
// footprint is unknown (no Size estimator and no encoded form).
const defaultEntrySize = 4096

// Config configures a Store.
type Config struct {
	// MemBytes budgets the in-memory tier (0 = DefaultMemBytes).
	MemBytes int64
	// Dir, when non-empty, enables the disk tier rooted there. The
	// directory (and any missing parents) is created on Open.
	Dir string
	// Telemetry, when non-nil, receives the store's hit/miss/eviction and
	// singleflight counters.
	Telemetry *telemetry.Registry
}

// Store is a two-tier content-addressed result store with a singleflight
// front. All methods are safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	mem    *lru
	disk   *diskTier
	flight flightGroup

	memHits, memMisses, evictions      *telemetry.Counter
	diskHits, diskMisses, diskCorrupt  *telemetry.Counter
	computes, flightShared, diskErrors *telemetry.Counter
	memBytes, memEntries               *telemetry.Gauge
}

// Open builds a store. With cfg.Dir set, the disk tier directory is
// created (parents included) so callers can point -store-dir at a path
// that does not exist yet.
func Open(cfg Config) (*Store, error) {
	budget := cfg.MemBytes
	if budget <= 0 {
		budget = DefaultMemBytes
	}
	s := &Store{mem: newLRU(budget)}
	if cfg.Dir != "" {
		d, err := newDiskTier(cfg.Dir)
		if err != nil {
			return nil, err
		}
		s.disk = d
	}
	if reg := cfg.Telemetry; reg != nil {
		s.memHits = reg.Counter("dcrm_store_mem_hits_total",
			"Result-store in-memory tier hits.")
		s.memMisses = reg.Counter("dcrm_store_mem_misses_total",
			"Result-store in-memory tier misses.")
		s.evictions = reg.Counter("dcrm_store_mem_evictions_total",
			"Result-store entries evicted by the in-memory byte budget.")
		s.diskHits = reg.Counter("dcrm_store_disk_hits_total",
			"Result-store disk tier hits.")
		s.diskMisses = reg.Counter("dcrm_store_disk_misses_total",
			"Result-store disk tier misses.")
		s.diskCorrupt = reg.Counter("dcrm_store_disk_corrupt_total",
			"Result-store disk entries dropped as corrupt (treated as misses).")
		s.diskErrors = reg.Counter("dcrm_store_disk_errors_total",
			"Result-store disk write/encode failures (entry served from memory only).")
		s.computes = reg.Counter("dcrm_store_computes_total",
			"Result-store misses that ran the underlying computation.")
		s.flightShared = reg.Counter("dcrm_store_flight_shared_total",
			"Store lookups that joined another caller's in-flight computation.")
		s.memBytes = reg.Gauge("dcrm_store_mem_bytes",
			"Result-store in-memory tier resident bytes.")
		s.memEntries = reg.Gauge("dcrm_store_mem_entries",
			"Result-store in-memory tier resident entries.")
	}
	return s, nil
}

// HasDisk reports whether a disk tier is configured.
func (s *Store) HasDisk() bool { return s != nil && s.disk != nil }

// InFlight reports whether key is currently being computed by some caller.
func (s *Store) InFlight(key Key) bool {
	if s == nil {
		return false
	}
	s.flight.mu.Lock()
	defer s.flight.mu.Unlock()
	_, ok := s.flight.calls[key.Hash()]
	return ok
}

// Contains reports whether key is resident in the in-memory tier.
func (s *Store) Contains(key Key) bool {
	if s == nil {
		return false
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.mem.items[key.Hash()]
	return ok
}

func inc(c *telemetry.Counter) {
	if c != nil {
		c.Inc()
	}
}

func add(c *telemetry.Counter, n uint64) {
	if c != nil && n > 0 {
		c.Add(n)
	}
}

// memGet is the locked memory-tier lookup.
func (s *Store) memGet(hash string) (any, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.mem.get(hash)
}

// memPut admits a value and publishes the tier gauges.
func (s *Store) memPut(hash string, v any, size int64) {
	s.mu.Lock()
	evicted := s.mem.put(hash, v, size)
	bytes, entries := s.mem.bytes(), s.mem.len()
	s.mu.Unlock()
	add(s.evictions, uint64(evicted))
	if s.memBytes != nil {
		s.memBytes.Set(float64(bytes))
		s.memEntries.Set(float64(entries))
	}
}

// UpdateSize re-accounts the in-memory entry for key — used by live values
// (checkpoints) whose footprint grows after admission as lazy artifacts
// materialize, so the byte budget reflects what is actually resident.
// Eviction pressure is applied immediately; the updated entry itself is
// never the one evicted. A size above the whole memory budget drops the
// entry (matching admission). Unknown keys and a nil store are no-ops.
func (s *Store) UpdateSize(key Key, size int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	evicted := s.mem.resize(key.Hash(), size)
	bytes, entries := s.mem.bytes(), s.mem.len()
	s.mu.Unlock()
	add(s.evictions, uint64(evicted))
	if s.memBytes != nil {
		s.memBytes.Set(float64(bytes))
		s.memEntries.Set(float64(entries))
	}
}

// Options tunes one Do call.
type Options[T any] struct {
	// Persist round-trips the value through the disk tier (when one is
	// configured) via encoding/gob; T must be gob-encodable (exported
	// fields only, no interface-typed fields). Leave false for live
	// objects that only make sense inside one process.
	Persist bool
	// Size estimates the value's in-memory footprint for LRU accounting.
	// When nil, the encoded size is used for persisted entries and a small
	// default otherwise.
	Size func(T) int64
}

// Do returns the stored value for key, computing it (at most once among
// concurrent callers) on a miss. A nil store degenerates to calling
// compute directly — the storeless path. Values returned from the store
// are shared; callers must treat them as read-only.
func Do[T any](s *Store, key Key, opt Options[T], compute func() (T, error)) (T, error) {
	var zero T
	if s == nil {
		return compute()
	}
	if v, ok := s.memGet(key.Hash()); ok {
		tv, ok := v.(T)
		if !ok {
			return zero, typeMismatch[T](key, v)
		}
		inc(s.memHits)
		return tv, nil
	}
	inc(s.memMisses)
	admit := func(tv T, encodedSize int64) {
		size := encodedSize
		if opt.Size != nil {
			size = opt.Size(tv)
		}
		if size < 0 {
			size = defaultEntrySize
		}
		s.memPut(key.Hash(), tv, size)
	}
	v, err, shared := s.flight.do(key.Hash(), func() (any, error) {
		// A caller that lost the admission race re-checks memory before
		// paying for disk or compute.
		if v, ok := s.memGet(key.Hash()); ok {
			if _, isT := v.(T); !isT {
				return nil, typeMismatch[T](key, v)
			}
			return v, nil
		}
		if s.disk != nil && opt.Persist {
			if tv, size, ok := diskLoad[T](s, key); ok {
				admit(tv, size)
				return tv, nil
			}
		}
		inc(s.computes)
		tv, err := compute()
		if err != nil {
			return nil, err
		}
		size := int64(-1)
		if s.disk != nil && opt.Persist {
			size = s.diskStore(key, tv)
		}
		admit(tv, size)
		return tv, nil
	})
	if shared {
		inc(s.flightShared)
	}
	if err != nil {
		return zero, err
	}
	tv, ok := v.(T)
	if !ok {
		return zero, typeMismatch[T](key, v)
	}
	return tv, nil
}

// typeMismatch reports that two call sites hashed different value types to
// one key — a programming error; surface it rather than serving a wrong
// type.
func typeMismatch[T any](key Key, got any) error {
	var zero T
	return fmt.Errorf("store: key %q holds %T, caller wants %T", key.String(), got, zero)
}

// diskLoad reads and decodes a persisted entry; any corruption (including
// a payload that no longer decodes as T) counts as a miss.
func diskLoad[T any](s *Store, key Key) (tv T, size int64, ok bool) {
	payload, found, corrupt := s.disk.read(key.Hash())
	if corrupt {
		inc(s.diskCorrupt)
	}
	if !found {
		inc(s.diskMisses)
		return tv, 0, false
	}
	if err := gob.NewDecoder(bytes.NewReader(payload)).Decode(&tv); err != nil {
		inc(s.diskCorrupt)
		inc(s.diskMisses)
		return tv, 0, false
	}
	inc(s.diskHits)
	return tv, int64(len(payload)), true
}

// diskStore encodes and persists a computed value (best effort: a disk
// failure degrades to memory-only serving). Returns the encoded size, or
// -1 when encoding failed.
func (s *Store) diskStore(key Key, v any) int64 {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		inc(s.diskErrors)
		return -1
	}
	if err := s.disk.write(key.Hash(), buf.Bytes()); err != nil {
		inc(s.diskErrors)
	}
	return int64(buf.Len())
}
