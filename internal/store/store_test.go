package store

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

func counterValue(t *testing.T, reg *telemetry.Registry, name string) float64 {
	t.Helper()
	s, ok := reg.Snapshot().Get(name)
	if !ok {
		t.Fatalf("no sample %q", name)
	}
	return s.Value
}

func TestKeyCanonicalAndStable(t *testing.T) {
	a := NewKey("fig6").Field("app", "P-BICG").Field("runs", 100).Key()
	b := NewKey("fig6").Field("app", "P-BICG").Field("runs", 100).Key()
	if a.Hash() != b.Hash() || a.String() != b.String() {
		t.Fatalf("identical inputs produced different keys: %v vs %v", a, b)
	}
	c := NewKey("fig6").Field("app", "P-BICG").Field("runs", 101).Key()
	if a.Hash() == c.Hash() {
		t.Fatalf("different inputs collided: %v vs %v", a, c)
	}
	d := NewKey("fig9").Field("app", "P-BICG").Field("runs", 100).Key()
	if a.Hash() == d.Hash() {
		t.Fatal("namespace not folded into the key")
	}
	if a.IsZero() || (Key{}).IsZero() == false {
		t.Fatal("IsZero wrong")
	}
}

func TestDoMemoizesAndCountsHits(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Open(Config{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	var computes atomic.Int64
	k := NewKey("t").Field("x", 1).Key()
	for i := 0; i < 5; i++ {
		v, err := Do(s, k, Options[int]{}, func() (int, error) {
			computes.Add(1)
			return 42, nil
		})
		if err != nil || v != 42 {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times, want 1", n)
	}
	if got := counterValue(t, reg, "dcrm_store_mem_hits_total"); got != 4 {
		t.Errorf("mem hits = %v, want 4", got)
	}
	if got := counterValue(t, reg, "dcrm_store_computes_total"); got != 1 {
		t.Errorf("computes = %v, want 1", got)
	}
}

func TestDoErrorsAreNotCached(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("t").Field("x", 1).Key()
	calls := 0
	for i := 0; i < 2; i++ {
		_, err := Do(s, k, Options[int]{}, func() (int, error) {
			calls++
			return 0, fmt.Errorf("boom %d", calls)
		})
		if err == nil {
			t.Fatal("expected error")
		}
	}
	if calls != 2 {
		t.Fatalf("error was cached: %d calls, want 2", calls)
	}
	v, err := Do(s, k, Options[int]{}, func() (int, error) { return 7, nil })
	if err != nil || v != 7 {
		t.Fatalf("recovery Do = %v, %v", v, err)
	}
}

func TestNilStoreIsStoreless(t *testing.T) {
	calls := 0
	for i := 0; i < 3; i++ {
		v, err := Do[int](nil, NewKey("t").Key(), Options[int]{}, func() (int, error) {
			calls++
			return calls, nil
		})
		if err != nil || v != calls {
			t.Fatalf("Do = %v, %v", v, err)
		}
	}
	if calls != 3 {
		t.Fatalf("nil store cached: %d calls, want 3", calls)
	}
}

func TestLRUEvictsByByteBudget(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Open(Config{MemBytes: 100, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) Key { return NewKey("t").Field("i", i).Key() }
	size := func([]byte) int64 { return 40 }
	mk := func(i int) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte{byte(i)}, nil }
	}
	for i := 0; i < 3; i++ { // 3 × 40 B > 100 B budget → entry 0 evicted
		if _, err := Do(s, key(i), Options[[]byte]{Size: size}, mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	if s.Contains(key(0)) {
		t.Error("coldest entry still resident past the byte budget")
	}
	if !s.Contains(key(1)) || !s.Contains(key(2)) {
		t.Error("hot entries evicted")
	}
	if got := counterValue(t, reg, "dcrm_store_mem_evictions_total"); got != 1 {
		t.Errorf("evictions = %v, want 1", got)
	}
	// An entry larger than the whole budget is served but not admitted.
	big := NewKey("t").Field("i", "big").Key()
	if _, err := Do(s, big, Options[[]byte]{Size: func([]byte) int64 { return 1000 }}, mk(9)); err != nil {
		t.Fatal(err)
	}
	if s.Contains(big) {
		t.Error("oversized entry admitted")
	}
}

func TestSingleflightCoalesces(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Open(Config{Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("t").Field("x", 1).Key()
	var computes atomic.Int64
	gate := make(chan struct{})
	const callers = 16
	var wg sync.WaitGroup
	results := make([]int, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err := Do(s, k, Options[int]{}, func() (int, error) {
				computes.Add(1)
				<-gate // hold the flight open so everyone piles on
				return 99, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
		}(i)
	}
	for !s.InFlight(k) { // wait until the first caller owns the flight
		runtime.Gosched()
	}
	// Give the remaining callers time to reach the flight before releasing
	// it, so the shared counter has something to count.
	time.Sleep(20 * time.Millisecond)
	close(gate)
	wg.Wait()
	if n := computes.Load(); n != 1 {
		t.Fatalf("computed %d times under concurrency, want 1", n)
	}
	for i, v := range results {
		if v != 99 {
			t.Fatalf("caller %d got %d", i, v)
		}
	}
	shared := counterValue(t, reg, "dcrm_store_flight_shared_total")
	if shared == 0 {
		t.Error("no caller recorded as joining the shared flight")
	}
}

type diskVal struct {
	Name   string
	Series []float64
}

func TestDiskTierRoundTrip(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "deeper", "store")
	reg := telemetry.NewRegistry()
	s1, err := Open(Config{Dir: dir, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("t").Field("x", 1).Key()
	want := diskVal{Name: "p", Series: []float64{1.5, 2.25, -3}}
	if _, err := Do(s1, k, Options[diskVal]{Persist: true}, func() (diskVal, error) { return want, nil }); err != nil {
		t.Fatal(err)
	}

	// A second store over the same directory serves from disk without
	// computing.
	s2, err := Open(Config{Dir: dir, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Do(s2, k, Options[diskVal]{Persist: true}, func() (diskVal, error) {
		t.Fatal("computed despite a persisted entry")
		return diskVal{}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got.Name != want.Name || len(got.Series) != len(want.Series) {
		t.Fatalf("disk round trip = %+v, want %+v", got, want)
	}
	for i := range want.Series {
		if got.Series[i] != want.Series[i] {
			t.Fatalf("series[%d] = %v, want %v", i, got.Series[i], want.Series[i])
		}
	}
	if hits := counterValue(t, reg, "dcrm_store_disk_hits_total"); hits != 1 {
		t.Errorf("disk hits = %v, want 1", hits)
	}
}

func TestDiskTierToleratesCorruption(t *testing.T) {
	dir := t.TempDir()
	reg := telemetry.NewRegistry()
	k := NewKey("t").Field("x", 1).Key()
	corruptions := []struct {
		name string
		mut  func(path string) error
	}{
		{"truncated", func(p string) error { return os.Truncate(p, 10) }},
		{"bit-flipped", func(p string) error {
			raw, err := os.ReadFile(p)
			if err != nil {
				return err
			}
			raw[len(raw)-1] ^= 0xff
			return os.WriteFile(p, raw, 0o644)
		}},
		{"foreign-magic", func(p string) error {
			return os.WriteFile(p, []byte("not a store file at all"), 0o644)
		}},
	}
	for _, c := range corruptions {
		t.Run(c.name, func(t *testing.T) {
			s, err := Open(Config{Dir: dir, Telemetry: reg})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Do(s, k, Options[diskVal]{Persist: true}, func() (diskVal, error) {
				return diskVal{Name: "v"}, nil
			}); err != nil {
				t.Fatal(err)
			}
			path := s.disk.path(k.Hash())
			if err := c.mut(path); err != nil {
				t.Fatal(err)
			}
			// A fresh store (empty memory tier) must treat the damaged file
			// as a miss and recompute, not fail.
			s2, err := Open(Config{Dir: dir, Telemetry: reg})
			if err != nil {
				t.Fatal(err)
			}
			recomputed := false
			got, err := Do(s2, k, Options[diskVal]{Persist: true}, func() (diskVal, error) {
				recomputed = true
				return diskVal{Name: "v"}, nil
			})
			if err != nil {
				t.Fatalf("corrupt entry surfaced an error: %v", err)
			}
			if !recomputed || got.Name != "v" {
				t.Fatalf("recomputed=%v got=%+v", recomputed, got)
			}
			if _, err := os.Stat(path); err == nil {
				// write-back happens on the recompute, so the path may exist
				// again — but it must now read back clean.
				if _, found, corrupt := s2.disk.read(k.Hash()); corrupt || !found {
					t.Error("recomputed entry did not heal the disk file")
				}
			}
		})
	}
	if c := counterValue(t, reg, "dcrm_store_disk_corrupt_total"); c < 3 {
		t.Errorf("corrupt counter = %v, want >= 3", c)
	}
}

// TestOpenCreatesNestedDir is the parent-directory regression contract for
// -store-dir: pointing any CLI at a path whose parents do not exist yet
// must work on the first run in a fresh checkout.
func TestOpenCreatesNestedDir(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "a", "b", "c")
	if _, err := Open(Config{Dir: dir}); err != nil {
		t.Fatalf("Open(%s) = %v", dir, err)
	}
	if fi, err := os.Stat(dir); err != nil || !fi.IsDir() {
		t.Fatalf("store dir not created: %v", err)
	}
}

func TestTypeMismatchSurfacesError(t *testing.T) {
	s, err := Open(Config{})
	if err != nil {
		t.Fatal(err)
	}
	k := NewKey("t").Field("x", 1).Key()
	if _, err := Do(s, k, Options[int]{}, func() (int, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if _, err := Do(s, k, Options[string]{}, func() (string, error) { return "x", nil }); err == nil {
		t.Fatal("one key serving two types did not error")
	}
}
