package store

import "sync"

// flightCall is one in-progress computation; joiners block on done.
type flightCall struct {
	done chan struct{}
	val  any
	err  error
}

// flightGroup coalesces concurrent computations of the same key: the first
// caller runs fn, everyone who arrives while it is in flight blocks and
// shares the result. Unlike the store tiers, the group holds nothing after
// the call returns — errors are never cached, and completed results are the
// tiers' responsibility.
type flightGroup struct {
	mu    sync.Mutex
	calls map[string]*flightCall
}

// do runs fn once per key among concurrent callers. The returned bool
// reports whether this caller joined another caller's flight rather than
// running fn itself.
func (g *flightGroup) do(key string, fn func() (any, error)) (any, error, bool) {
	g.mu.Lock()
	if g.calls == nil {
		g.calls = make(map[string]*flightCall)
	}
	if c, ok := g.calls[key]; ok {
		g.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &flightCall{done: make(chan struct{})}
	g.calls[key] = c
	g.mu.Unlock()

	c.val, c.err = fn()

	g.mu.Lock()
	delete(g.calls, key)
	g.mu.Unlock()
	close(c.done)
	return c.val, c.err, false
}
