package store

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"strings"
)

// Key is the content address of one stored result: the canonical rendering
// of every input that determines the result, plus its SHA-256 digest. Two
// computations share a cache entry exactly when their canonical strings are
// equal, so every field that can change the output — application, scheme,
// protection level, simulator configuration, code version — must be folded
// in by the caller.
type Key struct {
	canonical string
	hash      string
}

// String returns the canonical key text (for logs and tests).
func (k Key) String() string { return k.canonical }

// Hash returns the hex SHA-256 of the canonical text — the address used by
// both store tiers and the disk tier's file name.
func (k Key) Hash() string { return k.hash }

// IsZero reports whether the key was never built.
func (k Key) IsZero() bool { return k.hash == "" }

// KeyBuilder accumulates named fields into a canonical key. Field order is
// part of the canonical form, so callers must append fields in a fixed
// order (every call site in this repository does; there is no sorting).
type KeyBuilder struct {
	ns     string
	fields []string
}

// NewKey starts a key in the given namespace (e.g. "fig6", "profile").
func NewKey(namespace string) *KeyBuilder {
	return &KeyBuilder{ns: namespace}
}

// Field appends one named input, rendered with %+v. Values must have a
// deterministic rendering: structs of scalars, slices, and strings are
// fine; maps are not (iteration order would leak into the key).
func (b *KeyBuilder) Field(name string, v any) *KeyBuilder {
	b.fields = append(b.fields, fmt.Sprintf("%s=%+v", name, v))
	return b
}

// Key finalizes the canonical form and digests it.
func (b *KeyBuilder) Key() Key {
	canonical := b.ns + "{" + strings.Join(b.fields, "|") + "}"
	sum := sha256.Sum256([]byte(canonical))
	return Key{canonical: canonical, hash: hex.EncodeToString(sum[:])}
}
