package store

import (
	"bytes"
	"crypto/sha256"
	"fmt"
	"os"
	"path/filepath"
)

// diskMagic versions the on-disk entry format. Bump it when the layout
// changes: old files then read as corrupt and are silently recomputed.
var diskMagic = []byte("dcrmsto1")

const diskHeaderLen = 8 + sha256.Size

// diskTier persists encoded entries under dir, fanned out by hash prefix
// so no single directory grows unbounded. Every file is
//
//	magic[8] | sha256(payload)[32] | payload
//
// written to a temp file and atomically renamed into place, so readers
// never observe a partial entry and concurrent writers of the same key
// settle on one complete file.
type diskTier struct {
	dir string
}

func newDiskTier(dir string) (*diskTier, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: disk tier: %w", err)
	}
	return &diskTier{dir: dir}, nil
}

func (d *diskTier) path(hash string) string {
	return filepath.Join(d.dir, hash[:2], hash+".bin")
}

// read returns the payload for hash, or ok=false on a miss. Corrupt
// entries — truncated files, checksum mismatches, a foreign magic — are
// deleted and reported as a miss with corrupt=true: the store treats the
// key as absent and recomputes, so a torn disk never fails a run.
func (d *diskTier) read(hash string) (payload []byte, ok, corrupt bool) {
	raw, err := os.ReadFile(d.path(hash))
	if err != nil {
		return nil, false, false
	}
	if len(raw) < diskHeaderLen || !bytes.Equal(raw[:8], diskMagic) {
		os.Remove(d.path(hash))
		return nil, false, true
	}
	payload = raw[diskHeaderLen:]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(raw[8:diskHeaderLen], sum[:]) {
		os.Remove(d.path(hash))
		return nil, false, true
	}
	return payload, true, false
}

// write persists payload for hash atomically: temp file in the final
// directory, fsync-free rename. A failure leaves at most a stray temp
// file, never a readable-but-wrong entry.
func (d *diskTier) write(hash string, payload []byte) error {
	dir := filepath.Dir(d.path(hash))
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	f, err := os.CreateTemp(dir, ".tmp-*")
	if err != nil {
		return err
	}
	sum := sha256.Sum256(payload)
	_, err = f.Write(diskMagic)
	if err == nil {
		_, err = f.Write(sum[:])
	}
	if err == nil {
		_, err = f.Write(payload)
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(f.Name())
		return err
	}
	if err := os.Rename(f.Name(), d.path(hash)); err != nil {
		os.Remove(f.Name())
		return err
	}
	return nil
}
