package store

import (
	"os"
	"sync"
	"sync/atomic"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// TestCorruptEntryRecoveredOnceUnderConcurrentReaders is the disk tier's
// recovery contract under load: when many readers hit a corrupt persisted
// entry at once, the singleflight front funnels them into one flight — the
// damaged file is deleted and the value recomputed exactly once, every
// reader gets the recomputed value, and the disk file is healed. Run under
// -race (the CI store gate does) this also proves the delete/recompute/
// rewrite sequence is free of data races.
func TestCorruptEntryRecoveredOnceUnderConcurrentReaders(t *testing.T) {
	dir := t.TempDir()
	k := NewKey("t").Field("x", 1).Key()
	want := diskVal{Name: "healed", Series: []float64{1, 2.5, -3}}

	// Persist a good entry, then flip a payload bit on disk — the torn-write
	// case the checksum exists for.
	s1, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Do(s1, k, Options[diskVal]{Persist: true}, func() (diskVal, error) {
		return want, nil
	}); err != nil {
		t.Fatal(err)
	}
	path := s1.disk.path(k.Hash())
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh store over the same directory (empty memory tier, like a
	// restarted daemon) takes 16 concurrent readers straight to disk.
	reg := telemetry.NewRegistry()
	s2, err := Open(Config{Dir: dir, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	const readers = 16
	var (
		computes atomic.Int64
		start    = make(chan struct{})
		wg       sync.WaitGroup
		results  [readers]diskVal
		errs     [readers]error
	)
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			results[i], errs[i] = Do(s2, k, Options[diskVal]{Persist: true},
				func() (diskVal, error) {
					computes.Add(1)
					return want, nil
				})
		}()
	}
	close(start)
	wg.Wait()

	for i := 0; i < readers; i++ {
		if errs[i] != nil {
			t.Fatalf("reader %d: %v", i, errs[i])
		}
		if results[i].Name != want.Name || len(results[i].Series) != len(want.Series) {
			t.Fatalf("reader %d got %+v, want %+v", i, results[i], want)
		}
	}
	if n := computes.Load(); n != 1 {
		t.Errorf("corrupt entry recomputed %d times across %d readers, want exactly 1", n, readers)
	}
	if c := counterValue(t, reg, "dcrm_store_disk_corrupt_total"); c != 1 {
		t.Errorf("dcrm_store_disk_corrupt_total = %v, want 1", c)
	}

	// The recompute's write-back healed the file: a third store reads it
	// from disk cleanly, no corruption, no compute.
	s3, err := Open(Config{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Do(s3, k, Options[diskVal]{Persist: true}, func() (diskVal, error) {
		t.Error("healed entry recomputed")
		return diskVal{}, nil
	})
	if err != nil || got.Name != want.Name {
		t.Fatalf("healed entry read back %+v, %v", got, err)
	}
}
