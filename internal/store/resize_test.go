package store

import (
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// TestUpdateSizeReaccountsEntries covers the lazy-growth path behind
// Store.UpdateSize: checkpoints are admitted at their image size, then
// re-accounted as artifacts materialize, and the LRU budget must respond —
// evicting colder entries when a resident entry grows, dropping an entry
// that outgrows the whole budget, and ignoring keys it never admitted.
func TestUpdateSizeReaccountsEntries(t *testing.T) {
	reg := telemetry.NewRegistry()
	s, err := Open(Config{MemBytes: 100, Telemetry: reg})
	if err != nil {
		t.Fatal(err)
	}
	key := func(i int) Key { return NewKey("t").Field("i", i).Key() }
	size := func([]byte) int64 { return 30 }
	mk := func(i int) func() ([]byte, error) {
		return func() ([]byte, error) { return []byte{byte(i)}, nil }
	}
	for i := 0; i < 3; i++ { // 3 × 30 B fit the 100 B budget
		if _, err := Do(s, key(i), Options[[]byte]{Size: size}, mk(i)); err != nil {
			t.Fatal(err)
		}
	}

	// Growing the hottest entry past the budget evicts from the cold end —
	// entry 0 — but never the grown entry itself or warmer ones.
	s.UpdateSize(key(2), 60) // 30 + 30 + 60 = 120 > 100
	if s.Contains(key(0)) {
		t.Error("coldest entry still resident after a warmer entry grew past the budget")
	}
	if !s.Contains(key(1)) || !s.Contains(key(2)) {
		t.Error("warm entries evicted by a resize that only needed the coldest")
	}
	if got := counterValue(t, reg, "dcrm_store_mem_evictions_total"); got != 1 {
		t.Errorf("evictions = %v, want 1", got)
	}

	// Shrinking re-accounts downward: two more 30 B entries now fit without
	// another eviction.
	s.UpdateSize(key(2), 10)
	for i := 3; i < 5; i++ {
		if _, err := Do(s, key(i), Options[[]byte]{Size: size}, mk(i)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 1; i < 5; i++ {
		if !s.Contains(key(i)) {
			t.Errorf("entry %d evicted despite fitting after the shrink", i)
		}
	}

	// An entry that outgrows the whole budget is dropped, mirroring put's
	// admission rule.
	s.UpdateSize(key(2), 1000)
	if s.Contains(key(2)) {
		t.Error("entry larger than the whole budget kept resident")
	}

	// Unknown keys and nil stores are no-ops.
	s.UpdateSize(NewKey("t").Field("i", "absent").Key(), 50)
	var nilStore *Store
	nilStore.UpdateSize(key(1), 50)
	if !s.Contains(key(1)) {
		t.Error("no-op UpdateSize calls disturbed resident entries")
	}
}
