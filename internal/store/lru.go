package store

import "container/list"

// lruEntry is one resident value with its accounted size.
type lruEntry struct {
	key  string
	val  any
	size int64
}

// lru is the byte-budgeted in-memory tier: a classic map + intrusive list
// LRU evicting least-recently-used entries once the accounted bytes exceed
// the budget. Not safe for concurrent use on its own; the Store serializes
// access under its own mutex.
type lru struct {
	budget int64
	used   int64
	ll     *list.List // front = most recently used
	items  map[string]*list.Element
}

func newLRU(budget int64) *lru {
	return &lru{budget: budget, ll: list.New(), items: make(map[string]*list.Element)}
}

// get returns the value for key and marks it most recently used.
func (c *lru) get(key string) (any, bool) {
	el, ok := c.items[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// put inserts or refreshes key and evicts from the cold end until the
// budget holds again. Values larger than the whole budget are not admitted
// (they would only evict everything else to be evicted next); callers still
// hold the computed value. Returns the number of entries evicted.
func (c *lru) put(key string, v any, size int64) (evicted int) {
	if size < 1 {
		size = 1
	}
	if size > c.budget {
		c.remove(key)
		return 0
	}
	if el, ok := c.items[key]; ok {
		e := el.Value.(*lruEntry)
		c.used += size - e.size
		e.val, e.size = v, size
		c.ll.MoveToFront(el)
	} else {
		c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: v, size: size})
		c.used += size
	}
	for c.used > c.budget {
		cold := c.ll.Back()
		if cold == nil {
			break
		}
		e := cold.Value.(*lruEntry)
		if e.key == key {
			break // never evict the entry just admitted
		}
		c.evict(cold)
		evicted++
	}
	return evicted
}

// resize re-accounts an already-resident entry without touching its value
// or recency, evicting from the cold end until the budget holds again. A
// size above the whole budget removes the entry (mirroring put's admission
// rule); the resized entry itself is never evicted. Absent keys are a
// no-op. Returns the number of entries evicted.
func (c *lru) resize(key string, size int64) (evicted int) {
	el, ok := c.items[key]
	if !ok {
		return 0
	}
	if size < 1 {
		size = 1
	}
	if size > c.budget {
		c.evict(el)
		return 0
	}
	e := el.Value.(*lruEntry)
	c.used += size - e.size
	e.size = size
	for c.used > c.budget {
		cold := c.ll.Back()
		if cold == nil {
			break
		}
		ce := cold.Value.(*lruEntry)
		if ce.key == key {
			break // never evict the entry being re-accounted
		}
		c.evict(cold)
		evicted++
	}
	return evicted
}

// remove drops key if present.
func (c *lru) remove(key string) {
	if el, ok := c.items[key]; ok {
		c.evict(el)
	}
}

func (c *lru) evict(el *list.Element) {
	e := el.Value.(*lruEntry)
	c.ll.Remove(el)
	delete(c.items, e.key)
	c.used -= e.size
}

// bytes returns the accounted resident size.
func (c *lru) bytes() int64 { return c.used }

// len returns the resident entry count.
func (c *lru) len() int { return len(c.items) }
