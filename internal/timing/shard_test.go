package timing

import (
	"math/rand"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// shardCounts are the shard settings the determinism contract is pinned
// at: the serial reference, powers of two through the CI gate's range, and
// the per-SM maximum (one shard per SM domain).
var shardCounts = []int{1, 2, 3, 4, 8, 15}

// TestShardCountInvariance is the package-level half of the determinism
// contract (the experiments package pins it again over the full workload
// suite): a replay's KernelStats must be byte-identical at every shard
// count, for the baseline and both protection schemes.
func TestShardCountInvariance(t *testing.T) {
	tr := steadyTrace()
	cases := []struct {
		name string
		plan ProtectionPlan
	}{
		{"baseline", nil},
		{"duplication-lazy", testPlan{copies: 2, lazy: true, offset: 1 << 20}},
		{"triplication", testPlan{copies: 3, lazy: false, offset: 1 << 20}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var ref KernelStats
			for i, n := range shardCounts {
				e, err := New(arch.Default(), tc.plan)
				if err != nil {
					t.Fatal(err)
				}
				e.Shards = n
				ks, err := e.RunKernel(tr)
				if err != nil {
					t.Fatalf("shards=%d: %v", n, err)
				}
				if i == 0 {
					ref = ks
					continue
				}
				if ks != ref {
					t.Errorf("shards=%d: stats diverge from serial reference:\n got %+v\nwant %+v", n, ks, ref)
				}
			}
		})
	}
}

// TestShardCountInvarianceAcrossKernels replays several kernels
// back-to-back on one engine (L2/DRAM state carries across boundaries, as
// in RunApp) and requires identical per-kernel stats at every shard count
// — including when the shard count changes between kernels of one engine.
func TestShardCountInvarianceAcrossKernels(t *testing.T) {
	rng := rand.New(rand.NewSource(123))
	var traces []*simt.KernelTrace
	for k := 0; k < 3; k++ {
		var warps [][]simt.Instr
		for w := 0; w < 24; w++ {
			var is []simt.Instr
			for i := 0; i < 20; i++ {
				is = append(is, load(1, 0, arch.BlockAddr(rng.Intn(1<<12))), compute(int32(1+rng.Intn(3))))
			}
			is = append(is, store(2, 1, arch.BlockAddr(1<<14+w)))
			warps = append(warps, is)
		}
		traces = append(traces, mkTrace(3, warps...))
	}

	runAll := func(shards []int) []KernelStats {
		e, err := New(arch.Default(), testPlan{copies: 2, lazy: true, offset: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		var out []KernelStats
		for i, tr := range traces {
			e.Shards = shards[i%len(shards)]
			ks, err := e.RunKernel(tr)
			if err != nil {
				t.Fatalf("shards=%d kernel %d: %v", e.Shards, i, err)
			}
			out = append(out, ks)
		}
		return out
	}

	ref := runAll([]int{1})
	for _, n := range shardCounts[1:] {
		got := runAll([]int{n})
		for i := range ref {
			if got[i] != ref[i] {
				t.Errorf("shards=%d kernel %d: stats diverge:\n got %+v\nwant %+v", n, i, got[i], ref[i])
			}
		}
	}
	// Shard count changing mid-application must not change results either.
	mixed := runAll([]int{1, 4, 2})
	for i := range ref {
		if mixed[i] != ref[i] {
			t.Errorf("mixed shards kernel %d: stats diverge:\n got %+v\nwant %+v", i, mixed[i], ref[i])
		}
	}
}

// TestShardsClampedAndSerialForced: out-of-range Shards values resolve to
// valid shard counts, and attaching an OnStore observer pins the replay to
// the serial path without changing results.
func TestShardsClampedAndSerialForced(t *testing.T) {
	tr := steadyTrace()
	ref := run(t, nil, tr)

	e, err := New(arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Shards = 1000 // clamps to NumSMs
	ks, err := e.RunKernel(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(e.shards) != arch.Default().NumSMs {
		t.Errorf("shards built = %d, want clamp to %d", len(e.shards), arch.Default().NumSMs)
	}
	if ks != ref {
		t.Errorf("clamped replay diverges from reference")
	}

	hooked, err := New(arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	hooked.Shards = 8
	stores := 0
	hooked.OnStore = func(arch.BlockAddr, int64) { stores++ }
	ks, err = hooked.RunKernel(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(hooked.shards) != 1 {
		t.Errorf("OnStore replay used %d shards, want forced serial", len(hooked.shards))
	}
	if stores == 0 {
		t.Error("OnStore observer never fired")
	}
	if ks != ref {
		t.Errorf("observed replay diverges from reference")
	}
}

// runShardedBenchmark is runSteadyBenchmark at an explicit shard count.
func runShardedBenchmark(b *testing.B, shards int) {
	e, err := New(arch.Default(), nil)
	if err != nil {
		b.Fatal(err)
	}
	e.Shards = shards
	tr := steadyTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunKernel(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunKernelShards measures single-replay throughput scaling
// across shard counts; bench_compare.sh gates the 4-shard speedup on
// hosts with at least four cores.
func BenchmarkRunKernelShards(b *testing.B) {
	b.Run("1", func(b *testing.B) { runShardedBenchmark(b, 1) })
	b.Run("2", func(b *testing.B) { runShardedBenchmark(b, 2) })
	b.Run("4", func(b *testing.B) { runShardedBenchmark(b, 4) })
}
