package timing

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strconv"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/simt"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// telemetryTrace builds a multi-SM, multi-kernel workload that exercises
// L1/L2/DRAM and the crossbar.
func telemetryTrace(nWarps, nLoads int) *simt.KernelTrace {
	warps := make([][]simt.Instr, nWarps)
	for w := range warps {
		var prog []simt.Instr
		for i := 0; i < nLoads; i++ {
			prog = append(prog, load(1, 0, arch.BlockAddr(w*nLoads+i)), compute(2))
		}
		prog = append(prog, store(2, 1, arch.BlockAddr(1000+w)))
		warps[w] = prog
	}
	return mkTrace(1, warps...)
}

// TestTelemetryDoesNotChangeStats asserts the observation invariant:
// attaching a registry and a trace leaves every kernel statistic
// bit-identical to an uninstrumented run.
func TestTelemetryDoesNotChangeStats(t *testing.T) {
	tr := telemetryTrace(8, 6)
	bare, err := New(arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	ksBare, err := bare.RunKernel(tr)
	if err != nil {
		t.Fatal(err)
	}

	inst, err := New(arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	inst.Metrics = telemetry.NewRegistry()
	inst.Trace = telemetry.NewTrace()
	ksInst, err := inst.RunKernel(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(ksBare, ksInst) {
		t.Errorf("instrumented stats differ from baseline:\nbare: %+v\ninst: %+v", ksBare, ksInst)
	}
}

// TestEngineMetricsPublished asserts the registry counters reconcile with
// the kernel stats the engine reports.
func TestEngineMetricsPublished(t *testing.T) {
	reg := telemetry.NewRegistry()
	e, err := New(arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Metrics = reg
	tr := telemetryTrace(8, 6)
	ks1, err := e.RunKernel(tr)
	if err != nil {
		t.Fatal(err)
	}
	ks2, err := e.RunKernel(tr)
	if err != nil {
		t.Fatal(err)
	}

	snap := reg.Snapshot()
	sumVec := func(name string) uint64 {
		var total uint64
		for _, s := range snap {
			if s.Name == name {
				total += uint64(s.Value)
			}
		}
		return total
	}
	if got, want := sumVec("dcrm_sm_instructions_total"), ks1.Instructions+ks2.Instructions; got != want {
		t.Errorf("instructions counter = %d, want %d", got, want)
	}
	if got, want := sumVec("dcrm_l1_reads_total"), ks1.L1.Reads+ks2.L1.Reads; got != want {
		t.Errorf("l1 reads counter = %d, want %d", got, want)
	}
	if got, want := sumVec("dcrm_l2_reads_total"), ks1.L2.Reads+ks2.L2.Reads; got != want {
		t.Errorf("l2 reads counter = %d, want %d", got, want)
	}
	if got, want := sumVec("dcrm_dram_requests_total"), ks1.DRAM.Served+ks2.DRAM.Served; got != want {
		t.Errorf("dram served counter = %d, want %d", got, want)
	}
	if s, ok := snap.Get("dcrm_timing_kernels_total"); !ok || s.Value != 2 {
		t.Errorf("kernels counter = %+v, want 2", s)
	}
	if s, ok := snap.Get("dcrm_timing_cycles_total"); !ok || int64(s.Value) != ks1.Cycles+ks2.Cycles {
		t.Errorf("cycles counter = %+v, want %d", s, ks1.Cycles+ks2.Cycles)
	}
}

// TestEngineTraceLanes asserts the Chrome trace has one metadata lane and
// one span per hardware unit per kernel, and that the JSON loads as an
// event array.
func TestEngineTraceLanes(t *testing.T) {
	cfg := arch.Default()
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	e.Trace = telemetry.NewTrace()
	tr := telemetryTrace(8, 4)
	if _, err := e.RunKernel(tr); err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunKernel(tr); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := e.Trace.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var events []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &events); err != nil {
		t.Fatalf("engine trace is not a trace_event JSON array: %v", err)
	}

	spanLanes := map[string]int{} // "pid/tid" -> spans
	meta := 0
	for _, ev := range events {
		switch ev["ph"] {
		case "M":
			meta++
		case "X":
			key := strconv.Itoa(int(ev["pid"].(float64))) + "/" + strconv.Itoa(int(ev["tid"].(float64)))
			spanLanes[key]++
		}
	}
	// Metadata: 3 process names + SMs + 2 lanes per channel, emitted once.
	wantMeta := 3 + cfg.NumSMs + 2*cfg.NumMemChannels
	if meta != wantMeta {
		t.Errorf("metadata events = %d, want %d", meta, wantMeta)
	}
	// Every SM, bank, and channel lane carries one span per kernel.
	wantLanes := cfg.NumSMs + 2*cfg.NumMemChannels
	if len(spanLanes) != wantLanes {
		t.Errorf("span lanes = %d, want %d", len(spanLanes), wantLanes)
	}
	for lane, n := range spanLanes {
		if n != 2 {
			t.Errorf("lane %s has %d spans, want 2 (one per kernel)", lane, n)
		}
	}
}

// benchKernel sizes the overhead benchmark: enough traffic to exercise the
// full memory hierarchy, small enough for -benchtime=1x CI smoke runs.
func benchKernel() *simt.KernelTrace { return telemetryTrace(32, 16) }

// runBenchmark replays the kernel b.N times on one engine, the same
// pattern as a Fig. 7 sweep replaying an app's kernels back to back.
func runBenchmark(b *testing.B, instrument bool) {
	e, err := New(arch.Default(), nil)
	if err != nil {
		b.Fatal(err)
	}
	if instrument {
		e.Metrics = telemetry.NewRegistry()
		e.Trace = telemetry.NewTrace()
	}
	tr := benchKernel()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunKernel(tr); err != nil {
			b.Fatal(err)
		}
	}
	if instrument {
		// Scraping the registry the run just filled must stay cheap: the
		// snapshot slice is pre-sized from the series count and sort keys
		// are rendered once per sample, so a Snapshot+Delta pair is bounded
		// by a few allocations per series (labels, sort keys, and bucket
		// copies), not by repeated slice growth or comparator-time garbage.
		b.StopTimer()
		prev := e.Metrics.Snapshot()
		series := len(prev)
		allocs := testing.AllocsPerRun(10, func() {
			e.Metrics.Snapshot().Delta(prev)
		})
		if max := float64(6*series + 16); allocs > max {
			b.Errorf("Snapshot+Delta over %d series = %.0f allocs, want <= %.0f", series, allocs, max)
		}
	}
}

// BenchmarkRunKernelBaseline measures the uninstrumented timing engine.
// Compare against BenchmarkRunKernelTelemetry: the telemetry-instrumented
// engine must stay within 2% (telemetry publishes at kernel boundaries
// only, so the difference is one stats rollup per kernel).
func BenchmarkRunKernelBaseline(b *testing.B) { runBenchmark(b, false) }

// BenchmarkRunKernelTelemetry measures the engine with a metrics registry
// and a Chrome trace attached.
func BenchmarkRunKernelTelemetry(b *testing.B) { runBenchmark(b, true) }
