package timing

import (
	"fmt"
	"math"
	"runtime"
	"slices"
	"sync/atomic"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/cache"
	"github.com/datacentric-gpu/dcrm/internal/dram"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// noEvent is the "scheduler empty / no pending work" sentinel on the
// window loop's time axis.
const noEvent = int64(math.MaxInt64)

// Message kinds: the four cross-component interactions of the machine.
const (
	// msgReq carries an L2 request (load miss or write-through store) from
	// an SM's inject port to a channel's ingress port.
	msgReq uint8 = iota
	// msgResp carries a fill from a channel's egress port back to an SM's
	// eject port.
	msgResp
	// msgCTAReq tells the dispatcher an SM finished a CTA and has a free
	// slot.
	msgCTAReq
	// msgCTAGrant assigns a queued CTA to the requesting SM.
	msgCTAGrant
)

// message is one cross-component interaction in flight. sendAt is the
// cycle the sending component issued it; due is when it clears the
// sender-side port (inject or egress) and becomes available at the
// receiver-side port. (sendAt, srcKey, srcSeq) is the canonical delivery
// order, independent of shard count: srcKey identifies the sending
// component and srcSeq its send order, both functions of the
// deterministic per-component event order alone. Ordering deliveries by
// issue time (not arrival) mirrors the crossbar model, which reserves the
// receiver-side port slot the moment a packet is routed: a packet stuck
// behind a backed-up inject port still holds its place in the channel's
// service order.
type message struct {
	sendAt int64
	due    int64
	srcSeq uint64
	blk    arch.BlockAddr
	srcKey int32
	sm     int32
	ch     int32
	cta    int32
	kind   uint8
	write  bool
}

// msgBefore is the canonical cross-shard delivery order.
func msgBefore(a, b message) int {
	switch {
	case a.sendAt != b.sendAt:
		if a.sendAt < b.sendAt {
			return -1
		}
		return 1
	case a.srcKey != b.srcKey:
		if a.srcKey < b.srcKey {
			return -1
		}
		return 1
	case a.srcSeq < b.srcSeq:
		return -1
	default:
		return 1
	}
}

// chanState is one memory channel's domain: the L2 bank slice, the FR-FCFS
// DRAM controller behind it, and the channel's NoC ingress/egress ports.
// Waiters for in-flight L2 fills live in a slot array keyed by block — the
// same shape as the L1 MSHR — rather than a map: under the constant key
// churn of in-flight fills a map sporadically allocates overflow buckets
// forever, while the slot array and its per-slot SM lists reach a
// high-water mark and are then reused in place, keeping the steady state
// allocation-free.
type chanState struct {
	id         int32
	l2         *cache.Cache
	portFreeAt int64
	waitSlots  []l2waitSlot
	dram       *dram.Controller
	ingress    nocPort
	egress     nocPort
	pumpAt     int64
	scratch    []dram.Completion
	// responses counts NoC response traversals (summed into KernelStats.NoC).
	responses uint64
}

// l2waitSlot tracks one in-flight fill and the SMs awaiting it, in arrival
// order.
type l2waitSlot struct {
	blk   arch.BlockAddr
	valid bool
	sms   []int32
}

// addWaiter records smID as waiting on blk's fill and reports whether a
// fill was already outstanding (merged); the caller enqueues the DRAM
// request only for the first waiter.
func (c *chanState) addWaiter(blk arch.BlockAddr, smID int32) (merged bool) {
	free := -1
	for i := range c.waitSlots {
		s := &c.waitSlots[i]
		if s.valid {
			if s.blk == blk {
				s.sms = append(s.sms, smID)
				return true
			}
		} else if free == -1 {
			free = i
		}
	}
	if free == -1 {
		c.waitSlots = append(c.waitSlots, l2waitSlot{sms: make([]int32, 0, 8)})
		free = len(c.waitSlots) - 1
	}
	s := &c.waitSlots[free]
	s.blk, s.valid = blk, true
	s.sms = append(s.sms[:0], smID)
	return false
}

// takeWaiters releases blk's waiter list, returning the SM ids in arrival
// order, or nil when no fill is outstanding. The slice aliases the slot's
// storage and is valid until the slot is reused by a later addWaiter.
func (c *chanState) takeWaiters(blk arch.BlockAddr) []int32 {
	for i := range c.waitSlots {
		s := &c.waitSlots[i]
		if s.valid && s.blk == blk {
			s.valid = false
			return s.sms
		}
	}
	return nil
}

// nocPort is a serializing NoC port: one packet per cycle plus a fixed
// traversal latency (the same model as noc.Link, owned per component so a
// port is only ever touched from its component's deterministic event
// order). The latency floor of one cycle is what guarantees every
// cross-component message is due at least one lookahead window after it
// is sent.
type nocPort struct {
	latency  int64
	nextFree int64
}

// send schedules a packet entering the port at cycle now and returns its
// delivery time; packets queue FIFO when the port is busy.
func (p *nocPort) send(now int64) int64 {
	start := now
	if p.nextFree > start {
		start = p.nextFree
	}
	p.nextFree = start + 1
	return start + p.latency
}

// spinBarrier is a sense-reversing barrier for the shard goroutines. The
// window loop crosses it twice per window, so it spins briefly before
// yielding; on a host with fewer cores than shards the Gosched path keeps
// the loop live (at degraded speed) instead of deadlocking.
type spinBarrier struct {
	n     int32
	count atomic.Int32
	sense atomic.Int32
}

// wait blocks until all n participants arrive. local is the caller's
// private sense, flipped on every crossing.
func (b *spinBarrier) wait(local *int32) {
	s := 1 - *local
	*local = s
	if b.count.Add(1) == b.n {
		b.count.Store(0)
		b.sense.Store(s)
		return
	}
	for i := 0; b.sense.Load() != s; i++ {
		if i > 128 {
			runtime.Gosched()
		}
	}
}

// shard owns a contiguous slice of the machine's components — SM domains,
// channel domains, and possibly the CTA dispatcher — plus its own event
// scheduler, clock, free-lists, and counters. Everything a shard touches
// during a window is either owned by it or reached through the message
// mailboxes, which are only accessed on the safe side of a barrier.
type shard struct {
	id  int32
	eng *Engine

	sched  scheduler
	now    int64 // current window position (monotonic)
	lastAt int64 // cycle of the last event actually processed

	sms        []*smState   // owned SM domains
	chans      []*chanState // owned channel domains
	dispatcher bool         // owns the CTA dispatcher

	// outbox[d] holds messages for shard d, written only while this shard
	// processes a window; inbox holds received messages not yet due,
	// drained only in the delivery phase. The two phases are separated by
	// barriers, so no mailbox is ever touched from two goroutines at once.
	outbox [][]message
	inbox  []message
	msgSeq uint64

	// Free-lists for the owned SMs' load-ops and copy-groups.
	groupPool []*copyGroup
	loadPool  []*loadOp

	// Per-shard slices of the engine-global counters, merged at kernel end
	// (commutative sums, so co-location and merge order are unobservable).
	copyTx      uint64
	mshrStalls  uint64
	cmpStalls   uint64
	liveDelta   int
	blockMisses map[arch.BlockAddr]uint64

	err error
}

// post enqueues a typed event due at cycle at on this shard's scheduler.
func (sh *shard) post(at int64, ev event) {
	ev.at = at
	sh.sched.schedule(ev, sh.now)
}

// sendMsg stamps and mails a cross-component message. Same-shard traffic
// takes the same mailbox path as remote traffic so delivery order (and
// therefore results) cannot depend on the component-to-shard layout.
func (sh *shard) sendMsg(dst int32, m message) {
	m.srcSeq = sh.msgSeq
	sh.msgSeq++
	sh.outbox[dst] = append(sh.outbox[dst], m)
}

// fail records a broken engine invariant and drops the shard's remaining
// work so the window loop can drain to global termination instead of
// deadlocking the barrier protocol.
func (sh *shard) fail(err error) {
	if sh.err == nil {
		sh.err = err
	}
	sh.sched.reset()
	sh.inbox = sh.inbox[:0]
	for d := range sh.outbox {
		sh.outbox[d] = sh.outbox[d][:0]
	}
}

// localNext returns the earliest cycle at which this shard has pending
// work: a scheduled event or an unsent outbox message (which the
// receiving shard has not seen yet; its due time lower-bounds whatever
// event delivery will post). The inbox is always empty here — delivery
// drains it completely at the top of every round.
func (sh *shard) localNext() int64 {
	next := sh.sched.nextAt()
	for d := range sh.outbox {
		for i := range sh.outbox[d] {
			if sh.outbox[d][i].due < next {
				next = sh.outbox[d][i].due
			}
		}
	}
	return next
}

// deliverWindow runs a round's delivery phase: it collects every message
// other shards mailed to this one and commits them all — in canonical
// (sendAt, srcKey, srcSeq) order — reserving receiver-side port slots and
// posting the resulting local events.
func (sh *shard) deliverWindow(start int64) {
	if sh.now < start {
		sh.now = start
	}
	for _, other := range sh.eng.shards {
		ob := &other.outbox[sh.id]
		if len(*ob) > 0 {
			sh.inbox = append(sh.inbox, (*ob)...)
			*ob = (*ob)[:0]
		}
	}
	// Every pending message was sent before this window opened, and every
	// future message will be sent at or after it, so the whole inbox can
	// be committed now: canonical order is globally monotone across
	// barriers, which keeps receiver-side port reservations in issue
	// order exactly like the serial crossbar.
	slices.SortFunc(sh.inbox, msgBefore)
	for i := range sh.inbox {
		sh.deliverMsg(&sh.inbox[i])
	}
	sh.inbox = sh.inbox[:0]
}

// deliverMsg converts one due message into local events. Port send calls
// happen here, in canonical delivery order, which is what makes ingress
// and eject serialization arrival-ordered and shard-count independent.
func (sh *shard) deliverMsg(m *message) {
	switch m.kind {
	case msgReq:
		c := sh.eng.chans[m.ch]
		at := c.ingress.send(m.due)
		sh.post(at, event{kind: evL2Access, sm: m.sm, ch: m.ch, blk: m.blk, write: m.write})
	case msgResp:
		s := sh.eng.sms[m.sm]
		at := s.eject.send(m.due)
		sh.post(at, event{kind: evSMReceive, sm: m.sm, blk: m.blk})
	case msgCTAReq:
		sh.post(m.due, event{kind: evCTADispatch, sm: m.sm})
	case msgCTAGrant:
		sh.post(m.due, event{kind: evCTAInstall, sm: m.sm, cta: m.cta})
	}
}

// processWindow pops and dispatches every event due before end.
func (sh *shard) processWindow(end int64) {
	for {
		at := sh.sched.nextAt()
		if at >= end {
			return
		}
		ev := sh.sched.pop()
		if ev.at < sh.now {
			sh.fail(fmt.Errorf("timing: shard %d: time ran backwards: %d < %d", sh.id, ev.at, sh.now))
			return
		}
		sh.now = ev.at
		sh.lastAt = ev.at
		sh.dispatch(&ev)
	}
}

// runWindows drives the shard through the barrier-synchronized window
// loop until no shard has pending work. With a single shard the barriers
// vanish and the same loop is the serial reference path. The window grid
// is anchored at the kernel start and strides by the engine lookahead, so
// the schedule of barriers — part of the replay's semantics — is a
// function of the configuration alone.
func (sh *shard) runWindows(start int64) {
	e := sh.eng
	n := len(e.shards)
	L := e.lookahead
	w := start
	var sense int32
	for {
		sh.deliverWindow(w)
		if n > 1 {
			// Delivery reads other shards' outboxes; processing writes
			// them. The barrier keeps the two phases apart.
			e.barrier.wait(&sense)
		}
		sh.processWindow(w + L)
		var next int64
		if n == 1 {
			next = sh.localNext()
		} else {
			e.nexts[int(sh.id)*nextsStride] = sh.localNext()
			e.barrier.wait(&sense)
			next = noEvent
			for i := 0; i < n; i++ {
				if v := e.nexts[i*nextsStride]; v < next {
					next = v
				}
			}
		}
		if next == noEvent {
			return
		}
		// Skip empty windows: jump straight to the grid point at or below
		// the globally earliest pending cycle.
		w = start + (next-start)/L*L
	}
}

// nextsStride spaces the per-shard next-event slots a cache line apart.
const nextsStride = 8

// dispatch executes one popped event against the shard's components.
func (sh *shard) dispatch(ev *event) {
	e := sh.eng
	now := sh.now
	switch ev.kind {
	case evSMStep:
		s := e.sms[ev.sm]
		if s.stepScheduledAt == now {
			s.step(now)
		}
	case evGroupArrive:
		if ev.g.gen == ev.gen {
			ev.g.arrive(now, e.sms[ev.sm])
		}
	case evL2Access:
		sh.l2Access(ev.sm, e.chans[ev.ch], ev.blk, now, ev.write)
	case evSMReceive:
		sh.smReceive(e.sms[ev.sm], ev.blk, now)
	case evDRAMComplete:
		sh.dramComplete(e.chans[ev.ch], ev.blk, ev.write, now)
	case evDRAMPump:
		c := e.chans[ev.ch]
		if c.pumpAt == now {
			c.pumpAt = -1
			sh.pumpDRAM(c, now)
		}
	case evCTADispatch:
		sh.dispatchCTA(ev.sm, now)
	case evCTAInstall:
		s := e.sms[ev.sm]
		sh.liveDelta += e.installCTA(s, int(ev.cta), now)
		sh.wakeSM(s, now)
	case evInject:
		if fn := e.injectFns[ev.sm]; fn != nil {
			e.injectFns[ev.sm] = nil
			e.injectLive--
			fn(now)
		}
	}
}

// takeGroup pops a copy-group from the shard pool (or grows it),
// initializing the tracking fields. The generation survives from the
// pooled object so outstanding references from a previous life stay
// invalid.
func (sh *shard) takeGroup(op *loadOp, total, needed int, protected bool) *copyGroup {
	var g *copyGroup
	if n := len(sh.groupPool); n > 0 {
		g = sh.groupPool[n-1]
		sh.groupPool = sh.groupPool[:n-1]
	} else {
		g = &copyGroup{}
	}
	g.op = op
	g.total = total
	g.needed = needed
	g.arrived = 0
	g.protected = protected
	g.doneSent = false
	return g
}

// releaseGroup recycles a fully arrived copy-group, bumping its generation
// so any stale reference (event or MSHR waiter) is recognizably dead.
func (sh *shard) releaseGroup(g *copyGroup) {
	g.gen++
	g.op = nil
	sh.groupPool = append(sh.groupPool, g)
}

// takeLoadOp pops a load-op from the shard pool (or grows it).
func (sh *shard) takeLoadOp(w *warpState, s *smState, remaining int) *loadOp {
	var op *loadOp
	if n := len(sh.loadPool); n > 0 {
		op = sh.loadPool[n-1]
		sh.loadPool = sh.loadPool[:n-1]
	} else {
		op = &loadOp{}
	}
	op.warp = w
	op.sm = s
	op.remaining = remaining
	return op
}

// releaseLoadOp recycles a completed load-op. Copy-groups that already
// consumed their blockDone never touch the op again (doneSent), so the
// object is safe to reuse immediately.
func (sh *shard) releaseLoadOp(op *loadOp) {
	op.warp = nil
	op.sm = nil
	sh.loadPool = append(sh.loadPool, op)
}

// warpRetired accounts a warp's retirement; a fully retired CTA frees its
// slot and asks the dispatcher for a replacement over the message fabric.
func (sh *shard) warpRetired(s *smState, w *warpState) {
	e := sh.eng
	sh.liveDelta--
	e.ctaLiveWarps[w.cta]--
	if e.ctaLiveWarps[w.cta] > 0 {
		return
	}
	s.residentCTAs--
	// Drop the CTA's warps from the resident set.
	kept := s.warps[:0]
	for _, rw := range s.warps {
		if rw.cta != w.cta {
			kept = append(kept, rw)
		}
	}
	s.warps = kept
	s.lastIssued = -1
	// One request per freed slot; the dispatcher answers with at most one
	// grant, so residency is conserved and requests are bounded by the
	// kernel's CTA count.
	sh.sendMsg(e.dispShard, message{
		sendAt: sh.now, due: sh.now + e.lookahead, srcKey: int32(s.id), kind: msgCTAReq, sm: int32(s.id),
	})
}

// dispatchCTA is the dispatcher's half of CTA refill: pop queued CTAs,
// skip ones with no live warps, grant the first real one to the asking SM.
func (sh *shard) dispatchCTA(sm int32, now int64) {
	e := sh.eng
	for e.ctaHead < len(e.ctaQueue) {
		cta := e.ctaQueue[e.ctaHead]
		e.ctaHead++
		if e.ctaLiveCount(cta) == 0 {
			continue
		}
		sh.sendMsg(e.smOwner[sm], message{
			sendAt: now, due: now + e.lookahead, srcKey: e.dispKey, kind: msgCTAGrant, sm: sm, cta: int32(cta),
		})
		return
	}
}

// scheduleStep arranges for the SM's issue loop to run at cycle at,
// deduplicating against an already-pending earlier step.
func (sh *shard) scheduleStep(s *smState, at int64) {
	if at < sh.now {
		at = sh.now
	}
	if s.stepScheduledAt >= 0 && s.stepScheduledAt <= at {
		return
	}
	s.stepScheduledAt = at
	// The event only acts when it is still the SM's current step marker:
	// superseded (stale) events die silently, which keeps the event count
	// linear in useful work. The marker always names exactly one live
	// event, so no wake-up is ever lost.
	sh.post(at, event{kind: evSMStep, sm: int32(s.id)})
}

// wakeSM nudges the SM's issue loop at the current cycle, unblocking any
// warps parked on a structural stall (MSHR or compare buffer full): wake
// moments are exactly the resource-release moments.
func (sh *shard) wakeSM(s *smState, now int64) {
	for _, w := range s.warps {
		if w.readyAt >= stallParked {
			w.readyAt = now
		}
	}
	sh.scheduleStep(s, now)
}

// issueLoad issues (or resumes) a load instruction's coalesced transactions
// at cycle t. It charges one LD/ST port cycle per transaction, including
// replica-copy transactions.
func (sh *shard) issueLoad(s *smState, w *warpState, in *simt.Instr, t int64) {
	e := sh.eng
	if w.curLoad == nil {
		w.pendingLoads++
		w.curLoad = sh.takeLoadOp(w, s, len(in.Blocks))
		s.instructions++
	}
	op := w.curLoad
	used := int64(0)
	for w.txIndex < len(in.Blocks) {
		blk := in.Blocks[w.txIndex]
		at := t + used
		copies := 1
		if e.plan != nil {
			copies = e.plan.Copies(in.PC, in.BufID)
		}

		if s.l1.Probe(blk) {
			// L1 hit: normal operation, no replication (Section IV-B1).
			s.l1.Read(blk)
			g := sh.takeGroup(op, 1, 1, false)
			sh.post(at+int64(e.cfg.L1HitLatency), event{kind: evGroupArrive, g: g, gen: g.gen, sm: int32(s.id)})
			used++
			w.txIndex++
			continue
		}

		// L1 miss: count the misses we are about to take (primary plus any
		// replica copies not resident) and check structural resources.
		missing := 1
		for c := 1; c < copies; c++ {
			if !s.l1.Probe(e.plan.ReplicaBlock(in.BufID, blk, c)) {
				missing++
			}
		}
		if copies > 1 && s.compareInUse >= e.CompareBufferSize {
			sh.cmpStalls++
			sh.stallRetry(s, w, t, used)
			return
		}
		if s.mshr.Capacity()-s.mshr.InUse() < missing {
			sh.mshrStalls++
			sh.stallRetry(s, w, t, used)
			return
		}

		needed := copies
		if copies == 1 || (e.plan != nil && e.plan.Lazy()) {
			needed = 1
		}
		g := sh.takeGroup(op, copies, needed, copies > 1)
		if g.protected {
			s.compareInUse++
			sh.copyTx += uint64(copies - 1)
		}
		for c := 0; c < copies; c++ {
			cb := blk
			if c > 0 {
				cb = e.plan.ReplicaBlock(in.BufID, blk, c)
			}
			txAt := t + used
			used++ // each copy transaction consumes an LD/ST port cycle
			if s.l1.Read(cb) {
				// This copy is resident in L1.
				sh.post(txAt+int64(e.cfg.L1HitLatency), event{kind: evGroupArrive, g: g, gen: g.gen, sm: int32(s.id)})
				continue
			}
			if e.TrackBlockMisses {
				if sh.blockMisses == nil {
					sh.blockMisses = make(map[arch.BlockAddr]uint64)
				}
				sh.blockMisses[cb]++
			}
			switch s.mshr.Allocate(cb, groupRef{g: g, gen: g.gen}) {
			case cache.MSHRNew:
				sh.sendToL2(s, cb, txAt, false)
			case cache.MSHRMerged:
				// An earlier miss to this block is in flight; we ride it.
			case cache.MSHRFull:
				// Cannot happen: headroom was checked above.
			}
		}
		w.txIndex++
	}
	s.portFreeAt = t + maxI64(used, 1)
	w.readyAt = s.portFreeAt
	w.curLoad = nil
	s.finishInstr(w)
}

// stallRetry charges the port for the work done so far and parks the warp
// until a resource-release wake (wakeSM) clears the sentinel. A structural
// stall implies outstanding fills, so a wake always follows — polling on a
// timer would multiply events without making progress.
func (sh *shard) stallRetry(s *smState, w *warpState, t, used int64) {
	s.portFreeAt = t + maxI64(used, 1)
	w.readyAt = stallParked
}

// issueStore forwards a store's transactions write-through to L2, returning
// the port cycles consumed.
func (sh *shard) issueStore(s *smState, in *simt.Instr, t int64) int64 {
	for i, blk := range in.Blocks {
		s.l1.Write(blk)
		sh.sendToL2(s, blk, t+int64(i), true)
	}
	return int64(len(in.Blocks))
}

// sendToL2 serializes a request on the SM's inject port and mails it to
// the owning channel domain; the ingress hop happens at delivery.
func (sh *shard) sendToL2(s *smState, blk arch.BlockAddr, t int64, write bool) {
	e := sh.eng
	ch := int32(e.cfg.ChannelOf(blk))
	s.requests++
	due := s.inject.send(t)
	sh.sendMsg(e.chOwner[ch], message{
		sendAt: t, due: due, srcKey: int32(s.id), kind: msgReq, sm: int32(s.id), ch: ch, blk: blk, write: write,
	})
}

// l2Access performs the bank lookup, serialized on the bank port.
func (sh *shard) l2Access(smID int32, c *chanState, blk arch.BlockAddr, now int64, write bool) {
	e := sh.eng
	st := now
	if c.portFreeAt > st {
		st = c.portFreeAt
	}
	c.portFreeAt = st + 1
	hitLat := int64(e.cfg.L2HitLatency)

	if write {
		if e.OnStore != nil {
			e.OnStore(blk, st)
		}
		if !c.l2.Write(blk) {
			// No-write-allocate: miss goes to DRAM.
			c.dram.Enqueue(dram.Request{Block: blk, Write: true}, st+hitLat)
			sh.pumpDRAM(c, st+hitLat)
		}
		return
	}

	if c.l2.Read(blk) {
		sh.respond(c, smID, blk, st+hitLat)
		return
	}
	// Miss: merge on an outstanding fill if one exists.
	if c.addWaiter(blk, smID) {
		return
	}
	c.dram.Enqueue(dram.Request{Block: blk}, st+hitLat)
	sh.pumpDRAM(c, st+hitLat)
}

// respond serializes a fill on the channel's egress port and mails it to
// the owning SM domain; the eject hop happens at delivery.
func (sh *shard) respond(c *chanState, smID int32, blk arch.BlockAddr, t int64) {
	c.responses++
	due := c.egress.send(t)
	sh.sendMsg(sh.eng.smOwner[smID], message{
		sendAt: t, due: due, srcKey: int32(sh.eng.cfg.NumSMs) + c.id, kind: msgResp, sm: smID, blk: blk,
	})
}

// smReceive fills L1 and completes every waiter of the returned block.
func (sh *shard) smReceive(s *smState, blk arch.BlockAddr, now int64) {
	s.l1.Fill(blk)
	for _, ref := range s.mshr.Complete(blk) {
		if ref.g.gen == ref.gen {
			ref.g.arrive(now, s)
		}
	}
	// The MSHR entry just freed may unblock a parked warp even if no load
	// completed.
	sh.wakeSM(s, now)
}

// pumpDRAM advances the channel's controller and schedules completions and
// the next scheduling opportunity.
func (sh *shard) pumpDRAM(c *chanState, now int64) {
	c.scratch = c.dram.AdvanceAppend(c.scratch[:0], now)
	for _, comp := range c.scratch {
		sh.post(comp.At, event{kind: evDRAMComplete, ch: c.id, blk: comp.Req.Block, write: comp.Req.Write})
	}
	if c.dram.QueueLen() == 0 {
		return
	}
	next := c.dram.NextStartTime()
	if next <= now {
		next = now + 1
	}
	if c.pumpAt >= 0 && c.pumpAt <= next {
		return
	}
	c.pumpAt = next
	sh.post(next, event{kind: evDRAMPump, ch: c.id})
}

// dramComplete fills L2 and fans the data out to waiting SMs.
func (sh *shard) dramComplete(c *chanState, blk arch.BlockAddr, write bool, now int64) {
	defer sh.pumpDRAM(c, now)
	if write {
		return
	}
	if ev, had := c.l2.Fill(blk); had && ev.Dirty {
		// Dirty victim: write back to DRAM.
		c.dram.Enqueue(dram.Request{Block: ev.Block, Write: true}, now)
	}
	for _, smID := range c.takeWaiters(blk) {
		sh.respond(c, smID, blk, now)
	}
}
