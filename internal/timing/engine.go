package timing

import (
	"fmt"
	"sync"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/cache"
	"github.com/datacentric-gpu/dcrm/internal/dram"
	"github.com/datacentric-gpu/dcrm/internal/simt"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// groupRef is the MSHR waiter payload: a copy-group plus the group's
// generation at allocation time. A completion whose generation no longer
// matches refers to a group already recycled through the pool and is
// dropped — stale fills can never corrupt a reused group.
type groupRef struct {
	g   *copyGroup
	gen uint32
}

// pendInject is an InjectAt callback registered between kernels, waiting
// to enter the next replay's event schedule.
type pendInject struct {
	at  int64
	idx int
}

// Engine is the timing simulator. Build one with New, then replay kernel
// traces with RunKernel; L2 and DRAM state persist across kernels of the
// same application while L1s are invalidated at kernel boundaries. Not safe
// for concurrent use — a replay may spawn shard goroutines internally, but
// the Engine's public surface is single-caller.
//
// The engine is allocation-free in steady state: replaying the same (or a
// same-shaped) kernel repeatedly on one engine performs zero heap
// allocations per replay. Events are value types in a non-boxing
// scheduler, copy-groups and load-ops are pooled on per-shard free-lists,
// warp state lives in a reusable slab, and every auxiliary slice (CTA
// queue, L2 waiter lists, DRAM completion scratch, message mailboxes) is
// recycled across kernels.
type Engine struct {
	cfg arch.Config
	// Shards partitions the machine's components (SM domains, channel
	// domains, the CTA dispatcher) across this many event schedulers for
	// each replay. 0 and 1 both run the single-threaded reference path —
	// same window grid, no goroutines; values above 1 run one goroutine
	// per shard, clamped to the SM count. Results are byte-identical at
	// every setting (see the package doc's "Sharded replay" section);
	// replays with an OnStore observer or pending InjectAt callbacks
	// force the serial path so user callbacks never run concurrently.
	// Mutate only between RunKernel calls.
	Shards int
	// Policy selects the warp scheduler (default GTO).
	Policy SchedulerPolicy
	// CompareBufferSize overrides the pending-comparison buffer entries
	// (default CompareBufferEntries); used by the sizing ablation.
	CompareBufferSize int
	// TrackBlockMisses enables the per-block L1-miss histogram used to
	// weight Fig. 9's fault injection.
	TrackBlockMisses bool
	// Metrics, when non-nil, receives per-SM, per-L2-bank, and per-DRAM-
	// channel counters after every kernel. The hot event loop is untouched
	// — counters are published from the per-component Stats at kernel
	// boundaries — so attaching a registry neither perturbs results nor
	// costs measurable time (see BenchmarkRunKernelTelemetry).
	Metrics *telemetry.Registry
	// Trace, when non-nil, records a Chrome trace_event timeline: one lane
	// per SM, per L2 bank, and per DRAM channel, with one span per kernel
	// and per-channel counter tracks.
	Trace *telemetry.Trace
	// OnStore, when non-nil, observes every store's commit at its L2 bank:
	// the block written and the port-serialized commit cycle. One
	// instrumented replay per application is how the fault layer captures
	// the store-commit timeline (fault.Timeline) that decides whether a
	// later store masks a transient flip. Observation only — attaching it
	// does not perturb replay timing — but it pins the replay to the
	// serial path, and like Trace it belongs on dedicated instrumented
	// replays, not on golden-stat runs.
	OnStore func(blk arch.BlockAddr, at int64)

	blockMisses map[arch.BlockAddr]uint64
	traceMeta   bool // lane-metadata events emitted (once per engine)

	plan  ProtectionPlan
	sms   []*smState
	chans []*chanState

	// Shard fabric. lookahead is the conservative window length L: every
	// cross-component message latency is at least L, so messages created
	// in one window are never due before the next. The fabric is built
	// lazily by ensureShards and rebuilt only when the shard count
	// changes; components (and their L2/DRAM state) survive rebuilds.
	lookahead int64
	shards    []*shard
	smOwner   []int32 // SM id -> owning shard
	chOwner   []int32 // channel id -> owning shard
	dispShard int32   // shard owning the CTA dispatcher
	dispKey   int32   // the dispatcher's message source key
	nexts     []int64 // per-shard earliest pending cycle, stride-padded
	barrier   spinBarrier
	active    *shard // serial shard of an in-flight replay (InjectAt target)

	now int64

	// Warp state slab: one slot per trace warp, indexed by the warp's
	// trace index so concurrent shards write disjoint slots.
	warpSlab []warpState

	// injectFns holds InjectAt callbacks; evInject events carry an index
	// into it (one-shot: slots nil out after firing). injectLive counts
	// registered-but-unfired callbacks; pendInjects holds registrations
	// made between kernels.
	injectFns   []func(now int64)
	injectLive  int
	pendInjects []pendInject

	// Per-kernel bookkeeping.
	trace        *simt.KernelTrace
	ctaQueue     []int
	ctaHead      int // dispatch position within ctaQueue (no reslicing)
	warpsPerCTA  int
	maxCTAsPerSM int
	ctaLiveWarps []int // live warps per CTA, indexed by CTA id
	liveWarps    int   // warps installed by the serial initial fill
}

// New builds an engine for the configuration. plan may be nil (baseline, no
// protection).
func New(cfg arch.Config, plan ProtectionPlan) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("timing: %w", err)
	}
	// The interconnect's one-way latency splits into an injection half and
	// a delivery half, floored at one cycle each so the lookahead window
	// is well-defined for any configuration.
	half := int64(cfg.InterconnectLatency / 2)
	rest := int64(cfg.InterconnectLatency) - half
	if half < 1 {
		half = 1
	}
	if rest < 1 {
		rest = 1
	}
	e := &Engine{
		cfg:               cfg,
		Policy:            GTO,
		CompareBufferSize: CompareBufferEntries,
		plan:              plan,
		lookahead:         half,
		dispKey:           int32(cfg.NumSMs + cfg.NumMemChannels),
		blockMisses:       make(map[arch.BlockAddr]uint64),
	}
	for ch := 0; ch < cfg.NumMemChannels; ch++ {
		l2, err := cache.New(cfg.L2)
		if err != nil {
			return nil, fmt.Errorf("timing: L2 bank %d: %w", ch, err)
		}
		ctl, err := dram.NewController(cfg)
		if err != nil {
			return nil, fmt.Errorf("timing: DRAM channel %d: %w", ch, err)
		}
		c := &chanState{
			id:      int32(ch),
			l2:      l2,
			dram:    ctl,
			ingress: nocPort{latency: rest},
			egress:  nocPort{latency: half},
			pumpAt:  -1,
			scratch: make([]dram.Completion, 0, 64),
		}
		c.waitSlots = make([]l2waitSlot, 0, 64)
		for i := 0; i < 64; i++ {
			c.waitSlots = append(c.waitSlots, l2waitSlot{sms: make([]int32, 0, 16)})
		}
		e.chans = append(e.chans, c)
	}
	for i := 0; i < cfg.NumSMs; i++ {
		l1, err := cache.New(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("timing: L1 %d: %w", i, err)
		}
		mshr, err := cache.NewMSHR[groupRef](cfg.L1MSHRs)
		if err != nil {
			return nil, fmt.Errorf("timing: MSHR %d: %w", i, err)
		}
		e.sms = append(e.sms, &smState{
			id: i, engine: e, l1: l1, mshr: mshr,
			lastIssued: -1, stepScheduledAt: -1,
			inject: nocPort{latency: half},
			eject:  nocPort{latency: rest},
		})
	}
	return e, nil
}

// effectiveShards resolves the Shards knob for the next replay: clamped to
// [1, NumSMs], and forced to 1 while an OnStore observer or un-fired
// InjectAt callbacks are attached (user callbacks must not run
// concurrently, and their ordering is defined against the serial path).
func (e *Engine) effectiveShards() int {
	n := e.Shards
	if n < 1 {
		n = 1
	}
	if n > e.cfg.NumSMs {
		n = e.cfg.NumSMs
	}
	if e.OnStore != nil || e.injectLive > 0 || len(e.pendInjects) > 0 {
		n = 1
	}
	return n
}

// ensureShards (re)builds the shard fabric for n shards. Components keep
// their identity (and cross-kernel L2/DRAM state) across rebuilds; only
// ownership, mailboxes, and free-lists are reassigned. Free-lists are
// pre-filled past their expected high-water marks (bounded by outstanding
// L1 misses and resident warps) so the replay loop reaches its
// allocation-free steady state on the first kernel.
func (e *Engine) ensureShards(n int) {
	if len(e.shards) == n {
		return
	}
	e.shards = make([]*shard, n)
	e.smOwner = make([]int32, len(e.sms))
	e.chOwner = make([]int32, len(e.chans))
	e.nexts = make([]int64, n*nextsStride)
	for i := range e.shards {
		sh := &shard{id: int32(i), eng: e}
		sh.outbox = make([][]message, n)
		for d := range sh.outbox {
			sh.outbox[d] = make([]message, 0, 64)
		}
		sh.inbox = make([]message, 0, 64)
		e.shards[i] = sh
	}
	// Contiguous balanced partition: SM i and channel c go to shards
	// i*n/NumSMs and c*n/NumChans — a pure function of the configuration,
	// though results would be identical under any layout.
	for i, s := range e.sms {
		sh := e.shards[i*n/len(e.sms)]
		s.sh = sh
		e.smOwner[i] = sh.id
		sh.sms = append(sh.sms, s)
	}
	for i, c := range e.chans {
		sh := e.shards[i*n/len(e.chans)]
		e.chOwner[i] = sh.id
		sh.chans = append(sh.chans, c)
	}
	e.dispShard = 0
	e.shards[0].dispatcher = true
	for _, sh := range e.shards {
		nsm := len(sh.sms)
		for i := 0; i < nsm*e.cfg.L1MSHRs; i++ {
			sh.groupPool = append(sh.groupPool, &copyGroup{})
		}
		for i := 0; i < nsm*e.cfg.MaxWarpsPerSM; i++ {
			sh.loadPool = append(sh.loadPool, &loadOp{})
		}
	}
	e.barrier.n = int32(n)
}

// InjectAt schedules fn to run exactly once when the replay reaches the
// given cycle — the timing-engine injection hook the transient fault
// model's semantics are defined against. The callback rides the ordinary
// event scheduler, so it is totally ordered against every memory-system
// event at that cycle (deterministically, by scheduling sequence); while
// any callback is pending the replay runs on the serial path. A cycle
// already in the past is clamped to the current cycle. Call before or
// during a replay; a callback scheduled past the kernel's natural end
// extends the replay until it fires, so pick cycles within the span of
// the work being replayed (instrumented replays only — never attach
// injections to runs whose statistics feed the golden gates).
func (e *Engine) InjectAt(cycle int64, fn func(now int64)) {
	if fn == nil {
		return
	}
	idx := len(e.injectFns)
	e.injectFns = append(e.injectFns, fn)
	e.injectLive++
	if sh := e.active; sh != nil {
		// Mid-replay registration (from another callback or an OnStore
		// observer): post straight into the live serial schedule.
		if cycle < sh.now {
			cycle = sh.now
		}
		sh.post(cycle, event{kind: evInject, sm: int32(idx)})
		return
	}
	if cycle < e.now {
		cycle = e.now
	}
	e.pendInjects = append(e.pendInjects, pendInject{at: cycle, idx: idx})
}

// RunKernel replays one kernel trace to completion and returns its stats.
func (e *Engine) RunKernel(tr *simt.KernelTrace) (KernelStats, error) {
	if tr == nil || len(tr.Warps) == 0 {
		return KernelStats{}, fmt.Errorf("timing: empty trace")
	}
	e.ensureShards(e.effectiveShards())
	e.resetForKernel(tr)
	start := e.now

	// Serial prologue, in deterministic order: pending injections first
	// (lowest sequence numbers, as when they were registered up front),
	// then the initial CTA fill in SM index order.
	sh0 := e.shards[0]
	for _, p := range e.pendInjects {
		at := p.at
		if at < start {
			at = start
		}
		sh0.post(at, event{kind: evInject, sm: int32(p.idx)})
	}
	e.pendInjects = e.pendInjects[:0]
	for _, s := range e.sms {
		e.fillSM(s)
		s.sh.scheduleStep(s, start)
	}

	if len(e.shards) == 1 {
		e.active = sh0
		sh0.runWindows(start)
		e.active = nil
	} else {
		e.barrier.count.Store(0)
		e.barrier.sense.Store(0)
		var wg sync.WaitGroup
		for _, sh := range e.shards[1:] {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				sh.runWindows(start)
			}(sh)
		}
		sh0.runWindows(start)
		wg.Wait()
	}

	end := start
	live := e.liveWarps
	for _, sh := range e.shards {
		if sh.err != nil {
			return KernelStats{}, sh.err
		}
		if sh.lastAt > end {
			end = sh.lastAt
		}
		live += sh.liveDelta
	}
	e.now = end
	if live != 0 {
		return KernelStats{}, fmt.Errorf("timing: kernel %q deadlocked with %d live warps", tr.Kernel, live)
	}
	if e.TrackBlockMisses {
		for _, sh := range e.shards {
			for blk, n := range sh.blockMisses {
				e.blockMisses[blk] += n
			}
			clear(sh.blockMisses)
		}
	}
	ks := e.collectStats(tr.Kernel, e.now-start)
	e.publishTelemetry(ks, start)
	return ks, nil
}

// RunApp replays an application's kernels back-to-back (L1s invalidated at
// each boundary, L2/DRAM state persists).
func (e *Engine) RunApp(app string, traces []*simt.KernelTrace) (AppStats, error) {
	out := AppStats{App: app}
	for _, tr := range traces {
		ks, err := e.RunKernel(tr)
		if err != nil {
			return AppStats{}, fmt.Errorf("timing: app %s: %w", app, err)
		}
		out.Kernels = append(out.Kernels, ks)
	}
	return out, nil
}

func (e *Engine) resetForKernel(tr *simt.KernelTrace) {
	e.trace = tr
	e.warpsPerCTA = tr.WarpsPerCTA
	e.ctaQueue = e.ctaQueue[:0]
	e.ctaHead = 0
	for c := 0; c < tr.NumCTAs; c++ {
		e.ctaQueue = append(e.ctaQueue, c)
	}
	e.maxCTAsPerSM = e.cfg.MaxCTAsPerSM
	if byWarps := e.cfg.MaxWarpsPerSM / tr.WarpsPerCTA; byWarps < e.maxCTAsPerSM {
		e.maxCTAsPerSM = byWarps
	}
	if e.maxCTAsPerSM < 1 {
		e.maxCTAsPerSM = 1
	}
	if cap(e.ctaLiveWarps) < tr.NumCTAs {
		e.ctaLiveWarps = make([]int, tr.NumCTAs)
	} else {
		e.ctaLiveWarps = e.ctaLiveWarps[:tr.NumCTAs]
		for i := range e.ctaLiveWarps {
			e.ctaLiveWarps[i] = 0
		}
	}
	if cap(e.warpSlab) < len(tr.Warps) {
		e.warpSlab = make([]warpState, len(tr.Warps))
	} else {
		e.warpSlab = e.warpSlab[:len(tr.Warps)]
	}
	e.liveWarps = 0
	for _, c := range e.chans {
		c.l2.ResetStats()
		c.dram.ResetStats()
		c.responses = 0
	}
	for _, s := range e.sms {
		s.l1.InvalidateAll()
		s.l1.ResetStats()
		s.mshr.Reset()
		s.warps = s.warps[:0]
		s.lastIssued = -1
		s.portFreeAt = e.now
		s.compareInUse = 0
		s.residentCTAs = 0
		s.stepScheduledAt = -1
		s.instructions = 0
		s.requests = 0
	}
	for _, sh := range e.shards {
		sh.sched.reset()
		sh.now = e.now
		sh.lastAt = e.now
		sh.msgSeq = 0
		sh.copyTx, sh.mshrStalls, sh.cmpStalls = 0, 0, 0
		sh.liveDelta = 0
		sh.err = nil
		sh.inbox = sh.inbox[:0]
		for d := range sh.outbox {
			sh.outbox[d] = sh.outbox[d][:0]
		}
	}
}

func (e *Engine) collectStats(kernel string, cycles int64) KernelStats {
	ks := KernelStats{
		Kernel: kernel,
		Cycles: cycles,
	}
	for _, sh := range e.shards {
		ks.CopyTransactions += sh.copyTx
		ks.MSHRStalls += sh.mshrStalls
		ks.CompareStalls += sh.cmpStalls
	}
	for _, s := range e.sms {
		ks.L1.Add(s.l1.Stats)
		ks.Instructions += s.instructions
		ks.NoC.Requests += s.requests
	}
	for _, c := range e.chans {
		ks.L2.Add(c.l2.Stats)
		ks.DRAM.Add(c.dram.Stats)
		ks.NoC.Responses += c.responses
	}
	return ks
}

// BlockMisses returns the per-block L1-miss histogram accumulated across
// every kernel run with TrackBlockMisses enabled. The returned map is live;
// callers must not mutate it.
func (e *Engine) BlockMisses() map[arch.BlockAddr]uint64 { return e.blockMisses }

// ctaLiveCount returns how many of a CTA's warps carry a non-empty trace —
// what installCTA would install as live.
func (e *Engine) ctaLiveCount(cta int) int {
	n := 0
	for wi := 0; wi < e.warpsPerCTA; wi++ {
		if len(e.trace.Warps[cta*e.warpsPerCTA+wi]) > 0 {
			n++
		}
	}
	return n
}

// installCTA makes one CTA resident on an SM, installing its warps from
// the slab (slots are indexed by trace warp index, so shards installing on
// different SMs write disjoint slab regions). Returns the number of live
// warps installed; a fully empty CTA releases its slot again.
func (e *Engine) installCTA(s *smState, cta int, now int64) int {
	s.residentCTAs++
	live := 0
	for wi := 0; wi < e.warpsPerCTA; wi++ {
		idx := cta*e.warpsPerCTA + wi
		trace := e.trace.Warps[idx]
		w := &e.warpSlab[idx]
		*w = warpState{trace: trace, age: s.ageCounter, cta: cta, readyAt: now}
		s.ageCounter++
		if len(trace) == 0 {
			w.retired = true
		} else {
			s.warps = append(s.warps, w)
			live++
		}
	}
	e.ctaLiveWarps[cta] = live
	if live == 0 {
		s.residentCTAs--
	}
	return live
}

// fillSM fills an SM with CTAs up to its occupancy limit — the serial
// initial fill at kernel start. Replacement CTAs during the replay flow
// through the dispatcher's message protocol instead.
func (e *Engine) fillSM(s *smState) {
	for s.residentCTAs < e.maxCTAsPerSM && e.ctaHead < len(e.ctaQueue) {
		cta := e.ctaQueue[e.ctaHead]
		e.ctaHead++
		e.liveWarps += e.installCTA(s, cta, e.now)
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
