package timing

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/cache"
	"github.com/datacentric-gpu/dcrm/internal/dram"
	"github.com/datacentric-gpu/dcrm/internal/noc"
	"github.com/datacentric-gpu/dcrm/internal/simt"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// groupRef is the MSHR waiter payload: a copy-group plus the group's
// generation at allocation time. A completion whose generation no longer
// matches refers to a group already recycled through the pool and is
// dropped — stale fills can never corrupt a reused group.
type groupRef struct {
	g   *copyGroup
	gen uint32
}

// l2bank is one channel's L2 slice plus its (unbounded, merging) miss
// tracking. Waiters live in a slot array keyed by block — the same shape
// as the L1 MSHR — rather than a map: under the constant key churn of
// in-flight fills a map sporadically allocates overflow buckets forever,
// while the slot array and its per-slot SM lists reach a high-water mark
// and are then reused in place, keeping the steady state allocation-free.
type l2bank struct {
	c          *cache.Cache
	portFreeAt int64
	waitSlots  []l2waitSlot
}

// l2waitSlot tracks one in-flight fill and the SMs awaiting it, in arrival
// order.
type l2waitSlot struct {
	blk   arch.BlockAddr
	valid bool
	sms   []int32
}

// addWaiter records smID as waiting on blk's fill and reports whether a
// fill was already outstanding (merged); the caller enqueues the DRAM
// request only for the first waiter.
func (b *l2bank) addWaiter(blk arch.BlockAddr, smID int32) (merged bool) {
	free := -1
	for i := range b.waitSlots {
		s := &b.waitSlots[i]
		if s.valid {
			if s.blk == blk {
				s.sms = append(s.sms, smID)
				return true
			}
		} else if free == -1 {
			free = i
		}
	}
	if free == -1 {
		b.waitSlots = append(b.waitSlots, l2waitSlot{sms: make([]int32, 0, 8)})
		free = len(b.waitSlots) - 1
	}
	s := &b.waitSlots[free]
	s.blk, s.valid = blk, true
	s.sms = append(s.sms[:0], smID)
	return false
}

// takeWaiters releases blk's waiter list, returning the SM ids in arrival
// order, or nil when no fill is outstanding. The slice aliases the slot's
// storage and is valid until the slot is reused by a later addWaiter.
func (b *l2bank) takeWaiters(blk arch.BlockAddr) []int32 {
	for i := range b.waitSlots {
		s := &b.waitSlots[i]
		if s.valid && s.blk == blk {
			s.valid = false
			return s.sms
		}
	}
	return nil
}

// Engine is the timing simulator. Build one with New, then replay kernel
// traces with RunKernel; L2 and DRAM state persist across kernels of the
// same application while L1s are invalidated at kernel boundaries. Not safe
// for concurrent use.
//
// The engine is allocation-free in steady state: replaying the same (or a
// same-shaped) kernel repeatedly on one engine performs zero heap
// allocations per replay. Events are value types in a non-boxing
// scheduler, copy-groups and load-ops are pooled on free-lists, warp state
// lives in a reusable slab, and every auxiliary slice (CTA queue, L2
// waiter lists, DRAM completion scratch) is recycled across kernels.
type Engine struct {
	cfg arch.Config
	// Policy selects the warp scheduler (default GTO).
	Policy SchedulerPolicy
	// CompareBufferSize overrides the pending-comparison buffer entries
	// (default CompareBufferEntries); used by the sizing ablation.
	CompareBufferSize int
	// TrackBlockMisses enables the per-block L1-miss histogram used to
	// weight Fig. 9's fault injection.
	TrackBlockMisses bool
	// Metrics, when non-nil, receives per-SM, per-L2-bank, and per-DRAM-
	// channel counters after every kernel. The hot event loop is untouched
	// — counters are published from the per-component Stats at kernel
	// boundaries — so attaching a registry neither perturbs results nor
	// costs measurable time (see BenchmarkRunKernelTelemetry).
	Metrics *telemetry.Registry
	// Trace, when non-nil, records a Chrome trace_event timeline: one lane
	// per SM, per L2 bank, and per DRAM channel, with one span per kernel
	// and per-channel counter tracks.
	Trace *telemetry.Trace
	// OnStore, when non-nil, observes every store's commit at its L2 bank:
	// the block written and the port-serialized commit cycle. One
	// instrumented replay per application is how the fault layer captures
	// the store-commit timeline (fault.Timeline) that decides whether a
	// later store masks a transient flip. Observation only — attaching it
	// does not perturb replay timing — but like Trace it belongs on
	// dedicated instrumented replays, not on golden-stat runs.
	OnStore func(blk arch.BlockAddr, at int64)

	blockMisses map[arch.BlockAddr]uint64
	traceMeta   bool // lane-metadata events emitted (once per engine)

	plan  ProtectionPlan
	xbar  *noc.Crossbar
	banks []*l2bank
	drams []*dram.Controller
	sms   []*smState

	sched scheduler
	now   int64

	// Free-lists and reusable buffers; see the allocation contract above.
	groupPool   []*copyGroup
	loadPool    []*loadOp
	warpSlab    []warpState
	warpNext    int
	dramScratch []dram.Completion
	dramPumpAt  []int64

	// injectFns holds InjectAt callbacks; evInject events carry an index
	// into it (one-shot: slots nil out after firing).
	injectFns []func(now int64)

	// Per-kernel bookkeeping.
	trace        *simt.KernelTrace
	ctaQueue     []int
	ctaHead      int // dispatch position within ctaQueue (no reslicing)
	warpsPerCTA  int
	maxCTAsPerSM int
	ctaLiveWarps []int // live warps per CTA, indexed by CTA id
	liveWarps    int
	copyTx       uint64
	mshrStalls   uint64
	cmpStalls    uint64
}

// New builds an engine for the configuration. plan may be nil (baseline, no
// protection).
func New(cfg arch.Config, plan ProtectionPlan) (*Engine, error) {
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("timing: %w", err)
	}
	xbar, err := noc.New(cfg)
	if err != nil {
		return nil, fmt.Errorf("timing: %w", err)
	}
	e := &Engine{
		cfg:               cfg,
		Policy:            GTO,
		CompareBufferSize: CompareBufferEntries,
		plan:              plan,
		xbar:              xbar,
		dramPumpAt:        make([]int64, cfg.NumMemChannels),
		blockMisses:       make(map[arch.BlockAddr]uint64),
	}
	for ch := 0; ch < cfg.NumMemChannels; ch++ {
		c, err := cache.New(cfg.L2)
		if err != nil {
			return nil, fmt.Errorf("timing: L2 bank %d: %w", ch, err)
		}
		e.banks = append(e.banks, &l2bank{c: c})
		ctl, err := dram.NewController(cfg)
		if err != nil {
			return nil, fmt.Errorf("timing: DRAM channel %d: %w", ch, err)
		}
		e.drams = append(e.drams, ctl)
		e.dramPumpAt[ch] = -1
	}
	for i := 0; i < cfg.NumSMs; i++ {
		l1, err := cache.New(cfg.L1)
		if err != nil {
			return nil, fmt.Errorf("timing: L1 %d: %w", i, err)
		}
		mshr, err := cache.NewMSHR[groupRef](cfg.L1MSHRs)
		if err != nil {
			return nil, fmt.Errorf("timing: MSHR %d: %w", i, err)
		}
		e.sms = append(e.sms, &smState{id: i, engine: e, l1: l1, mshr: mshr, lastIssued: -1, stepScheduledAt: -1})
	}
	// Pre-fill the free-lists and waiter slots past their expected
	// high-water marks (bounded by outstanding L1 misses and resident
	// warps) so the replay loop reaches its allocation-free steady state
	// on the first kernel rather than trickling pool growth across many
	// replays as cache state evolves.
	for i := 0; i < cfg.NumSMs*cfg.L1MSHRs; i++ {
		e.groupPool = append(e.groupPool, &copyGroup{})
	}
	for i := 0; i < cfg.NumSMs*cfg.MaxWarpsPerSM; i++ {
		e.loadPool = append(e.loadPool, &loadOp{})
	}
	for _, b := range e.banks {
		b.waitSlots = make([]l2waitSlot, 0, 64)
		for i := 0; i < 64; i++ {
			b.waitSlots = append(b.waitSlots, l2waitSlot{sms: make([]int32, 0, 16)})
		}
	}
	return e, nil
}

// post enqueues a typed event due at cycle `at`.
func (e *Engine) post(at int64, ev event) {
	ev.at = at
	e.sched.schedule(ev, e.now)
}

// dispatch executes one popped event. The switch bodies mirror the
// closures of the original engine one for one, including the staleness
// guards that let superseded step and pump markers die silently.
func (e *Engine) dispatch(ev *event) {
	now := e.now
	switch ev.kind {
	case evSMStep:
		s := e.sms[ev.sm]
		if s.stepScheduledAt == now {
			s.step(now)
		}
	case evGroupArrive:
		if ev.g.gen == ev.gen {
			ev.g.arrive(now, e.sms[ev.sm])
		}
	case evL2Access:
		e.l2Access(int(ev.sm), int(ev.ch), ev.blk, now, ev.write)
	case evSMReceive:
		e.smReceive(e.sms[ev.sm], ev.blk, now)
	case evDRAMComplete:
		e.dramComplete(int(ev.ch), ev.blk, ev.write, now)
	case evDRAMPump:
		ch := int(ev.ch)
		if e.dramPumpAt[ch] == now {
			e.dramPumpAt[ch] = -1
			e.pumpDRAM(ch, now)
		}
	case evInject:
		if fn := e.injectFns[ev.sm]; fn != nil {
			e.injectFns[ev.sm] = nil
			fn(now)
		}
	}
}

// InjectAt schedules fn to run exactly once when the replay reaches the
// given cycle — the timing-engine injection hook the transient fault
// model's semantics are defined against. The callback rides the ordinary
// event scheduler, so it is totally ordered against every memory-system
// event at that cycle (deterministically, by scheduling sequence). A
// cycle already in the past is clamped to the current cycle. Call before
// or during a replay; a callback scheduled past the kernel's natural end
// extends the replay until it fires, so pick cycles within the span of
// the work being replayed (instrumented replays only — never attach
// injections to runs whose statistics feed the golden gates).
func (e *Engine) InjectAt(cycle int64, fn func(now int64)) {
	if fn == nil {
		return
	}
	if cycle < e.now {
		cycle = e.now
	}
	idx := len(e.injectFns)
	e.injectFns = append(e.injectFns, fn)
	e.post(cycle, event{kind: evInject, sm: int32(idx)})
}

// takeGroup pops a copy-group from the pool (or grows it), initializing
// the tracking fields. The generation survives from the pooled object so
// outstanding references from a previous life stay invalid.
func (e *Engine) takeGroup(op *loadOp, total, needed int, protected bool) *copyGroup {
	var g *copyGroup
	if n := len(e.groupPool); n > 0 {
		g = e.groupPool[n-1]
		e.groupPool = e.groupPool[:n-1]
	} else {
		g = &copyGroup{}
	}
	g.op = op
	g.total = total
	g.needed = needed
	g.arrived = 0
	g.protected = protected
	g.doneSent = false
	return g
}

// releaseGroup recycles a fully arrived copy-group, bumping its generation
// so any stale reference (event or MSHR waiter) is recognizably dead.
func (e *Engine) releaseGroup(g *copyGroup) {
	g.gen++
	g.op = nil
	e.groupPool = append(e.groupPool, g)
}

// takeLoadOp pops a load-op from the pool (or grows it).
func (e *Engine) takeLoadOp(w *warpState, s *smState, remaining int) *loadOp {
	var op *loadOp
	if n := len(e.loadPool); n > 0 {
		op = e.loadPool[n-1]
		e.loadPool = e.loadPool[:n-1]
	} else {
		op = &loadOp{}
	}
	op.warp = w
	op.sm = s
	op.remaining = remaining
	return op
}

// releaseLoadOp recycles a completed load-op. Copy-groups that already
// consumed their blockDone never touch the op again (doneSent), so the
// object is safe to reuse immediately.
func (e *Engine) releaseLoadOp(op *loadOp) {
	op.warp = nil
	op.sm = nil
	e.loadPool = append(e.loadPool, op)
}

// RunKernel replays one kernel trace to completion and returns its stats.
func (e *Engine) RunKernel(tr *simt.KernelTrace) (KernelStats, error) {
	if tr == nil || len(tr.Warps) == 0 {
		return KernelStats{}, fmt.Errorf("timing: empty trace")
	}
	e.resetForKernel(tr)
	start := e.now

	for _, s := range e.sms {
		e.dispatchTo(s)
		e.scheduleStep(s, e.now)
	}
	for !e.sched.empty() {
		ev := e.sched.pop()
		if ev.at < e.now {
			return KernelStats{}, fmt.Errorf("timing: time ran backwards: %d < %d", ev.at, e.now)
		}
		e.now = ev.at
		e.dispatch(&ev)
	}
	if e.liveWarps != 0 {
		return KernelStats{}, fmt.Errorf("timing: kernel %q deadlocked with %d live warps", tr.Kernel, e.liveWarps)
	}
	ks := e.collectStats(tr.Kernel, e.now-start)
	e.publishTelemetry(ks, start)
	return ks, nil
}

// RunApp replays an application's kernels back-to-back (L1s invalidated at
// each boundary, L2/DRAM state persists).
func (e *Engine) RunApp(app string, traces []*simt.KernelTrace) (AppStats, error) {
	out := AppStats{App: app}
	for _, tr := range traces {
		ks, err := e.RunKernel(tr)
		if err != nil {
			return AppStats{}, fmt.Errorf("timing: app %s: %w", app, err)
		}
		out.Kernels = append(out.Kernels, ks)
	}
	return out, nil
}

func (e *Engine) resetForKernel(tr *simt.KernelTrace) {
	e.trace = tr
	e.warpsPerCTA = tr.WarpsPerCTA
	e.ctaQueue = e.ctaQueue[:0]
	e.ctaHead = 0
	for c := 0; c < tr.NumCTAs; c++ {
		e.ctaQueue = append(e.ctaQueue, c)
	}
	e.maxCTAsPerSM = e.cfg.MaxCTAsPerSM
	if byWarps := e.cfg.MaxWarpsPerSM / tr.WarpsPerCTA; byWarps < e.maxCTAsPerSM {
		e.maxCTAsPerSM = byWarps
	}
	if e.maxCTAsPerSM < 1 {
		e.maxCTAsPerSM = 1
	}
	if cap(e.ctaLiveWarps) < tr.NumCTAs {
		e.ctaLiveWarps = make([]int, tr.NumCTAs)
	} else {
		e.ctaLiveWarps = e.ctaLiveWarps[:tr.NumCTAs]
		for i := range e.ctaLiveWarps {
			e.ctaLiveWarps[i] = 0
		}
	}
	if cap(e.warpSlab) < len(tr.Warps) {
		e.warpSlab = make([]warpState, len(tr.Warps))
	} else {
		e.warpSlab = e.warpSlab[:len(tr.Warps)]
	}
	e.warpNext = 0
	e.liveWarps = 0
	e.copyTx, e.mshrStalls, e.cmpStalls = 0, 0, 0
	e.xbar.Stats = noc.Stats{}
	for _, b := range e.banks {
		b.c.ResetStats()
	}
	for _, d := range e.drams {
		d.ResetStats()
	}
	for _, s := range e.sms {
		s.l1.InvalidateAll()
		s.l1.ResetStats()
		s.mshr.Reset()
		s.warps = s.warps[:0]
		s.lastIssued = -1
		s.portFreeAt = e.now
		s.compareInUse = 0
		s.residentCTAs = 0
		s.stepScheduledAt = -1
		s.instructions = 0
	}
}

func (e *Engine) collectStats(kernel string, cycles int64) KernelStats {
	ks := KernelStats{
		Kernel:           kernel,
		Cycles:           cycles,
		NoC:              e.xbar.Stats,
		CopyTransactions: e.copyTx,
		MSHRStalls:       e.mshrStalls,
		CompareStalls:    e.cmpStalls,
	}
	for _, s := range e.sms {
		ks.L1.Add(s.l1.Stats)
		ks.Instructions += s.instructions
	}
	for _, b := range e.banks {
		ks.L2.Add(b.c.Stats)
	}
	for _, d := range e.drams {
		ks.DRAM.Add(d.Stats)
	}
	return ks
}

// BlockMisses returns the per-block L1-miss histogram accumulated across
// every kernel run with TrackBlockMisses enabled. The returned map is live;
// callers must not mutate it.
func (e *Engine) BlockMisses() map[arch.BlockAddr]uint64 { return e.blockMisses }

// dispatchTo fills an SM with CTAs up to its occupancy limit. Warp state
// comes from the engine's slab: one slot per trace warp, reset in place at
// each kernel boundary.
func (e *Engine) dispatchTo(s *smState) {
	for s.residentCTAs < e.maxCTAsPerSM && e.ctaHead < len(e.ctaQueue) {
		cta := e.ctaQueue[e.ctaHead]
		e.ctaHead++
		s.residentCTAs++
		live := 0
		for wi := 0; wi < e.warpsPerCTA; wi++ {
			trace := e.trace.Warps[cta*e.warpsPerCTA+wi]
			w := &e.warpSlab[e.warpNext]
			e.warpNext++
			*w = warpState{trace: trace, age: s.ageCounter, cta: cta, readyAt: e.now}
			s.ageCounter++
			if len(trace) == 0 {
				w.retired = true
			} else {
				s.warps = append(s.warps, w)
				live++
			}
		}
		e.ctaLiveWarps[cta] = live
		e.liveWarps += live
		if live == 0 {
			s.residentCTAs--
		}
	}
}

// warpRetired accounts a warp's retirement and recycles its CTA slot.
func (e *Engine) warpRetired(s *smState, w *warpState) {
	e.liveWarps--
	e.ctaLiveWarps[w.cta]--
	if e.ctaLiveWarps[w.cta] > 0 {
		return
	}
	s.residentCTAs--
	// Drop the CTA's warps from the resident set.
	kept := s.warps[:0]
	for _, rw := range s.warps {
		if rw.cta != w.cta {
			kept = append(kept, rw)
		}
	}
	s.warps = kept
	s.lastIssued = -1
	e.dispatchTo(s)
	e.wakeSM(s, e.now)
}

// scheduleStep arranges for the SM's issue loop to run at cycle `at`,
// deduplicating against an already-pending earlier step.
func (e *Engine) scheduleStep(s *smState, at int64) {
	if at < e.now {
		at = e.now
	}
	if s.stepScheduledAt >= 0 && s.stepScheduledAt <= at {
		return
	}
	s.stepScheduledAt = at
	// The event only acts when it is still the SM's current step marker:
	// superseded (stale) events die silently, which keeps the event count
	// linear in useful work. The marker always names exactly one live
	// event, so no wake-up is ever lost.
	e.post(at, event{kind: evSMStep, sm: int32(s.id)})
}

// wakeSM nudges the SM's issue loop at the current cycle, unblocking any
// warps parked on a structural stall (MSHR or compare buffer full): wake
// moments are exactly the resource-release moments.
func (e *Engine) wakeSM(s *smState, now int64) {
	for _, w := range s.warps {
		if w.readyAt >= stallParked {
			w.readyAt = now
		}
	}
	e.scheduleStep(s, now)
}

// issueLoad issues (or resumes) a load instruction's coalesced transactions
// at cycle t. It charges one LD/ST port cycle per transaction, including
// replica-copy transactions.
func (e *Engine) issueLoad(s *smState, w *warpState, in *simt.Instr, t int64) {
	if w.curLoad == nil {
		w.pendingLoads++
		w.curLoad = e.takeLoadOp(w, s, len(in.Blocks))
		s.instructions++
	}
	op := w.curLoad
	used := int64(0)
	for w.txIndex < len(in.Blocks) {
		blk := in.Blocks[w.txIndex]
		at := t + used
		copies := 1
		if e.plan != nil {
			copies = e.plan.Copies(in.PC, in.BufID)
		}

		if s.l1.Probe(blk) {
			// L1 hit: normal operation, no replication (Section IV-B1).
			s.l1.Read(blk)
			g := e.takeGroup(op, 1, 1, false)
			e.post(at+int64(e.cfg.L1HitLatency), event{kind: evGroupArrive, g: g, gen: g.gen, sm: int32(s.id)})
			used++
			w.txIndex++
			continue
		}

		// L1 miss: count the misses we are about to take (primary plus any
		// replica copies not resident) and check structural resources.
		missing := 1
		for c := 1; c < copies; c++ {
			if !s.l1.Probe(e.plan.ReplicaBlock(in.BufID, blk, c)) {
				missing++
			}
		}
		if copies > 1 && s.compareInUse >= e.CompareBufferSize {
			e.cmpStalls++
			e.stallRetry(s, w, t, used)
			return
		}
		if s.mshr.Capacity()-s.mshr.InUse() < missing {
			e.mshrStalls++
			e.stallRetry(s, w, t, used)
			return
		}

		needed := copies
		if copies == 1 || (e.plan != nil && e.plan.Lazy()) {
			needed = 1
		}
		g := e.takeGroup(op, copies, needed, copies > 1)
		if g.protected {
			s.compareInUse++
			e.copyTx += uint64(copies - 1)
		}
		for c := 0; c < copies; c++ {
			cb := blk
			if c > 0 {
				cb = e.plan.ReplicaBlock(in.BufID, blk, c)
			}
			txAt := t + used
			used++ // each copy transaction consumes an LD/ST port cycle
			if s.l1.Read(cb) {
				// This copy is resident in L1.
				e.post(txAt+int64(e.cfg.L1HitLatency), event{kind: evGroupArrive, g: g, gen: g.gen, sm: int32(s.id)})
				continue
			}
			if e.TrackBlockMisses {
				e.blockMisses[cb]++
			}
			switch s.mshr.Allocate(cb, groupRef{g: g, gen: g.gen}) {
			case cache.MSHRNew:
				e.sendToL2(s, cb, txAt, false)
			case cache.MSHRMerged:
				// An earlier miss to this block is in flight; we ride it.
			case cache.MSHRFull:
				// Cannot happen: headroom was checked above.
			}
		}
		w.txIndex++
	}
	s.portFreeAt = t + maxI64(used, 1)
	w.readyAt = s.portFreeAt
	w.curLoad = nil
	s.finishInstr(w)
}

// stallRetry charges the port for the work done so far and parks the warp
// until a resource-release wake (wakeSM) clears the sentinel. A structural
// stall implies outstanding fills, so a wake always follows — polling on a
// timer would multiply events without making progress.
func (e *Engine) stallRetry(s *smState, w *warpState, t, used int64) {
	s.portFreeAt = t + maxI64(used, 1)
	w.readyAt = stallParked
}

// issueStore forwards a store's transactions write-through to L2, returning
// the port cycles consumed.
func (e *Engine) issueStore(s *smState, in *simt.Instr, t int64) int64 {
	for i, blk := range in.Blocks {
		s.l1.Write(blk)
		e.sendToL2(s, blk, t+int64(i), true)
	}
	return int64(len(in.Blocks))
}

// sendToL2 routes a request over the crossbar and schedules the bank access.
func (e *Engine) sendToL2(s *smState, blk arch.BlockAddr, t int64, write bool) {
	ch := e.cfg.ChannelOf(blk)
	arrive, err := e.xbar.RouteRequest(s.id, ch, t)
	if err != nil {
		// Unreachable by construction: SM and channel ids are in range.
		return
	}
	e.post(arrive, event{kind: evL2Access, sm: int32(s.id), ch: int32(ch), blk: blk, write: write})
}

// l2Access performs the bank lookup, serialized on the bank port.
func (e *Engine) l2Access(smID, ch int, blk arch.BlockAddr, now int64, write bool) {
	b := e.banks[ch]
	st := now
	if b.portFreeAt > st {
		st = b.portFreeAt
	}
	b.portFreeAt = st + 1
	hitLat := int64(e.cfg.L2HitLatency)

	if write {
		if e.OnStore != nil {
			e.OnStore(blk, st)
		}
		if !b.c.Write(blk) {
			// No-write-allocate: miss goes to DRAM.
			e.drams[ch].Enqueue(dram.Request{Block: blk, Write: true}, st+hitLat)
			e.pumpDRAM(ch, st+hitLat)
		}
		return
	}

	if b.c.Read(blk) {
		e.respond(ch, smID, blk, st+hitLat)
		return
	}
	// Miss: merge on an outstanding fill if one exists.
	if b.addWaiter(blk, int32(smID)) {
		return
	}
	e.drams[ch].Enqueue(dram.Request{Block: blk}, st+hitLat)
	e.pumpDRAM(ch, st+hitLat)
}

// respond routes a fill back to the SM.
func (e *Engine) respond(ch, smID int, blk arch.BlockAddr, t int64) {
	arrive, err := e.xbar.RouteResponse(ch, smID, t)
	if err != nil {
		return
	}
	e.post(arrive, event{kind: evSMReceive, sm: int32(smID), blk: blk})
}

// smReceive fills L1 and completes every waiter of the returned block.
func (e *Engine) smReceive(s *smState, blk arch.BlockAddr, now int64) {
	s.l1.Fill(blk)
	for _, ref := range s.mshr.Complete(blk) {
		if ref.g.gen == ref.gen {
			ref.g.arrive(now, s)
		}
	}
	// The MSHR entry just freed may unblock a parked warp even if no load
	// completed.
	e.wakeSM(s, now)
}

// pumpDRAM advances the channel's controller and schedules completions and
// the next scheduling opportunity.
func (e *Engine) pumpDRAM(ch int, now int64) {
	ctl := e.drams[ch]
	e.dramScratch = ctl.AdvanceAppend(e.dramScratch[:0], now)
	for _, comp := range e.dramScratch {
		e.post(comp.At, event{kind: evDRAMComplete, ch: int32(ch), blk: comp.Req.Block, write: comp.Req.Write})
	}
	if ctl.QueueLen() == 0 {
		return
	}
	next := ctl.NextStartTime()
	if next <= now {
		next = now + 1
	}
	if e.dramPumpAt[ch] >= 0 && e.dramPumpAt[ch] <= next {
		return
	}
	e.dramPumpAt[ch] = next
	e.post(next, event{kind: evDRAMPump, ch: int32(ch)})
}

// dramComplete fills L2 and fans the data out to waiting SMs.
func (e *Engine) dramComplete(ch int, blk arch.BlockAddr, write bool, now int64) {
	defer e.pumpDRAM(ch, now)
	if write {
		return
	}
	b := e.banks[ch]
	if ev, had := b.c.Fill(blk); had && ev.Dirty {
		// Dirty victim: write back to DRAM.
		e.drams[ch].Enqueue(dram.Request{Block: ev.Block, Write: true}, now)
	}
	for _, smID := range b.takeWaiters(blk) {
		e.respond(ch, int(smID), blk, now)
	}
}

func maxI64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}
