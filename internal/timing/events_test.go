package timing

import (
	"math/rand"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// The scheduler's contract: events pop in strict (at, seq) order — earliest
// cycle first, scheduling order breaking ties — regardless of whether an
// event travelled through the binary heap or the same-cycle FIFO fast
// path. Every test here identifies events by the blk field.

// popAll drains the scheduler, advancing `now` like the engine run loop
// does, and returns the event ids in pop order.
func popAll(t *testing.T, s *scheduler, now int64) []uint64 {
	t.Helper()
	var order []uint64
	for !s.empty() {
		ev := s.pop()
		if ev.at < now {
			t.Fatalf("time ran backwards: popped at=%d after now=%d", ev.at, now)
		}
		now = ev.at
		order = append(order, uint64(ev.blk))
	}
	return order
}

// TestSchedulerSeqTieBreak: events scheduled for the same cycle pop in
// scheduling order, on both the heap path and the FIFO path.
func TestSchedulerSeqTieBreak(t *testing.T) {
	for _, fifo := range []bool{false, true} {
		var s scheduler
		now := int64(0)
		if fifo {
			now = 10 // schedule at == now → FIFO path
		}
		for i := 0; i < 100; i++ {
			s.schedule(event{at: 10, blk: arch.BlockAddr(i)}, now)
		}
		order := popAll(t, &s, now)
		if len(order) != 100 {
			t.Fatalf("fifo=%v: popped %d events, want 100", fifo, len(order))
		}
		for i, id := range order {
			if id != uint64(i) {
				t.Fatalf("fifo=%v: pop %d returned event %d; seq tie-break broken", fifo, i, id)
			}
		}
	}
}

// TestSchedulerFIFOMatchesHeapPath: the same schedule sequence must pop
// identically whether the events take the same-cycle FIFO (scheduled at
// the current cycle) or the heap (scheduled from an earlier cycle).
func TestSchedulerFIFOMatchesHeapPath(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type sched struct {
		at int64
		id uint64
	}
	var seq []sched
	for i := 0; i < 500; i++ {
		seq = append(seq, sched{at: 50 + int64(rng.Intn(5)), id: uint64(i)})
	}

	// Heap path: schedule everything before cycle 50 is reached.
	var viaHeap scheduler
	for _, ev := range seq {
		viaHeap.schedule(event{at: ev.at, blk: arch.BlockAddr(ev.id)}, 0)
	}
	heapOrder := popAll(t, &viaHeap, 0)

	// FIFO path: same-cycle events (at == 50) are scheduled while the
	// engine is processing cycle 50, so they hit the FIFO; later cycles
	// still go through the heap.
	var viaFIFO scheduler
	for _, ev := range seq {
		viaFIFO.schedule(event{at: ev.at, blk: arch.BlockAddr(ev.id)}, 50)
	}
	fifoOrder := popAll(t, &viaFIFO, 50)

	if len(heapOrder) != len(fifoOrder) {
		t.Fatalf("lengths differ: heap %d, fifo %d", len(heapOrder), len(fifoOrder))
	}
	for i := range heapOrder {
		if heapOrder[i] != fifoOrder[i] {
			t.Fatalf("pop %d: heap path returned %d, FIFO path %d — paths diverge",
				i, heapOrder[i], fifoOrder[i])
		}
	}
}

// refScheduler is the obviously correct reference: a flat list scanned for
// the (at, seq) minimum on every pop.
type refScheduler struct {
	evs []event
	seq uint64
}

func (r *refScheduler) schedule(at int64, id uint64) {
	r.evs = append(r.evs, event{at: at, seq: r.seq, blk: arch.BlockAddr(id)})
	r.seq++
}

func (r *refScheduler) pop() event {
	best := 0
	for i := 1; i < len(r.evs); i++ {
		if before(&r.evs[i], &r.evs[best]) {
			best = i
		}
	}
	ev := r.evs[best]
	r.evs = append(r.evs[:best], r.evs[best+1:]...)
	return ev
}

// TestSchedulerRandomizedAgainstReference is the fuzz-style invariant
// test: a long random interleaving of schedules (some due at the current
// cycle, some in the future) and pops must match the reference
// implementation event for event.
func TestSchedulerRandomizedAgainstReference(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var s scheduler
		var ref refScheduler
		now := int64(0)
		nextID := uint64(0)

		for step := 0; step < 20000; step++ {
			if s.pending() == 0 || rng.Intn(3) != 0 {
				// Schedule 1–4 events: mostly future, sometimes due now —
				// exactly the mix the engine produces (wakeSM posts at the
				// current cycle, memory latencies post into the future).
				n := 1 + rng.Intn(4)
				for i := 0; i < n; i++ {
					at := now
					if rng.Intn(4) != 0 {
						at += int64(rng.Intn(100))
					}
					s.schedule(event{at: at, blk: arch.BlockAddr(nextID)}, now)
					ref.schedule(at, nextID)
					nextID++
				}
				continue
			}
			got := s.pop()
			want := ref.pop()
			if got.blk != want.blk || got.at != want.at || got.seq != want.seq {
				t.Fatalf("seed %d step %d: popped (id %d, at %d, seq %d), reference (id %d, at %d, seq %d)",
					seed, step, got.blk, got.at, got.seq, want.blk, want.at, want.seq)
			}
			if got.at < now {
				t.Fatalf("seed %d: time ran backwards (%d < %d)", seed, got.at, now)
			}
			now = got.at
		}
		// Drain both completely.
		for !s.empty() {
			got, want := s.pop(), ref.pop()
			if got.blk != want.blk {
				t.Fatalf("seed %d drain: popped %d, reference %d", seed, got.blk, want.blk)
			}
			now = got.at
		}
		if len(ref.evs) != 0 {
			t.Fatalf("seed %d: scheduler empty but reference holds %d events", seed, len(ref.evs))
		}
	}
}

// steadyTrace is a memory-heavy workload for the allocation tests and
// benchmarks: many warps mixing loads (spanning L1/L2/DRAM and, under a
// plan, the replica copy path), compute, and stores.
func steadyTrace() *simt.KernelTrace {
	rng := rand.New(rand.NewSource(9))
	var warps [][]simt.Instr
	for w := 0; w < 64; w++ {
		var is []simt.Instr
		for i := 0; i < 40; i++ {
			is = append(is, load(1, 0, arch.BlockAddr(rng.Intn(1<<13))), compute(int32(1+rng.Intn(4))))
		}
		is = append(is, store(2, 1, arch.BlockAddr(1<<15+w)))
		warps = append(warps, is)
	}
	return mkTrace(4, warps...)
}

// TestRunKernelSteadyStateZeroAllocs pins the allocation contract: after a
// warm-up replay, RunKernel performs zero heap allocations per replay —
// for the baseline and for both protection schemes. (The warm-up grows the
// event heap, pools, slabs, and scratch buffers to the kernel's working
// set; every later replay reuses them.)
func TestRunKernelSteadyStateZeroAllocs(t *testing.T) {
	tr := steadyTrace()
	cases := []struct {
		name string
		plan ProtectionPlan
	}{
		{"baseline", nil},
		{"duplication-lazy", testPlan{copies: 2, lazy: true, offset: 1 << 20}},
		{"triplication", testPlan{copies: 3, lazy: false, offset: 1 << 20}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, err := New(arch.Default(), tc.plan)
			if err != nil {
				t.Fatal(err)
			}
			// Warm-up: size every pool and buffer.
			if _, err := e.RunKernel(tr); err != nil {
				t.Fatal(err)
			}
			avg := testing.AllocsPerRun(5, func() {
				if _, err := e.RunKernel(tr); err != nil {
					t.Fatal(err)
				}
			})
			if avg != 0 {
				t.Errorf("steady-state RunKernel allocates %.1f objects per replay, want 0", avg)
			}
		})
	}
}

// runSteadyBenchmark replays the steady trace b.N times on one engine —
// the fault-injection campaign and Fig. 7 sweep pattern whose serial cost
// dominates suite wall-clock.
func runSteadyBenchmark(b *testing.B, plan ProtectionPlan) {
	e, err := New(arch.Default(), plan)
	if err != nil {
		b.Fatal(err)
	}
	tr := steadyTrace()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.RunKernel(tr); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRunKernel is the canonical steady-state replay benchmark the
// BENCH_timing.json baseline records (see scripts/bench.sh).
func BenchmarkRunKernel(b *testing.B) { runSteadyBenchmark(b, nil) }

// BenchmarkRunKernelDetection replays under lazy duplication: every
// protected L1 miss fans out one extra copy transaction.
func BenchmarkRunKernelDetection(b *testing.B) {
	runSteadyBenchmark(b, testPlan{copies: 2, lazy: true, offset: 1 << 20})
}

// BenchmarkRunKernelCorrection replays under eager triplication: two extra
// copies per protected miss, completion on the last arrival.
func BenchmarkRunKernelCorrection(b *testing.B) {
	runSteadyBenchmark(b, testPlan{copies: 3, lazy: false, offset: 1 << 20})
}
