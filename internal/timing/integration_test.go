package timing

import (
	"math/rand"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// TestDeterministicCycles: identical traces and configuration must simulate
// to identical cycle counts and statistics — campaigns and experiments rely
// on reproducibility.
func TestDeterministicCycles(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	var warps [][]simt.Instr
	for w := 0; w < 16; w++ {
		var is []simt.Instr
		for i := 0; i < 30; i++ {
			is = append(is,
				load(1, 0, arch.BlockAddr(rng.Intn(2048)), arch.BlockAddr(rng.Intn(2048))),
				compute(int32(1+rng.Intn(5))),
			)
		}
		is = append(is, store(2, 1, arch.BlockAddr(8192+w)))
		warps = append(warps, is)
	}
	tr := mkTrace(4, warps...)

	run := func() KernelStats {
		e, err := New(arch.Default(), testPlan{copies: 2, lazy: true, offset: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		ks, err := e.RunKernel(tr)
		if err != nil {
			t.Fatal(err)
		}
		return ks
	}
	a, b := run(), run()
	if a.Cycles != b.Cycles {
		t.Errorf("cycles differ across identical runs: %d vs %d", a.Cycles, b.Cycles)
	}
	if a.L1 != b.L1 || a.L2 != b.L2 || a.DRAM != b.DRAM {
		t.Error("statistics differ across identical runs")
	}
}

// TestChannelDistribution: consecutive blocks must spread across all L2
// channels/DRAM controllers.
func TestChannelDistribution(t *testing.T) {
	cfg := arch.Default()
	var warps [][]simt.Instr
	for w := 0; w < 6; w++ {
		var is []simt.Instr
		for i := 0; i < 24; i++ {
			is = append(is, load(1, 0, arch.BlockAddr(w*24+i)), compute(1))
		}
		warps = append(warps, is)
	}
	tr := mkTrace(1, warps...)
	e, err := New(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := e.RunKernel(tr)
	if err != nil {
		t.Fatal(err)
	}
	if ks.DRAM.Served == 0 {
		t.Fatal("no DRAM traffic")
	}
	// Every controller must have served roughly its share.
	for ch, c := range e.chans {
		if c.dram.Stats.Served == 0 {
			t.Errorf("channel %d served nothing; interleaving broken", ch)
		}
	}
}

// TestBlockMissTracking: the histogram must cover exactly the missed blocks
// including replicas, and be absent when disabled.
func TestBlockMissTracking(t *testing.T) {
	// Two loads of the same block: both issue before the fill returns, so
	// both count as misses (the second merges in the MSHR but still
	// represents an L2/DRAM-exposed access).
	tr := mkTrace(1, []simt.Instr{load(1, 0, 100), load(1, 0, 100), compute(1)})
	plan := testPlan{copies: 2, lazy: true, offset: 1000}

	e, err := New(arch.Default(), plan)
	if err != nil {
		t.Fatal(err)
	}
	e.TrackBlockMisses = true
	if _, err := e.RunKernel(tr); err != nil {
		t.Fatal(err)
	}
	hist := e.BlockMisses()
	if hist[100] != 2 || hist[1100] != 2 {
		t.Errorf("histogram = %v, want two misses each for 100 and its replica 1100", hist)
	}

	off, err := New(arch.Default(), plan)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := off.RunKernel(tr); err != nil {
		t.Fatal(err)
	}
	if len(off.BlockMisses()) != 0 {
		t.Error("histogram populated with tracking disabled")
	}
}

// TestCompareBufferSizeMonotonic: a smaller pending-compare buffer can only
// slow protected runs down.
func TestCompareBufferSizeMonotonic(t *testing.T) {
	var warps [][]simt.Instr
	for w := 0; w < 32; w++ {
		warps = append(warps, []simt.Instr{load(1, 0, arch.BlockAddr(w)), compute(5)})
	}
	tr := mkTrace(32, warps...)
	cycles := func(size int) int64 {
		e, err := New(arch.Default(), testPlan{copies: 2, lazy: true, offset: 1 << 20})
		if err != nil {
			t.Fatal(err)
		}
		e.CompareBufferSize = size
		ks, err := e.RunKernel(tr)
		if err != nil {
			t.Fatal(err)
		}
		return ks.Cycles
	}
	small, big := cycles(1), cycles(64)
	if small < big {
		t.Errorf("1-entry buffer (%d cycles) outperformed 64-entry (%d)", small, big)
	}
}

// TestWarpsObserveProgramOrder: a warp's own instructions execute in program
// order — the store's data depends on the loads (scoreboard), so the final
// memory state reflects completed loads.
func TestWarpsObserveProgramOrder(t *testing.T) {
	// Interleave many warps; each issues load→compute→store. If the
	// scoreboard were broken the engine would deadlock or mis-count
	// instructions.
	var warps [][]simt.Instr
	for w := 0; w < 24; w++ {
		warps = append(warps, []simt.Instr{
			load(1, 0, arch.BlockAddr(w*3)),
			compute(2),
			load(1, 0, arch.BlockAddr(w*3+1)),
			compute(2),
			store(2, 1, arch.BlockAddr(4096+w)),
		})
	}
	tr := mkTrace(8, warps...)
	ks := run(t, nil, tr)
	if ks.Instructions != 24*5 {
		t.Errorf("instructions = %d, want %d", ks.Instructions, 24*5)
	}
	if ks.L1.Writes != 24 {
		t.Errorf("stores = %d, want 24", ks.L1.Writes)
	}
}

// TestGTOPrefersCurrentWarp: under GTO the same warp keeps issuing until it
// stalls, which shows up as fewer warp switches (proxy: identical totals,
// different cycle profile vs LRR is exercised elsewhere; here we just pin
// scheduler selection behaviour at the unit level).
func TestGTOPrefersCurrentWarp(t *testing.T) {
	e, err := New(arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	s := e.sms[0]
	w0 := &warpState{trace: []simt.Instr{compute(1), compute(1)}, age: 0}
	w1 := &warpState{trace: []simt.Instr{compute(1), compute(1)}, age: 1}
	s.warps = []*warpState{w0, w1}
	first := s.pickWarp(0)
	if first != w0 {
		t.Fatalf("GTO picked warp age %d first, want oldest", first.age)
	}
	// Same warp still ready: greedy keeps it.
	if got := s.pickWarp(0); got != w0 {
		t.Error("GTO switched warps while current warp was ready")
	}
	// Current warp becomes not-ready: falls back to the oldest ready warp.
	w0.readyAt = 100
	if got := s.pickWarp(0); got != w1 {
		t.Error("GTO did not fall back to next-oldest ready warp")
	}
}
