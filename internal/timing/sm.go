package timing

import (
	"github.com/datacentric-gpu/dcrm/internal/cache"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// warpState tracks one resident warp's progress through its trace.
type warpState struct {
	trace        []simt.Instr
	pc           int   // next instruction index
	txIndex      int   // resume point within a partially issued memory instr
	pendingLoads int   // loads issued but not yet complete
	readyAt      int64 // earliest cycle the warp may issue again
	age          uint64
	cta          int     // CTA slot the warp belongs to (engine-level id)
	curLoad      *loadOp // in-flight load op while a load is partially issued
	retired      bool
}

// nextInstr returns the warp's next instruction, or nil when retired.
func (w *warpState) nextInstr() *simt.Instr {
	if w.pc >= len(w.trace) {
		return nil
	}
	return &w.trace[w.pc]
}

// ready reports whether the warp can issue at cycle t: it must have work,
// be past its ready time, and — for compute and store instructions, which
// consume load results — have no outstanding loads (scoreboard).
func (w *warpState) ready(t int64) bool {
	if w.retired || w.readyAt > t {
		return false
	}
	in := w.nextInstr()
	if in == nil {
		return false
	}
	if in.Kind != simt.InstrLoad && w.pendingLoads > 0 {
		return false
	}
	return true
}

// loadOp tracks one in-flight load instruction: how many of its coalesced
// block accesses still owe a completion for scoreboard purposes. Load-ops
// are pooled on the engine (takeLoadOp/releaseLoadOp); an op returns to
// the pool the moment its last block completes.
type loadOp struct {
	warp      *warpState
	remaining int
	sm        *smState
}

// blockDone retires one block's dependency; when the whole load is done the
// warp's scoreboard clears, the op is recycled, and the SM is woken.
func (op *loadOp) blockDone(now int64) {
	op.remaining--
	if op.remaining == 0 {
		op.warp.pendingLoads--
		s := op.sm
		s.sh.releaseLoadOp(op)
		s.sh.wakeSM(s, now)
	}
}

// copyGroup tracks the copies of one protected (or plain) block access.
// Groups are pooled on the engine (takeGroup/releaseGroup); gen counts the
// object's reuses so that MSHR waiters and scheduled arrival events, which
// carry the generation they were issued against, can detect a recycled
// group and drop themselves.
type copyGroup struct {
	op        *loadOp
	total     int // copies in flight
	needed    int // arrivals required before blockDone (1 = lazy/unprotected)
	arrived   int
	gen       uint32
	protected bool // occupies a compare-buffer entry until all copies arrive
	doneSent  bool
}

// arrive records one copy's data arriving at the LD/ST unit. The final
// copy's arrival retires the group back to the engine pool.
func (g *copyGroup) arrive(now int64, s *smState) {
	g.arrived++
	if !g.doneSent && g.arrived >= g.needed {
		g.doneSent = true
		g.op.blockDone(now)
	}
	if g.arrived == g.total {
		if g.protected {
			// Comparison (or majority vote) performed; release the entry.
			s.compareInUse--
			s.sh.wakeSM(s, now)
		}
		s.sh.releaseGroup(g)
	}
}

// smState is one streaming multiprocessor: one component domain of the
// sharded replay. sh is the shard that owns it for the current replay —
// every event the SM schedules and every pooled object it takes goes
// through its shard; engine-wide knobs (Policy, plan, config) stay on the
// engine.
type smState struct {
	id     int
	engine *Engine
	sh     *shard
	l1     *cache.Cache
	mshr   *cache.MSHR[groupRef]

	// inject serializes requests leaving the SM toward the NoC; eject
	// serializes responses arriving from it. Both are owned by the SM's
	// shard (inject is touched on the send side, eject on the canonical
	// delivery side, both within the owner's deterministic event order).
	inject nocPort
	eject  nocPort

	warps        []*warpState
	lastIssued   int // index into warps, -1 initially
	portFreeAt   int64
	compareInUse int
	residentCTAs int
	ageCounter   uint64

	stepScheduledAt int64 // -1 when no step event pending
	instructions    uint64
	requests        uint64 // NoC request traversals (KernelStats.NoC)
}

// pickWarp selects the next warp to issue at cycle t under the configured
// policy.
func (s *smState) pickWarp(t int64) *warpState {
	if len(s.warps) == 0 {
		return nil
	}
	switch s.engine.Policy {
	case LRR:
		n := len(s.warps)
		for i := 1; i <= n; i++ {
			w := s.warps[(s.lastIssued+i)%n]
			if w.ready(t) {
				s.lastIssued = (s.lastIssued + i) % n
				return w
			}
		}
		return nil
	default: // GTO
		if s.lastIssued >= 0 && s.lastIssued < len(s.warps) {
			if w := s.warps[s.lastIssued]; w.ready(t) {
				return w
			}
		}
		var best *warpState
		bestIdx := -1
		for i, w := range s.warps {
			if !w.ready(t) {
				continue
			}
			if best == nil || w.age < best.age {
				best, bestIdx = w, i
			}
		}
		if best != nil {
			s.lastIssued = bestIdx
		}
		return best
	}
}

// nextWake returns the earliest future cycle at which a warp could become
// issue-ready by time alone (readyAt), or -1 if every non-retired warp is
// waiting on memory.
func (s *smState) nextWake(t int64) int64 {
	next := int64(-1)
	for _, w := range s.warps {
		if w.retired {
			continue
		}
		in := w.nextInstr()
		if in == nil {
			continue
		}
		if in.Kind != simt.InstrLoad && w.pendingLoads > 0 {
			continue // memory-bound; a response will wake the SM
		}
		if w.readyAt >= stallParked {
			continue // parked on a structural stall; wakeSM unparks it
		}
		if w.readyAt > t && (next == -1 || w.readyAt < next) {
			next = w.readyAt
		}
	}
	return next
}

// step is the SM's issue loop at cycle t: issue as long as the port is free
// and a warp is ready, then schedule the next wake-up.
func (s *smState) step(t int64) {
	s.stepScheduledAt = -1
	if s.portFreeAt > t {
		s.sh.scheduleStep(s, s.portFreeAt)
		return
	}
	w := s.pickWarp(t)
	if w == nil {
		if next := s.nextWake(t); next >= 0 {
			s.sh.scheduleStep(s, next)
		}
		return
	}
	s.execute(w, t)
	// Re-enter at the next port-free cycle to issue further instructions.
	next := s.portFreeAt
	if next <= t {
		next = t + 1
	}
	s.sh.scheduleStep(s, next)
}

// execute issues one instruction (or resumes a partially issued one).
func (s *smState) execute(w *warpState, t int64) {
	in := w.nextInstr()
	switch in.Kind {
	case simt.InstrCompute:
		n := int64(in.Ops)
		if n < 1 {
			n = 1
		}
		s.portFreeAt = t + n
		w.readyAt = t + n
		s.instructions++
		s.finishInstr(w)
	case simt.InstrStore:
		cycles := s.sh.issueStore(s, in, t)
		s.portFreeAt = t + cycles
		w.readyAt = t + cycles
		s.instructions++
		s.finishInstr(w)
	case simt.InstrLoad:
		s.sh.issueLoad(s, w, in, t)
	}
}

// finishInstr advances the warp past its current instruction, retiring the
// warp (and possibly its CTA) when the trace is exhausted.
func (s *smState) finishInstr(w *warpState) {
	w.pc++
	w.txIndex = 0
	if w.pc >= len(w.trace) {
		w.retired = true
		s.sh.warpRetired(s, w)
	}
}
