package timing

import (
	"math/rand"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// testPlan protects buffer 0 with the given number of copies.
type testPlan struct {
	copies int
	lazy   bool
	offset arch.BlockAddr // replica address stride
}

func (p testPlan) Copies(_ uint16, bufID int16) int {
	if bufID == 0 {
		return p.copies
	}
	return 1
}

func (p testPlan) ReplicaBlock(_ int16, primary arch.BlockAddr, copy int) arch.BlockAddr {
	return primary + p.offset*arch.BlockAddr(copy)
}

func (p testPlan) Lazy() bool { return p.lazy }

func load(pc uint16, buf int16, blocks ...arch.BlockAddr) simt.Instr {
	return simt.Instr{Kind: simt.InstrLoad, PC: pc, BufID: buf, Blocks: blocks}
}

func compute(n int32) simt.Instr { return simt.Instr{Kind: simt.InstrCompute, Ops: n} }

func store(pc uint16, buf int16, blocks ...arch.BlockAddr) simt.Instr {
	return simt.Instr{Kind: simt.InstrStore, PC: pc, BufID: buf, Blocks: blocks}
}

func mkTrace(warpsPerCTA int, warps ...[]simt.Instr) *simt.KernelTrace {
	if len(warps)%warpsPerCTA != 0 {
		panic("warps not divisible by warpsPerCTA")
	}
	return &simt.KernelTrace{
		Kernel:      "test",
		WarpsPerCTA: warpsPerCTA,
		NumCTAs:     len(warps) / warpsPerCTA,
		Warps:       warps,
	}
}

func run(t *testing.T, plan ProtectionPlan, tr *simt.KernelTrace) KernelStats {
	t.Helper()
	e, err := New(arch.Default(), plan)
	if err != nil {
		t.Fatal(err)
	}
	ks, err := e.RunKernel(tr)
	if err != nil {
		t.Fatal(err)
	}
	return ks
}

func TestSingleLoadMissRoundTrip(t *testing.T) {
	tr := mkTrace(1, []simt.Instr{load(1, 0, 100), compute(1)})
	ks := run(t, nil, tr)
	if ks.L1.ReadMisses != 1 {
		t.Errorf("L1 misses = %d, want 1", ks.L1.ReadMisses)
	}
	if ks.L2.ReadMisses != 1 {
		t.Errorf("L2 misses = %d, want 1", ks.L2.ReadMisses)
	}
	if ks.DRAM.Served != 1 {
		t.Errorf("DRAM served = %d, want 1", ks.DRAM.Served)
	}
	// Round trip must include NoC (2×8), L2 (12), DRAM (≥45): ≥70 cycles.
	if ks.Cycles < 70 {
		t.Errorf("cycles = %d, want ≥70 for a full DRAM round trip", ks.Cycles)
	}
	if ks.Instructions != 2 {
		t.Errorf("instructions = %d, want 2", ks.Instructions)
	}
}

func TestSecondLoadHitsL1(t *testing.T) {
	tr := mkTrace(1, []simt.Instr{
		load(1, 0, 100), compute(1),
		load(1, 0, 100), compute(1),
	})
	ks := run(t, nil, tr)
	if ks.L1.ReadMisses != 1 {
		t.Errorf("L1 misses = %d, want 1 (second access hits)", ks.L1.ReadMisses)
	}
	if ks.L1.Reads != 2 {
		t.Errorf("L1 reads = %d, want 2", ks.L1.Reads)
	}
}

func TestL2SharedAcrossSMs(t *testing.T) {
	// Two CTAs land on two SMs; both read block 100. The slower one should
	// hit in L2 (or merge), so DRAM serves the block once.
	tr := mkTrace(1,
		[]simt.Instr{load(1, 0, 100), compute(1)},
		[]simt.Instr{load(1, 0, 100), compute(1)},
	)
	ks := run(t, nil, tr)
	if ks.DRAM.Served != 1 {
		t.Errorf("DRAM served = %d, want 1 (L2 merge/hit)", ks.DRAM.Served)
	}
	if ks.L1.ReadMisses != 2 {
		t.Errorf("L1 misses = %d, want 2 (private L1s)", ks.L1.ReadMisses)
	}
}

func TestMSHRMergesSameBlockWithinSM(t *testing.T) {
	// One CTA, two warps, same block: second miss merges in the L1 MSHR, so
	// only one request crosses the NoC.
	tr := mkTrace(2,
		[]simt.Instr{load(1, 0, 100), compute(1)},
		[]simt.Instr{load(1, 0, 100), compute(1)},
	)
	ks := run(t, nil, tr)
	if ks.NoC.Requests != 1 {
		t.Errorf("NoC requests = %d, want 1 (MSHR merge)", ks.NoC.Requests)
	}
	if ks.L1.ReadMisses != 2 {
		t.Errorf("L1 misses = %d, want 2", ks.L1.ReadMisses)
	}
}

func TestLatencyHidingAcrossWarps(t *testing.T) {
	// One warp issuing 8 dependent load+compute pairs (serialized misses)
	// versus 8 warps in one CTA each issuing one pair (overlapped misses).
	serial := make([]simt.Instr, 0, 16)
	for i := 0; i < 8; i++ {
		serial = append(serial, load(1, 0, arch.BlockAddr(100+i*97)), compute(1))
	}
	one := run(t, nil, mkTrace(1, serial))

	var warps [][]simt.Instr
	for i := 0; i < 8; i++ {
		warps = append(warps, []simt.Instr{load(1, 0, arch.BlockAddr(100+i*97)), compute(1)})
	}
	many := run(t, nil, mkTrace(8, warps...))

	if float64(many.Cycles) > 0.6*float64(one.Cycles) {
		t.Errorf("8 warps took %d cycles vs 1 warp %d; want ≥40%% latency hiding",
			many.Cycles, one.Cycles)
	}
}

func TestDetectionDoublesProtectedMisses(t *testing.T) {
	tr := mkTrace(1, []simt.Instr{load(1, 0, 100), compute(1)})
	base := run(t, nil, tr)
	det := run(t, testPlan{copies: 2, lazy: true, offset: 1 << 20}, tr)
	if det.L1.ReadMisses != 2*base.L1.ReadMisses {
		t.Errorf("detection L1 misses = %d, want %d (doubled)", det.L1.ReadMisses, 2*base.L1.ReadMisses)
	}
	if det.CopyTransactions != 1 {
		t.Errorf("copy transactions = %d, want 1", det.CopyTransactions)
	}
	if det.DRAM.Served != 2 {
		t.Errorf("DRAM served = %d, want 2 (distinct copy addresses)", det.DRAM.Served)
	}
}

func TestCorrectionTriplesProtectedMisses(t *testing.T) {
	tr := mkTrace(1, []simt.Instr{load(1, 0, 100), compute(1)})
	corr := run(t, testPlan{copies: 3, lazy: false, offset: 1 << 20}, tr)
	if corr.L1.ReadMisses != 3 {
		t.Errorf("correction L1 misses = %d, want 3", corr.L1.ReadMisses)
	}
	if corr.CopyTransactions != 2 {
		t.Errorf("copy transactions = %d, want 2", corr.CopyTransactions)
	}
}

func TestUnprotectedBufferUnaffectedByPlan(t *testing.T) {
	tr := mkTrace(1, []simt.Instr{load(1, 1, 100), compute(1)}) // bufID 1 unprotected
	ks := run(t, testPlan{copies: 3, lazy: false, offset: 1 << 20}, tr)
	if ks.L1.ReadMisses != 1 {
		t.Errorf("unprotected load misses = %d, want 1", ks.L1.ReadMisses)
	}
	if ks.CopyTransactions != 0 {
		t.Errorf("copy transactions = %d, want 0", ks.CopyTransactions)
	}
}

func TestLazyDetectionFasterThanEagerCorrection(t *testing.T) {
	// A warp whose compute depends on a protected load: lazy detection
	// completes the load at the first copy's arrival, correction stalls for
	// all three. Place the replicas on distinct channels so arrival times
	// genuinely differ; the correction run must not be faster.
	var instrs []simt.Instr
	for i := 0; i < 16; i++ {
		instrs = append(instrs, load(1, 0, arch.BlockAddr(100+i*16)), compute(50))
	}
	tr := mkTrace(1, instrs)
	det := run(t, testPlan{copies: 2, lazy: true, offset: (1 << 20) + 1}, tr)
	corr := run(t, testPlan{copies: 3, lazy: false, offset: (1 << 20) + 1}, tr)
	if det.Cycles > corr.Cycles {
		t.Errorf("lazy detection (%d cycles) slower than eager correction (%d)", det.Cycles, corr.Cycles)
	}
}

func TestProtectionOrderingBaselineDetectCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var warps [][]simt.Instr
	for w := 0; w < 12; w++ {
		var is []simt.Instr
		for i := 0; i < 20; i++ {
			is = append(is, load(1, 0, arch.BlockAddr(rng.Intn(4096))), compute(int32(1+rng.Intn(8))))
		}
		warps = append(warps, is)
	}
	tr := mkTrace(4, warps...)
	base := run(t, nil, tr)
	det := run(t, testPlan{copies: 2, lazy: true, offset: 1 << 20}, tr)
	corr := run(t, testPlan{copies: 3, lazy: false, offset: 1 << 20}, tr)
	if base.Cycles > det.Cycles {
		t.Errorf("baseline (%d) slower than detection (%d)", base.Cycles, det.Cycles)
	}
	if det.Cycles > corr.Cycles {
		t.Errorf("detection (%d) slower than correction (%d)", det.Cycles, corr.Cycles)
	}
	if !(base.L1.ReadMisses <= det.L1.ReadMisses && det.L1.ReadMisses <= corr.L1.ReadMisses) {
		t.Errorf("miss ordering violated: %d, %d, %d",
			base.L1.ReadMisses, det.L1.ReadMisses, corr.L1.ReadMisses)
	}
}

func TestCompareBufferStalls(t *testing.T) {
	// 48 warps issue protected loads to the same block: the misses merge in
	// the MSHR (2 entries total) but every load needs its own comparison
	// entry, exceeding the 32-entry buffer while the fill is in flight.
	var warps [][]simt.Instr
	for w := 0; w < 48; w++ {
		warps = append(warps, []simt.Instr{load(1, 0, 0), compute(1)})
	}
	tr := mkTrace(48, warps...)
	ks := run(t, testPlan{copies: 2, lazy: true, offset: 1 << 20}, tr)
	if ks.CompareStalls == 0 {
		t.Error("expected compare-buffer stalls with 48 concurrent protected loads")
	}
}

func TestStoreWriteThrough(t *testing.T) {
	tr := mkTrace(1, []simt.Instr{compute(1), store(2, 1, 100, 101)})
	ks := run(t, nil, tr)
	if ks.L1.Writes != 2 {
		t.Errorf("L1 writes = %d, want 2", ks.L1.Writes)
	}
	// Write-through: both stores cross the NoC and miss L2 → DRAM writes.
	if ks.NoC.Requests != 2 {
		t.Errorf("NoC requests = %d, want 2", ks.NoC.Requests)
	}
	if ks.DRAM.Served != 2 {
		t.Errorf("DRAM served = %d, want 2 write misses forwarded", ks.DRAM.Served)
	}
}

func TestManyCTAsAllComplete(t *testing.T) {
	// 64 CTAs of 2 warps over 15 SMs with an 8-CTA cap: requires slot
	// recycling.
	var warps [][]simt.Instr
	for w := 0; w < 128; w++ {
		warps = append(warps, []simt.Instr{
			load(1, 0, arch.BlockAddr(w)), compute(3),
			store(2, 1, arch.BlockAddr(10000+w)),
		})
	}
	tr := mkTrace(2, warps...)
	ks := run(t, nil, tr)
	if ks.Instructions != 128*3 {
		t.Errorf("instructions = %d, want %d", ks.Instructions, 128*3)
	}
}

func TestUncoalescedLoadExceedingMSHRs(t *testing.T) {
	// One warp load with 32 distinct blocks and 3 copies each would need 96
	// MSHRs; the resumable issue path must make progress without deadlock.
	blocks := make([]arch.BlockAddr, 32)
	for i := range blocks {
		blocks[i] = arch.BlockAddr(i * 7)
	}
	tr := mkTrace(1, []simt.Instr{load(1, 0, blocks...), compute(1)})
	ks := run(t, testPlan{copies: 3, lazy: false, offset: 1 << 20}, tr)
	if ks.L1.ReadMisses != 96 {
		t.Errorf("L1 misses = %d, want 96", ks.L1.ReadMisses)
	}
	if ks.MSHRStalls == 0 {
		t.Error("expected MSHR stalls for a 96-transaction load")
	}
}

func TestSchedulerPoliciesBothComplete(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var warps [][]simt.Instr
	for w := 0; w < 8; w++ {
		var is []simt.Instr
		for i := 0; i < 10; i++ {
			is = append(is, load(1, 0, arch.BlockAddr(rng.Intn(512))), compute(2))
		}
		warps = append(warps, is)
	}
	tr := mkTrace(8, warps...)
	for _, pol := range []SchedulerPolicy{GTO, LRR} {
		e, err := New(arch.Default(), nil)
		if err != nil {
			t.Fatal(err)
		}
		e.Policy = pol
		ks, err := e.RunKernel(tr)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		if ks.Instructions != 8*20 {
			t.Errorf("%v: instructions = %d, want 160", pol, ks.Instructions)
		}
	}
}

func TestRunAppAcrossKernels(t *testing.T) {
	e, err := New(arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	k1 := mkTrace(1, []simt.Instr{load(1, 0, 100), compute(1)})
	k2 := mkTrace(1, []simt.Instr{load(1, 0, 100), compute(1)})
	app, err := e.RunApp("two-kernel", []*simt.KernelTrace{k1, k2})
	if err != nil {
		t.Fatal(err)
	}
	if len(app.Kernels) != 2 {
		t.Fatalf("kernels = %d, want 2", len(app.Kernels))
	}
	// Kernel boundary invalidates L1 but keeps L2 warm: the second kernel
	// misses L1 and hits L2.
	if app.Kernels[1].L1.ReadMisses != 1 {
		t.Errorf("kernel 2 L1 misses = %d, want 1 (L1 flushed)", app.Kernels[1].L1.ReadMisses)
	}
	if app.Kernels[1].L2.ReadMisses != 0 {
		t.Errorf("kernel 2 L2 misses = %d, want 0 (L2 persists)", app.Kernels[1].L2.ReadMisses)
	}
	if app.TotalCycles() != app.Kernels[0].Cycles+app.Kernels[1].Cycles {
		t.Error("TotalCycles mismatch")
	}
	if app.Kernels[1].Cycles >= app.Kernels[0].Cycles {
		t.Errorf("warm-L2 kernel (%d cycles) not faster than cold (%d)",
			app.Kernels[1].Cycles, app.Kernels[0].Cycles)
	}
}

func TestEmptyTraceRejected(t *testing.T) {
	e, err := New(arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunKernel(nil); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := e.RunKernel(&simt.KernelTrace{}); err == nil {
		t.Error("empty trace accepted")
	}
}

func TestEmptyWarpTraces(t *testing.T) {
	// Warps with empty traces (fully predicated) must retire cleanly.
	tr := mkTrace(2,
		[]simt.Instr{load(1, 0, 5), compute(1)},
		nil,
	)
	ks := run(t, nil, tr)
	if ks.Instructions != 2 {
		t.Errorf("instructions = %d, want 2", ks.Instructions)
	}
}

func TestBadConfigRejected(t *testing.T) {
	bad := arch.Default()
	bad.NumSMs = 0
	if _, err := New(bad, nil); err == nil {
		t.Error("invalid config accepted")
	}
}

func BenchmarkEngineThroughput(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	var warps [][]simt.Instr
	for w := 0; w < 64; w++ {
		var is []simt.Instr
		for i := 0; i < 50; i++ {
			is = append(is, load(1, 0, arch.BlockAddr(rng.Intn(1<<14))), compute(4))
		}
		warps = append(warps, is)
	}
	tr := mkTrace(4, warps...)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e, err := New(arch.Default(), nil)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.RunKernel(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func TestIPC(t *testing.T) {
	var ks KernelStats
	if ks.IPC() != 0 {
		t.Error("zero-cycle IPC not 0")
	}
	ks.Cycles = 100
	ks.Instructions = 250
	if got := ks.IPC(); got != 2.5 {
		t.Errorf("IPC = %v, want 2.5", got)
	}
}
