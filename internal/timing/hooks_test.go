package timing

import (
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/simt"
)

// TestOnStoreObservesStoreCommits: the OnStore hook sees every store
// transaction at its L2-port-serialized commit cycle — the fault-domain
// timestamps the transient model's overwrite masking is built on.
func TestOnStoreObservesStoreCommits(t *testing.T) {
	tr := mkTrace(1, []simt.Instr{
		load(1, 0, 100),
		compute(2),
		store(2, 0, 100, 101),
	})
	e, err := New(arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	last := map[arch.BlockAddr]int64{}
	e.OnStore = func(blk arch.BlockAddr, at int64) {
		if at <= 0 {
			t.Errorf("store to block %d committed at cycle %d", blk, at)
		}
		if at > last[blk] {
			last[blk] = at
		}
	}
	ks, err := e.RunKernel(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, blk := range []arch.BlockAddr{100, 101} {
		at, ok := last[blk]
		if !ok {
			t.Errorf("store to block %d never observed", blk)
			continue
		}
		if at > ks.Cycles {
			t.Errorf("block %d store commit at %d, beyond the %d-cycle replay", blk, at, ks.Cycles)
		}
	}
	if len(last) != 2 {
		t.Errorf("observed stores to %d blocks, want 2", len(last))
	}
}

// TestOnStoreIsObservationOnly: attaching the hook must not perturb the
// replay — identical stats with and without it.
func TestOnStoreIsObservationOnly(t *testing.T) {
	mk := func() *simt.KernelTrace {
		return mkTrace(1,
			[]simt.Instr{load(1, 0, 100, 101), compute(3), store(2, 0, 100)},
			[]simt.Instr{load(1, 0, 102), compute(1), store(2, 0, 102)},
		)
	}
	bare := run(t, nil, mk())

	e, err := New(arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	e.OnStore = func(arch.BlockAddr, int64) {}
	hooked, err := e.RunKernel(mk())
	if err != nil {
		t.Fatal(err)
	}
	if bare != hooked {
		t.Errorf("OnStore changed replay stats:\nbare:   %+v\nhooked: %+v", bare, hooked)
	}
}

// TestInjectAtFiresOnceAtCycle: the injection callback rides the event
// scheduler — it fires exactly once, at the requested cycle, and a spent
// slot never refires on a later kernel.
func TestInjectAtFiresOnceAtCycle(t *testing.T) {
	e, err := New(arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	var fired []int64
	e.InjectAt(50, func(now int64) { fired = append(fired, now) })
	if _, err := e.RunKernel(mkTrace(1, []simt.Instr{load(1, 0, 100), compute(1)})); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 || fired[0] != 50 {
		t.Fatalf("callback fired at %v, want exactly once at cycle 50", fired)
	}
	// A second kernel on the same engine must not replay the spent callback.
	if _, err := e.RunKernel(mkTrace(1, []simt.Instr{load(1, 0, 200), compute(1)})); err != nil {
		t.Fatal(err)
	}
	if len(fired) != 1 {
		t.Fatalf("callback refired: %v", fired)
	}
	// nil callbacks are a no-op, not a queued crash.
	e.InjectAt(10, nil)
	if _, err := e.RunKernel(mkTrace(1, []simt.Instr{load(1, 0, 300), compute(1)})); err != nil {
		t.Fatal(err)
	}
}

// TestInjectAtClampsPastCycles: a cycle already behind the engine clock
// fires at the current cycle instead of corrupting the event order.
func TestInjectAtClampsPastCycles(t *testing.T) {
	e, err := New(arch.Default(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.RunKernel(mkTrace(1, []simt.Instr{load(1, 0, 100), compute(1)})); err != nil {
		t.Fatal(err)
	}
	var at int64 = -1
	e.InjectAt(0, func(now int64) { at = now }) // cycle 0 is long past by now
	if _, err := e.RunKernel(mkTrace(1, []simt.Instr{load(1, 0, 101), compute(1)})); err != nil {
		t.Fatal(err)
	}
	if at < 0 {
		t.Fatal("clamped callback never fired")
	}
}
