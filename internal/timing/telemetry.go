package timing

import "strconv"

// Trace lane process ids: one Chrome trace "process" per component class,
// one "thread" per hardware unit within it.
const (
	tracePidSM   = 1
	tracePidL2   = 2
	tracePidDRAM = 3
)

// publishTelemetry exports one finished kernel's per-unit statistics to the
// attached collectors. It runs at kernel boundaries only: the engine's hot
// event loop never touches telemetry, which is what keeps the instrumented
// engine within noise of the baseline (the overhead benchmark guards this)
// and guarantees observation cannot perturb simulation results.
func (e *Engine) publishTelemetry(ks KernelStats, start int64) {
	if e.Metrics != nil {
		e.publishMetrics(ks)
	}
	if e.Trace != nil {
		e.publishTrace(ks, start)
	}
}

func (e *Engine) publishMetrics(ks KernelStats) {
	r := e.Metrics
	kernels := r.Counter("dcrm_timing_kernels_total", "Kernels completed by the timing engine.")
	cycles := r.Counter("dcrm_timing_cycles_total", "Core-clock cycles simulated across kernels.")
	kernels.Inc()
	cycles.Add(uint64(ks.Cycles))

	smInstr := r.CounterVec("dcrm_sm_instructions_total", "Warp instructions issued, per SM.", "sm")
	l1Reads := r.CounterVec("dcrm_l1_reads_total", "L1 read lookups, per SM.", "sm")
	l1Misses := r.CounterVec("dcrm_l1_read_misses_total", "L1 read misses, per SM.", "sm")
	for _, s := range e.sms {
		id := strconv.Itoa(s.id)
		smInstr.With(id).Add(s.instructions)
		l1Reads.With(id).Add(s.l1.Stats.Reads)
		l1Misses.With(id).Add(s.l1.Stats.ReadMisses)
	}

	l2Reads := r.CounterVec("dcrm_l2_reads_total", "L2 read lookups, per bank.", "bank")
	l2Misses := r.CounterVec("dcrm_l2_read_misses_total", "L2 read misses, per bank.", "bank")
	l2Writebacks := r.CounterVec("dcrm_l2_dirty_evictions_total", "L2 dirty-line write-backs, per bank.", "bank")
	for ch, c := range e.chans {
		id := strconv.Itoa(ch)
		l2Reads.With(id).Add(c.l2.Stats.Reads)
		l2Misses.With(id).Add(c.l2.Stats.ReadMisses)
		l2Writebacks.With(id).Add(c.l2.Stats.DirtyEvictions)
	}

	served := r.CounterVec("dcrm_dram_requests_total", "DRAM requests served, per channel.", "channel")
	rowHits := r.CounterVec("dcrm_dram_row_hits_total", "DRAM row-buffer hits, per channel.", "channel")
	latency := r.CounterVec("dcrm_dram_latency_cycles_total", "Summed DRAM request latency in core cycles, per channel.", "channel")
	for ch, c := range e.chans {
		id := strconv.Itoa(ch)
		served.With(id).Add(c.dram.Stats.Served)
		rowHits.With(id).Add(c.dram.Stats.RowHits)
		latency.With(id).Add(c.dram.Stats.TotalLatency)
	}

	r.Counter("dcrm_noc_requests_total", "Crossbar request traversals.").Add(ks.NoC.Requests)
	r.Counter("dcrm_noc_responses_total", "Crossbar response traversals.").Add(ks.NoC.Responses)
	r.Counter("dcrm_copy_transactions_total", "Extra LD/ST transactions for replica copies.").Add(ks.CopyTransactions)
	r.Counter("dcrm_mshr_stalls_total", "Warp issue retries due to a full MSHR table.").Add(ks.MSHRStalls)
	r.Counter("dcrm_compare_stalls_total", "Warp issue retries due to a full pending-compare buffer.").Add(ks.CompareStalls)
}

func (e *Engine) publishTrace(ks KernelStats, start int64) {
	tr := e.Trace
	if !e.traceMeta {
		e.traceMeta = true
		tr.NameProcess(tracePidSM, "SMs")
		for _, s := range e.sms {
			tr.NameThread(tracePidSM, s.id, "SM "+strconv.Itoa(s.id))
		}
		tr.NameProcess(tracePidL2, "L2 banks")
		tr.NameProcess(tracePidDRAM, "DRAM channels")
		for ch := range e.chans {
			tr.NameThread(tracePidL2, ch, "L2 bank "+strconv.Itoa(ch))
			tr.NameThread(tracePidDRAM, ch, "DRAM ch "+strconv.Itoa(ch))
		}
	}
	dur := ks.Cycles
	if dur < 1 {
		dur = 1
	}
	for _, s := range e.sms {
		tr.Span(tracePidSM, s.id, ks.Kernel, start, dur, map[string]any{
			"instructions":   s.instructions,
			"l1_reads":       s.l1.Stats.Reads,
			"l1_read_misses": s.l1.Stats.ReadMisses,
		})
	}
	for ch, c := range e.chans {
		tr.Span(tracePidL2, ch, ks.Kernel, start, dur, map[string]any{
			"reads":           c.l2.Stats.Reads,
			"read_misses":     c.l2.Stats.ReadMisses,
			"dirty_evictions": c.l2.Stats.DirtyEvictions,
		})
	}
	for ch, c := range e.chans {
		tr.Span(tracePidDRAM, ch, ks.Kernel, start, dur, map[string]any{
			"served":     c.dram.Stats.Served,
			"row_hits":   c.dram.Stats.RowHits,
			"row_misses": c.dram.Stats.RowMisses,
		})
		tr.CounterEvent(tracePidDRAM, "dram_ch"+strconv.Itoa(ch)+"_served", start+dur, map[string]float64{
			"served": float64(c.dram.Stats.Served),
		})
	}
}
