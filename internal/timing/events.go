// Package timing is the cycle-level GPU timing simulator. It replays the
// per-warp instruction traces captured by internal/simt through a model of
// the full memory path — per-SM L1 caches with MSHRs, a crossbar, banked L2,
// and FR-FCFS DRAM controllers — under greedy-then-oldest warp scheduling,
// and reports cycles and per-level traffic. The replication schemes hook in
// through a ProtectionPlan: protected loads that miss in L1 fan out into
// copy transactions, complete lazily (detection) or after all copies arrive
// (correction), and occupy entries of the bounded pending-compare buffer.
//
// An Engine is single-threaded, but it treats the traces it replays as
// strictly read-only, so any number of engines may replay the same
// captured traces concurrently — the experiments package relies on this
// to fan its (scheme, level) sweeps over a worker pool.
//
// # Event engine
//
// The scheduler is allocation-free on the hot path. Events are a tagged
// union (kind + small payload fields) dispatched through a switch in the
// run loop, not heap-allocated closures, and they are ordered by the same
// (cycle, sequence) key the original container/heap implementation used:
// earliest cycle first, scheduling order breaking ties. Two structures back
// that order without boxing anything through an interface:
//
//   - a plain slice-based binary min-heap of event values for future-cycle
//     events, and
//   - a same-cycle FIFO for events scheduled at the cycle currently being
//     processed — those are, by construction, already in (cycle, sequence)
//     order, so they skip the heap entirely.
//
// Because the sequence counter is monotonic, any event in the heap due at
// the current cycle was scheduled earlier (smaller seq) than every FIFO
// entry, and the pop path's unified (at, seq) comparison preserves the
// exact global order of a single ordered heap.
//
// # Sharded replay
//
// The engine no longer runs one global scheduler. The machine is split
// into components — one domain per SM (core, L1, MSHRs, its NoC inject
// and eject ports), one domain per memory channel (L2 bank, DRAM
// controller, its NoC ingress and egress ports), and a CTA dispatcher —
// and each component's events live on the scheduler of the shard that
// owns it. All cross-component interaction travels as timestamped
// messages (L2 requests, fill responses, CTA requests and grants) whose
// network hop latencies are at least the engine's lookahead window
// L = max(1, InterconnectLatency/2). Replay proceeds window by window on
// a fixed cycle grid anchored at the kernel start: at each window barrier
// every shard drains the messages due inside the window — sorted by
// (due, source component, source sequence) — converts them into local
// events, and then simulates the window's cycles independently. Because
// every message is created at least one full window before it is due,
// the barrier exchange is conservative: no shard can ever receive a
// message for a cycle it has already simulated.
//
// The window grid, the message sort order, and the per-component event
// order are all functions of the configuration and the trace alone —
// never of the shard count or of real-time scheduling — so KernelStats,
// telemetry counters, and golden divergence behavior are byte-identical
// at any Engine.Shards setting. The golden-stats gate in
// internal/experiments pins that contract at shards {1, 2, 4, 8} across
// the full workload suite. Components that share a shard interleave
// arbitrarily within a window, but they touch disjoint state (pooled
// objects are interchangeable and generation-guarded; shard counters are
// commutative sums), so co-location cannot be observed in results.
//
// # Fault-injection hook
//
// Two observation points connect the engine to the fault models in
// internal/fault. Engine.OnStore reports every store's L2-bank commit
// (block, cycle) — one instrumented replay of an application yields the
// store-commit timeline the transient-SEU model uses to decide whether a
// later store overwrites an injected flip. Engine.InjectAt schedules a
// one-shot callback at a chosen cycle through the ordinary event
// scheduler (kind evInject), so a replay can corrupt state at an exact,
// deterministic point in simulated time. Both default to off and cost
// nothing when unused; attach them only to instrumented replays, never to
// runs whose statistics feed the golden determinism gates.
package timing

import "github.com/datacentric-gpu/dcrm/internal/arch"

// eventKind tags which engine action an event performs when popped.
type eventKind uint8

// Event kinds. Each corresponds to one closure shape of the original
// engine; the dispatch switch in Engine.dispatch reproduces the closure
// bodies exactly, including the staleness guards for superseded SM-step
// and DRAM-pump markers.
const (
	evNone eventKind = iota
	// evSMStep runs an SM's issue loop if the event is still the SM's
	// current step marker (stepScheduledAt == now).
	evSMStep
	// evGroupArrive delivers one copy of a load's block to its copy-group
	// (the L1-hit latency path); the generation tag guards against a
	// recycled group.
	evGroupArrive
	// evL2Access performs a bank lookup after crossbar traversal.
	evL2Access
	// evSMReceive fills an SM's L1 and completes the MSHR waiters.
	evSMReceive
	// evDRAMComplete fills L2 with DRAM data and fans it out to waiters.
	evDRAMComplete
	// evDRAMPump re-runs a DRAM channel's scheduler if the event is still
	// the channel's current pump marker (dramPumpAt[ch] == now).
	evDRAMPump
	// evInject runs a one-shot fault-injection callback registered with
	// Engine.InjectAt when the replay reaches its cycle. The event reuses
	// the sm payload field as the callback's index in Engine.injectFns.
	evInject
	// evCTADispatch is the CTA dispatcher's receipt of an SM's request for
	// a replacement CTA (msgCTAReq): it pops queued CTAs, skipping ones
	// with no live warps, and answers with a grant message.
	evCTADispatch
	// evCTAInstall is an SM's receipt of a CTA grant (msgCTAGrant): the
	// CTA's warps are installed from the slab and the issue loop is woken.
	evCTAInstall
)

// event is one scheduled action: an ordering key plus a tagged payload.
// It is a value type — events move through the heap and FIFO by copy and
// never escape to the Go heap.
type event struct {
	at   int64
	seq  uint64
	blk  arch.BlockAddr
	g    *copyGroup
	gen  uint32 // copy-group generation at schedule time
	sm   int32
	ch   int32
	cta  int32 // CTA id for evCTAInstall
	kind eventKind
	// write distinguishes store traffic on the L2/DRAM paths.
	write bool
}

// before reports whether a orders strictly before b: earliest cycle first,
// scheduling sequence breaking ties deterministically.
func before(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// scheduler orders events by (at, seq) with a monotonic sequence counter.
// Future events live in a non-boxing binary min-heap of event values;
// events scheduled for the cycle currently being processed take a FIFO
// fast path (they are appended in seq order, which for a single cycle IS
// the pop order). Both backing slices are reused across kernels, so the
// steady state performs no allocation.
type scheduler struct {
	heap     []event
	fifo     []event
	fifoHead int
	seq      uint64
}

// schedule enqueues ev, stamping the next sequence number. now is the
// cycle the engine is currently processing: events due exactly now are
// FIFO-ordered without touching the heap.
func (s *scheduler) schedule(ev event, now int64) {
	ev.seq = s.seq
	s.seq++
	if ev.at == now {
		s.fifo = append(s.fifo, ev)
		return
	}
	s.pushHeap(ev)
}

func (s *scheduler) empty() bool {
	return len(s.heap) == 0 && s.fifoHead == len(s.fifo)
}

// pending returns the number of scheduled events not yet popped.
func (s *scheduler) pending() int {
	return len(s.heap) + len(s.fifo) - s.fifoHead
}

// nextAt returns the cycle of the earliest pending event, or noEvent when
// the scheduler is empty. The windowed replay loop peeks it to decide
// whether the next event still falls inside the current window.
func (s *scheduler) nextAt() int64 {
	next := int64(noEvent)
	if s.fifoHead < len(s.fifo) {
		next = s.fifo[s.fifoHead].at
	}
	if len(s.heap) > 0 && s.heap[0].at < next {
		next = s.heap[0].at
	}
	return next
}

// reset drops every pending event and rewinds the sequence counter,
// keeping the backing arrays for reuse.
func (s *scheduler) reset() {
	s.heap = s.heap[:0]
	s.fifo = s.fifo[:0]
	s.fifoHead = 0
	s.seq = 0
}

// pop removes and returns the globally earliest event under (at, seq).
// The FIFO holds only events for the in-progress cycle; a heap event can
// still precede the FIFO head when it was scheduled for this same cycle
// at an earlier point in time (smaller seq), so the head-to-head
// comparison below is what keeps the order bit-identical to a single
// ordered heap.
func (s *scheduler) pop() event {
	if s.fifoHead < len(s.fifo) {
		f := &s.fifo[s.fifoHead]
		if len(s.heap) == 0 || before(f, &s.heap[0]) {
			ev := *f
			s.fifoHead++
			if s.fifoHead == len(s.fifo) {
				// Drained: rewind so the backing array is reused.
				s.fifo = s.fifo[:0]
				s.fifoHead = 0
			}
			return ev
		}
	}
	return s.popHeap()
}

func (s *scheduler) pushHeap(ev event) {
	s.heap = append(s.heap, ev)
	i := len(s.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !before(&s.heap[i], &s.heap[parent]) {
			break
		}
		s.heap[i], s.heap[parent] = s.heap[parent], s.heap[i]
		i = parent
	}
}

func (s *scheduler) popHeap() event {
	top := s.heap[0]
	n := len(s.heap) - 1
	s.heap[0] = s.heap[n]
	s.heap = s.heap[:n]
	if n > 1 {
		s.siftDown(0)
	}
	return top
}

func (s *scheduler) siftDown(i int) {
	n := len(s.heap)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && before(&s.heap[r], &s.heap[l]) {
			min = r
		}
		if !before(&s.heap[min], &s.heap[i]) {
			return
		}
		s.heap[i], s.heap[min] = s.heap[min], s.heap[i]
		i = min
	}
}
