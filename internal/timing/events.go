// Package timing is the cycle-level GPU timing simulator. It replays the
// per-warp instruction traces captured by internal/simt through a model of
// the full memory path — per-SM L1 caches with MSHRs, a crossbar, banked L2,
// and FR-FCFS DRAM controllers — under greedy-then-oldest warp scheduling,
// and reports cycles and per-level traffic. The replication schemes hook in
// through a ProtectionPlan: protected loads that miss in L1 fan out into
// copy transactions, complete lazily (detection) or after all copies arrive
// (correction), and occupy entries of the bounded pending-compare buffer.
//
// An Engine is single-threaded, but it treats the traces it replays as
// strictly read-only, so any number of engines may replay the same
// captured traces concurrently — the experiments package relies on this
// to fan its (scheme, level) sweeps over a worker pool.
package timing

import "container/heap"

// event is one scheduled action.
type event struct {
	at  int64
	seq uint64
	fn  func(now int64)
}

// eventHeap is a min-heap on (at, seq); seq breaks ties deterministically in
// scheduling order.
type eventHeap []event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }

func (h *eventHeap) Push(x any) { *h = append(*h, x.(event)) }

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}

// scheduler wraps the heap with a monotonic sequence counter.
type scheduler struct {
	h   eventHeap
	seq uint64
}

func (s *scheduler) schedule(at int64, fn func(now int64)) {
	heap.Push(&s.h, event{at: at, seq: s.seq, fn: fn})
	s.seq++
}

func (s *scheduler) empty() bool { return len(s.h) == 0 }

func (s *scheduler) pop() event { return heap.Pop(&s.h).(event) }
