package timing

import (
	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/cache"
	"github.com/datacentric-gpu/dcrm/internal/dram"
	"github.com/datacentric-gpu/dcrm/internal/noc"
)

// ProtectionPlan tells the LD/ST unit which loads are protected and where
// the replica copies live. internal/core implements it; a nil plan is the
// unprotected baseline.
type ProtectionPlan interface {
	// Copies returns how many copies the LD/ST unit must fetch when the
	// load at pc to the given data object misses in L1: 1 (unprotected),
	// 2 (duplication/detection) or 3 (triplication/correction).
	Copies(pc uint16, bufID int16) int
	// ReplicaBlock maps a primary block of the data object to the block
	// address of copy `copy` (1-based; copy 0 is the primary itself).
	ReplicaBlock(bufID int16, primary arch.BlockAddr, copy int) arch.BlockAddr
	// Lazy reports whether a protected load completes when its first copy
	// arrives (the detection scheme's lazy comparison) rather than when all
	// copies have arrived (the correction scheme's majority vote).
	Lazy() bool
}

// CompareBufferEntries is the pending-comparison buffer size: the paper
// allocates 128 B for at most 32 load instructions awaiting copy comparison
// at the LD/ST unit.
const CompareBufferEntries = 32

// stallParked is the readyAt sentinel for a warp parked on a structural
// stall (MSHR or compare buffer full); wakeSM clears it when a resource is
// released.
const stallParked = int64(1) << 62

// SchedulerPolicy selects the warp scheduler.
type SchedulerPolicy int

// Warp scheduling policies.
const (
	// GTO is greedy-then-oldest: keep issuing the current warp, fall back
	// to the oldest ready warp.
	GTO SchedulerPolicy = iota + 1
	// LRR is loose round-robin.
	LRR
)

// String renders the policy.
func (p SchedulerPolicy) String() string {
	switch p {
	case GTO:
		return "gto"
	case LRR:
		return "lrr"
	default:
		return "scheduler(?)"
	}
}

// KernelStats reports one kernel launch's timing results.
type KernelStats struct {
	// Kernel names the launch.
	Kernel string
	// Cycles is the launch's wall-clock core cycles, including memory drain.
	Cycles int64
	// Instructions is the number of warp instructions issued.
	Instructions uint64
	// L1 aggregates the per-SM L1 statistics.
	L1 cache.Stats
	// L2 aggregates the per-channel L2 bank statistics.
	L2 cache.Stats
	// DRAM aggregates the per-channel controller statistics.
	DRAM dram.Stats
	// NoC aggregates crossbar traffic.
	NoC noc.Stats
	// CopyTransactions counts extra transactions issued for replica copies.
	CopyTransactions uint64
	// MSHRStalls and CompareStalls count structural-hazard retries.
	MSHRStalls    uint64
	CompareStalls uint64
}

// L1MissedAccesses returns the metric Fig. 7 plots: the number of read
// accesses that missed in L1 and therefore travelled to L2/DRAM, including
// replica-copy accesses.
func (k KernelStats) L1MissedAccesses() uint64 { return k.L1.ReadMisses }

// IPC returns warp instructions issued per cycle across the whole GPU — a
// coarse utilization measure (an SM issues at most one warp instruction
// per cycle, so the ceiling equals the SM count).
func (k KernelStats) IPC() float64 {
	if k.Cycles == 0 {
		return 0
	}
	return float64(k.Instructions) / float64(k.Cycles)
}

// AppStats accumulates kernel stats across an application's launches.
type AppStats struct {
	// App names the application.
	App string
	// Kernels holds per-launch stats in execution order.
	Kernels []KernelStats
}

// TotalCycles sums cycles across kernels (kernels launch back-to-back).
func (a AppStats) TotalCycles() int64 {
	var n int64
	for _, k := range a.Kernels {
		n += k.Cycles
	}
	return n
}

// TotalL1Misses sums L1 read misses across kernels.
func (a AppStats) TotalL1Misses() uint64 {
	var n uint64
	for _, k := range a.Kernels {
		n += k.L1.ReadMisses
	}
	return n
}

// TotalInstructions sums issued warp instructions across kernels.
func (a AppStats) TotalInstructions() uint64 {
	var n uint64
	for _, k := range a.Kernels {
		n += k.Instructions
	}
	return n
}
