package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := func(data uint32) bool {
		got, outcome := Decode(Encode(data))
		return got == data && outcome == OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

func TestSingleBitCorrectionAllPositions(t *testing.T) {
	words := []uint32{0, 0xFFFFFFFF, 0xDEADBEEF, 0x12345678, 0x80000001}
	for _, data := range words {
		cw := Encode(data)
		for pos := 0; pos < TotalBits; pos++ {
			flipped, err := FlipBits(cw, pos)
			if err != nil {
				t.Fatalf("FlipBits: %v", err)
			}
			got, outcome := Decode(flipped)
			if outcome != CorrectedSingle {
				t.Fatalf("word %#x bit %d: outcome = %v, want corrected-single", data, pos, outcome)
			}
			if got != data {
				t.Fatalf("word %#x bit %d: decoded %#x, want %#x", data, pos, got, data)
			}
		}
	}
}

func TestDoubleBitDetectionAllPairs(t *testing.T) {
	data := uint32(0xCAFEF00D)
	cw := Encode(data)
	for i := 0; i < TotalBits; i++ {
		for j := i + 1; j < TotalBits; j++ {
			flipped, err := FlipBits(cw, i, j)
			if err != nil {
				t.Fatalf("FlipBits: %v", err)
			}
			_, outcome := Decode(flipped)
			if outcome != DetectedDouble {
				t.Fatalf("bits (%d,%d): outcome = %v, want detected-double", i, j, outcome)
			}
		}
	}
}

func TestSingleErrorCorrectionProperty(t *testing.T) {
	f := func(data uint32, posSeed uint8) bool {
		pos := int(posSeed) % TotalBits
		flipped, err := FlipBits(Encode(data), pos)
		if err != nil {
			return false
		}
		got, outcome := Decode(flipped)
		return got == data && outcome == CorrectedSingle
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Error(err)
	}
}

// TestTripleFaultsEscapeOrMiscorrect demonstrates the escape behaviour that
// motivates the paper: ≥3-bit faults are beyond SECDED and frequently alias
// to clean or single-error codewords, returning wrong data without a
// detected-double outcome.
func TestTripleFaultsEscapeOrMiscorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	escapes := 0
	const trials = 2000
	for n := 0; n < trials; n++ {
		data := rng.Uint32()
		cw := Encode(data)
		// Three distinct positions.
		perm := rng.Perm(TotalBits)
		flipped, err := FlipBits(cw, perm[0], perm[1], perm[2])
		if err != nil {
			t.Fatalf("FlipBits: %v", err)
		}
		got, outcome := Decode(flipped)
		if outcome != DetectedDouble && got != data {
			escapes++
		}
	}
	if escapes == 0 {
		t.Fatalf("no 3-bit fault escaped in %d trials; expected frequent miscorrection", trials)
	}
	t.Logf("3-bit faults: %d/%d escaped detection with corrupted data (%.1f%%)",
		escapes, trials, 100*float64(escapes)/trials)
}

func TestOutcomeString(t *testing.T) {
	tests := []struct {
		o    Outcome
		want string
	}{
		{OK, "ok"},
		{CorrectedSingle, "corrected-single"},
		{DetectedDouble, "detected-double"},
		{Miscorrect, "miscorrect"},
		{Outcome(99), "outcome(99)"},
	}
	for _, tt := range tests {
		if got := tt.o.String(); got != tt.want {
			t.Errorf("Outcome(%d).String() = %q, want %q", int(tt.o), got, tt.want)
		}
	}
}

func TestFlipBitsRange(t *testing.T) {
	if _, err := FlipBits(0, -1); err == nil {
		t.Error("FlipBits(-1) accepted, want error")
	}
	if _, err := FlipBits(0, TotalBits); err == nil {
		t.Errorf("FlipBits(%d) accepted, want error", TotalBits)
	}
}

func TestDataPositionsSkipPowersOfTwo(t *testing.T) {
	for i, p := range dataPositions {
		if p&(p-1) == 0 {
			t.Errorf("data bit %d assigned parity position %d", i, p)
		}
	}
	// Positions must be strictly increasing and within the 38-bit Hamming word.
	for i := 1; i < DataBits; i++ {
		if dataPositions[i] <= dataPositions[i-1] {
			t.Errorf("positions not increasing at %d", i)
		}
	}
	if dataPositions[DataBits-1] != DataBits+CheckBits {
		t.Errorf("last data position = %d, want %d", dataPositions[DataBits-1], DataBits+CheckBits)
	}
}

func BenchmarkEncode(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode(uint32(i))
	}
}

func BenchmarkDecodeClean(b *testing.B) {
	cw := Encode(0xDEADBEEF)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Decode(cw)
	}
}
