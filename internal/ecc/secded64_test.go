package ecc

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestEncode64DecodeRoundTrip(t *testing.T) {
	f := func(data uint64) bool {
		got, outcome := Decode64(Encode64(data))
		return got == data && outcome == OK
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

func TestSingleBitCorrection64AllPositions(t *testing.T) {
	for _, data := range []uint64{0, ^uint64(0), 0xDEADBEEFCAFEF00D, 1} {
		cw := Encode64(data)
		for pos := 0; pos < TotalBits64; pos++ {
			flipped, err := FlipBits64(cw, pos)
			if err != nil {
				t.Fatal(err)
			}
			got, outcome := Decode64(flipped)
			if outcome != CorrectedSingle || got != data {
				t.Fatalf("word %#x bit %d: got %#x outcome %v", data, pos, got, outcome)
			}
		}
	}
}

func TestDoubleBitDetection64Sampled(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	data := rng.Uint64()
	cw := Encode64(data)
	for n := 0; n < 500; n++ {
		i := rng.Intn(TotalBits64)
		j := rng.Intn(TotalBits64)
		if i == j {
			continue
		}
		flipped, err := FlipBits64(cw, i, j)
		if err != nil {
			t.Fatal(err)
		}
		if _, outcome := Decode64(flipped); outcome != DetectedDouble {
			t.Fatalf("bits (%d,%d): outcome %v, want detected-double", i, j, outcome)
		}
	}
}

func TestDataPositions64SkipPowersOfTwo(t *testing.T) {
	for i, p := range dataPositions64 {
		if p&(p-1) == 0 {
			t.Errorf("data bit %d assigned parity position %d", i, p)
		}
	}
	if dataPositions64[DataBits64-1] != DataBits64+CheckBits64 {
		t.Errorf("last position = %d, want %d", dataPositions64[DataBits64-1], DataBits64+CheckBits64)
	}
}

func TestFlipBits64Range(t *testing.T) {
	if _, err := FlipBits64(Codeword64{}, -1); err == nil {
		t.Error("negative position accepted")
	}
	if _, err := FlipBits64(Codeword64{}, TotalBits64); err == nil {
		t.Error("past-end position accepted")
	}
}

func BenchmarkEncode64(b *testing.B) {
	for i := 0; i < b.N; i++ {
		Encode64(uint64(i) * 0x9E3779B97F4A7C15)
	}
}
