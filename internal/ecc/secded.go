// Package ecc implements the SECDED (single-error-correct, double-error-
// detect) Hamming code that GPUs apply to cache and DRAM words. The paper
// assumes SECDED protection is present and focuses on the multi-bit faults
// that escape it; this package provides the real (39,32) code so that
// assumption can be validated rather than merely asserted.
//
// Layout: a 32-bit data word is extended with six Hamming parity bits
// (positions 1,2,4,8,16,32 of the 38-bit Hamming codeword) plus one overall
// parity bit, for 39 bits total. The classification rules are the classic
// ones:
//
//   - syndrome 0, overall parity even  → no error
//   - syndrome ≠ 0, overall parity odd → single-bit error, correctable
//   - syndrome ≠ 0, overall parity even → double-bit error, detected
//   - syndrome 0, overall parity odd   → error in the overall parity bit
//
// Triple and higher faults alias: they may masquerade as single-bit errors
// (and be miscorrected) or even as clean words. The tests demonstrate both
// behaviours, which is why the fault model in internal/mem lets multi-bit
// faults escape to the application.
package ecc

import (
	"fmt"
	"math/bits"
)

// Codeword bit budget: 32 data bits laid out in Hamming positions 1..38
// (skipping power-of-two parity positions), plus the overall parity in our
// bit 38 of the packed representation.
const (
	// DataBits is the protected word width.
	DataBits = 32
	// CheckBits is the number of Hamming parity bits.
	CheckBits = 6
	// TotalBits is the full codeword width including overall parity.
	TotalBits = DataBits + CheckBits + 1 // 39
)

// Codeword is a packed 39-bit SECDED codeword. Bits 0..37 hold the Hamming
// codeword (position i+1 in Hamming numbering); bit 38 is overall parity.
type Codeword uint64

// Outcome classifies the result of decoding a codeword.
type Outcome int

// Decode outcomes. They start at 1 so the zero value is invalid and cannot
// be mistaken for a real classification.
const (
	// OK means no error was present.
	OK Outcome = iota + 1
	// CorrectedSingle means exactly one bit was flipped and repaired.
	CorrectedSingle
	// DetectedDouble means a two-bit error was detected (uncorrectable).
	DetectedDouble
	// Miscorrect is never returned by Decode itself; it is the label tests
	// and the fault model use for ≥3-bit faults that alias to a valid
	// single-error syndrome and are "corrected" into the wrong word.
	Miscorrect
)

// String renders the outcome for logs.
func (o Outcome) String() string {
	switch o {
	case OK:
		return "ok"
	case CorrectedSingle:
		return "corrected-single"
	case DetectedDouble:
		return "detected-double"
	case Miscorrect:
		return "miscorrect"
	default:
		return fmt.Sprintf("outcome(%d)", int(o))
	}
}

// dataPositions[i] is the Hamming position (1-based) of data bit i: the
// non-power-of-two positions 3,5,6,7,9,...,38 in order.
var dataPositions = buildDataPositions()

func buildDataPositions() [DataBits]int {
	var pos [DataBits]int
	i := 0
	for p := 1; i < DataBits; p++ {
		if p&(p-1) == 0 { // power of two → parity position
			continue
		}
		pos[i] = p
		i++
	}
	return pos
}

// Encode produces the SECDED codeword for a 32-bit data word.
func Encode(data uint32) Codeword {
	var cw uint64
	// Place data bits at their Hamming positions.
	for i := 0; i < DataBits; i++ {
		if data&(1<<uint(i)) != 0 {
			cw |= 1 << uint(dataPositions[i]-1)
		}
	}
	// Compute the six Hamming parity bits. Parity bit at position 2^k
	// covers all positions whose k-th bit is set.
	for k := 0; k < CheckBits; k++ {
		p := 1 << uint(k)
		parity := 0
		for pos := 1; pos <= DataBits+CheckBits; pos++ {
			if pos&p != 0 && cw&(1<<uint(pos-1)) != 0 {
				parity ^= 1
			}
		}
		if parity != 0 {
			cw |= 1 << uint(p-1)
		}
	}
	// Overall parity over the 38 Hamming bits.
	if bits.OnesCount64(cw&((1<<38)-1))%2 != 0 {
		cw |= 1 << 38
	}
	return Codeword(cw)
}

// syndrome returns the Hamming syndrome (0 if parity checks pass) for the
// low 38 bits of the codeword.
func syndrome(cw uint64) int {
	s := 0
	for k := 0; k < CheckBits; k++ {
		p := 1 << uint(k)
		parity := 0
		for pos := 1; pos <= DataBits+CheckBits; pos++ {
			if pos&p != 0 && cw&(1<<uint(pos-1)) != 0 {
				parity ^= 1
			}
		}
		if parity != 0 {
			s |= p
		}
	}
	return s
}

// extractData pulls the 32 data bits out of a (possibly corrected) codeword.
func extractData(cw uint64) uint32 {
	var data uint32
	for i := 0; i < DataBits; i++ {
		if cw&(1<<uint(dataPositions[i]-1)) != 0 {
			data |= 1 << uint(i)
		}
	}
	return data
}

// Decode classifies and, when possible, repairs a received codeword. It
// returns the recovered data word and the classification. For
// DetectedDouble the returned data is the best-effort extraction and must
// not be trusted.
//
// Faults of three or more bits are beyond the code's guarantees: Decode will
// return OK or CorrectedSingle with wrong data (silent escape /
// miscorrection). Quantifying that escape is the job of the fault model, not
// this function.
func Decode(received Codeword) (uint32, Outcome) {
	cw := uint64(received)
	s := syndrome(cw)
	overall := bits.OnesCount64(cw&((1<<39)-1)) % 2

	switch {
	case s == 0 && overall == 0:
		return extractData(cw), OK
	case s != 0 && overall == 1:
		// Single-bit error at Hamming position s.
		if s >= 1 && s <= DataBits+CheckBits {
			cw ^= 1 << uint(s-1)
		}
		return extractData(cw), CorrectedSingle
	case s == 0 && overall == 1:
		// The overall parity bit itself flipped; data is intact.
		return extractData(cw), CorrectedSingle
	default: // s != 0 && overall == 0
		return extractData(cw), DetectedDouble
	}
}

// FlipBits returns the codeword with the given bit positions (0..38) flipped.
// It is a test and fault-model helper.
func FlipBits(cw Codeword, positions ...int) (Codeword, error) {
	out := uint64(cw)
	for _, p := range positions {
		if p < 0 || p >= TotalBits {
			return 0, fmt.Errorf("ecc: flip position %d out of range [0,%d)", p, TotalBits)
		}
		out ^= 1 << uint(p)
	}
	return Codeword(out), nil
}
