package ecc

import (
	"fmt"
	"math/bits"
)

// The (72,64) SECDED code protects a 64-bit word — the granularity DRAM
// devices and wide GPU memory interfaces use (the 32-bit (39,32) variant in
// secded.go models SRAM arrays). Layout mirrors the 32-bit code: data bits
// at non-power-of-two Hamming positions 1..71, seven parity bits at the
// power-of-two positions, plus one overall parity bit.
const (
	// DataBits64 is the protected word width.
	DataBits64 = 64
	// CheckBits64 is the number of Hamming parity bits.
	CheckBits64 = 7
	// TotalBits64 is the full codeword width including overall parity.
	TotalBits64 = DataBits64 + CheckBits64 + 1 // 72
)

// Codeword64 is a packed 72-bit SECDED codeword. Bits 0..70 hold the
// Hamming codeword (position i+1); bit 71 is overall parity.
type Codeword64 struct {
	// Lo holds bits 0..63, Hi bits 64..71.
	Lo uint64
	Hi uint8
}

func (c Codeword64) bit(pos int) uint64 {
	if pos < 64 {
		return (c.Lo >> uint(pos)) & 1
	}
	return uint64((c.Hi >> uint(pos-64)) & 1)
}

func (c *Codeword64) flip(pos int) {
	if pos < 64 {
		c.Lo ^= 1 << uint(pos)
	} else {
		c.Hi ^= 1 << uint(pos-64)
	}
}

// dataPositions64[i] is the Hamming position (1-based) of data bit i.
var dataPositions64 = buildDataPositions64()

func buildDataPositions64() [DataBits64]int {
	var pos [DataBits64]int
	i := 0
	for p := 1; i < DataBits64; p++ {
		if p&(p-1) == 0 {
			continue
		}
		pos[i] = p
		i++
	}
	return pos
}

// Encode64 produces the SECDED codeword for a 64-bit data word.
func Encode64(data uint64) Codeword64 {
	var cw Codeword64
	for i := 0; i < DataBits64; i++ {
		if data&(1<<uint(i)) != 0 {
			cw.flip(dataPositions64[i] - 1)
		}
	}
	for k := 0; k < CheckBits64; k++ {
		p := 1 << uint(k)
		parity := uint64(0)
		for pos := 1; pos <= DataBits64+CheckBits64; pos++ {
			if pos&p != 0 {
				parity ^= cw.bit(pos - 1)
			}
		}
		if parity != 0 {
			cw.flip(p - 1)
		}
	}
	// Overall parity over the 71 Hamming bits.
	total := bits.OnesCount64(cw.Lo) + bits.OnesCount8(cw.Hi&0x7F)
	if total%2 != 0 {
		cw.flip(TotalBits64 - 1)
	}
	return cw
}

func syndrome64(cw Codeword64) int {
	s := 0
	for k := 0; k < CheckBits64; k++ {
		p := 1 << uint(k)
		parity := uint64(0)
		for pos := 1; pos <= DataBits64+CheckBits64; pos++ {
			if pos&p != 0 {
				parity ^= cw.bit(pos - 1)
			}
		}
		if parity != 0 {
			s |= p
		}
	}
	return s
}

func extractData64(cw Codeword64) uint64 {
	var data uint64
	for i := 0; i < DataBits64; i++ {
		if cw.bit(dataPositions64[i]-1) != 0 {
			data |= 1 << uint(i)
		}
	}
	return data
}

// Decode64 classifies and, when possible, repairs a received codeword,
// with the same outcome semantics as the 32-bit Decode.
func Decode64(received Codeword64) (uint64, Outcome) {
	s := syndrome64(received)
	overall := (bits.OnesCount64(received.Lo) + bits.OnesCount8(received.Hi)) % 2

	switch {
	case s == 0 && overall == 0:
		return extractData64(received), OK
	case s != 0 && overall == 1:
		if s >= 1 && s <= DataBits64+CheckBits64 {
			received.flip(s - 1)
		}
		return extractData64(received), CorrectedSingle
	case s == 0 && overall == 1:
		return extractData64(received), CorrectedSingle
	default:
		return extractData64(received), DetectedDouble
	}
}

// FlipBits64 returns the codeword with the given bit positions (0..71)
// flipped.
func FlipBits64(cw Codeword64, positions ...int) (Codeword64, error) {
	for _, p := range positions {
		if p < 0 || p >= TotalBits64 {
			return Codeword64{}, fmt.Errorf("ecc: flip position %d out of range [0,%d)", p, TotalBits64)
		}
		cw.flip(p)
	}
	return cw, nil
}
