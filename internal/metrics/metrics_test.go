package metrics

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeviationPercent(t *testing.T) {
	tests := []struct {
		name      string
		got, want []float32
		value     float64
		wantErr   bool
	}{
		{"identical", []float32{1, 2, 3, 4}, []float32{1, 2, 3, 4}, 0, false},
		{"one of four differs", []float32{1, 2, 3, 99}, []float32{1, 2, 3, 4}, 25, false},
		{"all differ", []float32{9, 9}, []float32{1, 2}, 100, false},
		{"tiny relative noise ignored", []float32{1.0000001}, []float32{1}, 0, false},
		{"NaN differs", []float32{float32(math.NaN())}, []float32{1}, 100, false},
		{"Inf differs", []float32{float32(math.Inf(1))}, []float32{1}, 100, false},
		{"both NaN same", []float32{float32(math.NaN())}, []float32{float32(math.NaN())}, 0, false},
		{"length mismatch", []float32{1}, []float32{1, 2}, 0, true},
		{"empty", nil, nil, 0, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			v, err := DeviationPercent(tt.got, tt.want)
			if (err != nil) != tt.wantErr {
				t.Fatalf("err = %v, wantErr=%v", err, tt.wantErr)
			}
			if err == nil && v != tt.value {
				t.Errorf("DeviationPercent = %v, want %v", v, tt.value)
			}
		})
	}
}

func TestNRMSE(t *testing.T) {
	want := []float32{0, 1, 2, 3}
	same, err := NRMSE(want, want)
	if err != nil || same != 0 {
		t.Fatalf("identical NRMSE = %v err %v, want 0", same, err)
	}
	// Uniform +0.3 offset over range 3 → 0.1.
	got := []float32{0.3, 1.3, 2.3, 3.3}
	v, err := NRMSE(got, want)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-0.1) > 1e-6 {
		t.Errorf("NRMSE = %v, want 0.1", v)
	}
	// Non-finite output saturates.
	bad := []float32{float32(math.NaN()), 1, 2, 3}
	v, err = NRMSE(bad, want)
	if err != nil {
		t.Fatal(err)
	}
	if v != 1 {
		t.Errorf("NaN NRMSE = %v, want saturated 1", v)
	}
	if _, err := NRMSE([]float32{1}, []float32{1, 2}); err == nil {
		t.Error("length mismatch accepted")
	}
}

func TestNRMSEConstantBaseline(t *testing.T) {
	want := []float32{5, 5, 5}
	got := []float32{5, 5, 6}
	v, err := NRMSE(got, want)
	if err != nil {
		t.Fatal(err)
	}
	// Range 0 falls back to 1: NRMSE = sqrt(1/3).
	if math.Abs(v-math.Sqrt(1.0/3)) > 1e-9 {
		t.Errorf("NRMSE = %v", v)
	}
}

func TestMisclassificationPercent(t *testing.T) {
	got := []float32{1, 2, 3, 4}
	want := []float32{1, 2, 9, 4}
	v, err := MisclassificationPercent(got, want)
	if err != nil {
		t.Fatal(err)
	}
	if v != 25 {
		t.Errorf("misclassification = %v, want 25", v)
	}
	if _, err := MisclassificationPercent(nil, nil); err == nil {
		t.Error("empty accepted")
	}
}

func TestMetricIsSDC(t *testing.T) {
	tests := []struct {
		name string
		m    Metric
		got  []float32
		want []float32
		sdc  bool
	}{
		{"vector under threshold", Metric{VectorDeviation, 50}, []float32{9, 2}, []float32{1, 2}, false},
		{"vector over threshold", Metric{VectorDeviation, 0.1}, []float32{9, 2}, []float32{1, 2}, true},
		{"image under", Metric{ImageNRMSE, 0.2}, []float32{0.3, 1.3, 2.3, 3.3}, []float32{0, 1, 2, 3}, false},
		{"image over", Metric{ImageNRMSE, 0.05}, []float32{0.3, 1.3, 2.3, 3.3}, []float32{0, 1, 2, 3}, true},
		{"labels clean", Metric{Misclassification, 0}, []float32{1, 2}, []float32{1, 2}, false},
		{"labels differ", Metric{Misclassification, 0}, []float32{1, 3}, []float32{1, 2}, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := tt.m.IsSDC(tt.got, tt.want)
			if err != nil {
				t.Fatal(err)
			}
			if got != tt.sdc {
				t.Errorf("IsSDC = %v, want %v", got, tt.sdc)
			}
		})
	}
	if _, err := (Metric{Kind: Kind(9)}).IsSDC([]float32{1}, []float32{1}); err == nil {
		t.Error("unknown kind accepted")
	}
}

// TestCleanOutputNeverSDC: any output is never an SDC against itself.
func TestCleanOutputNeverSDC(t *testing.T) {
	f := func(vals []float32) bool {
		if len(vals) == 0 {
			return true
		}
		for _, m := range []Metric{
			{VectorDeviation, 0},
			{ImageNRMSE, 0},
			{Misclassification, 0},
		} {
			sdc, err := m.IsSDC(vals, vals)
			if err != nil || sdc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestKindString(t *testing.T) {
	for k, want := range map[Kind]string{
		VectorDeviation:   "vector-deviation%",
		ImageNRMSE:        "nrmse",
		Misclassification: "misclassification%",
		Kind(7):           "kind(7)",
	} {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(k), got, want)
		}
	}
}
