// Package metrics implements the per-application output error metrics of
// Table II: output-vector element deviation for the Polybench applications,
// normalized root-mean-square error for the AxBench image applications, and
// misclassification percentage for C-NN — plus the thresholding that turns
// a metric value into an SDC judgment.
package metrics

import (
	"fmt"
	"math"
)

// Kind discriminates the error metric of Table II.
type Kind int

// Metric kinds.
const (
	// VectorDeviation: percentage of output vector elements that differ
	// from the fault-free baseline (Polybench).
	VectorDeviation Kind = iota + 1
	// ImageNRMSE: normalized RMSE of the output image vs. the baseline
	// (AxBench).
	ImageNRMSE
	// Misclassification: percentage of classifications that differ from the
	// baseline labels (C-NN).
	Misclassification
)

// String renders the kind as Table II labels it.
func (k Kind) String() string {
	switch k {
	case VectorDeviation:
		return "vector-deviation%"
	case ImageNRMSE:
		return "nrmse"
	case Misclassification:
		return "misclassification%"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Metric is one application's output-quality judge.
type Metric struct {
	// Kind selects the formula.
	Kind Kind
	// Threshold is the SDC cut-off: a run whose metric value exceeds it is
	// an SDC outcome.
	Threshold float64
}

// relTol is the relative tolerance below which two float32 outputs are the
// same element (allows for benign last-ulp differences).
const relTol = 1e-5

// elementsDiffer reports whether two output elements meaningfully differ.
// NaNs and infinities produced by fault propagation always differ.
func elementsDiffer(got, want float32) bool {
	g, w := float64(got), float64(want)
	if math.IsNaN(g) || math.IsInf(g, 0) {
		return !(math.IsNaN(w) || math.IsInf(w, 0)) || g != w && !(math.IsNaN(g) && math.IsNaN(w))
	}
	if math.IsNaN(w) || math.IsInf(w, 0) {
		return true
	}
	diff := math.Abs(g - w)
	if diff == 0 {
		return false
	}
	scale := math.Max(math.Abs(g), math.Abs(w))
	if scale < 1e-30 {
		return diff > 1e-30
	}
	return diff/scale > relTol
}

// DeviationPercent returns the percentage of elements that differ between
// the outputs (Table II's Polybench metric).
func DeviationPercent(got, want []float32) (float64, error) {
	if len(got) != len(want) {
		return 0, fmt.Errorf("metrics: output length %d vs baseline %d", len(got), len(want))
	}
	if len(want) == 0 {
		return 0, fmt.Errorf("metrics: empty outputs")
	}
	n := 0
	for i := range want {
		if elementsDiffer(got[i], want[i]) {
			n++
		}
	}
	return 100 * float64(n) / float64(len(want)), nil
}

// NRMSE returns the root-mean-square error normalized by the baseline's
// value range (Table II's AxBench metric). Non-finite outputs saturate the
// error at 1.
func NRMSE(got, want []float32) (float64, error) {
	if len(got) != len(want) {
		return 0, fmt.Errorf("metrics: output length %d vs baseline %d", len(got), len(want))
	}
	if len(want) == 0 {
		return 0, fmt.Errorf("metrics: empty outputs")
	}
	lo, hi := math.Inf(1), math.Inf(-1)
	sum := 0.0
	saturated := false
	for i := range want {
		w := float64(want[i])
		g := float64(got[i])
		lo = math.Min(lo, w)
		hi = math.Max(hi, w)
		if math.IsNaN(g) || math.IsInf(g, 0) {
			saturated = true
			continue
		}
		d := g - w
		sum += d * d
	}
	if saturated {
		return 1, nil
	}
	rng := hi - lo
	if rng <= 0 {
		rng = 1
	}
	return math.Sqrt(sum/float64(len(want))) / rng, nil
}

// MisclassificationPercent returns the percentage of labels differing from
// the baseline classification (Table II's C-NN metric).
func MisclassificationPercent(got, want []float32) (float64, error) {
	if len(got) != len(want) {
		return 0, fmt.Errorf("metrics: labels %d vs baseline %d", len(got), len(want))
	}
	if len(want) == 0 {
		return 0, fmt.Errorf("metrics: empty label vectors")
	}
	n := 0
	for i := range want {
		if got[i] != want[i] {
			n++
		}
	}
	return 100 * float64(n) / float64(len(want)), nil
}

// Value computes the metric for a fault-injected output against the
// fault-free baseline.
func (m Metric) Value(got, want []float32) (float64, error) {
	switch m.Kind {
	case VectorDeviation:
		return DeviationPercent(got, want)
	case ImageNRMSE:
		return NRMSE(got, want)
	case Misclassification:
		return MisclassificationPercent(got, want)
	default:
		return 0, fmt.Errorf("metrics: unknown kind %d", int(m.Kind))
	}
}

// IsSDC reports whether the output constitutes silent data corruption: the
// metric value exceeds the application's threshold.
func (m Metric) IsSDC(got, want []float32) (bool, error) {
	v, err := m.Value(got, want)
	if err != nil {
		return false, err
	}
	return v > m.Threshold, nil
}
