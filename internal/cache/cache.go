// Package cache implements the set-associative tag arrays used for both the
// per-SM L1 data caches and the per-channel L2 banks of the simulated GPU,
// plus the MSHR (miss status holding register) table that merges outstanding
// misses. Data values live in device memory (internal/mem); caches model
// timing-relevant state only: tags, LRU order, dirty bits.
package cache

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

// Cache is one set-associative tag array with true-LRU replacement. It is
// not safe for concurrent use; the timing engine is single-threaded.
type Cache struct {
	sets    int
	ways    int
	setMask uint64
	lines   []line // sets*ways, set-major
	tick    uint64

	// Stats accumulate across accesses until Reset.
	Stats Stats
}

type line struct {
	tag     arch.BlockAddr
	valid   bool
	dirty   bool
	lastUse uint64
}

// Stats counts cache events.
type Stats struct {
	// Reads, ReadMisses count lookup traffic.
	Reads      uint64
	ReadMisses uint64
	// Writes, WriteMisses count write lookups.
	Writes      uint64
	WriteMisses uint64
	// Fills counts line insertions; Evictions counts valid lines displaced;
	// DirtyEvictions counts write-backs those evictions generated.
	Fills          uint64
	Evictions      uint64
	DirtyEvictions uint64
}

// Add accumulates other into s field by field. Aggregators (the timing
// engine's per-kernel rollup, the telemetry snapshotter) use it to merge
// per-SM and per-bank counters without hand-written loops.
func (s *Stats) Add(other Stats) {
	s.Reads += other.Reads
	s.ReadMisses += other.ReadMisses
	s.Writes += other.Writes
	s.WriteMisses += other.WriteMisses
	s.Fills += other.Fills
	s.Evictions += other.Evictions
	s.DirtyEvictions += other.DirtyEvictions
}

// ReadHitRate returns the fraction of read lookups that hit.
func (s Stats) ReadHitRate() float64 {
	if s.Reads == 0 {
		return 0
	}
	return float64(s.Reads-s.ReadMisses) / float64(s.Reads)
}

// New builds a cache from the geometry.
func New(g arch.CacheGeometry) (*Cache, error) {
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("cache: %w", err)
	}
	sets := g.Sets()
	return &Cache{
		sets:    sets,
		ways:    g.Ways,
		setMask: uint64(sets - 1),
		lines:   make([]line, sets*g.Ways),
	}, nil
}

// Sets returns the number of sets.
func (c *Cache) Sets() int { return c.sets }

// Ways returns the associativity.
func (c *Cache) Ways() int { return c.ways }

func (c *Cache) set(b arch.BlockAddr) []line {
	s := int(uint64(b) & c.setMask)
	return c.lines[s*c.ways : (s+1)*c.ways]
}

// Read looks the block up, updating LRU state and statistics. It returns
// true on hit. A miss does not allocate; call Fill when the line returns.
func (c *Cache) Read(b arch.BlockAddr) bool {
	c.tick++
	c.Stats.Reads++
	set := c.set(b)
	for i := range set {
		if set[i].valid && set[i].tag == b {
			set[i].lastUse = c.tick
			return true
		}
	}
	c.Stats.ReadMisses++
	return false
}

// Probe reports whether the block is resident without touching LRU state or
// statistics.
func (c *Cache) Probe(b arch.BlockAddr) bool {
	set := c.set(b)
	for i := range set {
		if set[i].valid && set[i].tag == b {
			return true
		}
	}
	return false
}

// Write looks the block up for a store. On hit the line is marked dirty and
// true is returned. On miss nothing is allocated (no-write-allocate, the
// GPU L1/L2 store policy modelled here) and false is returned; the store
// proceeds to the next level.
func (c *Cache) Write(b arch.BlockAddr) bool {
	c.tick++
	c.Stats.Writes++
	set := c.set(b)
	for i := range set {
		if set[i].valid && set[i].tag == b {
			set[i].lastUse = c.tick
			set[i].dirty = true
			return true
		}
	}
	c.Stats.WriteMisses++
	return false
}

// Eviction describes the line displaced by a Fill.
type Eviction struct {
	// Block is the displaced line.
	Block arch.BlockAddr
	// Dirty reports whether a write-back is required.
	Dirty bool
}

// Fill inserts the block, evicting the LRU way if the set is full. It
// returns the eviction, if any. Filling an already-resident block only
// refreshes its LRU position.
func (c *Cache) Fill(b arch.BlockAddr) (Eviction, bool) {
	c.tick++
	c.Stats.Fills++
	set := c.set(b)
	victim := 0
	for i := range set {
		if set[i].valid && set[i].tag == b {
			set[i].lastUse = c.tick
			return Eviction{}, false
		}
		if !set[i].valid {
			victim = i
		} else if set[victim].valid && set[i].lastUse < set[victim].lastUse {
			victim = i
		}
	}
	// Prefer an invalid way outright.
	for i := range set {
		if !set[i].valid {
			victim = i
			break
		}
	}
	var ev Eviction
	had := false
	if set[victim].valid {
		ev = Eviction{Block: set[victim].tag, Dirty: set[victim].dirty}
		had = true
		c.Stats.Evictions++
		if ev.Dirty {
			c.Stats.DirtyEvictions++
		}
	}
	set[victim] = line{tag: b, valid: true, lastUse: c.tick}
	return ev, had
}

// InvalidateAll flushes every line — the L1 behaviour at kernel boundaries.
// Dirty lines are dropped (GPU L1s are write-through, so nothing is lost).
func (c *Cache) InvalidateAll() {
	for i := range c.lines {
		c.lines[i] = line{}
	}
}

// ResetStats zeroes the statistics without touching cache contents.
func (c *Cache) ResetStats() { c.Stats = Stats{} }
