package cache

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

// MSHR is a miss status holding register table: it tracks blocks with an
// outstanding fill and merges subsequent misses to the same block, so one
// memory request serves every waiting consumer. The table has a fixed number
// of entries; when full, new misses must stall — the structural hazard that
// bounds memory-level parallelism per SM.
type MSHR struct {
	capacity int
	pending  map[arch.BlockAddr][]uint64
}

// NewMSHR builds a table with the given entry budget.
func NewMSHR(capacity int) (*MSHR, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: MSHR capacity must be positive, got %d", capacity)
	}
	return &MSHR{
		capacity: capacity,
		pending:  make(map[arch.BlockAddr][]uint64, capacity),
	}, nil
}

// Outcome of an MSHR allocation attempt.
type MSHROutcome int

// Allocation outcomes.
const (
	// MSHRNew means a fresh entry was allocated: the caller must issue the
	// memory request.
	MSHRNew MSHROutcome = iota + 1
	// MSHRMerged means an entry for the block already existed: the request
	// was queued behind the in-flight fill and no new memory request is
	// needed.
	MSHRMerged
	// MSHRFull means no entry was available: the requester must stall and
	// retry.
	MSHRFull
)

// String renders the outcome.
func (o MSHROutcome) String() string {
	switch o {
	case MSHRNew:
		return "new"
	case MSHRMerged:
		return "merged"
	case MSHRFull:
		return "full"
	default:
		return fmt.Sprintf("mshroutcome(%d)", int(o))
	}
}

// Allocate registers requester id as waiting on block b.
func (m *MSHR) Allocate(b arch.BlockAddr, id uint64) MSHROutcome {
	if waiters, ok := m.pending[b]; ok {
		m.pending[b] = append(waiters, id)
		return MSHRMerged
	}
	if len(m.pending) >= m.capacity {
		return MSHRFull
	}
	m.pending[b] = []uint64{id}
	return MSHRNew
}

// Complete releases the entry for block b, returning every waiter in
// allocation order. Completing an unknown block returns nil.
func (m *MSHR) Complete(b arch.BlockAddr) []uint64 {
	waiters, ok := m.pending[b]
	if !ok {
		return nil
	}
	delete(m.pending, b)
	return waiters
}

// Pending reports whether block b has an outstanding fill.
func (m *MSHR) Pending(b arch.BlockAddr) bool {
	_, ok := m.pending[b]
	return ok
}

// InUse returns the number of occupied entries.
func (m *MSHR) InUse() int { return len(m.pending) }

// Capacity returns the entry budget.
func (m *MSHR) Capacity() int { return m.capacity }

// Reset drops every entry.
func (m *MSHR) Reset() {
	for k := range m.pending {
		delete(m.pending, k)
	}
}
