package cache

import (
	"fmt"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

// MSHR is a miss status holding register table: it tracks blocks with an
// outstanding fill and merges subsequent misses to the same block, so one
// memory request serves every waiting consumer. The table has a fixed number
// of entries; when full, new misses must stall — the structural hazard that
// bounds memory-level parallelism per SM.
//
// The table is generic over its waiter payload so consumers attach whatever
// they need to a miss without an indirection table: the timing engine stores
// generation-tagged copy-group references directly. Entries live in a fixed
// slot array sized to the capacity and are found by linear scan — at
// hardware-realistic capacities (tens of entries) that is faster than a map
// and, together with per-slot waiter slices that are recycled in place,
// keeps the steady state allocation-free.
type MSHR[T any] struct {
	slots []mshrSlot[T]
	inUse int
}

type mshrSlot[T any] struct {
	block   arch.BlockAddr
	valid   bool
	waiters []T
}

// NewMSHR builds a table with the given entry budget.
func NewMSHR[T any](capacity int) (*MSHR[T], error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("cache: MSHR capacity must be positive, got %d", capacity)
	}
	m := &MSHR[T]{slots: make([]mshrSlot[T], capacity)}
	for i := range m.slots {
		// Pre-size the waiter lists so steady-state Allocate calls never
		// touch the heap; a slot only grows past this on deep merging and
		// then keeps its high-water capacity.
		m.slots[i].waiters = make([]T, 0, 8)
	}
	return m, nil
}

// Outcome of an MSHR allocation attempt.
type MSHROutcome int

// Allocation outcomes.
const (
	// MSHRNew means a fresh entry was allocated: the caller must issue the
	// memory request.
	MSHRNew MSHROutcome = iota + 1
	// MSHRMerged means an entry for the block already existed: the request
	// was queued behind the in-flight fill and no new memory request is
	// needed.
	MSHRMerged
	// MSHRFull means no entry was available: the requester must stall and
	// retry.
	MSHRFull
)

// String renders the outcome.
func (o MSHROutcome) String() string {
	switch o {
	case MSHRNew:
		return "new"
	case MSHRMerged:
		return "merged"
	case MSHRFull:
		return "full"
	default:
		return fmt.Sprintf("mshroutcome(%d)", int(o))
	}
}

// Allocate registers payload as waiting on block b.
func (m *MSHR[T]) Allocate(b arch.BlockAddr, payload T) MSHROutcome {
	free := -1
	for i := range m.slots {
		s := &m.slots[i]
		if s.valid {
			if s.block == b {
				s.waiters = append(s.waiters, payload)
				return MSHRMerged
			}
		} else if free == -1 {
			free = i
		}
	}
	if free == -1 {
		return MSHRFull
	}
	s := &m.slots[free]
	s.block = b
	s.valid = true
	s.waiters = append(s.waiters[:0], payload)
	m.inUse++
	return MSHRNew
}

// Complete releases the entry for block b, returning every waiter in
// allocation order. Completing an unknown block returns nil. The returned
// slice aliases the freed slot's storage: it is valid until a subsequent
// Allocate reuses the slot, so callers must consume it before allocating.
func (m *MSHR[T]) Complete(b arch.BlockAddr) []T {
	for i := range m.slots {
		s := &m.slots[i]
		if s.valid && s.block == b {
			s.valid = false
			m.inUse--
			return s.waiters
		}
	}
	return nil
}

// Pending reports whether block b has an outstanding fill.
func (m *MSHR[T]) Pending(b arch.BlockAddr) bool {
	for i := range m.slots {
		if m.slots[i].valid && m.slots[i].block == b {
			return true
		}
	}
	return false
}

// InUse returns the number of occupied entries.
func (m *MSHR[T]) InUse() int { return m.inUse }

// Capacity returns the entry budget.
func (m *MSHR[T]) Capacity() int { return len(m.slots) }

// Reset drops every entry, keeping the waiter slices for reuse.
func (m *MSHR[T]) Reset() {
	for i := range m.slots {
		m.slots[i].valid = false
		m.slots[i].waiters = m.slots[i].waiters[:0]
	}
	m.inUse = 0
}
