package cache

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/datacentric-gpu/dcrm/internal/arch"
)

func tiny(t *testing.T, ways int) *Cache {
	t.Helper()
	// 4 sets × ways.
	c, err := New(arch.CacheGeometry{SizeBytes: 4 * ways * 128, Ways: ways, LineBytes: 128})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// blockInSet returns the i-th block that maps to the given set of a 4-set cache.
func blockInSet(set, i int) arch.BlockAddr { return arch.BlockAddr(set + 4*i) }

func TestReadMissThenFillThenHit(t *testing.T) {
	c := tiny(t, 2)
	b := blockInSet(1, 0)
	if c.Read(b) {
		t.Fatal("cold read hit")
	}
	if _, had := c.Fill(b); had {
		t.Fatal("cold fill evicted")
	}
	if !c.Read(b) {
		t.Fatal("read after fill missed")
	}
	if c.Stats.Reads != 2 || c.Stats.ReadMisses != 1 {
		t.Errorf("stats = %+v, want 2 reads 1 miss", c.Stats)
	}
	if got := c.Stats.ReadHitRate(); got != 0.5 {
		t.Errorf("hit rate = %v, want 0.5", got)
	}
}

func TestLRUEviction(t *testing.T) {
	c := tiny(t, 2)
	a, b, d := blockInSet(0, 0), blockInSet(0, 1), blockInSet(0, 2)
	c.Fill(a)
	c.Fill(b)
	c.Read(a) // a is now MRU; b is LRU
	ev, had := c.Fill(d)
	if !had || ev.Block != b {
		t.Fatalf("Fill evicted %+v (had=%v), want %v", ev, had, b)
	}
	if !c.Probe(a) || !c.Probe(d) || c.Probe(b) {
		t.Fatal("post-eviction residency wrong")
	}
}

func TestFillResidentRefreshesLRU(t *testing.T) {
	c := tiny(t, 2)
	a, b, d := blockInSet(0, 0), blockInSet(0, 1), blockInSet(0, 2)
	c.Fill(a)
	c.Fill(b)
	c.Fill(a) // refresh a; b becomes LRU
	ev, had := c.Fill(d)
	if !had || ev.Block != b {
		t.Fatalf("expected b evicted, got %+v had=%v", ev, had)
	}
}

func TestDirtyEvictionReported(t *testing.T) {
	c := tiny(t, 1)
	a, b := blockInSet(2, 0), blockInSet(2, 1)
	c.Fill(a)
	if !c.Write(a) {
		t.Fatal("write to resident line missed")
	}
	ev, had := c.Fill(b)
	if !had || !ev.Dirty || ev.Block != a {
		t.Fatalf("eviction = %+v had=%v, want dirty a", ev, had)
	}
	if c.Stats.DirtyEvictions != 1 {
		t.Errorf("DirtyEvictions = %d, want 1", c.Stats.DirtyEvictions)
	}
}

func TestWriteMissDoesNotAllocate(t *testing.T) {
	c := tiny(t, 2)
	b := blockInSet(0, 0)
	if c.Write(b) {
		t.Fatal("write miss reported hit")
	}
	if c.Probe(b) {
		t.Fatal("write miss allocated a line (policy is no-write-allocate)")
	}
	if c.Stats.WriteMisses != 1 {
		t.Errorf("WriteMisses = %d, want 1", c.Stats.WriteMisses)
	}
}

func TestInvalidateAll(t *testing.T) {
	c := tiny(t, 2)
	for i := 0; i < 8; i++ {
		c.Fill(arch.BlockAddr(i))
	}
	c.InvalidateAll()
	for i := 0; i < 8; i++ {
		if c.Probe(arch.BlockAddr(i)) {
			t.Fatalf("block %d still resident after InvalidateAll", i)
		}
	}
}

func TestProbeDoesNotTouchStats(t *testing.T) {
	c := tiny(t, 2)
	c.Fill(blockInSet(0, 0))
	before := c.Stats
	c.Probe(blockInSet(0, 0))
	c.Probe(blockInSet(0, 9))
	if c.Stats != before {
		t.Error("Probe mutated stats")
	}
}

func TestSetIsolation(t *testing.T) {
	c := tiny(t, 1)
	// Blocks in different sets must not evict each other.
	for set := 0; set < 4; set++ {
		c.Fill(blockInSet(set, 0))
	}
	for set := 0; set < 4; set++ {
		if !c.Probe(blockInSet(set, 0)) {
			t.Fatalf("set %d lost its line to another set", set)
		}
	}
}

// TestLRUStackProperty verifies the LRU inclusion property: any block
// resident in a k-way cache is also resident in a (k+1)-way cache of the
// same set count under the same access stream.
func TestLRUStackProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		small := mustNew(arch.CacheGeometry{SizeBytes: 4 * 2 * 128, Ways: 2, LineBytes: 128})
		big := mustNew(arch.CacheGeometry{SizeBytes: 4 * 4 * 128, Ways: 4, LineBytes: 128})
		blocks := make([]arch.BlockAddr, 64)
		for i := range blocks {
			blocks[i] = arch.BlockAddr(rng.Intn(24))
		}
		for _, b := range blocks {
			if !small.Read(b) {
				small.Fill(b)
			}
			if !big.Read(b) {
				big.Fill(b)
			}
			// Inclusion check over the recently touched universe.
			for u := arch.BlockAddr(0); u < 24; u++ {
				if small.Probe(u) && !big.Probe(u) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func mustNew(g arch.CacheGeometry) *Cache {
	c, err := New(g)
	if err != nil {
		panic(err)
	}
	return c
}

func TestNewRejectsBadGeometry(t *testing.T) {
	if _, err := New(arch.CacheGeometry{SizeBytes: 100, Ways: 3, LineBytes: 128}); err == nil {
		t.Error("bad geometry accepted")
	}
}

func TestTableIGeometries(t *testing.T) {
	cfg := arch.Default()
	l1, err := New(cfg.L1)
	if err != nil {
		t.Fatalf("L1: %v", err)
	}
	if l1.Sets() != 32 || l1.Ways() != 4 {
		t.Errorf("L1 = %d sets × %d ways, want 32×4", l1.Sets(), l1.Ways())
	}
	l2, err := New(cfg.L2)
	if err != nil {
		t.Fatalf("L2: %v", err)
	}
	if l2.Sets() != 128 || l2.Ways() != 16 {
		t.Errorf("L2 bank = %d sets × %d ways, want 128×16", l2.Sets(), l2.Ways())
	}
}

func TestMSHRMergeAndComplete(t *testing.T) {
	m, err := NewMSHR[uint64](2)
	if err != nil {
		t.Fatal(err)
	}
	if got := m.Allocate(10, 1); got != MSHRNew {
		t.Fatalf("first allocate = %v, want new", got)
	}
	if got := m.Allocate(10, 2); got != MSHRMerged {
		t.Fatalf("second allocate = %v, want merged", got)
	}
	if got := m.Allocate(20, 3); got != MSHRNew {
		t.Fatalf("other block = %v, want new", got)
	}
	if got := m.Allocate(30, 4); got != MSHRFull {
		t.Fatalf("over capacity = %v, want full", got)
	}
	if !m.Pending(10) || m.InUse() != 2 {
		t.Fatal("pending state wrong")
	}
	waiters := m.Complete(10)
	if len(waiters) != 2 || waiters[0] != 1 || waiters[1] != 2 {
		t.Fatalf("Complete = %v, want [1 2]", waiters)
	}
	if m.Pending(10) {
		t.Fatal("block still pending after Complete")
	}
	if got := m.Allocate(30, 4); got != MSHRNew {
		t.Fatalf("allocate after free = %v, want new", got)
	}
	if m.Complete(99) != nil {
		t.Fatal("completing unknown block returned waiters")
	}
}

func TestMSHRReset(t *testing.T) {
	m, err := NewMSHR[uint64](4)
	if err != nil {
		t.Fatal(err)
	}
	m.Allocate(1, 1)
	m.Allocate(2, 2)
	m.Reset()
	if m.InUse() != 0 {
		t.Fatalf("InUse after Reset = %d, want 0", m.InUse())
	}
}

func TestMSHRRejectsBadCapacity(t *testing.T) {
	if _, err := NewMSHR[uint64](0); err == nil {
		t.Error("zero capacity accepted")
	}
}

func BenchmarkCacheReadHit(b *testing.B) {
	c := mustNew(arch.Default().L1)
	c.Fill(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Read(0)
	}
}

func BenchmarkCacheReadMissFill(b *testing.B) {
	c := mustNew(arch.Default().L1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blk := arch.BlockAddr(i)
		if !c.Read(blk) {
			c.Fill(blk)
		}
	}
}
