// Package version reports the build's module version and VCS revision from
// the information the Go toolchain embeds at link time, so every CLI can
// answer -version without a hand-maintained constant or ldflags plumbing.
package version

import (
	"fmt"
	"runtime/debug"
)

// String renders a one-line version banner: module version, VCS revision
// (short, with a +dirty marker for modified checkouts), and Go toolchain.
func String() string {
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return "dcrm (version unknown: built without module support)"
	}
	v := info.Main.Version
	if v == "" || v == "(devel)" {
		v = "devel"
	}
	var rev, dirty string
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			rev = s.Value
		case "vcs.modified":
			if s.Value == "true" {
				dirty = "+dirty"
			}
		}
	}
	if len(rev) > 12 {
		rev = rev[:12]
	}
	if rev == "" {
		return fmt.Sprintf("dcrm %s (%s)", v, info.GoVersion)
	}
	return fmt.Sprintf("dcrm %s (rev %s%s, %s)", v, rev, dirty, info.GoVersion)
}
