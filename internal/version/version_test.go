package version

import (
	"strings"
	"testing"
)

func TestStringNonEmpty(t *testing.T) {
	s := String()
	if !strings.HasPrefix(s, "dcrm ") {
		t.Errorf("version banner %q does not start with the module name", s)
	}
	if strings.ContainsAny(s, "\n\r") {
		t.Errorf("version banner %q is not a single line", s)
	}
	// Test binaries embed build info, so the Go toolchain must be present.
	if !strings.Contains(s, "go1") && !strings.Contains(s, "unknown") {
		t.Errorf("version banner %q names no Go toolchain", s)
	}
}
