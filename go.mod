module github.com/datacentric-gpu/dcrm

go 1.22
