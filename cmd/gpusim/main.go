// Command gpusim runs one GPGPU application on the cycle-level timing
// simulator and prints per-kernel statistics.
//
// Usage:
//
//	gpusim -app P-BICG [-scheme none|detection|correction] [-level N] [-scheduler gto|lrr] [-trace out.json]
//	       [-store-dir dir] [-sim-shards N] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -store-dir, the run's statistics are persisted to a
// content-addressed store: a repeat invocation with the same configuration
// answers from the store without re-simulating. Requesting a Chrome trace
// (-trace) forces a live simulation — a stored result has no timeline to
// record.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"

	"github.com/datacentric-gpu/dcrm/internal/arch"
	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
	"github.com/datacentric-gpu/dcrm/internal/timing"
	"github.com/datacentric-gpu/dcrm/internal/version"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "gpusim:", err)
		os.Exit(1)
	}
}

func run() error {
	appName := flag.String("app", "P-BICG", "application (see cmd/profiler -list)")
	schemeName := flag.String("scheme", "none", "protection scheme: none, detection, correction")
	level := flag.Int("level", -1, "protected data objects, cumulative (-1 = hot objects)")
	scheduler := flag.String("scheduler", "gto", "warp scheduler: gto or lrr")
	traceFile := flag.String("trace", "", "write a Chrome trace_event timeline (load in chrome://tracing or Perfetto) to this file")
	storeDir := flag.String("store-dir", "", "persist run statistics to this content-addressed store directory (created if missing); repeat runs warm-start from it")
	simShards := flag.Int("sim-shards", 0, "timing-replay event-scheduler shards (0 = GOMAXPROCS); statistics are byte-identical at any count")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (go tool pprof) to this file")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return nil
	}
	stopProfiling, err := startProfiling(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiling()

	scfg := experiments.SuiteConfig{SimShards: *simShards}
	if *storeDir != "" {
		st, err := store.Open(store.Config{Dir: *storeDir})
		if err != nil {
			return err
		}
		scfg.Store = st
	}
	suite, err := experiments.NewSuite(scfg)
	if err != nil {
		return err
	}
	app, err := suite.App(*appName)
	if err != nil {
		return err
	}

	var scheme core.Scheme
	switch *schemeName {
	case "none":
		scheme = core.None
	case "detection":
		scheme = core.Detection
	case "correction":
		scheme = core.Correction
	default:
		return fmt.Errorf("unknown scheme %q", *schemeName)
	}
	lvl := *level
	if lvl < 0 {
		lvl = app.HotCount
	}

	_, plan, err := suite.PlanFor(*appName, scheme, lvl)
	if err != nil {
		return err
	}
	if plan != nil {
		fmt.Println("Protection:", plan.Describe())
	} else {
		fmt.Println("Protection: baseline (no protection)")
	}
	policy := timing.GTO
	if *scheduler == "lrr" {
		policy = timing.LRR
	}

	var st timing.AppStats
	if *traceFile == "" {
		// Serve through the suite's result store: with -store-dir a repeat
		// invocation of the same configuration answers without simulating.
		st, err = experiments.Simulate(suite, experiments.SimConfig{
			App: app.Name, Scheme: scheme, Level: lvl, Policy: policy,
		})
		if err != nil {
			return err
		}
	} else {
		// A Chrome trace needs a live engine attachment, so this path always
		// simulates.
		fmt.Printf("Tracing %s (functional run)…\n", app.Name)
		traces, err := app.TraceRun(nil)
		if err != nil {
			return err
		}
		var tplan timing.ProtectionPlan
		if plan != nil {
			tplan = plan
		}
		eng, err := timing.New(arch.Default(), tplan)
		if err != nil {
			return err
		}
		eng.Shards = suite.SimShards()
		eng.Policy = policy
		eng.Trace = telemetry.NewTrace()
		st, err = eng.RunApp(app.Name, traces)
		if err != nil {
			return err
		}
		if err := writeTrace(*traceFile, eng.Trace); err != nil {
			return err
		}
		fmt.Printf("Wrote %d trace events to %s\n", eng.Trace.Len(), *traceFile)
	}

	var rows [][]string
	for _, k := range st.Kernels {
		rows = append(rows, []string{
			k.Kernel,
			fmt.Sprintf("%d", k.Cycles),
			fmt.Sprintf("%d", k.Instructions),
			fmt.Sprintf("%d", k.L1.Reads),
			fmt.Sprintf("%d", k.L1.ReadMisses),
			fmt.Sprintf("%.1f%%", 100*k.L1.ReadHitRate()),
			fmt.Sprintf("%.1f%%", 100*k.L2.ReadHitRate()),
			fmt.Sprintf("%d", k.DRAM.Served),
			fmt.Sprintf("%d", k.CopyTransactions),
		})
	}
	fmt.Print(experiments.RenderTable(
		[]string{"kernel", "cycles", "instrs", "L1 reads", "L1 misses", "L1 hit", "L2 hit", "DRAM", "copy tx"},
		rows,
	))
	fmt.Printf("\nTotal: %d cycles, %d L1-missed accesses, IPC %.2f\n",
		st.TotalCycles(), st.TotalL1Misses(),
		float64(st.TotalInstructions())/float64(st.TotalCycles()))
	if plan != nil {
		c := plan.Cost()
		fmt.Printf("Hardware cost: %d B tables, %d-bit comparator, %d B replica DRAM\n",
			c.AddrTableBytes+c.LoadTableBytes+c.CompareBufferBytes, c.ComparatorBits, c.ReplicaBytes)
	}
	return nil
}

// startProfiling starts a CPU profile and arranges a heap profile snapshot,
// as requested; the returned stop function finalizes both and must run
// before process exit.
func startProfiling(cpuPath, memPath string) (stop func(), err error) {
	stop = func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	return stop, nil
}

// writeTrace serializes the engine's Chrome trace to path, creating parent
// directories as needed (matching how repro and the CSV exporters treat
// output paths).
func writeTrace(path string, tr *telemetry.Trace) error {
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := tr.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
