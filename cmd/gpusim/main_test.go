package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// TestWriteTraceCreatesParentDirs pins the output-path contract shared by
// every command: pointing an output flag at a path whose directories do not
// exist yet must create them, not fail.
func TestWriteTraceCreatesParentDirs(t *testing.T) {
	path := filepath.Join(t.TempDir(), "a", "b", "trace.json")
	if err := writeTrace(path, telemetry.NewTrace()); err != nil {
		t.Fatalf("writeTrace into missing nested dir: %v", err)
	}
	if _, err := os.Stat(path); err != nil {
		t.Fatalf("trace file not written: %v", err)
	}
}
