// Command resilience reproduces the paper's evaluation of the two
// protection schemes: the Fig. 7 performance-overhead sweep (-perf) and the
// Fig. 9 SDC-reduction campaigns (-sdc).
//
// Usage:
//
//	resilience -perf [-apps …] [-workers 0] [-csv dir] [-store-dir dir] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//	resilience -sdc [-runs 1000] [-apps …] [-workers 0] [-prewarm] [-csv dir] [-store-dir dir] [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// With -csv the Fig. 7 points and Fig. 9 cells are also exported as CSV
// (parent directories are created as needed); with -store-dir results are
// persisted to a content-addressed store so a repeat invocation with the
// same configuration answers without recomputing.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/datacentric-gpu/dcrm/internal/core"
	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/version"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "resilience:", err)
		os.Exit(1)
	}
}

func run() error {
	perf := flag.Bool("perf", false, "run the Fig. 7 performance sweep")
	sdc := flag.Bool("sdc", false, "run the Fig. 9 resilience campaigns")
	runs := flag.Int("runs", 1000, "fault-injection runs per configuration (Fig. 9)")
	apps := flag.String("apps", "", "comma-separated applications (default: the evaluated eight)")
	seed := flag.Int64("seed", 11, "campaign seed")
	workers := flag.Int("workers", 0, "experiment fan-out goroutines (0 = GOMAXPROCS); results are identical at any count")
	csvDir := flag.String("csv", "", "also export figure data as CSV into this directory (created if missing)")
	storeDir := flag.String("store-dir", "", "persist results to this content-addressed store directory (created if missing); repeat runs warm-start from it")
	prewarm := flag.Bool("prewarm", false, "build the Fig. 9 checkpoint artifacts (goldens, captures, miss weights) in parallel before the campaigns; results are identical either way")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (go tool pprof) to this file")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return nil
	}
	stopProfiling, err := startProfiling(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiling()
	if !*perf && !*sdc {
		*perf, *sdc = true, true
	}

	scfg := experiments.SuiteConfig{Workers: *workers}
	if *storeDir != "" {
		st, err := store.Open(store.Config{Dir: *storeDir})
		if err != nil {
			return err
		}
		scfg.Store = st
	}
	suite, err := experiments.NewSuite(scfg)
	if err != nil {
		return err
	}
	var appList []string
	if *apps != "" {
		appList = strings.Split(*apps, ",")
	} else {
		appList = suite.EvaluatedNames()
	}

	if *perf {
		if err := runPerf(suite, appList, *csvDir); err != nil {
			return err
		}
	}
	if *sdc {
		if *prewarm {
			specs, err := suite.Fig9PrewarmSpecs(experiments.Fig9Config{
				Runs: *runs, Seed: *seed, Apps: appList,
			})
			if err != nil {
				return err
			}
			if err := suite.Prewarm(context.Background(), specs); err != nil {
				return err
			}
		}
		if err := runSDC(suite, appList, *runs, *seed, *csvDir); err != nil {
			return err
		}
	}
	return nil
}

// startProfiling starts a CPU profile and arranges a heap profile snapshot,
// as requested; the returned stop function finalizes both and must run
// before process exit.
func startProfiling(cpuPath, memPath string) (stop func(), err error) {
	stop = func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	return stop, nil
}

func runPerf(suite *experiments.Suite, apps []string, csvDir string) error {
	fmt.Println("Fig. 7 — execution time and L1-missed accesses, normalized to baseline")
	points, err := experiments.Fig7Overhead(suite, experiments.Fig7Config{Apps: apps})
	if err != nil {
		return err
	}
	if csvDir != "" {
		if err := experiments.ExportFig7CSV(csvDir, points); err != nil {
			return err
		}
	}
	var rows [][]string
	for _, p := range points {
		rows = append(rows, []string{
			p.App, p.Scheme.String(), fmt.Sprintf("%d", p.Level),
			fmt.Sprintf("%d", p.Cycles),
			fmt.Sprintf("%.4f", p.NormTime),
			fmt.Sprintf("%.4f", p.NormMisses),
		})
	}
	fmt.Print(experiments.RenderTable(
		[]string{"application", "scheme", "objects", "cycles", "norm time", "norm L1 misses"}, rows))

	hot, all, err := experiments.LevelMaps(suite, apps)
	if err != nil {
		return err
	}
	sum := experiments.SummarizeFig7(points, hot, all)
	fmt.Printf("\nAverages (paper: detection 1.2%%/40.65%%, correction 3.4%%/74.24%%):\n")
	fmt.Printf("  detection  hot-only %+.2f%%   all objects %+.2f%%\n",
		100*sum.DetectionHotOverhead, 100*sum.DetectionAllOverhead)
	fmt.Printf("  correction hot-only %+.2f%%   all objects %+.2f%%\n\n",
		100*sum.CorrectionHotOverhead, 100*sum.CorrectionAllOverhead)
	return nil
}

func runSDC(suite *experiments.Suite, apps []string, runs int, seed int64, csvDir string) error {
	fmt.Printf("Fig. 9 — SDC outcomes out of %d runs, whole-space L1-miss-weighted injection\n\n", runs)
	cells, err := experiments.Fig9Resilience(suite, experiments.Fig9Config{
		Runs: runs, Seed: seed, Apps: apps,
	})
	if err != nil {
		return err
	}
	if csvDir != "" {
		if err := experiments.ExportFig9CSV(csvDir, cells); err != nil {
			return err
		}
	}
	var rows [][]string
	for _, c := range cells {
		scheme := c.Scheme.String()
		if c.Scheme == core.None {
			scheme = "baseline"
		}
		rows = append(rows, []string{
			c.App, scheme, fmt.Sprintf("%d", c.Level), c.Model.String(),
			fmt.Sprintf("%d", c.Result.SDCRuns),
			fmt.Sprintf("%d", c.Result.DetectedRuns),
			fmt.Sprintf("%d", c.Result.MaskedRuns),
			fmt.Sprintf("%d", c.Result.CrashedRuns),
		})
	}
	fmt.Print(experiments.RenderTable(
		[]string{"application", "scheme", "objects", "faults", "SDC", "detected", "masked", "crashed"}, rows))

	hot := make(map[string]int, len(apps))
	for _, name := range apps {
		app, err := suite.App(name)
		if err != nil {
			return err
		}
		hot[name] = app.HotCount
	}
	fmt.Printf("\nAverage SDC drop with hot-object protection: %.2f%% (paper: 98.97%%)\n",
		experiments.SDCDropPercent(cells, hot))
	return nil
}
