// Command faultinject reproduces Fig. 6: fault-injection campaigns
// comparing the vulnerability of hot memory blocks against the rest of the
// application's memory, with no protection scheme enabled.
//
// Usage:
//
//	faultinject [-runs 1000] [-apps P-BICG,A-Laplacian] [-seed 7] [-workers 0] [-batch 0]
//	            [-quiet] [-model spec[;spec...]] [-breakdown] [-csv dir] [-store-dir dir]
//	            [-prewarm] [-metrics-out metrics.txt]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof]
//
// Campaign progress (completed configurations, elapsed time, ETA) is
// reported on stderr; -quiet silences it. Results on stdout are
// byte-identical either way. With -csv the result cells are also exported
// as CSV (parent directories are created as needed); with -store-dir the
// campaign result is persisted to a content-addressed store so a repeat
// invocation with the same configuration answers without recomputing.
// -batch bounds how many runs a campaign claim classifies per functional
// replay (0 = auto, 1 = unbatched); it only changes speed, never results.
//
// -prewarm builds the experiment's checkpoint artifacts (goldens, batched-
// replay captures, store timelines) in parallel before the campaigns start;
// with -store-dir they persist, so a second invocation fetches them from
// disk instead of recomputing. -metrics-out writes a Prometheus snapshot of
// the process's internal telemetry (including the
// dcrm_artifact_{requests,computed}_total counters that prove a warm start
// recomputed nothing) at exit.
//
// -model selects the fault models swept, as semicolon-separated registry
// specs ("stuck-at:bits=3,blocks=1;transient:flips=2"); see
// docs/FAULT-MODELS.md for the catalog. -breakdown switches from the
// Fig. 6 hot-vs-rest experiment to the fault-model × scheme outcome
// breakdown over all ten applications, reporting the full outcome
// taxonomy including detected-uncorrectable (DUE) runs.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/fault"
	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
	"github.com/datacentric-gpu/dcrm/internal/version"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultinject:", err)
		os.Exit(1)
	}
}

func run() error {
	runs := flag.Int("runs", 1000, "fault-injection runs per configuration (paper: 1000)")
	apps := flag.String("apps", "", "comma-separated applications (default: the evaluated eight; -breakdown: all ten)")
	seed := flag.Int64("seed", 7, "campaign seed")
	workers := flag.Int("workers", 0, "experiment fan-out goroutines (0 = GOMAXPROCS); results are identical at any count")
	batch := flag.Int("batch", 0, "campaign batch size: runs classified per functional replay (0 = auto, 1 = unbatched); results are identical at any size")
	quiet := flag.Bool("quiet", false, "suppress the stderr progress line")
	modelSpec := flag.String("model", "", "semicolon-separated fault-model specs, e.g. \"stuck-at:bits=3;transient:flips=2\" (default: the experiment's own sweep; known models: "+strings.Join(fault.ModelNames(), ", ")+")")
	breakdown := flag.Bool("breakdown", false, "run the fault-model × scheme outcome breakdown instead of Fig. 6")
	csvDir := flag.String("csv", "", "also export the result cells as CSV into this directory (created if missing)")
	storeDir := flag.String("store-dir", "", "persist results to this content-addressed store directory (created if missing); repeat runs warm-start from it")
	prewarm := flag.Bool("prewarm", false, "build the experiment's checkpoint artifacts (goldens, captures, timelines) in parallel before the campaigns; results are identical either way")
	metricsOut := flag.String("metrics-out", "", "write a Prometheus snapshot of internal telemetry to this file at exit")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile (go tool pprof) to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile (go tool pprof) to this file")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return nil
	}
	stopProfiling, err := startProfiling(*cpuProfile, *memProfile)
	if err != nil {
		return err
	}
	defer stopProfiling()

	if *batch < 0 {
		return fmt.Errorf("-batch must be non-negative (0 = auto, 1 = unbatched), got %d", *batch)
	}

	var models []fault.Model
	if *modelSpec != "" {
		var err error
		if models, err = fault.ParseModels(*modelSpec); err != nil {
			return err
		}
	}

	scfg := experiments.SuiteConfig{
		Workers:  *workers,
		Batch:    *batch,
		Progress: experiments.Progress(*quiet, os.Stderr),
	}
	var reg *telemetry.Registry
	if *metricsOut != "" {
		reg = telemetry.NewRegistry()
		scfg.Telemetry = reg
	}
	if *storeDir != "" {
		st, err := store.Open(store.Config{Dir: *storeDir, Telemetry: reg})
		if err != nil {
			return err
		}
		scfg.Store = st
	}
	suite, err := experiments.NewSuite(scfg)
	if err != nil {
		return err
	}
	if *metricsOut != "" {
		defer func() {
			if werr := writeMetrics(*metricsOut, reg); werr != nil {
				fmt.Fprintln(os.Stderr, "faultinject: metrics-out:", werr)
			}
		}()
	}
	var appList []string
	if *apps != "" {
		appList = strings.Split(*apps, ",")
	}

	if *breakdown {
		bcfg := experiments.BreakdownConfig{
			Runs: *runs, Seed: *seed, Models: models, Apps: appList,
		}
		if *prewarm {
			specs, err := suite.BreakdownPrewarmSpecs(bcfg)
			if err != nil {
				return err
			}
			if err := suite.Prewarm(context.Background(), specs); err != nil {
				return err
			}
		}
		return runBreakdown(suite, bcfg, *csvDir)
	}
	fcfg := experiments.Fig6Config{
		Runs: *runs, Seed: *seed, Models: models, Apps: appList,
	}
	if *prewarm {
		if err := suite.Prewarm(context.Background(), suite.Fig6PrewarmSpecs(fcfg)); err != nil {
			return err
		}
	}
	return runFig6(suite, fcfg, *csvDir)
}

// writeMetrics snapshots the telemetry registry in Prometheus text format.
func writeMetrics(path string, reg *telemetry.Registry) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := reg.WritePrometheus(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// startProfiling starts a CPU profile and arranges a heap profile snapshot,
// as requested; the returned stop function finalizes both and must run
// before process exit.
func startProfiling(cpuPath, memPath string) (stop func(), err error) {
	stop = func() {}
	if cpuPath != "" {
		f, err := os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stop = func() {
			pprof.StopCPUProfile()
			f.Close()
		}
	}
	if memPath != "" {
		cpuStop := stop
		stop = func() {
			cpuStop()
			f, err := os.Create(memPath)
			if err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush unreachable objects so the profile shows live heap
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "memprofile:", err)
			}
		}
	}
	return stop, nil
}

// runFig6 runs the hot-vs-rest campaign and renders its table.
func runFig6(suite *experiments.Suite, cfg experiments.Fig6Config, csvDir string) error {
	fmt.Printf("Fig. 6 — SDC outcomes out of %d runs: hot blocks vs rest of memory\n\n", cfg.Runs)
	cells, err := experiments.Fig6HotVsRest(suite, cfg)
	if err != nil {
		return err
	}
	if csvDir != "" {
		if err := experiments.ExportFig6CSV(csvDir, cells); err != nil {
			return err
		}
	}
	var rows [][]string
	for _, c := range cells {
		rows = append(rows, []string{
			c.App, c.Space, c.Model.String(),
			fmt.Sprintf("%d", c.Result.SDCRuns),
			fmt.Sprintf("%d", c.Result.MaskedRuns),
			fmt.Sprintf("%d", c.Result.CrashedRuns),
			fmt.Sprintf("±%.1f%%", 100*c.Result.ConfidenceHalfWidth()),
		})
	}
	fmt.Print(experiments.RenderTable(
		[]string{"application", "space", "faults", "SDC", "masked", "crashed", "95% CI"}, rows))
	return nil
}

// runBreakdown runs the fault-model × scheme outcome breakdown and renders
// the full outcome distribution, one row per (application, scheme, model)
// cell, in the canonical outcome order (DUE included).
func runBreakdown(suite *experiments.Suite, cfg experiments.BreakdownConfig, csvDir string) error {
	fmt.Printf("Fault-model × scheme outcome breakdown — %d runs per cell\n\n", cfg.Runs)
	cells, err := experiments.FaultModelBreakdown(suite, cfg)
	if err != nil {
		return err
	}
	if csvDir != "" {
		if err := experiments.ExportBreakdownCSV(csvDir, cells); err != nil {
			return err
		}
	}
	header := []string{"application", "scheme", "model"}
	for _, o := range fault.Outcomes() {
		header = append(header, o.String())
	}
	header = append(header, "95% CI")
	var rows [][]string
	for _, c := range cells {
		scheme := c.Scheme.String()
		if c.Level == 0 {
			scheme = "baseline"
		}
		row := []string{c.App, scheme, c.Model.String()}
		for _, o := range fault.Outcomes() {
			row = append(row, fmt.Sprintf("%d", c.Result.Count(o)))
		}
		row = append(row, fmt.Sprintf("±%.1f%%", 100*c.Result.ConfidenceHalfWidth()))
		rows = append(rows, row)
	}
	fmt.Print(experiments.RenderTable(header, rows))
	return nil
}
