// Command faultinject reproduces Fig. 6: fault-injection campaigns
// comparing the vulnerability of hot memory blocks against the rest of the
// application's memory, with no protection scheme enabled.
//
// Usage:
//
//	faultinject [-runs 1000] [-apps P-BICG,A-Laplacian] [-seed 7] [-workers 0] [-quiet]
//	            [-csv dir] [-store-dir dir]
//
// Campaign progress (completed configurations, elapsed time, ETA) is
// reported on stderr; -quiet silences it. Results on stdout are
// byte-identical either way. With -csv the Fig. 6 cells are also exported
// as CSV (parent directories are created as needed); with -store-dir the
// campaign result is persisted to a content-addressed store so a repeat
// invocation with the same configuration answers without recomputing.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/version"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "faultinject:", err)
		os.Exit(1)
	}
}

func run() error {
	runs := flag.Int("runs", 1000, "fault-injection runs per configuration (paper: 1000)")
	apps := flag.String("apps", "", "comma-separated applications (default: the evaluated eight)")
	seed := flag.Int64("seed", 7, "campaign seed")
	workers := flag.Int("workers", 0, "experiment fan-out goroutines (0 = GOMAXPROCS); results are identical at any count")
	quiet := flag.Bool("quiet", false, "suppress the stderr progress line")
	csvDir := flag.String("csv", "", "also export the Fig. 6 cells as CSV into this directory (created if missing)")
	storeDir := flag.String("store-dir", "", "persist results to this content-addressed store directory (created if missing); repeat runs warm-start from it")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return nil
	}

	scfg := experiments.SuiteConfig{
		Workers:  *workers,
		Progress: experiments.Progress(*quiet, os.Stderr),
	}
	if *storeDir != "" {
		st, err := store.Open(store.Config{Dir: *storeDir})
		if err != nil {
			return err
		}
		scfg.Store = st
	}
	suite, err := experiments.NewSuite(scfg)
	if err != nil {
		return err
	}
	cfg := experiments.Fig6Config{Runs: *runs, Seed: *seed}
	if *apps != "" {
		cfg.Apps = strings.Split(*apps, ",")
	}

	fmt.Printf("Fig. 6 — SDC outcomes out of %d runs: hot blocks vs rest of memory\n\n", *runs)
	cells, err := experiments.Fig6HotVsRest(suite, cfg)
	if err != nil {
		return err
	}
	if *csvDir != "" {
		if err := experiments.ExportFig6CSV(*csvDir, cells); err != nil {
			return err
		}
	}
	var rows [][]string
	for _, c := range cells {
		rows = append(rows, []string{
			c.App, c.Space, c.Model.String(),
			fmt.Sprintf("%d", c.Result.SDCRuns),
			fmt.Sprintf("%d", c.Result.MaskedRuns),
			fmt.Sprintf("%d", c.Result.CrashedRuns),
			fmt.Sprintf("±%.1f%%", 100*c.Result.ConfidenceHalfWidth()),
		})
	}
	fmt.Print(experiments.RenderTable(
		[]string{"application", "space", "faults", "SDC", "masked", "crashed", "95% CI"}, rows))
	return nil
}
