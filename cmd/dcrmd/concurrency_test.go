package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// postCampaign submits a campaign body and returns the decoded response job
// and status code.
func postCampaign(t *testing.T, url, body string) (job, *http.Response) {
	t.Helper()
	resp, err := http.Post(url+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var j job
	if resp.StatusCode == http.StatusAccepted {
		if err := json.NewDecoder(resp.Body).Decode(&j); err != nil {
			t.Fatal(err)
		}
	}
	return j, resp
}

// waitAllJobs polls until no submitted job is pending or running.
func waitAllJobs(t *testing.T, r *runner) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Minute)
	for {
		counts := r.counts()
		if counts[statePending]+counts[stateRunning] == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs stuck: %v", counts)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDaemonCoalescesConcurrentDuplicates fires many concurrent campaign
// submissions — most identical, a few distinct — and proves via the
// result-store telemetry that each distinct request computed exactly once:
// duplicates either coalesced onto a live job or were served from the
// store. Runs under -race in CI.
func TestDaemonCoalescesConcurrentDuplicates(t *testing.T) {
	srv, r := newTestServer(t)

	const dupCallers = 12
	distinctSeeds := []int64{31, 32, 33}
	identical := `{"kind":"fig6","apps":["P-BICG"],"runs":6,"seed":5}`

	var wg sync.WaitGroup
	var mu sync.Mutex
	statuses := make(map[int]int)
	dupJobIDs := make(map[string]bool)
	for i := 0; i < dupCallers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			j, resp := postCampaign(t, srv.URL, identical)
			mu.Lock()
			statuses[resp.StatusCode]++
			if j.ID != "" {
				dupJobIDs[j.ID] = true
			}
			mu.Unlock()
		}()
	}
	for _, seed := range distinctSeeds {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			body := fmt.Sprintf(`{"kind":"fig6","apps":["P-BICG"],"runs":6,"seed":%d}`, seed)
			_, resp := postCampaign(t, srv.URL, body)
			mu.Lock()
			statuses[resp.StatusCode]++
			mu.Unlock()
		}(seed)
	}
	wg.Wait()
	waitAllJobs(t, r)

	if statuses[http.StatusAccepted] != dupCallers+len(distinctSeeds) {
		t.Fatalf("statuses = %v, want all %d accepted", statuses, dupCallers+len(distinctSeeds))
	}

	// The singleflight proof: 15 accepted submissions, 4 distinct request
	// keys, so the fig6 experiment ran exactly 4 times. Duplicates that
	// overlapped a live job coalesced onto it (same job ID back); any that
	// arrived after completion hit the result store instead of recomputing.
	snap := r.reg.Snapshot()
	computed, ok := snap.Get("dcrm_experiment_results_computed_total",
		telemetry.Label{Name: "figure", Value: "fig6"})
	if !ok {
		t.Fatal("no fig6 computed counter")
	}
	if want := float64(1 + len(distinctSeeds)); computed.Value != want {
		t.Errorf("fig6 computed %v times, want %v (one per distinct request)", computed.Value, want)
	}
	if requests, ok := snap.Get("dcrm_experiment_results_requests_total",
		telemetry.Label{Name: "figure", Value: "fig6"}); !ok || requests.Value < computed.Value {
		t.Errorf("fig6 requests = %v, want >= computed %v", requests.Value, computed.Value)
	}

	// Identical submissions all name a fig6 job; they cannot have fanned
	// out over more jobs than the duplicate-arrival worst case, and every
	// coalesced response reused a live job's ID.
	coalesced, _ := snap.Get("dcrm_daemon_jobs_coalesced_total")
	submitted, _ := snap.Get("dcrm_daemon_jobs_total", telemetry.Label{Name: "kind", Value: "fig6"})
	if submitted.Value+coalesced.Value != float64(dupCallers+len(distinctSeeds)) {
		t.Errorf("submitted %v + coalesced %v != %d accepted responses",
			submitted.Value, coalesced.Value, dupCallers+len(distinctSeeds))
	}
	if coalesced.Value > 0 && len(dupJobIDs) == int(dupCallers) {
		t.Errorf("coalesced submissions (%v) did not share job IDs: %d distinct IDs from %d duplicate callers",
			coalesced.Value, len(dupJobIDs), dupCallers)
	}
}

// TestDaemonAdmissionControl fills the in-flight bound with blocking jobs
// and asserts overflow submissions get 429 with a Retry-After, while an
// identical duplicate of a live job still coalesces (coalescing needs no
// admission slot).
func TestDaemonAdmissionControl(t *testing.T) {
	release := make(chan struct{})
	jobKinds["testblock"] = func(_ *experiments.Suite, _ jobParams) (any, error) {
		<-release
		return "done", nil
	}
	defer delete(jobKinds, "testblock")

	reg := telemetry.NewRegistry()
	r := newRunner(experiments.SuiteConfig{NNTrainSamples: 60, Workers: 2}, reg, 2)
	srv := httptest.NewServer(newMux(r, newCoordinator(reg), reg, false))
	defer func() {
		srv.Close()
		r.wait()
	}()
	defer close(release)

	first, resp := postCampaign(t, srv.URL, `{"kind":"testblock","seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit = %d", resp.StatusCode)
	}
	if _, resp = postCampaign(t, srv.URL, `{"kind":"testblock","seed":2}`); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("second submit = %d", resp.StatusCode)
	}

	// Third distinct request: over the bound, rejected with retry advice.
	_, resp = postCampaign(t, srv.URL, `{"kind":"testblock","seed":3}`)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response has no Retry-After header")
	}

	// A duplicate of a live job coalesces even at capacity.
	dup, resp := postCampaign(t, srv.URL, `{"kind":"testblock","seed":1}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("duplicate-at-capacity submit = %d, want 202", resp.StatusCode)
	}
	if dup.ID != first.ID {
		t.Errorf("duplicate got job %q, want the live job %q", dup.ID, first.ID)
	}

	snap := reg.Snapshot()
	if rejected, ok := snap.Get("dcrm_daemon_jobs_rejected_total"); !ok || rejected.Value != 1 {
		t.Errorf("rejected counter = %v, want 1", rejected)
	}
	if coalesced, ok := snap.Get("dcrm_daemon_jobs_coalesced_total"); !ok || coalesced.Value != 1 {
		t.Errorf("coalesced counter = %v, want 1", coalesced)
	}
}
