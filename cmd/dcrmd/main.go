// Command dcrmd is a monitoring daemon in the style of gpud: it runs
// fault-injection campaigns and performance sweeps in the background and
// exposes their progress and results over HTTP, so a long campaign can be
// watched from another terminal (or scraped by Prometheus) instead of
// holding a foreground process hostage.
//
// Endpoints:
//
//	GET  /healthz            component health (suite, jobs)
//	GET  /metrics            Prometheus text format: live campaign/engine counters
//	GET  /v1/experiments     submitted jobs and their states
//	POST /v1/campaigns       start a campaign: {"kind":"fig6","runs":200,"apps":["P-BICG"]}
//	GET  /v1/campaigns/{id}  one job, JSON result included once done
//
// Campaign kinds are fig6, fig7, fig9, and breakdown (the fault-model ×
// scheme outcome breakdown; accepts "models": a list of fault-model specs
// such as "transient:flips=2" — see docs/FAULT-MODELS.md).
//
// The daemon is also the campaign fabric's control plane: /v1/fleet/*
// shards fault campaigns across a worker fleet (see docs/ARCHITECTURE.md,
// "Campaign fabric"). A second dcrmd started with -join becomes a worker
// of that fleet:
//
//	dcrmd -addr :8080                          # coordinator
//	dcrmd -join http://host:8080 -addr :8081   # worker (own /healthz + /metrics)
//
// Usage:
//
//	dcrmd [-addr :8080] [-join URL] [-workers 0] [-scale small] [-store-dir DIR] [-max-inflight N]
//
// With -store-dir, results persist in a content-addressed disk store:
// repeat campaigns over the same inputs are served from it, and restarts
// warm-start from earlier runs. Identical concurrent submissions coalesce
// onto one job; distinct submissions beyond -max-inflight are rejected
// with HTTP 429 and a Retry-After header.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/store"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
	"github.com/datacentric-gpu/dcrm/internal/version"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "dcrmd:", err)
		os.Exit(1)
	}
}

func run() error {
	addr := flag.String("addr", ":8080", "listen address")
	join := flag.String("join", "", "run as a fleet worker of the coordinator at this URL (e.g. http://host:8080) instead of serving the control plane")
	workers := flag.Int("workers", 0, "experiment fan-out goroutines (0 = GOMAXPROCS); results are identical at any count")
	scale := flag.String("scale", "small", "workload input scale: small, medium, large")
	storeDir := flag.String("store-dir", "", "persist results in a content-addressed store at this directory (created if missing); empty = in-memory only")
	maxInflight := flag.Int("max-inflight", 0, "maximum concurrently live campaign jobs before submissions get 429 (0 = 2×GOMAXPROCS)")
	pprofFlag := flag.Bool("pprof", false, "serve Go runtime profiling under /debug/pprof (off by default: exposes stacks and heap contents)")
	showVersion := flag.Bool("version", false, "print version and exit")
	flag.Parse()
	if *showVersion {
		fmt.Println(version.String())
		return nil
	}

	cfg := experiments.SuiteConfig{Workers: *workers}
	switch *scale {
	case "small":
		cfg.Scale = experiments.ScaleSmall
	case "medium":
		cfg.Scale = experiments.ScaleMedium
	case "large":
		cfg.Scale = experiments.ScaleLarge
	default:
		return fmt.Errorf("unknown scale %q", *scale)
	}

	reg := telemetry.NewRegistry()
	if *storeDir != "" {
		st, err := store.Open(store.Config{Dir: *storeDir, Telemetry: reg})
		if err != nil {
			return err
		}
		cfg.Store = st
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *join != "" {
		// Worker mode: execute campaign shards for the coordinator at -join.
		// SIGTERM drains — the current shard finishes and reports first.
		return runWorker(ctx, *join, *addr, cfg, reg)
	}

	// In-flight campaign jobs run under jobsCtx so shutdown can abort them:
	// fan-outs stop claiming task units and campaigns stop claiming runs the
	// moment it is cancelled, instead of holding the process until every
	// submitted figure completes.
	jobsCtx, jobsCancel := context.WithCancel(context.Background())
	defer jobsCancel()
	cfg.Context = jobsCtx

	runner := newRunner(cfg, reg, *maxInflight)
	coord := newCoordinator(reg)
	srv := &http.Server{Addr: *addr, Handler: newMux(runner, coord, reg, *pprofFlag)}

	errc := make(chan error, 1)
	go func() {
		fmt.Fprintf(os.Stderr, "dcrmd: listening on %s\n", *addr)
		errc <- srv.ListenAndServe()
	}()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	// Graceful shutdown: stop accepting requests, cancel in-flight campaign
	// jobs through the suite context, then wait for the job goroutines to
	// observe the cancellation and record their final states.
	fmt.Fprintln(os.Stderr, "dcrmd: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	jobsCancel()
	runner.wait()
	return nil
}
