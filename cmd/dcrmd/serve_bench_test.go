package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/datacentric-gpu/dcrm/internal/experiments"
	"github.com/datacentric-gpu/dcrm/internal/telemetry"
)

// benchColdSeed hands every cold-path iteration a never-before-seen seed.
// Package-level and never reset, so testing's b.N escalation re-runs stay
// cold too.
var benchColdSeed atomic.Int64

func init() { benchColdSeed.Store(100_000) }

// benchPostAndWait submits a campaign and polls it to completion, failing
// the benchmark on any non-202 or failed job. This is one "serve": what a
// client pays end to end.
func benchPostAndWait(b *testing.B, url, body string) {
	b.Helper()
	resp, err := http.Post(url+"/v1/campaigns", "application/json", strings.NewReader(body))
	if err != nil {
		b.Fatal(err)
	}
	var j job
	err = json.NewDecoder(resp.Body).Decode(&j)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusAccepted {
		b.Fatalf("POST = %d (%v)", resp.StatusCode, err)
	}
	deadline := time.Now().Add(2 * time.Minute)
	for {
		gresp, err := http.Get(url + "/v1/campaigns/" + j.ID)
		if err != nil {
			b.Fatal(err)
		}
		err = json.NewDecoder(gresp.Body).Decode(&j)
		gresp.Body.Close()
		if err != nil {
			b.Fatal(err)
		}
		if j.State == stateDone {
			return
		}
		if j.State == stateFailed {
			b.Fatalf("campaign failed: %s", j.Error)
		}
		if time.Now().After(deadline) {
			b.Fatalf("campaign stuck in state %q", j.State)
		}
		time.Sleep(200 * time.Microsecond)
	}
}

func fig6Body(seed int64) string {
	return fmt.Sprintf(`{"kind":"fig6","apps":["P-BICG"],"runs":6,"seed":%d}`, seed)
}

// BenchmarkDcrmdHotServe measures the daemon's end-to-end campaign serving
// throughput over one HTTP server and one shared in-memory result store:
//
//   - cold: every request carries a fresh seed, so the fault campaign
//     really runs (store misses on the figure key).
//   - warm: every request repeats one already-computed seed, so the daemon
//     answers from the result store — the serving fast path. The
//     cold/warm ratio is the store's speedup; scripts/bench_compare.sh
//     warns below 10×.
//   - dup: parallel clients hammer one seed that was never precomputed;
//     the first wave coalesces onto one run (job-level and store-level
//     singleflight), the rest are store hits.
func BenchmarkDcrmdHotServe(b *testing.B) {
	reg := telemetry.NewRegistry()
	r := newRunner(experiments.SuiteConfig{NNTrainSamples: 60, Workers: 2}, reg, 1<<20)
	srv := httptest.NewServer(newMux(r, newCoordinator(reg), reg, false))
	b.Cleanup(func() {
		srv.Close()
		r.wait()
	})

	// Prime outside any timed region: suite construction (NN training) and
	// the shared per-app artifacts (profile, golden, checkpoint), so cold
	// measures campaign compute rather than one-time setup.
	benchPostAndWait(b, srv.URL, fig6Body(99_999))

	b.Run("cold", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchPostAndWait(b, srv.URL, fig6Body(benchColdSeed.Add(1)))
		}
	})

	const warmSeed = 77_001
	benchPostAndWait(b, srv.URL, fig6Body(warmSeed)) // compute once
	b.Run("warm", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			benchPostAndWait(b, srv.URL, fig6Body(warmSeed))
		}
	})

	const dupSeed = 88_001 // deliberately not precomputed
	b.Run("dup", func(b *testing.B) {
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				benchPostAndWait(b, srv.URL, fig6Body(dupSeed))
			}
		})
	})
}
